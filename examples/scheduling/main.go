// Scheduling: the paper's §5 — measure each showcase model across the seven
// target permutations (computation scheduling, §5.1), then demote the object
// detector from CPU+APU to CPU-only so it can overlap the emotion stage and
// compare sequential vs pipelined execution (pipeline scheduling, §5.2 /
// Figure 5).
package main

import (
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/soc"
)

func main() {
	sc := soc.NewDimensity800()

	fmt.Println("== computation scheduling (§5.1): measure all permutations ==")
	rows, err := bench.RunFigure4(sc)
	if err != nil {
		fail(err)
	}
	fmt.Print(bench.RenderFigure("", rows))
	fmt.Println("\nper-model best target:")
	for _, r := range rows {
		best, cell := r.Best()
		fmt.Printf("  %-24s -> %-18s (%s)\n", r.Name, best, cell.Time)
	}

	fmt.Println("\n== pipeline scheduling (§5.2 / Figure 5) ==")
	res, err := bench.RunFigure5(sc, 12)
	if err != nil {
		fail(err)
	}
	fmt.Printf("object detection demoted to CPU-only: %s per frame (was %s on CPU+APU)\n",
		res.Plan.Detect.Duration, res.Contention.Sequential/12-res.Plan.Spoof.Duration-res.Plan.Emotion.Duration)
	fmt.Printf("contended  (all stages share CPU+APU): %s for 12 frames\n", res.Contention.Pipelined)
	fmt.Printf("pipelined  (exclusive resources):      %s for 12 frames, %.2fx vs sequential\n",
		res.Paper.Pipelined, res.Paper.Speedup)
	fmt.Println("\nGantt (d=detect on cpu, s=anti-spoof on cpu+apu, e=emotion on apu):")
	fmt.Print(res.Gantt)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "scheduling:", err)
	os.Exit(1)
}
