// Showcase: the paper's §4 application — three models from three different
// frameworks (TFLite quantized MobileNet-SSD, PyTorch DeePixBiS, Keras
// emotion CNN) chained over synthetic video with the Listing 5 gating:
// object/face overlap → anti-spoofing → emotion, spoofed faces skipping the
// emotion stage.
package main

import (
	"fmt"
	"os"

	"repro/internal/app"
	"repro/internal/video"
)

func main() {
	fmt.Println("building showcase models (this imports three serialized models through three frontends)...")
	sc, err := app.New(app.DefaultConfig())
	if err != nil {
		fail(err)
	}
	src, err := video.NewSource(160, 120, 2, 2, 2024)
	if err != nil {
		fail(err)
	}

	frames := 6
	real, spoofed := 0, 0
	for i := 0; i < frames; i++ {
		res, err := sc.ProcessFrame(src.Next())
		if err != nil {
			fail(err)
		}
		fmt.Printf("frame %d: %d object boxes, %d face candidates (detect %s)\n",
			res.Frame, len(res.Objects), len(res.Faces), res.Timing.Detect)
		for _, fr := range res.Faces {
			if fr.Real {
				real++
				fmt.Printf("  live face at (%d,%d): emotion %q (%.0f%%)\n",
					fr.Box.X, fr.Box.Y, fr.Emotion, 100*fr.Confidence)
			} else {
				spoofed++
				fmt.Printf("  presentation attack at (%d,%d) blocked (score %.3f)\n",
					fr.Box.X, fr.Box.Y, fr.SpoofScore)
			}
		}
	}
	fmt.Printf("\n%d frames: %d live faces analyzed, %d attacks blocked\n", frames, real, spoofed)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "showcase:", err)
	os.Exit(1)
}
