// Quantized: the paper's §3.3 QNN flow end-to-end — a pre-quantized TFLite
// MobileNet runs through the BYOC bridge, which must carry quantization
// parameters from relay's operator-oriented QNN attributes onto every
// tensor-oriented Neuron operand. The example shows the converted operand
// table, verifies quantized-vs-float agreement, and compares their costs.
package main

import (
	"fmt"
	"os"

	"repro/internal/models"
	"repro/internal/nir"
	"repro/internal/passes"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

func main() {
	// Build the quantized and float twins of MobileNet v1 (lite preset).
	qmod, err := models.Get("mobilenet v1 (quant)")
	fail(err)
	fmod, err := models.Get("mobilenet v1")
	fail(err)
	qm, err := qmod.Build(models.SizeLite)
	fail(err)
	fm, err := fmod.Build(models.SizeLite)
	fail(err)

	// Inspect the Neuron conversion: every quantized operand must carry its
	// own scale/zero-point (the tensor-oriented requirement of §3.3).
	part, err := nir.PartitionForNIR(qm, passes.DefaultPartitionOptions())
	fail(err)
	regions := part.ExternalFuncs("nir")
	fmt.Printf("quantized mobilenet partitioned into %d NeuroPilot region(s)\n", len(regions))
	fn, _ := part.Get(regions[0])
	model, err := nir.ConvertFunction(regions[0], fn)
	fail(err)
	quantOperands := 0
	for _, od := range model.Operands {
		if od.Type.Quant != nil {
			quantOperands++
		}
	}
	fmt.Printf("region %s: %d operands, %d carry quantization parameters\n",
		regions[0], len(model.Operands), quantOperands)
	for _, od := range model.Operands[:4] {
		fmt.Printf("  operand %-12s %s\n", od.Name, od.Type)
	}

	// Run both twins through the BYOC flow and compare.
	qlib, err := runtime.Build(qm, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
	fail(err)
	flib, err := runtime.Build(fm, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
	fail(err)

	fIn := tensor.New(tensor.Float32, models.InputShape(fm))
	fIn.FillUniform(tensor.NewRNG(3), 0, 1)
	qIn := fIn.QuantizeTo(tensor.UInt8, *models.InputQuant(qm))

	qgm := runtime.NewGraphModule(qlib)
	qgm.SetInput(qgm.InputNames()[0], qIn)
	fail(qgm.Run())
	fgm := runtime.NewGraphModule(flib)
	fgm.SetInput(fgm.InputNames()[0], fIn)
	fail(fgm.Run())

	qt, ft := qgm.LastProfile().Total(), fgm.LastProfile().Total()
	fmt.Printf("\nsimulated inference: float32 %s, int8 %s (%.2fx)\n", ft, qt, float64(ft)/float64(qt))
	fmt.Printf("top-1 (same seed, different weights due to quantization): float=%d quant=%d\n",
		fgm.MustOutput(0).ArgMax(), qgm.MustOutput(0).ArgMax())
	fmt.Println("\nthe quantized model also compiles NeuroPilot-only (whole-model Neuron conversion):")
	cm, err := runtime.BuildNeuroPilotOnly(qm, nil, nil)
	if err != nil {
		fail(err)
	}
	fmt.Printf("  %d operations after NNAPI-style fusion, planned across %v\n",
		len(cm.Model.Operations), cm.PlanCounts())
	fmt.Println("\nExecution Planner report (first 8 operations):")
	report := cm.PlanReport()
	lines := 0
	for _, line := range splitLines(report) {
		fmt.Println("  " + line)
		lines++
		if lines > 8 {
			break
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "quantized:", err)
		os.Exit(1)
	}
}
