// Quickstart: the end-to-end flow of the paper in ~60 lines — author a
// Keras model, serialize it, import it through the TVM frontend, partition
// it for NeuroPilot (BYOC), run it on the simulated Dimensity 800, and
// round-trip the compiled artifact through export_library/load.
package main

import (
	"bytes"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/frontend/keras"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

func main() {
	// 1. A small Keras Sequential CNN (the "custom model" path of §4.3).
	model := keras.NewSequential("quickstart", 7).
		Input(32, 32, 3).
		Conv2D(16, 3, 1, "same", "relu").
		MaxPooling2D(2, 2).
		Conv2D(32, 3, 1, "same", "relu").
		GlobalAveragePooling2D().
		Dense(10, "softmax")
	js, err := model.ToJSON()
	fatal(err)
	ws, err := model.Weights()
	fatal(err)
	var weights bytes.Buffer
	fatal(ws.SaveWeights(&weights))

	// 2. Import through the frontend (relay.frontend.from_keras).
	mod, err := core.Import(core.FrameworkKeras, js, weights.Bytes())
	fatal(err)

	// 3. Partition for NeuroPilot and build (partition_for_nir + relay.build).
	lib, err := core.Compile(mod, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
	fatal(err)
	fmt.Printf("compiled: %d NeuroPilot region(s)\n", len(lib.Module.ExternalFuncs("nir")))

	// 4. Run one inference on the simulated SoC.
	in := tensor.New(tensor.Float32, tensor.Shape{1, 32, 32, 3})
	in.FillUniform(tensor.NewRNG(1), 0, 1)
	outs, prof, err := core.RunOnce(lib, in)
	fatal(err)
	fmt.Printf("prediction: class %d\n", outs[0].ArgMax())
	fmt.Printf("simulated cost: %s (%s)\n", prof.Total(), prof)

	// 5. Cross-compile & deploy (§4.5): export the artifact and reload it
	// as the device side would.
	var artifact bytes.Buffer
	fatal(core.Export(lib, &artifact))
	artifactSize := artifact.Len()
	loaded, err := core.Load(&artifact, nil)
	fatal(err)
	outs2, _, err := core.RunOnce(loaded, in)
	fatal(err)
	if tensor.AllClose(outs[0], outs2[0], 1e-6, 1e-6) {
		fmt.Printf("artifact round-trip verified (%d bytes)\n", artifactSize)
	} else {
		fatal(fmt.Errorf("artifact round-trip mismatch"))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}
