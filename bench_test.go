// Benchmark harness: one benchmark per table and figure of the paper plus
// the ablations DESIGN.md calls out. Simulated inference times are reported
// as "sim-ms" metrics (the figures' y-axis); wall-clock numbers measure this
// host running the stack, which is not the experiment platform.
package repro_test

import (
	"context"
	"fmt"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/bench"
	"repro/internal/models"
	"repro/internal/neuron"
	"repro/internal/nir"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/passes"
	"repro/internal/pipeline"
	"repro/internal/race"
	"repro/internal/relay"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/soc"
	"repro/internal/tensor"
	"repro/internal/topi"
	"repro/internal/video"
)

// --------------------------------------------------------------- Figure 4

// builtModels caches full-scale model builds across benchmarks.
var (
	buildOnce sync.Once
	built     map[string]*relay.Module
	buildErr  error
	benchSoC  = soc.NewDimensity800()
)

func fullModels(b *testing.B) map[string]*relay.Module {
	b.Helper()
	buildOnce.Do(func() {
		built = map[string]*relay.Module{}
		specs := append(models.Showcase(), models.Figure6()...)
		seen := map[string]bool{}
		for _, s := range specs {
			if seen[s.Name] {
				continue
			}
			seen[s.Name] = true
			m, err := s.Build(models.SizeFull)
			if err != nil {
				buildErr = fmt.Errorf("building %s: %w", s.Name, err)
				return
			}
			built[s.Name] = m
		}
	})
	if buildErr != nil {
		b.Fatal(buildErr)
	}
	return built
}

// benchPermutations measures model × permutation cells; each iteration is
// one compile+estimate, and the simulated inference time is the metric.
func benchPermutations(b *testing.B, specs []models.Spec) {
	mods := fullModels(b)
	for _, spec := range specs {
		for _, p := range bench.AllPermutations {
			name := fmt.Sprintf("%s/%s", spec.Name, p)
			b.Run(name, func(b *testing.B) {
				m := mods[spec.Name]
				var cell bench.Cell
				var err error
				for i := 0; i < b.N; i++ {
					cell, err = bench.MeasureModule(m, p, benchSoC)
					if err != nil {
						b.Fatal(err)
					}
				}
				if cell.OK {
					b.ReportMetric(cell.Time.Ms(), "sim-ms")
				} else {
					b.ReportMetric(0, "no-statistics")
				}
			})
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4: the three showcase models across
// the seven target permutations.
func BenchmarkFigure4(b *testing.B) {
	benchPermutations(b, models.Showcase())
}

// BenchmarkFigure6 regenerates Figure 6: the extended classifier sweep.
func BenchmarkFigure6(b *testing.B) {
	benchPermutations(b, models.Figure6())
}

// --------------------------------------------------------------- Figure 5

// BenchmarkFigure5Pipeline regenerates the pipeline-scheduling comparison:
// the metric is the pipelined-over-sequential speedup at 12 frames.
func BenchmarkFigure5Pipeline(b *testing.B) {
	var res *bench.Figure5Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = bench.RunFigure5(benchSoC, 12)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Paper.Speedup, "speedup")
	b.ReportMetric(res.Paper.Pipelined.Ms(), "sim-ms")
	b.ReportMetric(res.Paper.Sequential.Ms(), "sequential-sim-ms")
}

// ------------------------------------------------- Figure 1 / Listing 5

// BenchmarkFigure1Showcase runs the three-model application on synthetic
// video, one frame per iteration (real numerics, simulated device time).
func BenchmarkFigure1Showcase(b *testing.B) {
	sc, err := app.New(app.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	src, err := video.NewSource(160, 120, 2, 2, 42)
	if err != nil {
		b.Fatal(err)
	}
	frames := src.Frames(8)
	b.ResetTimer()
	var total soc.Seconds
	for i := 0; i < b.N; i++ {
		res, err := sc.ProcessFrame(frames[i%len(frames)])
		if err != nil {
			b.Fatal(err)
		}
		total += res.Timing.Total()
	}
	b.ReportMetric(total.Ms()/float64(b.N), "sim-ms/frame")
}

// ----------------------------------------------------------- Tables 1 & 2

// BenchmarkTable1 renders the model inventory (sanity: build metadata only).
func BenchmarkTable1(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = bench.Table1String()
	}
	if len(s) == 0 {
		b.Fatal("empty table")
	}
}

// BenchmarkTable2 renders the platform specification.
func BenchmarkTable2(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = bench.Table2String(benchSoC)
	}
	if len(s) == 0 {
		b.Fatal("empty table")
	}
}

// --------------------------------------------------------------- Ablations

// BenchmarkAblationRegionMerge quantifies MergeCompilerRegions on the
// anti-spoofing model (the many-subgraphs pathology): metric = simulated
// time without merging over with merging.
func BenchmarkAblationRegionMerge(b *testing.B) {
	m := fullModels(b)["anti-spoofing"]
	measure := func(merge bool) soc.Seconds {
		lib, err := runtime.Build(m, runtime.BuildOptions{
			OptLevel: 3, UseNIR: true, SoC: benchSoC,
			Partition: passes.PartitionOptions{MergeRegions: merge, MinRegionSize: 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		prof, err := lib.Estimate()
		if err != nil {
			b.Fatal(err)
		}
		return prof.Total()
	}
	var merged, unmerged soc.Seconds
	for i := 0; i < b.N; i++ {
		merged = measure(true)
		unmerged = measure(false)
	}
	b.ReportMetric(merged.Ms(), "merged-sim-ms")
	b.ReportMetric(unmerged.Ms(), "unmerged-sim-ms")
	b.ReportMetric(float64(unmerged)/float64(merged), "slowdown-x")
}

// BenchmarkAblationFusion quantifies FuseOps on the TVM-only path.
func BenchmarkAblationFusion(b *testing.B) {
	m := fullModels(b)["emotion"]
	measure := func(opt int) soc.Seconds {
		lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: opt, SoC: benchSoC})
		if err != nil {
			b.Fatal(err)
		}
		prof, err := lib.Estimate()
		if err != nil {
			b.Fatal(err)
		}
		return prof.Total()
	}
	var fused, unfused soc.Seconds
	for i := 0; i < b.N; i++ {
		fused = measure(3)
		unfused = measure(0)
	}
	b.ReportMetric(fused.Ms(), "fused-sim-ms")
	b.ReportMetric(unfused.Ms(), "unfused-sim-ms")
	b.ReportMetric(float64(unfused)/float64(fused), "slowdown-x")
}

// BenchmarkAblationQNN compares the quantized and float MobileNet v1 twins
// through the BYOC flow (the §3.3/§4.2 QNN payoff).
func BenchmarkAblationQNN(b *testing.B) {
	mods := fullModels(b)
	measure := func(name string) soc.Seconds {
		cell, err := bench.MeasureModule(mods[name], bench.BYOCCPUAPU, benchSoC)
		if err != nil || !cell.OK {
			b.Fatalf("%s: %v", name, err)
		}
		return cell.Time
	}
	var q, f soc.Seconds
	for i := 0; i < b.N; i++ {
		q = measure("mobilenet v1 (quant)")
		f = measure("mobilenet v1")
	}
	b.ReportMetric(q.Ms(), "int8-sim-ms")
	b.ReportMetric(f.Ms(), "float32-sim-ms")
	b.ReportMetric(float64(f)/float64(q), "speedup-x")
}

// BenchmarkAblationPipelineAssign compares the Figure 5 assignment against
// keeping the object detector on CPU+APU.
func BenchmarkAblationPipelineAssign(b *testing.B) {
	res, err := bench.RunFigure5(benchSoC, 12)
	if err != nil {
		b.Fatal(err)
	}
	var paper, contended pipeline.Result
	for i := 0; i < b.N; i++ {
		paper = res.Paper
		contended = res.Contention
	}
	b.ReportMetric(paper.Pipelined.Ms(), "paper-sim-ms")
	b.ReportMetric(contended.Pipelined.Ms(), "contended-sim-ms")
	b.ReportMetric(float64(contended.Pipelined)/float64(paper.Pipelined), "win-x")
}

// ------------------------------------------------ real-kernel wall clock

// BenchmarkKernelConv2D measures the actual float32 convolution kernel
// (wall clock, this host).
func BenchmarkKernelConv2D(b *testing.B) {
	data := tensor.New(tensor.Float32, tensor.Shape{1, 56, 56, 64})
	data.FillUniform(tensor.NewRNG(1), -1, 1)
	weight := tensor.New(tensor.Float32, tensor.Shape{64, 3, 3, 64})
	weight.FillUniform(tensor.NewRNG(2), -1, 1)
	attrs := relay.Attrs{"strides": []int{1, 1}, "padding": []int{1, 1}}
	outTy := relay.TType(tensor.Float32, 1, 56, 56, 64)
	b.SetBytes(int64(data.Bytes() + weight.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topi.Run("nn.conv2d", []*tensor.Tensor{data, weight}, attrs, outTy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelQnnConv2D measures the quantized convolution kernel.
func BenchmarkKernelQnnConv2D(b *testing.B) {
	q := tensor.QuantParams{Scale: 0.02, ZeroPoint: 128}
	wq := tensor.QuantParams{Scale: 0.01, ZeroPoint: 128}
	data := tensor.New(tensor.UInt8, tensor.Shape{1, 56, 56, 64})
	data.Quant = &q
	weightF := tensor.New(tensor.Float32, tensor.Shape{64, 3, 3, 64})
	weightF.FillUniform(tensor.NewRNG(2), -0.5, 0.5)
	weight := weightF.QuantizeTo(tensor.UInt8, wq)
	attrs := relay.Attrs{
		"strides": []int{1, 1}, "padding": []int{1, 1},
		"input_scale": q.Scale, "input_zero_point": 128,
		"kernel_scale": wq.Scale, "kernel_zero_point": 128,
	}
	outTy := &relay.TensorType{Shape: tensor.Shape{1, 56, 56, 64}, DType: tensor.Int32,
		Quant: &tensor.QuantParams{Scale: q.Scale * wq.Scale}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topi.Run("qnn.conv2d", []*tensor.Tensor{data, weight}, attrs, outTy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelFusedQnnConv2D measures the single-launch fused quantized
// convolution (conv → bias → fixed-point requantize → activation LUT)
// against the equivalent staged chain of individual kernel launches.
func BenchmarkKernelFusedQnnConv2D(b *testing.B) {
	q := tensor.QuantParams{Scale: 0.02, ZeroPoint: 128}
	wq := tensor.QuantParams{Scale: 0.01, ZeroPoint: 128}
	outQ := tensor.QuantParams{Scale: 0.04, ZeroPoint: 7}
	data := tensor.New(tensor.UInt8, tensor.Shape{1, 56, 56, 64})
	data.Quant = &q
	weightF := tensor.New(tensor.Float32, tensor.Shape{64, 3, 3, 64})
	weightF.FillUniform(tensor.NewRNG(2), -0.5, 0.5)
	weight := weightF.QuantizeTo(tensor.UInt8, wq)
	bias := tensor.New(tensor.Int32, tensor.Shape{64})
	attrs := relay.Attrs{
		"strides": []int{1, 1}, "padding": []int{1, 1},
		"input_scale": q.Scale, "input_zero_point": 128,
		"kernel_scale": wq.Scale, "kernel_zero_point": 128,
		"requant_input_scale":       q.Scale * wq.Scale,
		"requant_input_zero_point":  0,
		"requant_output_scale":      outQ.Scale,
		"requant_output_zero_point": int(outQ.ZeroPoint),
		"fused_activation":          "relu",
	}
	outTy := &relay.TensorType{Shape: tensor.Shape{1, 56, 56, 64}, DType: tensor.UInt8, Quant: &outQ}
	args := []*tensor.Tensor{data, weight, bias}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topi.Run("qnn.conv2d_fused", args, attrs, outTy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelDense measures the cache-blocked register-tiled f32 GEMM
// backing nn.dense (MobileNet-style classifier head shape).
func BenchmarkKernelDense(b *testing.B) {
	data := tensor.New(tensor.Float32, tensor.Shape{8, 1024})
	data.FillUniform(tensor.NewRNG(1), -1, 1)
	weight := tensor.New(tensor.Float32, tensor.Shape{1000, 1024})
	weight.FillUniform(tensor.NewRNG(2), -1, 1)
	attrs := relay.Attrs{"units": 1000}
	outTy := relay.TType(tensor.Float32, 8, 1000)
	b.SetBytes(int64(data.Bytes() + weight.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topi.Run("nn.dense", []*tensor.Tensor{data, weight}, attrs, outTy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationParallelKernels measures goroutine tile parallelism in
// the convolution kernel (serial vs all cores), wall clock.
func BenchmarkAblationParallelKernels(b *testing.B) {
	data := tensor.New(tensor.Float32, tensor.Shape{1, 64, 64, 32})
	data.FillUniform(tensor.NewRNG(1), -1, 1)
	weight := tensor.New(tensor.Float32, tensor.Shape{32, 3, 3, 32})
	weight.FillUniform(tensor.NewRNG(2), -1, 1)
	attrs := relay.Attrs{"strides": []int{1, 1}, "padding": []int{1, 1}}
	outTy := relay.TType(tensor.Float32, 1, 64, 64, 32)
	for _, workers := range []int{1, 0} {
		name := "parallel"
		if workers == 1 {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			if workers == 1 {
				old := parallel.SetMaxWorkers(1)
				defer parallel.SetMaxWorkers(old)
			}
			for i := 0; i < b.N; i++ {
				if _, err := topi.Run("nn.conv2d", []*tensor.Tensor{data, weight}, attrs, outTy); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGraphExecutor measures one end-to-end BYOC inference of the lite
// emotion model (real numerics + simulated accounting), wall clock.
func BenchmarkGraphExecutor(b *testing.B) {
	m, err := models.BuildEmotion(models.SizeLite)
	if err != nil {
		b.Fatal(err)
	}
	lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: 3, UseNIR: true, SoC: benchSoC})
	if err != nil {
		b.Fatal(err)
	}
	gm := runtime.NewGraphModule(lib)
	in := models.RandomInput(m, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gm.SetInput(gm.InputNames()[0], in)
		if err := gm.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// executorBenchModule builds the lite emotion model on the TVM path — the
// workload the planned-executor acceptance numbers are quoted on. (On the
// BYOC path most of the graph runs inside the Neuron runtime, which owns its
// own buffers, so the memory planner has nothing to optimize there.)
func executorBenchModule(b *testing.B, kind runtime.ExecutorKind) (*runtime.GraphModule, *tensor.Tensor) {
	b.Helper()
	m, err := models.BuildEmotion(models.SizeLite)
	if err != nil {
		b.Fatal(err)
	}
	lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: 3, SoC: benchSoC})
	if err != nil {
		b.Fatal(err)
	}
	gm := runtime.NewGraphModule(lib)
	gm.SetExecutor(kind)
	in := models.RandomInput(m, 1)
	gm.SetInput(gm.InputNames()[0], in)
	return gm, in
}

// BenchmarkExecutorPlanVsInterp compares the planned executor against the
// reference interpreter on the same built library: wall clock and allocs/op
// for each path, plus the plan-over-interp ratios as metrics. The first Run
// outside the timer pays the one-time plan + arena bind, so the loop
// measures the steady state the plan amortizes into.
func BenchmarkExecutorPlanVsInterp(b *testing.B) {
	for _, c := range []struct {
		name string
		kind runtime.ExecutorKind
	}{
		{"plan", runtime.ExecutorPlanned},
		{"interp", runtime.ExecutorInterp},
	} {
		b.Run(c.name, func(b *testing.B) {
			gm, _ := executorBenchModule(b, c.kind)
			if err := gm.Run(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := gm.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("ratio", func(b *testing.B) {
		measure := func(kind runtime.ExecutorKind) (nsPerOp, allocsPerOp float64) {
			gm, _ := executorBenchModule(b, kind)
			if err := gm.Run(); err != nil { // warm: plan + arena bind
				b.Fatal(err)
			}
			const K = 20
			var before, after goruntime.MemStats
			goruntime.ReadMemStats(&before)
			start := time.Now()
			for i := 0; i < K; i++ {
				if err := gm.Run(); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			goruntime.ReadMemStats(&after)
			return float64(elapsed.Nanoseconds()) / K, float64(after.Mallocs-before.Mallocs) / K
		}
		planNs, planAllocs := measure(runtime.ExecutorPlanned)
		interpNs, interpAllocs := measure(runtime.ExecutorInterp)
		for i := 0; i < b.N; i++ {
			// Ratios are computed from the fixed-size measurement above; the
			// b.N loop only satisfies the harness contract.
			_ = i
		}
		b.ReportMetric(interpNs/planNs, "speedup-x")
		b.ReportMetric(interpAllocs/planAllocs, "fewer-allocs-x")
		b.ReportMetric(planAllocs, "plan-allocs/op")
		b.ReportMetric(interpAllocs, "interp-allocs/op")
	})
}

// BenchmarkTracingOverhead measures what turning profiling on costs the
// planned executor (per-node wall spans + named simulated-event recording)
// against the same module with profiling off — the "low-overhead" claim of
// the observability layer, quantified. The off variant doubles as the
// allocation pin: SetProfiling(false) must keep Run() at the never-profiled
// baseline (see TestProfilingOffAddsZeroAllocs for the exact assertion).
func BenchmarkTracingOverhead(b *testing.B) {
	run := func(b *testing.B, profiling bool) {
		gm, _ := executorBenchModule(b, runtime.ExecutorPlanned)
		gm.SetProfiling(profiling)
		if err := gm.Run(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := gm.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// ------------------------------------------------------------------ serving

// BenchmarkServeThroughput drives concurrent clients through the serving
// subsystem (internal/serve) across pool sizes and batching modes: each op
// is one complete request (admission → pool checkout → inference → output
// copy-out). Wall clock is this host; sim-ms/req is the simulated device
// cost. Batched variants coalesce same-model requests into one exclusive
// device reservation, so their mean-batch metric should exceed 1 under
// concurrent load.
func BenchmarkServeThroughput(b *testing.B) {
	m, err := models.BuildEmotion(models.SizeLite)
	if err != nil {
		b.Fatal(err)
	}
	lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: 3, SoC: benchSoC})
	if err != nil {
		b.Fatal(err)
	}
	inName := runtime.NewGraphModule(lib).InputNames()[0]
	// Pre-synthesized inputs so the clients measure serving, not RNG.
	inputs := make([]*tensor.Tensor, 16)
	for i := range inputs {
		inputs[i] = models.RandomInput(m, uint64(i+1))
	}
	for _, c := range []struct {
		name  string
		pool  int
		batch int
	}{
		{"pool1/unbatched", 1, 1},
		{"pool2/unbatched", 2, 1},
		{"pool4/unbatched", 4, 1},
		{"pool2/batch8", 2, 8},
		{"pool4/batch8", 4, 8},
	} {
		b.Run(c.name, func(b *testing.B) {
			s := serve.NewServer()
			err := s.Register("emotion", lib, serve.ModelOptions{
				Pool:        c.pool,
				QueueDepth:  1024,
				MaxBatch:    c.batch,
				BatchWindow: 200 * time.Microsecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			var reqID atomic.Uint64
			b.SetParallelism(8) // ≥ 8 concurrent clients regardless of GOMAXPROCS
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := reqID.Add(1)
					in := map[string]*tensor.Tensor{inName: inputs[i%uint64(len(inputs))]}
					if _, err := s.Submit(context.Background(), "emotion", in); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			st := s.Stats()[0]
			if st.Completed != uint64(b.N) {
				b.Fatalf("completed %d of %d requests", st.Completed, b.N)
			}
			b.ReportMetric(st.SimMs/float64(b.N), "sim-ms/req")
			b.ReportMetric(st.MeanBatch, "mean-batch")
			b.ReportMetric(float64(st.MaxBatch), "max-batch")
			s.Drain()
		})
	}
}

// BenchmarkFlightRecorderOverhead pins the per-request cost of the flight
// recorder on the serving hot path. Disabled it must stay zero-allocation
// (the pin is enforced here, skipped under -race where AllocsPerRun is
// nondeterministic); enabled it may take the per-slot lock but must not
// allocate for fast-lane records either — only slow-lane retention (past the
// latency threshold) is allowed to copy.
func BenchmarkFlightRecorderOverhead(b *testing.B) {
	rec := obs.FlightRecord{
		UnixMicro: 1, TraceID: "4f2a9c1d4f2a9c1d4f2a9c1d4f2a9c1d",
		Model: "emotion@v1", Worker: "d9000-0", Status: "ok",
		BatchSize: 4, QueueMs: 0.4, ExecMs: 1.8, TotalMs: 2.2, Devices: "cpu,apu",
	}
	run := func(b *testing.B, enabled bool, maxAllocs float64) {
		f := obs.NewFlightRecorder(256, 16, 250)
		f.SetEnabled(enabled)
		if !race.Enabled {
			if allocs := testing.AllocsPerRun(1000, func() { f.Record(rec) }); allocs > maxAllocs {
				b.Fatalf("Record allocates %.0f objects/op, pin is %.0f (enabled=%v)",
					allocs, maxAllocs, enabled)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Record(rec)
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false, 0) })
	b.Run("enabled/fast-lane", func(b *testing.B) { run(b, true, 0) })
	b.Run("enabled/slow-lane", func(b *testing.B) {
		f := obs.NewFlightRecorder(256, 16, 0.001) // everything lands in the slow lane
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Record(rec)
		}
	})
}

// BenchmarkAutoPipeline runs the automatic pipeline-scheduling search (the
// paper's announced future work) and reports the discovered makespan.
func BenchmarkAutoPipeline(b *testing.B) {
	var res *pipeline.AutoResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = bench.RunAutoPipeline(benchSoC, 12)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Result.Pipelined.Ms(), "sim-ms")
	b.ReportMetric(float64(res.Evaluated), "assignments")
}

// BenchmarkExtensionGPU measures the GPU-enabled BYOC permutation across
// the Table 1 models (extension experiment).
func BenchmarkExtensionGPU(b *testing.B) {
	var rows []bench.GPUExtensionRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.RunGPUExtension(benchSoC)
		if err != nil {
			b.Fatal(err)
		}
	}
	var base, gpu float64
	for _, r := range rows {
		base += r.CPUAPU.Time.Ms()
		gpu += r.CPUGPUAPU.Time.Ms()
	}
	b.ReportMetric(base, "cpu-apu-total-sim-ms")
	b.ReportMetric(gpu, "cpu-gpu-apu-total-sim-ms")
}

// BenchmarkAblationOpFusion quantifies the Neuron compiler's NNAPI-style
// operation fusion (conv+bias+requantize+activation as one launch) on the
// quantized MobileNet-SSD.
func BenchmarkAblationOpFusion(b *testing.B) {
	m := fullModels(b)["mobilenet ssd (quant)"]
	measure := func(disable bool) (soc.Seconds, int) {
		lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: 3, UseNIR: true, SoC: benchSoC})
		if err != nil {
			b.Fatal(err)
		}
		// Rebuild the external models with/without fusion via the neuron
		// compiler options.
		totalOps := 0
		prof := soc.NewProfile()
		for _, name := range lib.Module.ExternalFuncs("nir") {
			fn, _ := lib.Module.Get(name)
			model, err := nir.ConvertFunction(name, fn)
			if err != nil {
				b.Fatal(err)
			}
			cm, err := neuron.CompileWith(model, benchSoC,
				[]soc.DeviceKind{soc.KindCPU, soc.KindAPU},
				neuron.CompileOptions{DisableOperationFusion: disable})
			if err != nil {
				b.Fatal(err)
			}
			totalOps += len(cm.Model.Operations)
			cm.Estimate(prof)
		}
		return prof.Total(), totalOps
	}
	var fusedT, unfusedT soc.Seconds
	var fusedOps, unfusedOps int
	for i := 0; i < b.N; i++ {
		fusedT, fusedOps = measure(false)
		unfusedT, unfusedOps = measure(true)
	}
	b.ReportMetric(fusedT.Ms(), "fused-sim-ms")
	b.ReportMetric(unfusedT.Ms(), "unfused-sim-ms")
	b.ReportMetric(float64(fusedOps), "fused-ops")
	b.ReportMetric(float64(unfusedOps), "unfused-ops")
}

// BenchmarkExtensionAutoQuant measures the automatic-quantization extension.
func BenchmarkExtensionAutoQuant(b *testing.B) {
	var res *bench.AutoQuantResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = bench.RunAutoQuantExtension(benchSoC)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Float.Time.Ms(), "float32-sim-ms")
	b.ReportMetric(res.Quantized.Time.Ms(), "int8-sim-ms")
	b.ReportMetric(res.MaxAbsDiff, "max-output-diff")
}

// BenchmarkLivePipeline runs the real three-model application through the
// goroutine pipeline (Figure 5 assignment), reporting simulated speedup.
func BenchmarkLivePipeline(b *testing.B) {
	sc, err := app.New(app.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	src, err := video.NewSource(160, 120, 2, 2, 42)
	if err != nil {
		b.Fatal(err)
	}
	frames := src.Frames(6)
	b.ResetTimer()
	var res *app.LiveResult
	for i := 0; i < b.N; i++ {
		res, err = sc.RunLive(frames, app.Figure5Devices())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Makespan.Ms(), "sim-ms")
	b.ReportMetric(res.Speedup(), "speedup")
}
