package topi

import (
	"fmt"
	"testing"
)

func TestWeightCacheBoundAndEviction(t *testing.T) {
	prevCap := SetWeightCacheCap(8)
	defer SetWeightCacheCap(prevCap)
	ResetWeightCaches()
	defer ResetWeightCaches()

	c := newWeightCache("test")
	for i := 0; i < 50; i++ {
		c.put(fmt.Sprintf("w%d", i), i)
	}
	if got := c.len(); got > 8 {
		t.Fatalf("cache holds %d entries, cap 8", got)
	}
	if c.evictions.Load() == 0 {
		t.Fatal("no evictions recorded after 50 inserts into a cap-8 cache")
	}
	// The most recent insert always survives the eviction that made room
	// for it.
	if _, ok := c.get("w49"); !ok {
		t.Fatal("latest insert evicted")
	}
}

func TestWeightCacheLRUKeepsHotEntries(t *testing.T) {
	prevCap := SetWeightCacheCap(8)
	defer SetWeightCacheCap(prevCap)

	c := newWeightCache("test")
	for i := 0; i < 8; i++ {
		c.put(i, i)
	}
	// Touch entry 0 so it is the hottest, then overflow: the eviction scan
	// must retire stale entries, not the re-stamped one.
	if _, ok := c.get(0); !ok {
		t.Fatal("warm entry missing")
	}
	c.put(100, 100)
	if _, ok := c.get(0); !ok {
		t.Fatal("hottest entry was evicted")
	}
	if c.len() > 8 {
		t.Fatalf("cache exceeded cap: %d", c.len())
	}
}

func TestWeightCacheUpdateDoesNotEvict(t *testing.T) {
	prevCap := SetWeightCacheCap(4)
	defer SetWeightCacheCap(prevCap)

	c := newWeightCache("test")
	for i := 0; i < 4; i++ {
		c.put(i, i)
	}
	// Re-putting an existing key at capacity must not trigger eviction.
	c.put(2, 22)
	if c.evictions.Load() != 0 {
		t.Fatalf("update of existing key evicted %d entries", c.evictions.Load())
	}
	if v, ok := c.get(2); !ok || v.(int) != 22 {
		t.Fatalf("updated value = %v, %v", v, ok)
	}
}

func TestWeightCacheSnapshotCountsGemmTraffic(t *testing.T) {
	ResetWeightCaches()
	defer ResetWeightCaches()

	key1, key2 := "k1", "k2"
	gemmWeightI32.put(key1, 1)
	gemmWeightI32.put(key2, 2)
	gemmWeightI32.get(key1)
	gemmWeightI32.get(key1)
	gemmWeightI32.get("absent")

	_, i32 := WeightCacheSnapshot()
	if i32.Entries != 2 || i32.Hits != 2 || i32.Misses != 1 {
		t.Fatalf("i32 stats = %+v", i32)
	}
}
