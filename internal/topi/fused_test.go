package topi

import (
	"math/rand"
	"testing"

	"repro/internal/relay"
	"repro/internal/tensor"
)

// stagedReference runs the unfused kernel chain the fused kernels replace:
// anchor (int32 accumulator) → nn.bias_add → qnn.requantize → activation.
// The fused kernels must match it bit-for-bit — this is the §3.3 guarantee
// the graph executor relies on when it collapses the chain into one launch.
func stagedReference(t *testing.T, anchor string, args []*tensor.Tensor, attrs relay.Attrs,
	accShape tensor.Shape, outQ tensor.QuantParams, activation string) *tensor.Tensor {
	t.Helper()
	accScale := attrs.Float("requant_input_scale", 1)
	acc := run(t, anchor, args[:2], attrs)
	acc.Quant = &tensor.QuantParams{Scale: accScale, ZeroPoint: int32(attrs.Int("requant_input_zero_point", 0))}
	if len(args) == 3 {
		acc = run(t, "nn.bias_add", []*tensor.Tensor{acc, args[2]}, nil)
		acc.Quant = &tensor.QuantParams{Scale: accScale, ZeroPoint: int32(attrs.Int("requant_input_zero_point", 0))}
	}
	req := run(t, "qnn.requantize", []*tensor.Tensor{acc}, relay.Attrs{
		"input_scale":       attrs.Float("requant_input_scale", 1),
		"input_zero_point":  attrs.Int("requant_input_zero_point", 0),
		"output_scale":      attrs.Float("requant_output_scale", 1),
		"output_zero_point": attrs.Int("requant_output_zero_point", 0),
		"out_dtype":         "uint8",
	})
	req.Quant = &tensor.QuantParams{Scale: outQ.Scale, ZeroPoint: outQ.ZeroPoint}
	switch activation {
	case "":
		return req
	case "relu":
		return run(t, "nn.relu", []*tensor.Tensor{req}, nil)
	case "relu6":
		return run(t, "clip", []*tensor.Tensor{req}, relay.Attrs{"a_min": 0.0, "a_max": 6.0})
	default:
		t.Fatalf("unknown activation %q", activation)
		return nil
	}
}

func fusedQuantAttrs(activation string) (relay.Attrs, tensor.QuantParams) {
	outQ := tensor.QuantParams{Scale: 0.15, ZeroPoint: 7}
	return relay.Attrs{
		"input_scale":               0.02,
		"kernel_scale":              0.4,
		"input_zero_point":          128,
		"kernel_zero_point":         121,
		"requant_input_scale":       0.008,
		"requant_input_zero_point":  0,
		"requant_output_scale":      outQ.Scale,
		"requant_output_zero_point": int(outQ.ZeroPoint),
		"fused_activation":          activation,
	}, outQ
}

func TestFusedConv2DMatchesStagedChain(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, act := range []string{"", "relu", "relu6"} {
		name := act
		if name == "" {
			name = "none"
		}
		t.Run(name, func(t *testing.T) {
			data := tensor.New(tensor.UInt8, tensor.Shape{1, 9, 9, 4})
			weight := tensor.New(tensor.UInt8, tensor.Shape{6, 3, 3, 4})
			bias := tensor.New(tensor.Int32, tensor.Shape{6})
			for i := range data.U8() {
				data.U8()[i] = uint8(rng.Intn(256))
			}
			for i := range weight.U8() {
				weight.U8()[i] = uint8(rng.Intn(256))
			}
			for i := range bias.I32() {
				bias.I32()[i] = int32(rng.Intn(2001) - 1000)
			}
			data.Quant = &tensor.QuantParams{Scale: 0.02, ZeroPoint: 128}
			weight.Quant = &tensor.QuantParams{Scale: 0.4, ZeroPoint: 121}

			attrs, outQ := fusedQuantAttrs(act)
			attrs["strides"] = []int{1, 1}
			attrs["padding"] = []int{1, 1, 1, 1}
			args := []*tensor.Tensor{data, weight, bias}

			fused := run(t, "qnn.conv2d_fused", args, attrs)
			staged := stagedReference(t, "qnn.conv2d", args, attrs, tensor.Shape{1, 9, 9, 6}, outQ, act)

			f, s := fused.U8(), staged.U8()
			for i := range f {
				if f[i] != s[i] {
					t.Fatalf("out[%d]: fused %d != staged %d", i, f[i], s[i])
				}
			}
		})
	}
}

func TestFusedDenseMatchesStagedChain(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, act := range []string{"", "relu", "relu6"} {
		name := act
		if name == "" {
			name = "none"
		}
		t.Run(name, func(t *testing.T) {
			data := tensor.New(tensor.UInt8, tensor.Shape{3, 17})
			weight := tensor.New(tensor.UInt8, tensor.Shape{11, 17})
			bias := tensor.New(tensor.Int32, tensor.Shape{11})
			for i := range data.U8() {
				data.U8()[i] = uint8(rng.Intn(256))
			}
			for i := range weight.U8() {
				weight.U8()[i] = uint8(rng.Intn(256))
			}
			for i := range bias.I32() {
				bias.I32()[i] = int32(rng.Intn(2001) - 1000)
			}
			data.Quant = &tensor.QuantParams{Scale: 0.02, ZeroPoint: 128}
			weight.Quant = &tensor.QuantParams{Scale: 0.4, ZeroPoint: 121}

			attrs, outQ := fusedQuantAttrs(act)
			attrs["units"] = 11
			args := []*tensor.Tensor{data, weight, bias}

			fused := run(t, "qnn.dense_fused", args, attrs)
			staged := stagedReference(t, "qnn.dense", args, attrs, tensor.Shape{3, 11}, outQ, act)

			f, s := fused.U8(), staged.U8()
			for i := range f {
				if f[i] != s[i] {
					t.Fatalf("out[%d]: fused %d != staged %d", i, f[i], s[i])
				}
			}
		})
	}
}
