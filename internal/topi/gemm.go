package topi

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Cache-blocked, register-tiled GEMM backing the im2col convolution and
// dense/matmul paths. The computation is C[i][j] = Σ_k A[i][k]·B[j][k]
// (B holds filter rows, so the reduction runs over two row-major operands
// with contiguous K) — exactly the shape im2col produces.
//
// Blocking scheme:
//
//   - Both operands are repacked into register-tile panels: A into
//     gemmMR-row panels interleaved by k (panel layout ap[(it·k+kk)·MR+i]),
//     B into gemmNR-row panels (bp[(jt·k+kk)·NR+j]). The microkernel then
//     reads both operands as two forward streams, which removes all index
//     arithmetic and bounds checks from the inner loop.
//   - The microkernel keeps a full MR×NR accumulator tile in registers and
//     runs the K loop unblocked. Each output cell owns exactly one
//     accumulator that sums k in ascending order, so the result is
//     bit-identical to the naive single-accumulator dot product — the
//     property the GEMM equivalence tests pin (gemm_test.go).
//   - Weight panels are immutable per model, so packRHS results are cached
//     per weight tensor (gemmWeightCache below): steady-state inference
//     repacks only the activation side.
//
// Parallelism: the driver splits N-panel tiles across parallel.ForChunked,
// which draws from the shared inter/intra-op token budget. Called from
// inside an already-parallel conv row loop the budget is exhausted and the
// tiles run serially on the caller; called at top level (dense layers) the
// tiles fan out across the free workers.

// Register tile shape. 4×2 keeps the working set — MR·NR accumulators plus
// MR+NR operand temporaries — at 14 values, inside amd64's 16 XMM/GPR
// registers; a 4×4 tile (24 values) spills half its accumulators to the
// stack on every k iteration and benches measurably slower on the im2col
// GEMM.
const (
	gemmMR = 4 // rows of A per register tile
	gemmNR = 2 // rows of B (output channels) per register tile
)

func gemmTiles(x, tile int) int { return (x + tile - 1) / tile }

// packLHSF32 packs m rows of k elements (row stride lda) into MR-interleaved
// panels; tail rows of the last panel are zero-filled (they are computed but
// never written back).
func packLHSF32(dst, a []float32, m, k, lda int) {
	mt := gemmTiles(m, gemmMR)
	for it := 0; it < mt; it++ {
		base := it * k * gemmMR
		for i := 0; i < gemmMR; i++ {
			row := it*gemmMR + i
			if row >= m {
				for kk := 0; kk < k; kk++ {
					dst[base+kk*gemmMR+i] = 0
				}
				continue
			}
			src := a[row*lda : row*lda+k]
			for kk, v := range src {
				dst[base+kk*gemmMR+i] = v
			}
		}
	}
}

// packRHSF32 packs n rows of k elements (row stride ldb) into NR-interleaved
// panels, zero-filling tail rows.
func packRHSF32(dst, b []float32, n, k, ldb int) {
	nt := gemmTiles(n, gemmNR)
	for jt := 0; jt < nt; jt++ {
		base := jt * k * gemmNR
		for j := 0; j < gemmNR; j++ {
			row := jt*gemmNR + j
			if row >= n {
				for kk := 0; kk < k; kk++ {
					dst[base+kk*gemmNR+j] = 0
				}
				continue
			}
			src := b[row*ldb : row*ldb+k]
			for kk, v := range src {
				dst[base+kk*gemmNR+j] = v
			}
		}
	}
}

// gemmMicroF32 computes one MR×NR register tile over the full K extent. ap
// and bp must be exactly k·MR and k·NR long; the slice-advance loop lets the
// compiler elide every bounds check. One accumulator per cell, k ascending:
// bit-identical to the naive dot product.
//
//np:hotpath
func gemmMicroF32(ap, bp []float32) (acc [gemmMR * gemmNR]float32) {
	var c00, c01 float32
	var c10, c11 float32
	var c20, c21 float32
	var c30, c31 float32
	// K unrolled ×4: the slice-advance bookkeeping (~12 integer ops) then
	// amortizes over 32 MACs instead of 8. Each accumulator still sums its
	// k products in ascending order, so unrolling cannot change the result.
	for len(ap) >= 4*gemmMR && len(bp) >= 4*gemmNR {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[4], ap[5], ap[6], ap[7]
		b0, b1 = bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[8], ap[9], ap[10], ap[11]
		b0, b1 = bp[4], bp[5]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[12], ap[13], ap[14], ap[15]
		b0, b1 = bp[6], bp[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ap = ap[4*gemmMR:]
		bp = bp[4*gemmNR:]
	}
	for len(ap) >= gemmMR && len(bp) >= gemmNR {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ap = ap[gemmMR:]
		bp = bp[gemmNR:]
	}
	acc[0], acc[1] = c00, c01
	acc[2], acc[3] = c10, c11
	acc[4], acc[5] = c20, c21
	acc[6], acc[7] = c30, c31
	return acc
}

// gemmF32 computes C[i·ldc+j] = Σ_k A[i·lda+k]·Bp[j][k] for i<m, j<n, where
// bpack holds B pre-packed by packRHSF32 (or the weight cache). Overwrite
// semantics; each cell's reduction is bit-identical to the naive loop.
func gemmF32(m, n, k int, a []float32, lda int, bpack []float32, c []float32, ldc int) {
	gemmF32Cfg(m, n, k, a, lda, bpack, c, ldc, nil)
}

// gemmMCBlock resolves the tuned MC row-block size: the full m by default,
// else cfg.GemmMC rounded up to the register-tile height. Blocking only
// changes which LHS rows are packed together per scratch fill — every output
// cell still runs one k-ascending reduction, so results stay bit-identical.
func gemmMCBlock(m int, cfg *KernelConfig) int {
	if cfg == nil || cfg.GemmMC <= 0 || cfg.GemmMC >= m {
		return m
	}
	return gemmTiles(cfg.GemmMC, gemmMR) * gemmMR
}

// gemmF32Cfg is gemmF32 with tuned knobs: MC row blocking (bounds packing
// scratch, improves LHS locality for tall matrices) and per-call worker/grain
// limits on the N-tile loop.
func gemmF32Cfg(m, n, k int, a []float32, lda int, bpack []float32, c []float32, ldc int, cfg *KernelConfig) {
	if m <= 0 || n <= 0 {
		return
	}
	mc := gemmMCBlock(m, cfg)
	nt := gemmTiles(n, gemmNR)
	opts := cfg.gemmOpts()
	apP := getScratchF32(gemmTiles(mc, gemmMR) * gemmMR * k)
	ap := *apP
	for i0 := 0; i0 < m; i0 += mc {
		mb := m - i0
		if mb > mc {
			mb = mc
		}
		packLHSF32(ap, a[i0*lda:], mb, k, lda)
		mt := gemmTiles(mb, gemmMR)
		cb := c[i0*ldc:]
		parallel.ForChunkedOpts(nt, opts, func(jtLo, jtHi int) {
			for jt := jtLo; jt < jtHi; jt++ {
				bp := bpack[jt*k*gemmNR : (jt+1)*k*gemmNR]
				nj := n - jt*gemmNR
				if nj > gemmNR {
					nj = gemmNR
				}
				for it := 0; it < mt; it++ {
					acc := gemmMicroF32(ap[it*k*gemmMR:(it+1)*k*gemmMR], bp)
					mi := mb - it*gemmMR
					if mi > gemmMR {
						mi = gemmMR
					}
					for i := 0; i < mi; i++ {
						row := cb[(it*gemmMR+i)*ldc+jt*gemmNR:]
						for j := 0; j < nj; j++ {
							row[j] = acc[i*gemmNR+j]
						}
					}
				}
			}
		})
	}
	putScratchF32(apP)
}

// ---- int32 variant (quantized conv/dense accumulators) ----

// packLHSI32 packs m rows of k int32 elements into MR-interleaved panels.
func packLHSI32(dst, a []int32, m, k, lda int) {
	mt := gemmTiles(m, gemmMR)
	for it := 0; it < mt; it++ {
		base := it * k * gemmMR
		for i := 0; i < gemmMR; i++ {
			row := it*gemmMR + i
			if row >= m {
				for kk := 0; kk < k; kk++ {
					dst[base+kk*gemmMR+i] = 0
				}
				continue
			}
			src := a[row*lda : row*lda+k]
			for kk, v := range src {
				dst[base+kk*gemmMR+i] = v
			}
		}
	}
}

// gemmMicroI32 is the int32 register tile. Integer addition is associative,
// so any evaluation order is bitwise-exact.
//
//np:hotpath
func gemmMicroI32(ap, bp []int32) (acc [gemmMR * gemmNR]int32) {
	var c00, c01 int32
	var c10, c11 int32
	var c20, c21 int32
	var c30, c31 int32
	// Same ×4 K unroll as the f32 kernel; integer addition is associative,
	// so evaluation order is irrelevant to the (exact) result anyway.
	for len(ap) >= 4*gemmMR && len(bp) >= 4*gemmNR {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[4], ap[5], ap[6], ap[7]
		b0, b1 = bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[8], ap[9], ap[10], ap[11]
		b0, b1 = bp[4], bp[5]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[12], ap[13], ap[14], ap[15]
		b0, b1 = bp[6], bp[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ap = ap[4*gemmMR:]
		bp = bp[4*gemmNR:]
	}
	for len(ap) >= gemmMR && len(bp) >= gemmNR {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ap = ap[gemmMR:]
		bp = bp[gemmNR:]
	}
	acc[0], acc[1] = c00, c01
	acc[2], acc[3] = c10, c11
	acc[4], acc[5] = c20, c21
	acc[6], acc[7] = c30, c31
	return acc
}

// gemmI32 is the memory-writing int32 driver (overwrite semantics), with the
// same N-tile parallelism as gemmF32.
func gemmI32(m, n, k int, a []int32, lda int, bpack []int32, c []int32, ldc int) {
	gemmI32Cfg(m, n, k, a, lda, bpack, c, ldc, nil)
}

// gemmI32Cfg is gemmI32 with tuned MC blocking and worker/grain limits.
func gemmI32Cfg(m, n, k int, a []int32, lda int, bpack []int32, c []int32, ldc int, cfg *KernelConfig) {
	if m <= 0 || n <= 0 {
		return
	}
	mc := gemmMCBlock(m, cfg)
	nt := gemmTiles(n, gemmNR)
	opts := cfg.gemmOpts()
	apP := getScratchI32(gemmTiles(mc, gemmMR) * gemmMR * k)
	ap := *apP
	for i0 := 0; i0 < m; i0 += mc {
		mb := m - i0
		if mb > mc {
			mb = mc
		}
		packLHSI32(ap, a[i0*lda:], mb, k, lda)
		mt := gemmTiles(mb, gemmMR)
		cb := c[i0*ldc:]
		parallel.ForChunkedOpts(nt, opts, func(jtLo, jtHi int) {
			for jt := jtLo; jt < jtHi; jt++ {
				bp := bpack[jt*k*gemmNR : (jt+1)*k*gemmNR]
				nj := n - jt*gemmNR
				if nj > gemmNR {
					nj = gemmNR
				}
				for it := 0; it < mt; it++ {
					acc := gemmMicroI32(ap[it*k*gemmMR:(it+1)*k*gemmMR], bp)
					mi := mb - it*gemmMR
					if mi > gemmMR {
						mi = gemmMR
					}
					for i := 0; i < mi; i++ {
						row := cb[(it*gemmMR+i)*ldc+jt*gemmNR:]
						for j := 0; j < nj; j++ {
							row[j] = acc[i*gemmNR+j]
						}
					}
				}
			}
		})
	}
	putScratchI32(apP)
}

// ---- packed weight caches ----
//
// Convolution and dense weights are module constants: pack them once per
// weight tensor and reuse the panels for every inference. Keyed by tensor
// identity, so live modules keep their entries hot; the caches themselves
// are the bounded weightCache instances in weightcache.go, so retired
// models' panels age out instead of accumulating forever. A key collision
// (same tensor used with different grouping or zero point — which real
// models never do) falls back to an uncached pack.

type packedWeightF32 struct {
	groups, k int
	data      []float32 // groups · ceil(ocg/NR)·NR · k
}

type packedWeightI32 struct {
	groups, k int
	zp        int32
	data      []int32
}

// groupPanelLen returns the packed length of one group's panels.
func groupPanelLen(ocg, k, nr int) int { return gemmTiles(ocg, nr) * nr * k }

func buildPackedWeightF32(w []float32, oc, k, groups int) *packedWeightF32 {
	ocg := oc / groups
	glen := groupPanelLen(ocg, k, gemmNR)
	pw := &packedWeightF32{groups: groups, k: k, data: make([]float32, groups*glen)}
	for g := 0; g < groups; g++ {
		packRHSF32(pw.data[g*glen:(g+1)*glen], w[g*ocg*k:], ocg, k, k)
	}
	return pw
}

// group returns the panel slice for group g.
func (pw *packedWeightF32) group(g, ocg int) []float32 {
	glen := groupPanelLen(ocg, pw.k, gemmNR)
	return pw.data[g*glen : (g+1)*glen]
}

func (pw *packedWeightI32) group(g, ocg int) []int32 {
	glen := groupPanelLen(ocg, pw.k, gemmNR)
	return pw.data[g*glen : (g+1)*glen]
}

// packRHSI32 packs n rows of k int32 elements into NR-interleaved panels.
func packRHSI32(dst, b []int32, n, k, ldb int) {
	nt := gemmTiles(n, gemmNR)
	for jt := 0; jt < nt; jt++ {
		base := jt * k * gemmNR
		for j := 0; j < gemmNR; j++ {
			row := jt*gemmNR + j
			if row >= n {
				for kk := 0; kk < k; kk++ {
					dst[base+kk*gemmNR+j] = 0
				}
				continue
			}
			src := b[row*ldb : row*ldb+k]
			for kk, v := range src {
				dst[base+kk*gemmNR+j] = v
			}
		}
	}
}

// packedConvWeightF32 returns the cached NR panels for a float weight tensor
// laid out as oc rows of k elements, split into groups.
func packedConvWeightF32(w *tensor.Tensor, oc, k, groups int) *packedWeightF32 {
	if v, ok := gemmWeightF32.get(w); ok {
		pw := v.(*packedWeightF32)
		if pw.groups == groups && pw.k == k {
			return pw
		}
		return buildPackedWeightF32(w.F32(), oc, k, groups)
	}
	pw := buildPackedWeightF32(w.F32(), oc, k, groups)
	gemmWeightF32.put(w, pw)
	return pw
}

func buildPackedWeightI32(w *tensor.Tensor, oc, k, groups int, zp int32) (*packedWeightI32, error) {
	rawP := getScratchI32(oc * k)
	raw := *rawP
	if err := rawMinusZp(raw, w, zp); err != nil {
		putScratchI32(rawP)
		return nil, err
	}
	ocg := oc / groups
	glen := groupPanelLen(ocg, k, gemmNR)
	pw := &packedWeightI32{groups: groups, k: k, zp: zp, data: make([]int32, groups*glen)}
	for g := 0; g < groups; g++ {
		packRHSI32(pw.data[g*glen:(g+1)*glen], raw[g*ocg*k:], ocg, k, k)
	}
	putScratchI32(rawP)
	return pw, nil
}

// packedConvWeightI32 returns the cached (raw − zero_point) NR panels for a
// quantized weight tensor.
func packedConvWeightI32(w *tensor.Tensor, oc, k, groups int, zp int32) (*packedWeightI32, error) {
	if v, ok := gemmWeightI32.get(w); ok {
		pw := v.(*packedWeightI32)
		if pw.groups == groups && pw.k == k && pw.zp == zp {
			return pw, nil
		}
		return buildPackedWeightI32(w, oc, k, groups, zp)
	}
	pw, err := buildPackedWeightI32(w, oc, k, groups, zp)
	if err != nil {
		return nil, err
	}
	gemmWeightI32.put(w, pw)
	return pw, nil
}

// rawMinusZp widens a quantized tensor's raw values into dst, subtracting
// the zero point.
func rawMinusZp(dst []int32, t *tensor.Tensor, zp int32) error {
	switch t.DType {
	case tensor.UInt8:
		for i, v := range t.U8() {
			dst[i] = int32(v) - zp
		}
	case tensor.Int8:
		for i, v := range t.I8() {
			dst[i] = int32(v) - zp
		}
	case tensor.Int32:
		for i, v := range t.I32() {
			dst[i] = v - zp
		}
	default:
		return fmt.Errorf("quantized kernel on %s tensor", t.DType)
	}
	return nil
}
