// Package topi implements the CPU reference kernels ("tensor operator
// inventory") for every registered relay operator, in float32 and in the
// quantized integer domain. The TVM-side graph executor calls these directly;
// the simulated NeuroPilot runtime reuses them for numerics while charging
// device-specific costs through the SoC model.
//
// Kernels receive already-evaluated argument tensors plus the call attributes
// and the type-checked output type (whose shape/dtype/quant they must honor).
// Tuple-typed arguments (concatenate) are flattened by the caller.
package topi

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/relay"
	"repro/internal/tensor"
)

// Kernel computes one operator application.
type Kernel func(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType) (*tensor.Tensor, error)

var (
	kernelMu sync.RWMutex
	kernels  = map[string]Kernel{}
)

// Register installs the kernel for an operator name; duplicate registration
// panics (init-order bug).
func Register(name string, k Kernel) {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	if _, dup := kernels[name]; dup {
		panic(fmt.Sprintf("topi: duplicate kernel %q", name))
	}
	kernels[name] = k
}

// Lookup returns the kernel for an operator name.
func Lookup(name string) (Kernel, bool) {
	kernelMu.RLock()
	defer kernelMu.RUnlock()
	k, ok := kernels[name]
	return k, ok
}

// Run executes one operator. It is the single entry point used by the graph
// executor and the Neuron runtime.
func Run(name string, args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType) (*tensor.Tensor, error) {
	k, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("topi: no kernel registered for %q", name)
	}
	t, err := k(args, attrs, out)
	if err != nil {
		return nil, fmt.Errorf("topi: %s: %w", name, err)
	}
	if !t.Shape.Equal(out.Shape) {
		return nil, fmt.Errorf("topi: %s produced shape %s, type checker said %s", name, t.Shape, out.Shape)
	}
	return t, nil
}

// KernelNames returns all registered kernel names, sorted; tests use it to
// assert every relay op has a kernel.
func KernelNames() []string {
	kernelMu.RLock()
	defer kernelMu.RUnlock()
	names := make([]string, 0, len(kernels))
	for n := range kernels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// newOutput allocates the output tensor described by the checked type.
func newOutput(out *relay.TensorType) *tensor.Tensor {
	t := tensor.New(out.DType, out.Shape)
	if out.Quant != nil {
		q := *out.Quant
		t.Quant = &q
	}
	return t
}

func wantArgs(args []*tensor.Tensor, n int, name string) error {
	if len(args) != n {
		return fmt.Errorf("%s kernel expects %d args, got %d", name, n, len(args))
	}
	return nil
}
