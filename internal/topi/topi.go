// Package topi implements the CPU reference kernels ("tensor operator
// inventory") for every registered relay operator, in float32 and in the
// quantized integer domain. The TVM-side graph executor calls these directly;
// the simulated NeuroPilot runtime reuses them for numerics while charging
// device-specific costs through the SoC model.
//
// Kernels receive already-evaluated argument tensors plus the call attributes
// and the type-checked output type (whose shape/dtype/quant they must honor).
// Tuple-typed arguments (concatenate) are flattened by the caller.
package topi

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/relay"
	"repro/internal/tensor"
)

// Kernel computes one operator application. dst is an optional destination
// buffer supplied by the planned executor (RunInto): when non-nil it matches
// the checked output type's dtype and element count, and the kernel should
// write its result there instead of allocating. A nil dst (the Run path)
// means the kernel allocates its own output. dst contents are unspecified on
// entry; kernels that need zero-initialized output must clear it themselves.
type Kernel func(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dst *tensor.Tensor) (*tensor.Tensor, error)

var (
	kernelMu sync.RWMutex
	kernels  = map[string]Kernel{}
)

// Register installs the kernel for an operator name; duplicate registration
// panics (init-order bug).
func Register(name string, k Kernel) {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	if _, dup := kernels[name]; dup {
		panic(fmt.Sprintf("topi: duplicate kernel %q", name))
	}
	kernels[name] = k
}

// Lookup returns the kernel for an operator name.
func Lookup(name string) (Kernel, bool) {
	kernelMu.RLock()
	defer kernelMu.RUnlock()
	k, ok := kernels[name]
	return k, ok
}

// Run executes one operator, allocating a fresh output tensor. It is the
// entry point used by the interpreting graph executor and the Neuron runtime.
func Run(name string, args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType) (*tensor.Tensor, error) {
	k, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("topi: no kernel registered for %q", name)
	}
	if r := kernelObs.Load(); r != nil {
		defer observeKernel(r, name, time.Now())
	}
	t, err := k(args, attrs, out, nil)
	if err != nil {
		return nil, fmt.Errorf("topi: %s: %w", name, err)
	}
	if !t.Shape.Equal(out.Shape) {
		return nil, fmt.Errorf("topi: %s produced shape %s, type checker said %s", name, t.Shape, out.Shape)
	}
	return t, nil
}

// RunInto executes one operator into a caller-supplied destination buffer
// (typically an arena view handed out by the planned executor's memory
// planner). dst must match the checked output type's dtype and element count.
// Kernels normally write dst in place; the few that fundamentally produce a
// fresh tensor fall back to a copy so the caller's aliasing contract holds.
func RunInto(name string, args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dst *tensor.Tensor) error {
	k, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("topi: no kernel registered for %q", name)
	}
	if dst == nil {
		return fmt.Errorf("topi: RunInto %s with nil destination", name)
	}
	if dst.DType != out.DType || dst.Elems() != out.Shape.Elems() {
		return fmt.Errorf("topi: RunInto %s destination %s %s does not match checked type %s %s",
			name, dst.DType, dst.Shape, out.DType, out.Shape)
	}
	if r := kernelObs.Load(); r != nil {
		defer observeKernel(r, name, time.Now())
	}
	t, err := k(args, attrs, out, dst)
	if err != nil {
		return fmt.Errorf("topi: %s: %w", name, err)
	}
	if !t.Shape.Equal(out.Shape) {
		return fmt.Errorf("topi: %s produced shape %s, type checker said %s", name, t.Shape, out.Shape)
	}
	if t != dst {
		if err := dst.CopyFrom(t); err != nil {
			return fmt.Errorf("topi: %s: %w", name, err)
		}
	}
	return nil
}

// KernelNames returns all registered kernel names, sorted; tests use it to
// assert every relay op has a kernel.
func KernelNames() []string {
	kernelMu.RLock()
	defer kernelMu.RUnlock()
	names := make([]string, 0, len(kernels))
	for n := range kernels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// newOutput allocates the output tensor described by the checked type.
func newOutput(out *relay.TensorType) *tensor.Tensor {
	t := tensor.New(out.DType, out.Shape)
	if out.Quant != nil {
		q := *out.Quant
		t.Quant = &q
	}
	return t
}

// output returns the destination buffer for a kernel: dst when the caller
// supplied one (RunInto — no allocation, contents stale), otherwise a fresh
// zero-filled tensor. Kernels that overwrite every output element use this
// as-is; a kernel whose algorithm assumes zeroed output (nn.pad) must clear
// the reused buffer itself.
func output(dst *tensor.Tensor, out *relay.TensorType) *tensor.Tensor {
	if dst == nil {
		return newOutput(out)
	}
	if out.Quant == nil {
		dst.Quant = nil
	} else if dst.Quant == nil || *dst.Quant != *out.Quant {
		// Only reallocate when the view's params differ; arena views arrive
		// pre-bound with the slot's params, keeping the steady state alloc-free.
		q := *out.Quant
		dst.Quant = &q
	}
	return dst
}

func wantArgs(args []*tensor.Tensor, n int, name string) error {
	if len(args) != n {
		return fmt.Errorf("%s kernel expects %d args, got %d", name, n, len(args))
	}
	return nil
}
