package topi

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Per-kernel observability: when a registry is installed, every Run/RunInto
// dispatch is counted and its wall time accumulated under the kernel's name.
// The hook is an atomic pointer so the disabled path costs one load on the
// kernel hot path and nothing else; serving (npserve /metricsz) enables it,
// batch tools leave it off.
var kernelObs atomic.Pointer[kernelMetrics]

// kernelMetrics pairs the installed registry with a per-kernel counter
// cache: label construction and registry lookup allocate, so the steady
// state resolves each kernel name once and after that touches only the two
// atomic counters.
type kernelMetrics struct {
	reg   *obs.Registry
	cache sync.Map // kernel name → *kernelCounters
}

type kernelCounters struct {
	launches *obs.Counter
	seconds  *obs.Counter
}

func (m *kernelMetrics) countersFor(name string) *kernelCounters {
	if c, ok := m.cache.Load(name); ok {
		return c.(*kernelCounters)
	}
	labels := obs.L("kernel", name)
	kc := &kernelCounters{
		launches: m.reg.Counter("np_kernel_launches_total",
			"Kernel dispatches by operator kernel name.", labels),
		seconds: m.reg.Counter("np_kernel_seconds_total",
			"Cumulative wall time spent inside operator kernels.", labels),
	}
	c, _ := m.cache.LoadOrStore(name, kc)
	return c.(*kernelCounters)
}

// EnableKernelMetrics routes per-kernel launch counts and cumulative wall
// time into r (Prometheus series np_kernel_launches_total and
// np_kernel_seconds_total, labeled by kernel name). Pass nil to disable.
func EnableKernelMetrics(r *obs.Registry) {
	if r == nil {
		kernelObs.Store(nil)
		return
	}
	kernelObs.Store(&kernelMetrics{reg: r})
}

// observeKernel records one kernel dispatch. Called with the start time so
// the instrumentation wraps the kernel body only, not counter resolution.
func observeKernel(m *kernelMetrics, name string, start time.Time) {
	dur := time.Since(start)
	kc := m.countersFor(name)
	kc.launches.Inc()
	kc.seconds.Add(dur.Seconds())
}
