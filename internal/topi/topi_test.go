package topi

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
	"repro/internal/relay"
	"repro/internal/tensor"
)

// run type-infers the op on the arg types and executes the kernel, failing
// the test on any error. This mirrors exactly what the graph executor does.
func run(t *testing.T, opName string, args []*tensor.Tensor, attrs relay.Attrs) *tensor.Tensor {
	t.Helper()
	op := relay.GetOp(opName)
	types := make([]relay.Type, len(args))
	for i, a := range args {
		tt := &relay.TensorType{Shape: a.Shape, DType: a.DType}
		if a.Quant != nil {
			q := *a.Quant
			tt.Quant = &q
		}
		types[i] = tt
	}
	// Tuple-taking ops receive a TupleType built from all args.
	if opName == "concatenate" || opName == "qnn.concatenate" {
		fields := types
		types = []relay.Type{&relay.TupleType{Fields: fields}}
	}
	if attrs == nil {
		attrs = relay.Attrs{}
	}
	outTy, err := op.Infer(types, attrs)
	if err != nil {
		t.Fatalf("%s type inference: %v", opName, err)
	}
	out, err := Run(opName, args, attrs, outTy.(*relay.TensorType))
	if err != nil {
		t.Fatalf("%s kernel: %v", opName, err)
	}
	return out
}

// referenceConv2D is an independent, maximally-naive convolution used to
// cross-check the optimized kernel.
func referenceConv2D(data, weight *tensor.Tensor, sh, sw int, pad [4]int, groups int) *tensor.Tensor {
	n, h, w := data.Shape[0], data.Shape[1], data.Shape[2]
	oc, kh, kw, icg := weight.Shape[0], weight.Shape[1], weight.Shape[2], weight.Shape[3]
	oh := (h+pad[0]+pad[2]-kh)/sh + 1
	ow := (w+pad[1]+pad[3]-kw)/sw + 1
	out := tensor.New(tensor.Float32, tensor.Shape{n, oh, ow, oc})
	ocg := oc / groups
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for o := 0; o < oc; o++ {
					g := o / ocg
					acc := 0.0
					for ky := 0; ky < kh; ky++ {
						for kx := 0; kx < kw; kx++ {
							iy, ix := oy*sh-pad[0]+ky, ox*sw-pad[1]+kx
							if iy < 0 || iy >= h || ix < 0 || ix >= w {
								continue
							}
							for ic := 0; ic < icg; ic++ {
								acc += data.At(b, iy, ix, g*icg+ic) * weight.At(o, ky, kx, ic)
							}
						}
					}
					out.Set(acc, b, oy, ox, o)
				}
			}
		}
	}
	return out
}

func randTensor(shape tensor.Shape, seed uint64) *tensor.Tensor {
	t := tensor.New(tensor.Float32, shape)
	t.FillUniform(tensor.NewRNG(seed), -1, 1)
	return t
}

func TestConv2DMatchesReference(t *testing.T) {
	cases := []struct {
		name         string
		dataShape    tensor.Shape
		weightShape  tensor.Shape
		strides, pad []int
		groups       int
	}{
		{"basic3x3", tensor.Shape{1, 8, 8, 3}, tensor.Shape{4, 3, 3, 3}, []int{1, 1}, []int{1, 1}, 1},
		{"stride2", tensor.Shape{2, 9, 9, 2}, tensor.Shape{3, 3, 3, 2}, []int{2, 2}, []int{0, 0}, 1},
		{"1x1", tensor.Shape{1, 5, 5, 8}, tensor.Shape{16, 1, 1, 8}, []int{1, 1}, []int{0, 0}, 1},
		{"depthwise", tensor.Shape{1, 8, 8, 6}, tensor.Shape{6, 3, 3, 1}, []int{1, 1}, []int{1, 1}, 6},
		{"grouped", tensor.Shape{1, 6, 6, 4}, tensor.Shape{8, 3, 3, 2}, []int{1, 1}, []int{1, 1}, 2},
		{"asym-pad", tensor.Shape{1, 7, 7, 2}, tensor.Shape{2, 3, 3, 2}, []int{2, 2}, []int{0, 1, 0, 1}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data := randTensor(c.dataShape, 1)
			weight := randTensor(c.weightShape, 2)
			attrs := relay.Attrs{"strides": c.strides, "padding": c.pad, "groups": c.groups}
			got := run(t, "nn.conv2d", []*tensor.Tensor{data, weight}, attrs)
			pad := relay.Attrs{"padding": c.pad}.Pad4("padding")
			want := referenceConv2D(data, weight, c.strides[0], c.strides[1], pad, c.groups)
			if !tensor.AllClose(got, want, 1e-4, 1e-4) {
				t.Errorf("conv2d mismatch, max diff %g", tensor.MaxAbsDiff(got, want))
			}
		})
	}
}

func TestConv2DSerialEqualsParallel(t *testing.T) {
	data := randTensor(tensor.Shape{2, 16, 16, 8}, 3)
	weight := randTensor(tensor.Shape{8, 3, 3, 8}, 4)
	attrs := relay.Attrs{"strides": []int{1, 1}, "padding": []int{1, 1}}
	par := run(t, "nn.conv2d", []*tensor.Tensor{data, weight}, attrs)
	old := parallel.SetMaxWorkers(1)
	defer parallel.SetMaxWorkers(old)
	ser := run(t, "nn.conv2d", []*tensor.Tensor{data, weight}, attrs)
	if !tensor.AllClose(par, ser, 0, 0) {
		t.Error("parallel and serial conv2d disagree bit-for-bit")
	}
}

func TestQnnConv2DMatchesFloat(t *testing.T) {
	// Quantize a float conv problem, run qnn.conv2d, dequantize the int32
	// accumulator, and compare against float conv within quantization error.
	data := randTensor(tensor.Shape{1, 6, 6, 3}, 5)
	weight := randTensor(tensor.Shape{4, 3, 3, 3}, 6)
	qIn := QuantizeLinear(AbsMax(data), tensor.UInt8)
	qW := QuantizeLinear(AbsMax(weight), tensor.Int8)
	qData := data.QuantizeTo(tensor.UInt8, qIn)
	qWeight := weight.QuantizeTo(tensor.Int8, qW)
	attrs := relay.Attrs{
		"strides": []int{1, 1}, "padding": []int{1, 1},
		"input_scale": qIn.Scale, "input_zero_point": int(qIn.ZeroPoint),
		"kernel_scale": qW.Scale, "kernel_zero_point": int(qW.ZeroPoint),
	}
	acc := run(t, "qnn.conv2d", []*tensor.Tensor{qData, qWeight}, attrs)
	if acc.DType != tensor.Int32 {
		t.Fatalf("accumulator dtype %s", acc.DType)
	}
	want := referenceConv2D(data, weight, 1, 1, [4]int{1, 1, 1, 1}, 1)
	// Dequantize accumulator with combined scale.
	deq := tensor.New(tensor.Float32, acc.Shape)
	for i := 0; i < acc.Elems(); i++ {
		deq.F32()[i] = float32(float64(acc.I32()[i]) * qIn.Scale * qW.Scale)
	}
	// Error bound: per-tap quantization error accumulates over K=27 taps.
	if !tensor.AllClose(deq, want, 0.08, 0.05) {
		t.Errorf("qnn.conv2d mismatch, max diff %g", tensor.MaxAbsDiff(deq, want))
	}
}

func TestDenseMatchesManual(t *testing.T) {
	data := tensor.FromF32([]float32{1, 2, 3, 4, 5, 6}, tensor.Shape{2, 3})
	weight := tensor.FromF32([]float32{1, 0, 0, 0, 1, 0}, tensor.Shape{2, 3})
	got := run(t, "nn.dense", []*tensor.Tensor{data, weight}, nil)
	want := tensor.FromF32([]float32{1, 2, 4, 5}, tensor.Shape{2, 2})
	if !tensor.AllClose(got, want, 0, 0) {
		t.Errorf("dense = %v", got.F32())
	}
}

func TestQnnDenseMatchesFloat(t *testing.T) {
	data := randTensor(tensor.Shape{2, 32}, 7)
	weight := randTensor(tensor.Shape{4, 32}, 8)
	qIn := QuantizeLinear(AbsMax(data), tensor.UInt8)
	qW := QuantizeLinear(AbsMax(weight), tensor.Int8)
	attrs := relay.Attrs{
		"input_scale": qIn.Scale, "input_zero_point": int(qIn.ZeroPoint),
		"kernel_scale": qW.Scale, "kernel_zero_point": int(qW.ZeroPoint),
	}
	acc := run(t, "qnn.dense", []*tensor.Tensor{
		data.QuantizeTo(tensor.UInt8, qIn), weight.QuantizeTo(tensor.Int8, qW)}, attrs)
	want := run(t, "nn.dense", []*tensor.Tensor{data, weight}, nil)
	for i := 0; i < acc.Elems(); i++ {
		got := float64(acc.I32()[i]) * qIn.Scale * qW.Scale
		if math.Abs(got-float64(want.F32()[i])) > 0.1 {
			t.Fatalf("qnn.dense[%d] = %g, float %g", i, got, want.F32()[i])
		}
	}
}

func TestMaxPool(t *testing.T) {
	in := tensor.FromF32([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, tensor.Shape{1, 4, 4, 1})
	got := run(t, "nn.max_pool2d", []*tensor.Tensor{in},
		relay.Attrs{"pool_size": []int{2, 2}, "strides": []int{2, 2}})
	want := []float32{6, 8, 14, 16}
	for i, w := range want {
		if got.F32()[i] != w {
			t.Errorf("maxpool[%d] = %g, want %g", i, got.F32()[i], w)
		}
	}
}

func TestMaxPoolQuantizedRawDomain(t *testing.T) {
	q := tensor.QuantParams{Scale: 0.5, ZeroPoint: 10}
	in := tensor.FromU8([]uint8{1, 9, 4, 7}, tensor.Shape{1, 2, 2, 1}, q)
	got := run(t, "nn.max_pool2d", []*tensor.Tensor{in},
		relay.Attrs{"pool_size": []int{2, 2}, "strides": []int{2, 2}})
	if got.DType != tensor.UInt8 || got.U8()[0] != 9 {
		t.Errorf("quantized maxpool = %v", got)
	}
	if got.Quant == nil || *got.Quant != q {
		t.Error("quantized maxpool dropped quant params")
	}
}

func TestAvgPoolExcludesPadding(t *testing.T) {
	in := tensor.FromF32([]float32{4, 4, 4, 4}, tensor.Shape{1, 2, 2, 1})
	got := run(t, "nn.avg_pool2d", []*tensor.Tensor{in},
		relay.Attrs{"pool_size": []int{2, 2}, "strides": []int{1, 1}, "padding": []int{1, 1}})
	// With exclude-pad semantics, every window averages only real elements: 4.
	for i := 0; i < got.Elems(); i++ {
		if got.F32()[i] != 4 {
			t.Errorf("avgpool[%d] = %g, want 4 (padding must be excluded)", i, got.F32()[i])
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := randTensor(tensor.Shape{2, 4, 4, 3}, 11)
	got := run(t, "nn.global_avg_pool2d", []*tensor.Tensor{in}, nil)
	for b := 0; b < 2; b++ {
		for c := 0; c < 3; c++ {
			var sum float64
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					sum += in.At(b, y, x, c)
				}
			}
			want := sum / 16
			if math.Abs(got.At(b, 0, 0, c)-want) > 1e-5 {
				t.Errorf("gap[%d,%d] = %g, want %g", b, c, got.At(b, 0, 0, c), want)
			}
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	in := randTensor(tensor.Shape{3, 7}, 12)
	got := run(t, "nn.softmax", []*tensor.Tensor{in}, nil)
	for r := 0; r < 3; r++ {
		var sum float64
		for c := 0; c < 7; c++ {
			v := got.At(r, c)
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %g", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("row %d sums to %g", r, sum)
		}
	}
}

func TestSoftmaxNumericallyStable(t *testing.T) {
	in := tensor.FromF32([]float32{1000, 1001, 1002}, tensor.Shape{1, 3})
	got := run(t, "nn.softmax", []*tensor.Tensor{in}, nil)
	for i := 0; i < 3; i++ {
		if math.IsNaN(got.At(0, i)) || math.IsInf(got.At(0, i), 0) {
			t.Fatal("softmax overflowed on large inputs")
		}
	}
}

func TestBatchNormFoldsToScaleShift(t *testing.T) {
	c := 4
	data := randTensor(tensor.Shape{1, 2, 2, c}, 13)
	gamma := randTensor(tensor.Shape{c}, 14)
	beta := randTensor(tensor.Shape{c}, 15)
	mean := randTensor(tensor.Shape{c}, 16)
	variance := tensor.New(tensor.Float32, tensor.Shape{c})
	variance.FillUniform(tensor.NewRNG(17), 0.5, 2)
	got := run(t, "nn.batch_norm", []*tensor.Tensor{data, gamma, beta, mean, variance},
		relay.Attrs{"epsilon": 1e-5})
	for i := 0; i < data.Elems(); i++ {
		ch := i % c
		want := (data.GetF(i)-mean.GetF(ch))/math.Sqrt(variance.GetF(ch)+1e-5)*gamma.GetF(ch) + beta.GetF(ch)
		if math.Abs(got.GetF(i)-want) > 1e-4 {
			t.Fatalf("bn[%d] = %g, want %g", i, got.GetF(i), want)
		}
	}
}

func TestBroadcastAdd(t *testing.T) {
	a := tensor.FromF32([]float32{1, 2, 3, 4, 5, 6}, tensor.Shape{2, 3})
	b := tensor.FromF32([]float32{10, 20, 30}, tensor.Shape{3})
	got := run(t, "add", []*tensor.Tensor{a, b}, nil)
	want := []float32{11, 22, 33, 14, 25, 36}
	for i, w := range want {
		if got.F32()[i] != w {
			t.Errorf("add[%d] = %g, want %g", i, got.F32()[i], w)
		}
	}
}

func TestBroadcastScalar(t *testing.T) {
	a := tensor.FromF32([]float32{1, 2}, tensor.Shape{2})
	s := tensor.Scalar(5)
	got := run(t, "multiply", []*tensor.Tensor{a, s}, nil)
	if got.F32()[0] != 5 || got.F32()[1] != 10 {
		t.Errorf("scalar broadcast = %v", got.F32())
	}
}

func TestTranspose(t *testing.T) {
	in := tensor.FromF32([]float32{1, 2, 3, 4, 5, 6}, tensor.Shape{2, 3})
	got := run(t, "transpose", []*tensor.Tensor{in}, relay.Attrs{"axes": []int{1, 0}})
	if !got.Shape.Equal(tensor.Shape{3, 2}) {
		t.Fatalf("transpose shape %s", got.Shape)
	}
	if got.At(0, 1) != 4 || got.At(2, 0) != 3 {
		t.Errorf("transpose values wrong: %v", got.F32())
	}
}

func TestConcatenateAxis(t *testing.T) {
	a := tensor.FromF32([]float32{1, 2}, tensor.Shape{1, 2})
	b := tensor.FromF32([]float32{3, 4, 5, 6}, tensor.Shape{1, 4})
	got := run(t, "concatenate", []*tensor.Tensor{a, b}, relay.Attrs{"axis": 1})
	want := []float32{1, 2, 3, 4, 5, 6}
	for i, w := range want {
		if got.F32()[i] != w {
			t.Errorf("concat[%d] = %g", i, got.F32()[i])
		}
	}
}

func TestPadQuantizedUsesZeroPoint(t *testing.T) {
	q := tensor.QuantParams{Scale: 0.1, ZeroPoint: 7}
	in := tensor.FromU8([]uint8{50}, tensor.Shape{1, 1, 1, 1}, q)
	got := run(t, "nn.pad", []*tensor.Tensor{in}, relay.Attrs{"pad_width": []int{1, 1}})
	if got.U8()[0] != 7 {
		t.Errorf("quantized pad filled with %d, want zero point 7", got.U8()[0])
	}
	if got.At(0, 1, 1, 0) != in.At(0, 0, 0, 0) {
		t.Error("pad misplaced the payload")
	}
}

func TestUpsampling(t *testing.T) {
	in := tensor.FromF32([]float32{1, 2, 3, 4}, tensor.Shape{1, 2, 2, 1})
	got := run(t, "nn.upsampling", []*tensor.Tensor{in}, relay.Attrs{"scale": 2})
	if !got.Shape.Equal(tensor.Shape{1, 4, 4, 1}) {
		t.Fatalf("upsampling shape %s", got.Shape)
	}
	if got.At(0, 0, 0, 0) != 1 || got.At(0, 1, 1, 0) != 1 || got.At(0, 3, 3, 0) != 4 {
		t.Error("nearest upsampling values wrong")
	}
}

func TestRequantizeRoundTrip(t *testing.T) {
	q1 := tensor.QuantParams{Scale: 0.05, ZeroPoint: 100}
	in := tensor.FromU8([]uint8{0, 50, 100, 150, 255}, tensor.Shape{5}, q1)
	got := run(t, "qnn.requantize", []*tensor.Tensor{in}, relay.Attrs{
		"input_scale": 0.05, "input_zero_point": 100,
		"output_scale": 0.1, "output_zero_point": 50, "out_dtype": "uint8",
	})
	for i := 0; i < 5; i++ {
		inReal := 0.05 * float64(int32(in.U8()[i])-100)
		outReal := 0.1 * float64(int32(got.U8()[i])-50)
		if math.Abs(inReal-outReal) > 0.05+1e-9 {
			t.Errorf("requantize[%d]: %g -> %g", i, inReal, outReal)
		}
	}
}

func TestQnnAddRescales(t *testing.T) {
	qa := tensor.QuantParams{Scale: 0.1, ZeroPoint: 0}
	qb := tensor.QuantParams{Scale: 0.2, ZeroPoint: 10}
	a := tensor.FromU8([]uint8{10, 20}, tensor.Shape{2}, qa) // 1.0, 2.0
	b := tensor.FromU8([]uint8{20, 30}, tensor.Shape{2}, qb) // 2.0, 4.0
	got := run(t, "qnn.add", []*tensor.Tensor{a, b}, relay.Attrs{
		"lhs_scale": 0.1, "lhs_zero_point": 0,
		"rhs_scale": 0.2, "rhs_zero_point": 10,
		"output_scale": 0.05, "output_zero_point": 0,
	})
	// Expect 3.0 and 6.0 at scale 0.05 => raw 60 and 120.
	if got.U8()[0] != 60 || got.U8()[1] != 120 {
		t.Errorf("qnn.add = %v, want [60 120]", got.U8())
	}
}

func TestQnnConcatenateRescalesFields(t *testing.T) {
	qa := tensor.QuantParams{Scale: 0.1, ZeroPoint: 0}
	qb := tensor.QuantParams{Scale: 0.2, ZeroPoint: 0}
	a := tensor.FromU8([]uint8{10}, tensor.Shape{1, 1}, qa) // 1.0
	b := tensor.FromU8([]uint8{10}, tensor.Shape{1, 1}, qb) // 2.0
	got := run(t, "qnn.concatenate", []*tensor.Tensor{a, b}, relay.Attrs{
		"axis": 1, "output_scale": 0.1, "output_zero_point": 0,
	})
	if got.U8()[0] != 10 || got.U8()[1] != 20 {
		t.Errorf("qnn.concatenate = %v, want [10 20]", got.U8())
	}
}

func TestYoloOutputSigmoids(t *testing.T) {
	classes := 2
	anchors := 1
	per := 5 + classes
	in := tensor.New(tensor.Float32, tensor.Shape{1, 1, 1, anchors * per})
	in.Fill(0)
	got := run(t, "vision.yolo_output", []*tensor.Tensor{in},
		relay.Attrs{"anchors": anchors, "classes": classes})
	// sigmoid(0) = 0.5 on x, y, obj, classes; w,h untouched (0).
	wantHalf := []int{0, 1, 4, 5, 6}
	for _, i := range wantHalf {
		if math.Abs(got.GetF(i)-0.5) > 1e-6 {
			t.Errorf("yolo[%d] = %g, want 0.5", i, got.GetF(i))
		}
	}
	if got.GetF(2) != 0 || got.GetF(3) != 0 {
		t.Error("yolo w/h must pass through raw")
	}
}

func TestEveryRelayOpHasKernelOrIsStructural(t *testing.T) {
	// Ops with no runtime kernel must be ones the executor lowers away.
	structural := map[string]bool{}
	for _, name := range relay.OpNames() {
		if _, ok := Lookup(name); !ok && !structural[name] {
			t.Errorf("relay op %q has no TOPI kernel", name)
		}
	}
}

func TestRunUnknownOp(t *testing.T) {
	if _, err := Run("nn.nonexistent", nil, nil, &relay.TensorType{}); err == nil {
		t.Error("Run accepted unknown op")
	}
}

// Property: relu output is idempotent and non-negative.
func TestReLUProperty(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		for i, v := range vals {
			if math.IsNaN(float64(v)) {
				vals[i] = 0
			}
		}
		in := tensor.FromF32(vals, tensor.Shape{len(vals)})
		out := run(t, "nn.relu", []*tensor.Tensor{in}, nil)
		out2 := run(t, "nn.relu", []*tensor.Tensor{out}, nil)
		for i := range vals {
			if out.F32()[i] < 0 || out.F32()[i] != out2.F32()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: add is commutative for same-shape tensors.
func TestAddCommutativeProperty(t *testing.T) {
	f := func(a, b []float32) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		ta := tensor.FromF32(a[:n], tensor.Shape{n})
		tb := tensor.FromF32(b[:n], tensor.Shape{n})
		ab := run(t, "add", []*tensor.Tensor{ta, tb}, nil)
		ba := run(t, "add", []*tensor.Tensor{tb, ta}, nil)
		for i := 0; i < n; i++ {
			x, y := ab.F32()[i], ba.F32()[i]
			if x != y && !(math.IsNaN(float64(x)) && math.IsNaN(float64(y))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: transpose with reversed axes twice is the identity.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		shape := tensor.Shape{1 + rng.Intn(4), 1 + rng.Intn(4), 1 + rng.Intn(4)}
		in := tensor.New(tensor.Float32, shape)
		in.FillUniform(rng, -1, 1)
		once := run(t, "transpose", []*tensor.Tensor{in}, relay.Attrs{})
		twice := run(t, "transpose", []*tensor.Tensor{once}, relay.Attrs{})
		return tensor.AllClose(in, twice, 0, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMeanKernel(t *testing.T) {
	in := tensor.FromF32([]float32{1, 2, 3, 4, 5, 6}, tensor.Shape{2, 3})
	got := run(t, "mean", []*tensor.Tensor{in}, relay.Attrs{"axis": []int{1}})
	if !got.Shape.Equal(tensor.Shape{2}) {
		t.Fatalf("mean shape %s", got.Shape)
	}
	if got.F32()[0] != 2 || got.F32()[1] != 5 {
		t.Errorf("mean = %v", got.F32())
	}
	gotKeep := run(t, "mean", []*tensor.Tensor{in}, relay.Attrs{"axis": []int{1}, "keepdims": true})
	if !gotKeep.Shape.Equal(tensor.Shape{2, 1}) {
		t.Fatalf("mean keepdims shape %s", gotKeep.Shape)
	}
}

func TestStridedSlice(t *testing.T) {
	in := tensor.FromF32([]float32{0, 1, 2, 3, 4, 5, 6, 7, 8}, tensor.Shape{3, 3})
	got := run(t, "strided_slice", []*tensor.Tensor{in},
		relay.Attrs{"begin": []int{1, 0}, "end": []int{3, 2}})
	want := []float32{3, 4, 6, 7}
	for i, w := range want {
		if got.F32()[i] != w {
			t.Errorf("slice[%d] = %g, want %g", i, got.F32()[i], w)
		}
	}
}

func TestDilatedConv2D(t *testing.T) {
	// Dilation 2: effective 5x5 receptive field from a 3x3 kernel.
	data := randTensor(tensor.Shape{1, 7, 7, 2}, 31)
	weight := randTensor(tensor.Shape{3, 3, 3, 2}, 32)
	got := run(t, "nn.conv2d", []*tensor.Tensor{data, weight},
		relay.Attrs{"dilation": []int{2, 2}})
	if !got.Shape.Equal(tensor.Shape{1, 3, 3, 3}) {
		t.Fatalf("dilated conv shape %s", got.Shape)
	}
	// Independent check of one output element.
	want := 0.0
	for ky := 0; ky < 3; ky++ {
		for kx := 0; kx < 3; kx++ {
			for ic := 0; ic < 2; ic++ {
				want += data.At(0, ky*2, kx*2, ic) * weight.At(1, ky, kx, ic)
			}
		}
	}
	if diff := got.At(0, 0, 0, 1) - want; diff > 1e-4 || diff < -1e-4 {
		t.Errorf("dilated conv[0,0,0,1] = %g, want %g", got.At(0, 0, 0, 1), want)
	}
}

func TestStride2AsymmetricOutput(t *testing.T) {
	// Regression guard for output-dimension arithmetic on even inputs.
	data := randTensor(tensor.Shape{1, 10, 7, 1}, 33)
	weight := randTensor(tensor.Shape{1, 3, 3, 1}, 34)
	got := run(t, "nn.conv2d", []*tensor.Tensor{data, weight},
		relay.Attrs{"strides": []int{2, 2}})
	if !got.Shape.Equal(tensor.Shape{1, 4, 3, 1}) {
		t.Fatalf("shape %s, want (1,4,3,1)", got.Shape)
	}
}

// The im2col path must agree with the direct kernel and the naive reference
// across shapes spanning the dispatch threshold.
func TestIm2colMatchesDirect(t *testing.T) {
	cases := []struct {
		name   string
		data   tensor.Shape
		weight tensor.Shape
		groups int
		pad    []int
	}{
		{"large", tensor.Shape{1, 40, 40, 32}, tensor.Shape{32, 3, 3, 32}, 1, []int{1, 1}},
		{"large-depthwise", tensor.Shape{1, 64, 64, 64}, tensor.Shape{64, 3, 3, 1}, 64, []int{1, 1}},
		{"large-grouped", tensor.Shape{1, 32, 32, 32}, tensor.Shape{32, 3, 3, 16}, 2, []int{1, 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data := randTensor(c.data, 71)
			weight := randTensor(c.weight, 72)
			attrs := relay.Attrs{"padding": c.pad, "groups": c.groups}
			// Force both paths by calling the exported entry (dispatches by
			// size) and the reference.
			got := run(t, "nn.conv2d", []*tensor.Tensor{data, weight}, attrs)
			pad := relay.Attrs{"padding": c.pad}.Pad4("padding")
			want := referenceConv2D(data, weight, 1, 1, pad, c.groups)
			if !tensor.AllClose(got, want, 1e-3, 1e-3) {
				t.Errorf("im2col mismatch, max diff %g", tensor.MaxAbsDiff(got, want))
			}
		})
	}
}

func TestIm2colDilated(t *testing.T) {
	data := randTensor(tensor.Shape{1, 48, 48, 16}, 73)
	weight := randTensor(tensor.Shape{16, 3, 3, 16}, 74)
	attrs := relay.Attrs{"padding": []int{2, 2}, "dilation": []int{2, 2}}
	got := run(t, "nn.conv2d", []*tensor.Tensor{data, weight}, attrs)
	// Probe a few elements against direct per-tap computation.
	for _, probe := range [][4]int{{0, 5, 5, 3}, {0, 20, 31, 7}, {0, 47, 0, 0}} {
		oy, ox, o := probe[1], probe[2], probe[3]
		want := 0.0
		for ky := 0; ky < 3; ky++ {
			iy := oy - 2 + ky*2
			if iy < 0 || iy >= 48 {
				continue
			}
			for kx := 0; kx < 3; kx++ {
				ix := ox - 2 + kx*2
				if ix < 0 || ix >= 48 {
					continue
				}
				for ic := 0; ic < 16; ic++ {
					want += data.At(0, iy, ix, ic) * weight.At(o, ky, kx, ic)
				}
			}
		}
		if d := got.At(0, oy, ox, o) - want; d > 1e-3 || d < -1e-3 {
			t.Errorf("dilated im2col [%d,%d,%d] = %g, want %g", oy, ox, o, got.At(0, oy, ox, o), want)
		}
	}
}

func TestUnaryTranscendentalKernels(t *testing.T) {
	in := tensor.FromF32([]float32{-1, 0, 0.5, 2}, tensor.Shape{4})
	cases := []struct {
		op   string
		f    func(float64) float64
		skip func(float64) bool
	}{
		{"sigmoid", func(v float64) float64 { return 1 / (1 + math.Exp(-v)) }, nil},
		{"tanh", math.Tanh, nil},
		{"exp", math.Exp, nil},
		{"sqrt", math.Sqrt, func(v float64) bool { return v < 0 }},
	}
	for _, c := range cases {
		got := run(t, c.op, []*tensor.Tensor{in}, nil)
		for i := 0; i < 4; i++ {
			v := float64(in.F32()[i])
			if c.skip != nil && c.skip(v) {
				continue
			}
			if d := got.GetF(i) - c.f(v); math.Abs(d) > 1e-5 {
				t.Errorf("%s(%g) = %g, want %g", c.op, v, got.GetF(i), c.f(v))
			}
		}
	}
}

func TestLRNKernel(t *testing.T) {
	in := tensor.FromF32([]float32{1, 2, 3, 4}, tensor.Shape{1, 1, 1, 4})
	got := run(t, "nn.lrn", []*tensor.Tensor{in},
		relay.Attrs{"size": 3, "alpha": 1e-4, "beta": 0.75, "bias": 2.0})
	// Channel 1: window {1,2,3}, sq=14.
	want := 2 / math.Pow(2+1e-4*14, 0.75)
	if d := got.GetF(1) - want; math.Abs(d) > 1e-5 {
		t.Errorf("lrn[1] = %g, want %g", got.GetF(1), want)
	}
}

func TestLeakyReLUKernel(t *testing.T) {
	in := tensor.FromF32([]float32{-2, 3}, tensor.Shape{2})
	got := run(t, "nn.leaky_relu", []*tensor.Tensor{in}, relay.Attrs{"alpha": 0.1})
	if math.Abs(got.GetF(0)+0.2) > 1e-6 || got.GetF(1) != 3 {
		t.Errorf("leaky = %v", got.F32())
	}
}
