package topi

import (
	"repro/internal/parallel"
	"repro/internal/relay"
	"repro/internal/tensor"
)

// im2col + GEMM convolution path. The direct kernel's inner loops carry
// per-tap bounds checks and strided reads; for compute-heavy shapes it pays
// to materialize the patch matrix once per output-row tile and reduce the
// problem to a register-tiled GEMM over contiguous panels (gemm.go). The
// dispatcher in conv.go selects this path when the arithmetic volume
// amortizes the packing cost.

// im2colThreshold is the MAC volume above which packing pays off.
const im2colThreshold = 1 << 20

// conv2DF32Im2col computes the same result as the direct kernel: each output
// row's patches are packed into a col matrix (one row per output pixel,
// k = kh·kw·icg contiguous elements), then multiplied against the cached
// weight panels by the blocked GEMM.
func conv2DF32Im2col(data, weight *tensor.Tensor, p conv2dParams, out *relay.TensorType, dstBuf *tensor.Tensor, cfg *KernelConfig) *tensor.Tensor {
	res := output(dstBuf, out)
	n := data.Shape[0]
	h, w, c := data.Shape[1], data.Shape[2], data.Shape[3]
	oc, kh, kw, icg := weight.Shape[0], weight.Shape[1], weight.Shape[2], weight.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	ocg := oc / p.groups
	k := kh * kw * icg

	din := data.F32()
	dout := res.F32()
	pw := packedConvWeightF32(weight, oc, k, p.groups)

	// Parallelize over (batch × output row); each worker packs one row of
	// output pixels into a col buffer and GEMMs it against every group's
	// weight panels. Nested GEMM tile parallelism degrades to serial here
	// because this loop already holds the worker-budget tokens.
	parallel.ForChunkedOpts(n*oh, cfg.chunkOpts(), func(lo, hi int) {
		colP := getScratchF32(ow * k) // one output row's patches, per group
		defer putScratchF32(colP)
		col := *colP
		for job := lo; job < hi; job++ {
			b := job / oh
			oy := job % oh
			for g := 0; g < p.groups; g++ {
				// Pack: col[ox*k + (ky*kw+kx)*icg + ic]
				for ox := 0; ox < ow; ox++ {
					base := ox * k
					for ky := 0; ky < kh; ky++ {
						iy := oy*p.sh - p.pad[0] + ky*p.dh
						rowBase := base + ky*kw*icg
						if iy < 0 || iy >= h {
							zero(col[rowBase : rowBase+kw*icg])
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*p.sw - p.pad[1] + kx*p.dw
							dst := col[rowBase+kx*icg : rowBase+(kx+1)*icg]
							if ix < 0 || ix >= w {
								zero(dst)
								continue
							}
							src := din[((b*h+iy)*w+ix)*c+g*icg:]
							copy(dst, src[:icg])
						}
					}
				}
				gemmF32Cfg(ow, ocg, k, col, k, pw.group(g, ocg),
					dout[((b*oh+oy)*ow)*oc+g*ocg:], oc, cfg)
			}
		}
	})
	return res
}

// conv2DQnnIm2col is the quantized analogue: the data tensor is widened once
// into (raw − zp_in) int32 scratch, packed per output row, and reduced by the
// int32 GEMM against cached (raw − zp_k) weight panels. Integer accumulation
// is associative, so the result is bitwise identical to the direct kernel.
func conv2DQnnIm2col(data, weight *tensor.Tensor, p conv2dParams, zpIn, zpK int32, out *relay.TensorType, dstBuf *tensor.Tensor, cfg *KernelConfig) (*tensor.Tensor, error) {
	res := output(dstBuf, out)
	n := data.Shape[0]
	h, w, c := data.Shape[1], data.Shape[2], data.Shape[3]
	oc, kh, kw, icg := weight.Shape[0], weight.Shape[1], weight.Shape[2], weight.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	ocg := oc / p.groups
	k := kh * kw * icg

	pw, err := packedConvWeightI32(weight, oc, k, p.groups, zpK)
	if err != nil {
		return nil, err
	}
	dinP := getScratchI32(data.Elems())
	din := *dinP
	if err := rawMinusZp(din, data, zpIn); err != nil {
		putScratchI32(dinP)
		return nil, err
	}
	dout := res.I32()

	parallel.ForChunkedOpts(n*oh, cfg.chunkOpts(), func(lo, hi int) {
		colP := getScratchI32(ow * k)
		defer putScratchI32(colP)
		col := *colP
		for job := lo; job < hi; job++ {
			b := job / oh
			oy := job % oh
			for g := 0; g < p.groups; g++ {
				packColI32(col, din, p, b, oy, g, h, w, c, kh, kw, icg, ow, k)
				gemmI32Cfg(ow, ocg, k, col, k, pw.group(g, ocg),
					dout[((b*oh+oy)*ow)*oc+g*ocg:], oc, cfg)
			}
		}
	})
	putScratchI32(dinP)
	return res, nil
}

// packColI32 packs one output row's im2col patches for group g from the
// pre-widened (raw − zp_in) data into col[ox*k + (ky*kw+kx)*icg + ic].
// Padding contributes (zp_in − zp_in) = 0, so zero-filling the
// pre-subtracted col matches the QNN pad-with-zp convention exactly.
func packColI32(col, din []int32, p conv2dParams, b, oy, g, h, w, c, kh, kw, icg, ow, k int) {
	for ox := 0; ox < ow; ox++ {
		base := ox * k
		for ky := 0; ky < kh; ky++ {
			iy := oy*p.sh - p.pad[0] + ky*p.dh
			rowBase := base + ky*kw*icg
			if iy < 0 || iy >= h {
				zeroI32(col[rowBase : rowBase+kw*icg])
				continue
			}
			for kx := 0; kx < kw; kx++ {
				ix := ox*p.sw - p.pad[1] + kx*p.dw
				dst := col[rowBase+kx*icg : rowBase+(kx+1)*icg]
				if ix < 0 || ix >= w {
					zeroI32(dst)
					continue
				}
				src := din[((b*h+iy)*w+ix)*c+g*icg:]
				copy(dst, src[:icg])
			}
		}
	}
}

func zero(s []float32) {
	for i := range s {
		s[i] = 0
	}
}

func zeroI32(s []int32) {
	for i := range s {
		s[i] = 0
	}
}
