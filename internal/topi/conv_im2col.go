package topi

import (
	"repro/internal/parallel"
	"repro/internal/relay"
	"repro/internal/tensor"
)

// im2col + GEMM convolution path. The direct kernel's inner loops carry
// per-tap bounds checks and strided reads; for compute-heavy shapes it pays
// to materialize the patch matrix once per output-row tile and reduce the
// problem to dense dot products over contiguous memory. The dispatcher in
// conv.go selects this path when the arithmetic volume amortizes the packing
// cost.

// im2colThreshold is the MAC volume above which packing pays off.
const im2colThreshold = 1 << 20

// conv2DF32Im2col computes the same result as the direct kernel.
func conv2DF32Im2col(data, weight *tensor.Tensor, p conv2dParams, out *relay.TensorType, dstBuf *tensor.Tensor) *tensor.Tensor {
	res := output(dstBuf, out)
	n := data.Shape[0]
	h, w, c := data.Shape[1], data.Shape[2], data.Shape[3]
	oc, kh, kw, icg := weight.Shape[0], weight.Shape[1], weight.Shape[2], weight.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	ocg := oc / p.groups
	k := kh * kw * icg

	din := data.F32()
	wt := weight.F32()
	dout := res.F32()

	// Parallelize over (batch × output row); each worker packs one row of
	// output pixels into a col buffer and multiplies it against the weight
	// rows of every group.
	parallel.ForChunked(n*oh, func(lo, hi int) {
		colP := getScratchF32(ow * k) // one output row's patches, per group
		defer putScratchF32(colP)
		col := *colP
		for job := lo; job < hi; job++ {
			b := job / oh
			oy := job % oh
			for g := 0; g < p.groups; g++ {
				// Pack: col[ox*k + (ky*kw+kx)*icg + ic]
				for ox := 0; ox < ow; ox++ {
					base := ox * k
					for ky := 0; ky < kh; ky++ {
						iy := oy*p.sh - p.pad[0] + ky*p.dh
						rowBase := base + ky*kw*icg
						if iy < 0 || iy >= h {
							zero(col[rowBase : rowBase+kw*icg])
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*p.sw - p.pad[1] + kx*p.dw
							dst := col[rowBase+kx*icg : rowBase+(kx+1)*icg]
							if ix < 0 || ix >= w {
								zero(dst)
								continue
							}
							src := din[((b*h+iy)*w+ix)*c+g*icg:]
							copy(dst, src[:icg])
						}
					}
				}
				// GEMM: for each output pixel row, dot against each filter.
				for ox := 0; ox < ow; ox++ {
					patch := col[ox*k : (ox+1)*k]
					outBase := ((b*oh+oy)*ow+ox)*oc + g*ocg
					for f := 0; f < ocg; f++ {
						wRow := wt[(g*ocg+f)*k : (g*ocg+f+1)*k]
						dout[outBase+f] = dotF32(patch, wRow)
					}
				}
			}
		}
	})
	return res
}

func zero(s []float32) {
	for i := range s {
		s[i] = 0
	}
}

// dotF32 is a 4-way unrolled dot product over equal-length slices.
func dotF32(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}
