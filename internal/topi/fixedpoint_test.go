package topi

import (
	"math"
	"math/rand"
	"testing"
)

// refRequant is the float64 reference the fixed-point path must reproduce
// bit for bit.
func refRequant(x int32, ratio float64) int32 {
	return roundHalfAwayF(float64(x) * ratio)
}

// edge int32 inputs every multiplier is checked against.
var fixedPointEdgeInputs = []int32{
	0, 1, -1, 2, -2, 127, -128, 255, 32767, -32768,
	1 << 20, -(1 << 20), 1<<31 - 1, -(1 << 31), -(1<<31 - 1),
	3, 5, 7, 11, 101, -101, 12345, -54321,
}

func checkMultiplier(t *testing.T, ratio float64, xs []int32) {
	t.Helper()
	fm := newFixedMultiplier(ratio)
	for _, x := range xs {
		want := refRequant(x, ratio)
		got := fm.apply(x)
		if got != want {
			t.Fatalf("ratio=%v (m=%#x e=%d ok=%v) x=%d: fixed=%d float=%d",
				ratio, fm.m, fm.e, fm.ok, x, got, want)
		}
	}
}

// The equivalence must hold over the full multiplier range: random 53-bit
// significands across the exponent range that can matter for an int32 input
// (ratios from ~1e-12 to ~1e12) and the full int32 input range.
func TestFixedMultiplierMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5000; trial++ {
		// Random significand in [0.5, 1), random exponent in [-40, 40].
		fr := 0.5 + rng.Float64()/2
		exp := rng.Intn(81) - 40
		ratio := math.Ldexp(fr, exp)
		xs := make([]int32, 0, len(fixedPointEdgeInputs)+8)
		xs = append(xs, fixedPointEdgeInputs...)
		for i := 0; i < 8; i++ {
			xs = append(xs, int32(rng.Uint32()))
		}
		checkMultiplier(t, ratio, xs)
	}
}

// Ratios that exercise exact ties at the binary point: powers of two and
// small dyadic rationals produce x·ratio values landing exactly on .5.
func TestFixedMultiplierTies(t *testing.T) {
	for _, ratio := range []float64{
		0.5, 0.25, 0.125, 1.0 / 1024, 1.5, 0.75, 3.0 / 8, 2, 4, 1024,
	} {
		xs := make([]int32, 0, 4096)
		for x := int32(-1024); x <= 1024; x++ {
			xs = append(xs, x)
		}
		xs = append(xs, fixedPointEdgeInputs...)
		checkMultiplier(t, ratio, xs)
	}
}

// Realistic requantize ratios from 8-bit model scales.
func TestFixedMultiplierModelScales(t *testing.T) {
	scales := []float64{0.003921568859368563, 0.0235294122248888, 0.1,
		1.0 / 127, 2.0 / 255, 0.017429193854331970, 6.0 / 255}
	var xs []int32
	for x := int32(-70000); x <= 70000; x += 7 {
		xs = append(xs, x)
	}
	for _, in := range scales {
		for _, out := range scales {
			checkMultiplier(t, in/out, xs)
		}
	}
}

// Degenerate multipliers must take the (identical) float64 fallback rather
// than produce garbage.
func TestFixedMultiplierFallbacks(t *testing.T) {
	for _, ratio := range []float64{0, -1.5, math.Inf(1), math.NaN(),
		math.SmallestNonzeroFloat64, math.Ldexp(1, -1050), math.Ldexp(1, 1000)} {
		fm := newFixedMultiplier(ratio)
		for _, x := range fixedPointEdgeInputs {
			want := refRequant(x, ratio)
			if got := fm.apply(x); got != want {
				t.Fatalf("ratio=%v x=%d: fixed=%d float=%d (ok=%v)", ratio, x, got, want, fm.ok)
			}
		}
	}
}

// Results that overflow int32 must go through the same conversion code path
// as the reference (implementation-defined in Go, but identical because it
// is literally the same expression).
func TestFixedMultiplierOverflowConsistency(t *testing.T) {
	for _, ratio := range []float64{1e6, 123456.789, 3.0, 65536.0} {
		var xs []int32
		for _, x := range fixedPointEdgeInputs {
			xs = append(xs, x)
		}
		checkMultiplier(t, ratio, xs)
	}
}

func BenchmarkRequantFixedVsFloat(b *testing.B) {
	fm := newFixedMultiplier(0.0235294122248888 / 0.1)
	b.Run("fixed", func(b *testing.B) {
		var acc int32
		for i := 0; i < b.N; i++ {
			acc += fm.apply(int32(i&0xffff) - 32768)
		}
		_ = acc
	})
	b.Run("float", func(b *testing.B) {
		var acc int32
		for i := 0; i < b.N; i++ {
			acc += refRequant(int32(i&0xffff)-32768, fm.ratio)
		}
		_ = acc
	})
}
