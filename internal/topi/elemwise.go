package topi

import (
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/relay"
	"repro/internal/tensor"
)

// unaryF32 registers a float32 map kernel.
func unaryF32(name string, f func(float32) float32) {
	Register(name, func(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
		if err := wantArgs(args, 1, name); err != nil {
			return nil, err
		}
		in := args[0]
		if in.DType != tensor.Float32 {
			// Quantized pass-through for activations the type checker allowed
			// (e.g. relu on uint8 works on the raw domain relative to zp).
			return unaryQuantized(name, in, out, dstBuf)
		}
		res := output(dstBuf, out)
		src, dst := in.F32(), res.F32()
		parallel.ForElems(len(src), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dst[i] = f(src[i])
			}
		})
		return res, nil
	})
}

// unaryQuantized handles relu-style activations on quantized tensors: the
// comparison happens against the zero point in the raw domain.
func unaryQuantized(name string, in *tensor.Tensor, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	switch name {
	case "nn.relu":
		res := output(dstBuf, out)
		zp := int32(0)
		if in.Quant != nil {
			zp = in.Quant.ZeroPoint
		}
		for i, n := 0, in.Elems(); i < n; i++ {
			v := in.GetRaw(i)
			if v < zp {
				v = zp
			}
			setRaw(res, i, v)
		}
		return res, nil
	case "nn.dropout":
		// Inference-time identity: copy into dstBuf when supplied, else clone.
		if dstBuf == nil {
			return in.Clone(), nil
		}
		res := output(dstBuf, out)
		if err := res.CopyFrom(in); err != nil {
			return nil, err
		}
		return res, nil
	}
	return nil, fmt.Errorf("%s kernel does not support %s input", name, in.DType)
}

func setRaw(t *tensor.Tensor, i int, v int32) {
	switch t.DType {
	case tensor.Int8:
		t.I8()[i] = int8(v)
	case tensor.UInt8:
		t.U8()[i] = uint8(v)
	case tensor.Int32:
		t.I32()[i] = v
	case tensor.Float32:
		t.F32()[i] = float32(v)
	}
}

// binaryF32 registers a broadcasting float32 zip kernel.
func binaryF32(name string, f func(a, b float32) float32) {
	Register(name, func(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
		if err := wantArgs(args, 2, name); err != nil {
			return nil, err
		}
		a, b := args[0], args[1]
		res := output(dstBuf, out)
		if a.Shape.Equal(b.Shape) {
			// Fast path: element-wise, no index math.
			as, bs, dst := a.F32(), b.F32(), res.F32()
			parallel.ForElems(len(dst), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					dst[i] = f(as[i], bs[i])
				}
			})
			return res, nil
		}
		bcast := newBroadcaster(a.Shape, b.Shape, out.Shape)
		as, bs, dst := a.F32(), b.F32(), res.F32()
		parallel.ForElems(len(dst), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ia, ib := bcast.index(i)
				dst[i] = f(as[ia], bs[ib])
			}
		})
		return res, nil
	})
}

// broadcaster maps a flat output index to flat indices into the two
// (possibly lower-rank / size-1-extent) inputs.
type broadcaster struct {
	outShape          tensor.Shape
	aStrides, bStride []int
}

func newBroadcaster(a, b, out tensor.Shape) *broadcaster {
	rank := len(out)
	padShape := func(s tensor.Shape) tensor.Shape {
		p := make(tensor.Shape, rank)
		for i := range p {
			p[i] = 1
		}
		copy(p[rank-len(s):], s)
		return p
	}
	strides := func(s tensor.Shape) []int {
		st := make([]int, rank)
		acc := 1
		for i := rank - 1; i >= 0; i-- {
			if s[i] == 1 {
				st[i] = 0 // broadcast axis: do not advance
			} else {
				st[i] = acc
			}
			acc *= s[i]
		}
		return st
	}
	return &broadcaster{
		outShape: out,
		aStrides: strides(padShape(a)),
		bStride:  strides(padShape(b)),
	}
}

func (bc *broadcaster) index(flat int) (ia, ib int) {
	rem := flat
	for i := len(bc.outShape) - 1; i >= 0; i-- {
		d := bc.outShape[i]
		pos := rem % d
		rem /= d
		ia += pos * bc.aStrides[i]
		ib += pos * bc.bStride[i]
	}
	return ia, ib
}

func biasAdd(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 2, "nn.bias_add"); err != nil {
		return nil, err
	}
	data, bias := args[0], args[1]
	axis := attrs.Int("axis", -1)
	if axis < 0 {
		axis += len(data.Shape)
	}
	res := output(dstBuf, out)
	c := data.Shape[axis]
	inner := 1
	for i := axis + 1; i < len(data.Shape); i++ {
		inner *= data.Shape[i]
	}
	switch data.DType {
	case tensor.Float32:
		src, dst, bv := data.F32(), res.F32(), bias.F32()
		parallel.ForElems(len(src), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dst[i] = src[i] + bv[(i/inner)%c]
			}
		})
	case tensor.Int32:
		// Quantized accumulator + int32 bias (the QNN conv/dense epilogue).
		src, dst, bv := data.I32(), res.I32(), bias.I32()
		for i := range src {
			dst[i] = src[i] + bv[(i/inner)%c]
		}
	default:
		return nil, fmt.Errorf("nn.bias_add on %s", data.DType)
	}
	return res, nil
}

func batchNorm(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 5, "nn.batch_norm"); err != nil {
		return nil, err
	}
	data, gamma, beta, mean, variance := args[0], args[1], args[2], args[3], args[4]
	eps := float32(attrs.Float("epsilon", 1e-5))
	res := output(dstBuf, out)
	c := data.Shape[len(data.Shape)-1]
	src, dst := data.F32(), res.F32()
	g, bt, mn, vr := gamma.F32(), beta.F32(), mean.F32(), variance.F32()
	// Precompute per-channel scale/shift: y = (x-m)/sqrt(v+eps)*g + b.
	scale := make([]float32, c)
	shift := make([]float32, c)
	for ch := 0; ch < c; ch++ {
		s := g[ch] / float32(math.Sqrt(float64(vr[ch]+eps)))
		scale[ch] = s
		shift[ch] = bt[ch] - mn[ch]*s
	}
	parallel.ForElems(len(src), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ch := i % c
			dst[i] = src[i]*scale[ch] + shift[ch]
		}
	})
	return res, nil
}

func softmax(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 1, "nn.softmax"); err != nil {
		return nil, err
	}
	data := args[0]
	res := output(dstBuf, out)
	rank := len(data.Shape)
	axisLen := data.Shape[rank-1] // axis=-1 (the only form frontends emit)
	rows := data.Elems() / axisLen
	src, dst := data.F32(), res.F32()
	parallel.For(rows, func(r int) {
		base := r * axisLen
		maxV := src[base]
		for i := 1; i < axisLen; i++ {
			if src[base+i] > maxV {
				maxV = src[base+i]
			}
		}
		var sum float64
		for i := 0; i < axisLen; i++ {
			e := math.Exp(float64(src[base+i] - maxV))
			dst[base+i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := 0; i < axisLen; i++ {
			dst[base+i] *= inv
		}
	})
	return res, nil
}

func clipKernel(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 1, "clip"); err != nil {
		return nil, err
	}
	in := args[0]
	lo := attrs.Float("a_min", math.Inf(-1))
	hi := attrs.Float("a_max", math.Inf(1))
	res := output(dstBuf, out)
	if in.DType == tensor.Float32 {
		src, dst := in.F32(), res.F32()
		flo, fhi := float32(lo), float32(hi)
		parallel.ForElems(len(src), func(l, h int) {
			for i := l; i < h; i++ {
				v := src[i]
				if v < flo {
					v = flo
				}
				if v > fhi {
					v = fhi
				}
				dst[i] = v
			}
		})
		return res, nil
	}
	// Quantized clip (relu6 after requantize): clamp in the real domain via
	// the tensor's quant params.
	for i, n := 0, in.Elems(); i < n; i++ {
		v := in.GetF(i)
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		res.SetF(i, v)
	}
	return res, nil
}

func lrn(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 1, "nn.lrn"); err != nil {
		return nil, err
	}
	in := args[0]
	size := attrs.Int("size", 5)
	alpha := attrs.Float("alpha", 1e-4)
	beta := attrs.Float("beta", 0.75)
	bias := attrs.Float("bias", 2)
	res := output(dstBuf, out)
	c := in.Shape[len(in.Shape)-1]
	rows := in.Elems() / c
	src, dst := in.F32(), res.F32()
	half := size / 2
	parallel.For(rows, func(r int) {
		base := r * c
		for ch := 0; ch < c; ch++ {
			var sq float64
			for j := ch - half; j <= ch+half; j++ {
				if j < 0 || j >= c {
					continue
				}
				v := float64(src[base+j])
				sq += v * v
			}
			dst[base+ch] = src[base+ch] / float32(math.Pow(bias+alpha*sq, beta))
		}
	})
	return res, nil
}

func leakyReLU(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 1, "nn.leaky_relu"); err != nil {
		return nil, err
	}
	alpha := float32(attrs.Float("alpha", 0.01))
	in := args[0]
	res := output(dstBuf, out)
	src, dst := in.F32(), res.F32()
	parallel.ForElems(len(src), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := src[i]
			if v < 0 {
				v *= alpha
			}
			dst[i] = v
		}
	})
	return res, nil
}

func init() {
	unaryF32("nn.relu", func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	})
	unaryF32("sigmoid", func(v float32) float32 {
		return float32(1 / (1 + math.Exp(-float64(v))))
	})
	unaryF32("tanh", func(v float32) float32 { return float32(math.Tanh(float64(v))) })
	unaryF32("exp", func(v float32) float32 { return float32(math.Exp(float64(v))) })
	unaryF32("sqrt", func(v float32) float32 { return float32(math.Sqrt(float64(v))) })
	unaryF32("nn.dropout", func(v float32) float32 { return v }) // inference: identity

	binaryF32("add", func(a, b float32) float32 { return a + b })
	binaryF32("subtract", func(a, b float32) float32 { return a - b })
	binaryF32("multiply", func(a, b float32) float32 { return a * b })
	binaryF32("divide", func(a, b float32) float32 { return a / b })
	binaryF32("maximum", func(a, b float32) float32 {
		if a > b {
			return a
		}
		return b
	})
	binaryF32("minimum", func(a, b float32) float32 {
		if a < b {
			return a
		}
		return b
	})

	Register("nn.bias_add", biasAdd)
	Register("nn.batch_norm", batchNorm)
	Register("nn.softmax", softmax)
	Register("clip", clipKernel)
	Register("nn.lrn", lrn)
	Register("nn.leaky_relu", leakyReLU)
}
