package topi

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Bounded per-weight packed-panel cache. Convolution and dense weights are
// module constants, so their register-tile panels (gemm.go) are packed once
// and reused for every inference — but the PR 7 sync.Map grew without limit
// across models and shapes: a long-lived npserve process cycling many
// models would pin every panel it ever packed. The cache is now bounded by
// an entry cap with coarse LRU-ish eviction: each hit stamps the entry with
// a monotone clock, and an insert past the cap evicts the stalest eighth in
// one scan. Keys are tensor identities, so entries for live modules are
// re-stamped on every run and only retired models' panels age out.

// weightCacheCap is the per-dtype entry cap. A packed panel set is the same
// size as its weight tensor, so the cap also bounds cache bytes to roughly
// one model zoo's worth of weights. Variable (not const) so tests can
// exercise eviction without packing hundreds of tensors.
var weightCacheCap atomic.Int64

func init() { weightCacheCap.Store(256) }

// SetWeightCacheCap overrides the packed-panel cache entry cap (tests);
// returns the previous cap. n < 1 is treated as 1.
func SetWeightCacheCap(n int) int {
	if n < 1 {
		n = 1
	}
	return int(weightCacheCap.Swap(int64(n)))
}

type weightCacheEntry struct {
	stamp atomic.Int64
	val   interface{} // *packedWeightF32 or *packedWeightI32
}

// weightCache is one bounded cache instance (there is one for f32 panels
// and one for i32). The read path takes only the RLock plus one atomic
// stamp store, so steady-state inference stays contention-free.
type weightCache struct {
	name    string // metrics label
	mu      sync.RWMutex
	entries map[interface{}]*weightCacheEntry
	clock   atomic.Int64
	// Local counters, always maintained (WeightCacheStats, tests).
	hits, misses, evictions atomic.Int64
}

func newWeightCache(name string) *weightCache {
	return &weightCache{name: name, entries: map[interface{}]*weightCacheEntry{}}
}

func (c *weightCache) get(key interface{}) (interface{}, bool) {
	c.mu.RLock()
	e, ok := c.entries[key]
	c.mu.RUnlock()
	if !ok {
		c.misses.Add(1)
		if m := kernelObs.Load(); m != nil {
			m.cacheCounters(c.name).misses.Inc()
		}
		return nil, false
	}
	e.stamp.Store(c.clock.Add(1))
	c.hits.Add(1)
	if m := kernelObs.Load(); m != nil {
		m.cacheCounters(c.name).hits.Inc()
	}
	return e.val, true
}

func (c *weightCache) put(key, val interface{}) {
	cap := int(weightCacheCap.Load())
	c.mu.Lock()
	if _, exists := c.entries[key]; !exists && len(c.entries) >= cap {
		c.evictLocked(cap)
	}
	e := &weightCacheEntry{val: val}
	e.stamp.Store(c.clock.Add(1))
	c.entries[key] = e
	size := len(c.entries)
	c.mu.Unlock()
	if m := kernelObs.Load(); m != nil {
		m.cacheCounters(c.name).entries.Set(float64(size))
	}
}

// evictLocked retires the stalest eighth of the cache (at least one entry)
// so inserts past the cap amortize to O(1) evictions each. "LRU-ish": the
// stamps are read racily against concurrent gets, which can at worst spare
// an entry that was about to become stale — fine for a capacity bound.
func (c *weightCache) evictLocked(cap int) {
	drop := cap / 8
	if drop < 1 {
		drop = 1
	}
	type aged struct {
		key   interface{}
		stamp int64
	}
	all := make([]aged, 0, len(c.entries))
	for k, e := range c.entries {
		all = append(all, aged{key: k, stamp: e.stamp.Load()})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].stamp < all[j].stamp })
	if drop > len(all) {
		drop = len(all)
	}
	for _, a := range all[:drop] {
		delete(c.entries, a.key)
	}
	c.evictions.Add(int64(drop))
	if m := kernelObs.Load(); m != nil {
		m.cacheCounters(c.name).evictions.Add(float64(drop))
	}
}

// len returns the current entry count.
func (c *weightCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// reset drops every entry and zeroes the counters (tests).
func (c *weightCache) reset() {
	c.mu.Lock()
	c.entries = map[interface{}]*weightCacheEntry{}
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
}

var (
	gemmWeightF32 = newWeightCache("f32")
	gemmWeightI32 = newWeightCache("i32")
)

// WeightCacheStats reports one packed-panel cache's occupancy and traffic.
type WeightCacheStats struct {
	Entries, Hits, Misses, Evictions int64
}

// WeightCacheSnapshot returns the f32 and i32 packed-panel cache stats.
func WeightCacheSnapshot() (f32, i32 WeightCacheStats) {
	read := func(c *weightCache) WeightCacheStats {
		return WeightCacheStats{
			Entries:   int64(c.len()),
			Hits:      c.hits.Load(),
			Misses:    c.misses.Load(),
			Evictions: c.evictions.Load(),
		}
	}
	return read(gemmWeightF32), read(gemmWeightI32)
}

// ResetWeightCaches clears both packed-panel caches (tests).
func ResetWeightCaches() {
	gemmWeightF32.reset()
	gemmWeightI32.reset()
}

// panelCacheCounters is the obs instrument set of one cache, resolved once
// per cache per registry installation (same pattern as kernelCounters).
type panelCacheCounters struct {
	entries      *obs.Gauge
	hits, misses *obs.Counter
	evictions    *obs.Counter
}

func (m *kernelMetrics) cacheCounters(dtype string) *panelCacheCounters {
	key := "panel-cache/" + dtype
	if c, ok := m.cache.Load(key); ok {
		return c.(*panelCacheCounters)
	}
	labels := obs.L("dtype", dtype)
	pc := &panelCacheCounters{
		entries: m.reg.Gauge("np_gemm_panel_cache_entries",
			"Packed GEMM weight panels currently cached.", labels),
		hits: m.reg.Counter("np_gemm_panel_cache_hits_total",
			"Packed-panel cache lookups served from cache.", labels),
		misses: m.reg.Counter("np_gemm_panel_cache_misses_total",
			"Packed-panel cache lookups that had to pack.", labels),
		evictions: m.reg.Counter("np_gemm_panel_cache_evictions_total",
			"Packed-panel cache entries evicted by the capacity bound.", labels),
	}
	c, _ := m.cache.LoadOrStore(key, pc)
	return c.(*panelCacheCounters)
}
