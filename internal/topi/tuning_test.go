package topi

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/relay"
	"repro/internal/tensor"
)

func TestTaskKeyStringRoundTrip(t *testing.T) {
	keys := []TaskKey{
		{Op: "nn.conv2d", N: 1, H: 8, W: 8, C: 3, OC: 4, KH: 3, KW: 3, ICG: 3,
			SH: 1, SW: 1, DH: 1, DW: 1, Groups: 1, PadT: 1, PadL: 1, PadB: 1, PadR: 1, DType: "float32"},
		{Op: "qnn.conv2d", N: 2, H: 224, W: 224, C: 32, OC: 64, KH: 3, KW: 3, ICG: 1,
			SH: 2, SW: 2, DH: 1, DW: 1, Groups: 32, PadT: 0, PadL: 1, PadB: 0, PadR: 1, DType: "uint8"},
		{Op: "nn.dense", N: 1, H: 1, W: 1, C: 1024, OC: 1000, KH: 1, KW: 1, ICG: 1024,
			SH: 1, SW: 1, DH: 1, DW: 1, Groups: 1, DType: "float32"},
	}
	for _, k := range keys {
		back, err := ParseTaskKey(k.String())
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if back != k {
			t.Fatalf("round-trip %s -> %s", k, back)
		}
	}
	for _, bad := range []string{"", "nn.conv2d", "nn.conv2d|d=1x1|w=1|s=1|l=1|p=1|g=1|f32",
		"nn.conv2d|d=1x1x1x1|w=1x1x1x1|s=1x1|l=1x1|p=1,1,1,1|g=x|float32"} {
		if _, err := ParseTaskKey(bad); err == nil {
			t.Errorf("ParseTaskKey(%q) accepted garbage", bad)
		}
	}
}

func TestTaskKeyFusedOpNormalization(t *testing.T) {
	data := tensor.New(tensor.UInt8, tensor.Shape{1, 8, 8, 4})
	weight := tensor.New(tensor.UInt8, tensor.Shape{8, 3, 3, 4})
	plain := ConvTaskKey("qnn.conv2d", data, weight, 1, 1, 1, 1, 1, [4]int{1, 1, 1, 1})
	fused := ConvTaskKey("qnn.conv2d_fused", data, weight, 1, 1, 1, 1, 1, [4]int{1, 1, 1, 1})
	if plain != fused {
		t.Fatalf("fused key %s != anchor key %s", fused, plain)
	}
	if fused.Op != "qnn.conv2d" {
		t.Fatalf("fused op normalized to %q", fused.Op)
	}
	if d := DenseTaskKey("qnn.dense_fused", tensor.New(tensor.UInt8, tensor.Shape{1, 16}),
		tensor.New(tensor.UInt8, tensor.Shape{4, 16})); d.Op != "qnn.dense" {
		t.Fatalf("fused dense op normalized to %q", d.Op)
	}
}

// TestTaskKeyTypesMatchesTensors pins the extractor-side key (relay types)
// to the dispatch-side key (tensors): a record written from a compiled
// module must be found by the kernel at launch time.
func TestTaskKeyTypesMatchesTensors(t *testing.T) {
	data := tensor.New(tensor.Float32, tensor.Shape{2, 16, 12, 8})
	weight := tensor.New(tensor.Float32, tensor.Shape{24, 3, 5, 8})
	attrs := relay.Attrs{"strides": []int{2, 1}, "dilation": []int{1, 2},
		"padding": []int{1, 2, 3, 4}, "groups": 1}
	fromTypes := ConvTaskKeyTypes("nn.conv2d",
		&relay.TensorType{Shape: data.Shape, DType: data.DType},
		&relay.TensorType{Shape: weight.Shape, DType: weight.DType}, attrs)
	fromTensors := ConvTaskKey("nn.conv2d", data, weight, 2, 1, 1, 2, 1, [4]int{1, 2, 3, 4})
	if fromTypes != fromTensors {
		t.Fatalf("type-based key %s != tensor-based key %s", fromTypes, fromTensors)
	}

	dd := tensor.New(tensor.UInt8, tensor.Shape{3, 40})
	dw := tensor.New(tensor.UInt8, tensor.Shape{10, 40})
	dTypes := DenseTaskKeyTypes("qnn.dense",
		&relay.TensorType{Shape: dd.Shape, DType: dd.DType},
		&relay.TensorType{Shape: dw.Shape, DType: dw.DType})
	dTensors := DenseTaskKey("qnn.dense", dd, dw)
	if dTypes != dTensors {
		t.Fatalf("type-based dense key %s != tensor-based %s", dTypes, dTensors)
	}
}

// runConv launches nn.conv2d through the public dispatch and returns the
// output tensor.
func runConv(t *testing.T, data, weight *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	out := &relay.TensorType{Shape: tensor.Shape{
		data.Shape[0], data.Shape[1], data.Shape[2], weight.Shape[0]}, DType: tensor.Float32}
	got, err := Run("nn.conv2d", []*tensor.Tensor{data, weight},
		relay.Attrs{"strides": []int{1, 1}, "padding": []int{1, 1}}, out)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestTunedDispatchCountsHitsAndMisses(t *testing.T) {
	prev := SetTuning(nil)
	defer SetTuning(prev)

	rng := rand.New(rand.NewSource(3))
	data := tensor.New(tensor.Float32, tensor.Shape{1, 6, 6, 3})
	weight := tensor.New(tensor.Float32, tensor.Shape{4, 3, 3, 3})
	for i := range data.F32() {
		data.F32()[i] = rng.Float32()*2 - 1
	}
	for i := range weight.F32() {
		weight.F32()[i] = rng.Float32()*2 - 1
	}
	base := runConv(t, data, weight)

	key := ConvTaskKey("nn.conv2d", data, weight, 1, 1, 1, 1, 1, [4]int{1, 1, 1, 1})
	tbl := NewTuningTable()
	tbl.Set(key, KernelConfig{ConvStrategy: ConvIm2col, GemmMC: 8, Workers: 1})
	SetTuning(tbl)

	tuned := runConv(t, data, weight)
	hits, misses := tbl.Stats()
	if hits != 1 {
		t.Fatalf("hits = %d after one tuned launch", hits)
	}
	// A different shape misses.
	other := tensor.New(tensor.Float32, tensor.Shape{1, 5, 5, 3})
	other.FillUniform(tensor.NewRNG(5), -1, 1)
	runConv(t, other, weight)
	if _, misses = tbl.Stats(); misses != 1 {
		t.Fatalf("misses = %d after one untuned launch", misses)
	}

	snap := tbl.Snapshot()
	if len(snap) != 1 || snap[0].Hits != 1 || snap[0].Config.GemmMC != 8 {
		t.Fatalf("snapshot = %+v", snap)
	}

	// The tuned config must not change a single output bit.
	bb, tb := base.F32(), tuned.F32()
	for i := range bb {
		if math.Float32bits(bb[i]) != math.Float32bits(tb[i]) {
			t.Fatalf("tuned output differs at %d: %v vs %v", i, tb[i], bb[i])
		}
	}
}

// TestGemmMCBlockingBitwise pins the MC row-blocking knob: any block size
// must reproduce the unblocked result bit for bit (each output cell keeps
// one k-ascending accumulator regardless of row panel splits).
func TestGemmMCBlockingBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, d := range [][3]int{{13, 7, 11}, {64, 32, 9}, {31, 17, 23}} {
		m, n, k := d[0], d[1], d[2]
		a := make([]float32, m*k)
		b := make([]float32, n*k)
		for i := range a {
			a[i] = rng.Float32()*2 - 1
		}
		for i := range b {
			b[i] = rng.Float32()*2 - 1
		}
		bpack := make([]float32, gemmTiles(n, gemmNR)*gemmNR*k)
		packRHSF32(bpack, b, n, k, k)
		want := make([]float32, m*n)
		gemmF32Cfg(m, n, k, a, k, bpack, want, n, nil)
		for _, mc := range []int{1, 3, 4, 8, m - 1, m, m + 5} {
			if mc <= 0 {
				continue
			}
			got := make([]float32, m*n)
			gemmF32Cfg(m, n, k, a, k, bpack, got, n, &KernelConfig{GemmMC: mc})
			for i := range want {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("m%d n%d k%d mc=%d: c[%d] = %v, want %v", m, n, k, mc, i, got[i], want[i])
				}
			}
		}
	}
}

func TestKernelConfigString(t *testing.T) {
	if s := (KernelConfig{}).String(); s != "default" {
		t.Errorf("default config renders %q", s)
	}
	cfg := KernelConfig{ConvStrategy: ConvDirect, GemmMC: 64, Workers: 2}
	if s := cfg.String(); s != "conv=direct mc=64 workers=2" {
		t.Errorf("config renders %q", s)
	}
	if fmt.Sprint(&cfg) == "" {
		t.Error("pointer form renders empty")
	}
}
