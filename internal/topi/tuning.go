package topi

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/relay"
	"repro/internal/tensor"
)

// Profile-guided kernel dispatch: the internal/tune autotuner measures
// kernel variants per (op, shape, dtype) task and persists the winners to a
// tuning-record file; at load time the records become a TuningTable
// installed here, and every conv/dense kernel launch consults it before
// picking its strategy, blocking, and parallelism. With no table installed
// (the default) the lookup is one atomic load and every kernel keeps its
// PR 7 hard-coded heuristics, so untuned deployments pay nothing.
//
// Every knob is bitwise-output-preserving by construction: strategy
// switches between kernels already pinned bit-identical (im2col vs direct,
// blocked GEMM vs naive), and blocking/worker knobs only re-partition
// disjoint output ranges whose per-cell reductions keep their k-ascending
// order (tuning_test.go pins this across the whole config space).

// TaskKey identifies one tunable kernel task: the operator plus the problem
// shape and dtype. Dense tasks store the data matrix as N×C with H=W=1 and
// the weight as OC×1×1×ICG. The struct is comparable and built on the
// kernel dispatch path without allocation.
type TaskKey struct {
	Op string
	// Data tensor shape (NHWC).
	N, H, W, C int
	// Weight tensor shape (OHWI; ICG is the per-group input-channel count).
	OC, KH, KW, ICG int
	// Convolution attributes (dense: strides/dilation 1, pads 0, groups 1).
	SH, SW, DH, DW, Groups int
	PadT, PadL, PadB, PadR int
	// Element type of the data operand ("float32", "uint8", ...).
	DType string
}

// String renders the canonical task signature used by tuning-record files.
// ParseTaskKey inverts it.
func (k TaskKey) String() string {
	return fmt.Sprintf("%s|d=%dx%dx%dx%d|w=%dx%dx%dx%d|s=%dx%d|l=%dx%d|p=%d,%d,%d,%d|g=%d|%s",
		k.Op, k.N, k.H, k.W, k.C, k.OC, k.KH, k.KW, k.ICG,
		k.SH, k.SW, k.DH, k.DW, k.PadT, k.PadL, k.PadB, k.PadR, k.Groups, k.DType)
}

// ParseTaskKey parses the canonical String() form back into a TaskKey.
func ParseTaskKey(s string) (TaskKey, error) {
	k, ok := parseTaskKey(s)
	if !ok {
		return TaskKey{}, fmt.Errorf("topi: malformed task signature %q", s)
	}
	return k, nil
}

func parseTaskKey(s string) (TaskKey, bool) {
	var k TaskKey
	var fields [8]string
	for i := 0; i < 7; i++ {
		j := strings.IndexByte(s, '|')
		if j < 0 {
			return k, false
		}
		fields[i] = s[:j]
		s = s[j+1:]
	}
	fields[7] = s
	k.Op = fields[0]
	k.DType = fields[7]
	if _, err := fmt.Sscanf(fields[1], "d=%dx%dx%dx%d", &k.N, &k.H, &k.W, &k.C); err != nil {
		return k, false
	}
	if _, err := fmt.Sscanf(fields[2], "w=%dx%dx%dx%d", &k.OC, &k.KH, &k.KW, &k.ICG); err != nil {
		return k, false
	}
	if _, err := fmt.Sscanf(fields[3], "s=%dx%d", &k.SH, &k.SW); err != nil {
		return k, false
	}
	if _, err := fmt.Sscanf(fields[4], "l=%dx%d", &k.DH, &k.DW); err != nil {
		return k, false
	}
	if _, err := fmt.Sscanf(fields[5], "p=%d,%d,%d,%d", &k.PadT, &k.PadL, &k.PadB, &k.PadR); err != nil {
		return k, false
	}
	if _, err := fmt.Sscanf(fields[6], "g=%d", &k.Groups); err != nil {
		return k, false
	}
	return k, k.Op != "" && k.DType != ""
}

// Conv strategy knob values.
const (
	ConvAuto   = ""       // volume-threshold heuristic (the PR 7 default)
	ConvIm2col = "im2col" // force the im2col + blocked-GEMM path
	ConvDirect = "direct" // force the direct kernel
)

// KernelConfig is the knob set one task resolves to. The zero value means
// "use every default" and is indistinguishable from an absent record.
type KernelConfig struct {
	// ConvStrategy selects the convolution algorithm: ConvAuto, ConvIm2col
	// or ConvDirect. Ignored by dense tasks.
	ConvStrategy string
	// GemmMC blocks the GEMM LHS packing into row panels of at most GemmMC
	// rows (rounded up to the register-tile height); 0 packs all rows at
	// once. Bounds packing scratch and improves locality for tall LHS.
	GemmMC int
	// GemmNC is the minimum number of N register tiles per parallel chunk
	// of the GEMM driver; 0 splits evenly across the acquired workers.
	GemmNC int
	// Workers caps the workers this kernel's parallel loops may use on top
	// of the shared inter/intra-op budget; 0 applies no per-kernel cap.
	Workers int
	// Grain is the minimum iterations per chunk of the kernel's outer
	// parallel loop (conv batch×row loop); 0 applies no minimum.
	Grain int
}

// IsDefault reports whether the config carries no overrides.
func (c KernelConfig) IsDefault() bool { return c == KernelConfig{} }

// String renders the config compactly for reports and record files.
func (c KernelConfig) String() string {
	if c.IsDefault() {
		return "default"
	}
	s := ""
	app := func(f string, args ...interface{}) {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf(f, args...)
	}
	if c.ConvStrategy != ConvAuto {
		app("conv=%s", c.ConvStrategy)
	}
	if c.GemmMC != 0 {
		app("mc=%d", c.GemmMC)
	}
	if c.GemmNC != 0 {
		app("nc=%d", c.GemmNC)
	}
	if c.Workers != 0 {
		app("workers=%d", c.Workers)
	}
	if c.Grain != 0 {
		app("grain=%d", c.Grain)
	}
	return s
}

// chunkOpts translates the parallelism knobs for parallel.ForChunkedOpts.
// Safe on a nil config (returns the unlimited zero value).
func (c *KernelConfig) chunkOpts() parallel.ChunkOpts {
	if c == nil {
		return parallel.ChunkOpts{}
	}
	return parallel.ChunkOpts{MaxWorkers: c.Workers, MinGrain: c.Grain}
}

// gemmOpts is chunkOpts for the GEMM N-tile loop, whose grain knob is
// GemmNC rather than Grain.
func (c *KernelConfig) gemmOpts() parallel.ChunkOpts {
	if c == nil {
		return parallel.ChunkOpts{}
	}
	return parallel.ChunkOpts{MaxWorkers: c.Workers, MinGrain: c.GemmNC}
}

// tunedEntry pairs a config with its dispatch hit count (npc -profile's
// tuned-dispatch audit table).
type tunedEntry struct {
	cfg  KernelConfig
	hits atomic.Int64
}

// TuningTable maps task signatures to tuned configs. Built once (by
// internal/tune from a record file), then read-only; the per-entry hit
// counters are the only mutable state.
type TuningTable struct {
	configs map[TaskKey]*tunedEntry
	hits    atomic.Int64
	misses  atomic.Int64
	// Optional Prometheus series (EnableMetrics).
	obsHits, obsMisses *obs.Counter
}

// NewTuningTable returns an empty table.
func NewTuningTable() *TuningTable {
	return &TuningTable{configs: map[TaskKey]*tunedEntry{}}
}

// Set installs a config for a task (last write wins).
func (t *TuningTable) Set(key TaskKey, cfg KernelConfig) {
	t.configs[key] = &tunedEntry{cfg: cfg}
}

// Len returns the number of tuned tasks.
func (t *TuningTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.configs)
}

// Lookup returns the tuned config for a task without touching the hit/miss
// accounting (tests and reporting).
func (t *TuningTable) Lookup(key TaskKey) (KernelConfig, bool) {
	if t == nil {
		return KernelConfig{}, false
	}
	e, ok := t.configs[key]
	if !ok {
		return KernelConfig{}, false
	}
	return e.cfg, true
}

// Stats returns the cumulative dispatch hit/miss counts.
func (t *TuningTable) Stats() (hits, misses int64) {
	if t == nil {
		return 0, 0
	}
	return t.hits.Load(), t.misses.Load()
}

// EnableMetrics exports the table through an obs registry:
// np_tune_records_loaded (gauge, task count) plus
// np_tune_task_hits_total / np_tune_task_misses_total counters incremented
// on every kernel dispatch that consults the table.
func (t *TuningTable) EnableMetrics(r *obs.Registry) {
	if t == nil || r == nil {
		return
	}
	r.Gauge("np_tune_records_loaded",
		"Tuned task configs currently installed in the kernel dispatch table.", nil).
		Set(float64(len(t.configs)))
	t.obsHits = r.Counter("np_tune_task_hits_total",
		"Kernel dispatches that found a tuned config for their task.", nil)
	t.obsMisses = r.Counter("np_tune_task_misses_total",
		"Kernel dispatches whose task had no tuned config.", nil)
}

// TunedDispatch is one row of the tuned-dispatch audit table.
type TunedDispatch struct {
	Task   TaskKey
	Config KernelConfig
	Hits   int64
}

// Snapshot returns every tuned task with its config and dispatch hit count,
// sorted by task signature for deterministic output.
func (t *TuningTable) Snapshot() []TunedDispatch {
	if t == nil {
		return nil
	}
	out := make([]TunedDispatch, 0, len(t.configs))
	for k, e := range t.configs {
		out = append(out, TunedDispatch{Task: k, Config: e.cfg, Hits: e.hits.Load()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task.String() < out[j].Task.String() })
	return out
}

// activeTuning is the installed table; nil (the default) short-circuits
// every lookup to one atomic load, keeping untuned dispatch cost-free, the
// same pattern kernelObs uses.
var activeTuning atomic.Pointer[TuningTable]

// SetTuning installs (or with nil removes) the active tuning table,
// returning the previous one so measurement harnesses can restore it.
func SetTuning(t *TuningTable) *TuningTable {
	return activeTuning.Swap(t)
}

// Tuning returns the active table (nil when none is installed).
func Tuning() *TuningTable { return activeTuning.Load() }

// tunedConfig resolves the active table's config for a task, counting the
// hit or miss. Returns nil when no table is installed or the task has no
// record — callers fall back to their built-in heuristics.
func tunedConfig(key TaskKey) *KernelConfig {
	t := activeTuning.Load()
	if t == nil {
		return nil
	}
	e, ok := t.configs[key]
	if !ok {
		t.misses.Add(1)
		if t.obsMisses != nil {
			t.obsMisses.Inc()
		}
		return nil
	}
	t.hits.Add(1)
	e.hits.Add(1)
	if t.obsHits != nil {
		t.obsHits.Inc()
	}
	return &e.cfg
}

// taskOp normalizes fused kernel names to their anchor op so one tuning
// record serves both the TVM chain (qnn.conv2d) and the Neuron runtime's
// fused dispatch (qnn.conv2d_fused) of the same problem.
func taskOp(op string) string {
	switch op {
	case "qnn.conv2d_fused":
		return "qnn.conv2d"
	case "qnn.dense_fused":
		return "qnn.dense"
	}
	return op
}

// ConvTaskKey builds the task signature of one convolution launch.
func ConvTaskKey(op string, data, weight *tensor.Tensor, sh, sw, dh, dw, groups int, pad [4]int) TaskKey {
	return TaskKey{
		Op: taskOp(op),
		N:  data.Shape[0], H: data.Shape[1], W: data.Shape[2], C: data.Shape[3],
		OC: weight.Shape[0], KH: weight.Shape[1], KW: weight.Shape[2], ICG: weight.Shape[3],
		SH: sh, SW: sw, DH: dh, DW: dw, Groups: groups,
		PadT: pad[0], PadL: pad[1], PadB: pad[2], PadR: pad[3],
		DType: data.DType.String(),
	}
}

// DenseTaskKey builds the task signature of one dense/matmul launch.
func DenseTaskKey(op string, data, weight *tensor.Tensor) TaskKey {
	return TaskKey{
		Op: taskOp(op),
		N:  data.Shape[0], H: 1, W: 1, C: data.Shape[1],
		OC: weight.Shape[0], KH: 1, KW: 1, ICG: weight.Shape[1],
		SH: 1, SW: 1, DH: 1, DW: 1, Groups: 1,
		DType: data.DType.String(),
	}
}

func convTaskKey(op string, data, weight *tensor.Tensor, p conv2dParams) TaskKey {
	return ConvTaskKey(op, data, weight, p.sh, p.sw, p.dh, p.dw, p.groups, p.pad)
}

// ConvTaskKeyTypes builds a convolution task signature from relay types and
// attrs — the form the tune extractor uses on compiled modules, where only
// checked types exist. It must agree exactly with the tensor-based key the
// kernel builds at dispatch time (tuning_test.go pins the equivalence).
func ConvTaskKeyTypes(op string, data, weight *relay.TensorType, attrs relay.Attrs) TaskKey {
	sh, sw := attrs.IntPair("strides", 1)
	dh, dw := attrs.IntPair("dilation", 1)
	pad := attrs.Pad4("padding")
	return TaskKey{
		Op: taskOp(op),
		N:  data.Shape[0], H: data.Shape[1], W: data.Shape[2], C: data.Shape[3],
		OC: weight.Shape[0], KH: weight.Shape[1], KW: weight.Shape[2], ICG: weight.Shape[3],
		SH: sh, SW: sw, DH: dh, DW: dw, Groups: attrs.Int("groups", 1),
		PadT: pad[0], PadL: pad[1], PadB: pad[2], PadR: pad[3],
		DType: data.DType.String(),
	}
}

// DenseTaskKeyTypes is the dense/matmul analogue of ConvTaskKeyTypes.
func DenseTaskKeyTypes(op string, data, weight *relay.TensorType) TaskKey {
	return TaskKey{
		Op: taskOp(op),
		N:  data.Shape[0], H: 1, W: 1, C: data.Shape[1],
		OC: weight.Shape[0], KH: 1, KW: 1, ICG: weight.Shape[1],
		SH: 1, SW: 1, DH: 1, DW: 1, Groups: 1,
		DType: data.DType.String(),
	}
}
