package topi

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/relay"
	"repro/internal/tensor"
)

// naiveGemmF32 is the reference contraction the blocked kernel must match
// bit-for-bit: one accumulator per cell, k ascending. a is m×k row-major,
// b is n×k row-major (weight layout: each output column is a row of b).
func naiveGemmF32(m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for kk := 0; kk < k; kk++ {
				acc += a[i*lda+kk] * b[j*ldb+kk]
			}
			c[i*ldc+j] = acc
		}
	}
}

func naiveGemmI32(m, n, k int, a []int32, lda int, b []int32, ldb int, c []int32, ldc int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc int32
			for kk := 0; kk < k; kk++ {
				acc += a[i*lda+kk] * b[j*ldb+kk]
			}
			c[i*ldc+j] = acc
		}
	}
}

// gemmDims exercises every microkernel edge: dims below one tile, exact
// tile multiples, primes that leave ragged edge tiles in both M and N, and
// K values around the ×4 unroll boundary.
var gemmDims = [][3]int{
	{1, 1, 1}, {1, 2, 3}, {2, 1, 5}, {3, 2, 4}, {4, 2, 8},
	{4, 4, 16}, {5, 3, 7}, {7, 11, 13}, {8, 6, 64}, {13, 7, 11},
	{17, 5, 29}, {23, 19, 3}, {31, 17, 23}, {64, 32, 9},
}

func TestGemmF32MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range gemmDims {
		m, n, k := d[0], d[1], d[2]
		t.Run(fmt.Sprintf("m%d_n%d_k%d", m, n, k), func(t *testing.T) {
			a := make([]float32, m*k)
			b := make([]float32, n*k)
			for i := range a {
				a[i] = rng.Float32()*2 - 1
			}
			for i := range b {
				b[i] = rng.Float32()*2 - 1
			}
			bpack := make([]float32, gemmTiles(n, gemmNR)*gemmNR*k)
			packRHSF32(bpack, b, n, k, k)
			got := make([]float32, m*n)
			gemmF32(m, n, k, a, k, bpack, got, n)
			want := make([]float32, m*n)
			naiveGemmF32(m, n, k, a, k, b, k, want, n)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("c[%d]: blocked %v != naive %v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestGemmF32StridedOperands(t *testing.T) {
	// lda > k and ldc > n: the packed kernel must respect leading
	// dimensions when A rows and C rows are embedded in wider buffers.
	rng := rand.New(rand.NewSource(11))
	m, n, k := 9, 7, 13
	lda, ldc := k+5, n+3
	a := make([]float32, m*lda)
	b := make([]float32, n*k)
	for i := range a {
		a[i] = rng.Float32()*2 - 1
	}
	for i := range b {
		b[i] = rng.Float32()*2 - 1
	}
	bpack := make([]float32, gemmTiles(n, gemmNR)*gemmNR*k)
	packRHSF32(bpack, b, n, k, k)
	got := make([]float32, m*ldc)
	gemmF32(m, n, k, a, lda, bpack, got, ldc)
	want := make([]float32, m*ldc)
	naiveGemmF32(m, n, k, a, lda, b, k, want, ldc)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if got[i*ldc+j] != want[i*ldc+j] {
				t.Fatalf("c[%d,%d]: blocked %v != naive %v", i, j, got[i*ldc+j], want[i*ldc+j])
			}
		}
	}
}

func TestGemmI32MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, d := range gemmDims {
		m, n, k := d[0], d[1], d[2]
		t.Run(fmt.Sprintf("m%d_n%d_k%d", m, n, k), func(t *testing.T) {
			a := make([]int32, m*k)
			b := make([]int32, n*k)
			for i := range a {
				a[i] = int32(rng.Intn(511) - 255)
			}
			for i := range b {
				b[i] = int32(rng.Intn(511) - 255)
			}
			bpack := make([]int32, gemmTiles(n, gemmNR)*gemmNR*k)
			packRHSI32(bpack, b, n, k, k)
			got := make([]int32, m*n)
			gemmI32(m, n, k, a, k, bpack, got, n)
			want := make([]int32, m*n)
			naiveGemmI32(m, n, k, a, k, b, k, want, n)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("c[%d]: blocked %d != naive %d", i, got[i], want[i])
				}
			}
		})
	}
}

// convCase is one conv2d shape; the property under test is that the
// im2col+GEMM path and the direct kernel produce bitwise-identical outputs
// (both reduce each output cell with a single accumulator over the same
// ky,kx,ic order; padding contributes exact zero terms).
type convCase struct {
	name                   string
	n, h, w, c, oc, kh, kw int
	sh, sw, dh, dw, groups int
	pad                    [4]int
}

var convCases = []convCase{
	{name: "unit", n: 1, h: 8, w: 8, c: 3, oc: 4, kh: 3, kw: 3, sh: 1, sw: 1, dh: 1, dw: 1, groups: 1},
	{name: "strided", n: 2, h: 9, w: 7, c: 3, oc: 5, kh: 3, kw: 3, sh: 2, sw: 2, dh: 1, dw: 1, groups: 1, pad: [4]int{1, 1, 1, 1}},
	{name: "dilated", n: 1, h: 11, w: 11, c: 2, oc: 3, kh: 3, kw: 3, sh: 1, sw: 1, dh: 2, dw: 2, groups: 1},
	{name: "grouped", n: 1, h: 8, w: 8, c: 4, oc: 6, kh: 3, kw: 3, sh: 1, sw: 1, dh: 1, dw: 1, groups: 2, pad: [4]int{1, 1, 1, 1}},
	{name: "asym-pad", n: 1, h: 7, w: 10, c: 3, oc: 4, kh: 2, kw: 3, sh: 2, sw: 1, dh: 1, dw: 1, groups: 1, pad: [4]int{0, 1, 2, 1}},
	{name: "pointwise", n: 1, h: 5, w: 5, c: 7, oc: 9, kh: 1, kw: 1, sh: 1, sw: 1, dh: 1, dw: 1, groups: 1},
}

func (cc convCase) outShape() (oh, ow int) {
	oh = (cc.h+cc.pad[0]+cc.pad[2]-((cc.kh-1)*cc.dh+1))/cc.sh + 1
	ow = (cc.w+cc.pad[1]+cc.pad[3]-((cc.kw-1)*cc.dw+1))/cc.sw + 1
	return oh, ow
}

func (cc convCase) params() conv2dParams {
	return conv2dParams{sh: cc.sh, sw: cc.sw, dh: cc.dh, dw: cc.dw, groups: cc.groups, pad: cc.pad}
}

func (cc convCase) attrs() relay.Attrs {
	return relay.Attrs{
		"strides": []int{cc.sh, cc.sw}, "dilation": []int{cc.dh, cc.dw},
		"padding": []int{cc.pad[0], cc.pad[1], cc.pad[2], cc.pad[3]}, "groups": cc.groups,
	}
}

func TestConvIm2colMatchesDirectF32(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, cc := range convCases {
		t.Run(cc.name, func(t *testing.T) {
			data := tensor.New(tensor.Float32, tensor.Shape{cc.n, cc.h, cc.w, cc.c})
			weight := tensor.New(tensor.Float32, tensor.Shape{cc.oc, cc.kh, cc.kw, cc.c / cc.groups})
			dv, wv := data.F32(), weight.F32()
			for i := range dv {
				dv[i] = rng.Float32()*2 - 1
			}
			for i := range wv {
				wv[i] = rng.Float32()*2 - 1
			}
			oh, ow := cc.outShape()
			out := &relay.TensorType{Shape: tensor.Shape{cc.n, oh, ow, cc.oc}, DType: tensor.Float32}

			// Small shapes dispatch to the direct kernel inside conv2DF32.
			direct, err := conv2DF32([]*tensor.Tensor{data, weight}, cc.attrs(), out, nil)
			if err != nil {
				t.Fatal(err)
			}
			blocked := conv2DF32Im2col(data, weight, cc.params(), out, nil, nil)
			d, b := direct.F32(), blocked.F32()
			for i := range d {
				if d[i] != b[i] {
					t.Fatalf("out[%d]: direct %v != im2col %v", i, d[i], b[i])
				}
			}
		})
	}
}

func TestConvIm2colMatchesDirectQnn(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, cc := range convCases {
		t.Run(cc.name, func(t *testing.T) {
			data := tensor.New(tensor.UInt8, tensor.Shape{cc.n, cc.h, cc.w, cc.c})
			weight := tensor.New(tensor.UInt8, tensor.Shape{cc.oc, cc.kh, cc.kw, cc.c / cc.groups})
			for i := range data.U8() {
				data.U8()[i] = uint8(rng.Intn(256))
			}
			for i := range weight.U8() {
				weight.U8()[i] = uint8(rng.Intn(256))
			}
			const zpIn, zpK = 128, 119
			attrs := cc.attrs()
			attrs["input_zero_point"] = zpIn
			attrs["kernel_zero_point"] = zpK
			oh, ow := cc.outShape()
			out := &relay.TensorType{Shape: tensor.Shape{cc.n, oh, ow, cc.oc}, DType: tensor.Int32}

			direct, err := qnnConv2D([]*tensor.Tensor{data, weight}, attrs, out, nil)
			if err != nil {
				t.Fatal(err)
			}
			blocked, err := conv2DQnnIm2col(data, weight, cc.params(), zpIn, zpK, out, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			d, b := direct.I32(), blocked.I32()
			for i := range d {
				if d[i] != b[i] {
					t.Fatalf("out[%d]: direct %d != im2col %d", i, d[i], b[i])
				}
			}
		})
	}
}
