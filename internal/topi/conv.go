package topi

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/relay"
	"repro/internal/tensor"
)

// conv2dParams gathers the attribute set shared by float and quantized
// convolution.
type conv2dParams struct {
	sh, sw, dh, dw, groups int
	pad                    [4]int // top, left, bottom, right
}

func convParams(attrs relay.Attrs) conv2dParams {
	p := conv2dParams{groups: attrs.Int("groups", 1)}
	p.sh, p.sw = attrs.IntPair("strides", 1)
	p.dh, p.dw = attrs.IntPair("dilation", 1)
	p.pad = attrs.Pad4("padding")
	return p
}

// conv2DF32 is the float32 direct convolution: NHWC data, OHWI weight.
// Parallelized over (batch × output row); each goroutine owns disjoint output
// rows so there is no shared mutable state.
func conv2DF32(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 2, "nn.conv2d"); err != nil {
		return nil, err
	}
	data, weight := args[0], args[1]
	p := convParams(attrs)

	n := data.Shape[0]
	h, w, c := data.Shape[1], data.Shape[2], data.Shape[3]
	oc, kh, kw, icg := weight.Shape[0], weight.Shape[1], weight.Shape[2], weight.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	ocg := oc / p.groups

	// Compute-heavy shapes take the im2col + GEMM path (contiguous inner
	// loops); small shapes stay on the direct kernel to avoid packing cost.
	if int64(n)*int64(oh)*int64(ow)*int64(oc)*int64(kh*kw*icg) >= im2colThreshold {
		return conv2DF32Im2col(data, weight, p, out, dstBuf), nil
	}
	res := output(dstBuf, out)

	din := data.F32()
	wt := weight.F32()
	dout := res.F32()

	parallel.For(n*oh, func(job int) {
		b := job / oh
		oy := job % oh
		for ox := 0; ox < ow; ox++ {
			outBase := ((b*oh+oy)*ow + ox) * oc
			for g := 0; g < p.groups; g++ {
				for f := 0; f < ocg; f++ {
					o := g*ocg + f
					var acc float32
					for ky := 0; ky < kh; ky++ {
						iy := oy*p.sh - p.pad[0] + ky*p.dh
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*p.sw - p.pad[1] + kx*p.dw
							if ix < 0 || ix >= w {
								continue
							}
							inBase := ((b*h+iy)*w+ix)*c + g*icg
							wBase := ((o*kh+ky)*kw + kx) * icg
							for ic := 0; ic < icg; ic++ {
								acc += din[inBase+ic] * wt[wBase+ic]
							}
						}
					}
					dout[outBase+o] = acc
				}
			}
		}
	})
	return res, nil
}

// qnnConv2D is the quantized convolution producing an int32 accumulator:
// acc = Σ (q_in - zp_in) * (q_w - zp_w). The requantize kernel narrows the
// accumulator back to 8 bits.
func qnnConv2D(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 2, "qnn.conv2d"); err != nil {
		return nil, err
	}
	data, weight := args[0], args[1]
	p := convParams(attrs)
	zpIn := int32(attrs.Int("input_zero_point", 0))
	zpK := int32(attrs.Int("kernel_zero_point", 0))
	res := output(dstBuf, out)

	n := data.Shape[0]
	h, w, c := data.Shape[1], data.Shape[2], data.Shape[3]
	oc, kh, kw, icg := weight.Shape[0], weight.Shape[1], weight.Shape[2], weight.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	ocg := oc / p.groups

	din, err := rawI32View(data)
	if err != nil {
		return nil, err
	}
	wt, err := rawI32View(weight)
	if err != nil {
		return nil, err
	}
	dout := res.I32()

	parallel.For(n*oh, func(job int) {
		b := job / oh
		oy := job % oh
		for ox := 0; ox < ow; ox++ {
			outBase := ((b*oh+oy)*ow + ox) * oc
			for g := 0; g < p.groups; g++ {
				for f := 0; f < ocg; f++ {
					o := g*ocg + f
					var acc int32
					for ky := 0; ky < kh; ky++ {
						iy := oy*p.sh - p.pad[0] + ky*p.dh
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*p.sw - p.pad[1] + kx*p.dw
							if ix < 0 || ix >= w {
								continue
							}
							inBase := ((b*h+iy)*w+ix)*c + g*icg
							wBase := ((o*kh+ky)*kw + kx) * icg
							for ic := 0; ic < icg; ic++ {
								acc += (din[inBase+ic] - zpIn) * (wt[wBase+ic] - zpK)
							}
						}
					}
					// Padding contributes (zp_in - zp_in) = 0 with the
					// skip-out-of-bounds loop above only when the padded
					// value equals the zero point — which is exactly the
					// QNN convention (pad with zp), so skipping is correct.
					dout[outBase+o] = acc
				}
			}
		}
	})
	return res, nil
}

// rawI32View widens an 8-bit quantized tensor into an int32 slice once, so
// the inner convolution loop avoids per-element interface dispatch.
func rawI32View(t *tensor.Tensor) ([]int32, error) {
	switch t.DType {
	case tensor.UInt8:
		src := t.U8()
		out := make([]int32, len(src))
		for i, v := range src {
			out[i] = int32(v)
		}
		return out, nil
	case tensor.Int8:
		src := t.I8()
		out := make([]int32, len(src))
		for i, v := range src {
			out[i] = int32(v)
		}
		return out, nil
	case tensor.Int32:
		return t.I32(), nil
	}
	return nil, fmt.Errorf("quantized kernel on %s tensor", t.DType)
}

func denseF32(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 2, "nn.dense"); err != nil {
		return nil, err
	}
	data, weight := args[0], args[1]
	res := output(dstBuf, out)
	n, k := data.Shape[0], data.Shape[1]
	units := weight.Shape[0]
	din := data.F32()
	wt := weight.F32()
	dout := res.F32()
	parallel.For(n*units, func(job int) {
		row := job / units
		u := job % units
		var acc float32
		db := row * k
		wb := u * k
		for i := 0; i < k; i++ {
			acc += din[db+i] * wt[wb+i]
		}
		dout[row*units+u] = acc
	})
	return res, nil
}

func qnnDense(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 2, "qnn.dense"); err != nil {
		return nil, err
	}
	data, weight := args[0], args[1]
	zpIn := int32(attrs.Int("input_zero_point", 0))
	zpK := int32(attrs.Int("kernel_zero_point", 0))
	res := output(dstBuf, out)
	n, k := data.Shape[0], data.Shape[1]
	units := weight.Shape[0]
	din, err := rawI32View(data)
	if err != nil {
		return nil, err
	}
	wt, err := rawI32View(weight)
	if err != nil {
		return nil, err
	}
	dout := res.I32()
	parallel.For(n*units, func(job int) {
		row := job / units
		u := job % units
		var acc int32
		db := row * k
		wb := u * k
		for i := 0; i < k; i++ {
			acc += (din[db+i] - zpIn) * (wt[wb+i] - zpK)
		}
		dout[row*units+u] = acc
	})
	return res, nil
}

func init() {
	Register("nn.conv2d", conv2DF32)
	Register("qnn.conv2d", qnnConv2D)
	Register("nn.dense", denseF32)
	Register("qnn.dense", qnnDense)
}
