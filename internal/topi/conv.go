package topi

import (
	"repro/internal/parallel"
	"repro/internal/relay"
	"repro/internal/tensor"
)

// conv2dParams gathers the attribute set shared by float and quantized
// convolution.
type conv2dParams struct {
	sh, sw, dh, dw, groups int
	pad                    [4]int // top, left, bottom, right
}

func convParams(attrs relay.Attrs) conv2dParams {
	p := conv2dParams{groups: attrs.Int("groups", 1)}
	p.sh, p.sw = attrs.IntPair("strides", 1)
	p.dh, p.dw = attrs.IntPair("dilation", 1)
	p.pad = attrs.Pad4("padding")
	return p
}

// conv2DF32 is the float32 direct convolution: NHWC data, OHWI weight.
// Parallelized over (batch × output row); each goroutine owns disjoint output
// rows so there is no shared mutable state.
func conv2DF32(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 2, "nn.conv2d"); err != nil {
		return nil, err
	}
	data, weight := args[0], args[1]
	p := convParams(attrs)

	n := data.Shape[0]
	h, w, c := data.Shape[1], data.Shape[2], data.Shape[3]
	oc, kh, kw, icg := weight.Shape[0], weight.Shape[1], weight.Shape[2], weight.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	ocg := oc / p.groups

	// Compute-heavy shapes take the im2col + GEMM path (contiguous inner
	// loops); small shapes stay on the direct kernel to avoid packing cost.
	// A tuned record overrides the volume heuristic; both paths are pinned
	// bit-identical, so the switch is a pure performance decision.
	cfg := tunedConfig(convTaskKey("nn.conv2d", data, weight, p))
	if convUseIm2col(cfg, n, oh, ow, oc, kh*kw*icg) {
		return conv2DF32Im2col(data, weight, p, out, dstBuf, cfg), nil
	}
	res := output(dstBuf, out)

	din := data.F32()
	wt := weight.F32()
	dout := res.F32()

	parallel.ForChunkedOpts(n*oh, cfg.chunkOpts(), func(lo, hi int) {
		for job := lo; job < hi; job++ {
			b := job / oh
			oy := job % oh
			for ox := 0; ox < ow; ox++ {
				outBase := ((b*oh+oy)*ow + ox) * oc
				for g := 0; g < p.groups; g++ {
					for f := 0; f < ocg; f++ {
						o := g*ocg + f
						var acc float32
						for ky := 0; ky < kh; ky++ {
							iy := oy*p.sh - p.pad[0] + ky*p.dh
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < kw; kx++ {
								ix := ox*p.sw - p.pad[1] + kx*p.dw
								if ix < 0 || ix >= w {
									continue
								}
								inBase := ((b*h+iy)*w+ix)*c + g*icg
								wBase := ((o*kh+ky)*kw + kx) * icg
								for ic := 0; ic < icg; ic++ {
									acc += din[inBase+ic] * wt[wBase+ic]
								}
							}
						}
						dout[outBase+o] = acc
					}
				}
			}
		}
	})
	return res, nil
}

// convUseIm2col applies the tuned conv-strategy knob on top of the MAC-volume
// heuristic: an explicit record wins, ConvAuto (or no record) keeps the
// threshold comparison.
func convUseIm2col(cfg *KernelConfig, n, oh, ow, oc, kvol int) bool {
	if cfg != nil {
		switch cfg.ConvStrategy {
		case ConvIm2col:
			return true
		case ConvDirect:
			return false
		}
	}
	return int64(n)*int64(oh)*int64(ow)*int64(oc)*int64(kvol) >= im2colThreshold
}

// qnnConv2D is the quantized convolution producing an int32 accumulator:
// acc = Σ (q_in - zp_in) * (q_w - zp_w). The requantize kernel narrows the
// accumulator back to 8 bits.
func qnnConv2D(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 2, "qnn.conv2d"); err != nil {
		return nil, err
	}
	data, weight := args[0], args[1]
	p := convParams(attrs)
	zpIn := int32(attrs.Int("input_zero_point", 0))
	zpK := int32(attrs.Int("kernel_zero_point", 0))

	n := data.Shape[0]
	h, w, c := data.Shape[1], data.Shape[2], data.Shape[3]
	oc, kh, kw, icg := weight.Shape[0], weight.Shape[1], weight.Shape[2], weight.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	ocg := oc / p.groups

	// Compute-heavy shapes take the im2col + int32 GEMM path; integer
	// accumulation is associative, so both paths are bitwise identical. A
	// tuned record overrides the volume heuristic.
	cfg := tunedConfig(convTaskKey("qnn.conv2d", data, weight, p))
	if convUseIm2col(cfg, n, oh, ow, oc, kh*kw*icg) {
		return conv2DQnnIm2col(data, weight, p, zpIn, zpK, out, dstBuf, cfg)
	}
	res := output(dstBuf, out)

	// Widen both operands once into pooled (raw − zp) scratch: the inner
	// loop then runs multiply-accumulate only, and the kernel allocates
	// nothing in steady state.
	dinP := getScratchI32(data.Elems())
	din := *dinP
	if err := rawMinusZp(din, data, zpIn); err != nil {
		putScratchI32(dinP)
		return nil, err
	}
	wtP := getScratchI32(weight.Elems())
	wt := *wtP
	if err := rawMinusZp(wt, weight, zpK); err != nil {
		putScratchI32(dinP)
		putScratchI32(wtP)
		return nil, err
	}
	dout := res.I32()

	parallel.ForChunkedOpts(n*oh, cfg.chunkOpts(), func(lo, hi int) {
		for job := lo; job < hi; job++ {
			b := job / oh
			oy := job % oh
			for ox := 0; ox < ow; ox++ {
				outBase := ((b*oh+oy)*ow + ox) * oc
				for g := 0; g < p.groups; g++ {
					for f := 0; f < ocg; f++ {
						o := g*ocg + f
						var acc int32
						for ky := 0; ky < kh; ky++ {
							iy := oy*p.sh - p.pad[0] + ky*p.dh
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < kw; kx++ {
								ix := ox*p.sw - p.pad[1] + kx*p.dw
								if ix < 0 || ix >= w {
									continue
								}
								inBase := ((b*h+iy)*w+ix)*c + g*icg
								wBase := ((o*kh+ky)*kw + kx) * icg
								for ic := 0; ic < icg; ic++ {
									acc += din[inBase+ic] * wt[wBase+ic]
								}
							}
						}
						// Padding contributes (zp_in - zp_in) = 0 with the
						// skip-out-of-bounds loop above only when the padded
						// value equals the zero point — which is exactly the
						// QNN convention (pad with zp), so skipping is correct.
						dout[outBase+o] = acc
					}
				}
			}
		}
	})
	putScratchI32(dinP)
	putScratchI32(wtP)
	return res, nil
}

func denseF32(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 2, "nn.dense"); err != nil {
		return nil, err
	}
	data, weight := args[0], args[1]
	res := output(dstBuf, out)
	n, k := data.Shape[0], data.Shape[1]
	units := weight.Shape[0]
	// nn.dense is GEMM by definition: rows of data against rows of weight.
	// The packed panels come from the per-weight cache; tile parallelism
	// inside gemmF32 draws on the shared worker budget.
	cfg := tunedConfig(DenseTaskKey("nn.dense", data, weight))
	pw := packedConvWeightF32(weight, units, k, 1)
	gemmF32Cfg(n, units, k, data.F32(), k, pw.data, res.F32(), units, cfg)
	return res, nil
}

func qnnDense(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 2, "qnn.dense"); err != nil {
		return nil, err
	}
	data, weight := args[0], args[1]
	zpIn := int32(attrs.Int("input_zero_point", 0))
	zpK := int32(attrs.Int("kernel_zero_point", 0))
	res := output(dstBuf, out)
	n, k := data.Shape[0], data.Shape[1]
	units := weight.Shape[0]
	pw, err := packedConvWeightI32(weight, units, k, 1, zpK)
	if err != nil {
		return nil, err
	}
	dinP := getScratchI32(n * k)
	din := *dinP
	if err := rawMinusZp(din, data, zpIn); err != nil {
		putScratchI32(dinP)
		return nil, err
	}
	cfg := tunedConfig(DenseTaskKey("qnn.dense", data, weight))
	gemmI32Cfg(n, units, k, din, k, pw.data, res.I32(), units, cfg)
	putScratchI32(dinP)
	return res, nil
}

func init() {
	Register("nn.conv2d", conv2DF32)
	Register("qnn.conv2d", qnnConv2D)
	Register("nn.dense", denseF32)
	Register("qnn.dense", qnnDense)
}
