package topi

import (
	"math"

	"repro/internal/parallel"
	"repro/internal/relay"
	"repro/internal/tensor"
)

// QNN elementwise kernels: quantize/dequantize/requantize and the
// dual-rescaling quantized add/concatenate.

func clampToDType(v int32, dt tensor.DType) int32 {
	switch dt {
	case tensor.Int8:
		if v < -128 {
			return -128
		}
		if v > 127 {
			return 127
		}
	case tensor.UInt8:
		if v < 0 {
			return 0
		}
		if v > 255 {
			return 255
		}
	}
	return v
}

func roundHalfAwayF(x float64) int32 {
	if x >= 0 {
		return int32(x + 0.5)
	}
	return int32(x - 0.5)
}

func qnnQuantize(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 1, "qnn.quantize"); err != nil {
		return nil, err
	}
	in := args[0]
	scale := attrs.Float("output_scale", 1)
	zp := int32(attrs.Int("output_zero_point", 0))
	res := output(dstBuf, out)
	src := in.F32()
	parallel.ForElems(len(src), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			q := roundHalfAwayF(float64(src[i])/scale) + zp
			setRaw(res, i, clampToDType(q, out.DType))
		}
	})
	return res, nil
}

func qnnDequantize(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 1, "qnn.dequantize"); err != nil {
		return nil, err
	}
	in := args[0]
	scale := attrs.Float("input_scale", 0)
	zp := int32(attrs.Int("input_zero_point", 0))
	if scale == 0 && in.Quant != nil {
		// Fall back to tensor-carried params (the §3.3 propagation makes
		// these available even when the frontend omitted the attrs).
		scale, zp = in.Quant.Scale, in.Quant.ZeroPoint
	}
	res := output(dstBuf, out)
	dst := res.F32()
	for i := range dst {
		dst[i] = float32(scale * float64(in.GetRaw(i)-zp))
	}
	return res, nil
}

func qnnRequantize(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 1, "qnn.requantize"); err != nil {
		return nil, err
	}
	in := args[0]
	inScale := attrs.Float("input_scale", 1)
	inZp := int32(attrs.Int("input_zero_point", 0))
	outScale := attrs.Float("output_scale", 1)
	outZp := int32(attrs.Int("output_zero_point", 0))
	// Precompute the fixed-point multiplier once: the per-element loop then
	// runs in pure integer arithmetic, bit-exact with the float64 reference
	// (see fixedpoint.go).
	fm := newFixedMultiplier(inScale / outScale)
	res := output(dstBuf, out)
	n := in.Elems()
	parallel.ForElems(n, func(lo, hi int) {
		requantRange(res, in, fm, inZp, outZp, out.DType, lo, hi)
	})
	return res, nil
}

// requantRange is the requantize inner loop over [lo,hi): widen, rescale
// through the fixed-point multiplier, re-bias, clamp.
//
//np:hotpath
func requantRange(res, in *tensor.Tensor, fm fixedMultiplier, inZp, outZp int32, dt tensor.DType, lo, hi int) {
	for i := lo; i < hi; i++ {
		setRaw(res, i, clampToDType(fm.apply(in.GetRaw(i)-inZp)+outZp, dt))
	}
}

func qnnAdd(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 2, "qnn.add"); err != nil {
		return nil, err
	}
	a, b := args[0], args[1]
	lhsScale := attrs.Float("lhs_scale", 1)
	lhsZp := int32(attrs.Int("lhs_zero_point", 0))
	rhsScale := attrs.Float("rhs_scale", 1)
	rhsZp := int32(attrs.Int("rhs_zero_point", 0))
	outScale := attrs.Float("output_scale", 1)
	outZp := int32(attrs.Int("output_zero_point", 0))
	res := output(dstBuf, out)
	n := res.Elems()
	sameShape := a.Shape.Equal(b.Shape)
	var bc *broadcaster
	if !sameShape {
		bc = newBroadcaster(a.Shape, b.Shape, out.Shape)
	}
	parallel.ForElems(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ia, ib := i, i
			if bc != nil {
				ia, ib = bc.index(i)
			}
			real := lhsScale*float64(a.GetRaw(ia)-lhsZp) + rhsScale*float64(b.GetRaw(ib)-rhsZp)
			setRaw(res, i, clampToDType(roundHalfAwayF(real/outScale)+outZp, out.DType))
		}
	})
	return res, nil
}

func qnnConcatenate(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	// Requantize each field to the output params, then concatenate.
	outScale := attrs.Float("output_scale", 1)
	outZp := int32(attrs.Int("output_zero_point", 0))
	rescaled := make([]*tensor.Tensor, len(args))
	for i, t := range args {
		inScale, inZp := outScale, outZp
		if t.Quant != nil {
			inScale, inZp = t.Quant.Scale, t.Quant.ZeroPoint
		}
		if inScale == outScale && inZp == outZp {
			rescaled[i] = t
			continue
		}
		r := tensor.New(out.DType, t.Shape)
		fm := newFixedMultiplier(inScale / outScale)
		requantRange(r, t, fm, inZp, outZp, out.DType, 0, t.Elems())
		rescaled[i] = r
	}
	return concatenateKernel(rescaled, attrs, out, dstBuf)
}

// QuantizeLinear is a convenience used by frontends/tests to pick symmetric
// quantization parameters covering [-absMax, absMax].
func QuantizeLinear(absMax float64, dt tensor.DType) tensor.QuantParams {
	if absMax <= 0 {
		absMax = 1
	}
	switch dt {
	case tensor.Int8:
		return tensor.QuantParams{Scale: absMax / 127, ZeroPoint: 0}
	case tensor.UInt8:
		return tensor.QuantParams{Scale: 2 * absMax / 255, ZeroPoint: 128}
	}
	return tensor.QuantParams{Scale: 1}
}

// AbsMax returns max |x| over a float tensor; frontends use it to synthesize
// quantization parameters for pre-quantized model emission.
func AbsMax(t *tensor.Tensor) float64 {
	m := 0.0
	for i, n := 0, t.Elems(); i < n; i++ {
		v := math.Abs(t.GetF(i))
		if v > m {
			m = v
		}
	}
	return m
}

func init() {
	Register("qnn.quantize", qnnQuantize)
	Register("qnn.dequantize", qnnDequantize)
	Register("qnn.requantize", qnnRequantize)
	Register("qnn.add", qnnAdd)
	Register("qnn.concatenate", qnnConcatenate)
}
