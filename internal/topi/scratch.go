package topi

import "sync"

// scratchPool recycles kernel-internal scratch buffers (the im2col patch
// matrices). Output buffers are arena-planned by the executor, but scratch is
// shaped per (kernel, chunk) and so is pooled here instead — keeping the
// planned executor's steady state free of per-run heap allocation. Pooling
// pointers-to-slices avoids boxing a fresh slice header on every Put.
var scratchPool = sync.Pool{New: func() any { return new([]float32) }}

// getScratchF32 returns a length-n float32 scratch slice with unspecified
// contents. Return it with putScratchF32 when done.
func getScratchF32(n int) *[]float32 {
	p := scratchPool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

func putScratchF32(p *[]float32) { scratchPool.Put(p) }

// scratchPoolI32 recycles int32 scratch (quantized im2col patch matrices,
// widened raw views, GEMM packing panels).
var scratchPoolI32 = sync.Pool{New: func() any { return new([]int32) }}

// getScratchI32 returns a length-n int32 scratch slice with unspecified
// contents. Return it with putScratchI32 when done.
func getScratchI32(n int) *[]int32 {
	p := scratchPoolI32.Get().(*[]int32)
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	*p = (*p)[:n]
	return p
}

func putScratchI32(p *[]int32) { scratchPoolI32.Put(p) }
