package topi

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/relay"
	"repro/internal/tensor"
)

// Fused quantized conv/dense kernels: quantize→conv→bias→requantize→
// activation in a single launch, computing in int32 with the fixed-point
// requantize multiplier instead of materializing three intermediate tensors
// and round-tripping through float64 per element. The Neuron runtime
// dispatches these for its fused operations (runtime.go); the unfused chain
// remains the reference and the fused path is pinned bitwise-equal to it
// (fused_test.go):
//
//   - accumulator and bias math is associative int32, identical by
//     construction;
//   - requantize uses fixedMultiplier, bit-exact with the float64 reference;
//   - the activation epilogue operates on the 8-bit post-requantize value, a
//     domain of at most 256 points — so it runs through a lookup table built
//     by evaluating the reference scalar code (relu's raw-domain clamp,
//     clip's GetF/SetF real-domain round trip) on every possible value.
//
// Attrs: the anchor's conv/dense attrs plus the requant_* parameters and
// fused_activation, exactly as the Neuron fusion pass (neuron/fuse.go)
// stores them on the operation.

// activationLUT tabulates the fused activation over every representable
// post-requantize raw value. lutBase is the dtype's minimum raw value.
type activationLUT struct {
	on   bool
	base int32
	tab  [256]int32
}

// buildActivationLUT replicates the unfused epilogue kernels exactly:
// nn.relu's raw-domain zero-point clamp, and clip's real-domain
// Dequantize→clamp→Quantize round trip (relu6).
func buildActivationLUT(activation string, dt tensor.DType, q *tensor.QuantParams) (activationLUT, error) {
	lut := activationLUT{}
	if activation == "" {
		return lut, nil
	}
	lut.on = true
	if dt == tensor.Int8 {
		lut.base = -128
	}
	lo, hi := lut.base, lut.base+255
	switch activation {
	case "relu":
		zp := int32(0)
		if q != nil {
			zp = q.ZeroPoint
		}
		for v := lo; v <= hi; v++ {
			out := v
			if out < zp {
				out = zp
			}
			lut.tab[v-lut.base] = out
		}
	case "relu6":
		for v := lo; v <= hi; v++ {
			real := float64(v)
			if q != nil {
				real = q.Dequantize(v)
			}
			if real < 0 {
				real = 0
			}
			if real > 6 {
				real = 6
			}
			out := int32(real)
			if q != nil {
				out = q.Quantize(real)
			}
			lut.tab[v-lut.base] = clampToDType(out, dt)
		}
	default:
		return lut, fmt.Errorf("fused kernel: unknown activation %q", activation)
	}
	return lut, nil
}

// requantParams extracts the requant_* attribute set the fusion pass stores.
func requantParams(attrs relay.Attrs) (fm fixedMultiplier, inZp, outZp int32) {
	inScale := attrs.Float("requant_input_scale", 1)
	outScale := attrs.Float("requant_output_scale", 1)
	inZp = int32(attrs.Int("requant_input_zero_point", 0))
	outZp = int32(attrs.Int("requant_output_zero_point", 0))
	return newFixedMultiplier(inScale / outScale), inZp, outZp
}

// fusedEpilogue applies bias + requantize + activation to one GEMM output
// row segment and stores it into res.
//
//np:hotpath
func fusedEpilogue(res *tensor.Tensor, acc, bias []int32, flatBase int, fm fixedMultiplier, reqInZp, reqOutZp int32, dt tensor.DType, lut *activationLUT) {
	for f, a := range acc {
		if bias != nil {
			a += bias[f]
		}
		q := clampToDType(fm.apply(a-reqInZp)+reqOutZp, dt)
		if lut.on {
			q = lut.tab[q-lut.base]
		}
		setRaw(res, flatBase+f, q)
	}
}

// qnnConv2DFused computes qnn.conv2d → nn.bias_add → qnn.requantize →
// activation in one pass. args: data, weight, and optionally an int32 bias.
func qnnConv2DFused(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if len(args) != 2 && len(args) != 3 {
		return nil, fmt.Errorf("qnn.conv2d_fused wants 2 or 3 args, got %d", len(args))
	}
	data, weight := args[0], args[1]
	var bv []int32
	if len(args) == 3 {
		if args[2].DType != tensor.Int32 {
			return nil, fmt.Errorf("qnn.conv2d_fused bias must be int32, got %s", args[2].DType)
		}
		bv = args[2].I32()
	}
	p := convParams(attrs)
	zpIn := int32(attrs.Int("input_zero_point", 0))
	zpK := int32(attrs.Int("kernel_zero_point", 0))
	fm, reqInZp, reqOutZp := requantParams(attrs)
	lut, err := buildActivationLUT(attrs.Str("fused_activation", ""), out.DType, out.Quant)
	if err != nil {
		return nil, err
	}

	res := output(dstBuf, out)
	n := data.Shape[0]
	h, w, c := data.Shape[1], data.Shape[2], data.Shape[3]
	oc, kh, kw, icg := weight.Shape[0], weight.Shape[1], weight.Shape[2], weight.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	ocg := oc / p.groups
	k := kh * kw * icg

	pw, err := packedConvWeightI32(weight, oc, k, p.groups, zpK)
	if err != nil {
		return nil, err
	}
	dinP := getScratchI32(data.Elems())
	din := *dinP
	if err := rawMinusZp(din, data, zpIn); err != nil {
		putScratchI32(dinP)
		return nil, err
	}

	// The task key normalizes _fused to its anchor op, so one tuning record
	// covers both the unfused chain and this kernel.
	cfg := tunedConfig(convTaskKey("qnn.conv2d_fused", data, weight, p))
	parallel.ForChunkedOpts(n*oh, cfg.chunkOpts(), func(lo, hi int) {
		colP := getScratchI32(ow * k)
		defer putScratchI32(colP)
		accP := getScratchI32(ow * ocg)
		defer putScratchI32(accP)
		col, acc := *colP, *accP
		for job := lo; job < hi; job++ {
			b := job / oh
			oy := job % oh
			for g := 0; g < p.groups; g++ {
				packColI32(col, din, p, b, oy, g, h, w, c, kh, kw, icg, ow, k)
				gemmI32Cfg(ow, ocg, k, col, k, pw.group(g, ocg), acc, ocg, cfg)
				var gb []int32
				if bv != nil {
					gb = bv[g*ocg : (g+1)*ocg]
				}
				for ox := 0; ox < ow; ox++ {
					fusedEpilogue(res, acc[ox*ocg:(ox+1)*ocg], gb,
						((b*oh+oy)*ow+ox)*oc+g*ocg, fm, reqInZp, reqOutZp, out.DType, &lut)
				}
			}
		}
	})
	putScratchI32(dinP)
	return res, nil
}

// qnnDenseFused is the FullyConnected analogue: qnn.dense → bias →
// requantize → activation.
func qnnDenseFused(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if len(args) != 2 && len(args) != 3 {
		return nil, fmt.Errorf("qnn.dense_fused wants 2 or 3 args, got %d", len(args))
	}
	data, weight := args[0], args[1]
	var bv []int32
	if len(args) == 3 {
		if args[2].DType != tensor.Int32 {
			return nil, fmt.Errorf("qnn.dense_fused bias must be int32, got %s", args[2].DType)
		}
		bv = args[2].I32()
	}
	zpIn := int32(attrs.Int("input_zero_point", 0))
	zpK := int32(attrs.Int("kernel_zero_point", 0))
	fm, reqInZp, reqOutZp := requantParams(attrs)
	lut, err := buildActivationLUT(attrs.Str("fused_activation", ""), out.DType, out.Quant)
	if err != nil {
		return nil, err
	}

	res := output(dstBuf, out)
	n, k := data.Shape[0], data.Shape[1]
	units := weight.Shape[0]
	pw, err := packedConvWeightI32(weight, units, k, 1, zpK)
	if err != nil {
		return nil, err
	}
	dinP := getScratchI32(n * k)
	din := *dinP
	if err := rawMinusZp(din, data, zpIn); err != nil {
		putScratchI32(dinP)
		return nil, err
	}
	accP := getScratchI32(n * units)
	acc := *accP
	cfg := tunedConfig(DenseTaskKey("qnn.dense_fused", data, weight))
	gemmI32Cfg(n, units, k, din, k, pw.data, acc, units, cfg)
	for row := 0; row < n; row++ {
		fusedEpilogue(res, acc[row*units:(row+1)*units], bv,
			row*units, fm, reqInZp, reqOutZp, out.DType, &lut)
	}
	putScratchI32(accP)
	putScratchI32(dinP)
	return res, nil
}

func init() {
	Register("qnn.conv2d_fused", qnnConv2DFused)
	Register("qnn.dense_fused", qnnDenseFused)
}
