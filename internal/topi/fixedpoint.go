package topi

import (
	"math"
	"math/bits"
)

// Fixed-point requantization. The reference semantics of qnn.requantize are
//
//	q_out = roundHalfAwayF(float64(q_in − zp_in) · ratio) + zp_out
//
// with ratio = input_scale/output_scale evaluated in float64. A fixedMultiplier
// reproduces that per-element float64 round-trip exactly in integer arithmetic:
//
//   - ratio is decomposed once as m·2^e with m the 53-bit significand
//     (math.Frexp), so float64(x)·ratio is the real number |x|·m·2^e rounded
//     to 53 significant bits with round-to-nearest-even — IEEE754 semantics.
//   - per element, |x|·m is formed exactly as a 128-bit product (bits.Mul64;
//     |x| ≤ 2³¹ and m < 2⁵³ keep it under 2⁸⁴), then rounded to 53 bits with
//     the same nearest-even rule, mirroring the double multiply bit for bit.
//   - the resulting q·2^t is rounded half-away-from-zero at the binary point
//     the same way roundHalfAwayF does it — add 0.5 (emulating the float64
//     addition's own nearest-even rounding), truncate — and the sign is
//     reapplied; round-half-away is symmetric, so computing on |x| is exact.
//
// The equivalence is pinned over the full multiplier range by
// TestFixedMultiplierMatchesFloat (fixedpoint_test.go). Inputs outside the
// guaranteed envelope — non-positive or non-normal ratios, or magnitudes
// that could overflow int32 — keep ok=false / fall back to the float64 path,
// so behaviour is unchanged where the fast path does not apply.
type fixedMultiplier struct {
	m     uint64  // 53-bit significand of ratio, in [2⁵², 2⁵³)
	e     int     // ratio = m · 2^e
	ratio float64 // original value, for the fallback path
	ok    bool    // false → always use the float64 fallback
}

func newFixedMultiplier(ratio float64) fixedMultiplier {
	f := fixedMultiplier{ratio: ratio}
	if !(ratio > 0) || math.IsInf(ratio, 0) {
		return f // zero, negative, NaN, Inf: float64 path
	}
	fr, exp := math.Frexp(ratio) // ratio = fr·2^exp, fr ∈ [0.5,1)
	m := uint64(math.Ldexp(fr, 53))
	if m < 1<<52 { // subnormal ratio: fewer than 53 significand bits
		return f
	}
	// Keep the guaranteed-exact envelope: extreme exponents could underflow
	// the double's subnormal range mid-computation.
	if exp < -900 || exp > 900 {
		return f
	}
	f.m, f.e, f.ok = m, exp-53, true
	return f
}

// apply returns roundHalfAwayF(float64(x)·ratio), bit-exact with the float64
// reference for every int32 x whose result fits int32.
//
//np:hotpath
func (f fixedMultiplier) apply(x int32) int32 {
	if !f.ok {
		return roundHalfAwayF(float64(x) * f.ratio)
	}
	neg := x < 0
	ax := uint64(x)
	if neg {
		ax = uint64(-int64(x))
	}
	if ax == 0 {
		return 0
	}
	// Exact product P = |x|·m < 2⁸⁴ as (hi,lo).
	hi, lo := bits.Mul64(ax, f.m)
	// Round P to 53 significant bits with nearest-even: q·2^s == RN(P).
	bl := 128 - bits.LeadingZeros64(hi)
	if hi == 0 {
		bl = 64 - bits.LeadingZeros64(lo)
	}
	q := lo
	s := 0
	if bl > 53 {
		s = bl - 53 // ≤ 31, since bl ≤ 84
		q = hi<<(64-uint(s)) | lo>>uint(s)
		rem := lo & (1<<uint(s) - 1)
		half := uint64(1) << uint(s-1)
		if rem > half || (rem == half && q&1 == 1) {
			q++
			if q == 1<<53 { // carry into a new bit: renormalize
				q >>= 1
				s++
			}
		}
	}
	// Value is q·2^t; round half-away at the binary point.
	t := f.e + s
	var r uint64
	switch {
	case t >= 0:
		// Magnitude ≥ q ≥ 2⁵² unless bl ≤ 53; overflow risk → fallback so the
		// out-of-range conversion behaves exactly like the float64 path.
		if t >= 64 || bits.Len64(q)+t > 31 {
			return roundHalfAwayF(float64(x) * f.ratio)
		}
		r = q << uint(t)
	case t <= -64:
		return 0 // |value| < 2⁵³·2⁻⁶⁴ < 2⁻¹¹ → rounds to 0
	default:
		// roundHalfAwayF computes int32(d ± 0.5): the float64 addition is
		// itself a rounding step when |d|+0.5 needs more than 53 bits, so
		// emulate it exactly: form S·2⁻ˢʰⁱᶠᵗ = |d|+0.5 as an exact integer
		// scaled value, round S to 53 bits nearest-even, then truncate
		// toward zero like the int32 conversion does.
		shift := uint(-t)
		S := q + 1<<(shift-1) // exact: q < 2⁵³, shift ≤ 63 → S < 2⁶³
		if bl2 := bits.Len64(S); bl2 > 53 {
			s2 := uint(bl2 - 53)
			rem := S & (1<<s2 - 1)
			half := uint64(1) << (s2 - 1)
			S >>= s2
			if rem > half || (rem == half && S&1 == 1) {
				S++
				if S == 1<<53 {
					S >>= 1
					s2++
				}
			}
			if s2 >= shift {
				r = S << (s2 - shift)
			} else {
				r = S >> (shift - s2)
			}
		} else {
			r = S >> shift
		}
		if bits.Len64(r) > 31 {
			return roundHalfAwayF(float64(x) * f.ratio)
		}
	}
	if neg {
		return int32(-int64(r))
	}
	return int32(r)
}
