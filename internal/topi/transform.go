package topi

import (
	"fmt"
	"math"

	"repro/internal/relay"
	"repro/internal/tensor"
)

// Data-movement kernels: reshape/flatten/squeeze/expand_dims are views or
// copies with unchanged flat layout; transpose/concat/pad/slice/upsampling
// permute or gather storage.

// copyWithShape returns a copy of in carrying the output type's shape and
// quant params (flat layout unchanged).
func copyWithShape(in *tensor.Tensor, out *relay.TensorType) *tensor.Tensor {
	res := in.Clone().Reshape(out.Shape)
	if out.Quant != nil {
		q := *out.Quant
		res.Quant = &q
	}
	return res
}

func reshapeKernel(name string) Kernel {
	return func(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
		if err := wantArgs(args, 1, name); err != nil {
			return nil, err
		}
		if dstBuf == nil {
			return copyWithShape(args[0], out), nil
		}
		res := output(dstBuf, out)
		if err := res.CopyFrom(args[0]); err != nil {
			return nil, err
		}
		return res, nil
	}
}

func transposeKernel(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 1, "transpose"); err != nil {
		return nil, err
	}
	in := args[0]
	axes := attrs.Ints("axes", nil)
	rank := len(in.Shape)
	if axes == nil {
		axes = make([]int, rank)
		for i := range axes {
			axes[i] = rank - 1 - i
		}
	}
	res := output(dstBuf, out)
	// Strides of the input.
	inStrides := make([]int, rank)
	acc := 1
	for i := rank - 1; i >= 0; i-- {
		inStrides[i] = acc
		acc *= in.Shape[i]
	}
	// For each output flat index, decompose in output shape and gather.
	n := res.Elems()
	for flat := 0; flat < n; flat++ {
		rem := flat
		src := 0
		for i := rank - 1; i >= 0; i-- {
			pos := rem % out.Shape[i]
			rem /= out.Shape[i]
			src += pos * inStrides[axes[i]]
		}
		setRaw(res, flat, 0)
		copyElem(res, flat, in, src)
	}
	return res, nil
}

// copyElem copies one element preserving the raw storage value.
func copyElem(dst *tensor.Tensor, di int, src *tensor.Tensor, si int) {
	switch src.DType {
	case tensor.Float32:
		dst.F32()[di] = src.F32()[si]
	default:
		setRaw(dst, di, src.GetRaw(si))
	}
}

func concatenateKernel(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("concatenate of no tensors")
	}
	axis := attrs.Int("axis", -1)
	rank := len(args[0].Shape)
	if axis < 0 {
		axis += rank
	}
	res := output(dstBuf, out)
	// outer = product of dims before axis; inner = product after.
	outer := 1
	for i := 0; i < axis; i++ {
		outer *= out.Shape[i]
	}
	inner := 1
	for i := axis + 1; i < rank; i++ {
		inner *= out.Shape[i]
	}
	axisOff := 0
	for _, t := range args {
		ax := t.Shape[axis]
		for o := 0; o < outer; o++ {
			for a := 0; a < ax; a++ {
				srcBase := (o*ax + a) * inner
				dstBase := (o*out.Shape[axis] + axisOff + a) * inner
				for i := 0; i < inner; i++ {
					copyElem(res, dstBase+i, t, srcBase+i)
				}
			}
		}
		axisOff += ax
	}
	return res, nil
}

func padKernel(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 1, "nn.pad"); err != nil {
		return nil, err
	}
	in := args[0]
	pad := attrs.Pad4("pad_width")
	padValue := attrs.Float("pad_value", 0)
	res := output(dstBuf, out)
	if padValue != 0 {
		res.Fill(padValue)
	} else if in.Quant != nil {
		// Quantized zero is the zero point, not raw 0.
		for i, n := 0, res.Elems(); i < n; i++ {
			setRaw(res, i, in.Quant.ZeroPoint)
		}
	} else if dstBuf != nil {
		// The algorithm assumes zero-initialized padding; a reused arena
		// buffer carries stale data.
		res.Zero()
	}
	n, h, w, c := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	ow := out.Shape[2]
	for b := 0; b < n; b++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				srcBase := ((b*h+y)*w + x) * c
				dstBase := ((b*out.Shape[1]+y+pad[0])*ow + x + pad[1]) * c
				for ch := 0; ch < c; ch++ {
					copyElem(res, dstBase+ch, in, srcBase+ch)
				}
			}
		}
	}
	return res, nil
}

func upsamplingKernel(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 1, "nn.upsampling"); err != nil {
		return nil, err
	}
	in := args[0]
	scale := attrs.Int("scale", 2)
	res := output(dstBuf, out)
	n, h, w, c := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			iy := oy / scale
			if iy >= h {
				iy = h - 1
			}
			for ox := 0; ox < ow; ox++ {
				ix := ox / scale
				if ix >= w {
					ix = w - 1
				}
				srcBase := ((b*h+iy)*w + ix) * c
				dstBase := ((b*oh+oy)*ow + ox) * c
				for ch := 0; ch < c; ch++ {
					copyElem(res, dstBase+ch, in, srcBase+ch)
				}
			}
		}
	}
	return res, nil
}

func stridedSliceKernel(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 1, "strided_slice"); err != nil {
		return nil, err
	}
	in := args[0]
	begin := attrs.Ints("begin", nil)
	rank := len(in.Shape)
	b := make([]int, rank)
	for i := range b {
		b[i] = begin[i]
		if b[i] < 0 {
			b[i] += in.Shape[i]
		}
	}
	inStrides := make([]int, rank)
	acc := 1
	for i := rank - 1; i >= 0; i-- {
		inStrides[i] = acc
		acc *= in.Shape[i]
	}
	res := output(dstBuf, out)
	n := res.Elems()
	for flat := 0; flat < n; flat++ {
		rem := flat
		src := 0
		for i := rank - 1; i >= 0; i-- {
			pos := rem % out.Shape[i]
			rem /= out.Shape[i]
			src += (pos + b[i]) * inStrides[i]
		}
		copyElem(res, flat, in, src)
	}
	return res, nil
}

func yoloOutputKernel(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 1, "vision.yolo_output"); err != nil {
		return nil, err
	}
	in := args[0]
	anchors := attrs.Int("anchors", 3)
	classes := attrs.Int("classes", 80)
	per := 5 + classes
	var res *tensor.Tensor
	if dstBuf == nil {
		res = in.Clone()
	} else {
		res = output(dstBuf, out)
		if err := res.CopyFrom(in); err != nil {
			return nil, err
		}
	}
	src := res.F32()
	cells := in.Elems() / (anchors * per)
	sigmoid := func(v float32) float32 {
		return float32(1 / (1 + math.Exp(-float64(v))))
	}
	for cell := 0; cell < cells; cell++ {
		for a := 0; a < anchors; a++ {
			base := (cell*anchors + a) * per
			// x, y, objectness and class scores pass through sigmoid;
			// w, h (indices 2,3) stay raw (exp applied at decode time).
			src[base+0] = sigmoid(src[base+0])
			src[base+1] = sigmoid(src[base+1])
			src[base+4] = sigmoid(src[base+4])
			for cl := 0; cl < classes; cl++ {
				src[base+5+cl] = sigmoid(src[base+5+cl])
			}
		}
	}
	return res, nil
}

func init() {
	Register("reshape", reshapeKernel("reshape"))
	Register("nn.batch_flatten", reshapeKernel("nn.batch_flatten"))
	Register("squeeze", reshapeKernel("squeeze"))
	Register("expand_dims", reshapeKernel("expand_dims"))
	Register("transpose", transposeKernel)
	Register("concatenate", concatenateKernel)
	Register("nn.pad", padKernel)
	Register("nn.upsampling", upsamplingKernel)
	Register("strided_slice", stridedSliceKernel)
	Register("vision.yolo_output", yoloOutputKernel)
}
