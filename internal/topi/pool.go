package topi

import (
	"math"

	"repro/internal/parallel"
	"repro/internal/relay"
	"repro/internal/tensor"
)

// Pooling kernels. Max pooling works directly in the storage domain (order
// is preserved by affine quantization), so one implementation covers float
// and quantized tensors. Average pooling divides in the accumulator domain
// with round-to-nearest for quantized inputs; padding is excluded from the
// divisor (count_exclude_pad, the tflite/NNAPI convention).

type poolParams struct {
	kh, kw, sh, sw int
	pad            [4]int
}

func poolParamsOf(attrs relay.Attrs) poolParams {
	var p poolParams
	p.kh, p.kw = attrs.IntPair("pool_size", 1)
	p.sh, p.sw = attrs.IntPair("strides", 1)
	p.pad = attrs.Pad4("padding")
	return p
}

func maxPool2D(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 1, "nn.max_pool2d"); err != nil {
		return nil, err
	}
	in := args[0]
	p := poolParamsOf(attrs)
	res := output(dstBuf, out)
	n, h, w, c := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]

	if in.DType == tensor.Float32 {
		src, dst := in.F32(), res.F32()
		parallel.For(n*oh, func(job int) {
			b, oy := job/oh, job%oh
			for ox := 0; ox < ow; ox++ {
				for ch := 0; ch < c; ch++ {
					best := float32(math.Inf(-1))
					for ky := 0; ky < p.kh; ky++ {
						iy := oy*p.sh - p.pad[0] + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.kw; kx++ {
							ix := ox*p.sw - p.pad[1] + kx
							if ix < 0 || ix >= w {
								continue
							}
							v := src[((b*h+iy)*w+ix)*c+ch]
							if v > best {
								best = v
							}
						}
					}
					dst[((b*oh+oy)*ow+ox)*c+ch] = best
				}
			}
		})
		return res, nil
	}
	// Quantized: max over the raw domain.
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for ch := 0; ch < c; ch++ {
					best := int32(math.MinInt32)
					for ky := 0; ky < p.kh; ky++ {
						iy := oy*p.sh - p.pad[0] + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.kw; kx++ {
							ix := ox*p.sw - p.pad[1] + kx
							if ix < 0 || ix >= w {
								continue
							}
							v := in.GetRaw(((b*h+iy)*w+ix)*c + ch)
							if v > best {
								best = v
							}
						}
					}
					setRaw(res, ((b*oh+oy)*ow+ox)*c+ch, best)
				}
			}
		}
	}
	return res, nil
}

func avgPool2D(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 1, "nn.avg_pool2d"); err != nil {
		return nil, err
	}
	in := args[0]
	p := poolParamsOf(attrs)
	res := output(dstBuf, out)
	n, h, w, c := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	isFloat := in.DType == tensor.Float32

	parallel.For(n*oh, func(job int) {
		b, oy := job/oh, job%oh
		for ox := 0; ox < ow; ox++ {
			for ch := 0; ch < c; ch++ {
				var accF float64
				var accI int64
				count := 0
				for ky := 0; ky < p.kh; ky++ {
					iy := oy*p.sh - p.pad[0] + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < p.kw; kx++ {
						ix := ox*p.sw - p.pad[1] + kx
						if ix < 0 || ix >= w {
							continue
						}
						idx := ((b*h+iy)*w+ix)*c + ch
						if isFloat {
							accF += float64(in.F32()[idx])
						} else {
							accI += int64(in.GetRaw(idx))
						}
						count++
					}
				}
				oidx := ((b*oh+oy)*ow+ox)*c + ch
				if count == 0 {
					setRaw(res, oidx, 0)
					continue
				}
				if isFloat {
					res.F32()[oidx] = float32(accF / float64(count))
				} else {
					// Round-half-away in the raw domain.
					v := accI
					if v >= 0 {
						v = (v + int64(count)/2) / int64(count)
					} else {
						v = (v - int64(count)/2) / int64(count)
					}
					setRaw(res, oidx, int32(v))
				}
			}
		}
	})
	return res, nil
}

func globalAvgPool2D(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 1, "nn.global_avg_pool2d"); err != nil {
		return nil, err
	}
	in := args[0]
	res := output(dstBuf, out)
	n, h, w, c := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	area := h * w
	parallel.For(n*c, func(job int) {
		b, ch := job/c, job%c
		if in.DType == tensor.Float32 {
			var acc float64
			src := in.F32()
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					acc += float64(src[((b*h+y)*w+x)*c+ch])
				}
			}
			res.F32()[b*c+ch] = float32(acc / float64(area))
			return
		}
		var acc int64
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				acc += int64(in.GetRaw(((b*h+y)*w+x)*c + ch))
			}
		}
		v := acc
		if v >= 0 {
			v = (v + int64(area)/2) / int64(area)
		} else {
			v = (v - int64(area)/2) / int64(area)
		}
		setRaw(res, b*c+ch, int32(v))
	})
	return res, nil
}

func meanKernel(args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType, dstBuf *tensor.Tensor) (*tensor.Tensor, error) {
	if err := wantArgs(args, 1, "mean"); err != nil {
		return nil, err
	}
	in := args[0]
	axes := attrs.Ints("axis", nil)
	reduce := map[int]bool{}
	if axes == nil {
		for i := range in.Shape {
			reduce[i] = true
		}
	} else {
		for _, ax := range axes {
			if ax < 0 {
				ax += len(in.Shape)
			}
			reduce[ax] = true
		}
	}
	res := output(dstBuf, out)
	sums := make([]float64, res.Elems())
	counts := make([]int, res.Elems())
	// Map every input index to its output bucket by dropping reduced axes.
	idx := make([]int, len(in.Shape))
	src := in.F32()
	for flat := range src {
		rem := flat
		for i := len(in.Shape) - 1; i >= 0; i-- {
			idx[i] = rem % in.Shape[i]
			rem /= in.Shape[i]
		}
		// Flat layout is unchanged by keepdims' interleaved 1-extents, so one
		// bucket computation serves both forms.
		o := 0
		for i, d := range in.Shape {
			if reduce[i] {
				continue
			}
			o = o*d + idx[i]
		}
		sums[o] += float64(src[flat])
		counts[o]++
	}
	dres := res.F32()
	for i := range dres {
		if counts[i] > 0 {
			dres[i] = float32(sums[i] / float64(counts[i]))
		} else {
			dres[i] = 0 // never reached for valid shapes; keeps reused buffers clean
		}
	}
	return res, nil
}

func init() {
	Register("nn.max_pool2d", maxPool2D)
	Register("nn.avg_pool2d", avgPool2D)
	Register("nn.global_avg_pool2d", globalAvgPool2D)
	Register("mean", meanKernel)
}
