package topi

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/relay"
	"repro/internal/tensor"
)

func TestKernelMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	EnableKernelMetrics(reg)
	defer EnableKernelMetrics(nil)

	a := tensor.New(tensor.Float32, tensor.Shape{4})
	b := tensor.New(tensor.Float32, tensor.Shape{4})
	out := &relay.TensorType{Shape: tensor.Shape{4}, DType: tensor.Float32}
	if _, err := Run("add", []*tensor.Tensor{a, b}, relay.Attrs{}, out); err != nil {
		t.Fatal(err)
	}
	dst := tensor.New(tensor.Float32, tensor.Shape{4})
	if err := RunInto("add", []*tensor.Tensor{a, b}, relay.Attrs{}, out, dst); err != nil {
		t.Fatal(err)
	}

	c := reg.Counter("np_kernel_launches_total", "", obs.L("kernel", "add"))
	if got := c.Value(); got != 2 {
		t.Fatalf("np_kernel_launches_total{kernel=add} = %v, want 2", got)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `np_kernel_seconds_total{kernel="add"}`) {
		t.Fatalf("kernel time series missing from exposition:\n%s", sb.String())
	}
}
