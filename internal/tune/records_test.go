package tune

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/topi"
)

func testTask(t *testing.T) topi.TaskKey {
	t.Helper()
	key, err := topi.ParseTaskKey("nn.conv2d|d=1x8x8x3|w=4x3x3x3|s=1x1|l=1x1|p=1,1,1,1|g=1|float32")
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func kernelRecord(task, model string, cfg Config, cost, def int64) Record {
	return Record{Schema: SchemaVersion, Kind: KindKernel, Task: task,
		Config: cfg, CostNS: cost, DefaultNS: def, Model: model}
}

func TestRecordRoundTrip(t *testing.T) {
	task := testTask(t)
	recs := []Record{
		kernelRecord(task.String(), "emotion", Config{ConvStrategy: topi.ConvIm2col, GemmMC: 128}, 1200, 1500),
		{Schema: SchemaVersion, Kind: KindPlacement, Task: "pipeline|showcase",
			Choice: map[string]string{"detect": "np-apu", "spoof": "np-cpu"}, CostNS: 9000},
	}
	path := filepath.Join(t.TempDir(), "records.json")
	if err := WriteRecords(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d records, want 2", len(got))
	}
	// Sorted by (kind, task): kernel before placement.
	if got[0].Kind != KindKernel || got[0].Task != task.String() {
		t.Fatalf("first record = %+v", got[0])
	}
	if got[0].Config != recs[0].Config || got[0].CostNS != 1200 || got[0].DefaultNS != 1500 || got[0].Model != "emotion" {
		t.Fatalf("kernel record did not round-trip: %+v", got[0])
	}
	if got[1].Choice["detect"] != "np-apu" || got[1].Choice["spoof"] != "np-cpu" {
		t.Fatalf("placement choice did not round-trip: %+v", got[1])
	}

	// Determinism: writing the loaded records reproduces the file bytes.
	path2 := filepath.Join(t.TempDir(), "records2.json")
	if err := WriteRecords(path2, got); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if string(b1) != string(b2) {
		t.Fatalf("rewrite not byte-identical:\n%s\nvs\n%s", b1, b2)
	}

	// The dispatch table sees exactly the kernel record.
	tbl, err := BuildTable(got)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("table has %d entries, want 1", tbl.Len())
	}
	cfg, ok := tbl.Lookup(task)
	if !ok || cfg.ConvStrategy != topi.ConvIm2col || cfg.GemmMC != 128 {
		t.Fatalf("table lookup = %+v, %v", cfg, ok)
	}
}

func TestSchemaMismatchRejected(t *testing.T) {
	task := testTask(t)
	r := kernelRecord(task.String(), "m", Config{}, 10, 20)
	r.Schema = SchemaVersion + 1
	path := filepath.Join(t.TempDir(), "old.json")
	// Write the stale-schema line by hand; WriteRecords itself refuses it.
	if err := WriteRecords(path, []Record{r}); err == nil {
		t.Fatal("WriteRecords accepted a wrong-schema record")
	}
	line := `{"schema":2,"kind":"kernel","task":"` + task.String() + `","cost_ns":10}`
	if err := os.WriteFile(path, []byte(line+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadRecords(path)
	if err == nil {
		t.Fatal("LoadRecords accepted a schema-mismatched file")
	}
	msg := err.Error()
	for _, want := range []string{"schema v2", "reads v1", "re-run nptune", "old.json:1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic %q missing %q", msg, want)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(path, []byte("{\"schema\":1,\"kind\":\"kernel\",\"task\":\"bogus\",\"cost_ns\":1}\n"), 0o644)
	if _, err := LoadRecords(path); err == nil {
		t.Fatal("accepted an unparseable task key")
	}
	os.WriteFile(path, []byte("not json\n"), 0o644)
	if _, err := LoadRecords(path); err == nil || !strings.Contains(err.Error(), "bad.json:1") {
		t.Fatalf("want line-numbered JSON error, got %v", err)
	}
}

func TestMergeLowerCostWins(t *testing.T) {
	task := testTask(t)
	a := kernelRecord(task.String(), "a", Config{GemmMC: 32}, 1500, 2000)
	b := kernelRecord(task.String(), "b", Config{GemmMC: 128}, 1200, 2000)
	other := kernelRecord("nn.dense|d=1x1x1x64|w=10x1x1x64|s=1x1|l=1x1|p=0,0,0,0|g=1|float32", "a", Config{Workers: 2}, 900, 1000)

	m1 := Merge([]Record{a, other}, []Record{b})
	m2 := Merge([]Record{b}, []Record{other, a})
	if len(m1) != 2 || len(m2) != 2 {
		t.Fatalf("merge sizes %d, %d; want 2", len(m1), len(m2))
	}
	for i := range m1 {
		if m1[i].key() != m2[i].key() || m1[i].CostNS != m2[i].CostNS || m1[i].Config != m2[i].Config {
			t.Fatalf("merge not order-independent: %+v vs %+v", m1[i], m2[i])
		}
	}
	var got Record
	for _, r := range m1 {
		if r.Task == task.String() {
			got = r
		}
	}
	if got.CostNS != 1200 || got.Config.GemmMC != 128 {
		t.Fatalf("merge kept %+v, want the 1200ns mc=128 record", got)
	}

	// Exact cost tie: deterministic winner via the serialized-config tie key.
	c := kernelRecord(task.String(), "c", Config{GemmMC: 64}, 1200, 2000)
	t1 := Merge([]Record{b}, []Record{c})
	t2 := Merge([]Record{c}, []Record{b})
	if t1[0].Config != t2[0].Config || t1[0].Model != t2[0].Model {
		t.Fatalf("tie not deterministic: %+v vs %+v", t1[0], t2[0])
	}
}
