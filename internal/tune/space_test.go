package tune

import (
	"testing"

	"repro/internal/topi"
)

func TestSpacePointZeroIsDefault(t *testing.T) {
	for _, task := range []topi.TaskKey{testTask(t), denseTask(t)} {
		s := SpaceFor(task)
		if got := s.At(s.point(0)); !got.IsDefault() {
			t.Errorf("%s: point 0 = %s, want default", task, got)
		}
		if s.Size() < 2 {
			t.Errorf("%s: space size %d, want at least default + 1 candidate", task, s.Size())
		}
	}
}

func denseTask(t *testing.T) topi.TaskKey {
	t.Helper()
	key, err := topi.ParseTaskKey("nn.dense|d=1x1x1x64|w=10x1x1x64|s=1x1|l=1x1|p=0,0,0,0|g=1|float32")
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func TestSpacePointRoundTrip(t *testing.T) {
	s := SpaceFor(testTask(t))
	seen := map[topi.KernelConfig]bool{}
	for flat := 0; flat < s.Size(); flat++ {
		idx := s.point(flat)
		ax := s.axes()
		for i, v := range idx {
			if v < 0 || v >= ax[i] {
				t.Fatalf("flat %d axis %d out of range: %d", flat, i, v)
			}
		}
		cfg := s.At(idx)
		if seen[cfg] {
			t.Fatalf("flat %d repeats config %s", flat, cfg)
		}
		seen[cfg] = true
	}
	if len(seen) != s.Size() {
		t.Fatalf("enumerated %d distinct configs, want %d", len(seen), s.Size())
	}
}

func TestDenseSpaceHasNoConvKnobs(t *testing.T) {
	s := SpaceFor(denseTask(t))
	if len(s.Strategies) != 1 || s.Strategies[0] != topi.ConvAuto {
		t.Errorf("dense strategies = %v", s.Strategies)
	}
	if len(s.Grain) != 1 || s.Grain[0] != 0 {
		t.Errorf("dense grain axis = %v", s.Grain)
	}
}
