package tune

import (
	"strings"
	"testing"

	"repro/internal/topi"
)

// fastMeasurer keeps measurement latency test-friendly.
func fastMeasurer(verify bool) Measurer {
	return Measurer{Warmup: 1, Reps: 1, MinSampleNS: 1, Verify: verify}
}

// TestBitwiseInvarianceAcrossConfigs is the tuner-side enforcement of the
// repository's standing invariant: every knob combination must produce
// bit-identical outputs. It runs representative configs of each task family
// through the verifying harness, which errors on any byte difference from
// the default config's output.
func TestBitwiseInvarianceAcrossConfigs(t *testing.T) {
	tasks := []string{
		"nn.conv2d|d=1x8x8x3|w=4x3x3x3|s=1x1|l=1x1|p=1,1,1,1|g=1|float32",
		"qnn.conv2d|d=1x8x8x4|w=6x3x3x4|s=2x2|l=1x1|p=1,1,1,1|g=1|uint8",
		"qnn.conv2d|d=1x6x6x4|w=4x1x1x4|s=1x1|l=1x1|p=0,0,0,0|g=1|int8",
		"nn.dense|d=2x1x1x33|w=9x1x1x33|s=1x1|l=1x1|p=0,0,0,0|g=1|float32",
		"qnn.dense|d=2x1x1x33|w=9x1x1x33|s=1x1|l=1x1|p=0,0,0,0|g=1|uint8",
	}
	configs := []topi.KernelConfig{
		{},
		{ConvStrategy: topi.ConvIm2col},
		{ConvStrategy: topi.ConvDirect},
		{GemmMC: 8, GemmNC: 4},
		{GemmMC: 4, Workers: 2, Grain: 2},
		{Workers: 1},
	}
	for _, ts := range tasks {
		task, err := topi.ParseTaskKey(ts)
		if err != nil {
			t.Fatal(err)
		}
		m := fastMeasurer(true)
		bench, err := m.NewKernelBench(task)
		if err != nil {
			t.Fatalf("%s: %v", task, err)
		}
		for _, cfg := range configs {
			if _, err := bench.Measure(cfg); err != nil {
				t.Errorf("%s under %s: %v", task, cfg, err)
			}
		}
	}
}

func TestMeasureRestoresDispatchTable(t *testing.T) {
	prev := topi.SetTuning(nil)
	defer topi.SetTuning(prev)
	task, _ := topi.ParseTaskKey("nn.dense|d=1x1x1x16|w=4x1x1x16|s=1x1|l=1x1|p=0,0,0,0|g=1|float32")
	m := fastMeasurer(false)
	bench, err := m.NewKernelBench(task)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bench.Measure(topi.KernelConfig{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if topi.Tuning() != nil {
		t.Fatal("Measure leaked its temporary dispatch table")
	}
}

func TestMeasureRejectsEmptyOutput(t *testing.T) {
	task, err := topi.ParseTaskKey("nn.conv2d|d=1x2x2x3|w=4x5x5x3|s=1x1|l=1x1|p=0,0,0,0|g=1|float32")
	if err != nil {
		t.Fatal(err)
	}
	m := fastMeasurer(false)
	if _, err := m.NewKernelBench(task); err == nil || !strings.Contains(err.Error(), "empty output") {
		t.Fatalf("want empty-output error, got %v", err)
	}
}

// TestTuneTasksEndToEnd runs the full orchestration on one tiny task and
// checks the record plumbing: any emitted record must beat the default and
// resolve through the dispatch table it builds.
func TestTuneTasksEndToEnd(t *testing.T) {
	task, _ := topi.ParseTaskKey("nn.conv2d|d=1x8x8x3|w=4x3x3x3|s=1x1|l=1x1|p=1,1,1,1|g=1|float32")
	recs, results, err := TuneTasks("unit", []topi.TaskKey{task}, Options{
		Search:  SearchOptions{Budget: 6},
		Measure: fastMeasurer(true),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Task != task {
		t.Fatalf("results = %+v", results)
	}
	if results[0].DefaultNS <= 0 {
		t.Fatalf("default measurement = %d ns", results[0].DefaultNS)
	}
	for _, r := range recs {
		if r.CostNS >= r.DefaultNS {
			t.Errorf("record %+v does not beat its default", r)
		}
		if err := r.Validate(); err != nil {
			t.Errorf("emitted record invalid: %v", err)
		}
	}
	tbl, err := BuildTable(recs)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != len(recs) {
		t.Fatalf("table %d entries for %d records", tbl.Len(), len(recs))
	}
}
