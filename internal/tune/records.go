// Package tune is the profile-guided autotuner: it extracts tunable kernel
// tasks from compiled modules, measures candidate configurations in-process
// against real tensors, and persists the winners as tuning records that the
// topi dispatch layer consults at kernel-launch time (topi/tuning.go). The
// same record store carries device-placement decisions from the simulated-
// cost pipeline search (internal/pipeline.SearchSchedule). TVM's core result
// is that measured-cost search beats hand-picked schedule defaults; this
// package closes that loop for the Go kernels, under the repository's
// standing invariant that every knob preserves bitwise-identical outputs.
package tune

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/topi"
)

// SchemaVersion is the tuning-record schema this build reads and writes.
// Bump it when the record or config layout changes incompatibly; loaders
// reject mismatched files with a re-tune diagnostic instead of silently
// misreading knobs.
const SchemaVersion = 1

// Record kinds.
const (
	KindKernel    = "kernel"    // per-task kernel knobs
	KindPlacement = "placement" // per-stage device assignment
)

// Config is the serialized form of topi.KernelConfig (stable JSON field
// names, independent of the in-memory struct).
type Config struct {
	ConvStrategy string `json:"conv,omitempty"`
	GemmMC       int    `json:"mc,omitempty"`
	GemmNC       int    `json:"nc,omitempty"`
	Workers      int    `json:"workers,omitempty"`
	Grain        int    `json:"grain,omitempty"`
}

// Kernel converts to the dispatch-table form.
func (c Config) Kernel() topi.KernelConfig {
	return topi.KernelConfig{
		ConvStrategy: c.ConvStrategy,
		GemmMC:       c.GemmMC,
		GemmNC:       c.GemmNC,
		Workers:      c.Workers,
		Grain:        c.Grain,
	}
}

// FromKernel converts a dispatch-table config to the serialized form.
func FromKernel(k topi.KernelConfig) Config {
	return Config{
		ConvStrategy: k.ConvStrategy,
		GemmMC:       k.GemmMC,
		GemmNC:       k.GemmNC,
		Workers:      k.Workers,
		Grain:        k.Grain,
	}
}

// Record is one line of a tuning-record file.
type Record struct {
	Schema int    `json:"schema"`
	Kind   string `json:"kind"`
	// Task is the canonical task signature: topi.TaskKey.String() for
	// kernel records, "pipeline|<name>" for placement records.
	Task   string `json:"task"`
	Config Config `json:"config,omitempty"`
	// Choice maps stage name → chosen target for placement records.
	Choice map[string]string `json:"choice,omitempty"`
	// CostNS is the measured (kernel, wall ns) or simulated (placement,
	// simulated ns) cost of the winning configuration; DefaultNS the cost of
	// the untuned default, for audit.
	CostNS    int64  `json:"cost_ns"`
	DefaultNS int64  `json:"default_ns,omitempty"`
	Model     string `json:"model,omitempty"`
}

// key is the merge identity of a record.
func (r Record) key() string { return r.Kind + "\x00" + r.Task }

// Validate checks one record's schema and shape.
func (r Record) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("tune: record schema v%d, this build reads v%d — re-run nptune to regenerate the file", r.Schema, SchemaVersion)
	}
	switch r.Kind {
	case KindKernel:
		if _, err := topi.ParseTaskKey(r.Task); err != nil {
			return fmt.Errorf("tune: kernel record: %w", err)
		}
	case KindPlacement:
		if !strings.HasPrefix(r.Task, "pipeline|") {
			return fmt.Errorf("tune: placement record task %q (want pipeline|<name>)", r.Task)
		}
	default:
		return fmt.Errorf("tune: unknown record kind %q", r.Kind)
	}
	if r.CostNS < 0 {
		return fmt.Errorf("tune: record %q has negative cost %d", r.Task, r.CostNS)
	}
	return nil
}

// WriteRecords writes records as deterministic JSON lines: sorted by
// (kind, task), one canonical JSON object per line, so re-tuning with
// identical results produces a byte-identical file (stable diffs, cacheable
// artifacts).
func WriteRecords(path string, recs []Record) error {
	sorted := append([]Record(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].key() < sorted[j].key() })
	var b strings.Builder
	for _, r := range sorted {
		if err := r.Validate(); err != nil {
			return err
		}
		line, err := json.Marshal(r)
		if err != nil {
			return err
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// LoadRecords reads a record file, validating every line. A schema-version
// mismatch anywhere in the file fails the whole load with a diagnostic
// naming both versions.
func LoadRecords(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("tune: %s:%d: %w", path, lineNo, err)
		}
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("%w (%s:%d)", err, path, lineNo)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tune: reading %s: %w", path, err)
	}
	return recs, nil
}

// Merge combines record sets: for records of the same (kind, task) the
// lower-cost entry wins; an exact cost tie breaks toward the
// lexicographically smaller serialized config, so merging is deterministic
// and order-independent. The result is sorted by (kind, task).
func Merge(sets ...[]Record) []Record {
	best := map[string]Record{}
	for _, set := range sets {
		for _, r := range set {
			cur, ok := best[r.key()]
			if !ok || recordWins(r, cur) {
				best[r.key()] = r
			}
		}
	}
	out := make([]Record, 0, len(best))
	for _, r := range best {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// recordWins reports whether a should replace b in a merge.
func recordWins(a, b Record) bool {
	if a.CostNS != b.CostNS {
		return a.CostNS < b.CostNS
	}
	return a.tieKey() < b.tieKey()
}

func (r Record) tieKey() string {
	if r.Kind == KindPlacement {
		keys := make([]string, 0, len(r.Choice))
		for s, t := range r.Choice {
			keys = append(keys, s+"="+t)
		}
		sort.Strings(keys)
		return strings.Join(keys, ",")
	}
	return r.Config.Kernel().String()
}

// BuildTable assembles the kernel records into a dispatch table for
// topi.SetTuning. Placement records are skipped (they configure the
// pipeline scheduler, not kernel dispatch).
func BuildTable(recs []Record) (*topi.TuningTable, error) {
	t := topi.NewTuningTable()
	for _, r := range recs {
		if r.Kind != KindKernel {
			continue
		}
		key, err := topi.ParseTaskKey(r.Task)
		if err != nil {
			return nil, err
		}
		t.Set(key, r.Config.Kernel())
	}
	return t, nil
}

// LoadTable loads a record file and builds its kernel dispatch table. The
// second return is the total record count (including placement records),
// for reporting.
func LoadTable(path string) (*topi.TuningTable, int, error) {
	recs, err := LoadRecords(path)
	if err != nil {
		return nil, 0, err
	}
	t, err := BuildTable(recs)
	if err != nil {
		return nil, 0, err
	}
	return t, len(recs), nil
}
