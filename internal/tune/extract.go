package tune

import (
	"sort"

	"repro/internal/relay"
	"repro/internal/topi"
)

// Task extraction: walk a compiled module and collect the (op, shape, dtype)
// signature of every tunable kernel launch. Fused primitives normalize to
// their anchor op inside the key builders, so one tuned record serves both
// the unfused TVM chain and the Neuron runtime's fused dispatch.

// tunableOps maps relay op names to their task-key family.
var tunableOps = map[string]string{
	"nn.conv2d":        "conv",
	"qnn.conv2d":       "conv",
	"qnn.conv2d_fused": "conv",
	"nn.dense":         "dense",
	"qnn.dense":        "dense",
	"qnn.dense_fused":  "dense",
}

// Tasks extracts the deduplicated, deterministically ordered tunable task
// set of a module. The module must be type-checked (any module that came
// out of runtime.Build is); calls whose types are missing or non-tensor are
// skipped rather than guessed at.
func Tasks(m *relay.Module) []topi.TaskKey {
	seen := map[topi.TaskKey]bool{}
	var out []topi.TaskKey
	m.Functions(func(name string, f *relay.Function) {
		relay.PostOrderVisit(f, func(e relay.Expr) {
			call, ok := e.(*relay.Call)
			if !ok {
				return
			}
			key, ok := taskOf(call)
			if !ok || seen[key] {
				return
			}
			seen[key] = true
			out = append(out, key)
		})
	})
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// taskOf builds the task signature of one call, if it is tunable.
func taskOf(call *relay.Call) (topi.TaskKey, bool) {
	family, ok := tunableOps[call.OpName()]
	if !ok || len(call.Args) < 2 {
		return topi.TaskKey{}, false
	}
	data, ok := tensorTypeOf(call.Args[0])
	if !ok {
		return topi.TaskKey{}, false
	}
	weight, ok := tensorTypeOf(call.Args[1])
	if !ok {
		return topi.TaskKey{}, false
	}
	switch family {
	case "conv":
		if len(data.Shape) != 4 || len(weight.Shape) != 4 {
			return topi.TaskKey{}, false
		}
		return topi.ConvTaskKeyTypes(call.OpName(), data, weight, call.Attrs), true
	case "dense":
		if len(data.Shape) != 2 || len(weight.Shape) != 2 {
			return topi.TaskKey{}, false
		}
		return topi.DenseTaskKeyTypes(call.OpName(), data, weight), true
	}
	return topi.TaskKey{}, false
}

// tensorTypeOf is the non-panicking form of relay.TensorTypeOf.
func tensorTypeOf(e relay.Expr) (*relay.TensorType, bool) {
	t := e.CheckedType()
	if t == nil {
		return nil, false
	}
	tt, ok := t.(*relay.TensorType)
	return tt, ok
}
