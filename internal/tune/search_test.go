package tune

import (
	"testing"

	"repro/internal/topi"
)

// costModel is a synthetic, deterministic measurement function with one
// global optimum, for exercising the searchers without real kernels.
func costModel(best topi.KernelConfig) MeasureFunc {
	return func(cfg topi.KernelConfig) (int64, error) {
		cost := int64(1000)
		if cfg.ConvStrategy != best.ConvStrategy {
			cost += 200
		}
		if cfg.GemmMC != best.GemmMC {
			cost += 100
		}
		if cfg.GemmNC != best.GemmNC {
			cost += 50
		}
		if cfg.Workers != best.Workers {
			cost += 25
		}
		if cfg.Grain != best.Grain {
			cost += 10
		}
		return cost, nil
	}
}

func TestGridFindsOptimum(t *testing.T) {
	s := SpaceFor(testTask(t))
	best := topi.KernelConfig{ConvStrategy: topi.ConvIm2col, GemmMC: 128, GemmNC: 16, Workers: 1, Grain: 8}
	res, err := SearchTask(s, costModel(best), SearchOptions{Budget: s.Size() + 1, Strategy: "grid"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != best {
		t.Fatalf("grid best = %s, want %s", res.Best, best)
	}
	if res.BestNS != 1000 || res.DefaultNS != 1385 {
		t.Fatalf("costs = %d / default %d", res.BestNS, res.DefaultNS)
	}
	if !res.Improved() {
		t.Fatal("Improved() = false for a strictly better config")
	}
	if res.Strategy != "grid" {
		t.Fatalf("strategy = %q", res.Strategy)
	}
}

func TestAutoPicksGridForSmallSpace(t *testing.T) {
	s := SpaceFor(denseTask(t))
	res, err := SearchTask(s, costModel(topi.KernelConfig{}), SearchOptions{Budget: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "grid" {
		t.Fatalf("auto strategy = %q for size-%d space with budget 1000", res.Strategy, s.Size())
	}
	// The default IS the optimum here: no record should be suggested.
	if res.Improved() {
		t.Fatalf("Improved() = true when default is optimal (best %s)", res.Best)
	}
}

func TestRandomSearchDeterministicAndBudgeted(t *testing.T) {
	s := SpaceFor(testTask(t))
	best := topi.KernelConfig{ConvStrategy: topi.ConvDirect, GemmMC: 32, GemmNC: 4, Workers: 0, Grain: 2}
	opt := SearchOptions{Budget: 12, Strategy: "random", Seed: 7}
	r1, err := SearchTask(s, costModel(best), opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SearchTask(s, costModel(best), opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Best != r2.Best || r1.BestNS != r2.BestNS || r1.Evaluated != r2.Evaluated {
		t.Fatalf("random search not deterministic: %+v vs %+v", r1, r2)
	}
	if r1.Evaluated > 12 {
		t.Fatalf("evaluated %d candidates, budget 12", r1.Evaluated)
	}
	if r1.BestNS > r1.DefaultNS {
		t.Fatalf("search regressed below the default: %d > %d", r1.BestNS, r1.DefaultNS)
	}
}

func TestHillClimbReachesOptimum(t *testing.T) {
	// On a separable cost surface with per-axis gradients (no plateaus),
	// greedy axis-neighbor climbing always has an improving step until the
	// optimum, so with enough budget the exact optimum is guaranteed.
	s := SpaceFor(testTask(t))
	bestIdx := [5]int{1, 2, 1, 1, 2}
	weights := [5]int64{170, 130, 70, 40, 20}
	axisPos := func(cfg topi.KernelConfig) [5]int {
		find := func(vals []int, v int) int {
			for i, x := range vals {
				if x == v {
					return i
				}
			}
			return -1
		}
		var p [5]int
		for i, st := range s.Strategies {
			if st == cfg.ConvStrategy {
				p[0] = i
			}
		}
		p[1] = find(s.MC, cfg.GemmMC)
		p[2] = find(s.NC, cfg.GemmNC)
		p[3] = find(s.Workers, cfg.Workers)
		p[4] = find(s.Grain, cfg.Grain)
		return p
	}
	measure := func(cfg topi.KernelConfig) (int64, error) {
		cost := int64(1000)
		p := axisPos(cfg)
		for i := range p {
			d := p[i] - bestIdx[i]
			if d < 0 {
				d = -d
			}
			cost += weights[i] * int64(d)
		}
		return cost, nil
	}
	res, err := SearchTask(s, measure, SearchOptions{Budget: s.Size(), Strategy: "random"})
	if err != nil {
		t.Fatal(err)
	}
	want := s.At(bestIdx)
	if res.Best != want {
		t.Fatalf("hill climb best = %s (%d ns), want %s", res.Best, res.BestNS, want)
	}
	if res.BestNS != 1000 {
		t.Fatalf("optimum cost = %d, want 1000", res.BestNS)
	}
}
