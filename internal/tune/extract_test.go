package tune

import (
	"testing"

	"repro/internal/relay"
	"repro/internal/tensor"
	"repro/internal/topi"
)

// buildTuneModule constructs conv -> relu -> conv(same shape) -> dense:
// three tunable launches, two distinct tasks plus one dense task.
func buildTuneModule(t *testing.T) *relay.Module {
	t.Helper()
	data := relay.NewVar("data", relay.TType(tensor.Float32, 1, 8, 8, 3))
	w1 := relay.Const(tensor.New(tensor.Float32, tensor.Shape{3, 3, 3, 3}))
	conv1 := relay.NewCall(relay.OpConv2D, []relay.Expr{data, w1},
		relay.Attrs{"strides": []int{1, 1}, "padding": []int{1, 1}})
	act := relay.NewCall(relay.OpReLU, []relay.Expr{conv1}, nil)
	w2 := relay.Const(tensor.New(tensor.Float32, tensor.Shape{3, 3, 3, 3}))
	conv2 := relay.NewCall(relay.OpConv2D, []relay.Expr{act, w2},
		relay.Attrs{"strides": []int{1, 1}, "padding": []int{1, 1}})
	flat := relay.NewCall(relay.OpReshape, []relay.Expr{conv2}, relay.Attrs{"newshape": []int{1, 192}})
	wd := relay.Const(tensor.New(tensor.Float32, tensor.Shape{10, 192}))
	dense := relay.NewCall(relay.OpDense, []relay.Expr{flat, wd}, nil)
	fn := relay.NewFunc([]*relay.Var{data}, dense)
	if _, err := relay.InferTypes(fn); err != nil {
		t.Fatal(err)
	}
	return relay.NewModule(fn)
}

func TestTasksExtractionDedupesAndSorts(t *testing.T) {
	m := buildTuneModule(t)
	tasks := Tasks(m)
	if len(tasks) != 2 {
		t.Fatalf("extracted %d tasks, want 2 (deduped conv + dense): %v", len(tasks), tasks)
	}
	for i := 1; i < len(tasks); i++ {
		if tasks[i-1].String() >= tasks[i].String() {
			t.Fatalf("tasks not sorted: %s before %s", tasks[i-1], tasks[i])
		}
	}
	var conv, dense *topi.TaskKey
	for i := range tasks {
		switch tasks[i].Op {
		case "nn.conv2d":
			conv = &tasks[i]
		case "nn.dense":
			dense = &tasks[i]
		}
	}
	if conv == nil || dense == nil {
		t.Fatalf("tasks = %v, want one conv and one dense", tasks)
	}
	if conv.H != 8 || conv.W != 8 || conv.C != 3 || conv.OC != 3 || conv.KH != 3 || conv.PadT != 1 {
		t.Errorf("conv task = %s", conv)
	}
	if dense.N != 1 || dense.C != 192 || dense.OC != 10 {
		t.Errorf("dense task = %s", dense)
	}

	// Every extracted task must survive the canonical string round-trip —
	// that string is the record-file identity.
	for _, task := range tasks {
		back, err := topi.ParseTaskKey(task.String())
		if err != nil {
			t.Fatalf("round-trip %s: %v", task, err)
		}
		if back != task {
			t.Fatalf("round-trip %s -> %s", task, back)
		}
	}
}

func TestTasksSkipsUntypedCalls(t *testing.T) {
	// No InferTypes run: vars and constants carry construction-time types,
	// but a call result does not — a conv fed by an un-inferred call must be
	// skipped, not panicked on or guessed at.
	data := relay.NewVar("data", relay.TType(tensor.Float32, 1, 8, 8, 3))
	w1 := relay.Const(tensor.New(tensor.Float32, tensor.Shape{3, 3, 3, 3}))
	conv1 := relay.NewCall(relay.OpConv2D, []relay.Expr{data, w1},
		relay.Attrs{"strides": []int{1, 1}, "padding": []int{1, 1}})
	w2 := relay.Const(tensor.New(tensor.Float32, tensor.Shape{5, 3, 3, 3}))
	conv2 := relay.NewCall(relay.OpConv2D, []relay.Expr{conv1, w2},
		relay.Attrs{"strides": []int{1, 1}, "padding": []int{1, 1}})
	m := relay.NewModule(relay.NewFunc([]*relay.Var{data}, conv2))
	got := Tasks(m)
	if len(got) != 1 || got[0].OC != 3 {
		t.Fatalf("tasks from partially typed module = %v, want just the var-fed conv", got)
	}
}
