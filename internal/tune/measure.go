package tune

import (
	"bytes"
	"fmt"
	"math"
	"time"

	"repro/internal/relay"
	"repro/internal/tensor"
	"repro/internal/topi"
)

// Measurement harness: run one task's kernel in-process against real
// tensors synthesized from the task signature, with a candidate config
// temporarily installed in the dispatch table. Wall time is min-of-N over
// iteration loops sized once per task (from the default config), so every
// candidate amortizes timer overhead identically.

// Measurer holds measurement policy shared across tasks.
type Measurer struct {
	// Warmup runs before timing (default 1); Reps timed repetitions, of
	// which the minimum wins (default 3).
	Warmup, Reps int
	// MinSampleNS is the target duration of one timed repetition; the
	// per-task iteration count is sized to reach it (default 200µs).
	MinSampleNS int64
	// Verify re-checks every candidate's output against the default
	// config's, enforcing the bitwise-identity invariant at tuning time.
	Verify bool
}

func (m *Measurer) warmup() int {
	if m.Warmup <= 0 {
		return 1
	}
	return m.Warmup
}

func (m *Measurer) reps() int {
	if m.Reps <= 0 {
		return 3
	}
	return m.Reps
}

func (m *Measurer) minSample() int64 {
	if m.MinSampleNS <= 0 {
		return 200_000
	}
	return m.MinSampleNS
}

// kernelBench is one task's prepared measurement state.
type kernelBench struct {
	m     *Measurer
	task  topi.TaskKey
	op    string
	args  []*tensor.Tensor
	attrs relay.Attrs
	out   *relay.TensorType
	dst   *tensor.Tensor
	iters int
	ref   *tensor.Tensor // default-config output (Verify)
}

// NewKernelBench synthesizes tensors and attributes for a task and
// calibrates the iteration count under the default config.
func (m *Measurer) NewKernelBench(task topi.TaskKey) (*kernelBench, error) {
	b := &kernelBench{m: m, task: task}
	if err := b.synthesize(); err != nil {
		return nil, err
	}
	// Calibrate: one untimed run (also pack-and-cache the weight panels),
	// then size the iteration loop so a repetition spans minSample.
	if err := b.runOnce(); err != nil {
		return nil, err
	}
	start := time.Now()
	if err := b.runOnce(); err != nil {
		return nil, err
	}
	oneNS := time.Since(start).Nanoseconds()
	if oneNS < 1 {
		oneNS = 1
	}
	b.iters = int(m.minSample() / oneNS)
	if b.iters < 1 {
		b.iters = 1
	}
	if b.iters > 10_000 {
		b.iters = 10_000
	}
	if m.Verify {
		b.ref = b.dst.Clone()
	}
	return b, nil
}

// synthesize builds deterministic input tensors and attrs from the task
// signature. Quantized tasks get representative nonzero zero points so the
// (raw − zp) paths do real work.
func (b *kernelBench) synthesize() error {
	task := b.task
	dt, err := tensor.ParseDType(task.DType)
	if err != nil {
		return fmt.Errorf("tune: task %s: %w", task, err)
	}
	rng := tensor.NewRNG(taskSeed(task, 0x6d65617375726572))
	b.op = task.Op
	b.attrs = relay.Attrs{}

	var zpIn, zpK int
	switch dt {
	case tensor.UInt8:
		zpIn, zpK = 128, 119
	case tensor.Int8:
		zpIn, zpK = -1, 3
	}

	dense := task.KH == 1 && task.KW == 1 && task.H == 1 && task.W == 1 &&
		(task.Op == "nn.dense" || task.Op == "qnn.dense")
	if dense {
		data := tensor.New(dt, tensor.Shape{task.N, task.C})
		weight := tensor.New(dt, tensor.Shape{task.OC, task.ICG})
		fill(data, rng)
		fill(weight, rng)
		b.args = []*tensor.Tensor{data, weight}
		outDT := tensor.Float32
		if dt.IsQuantized() {
			outDT = tensor.Int32
			b.attrs["input_zero_point"] = zpIn
			b.attrs["kernel_zero_point"] = zpK
		}
		b.out = &relay.TensorType{Shape: tensor.Shape{task.N, task.OC}, DType: outDT}
	} else {
		data := tensor.New(dt, tensor.Shape{task.N, task.H, task.W, task.C})
		weight := tensor.New(dt, tensor.Shape{task.OC, task.KH, task.KW, task.ICG})
		fill(data, rng)
		fill(weight, rng)
		b.args = []*tensor.Tensor{data, weight}
		b.attrs["strides"] = []int{task.SH, task.SW}
		b.attrs["dilation"] = []int{task.DH, task.DW}
		b.attrs["padding"] = []int{task.PadT, task.PadL, task.PadB, task.PadR}
		b.attrs["groups"] = task.Groups
		oh := convOut(task.H, task.KH, task.SH, task.DH, task.PadT, task.PadB)
		ow := convOut(task.W, task.KW, task.SW, task.DW, task.PadL, task.PadR)
		if oh <= 0 || ow <= 0 {
			return fmt.Errorf("tune: task %s has empty output %dx%d", task, oh, ow)
		}
		outDT := tensor.Float32
		if dt.IsQuantized() {
			outDT = tensor.Int32
			b.attrs["input_zero_point"] = zpIn
			b.attrs["kernel_zero_point"] = zpK
		}
		b.out = &relay.TensorType{Shape: tensor.Shape{task.N, oh, ow, task.OC}, DType: outDT}
	}
	b.dst = tensor.New(b.out.DType, b.out.Shape.Clone())
	return nil
}

// convOut is the standard convolution output-extent arithmetic.
func convOut(in, k, stride, dilation, padA, padB int) int {
	eff := (k-1)*dilation + 1
	return (in+padA+padB-eff)/stride + 1
}

// fill writes deterministic pseudo-random values appropriate to the dtype.
func fill(t *tensor.Tensor, rng *tensor.RNG) {
	switch t.DType {
	case tensor.Float32:
		t.FillUniform(rng, -1, 1)
	case tensor.UInt8:
		for i := range t.U8() {
			t.U8()[i] = uint8(rng.Intn(256))
		}
	case tensor.Int8:
		for i := range t.I8() {
			t.I8()[i] = int8(rng.Intn(256) - 128)
		}
	case tensor.Int32:
		for i := range t.I32() {
			t.I32()[i] = int32(rng.Intn(256) - 128)
		}
	default:
		t.FillUniform(rng, -1, 1)
	}
}

func (b *kernelBench) runOnce() error {
	return topi.RunInto(b.op, b.args, b.attrs, b.out, b.dst)
}

// Measure times the task under one candidate config: the config is
// installed as a single-entry dispatch table for the duration, the kernel
// warms up, then the minimum of Reps timed iteration loops is returned (in
// ns per kernel launch).
func (b *kernelBench) Measure(cfg topi.KernelConfig) (int64, error) {
	tbl := topi.NewTuningTable()
	tbl.Set(b.task, cfg)
	prev := topi.SetTuning(tbl)
	defer topi.SetTuning(prev)

	for i := 0; i < b.m.warmup(); i++ {
		if err := b.runOnce(); err != nil {
			return 0, err
		}
	}
	if b.ref != nil {
		if err := b.verifyAgainstRef(cfg); err != nil {
			return 0, err
		}
	}
	best := int64(-1)
	for r := 0; r < b.m.reps(); r++ {
		start := time.Now()
		for i := 0; i < b.iters; i++ {
			if err := b.runOnce(); err != nil {
				return 0, err
			}
		}
		ns := time.Since(start).Nanoseconds() / int64(b.iters)
		if best < 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// verifyAgainstRef enforces the bitwise-identity invariant: the candidate's
// output must equal the default config's byte for byte.
func (b *kernelBench) verifyAgainstRef(cfg topi.KernelConfig) error {
	if sameTensorData(b.dst, b.ref) {
		return nil
	}
	return fmt.Errorf("tune: config %s changes the output of %s — bitwise-identity invariant violated", cfg, b.task)
}

// sameTensorData compares two same-typed tensors bit for bit (float32
// elements are compared as bit patterns, so -0 != +0 and NaNs compare by
// payload — the invariant really is "identical bytes").
func sameTensorData(a, c *tensor.Tensor) bool {
	if a.DType != c.DType || !a.Shape.Equal(c.Shape) {
		return false
	}
	switch a.DType {
	case tensor.Float32:
		av, cv := a.F32(), c.F32()
		for i := range av {
			if math.Float32bits(av[i]) != math.Float32bits(cv[i]) {
				return false
			}
		}
		return true
	case tensor.Int32:
		av, cv := a.I32(), c.I32()
		for i := range av {
			if av[i] != cv[i] {
				return false
			}
		}
		return true
	case tensor.Int8:
		return bytes.Equal(i8Bytes(a.I8()), i8Bytes(c.I8()))
	case tensor.UInt8:
		return bytes.Equal(a.U8(), c.U8())
	}
	return false
}

// i8Bytes views an int8 slice as bytes for comparison.
func i8Bytes(s []int8) []byte {
	b := make([]byte, len(s))
	for i, v := range s {
		b[i] = byte(v)
	}
	return b
}
