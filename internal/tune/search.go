package tune

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/topi"
)

// Search strategies over a ConfigSpace. Small spaces are enumerated
// exhaustively; large ones are covered by deterministic random sampling
// followed by greedy hill-climbing from the best sample, with an early-stop
// measurement budget shared by both phases. All randomness flows from a
// seed derived from the task signature, so re-tuning reproduces the same
// trajectory bit for bit.

// SearchOptions tunes one task's search.
type SearchOptions struct {
	// Budget caps candidate measurements per task (default 48). The default
	// config is always measured and does not count against the budget.
	Budget int
	// Seed perturbs the per-task RNG (default 0: task-signature hash only).
	Seed uint64
	// Strategy forces a searcher: "grid", "random", or "" / "auto" (grid
	// when the space fits the budget).
	Strategy string
}

func (o SearchOptions) budget() int {
	if o.Budget <= 0 {
		return 48
	}
	return o.Budget
}

// MeasureFunc measures one candidate config for the task under search,
// returning its cost in nanoseconds.
type MeasureFunc func(cfg topi.KernelConfig) (int64, error)

// TaskResult is the outcome of one task's search.
type TaskResult struct {
	Task      topi.TaskKey
	Best      topi.KernelConfig
	BestNS    int64
	DefaultNS int64
	Evaluated int
	Strategy  string
}

// Improved reports whether the search found a non-default config measuring
// strictly faster than the default.
func (r TaskResult) Improved() bool {
	return !r.Best.IsDefault() && r.BestNS < r.DefaultNS
}

// SearchTask searches the task's config space with the given measurement
// function. The returned Best is the default config unless some candidate
// measured strictly faster.
func SearchTask(space ConfigSpace, measure MeasureFunc, opt SearchOptions) (TaskResult, error) {
	res := TaskResult{Task: space.Task}
	defNS, err := measure(topi.KernelConfig{})
	if err != nil {
		return res, fmt.Errorf("tune: measuring default for %s: %w", space.Task, err)
	}
	res.DefaultNS = defNS
	res.BestNS = defNS

	strategy := opt.Strategy
	if strategy == "" || strategy == "auto" {
		if space.Size() <= opt.budget() {
			strategy = "grid"
		} else {
			strategy = "random"
		}
	}
	res.Strategy = strategy

	eval := func(idx [5]int) (int64, error) {
		cfg := space.At(idx)
		if cfg.IsDefault() {
			return defNS, nil // already measured
		}
		ns, err := measure(cfg)
		if err != nil {
			return 0, fmt.Errorf("tune: measuring %s for %s: %w", cfg, space.Task, err)
		}
		res.Evaluated++
		if ns < res.BestNS {
			res.BestNS, res.Best = ns, cfg
		}
		return ns, nil
	}

	switch strategy {
	case "grid":
		for flat := 0; flat < space.Size(); flat++ {
			if res.Evaluated >= opt.budget() {
				break
			}
			if _, err := eval(space.point(flat)); err != nil {
				return res, err
			}
		}
	case "random":
		if err := searchRandomHillClimb(&space, eval, &res, opt); err != nil {
			return res, err
		}
	default:
		return res, fmt.Errorf("tune: unknown search strategy %q", strategy)
	}
	return res, nil
}

// searchRandomHillClimb samples the space uniformly for half the budget,
// then greedily walks axis-neighbor steps from the best point until no
// neighbor improves or the budget runs out.
func searchRandomHillClimb(space *ConfigSpace, eval func([5]int) (int64, error), res *TaskResult, opt SearchOptions) error {
	rng := tensor.NewRNG(taskSeed(space.Task, opt.Seed))
	ax := space.axes()
	visited := map[[5]int]int64{}
	bestIdx := [5]int{}
	bestNS := res.DefaultNS
	visited[bestIdx] = bestNS

	try := func(idx [5]int) (int64, error) {
		if ns, ok := visited[idx]; ok {
			return ns, nil
		}
		ns, err := eval(idx)
		if err != nil {
			return 0, err
		}
		visited[idx] = ns
		if ns < bestNS {
			bestNS, bestIdx = ns, idx
		}
		return ns, nil
	}

	sampleBudget := opt.budget() / 2
	for res.Evaluated < sampleBudget {
		var idx [5]int
		for i, n := range ax {
			idx[i] = rng.Intn(n)
		}
		if _, ok := visited[idx]; ok {
			// Resampling a visited point wastes no budget but must not spin
			// forever on tiny spaces.
			if len(visited) >= space.Size() {
				break
			}
			continue
		}
		if _, err := try(idx); err != nil {
			return err
		}
	}

	// Greedy hill climb: evaluate all ±1 axis neighbors of the incumbent,
	// move to the best improving one, repeat.
	for res.Evaluated < opt.budget() {
		cur := bestIdx
		curNS := bestNS
		for i := 0; i < 5 && res.Evaluated < opt.budget(); i++ {
			for _, d := range [2]int{-1, 1} {
				n := cur
				n[i] += d
				if n[i] < 0 || n[i] >= ax[i] {
					continue
				}
				if _, err := try(n); err != nil {
					return err
				}
				if res.Evaluated >= opt.budget() {
					break
				}
			}
		}
		if bestNS >= curNS {
			break // no neighbor improved: local optimum
		}
	}
	return nil
}

// taskSeed derives a deterministic RNG seed from the task signature (FNV-1a
// over the canonical string) and the user seed.
func taskSeed(task topi.TaskKey, seed uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range []byte(task.String()) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h ^ seed
}
