package tune

import (
	"fmt"
	"io"

	"repro/internal/relay"
	"repro/internal/topi"
)

// Options configures one tuning run.
type Options struct {
	Search  SearchOptions
	Measure Measurer
	// Progress, when non-nil, receives one line per task as it finishes.
	Progress io.Writer
}

// TuneModule extracts the tunable tasks of one module and searches each
// task's config space, returning the records worth persisting (only tasks
// where a non-default config measured strictly faster) plus every task's
// full search result for reporting.
func TuneModule(model string, m *relay.Module, opt Options) ([]Record, []TaskResult, error) {
	var ierr error
	m.Functions(func(fname string, f *relay.Function) {
		if ierr != nil {
			return
		}
		if _, err := relay.InferTypes(f); err != nil {
			ierr = fmt.Errorf("tune: inferring types of %s.%s: %w", model, fname, err)
		}
	})
	if ierr != nil {
		return nil, nil, ierr
	}
	return TuneTasks(model, Tasks(m), opt)
}

// TuneTasks searches the config space of each task with the in-process
// measurement harness. Tuning temporarily installs per-candidate dispatch
// tables (topi.SetTuning), so it must not run concurrently with inference.
func TuneTasks(model string, tasks []topi.TaskKey, opt Options) ([]Record, []TaskResult, error) {
	var recs []Record
	var results []TaskResult
	for _, task := range tasks {
		bench, err := opt.Measure.NewKernelBench(task)
		if err != nil {
			return recs, results, fmt.Errorf("tune: preparing %s: %w", task, err)
		}
		res, err := SearchTask(SpaceFor(task), bench.Measure, opt.Search)
		if err != nil {
			return recs, results, err
		}
		results = append(results, res)
		if opt.Progress != nil {
			status := "default kept"
			if res.Improved() {
				status = fmt.Sprintf("%s (%.2fx)", res.Best, float64(res.DefaultNS)/float64(res.BestNS))
			}
			fmt.Fprintf(opt.Progress, "  %-60s %7d ns  %3d cands  %-6s %s\n",
				task, res.BestNS, res.Evaluated, res.Strategy, status)
		}
		if res.Improved() {
			recs = append(recs, Record{
				Schema:    SchemaVersion,
				Kind:      KindKernel,
				Task:      task.String(),
				Config:    FromKernel(res.Best),
				CostNS:    res.BestNS,
				DefaultNS: res.DefaultNS,
				Model:     model,
			})
		}
	}
	return recs, results, nil
}

// Install builds the kernel dispatch table from records and makes it the
// process-wide active table. It returns the previous table (nil if none).
func Install(recs []Record) (*topi.TuningTable, error) {
	t, err := BuildTable(recs)
	if err != nil {
		return nil, err
	}
	topi.SetTuning(t)
	return t, nil
}

// LoadAndInstall loads a record file and installs its kernel table,
// returning the installed table and total record count. Callers that want
// graceful fallback treat a missing file as "run untuned".
func LoadAndInstall(path string) (*topi.TuningTable, int, error) {
	t, n, err := LoadTable(path)
	if err != nil {
		return nil, 0, err
	}
	topi.SetTuning(t)
	return t, n, nil
}
