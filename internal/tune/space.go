package tune

import (
	"repro/internal/parallel"
	"repro/internal/topi"
)

// ConfigSpace is the typed knob space of one task: one axis per knob, a
// config per point of the cross product. Every axis includes the default
// (zero) value, so the untuned config is always point 0 and the search can
// never regress below "no record at all" — a candidate must measure faster
// than the default to be recorded.
//
// Knob choice is constrained by the bitwise-identity invariant: MC/NC
// blocking, worker caps and grains only re-partition disjoint output ranges,
// and the conv strategies are pinned bit-identical to each other. KC (the
// reduction dimension) is deliberately NOT an axis — splitting k would
// reorder float accumulation.
type ConfigSpace struct {
	Task topi.TaskKey
	// Strategies is the conv-strategy axis ({""} for dense tasks).
	Strategies []string
	// MC, NC, Workers, Grain are the integer knob axes; each starts with 0
	// (the default).
	MC, NC, Workers, Grain []int
}

// axes returns the axis lengths in enumeration order.
func (s *ConfigSpace) axes() [5]int {
	return [5]int{len(s.Strategies), len(s.MC), len(s.NC), len(s.Workers), len(s.Grain)}
}

// Size is the number of points in the space.
func (s *ConfigSpace) Size() int {
	n := 1
	for _, a := range s.axes() {
		n *= a
	}
	return n
}

// At materializes the config at the given axis indices.
func (s *ConfigSpace) At(idx [5]int) topi.KernelConfig {
	return topi.KernelConfig{
		ConvStrategy: s.Strategies[idx[0]],
		GemmMC:       s.MC[idx[1]],
		GemmNC:       s.NC[idx[2]],
		Workers:      s.Workers[idx[3]],
		Grain:        s.Grain[idx[4]],
	}
}

// point converts a flat enumeration index to axis indices (row-major, the
// last axis fastest).
func (s *ConfigSpace) point(flat int) [5]int {
	ax := s.axes()
	var idx [5]int
	for i := 4; i >= 0; i-- {
		idx[i] = flat % ax[i]
		flat /= ax[i]
	}
	return idx
}

// SpaceFor declares the knob space of a task. Conv tasks get the strategy
// axis plus the GEMM blocking axes (the im2col path runs the GEMM); dense
// tasks get blocking and parallelism only. Axis values are small curated
// sets — the measured space stays a few hundred points at most, and the
// search samples it under budget anyway.
func SpaceFor(task topi.TaskKey) ConfigSpace {
	maxW := parallel.MaxWorkers()
	workers := []int{0, 1}
	if maxW >= 4 {
		workers = append(workers, 2, maxW/2)
	} else if maxW >= 2 {
		workers = append(workers, 2)
	}
	s := ConfigSpace{
		Task:    task,
		MC:      []int{0, 32, 128},
		NC:      []int{0, 4, 16},
		Workers: workers,
	}
	if task.KH > 1 || task.KW > 1 || task.H > 1 || task.W > 1 {
		// Convolution family.
		s.Strategies = []string{topi.ConvAuto, topi.ConvIm2col, topi.ConvDirect}
		s.Grain = []int{0, 2, 8}
	} else {
		// Dense family: no strategy knob, no row-loop grain (the GEMM's
		// grain is the NC axis).
		s.Strategies = []string{topi.ConvAuto}
		s.Grain = []int{0}
	}
	return s
}
