// Package core is the top-level facade over the stack — the programmatic
// equivalent of the paper's end-to-end flow: import a model from any
// supported framework, partition it for NeuroPilot, build an executable
// library, and run or export it. The cmd/ tools and examples/ programs are
// thin wrappers over this package.
package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/frontend/darknet"
	"repro/internal/frontend/keras"
	"repro/internal/frontend/onnx"
	"repro/internal/frontend/tflite"
	"repro/internal/frontend/torchscript"
	"repro/internal/relay"
	"repro/internal/runtime"
	"repro/internal/soc"
	"repro/internal/tensor"
)

// Framework identifies a source model format.
type Framework string

// Supported frameworks (the paper's front-end breadth: TensorFlow via
// Keras, PyTorch, TFLite, Darknet, and ONNX covering the MXNet path).
const (
	FrameworkKeras   Framework = "keras"
	FrameworkPyTorch Framework = "pytorch"
	FrameworkTFLite  Framework = "tflite"
	FrameworkDarknet Framework = "darknet"
	FrameworkONNX    Framework = "onnx"
)

// Import parses a serialized model into relay. The payload layout depends on
// the framework:
//
//	keras:   model JSON + separate weight blob
//	pytorch: trace JSON + separate state-dict blob
//	tflite:  single binary model
//	darknet: .cfg text + separate .weights binary
//	onnx:    single JSON model (initializers embedded)
func Import(fw Framework, model []byte, weights []byte) (*relay.Module, error) {
	switch fw {
	case FrameworkKeras:
		ws, err := keras.LoadWeights(bytes.NewReader(weights))
		if err != nil {
			return nil, fmt.Errorf("core: keras weights: %w", err)
		}
		return keras.FromKeras(model, ws)
	case FrameworkPyTorch:
		g, err := torchscript.UnmarshalGraph(model)
		if err != nil {
			return nil, err
		}
		sd, err := torchscript.LoadStateDict(bytes.NewReader(weights))
		if err != nil {
			return nil, fmt.Errorf("core: torch state dict: %w", err)
		}
		return torchscript.FromTorch(g, sd)
	case FrameworkTFLite:
		return tflite.FromTFLite(model)
	case FrameworkDarknet:
		return darknet.FromDarknet(string(model), bytes.NewReader(weights))
	case FrameworkONNX:
		return onnx.FromONNX(model)
	}
	return nil, fmt.Errorf("core: unknown framework %q", fw)
}

// DetectFramework sniffs a model payload. Darknet and the two-file formats
// cannot always be distinguished by content alone; callers with explicit
// knowledge should pass the framework directly.
func DetectFramework(model []byte) (Framework, error) {
	if bytes.HasPrefix(model, []byte("TFLM1\x00")) {
		return FrameworkTFLite, nil
	}
	trimmed := bytes.TrimLeft(model, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(model, &probe); err == nil {
			if _, ok := probe["class_name"]; ok {
				return FrameworkKeras, nil
			}
			if _, ok := probe["producer"]; ok {
				return FrameworkPyTorch, nil
			}
			if _, ok := probe["graph"]; ok {
				return FrameworkONNX, nil
			}
		}
	}
	if bytes.HasPrefix(trimmed, []byte("[net]")) || bytes.HasPrefix(trimmed, []byte("[network]")) {
		return FrameworkDarknet, nil
	}
	return "", fmt.Errorf("core: cannot detect model format")
}

// Compile builds a relay module into an executable library (the paper's
// relay.build + partition_for_nir + external codegen flow).
func Compile(m *relay.Module, opts runtime.BuildOptions) (*runtime.Lib, error) {
	return runtime.Build(m, opts)
}

// Export writes the compiled library as a deployable artifact (Listing 6's
// lib.export_library).
func Export(lib *runtime.Lib, w io.Writer) error { return lib.ExportLibrary(w) }

// Load reads an artifact back on the "device side".
func Load(r io.Reader, sc *soc.SoC) (*runtime.Lib, error) { return runtime.LoadLibrary(r, sc) }

// RunOnce is a convenience: bind the single input, run, and return outputs
// plus the simulated cost profile.
func RunOnce(lib *runtime.Lib, input *tensor.Tensor) ([]*tensor.Tensor, *soc.Profile, error) {
	gm := runtime.NewGraphModule(lib)
	names := gm.InputNames()
	if len(names) != 1 {
		return nil, nil, fmt.Errorf("core: RunOnce requires a single-input model, have %d inputs", len(names))
	}
	gm.SetInput(names[0], input)
	if err := gm.Run(); err != nil {
		return nil, nil, err
	}
	outs := make([]*tensor.Tensor, gm.NumOutputs())
	for i := range outs {
		outs[i] = gm.MustOutput(i)
	}
	return outs, gm.LastProfile(), nil
}
