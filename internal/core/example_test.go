package core_test

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/frontend/keras"
	"repro/internal/runtime"
	"repro/internal/soc"
	"repro/internal/tensor"
)

// Example demonstrates the whole paper flow through the facade: author a
// Keras model, import it, partition for NeuroPilot, run on the simulated
// Dimensity 800, and round-trip the deployable artifact.
func Example() {
	model := keras.NewSequential("demo", 7).
		Input(16, 16, 3).
		Conv2D(8, 3, 1, "same", "relu").
		GlobalAveragePooling2D().
		Dense(4, "softmax")
	js, _ := model.ToJSON()
	ws, _ := model.Weights()
	var weights bytes.Buffer
	_ = ws.SaveWeights(&weights)

	mod, err := core.Import(core.FrameworkKeras, js, weights.Bytes())
	if err != nil {
		fmt.Println("import:", err)
		return
	}
	lib, err := core.Compile(mod, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
	if err != nil {
		fmt.Println("compile:", err)
		return
	}
	fmt.Printf("NeuroPilot regions: %d\n", len(lib.Module.ExternalFuncs("nir")))

	in := tensor.New(tensor.Float32, tensor.Shape{1, 16, 16, 3})
	in.FillUniform(tensor.NewRNG(1), 0, 1)
	outs, prof, err := core.RunOnce(lib, in)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Printf("outputs: %d, probabilities sum to 1: %v\n",
		len(outs), probsSumToOne(outs[0]))
	fmt.Printf("used the APU: %v\n", prof.Launches[soc.KindAPU] > 0)

	var artifact bytes.Buffer
	_ = core.Export(lib, &artifact)
	if _, err := core.Load(&artifact, nil); err == nil {
		fmt.Println("artifact round trip: ok")
	}
	// Output:
	// NeuroPilot regions: 1
	// outputs: 1, probabilities sum to 1: true
	// used the APU: false
	// artifact round trip: ok
}

func probsSumToOne(t *tensor.Tensor) bool {
	s := 0.0
	for i := 0; i < t.Elems(); i++ {
		s += t.GetF(i)
	}
	return s > 0.999 && s < 1.001
}
