package core

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/frontend/darknet"
	"repro/internal/frontend/keras"
	"repro/internal/frontend/onnx"
	"repro/internal/frontend/tflite"
	"repro/internal/frontend/torchscript"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

func darknetSynth(cfg string, w io.Writer) error {
	return darknet.SynthesizeWeights(cfg, 7, w)
}

func onnxMarshal(mp *onnx.ModelProto) ([]byte, error) { return onnx.Marshal(mp) }

func onnxModel(t *testing.T) *onnx.ModelProto {
	t.Helper()
	wt := tensor.New(tensor.Float32, tensor.Shape{4, 3, 3, 3})
	wt.FillUniform(tensor.NewRNG(1), -0.3, 0.3)
	ip, err := onnx.EncodeInitializer("w", wt)
	if err != nil {
		t.Fatal(err)
	}
	return &onnx.ModelProto{
		IRVersion: 7,
		Graph: onnx.GraphProto{
			Input: []onnx.ValueInfoProto{
				{Name: "data", Shape: []int{1, 3, 8, 8}, DType: "float32"},
				{Name: "w"},
			},
			Node: []onnx.NodeProto{
				{OpType: "Conv", Input: []string{"data", "w"}, Output: []string{"c"},
					Attribute: map[string]interface{}{"pads": []interface{}{1.0, 1.0, 1.0, 1.0}}},
				{OpType: "Relu", Input: []string{"c"}, Output: []string{"y"}},
			},
			Output:      []string{"y"},
			Initializer: []onnx.InitializerProto{ip},
		},
	}
}

func kerasArtifacts(t *testing.T) ([]byte, []byte) {
	t.Helper()
	s := keras.NewSequential("m", 1).
		Input(16, 16, 3).
		Conv2D(8, 3, 1, "same", "relu").
		GlobalAveragePooling2D().
		Dense(4, "softmax")
	js, err := s.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	ws, _ := s.Weights()
	var buf bytes.Buffer
	if err := ws.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	return js, buf.Bytes()
}

func TestImportKerasAndRun(t *testing.T) {
	js, ws := kerasArtifacts(t)
	m, err := Import(FrameworkKeras, js, ws)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := Compile(m, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.Float32, tensor.Shape{1, 16, 16, 3})
	in.FillUniform(tensor.NewRNG(1), 0, 1)
	outs, prof, err := RunOnce(lib, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || !outs[0].Shape.Equal(tensor.Shape{1, 4}) {
		t.Fatalf("outputs %v", outs)
	}
	if prof.Total() <= 0 {
		t.Error("no cost")
	}
}

func TestDetectFramework(t *testing.T) {
	js, _ := kerasArtifacts(t)
	if fw, err := DetectFramework(js); err != nil || fw != FrameworkKeras {
		t.Errorf("keras detection: %v %v", fw, err)
	}
	b := tflite.NewBuilder(1)
	in := b.Input("x", []int{1, 8, 8, 3}, nil)
	b.Output(b.Conv2D(in, 4, 3, 1, tflite.PaddingSame, tflite.ActNone))
	blob, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if fw, err := DetectFramework(blob); err != nil || fw != FrameworkTFLite {
		t.Errorf("tflite detection: %v %v", fw, err)
	}
	tr := torchscript.NewTracer(1)
	x := tr.Input(1, 3, 8, 8)
	tr.Output(tr.ReLU(x))
	g, _, _ := tr.Trace()
	tj, _ := torchscript.MarshalGraph(g)
	if fw, err := DetectFramework(tj); err != nil || fw != FrameworkPyTorch {
		t.Errorf("torch detection: %v %v", fw, err)
	}
	if fw, err := DetectFramework([]byte("[net]\nwidth=8\n")); err != nil || fw != FrameworkDarknet {
		t.Errorf("darknet detection: %v %v", fw, err)
	}
	if _, err := DetectFramework([]byte("\x00\x01garbage")); err == nil {
		t.Error("garbage detected as something")
	}
}

func TestExportLoadThroughFacade(t *testing.T) {
	js, ws := kerasArtifacts(t)
	m, err := Import(FrameworkKeras, js, ws)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := Compile(m, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Export(lib, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.Float32, tensor.Shape{1, 16, 16, 3})
	in.FillUniform(tensor.NewRNG(2), 0, 1)
	a, _, err := RunOnce(lib, in)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunOnce(loaded, in)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(a[0], b[0], 1e-6, 1e-6) {
		t.Error("export/load changed outputs")
	}
}

func TestImportUnknownFramework(t *testing.T) {
	if _, err := Import("caffe", nil, nil); err == nil {
		t.Error("unknown framework accepted")
	}
}

func TestImportAllFrameworks(t *testing.T) {
	// PyTorch.
	tr := torchscript.NewTracer(3)
	x := tr.Input(1, 3, 8, 8)
	tr.Output(tr.ReLU(tr.Conv2D(x, 4, 3, 1, 1, 1)))
	g, sd, err := tr.Trace()
	if err != nil {
		t.Fatal(err)
	}
	gj, _ := torchscript.MarshalGraph(g)
	var sdBuf bytes.Buffer
	if err := sd.Save(&sdBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := Import(FrameworkPyTorch, gj, sdBuf.Bytes()); err != nil {
		t.Errorf("pytorch import: %v", err)
	}

	// TFLite.
	b := tflite.NewBuilder(2)
	in := b.Input("x", []int{1, 8, 8, 3}, nil)
	b.Output(b.Conv2D(in, 4, 3, 1, tflite.PaddingSame, tflite.ActRelu))
	blob, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Import(FrameworkTFLite, blob, nil); err != nil {
		t.Errorf("tflite import: %v", err)
	}

	// Darknet.
	cfg := "[net]\nwidth=16\nheight=16\nchannels=3\n\n[convolutional]\nfilters=4\nsize=3\nstride=1\npad=1\nactivation=leaky\n"
	var wbuf bytes.Buffer
	if err := darknetSynth(cfg, &wbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := Import(FrameworkDarknet, []byte(cfg), wbuf.Bytes()); err != nil {
		t.Errorf("darknet import: %v", err)
	}

	// ONNX.
	mp := onnxModel(t)
	oj, _ := onnxMarshal(mp)
	if _, err := Import(FrameworkONNX, oj, nil); err != nil {
		t.Errorf("onnx import: %v", err)
	}
}
