package nir

import (
	"fmt"

	"repro/internal/neuron"
	"repro/internal/relay"
)

// opHandlerDict is the dictionary of Listing 1: relay operator name → the
// logic converting that operator into Neuron IR. Adding NeuroPilot coverage
// for a new relay op means adding one entry here.
var opHandlerDict = map[string]opHandler{
	"nn.conv2d":  {create: createConv2D, check: conv2dSupported},
	"qnn.conv2d": {create: createConv2D, check: conv2dSupported},
	"nn.dense":   {create: simpleOp(neuron.FullyConnected)},
	"qnn.dense":  {create: simpleOp(neuron.FullyConnected)},

	"nn.bias_add": {create: simpleOp(neuron.BiasAdd)},

	"add":      {create: simpleOp(neuron.Add), check: float32Or8Bit},
	"qnn.add":  {create: simpleOp(neuron.Add)},
	"subtract": {create: simpleOp(neuron.Sub), check: float32Or8Bit},
	"multiply": {create: simpleOp(neuron.Mul), check: float32Or8Bit},
	"maximum":  {create: simpleOp(neuron.Max), check: float32Or8Bit},
	"minimum":  {create: simpleOp(neuron.Min), check: float32Or8Bit},

	"nn.relu":    {create: simpleOp(neuron.ReLU)},
	"clip":       {create: simpleOp(neuron.Clamp)},
	"sigmoid":    {create: simpleOp(neuron.Logistic)},
	"tanh":       {create: simpleOp(neuron.TanhOp)},
	"nn.softmax": {create: simpleOp(neuron.Softmax)},

	"nn.max_pool2d":        {create: simpleOp(neuron.MaxPool2D)},
	"nn.avg_pool2d":        {create: simpleOp(neuron.AveragePool2D)},
	"nn.global_avg_pool2d": {create: simpleOp(neuron.GlobalAveragePool2D)},

	"concatenate":     {create: simpleOp(neuron.Concatenation)},
	"qnn.concatenate": {create: createQnnConcat},

	"reshape":          {create: simpleOp(neuron.Reshape)},
	"nn.batch_flatten": {create: createBatchFlatten},
	"squeeze":          {create: simpleOp(neuron.Squeeze)},
	"expand_dims":      {create: simpleOp(neuron.ExpandDims)},
	"transpose":        {create: simpleOp(neuron.Transpose)},
	"nn.pad":           {create: simpleOp(neuron.Pad)},
	"nn.upsampling":    {create: simpleOp(neuron.ResizeNearest)},

	"qnn.quantize":   {create: simpleOp(neuron.Quantize)},
	"qnn.dequantize": {create: createDequantize},
	"qnn.requantize": {create: simpleOp(neuron.Requantize)},
}

// simpleOp returns a handler that emits one Neuron operation with the call's
// attributes copied verbatim.
func simpleOp(code neuron.OpCode) createOpFn {
	return func(cv *Converter, call *relay.Call, entry *NodeEntry) error {
		return cv.addSimpleOp(code, call, entry, nil)
	}
}

// createConv2D distinguishes depthwise from standard convolution (Neuron has
// distinct opcodes) and keeps the QNN scale attributes.
func createConv2D(cv *Converter, call *relay.Call, entry *NodeEntry) error {
	groups := call.Attrs.Int("groups", 1)
	code := neuron.Conv2D
	if groups > 1 {
		data, ok := call.Args[0].CheckedType().(*relay.TensorType)
		if !ok {
			return fmt.Errorf("conv2d data is not a tensor")
		}
		if groups != data.Shape[3] {
			return fmt.Errorf("grouped convolution with groups=%d (channels %d) has no Neuron equivalent",
				groups, data.Shape[3])
		}
		code = neuron.DepthwiseConv2D
	}
	return cv.addSimpleOp(code, call, entry, nil)
}

// createQnnConcat records each field's quantization parameters as attributes
// so the runtime can requantize mismatched fields (Neuron's CONCATENATION
// requantizes internally when input scales differ).
func createQnnConcat(cv *Converter, call *relay.Call, entry *NodeEntry) error {
	return cv.addSimpleOp(neuron.Concatenation, call, entry, nil)
}

// createBatchFlatten lowers nn.batch_flatten to RESHAPE with an explicit
// target shape (Neuron has no flatten op).
func createBatchFlatten(cv *Converter, call *relay.Call, entry *NodeEntry) error {
	tt, ok := call.CheckedType().(*relay.TensorType)
	if !ok {
		return fmt.Errorf("batch_flatten result is not a tensor")
	}
	attrs := relay.Attrs{"newshape": []int{tt.Shape[0], tt.Shape[1]}}
	return cv.addSimpleOp(neuron.Reshape, call, entry, attrs)
}

// createDequantize makes sure the kernel sees the input scale even when the
// relay frontend left the attrs empty (tensor-carried params take over).
func createDequantize(cv *Converter, call *relay.Call, entry *NodeEntry) error {
	attrs := call.Attrs.Clone()
	if attrs.Float("input_scale", 0) == 0 {
		if tt, ok := call.Args[0].CheckedType().(*relay.TensorType); ok && tt.Quant != nil {
			attrs["input_scale"] = tt.Quant.Scale
			attrs["input_zero_point"] = int(tt.Quant.ZeroPoint)
		}
	}
	return cv.addSimpleOp(neuron.Dequantize, call, entry, attrs)
}
