package nir

import (
	"repro/internal/relay"
	"repro/internal/soc"
	"repro/internal/topi"
	"repro/internal/verify"
)

// VerifySnapshot assembles the live cross-registry state — relay op
// registry, NIR handler dictionary, TOPI kernel inventory, Neuron opcode
// catalogue — for verify.Registries. npc -lint and the registry-consistency
// tests run the lint over this snapshot so a new operator cannot land
// half-registered.
func VerifySnapshot(devices ...soc.DeviceKind) verify.RegistrySnapshot {
	return verify.RegistrySnapshot{
		RelayOps:    relay.OpNames(),
		NIRHandlers: SupportedOpNames(),
		OpcodeOf:    OpcodeOf,
		TOPIKernels: topi.KernelNames(),
		Devices:     devices,
	}
}

// VerifyOptions returns the relay-verifier options wired to the NeuroPilot
// backend: every op inside a Compiler="nir" region must have a conversion
// handler.
func VerifyOptions() verify.Options {
	return verify.Options{
		ExternalOps: map[string]func(*relay.Call) bool{CompilerName: Supported},
	}
}
