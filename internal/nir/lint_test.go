package nir

import (
	"testing"

	"repro/internal/neuron"
	"repro/internal/relay"
	"repro/internal/soc"
	"repro/internal/topi"
	"repro/internal/verify"
)

// TestRegistriesConsistent pins the four operator registries against each
// other: the relay op registry, the NIR conversion-handler dictionary, the
// TOPI kernel inventory, and the Neuron opcode catalogue must describe the
// same operator universe. A new operator that lands in only some of them
// fails here (and in `npc -lint`) rather than at model-compile time.
func TestRegistriesConsistent(t *testing.T) {
	res := verify.Registries(VerifySnapshot())
	for _, d := range res.Diags {
		t.Errorf("registry lint: %s", d)
	}
}

// TestRegistryPins spot-checks the cross-registry contract on core ops so a
// refactor that silently empties one registry cannot pass the lint vacuously.
func TestRegistryPins(t *testing.T) {
	relayOps := map[string]bool{}
	for _, n := range relay.OpNames() {
		relayOps[n] = true
	}
	handlers := map[string]bool{}
	for _, n := range SupportedOpNames() {
		handlers[n] = true
	}
	kernels := map[string]bool{}
	for _, n := range topi.KernelNames() {
		kernels[n] = true
	}
	for _, core := range []string{"nn.conv2d", "nn.dense", "nn.relu", "add", "qnn.conv2d"} {
		if !relayOps[core] {
			t.Errorf("%s missing from the relay op registry", core)
		}
		if !handlers[core] {
			t.Errorf("%s missing from the NIR handler dictionary", core)
		}
		if !kernels[core] {
			t.Errorf("%s missing from the TOPI kernel inventory", core)
		}
		if _, ok := OpcodeOf(core); !ok {
			t.Errorf("%s maps to no Neuron opcode", core)
		}
	}
	// Every handled op must be a registered relay op with a Neuron opcode.
	for _, n := range SupportedOpNames() {
		if !relayOps[n] {
			t.Errorf("NIR handles %q but relay does not register it", n)
		}
		if _, ok := OpcodeOf(n); !ok {
			t.Errorf("NIR handles %q but it has no Neuron opcode", n)
		}
	}
	// Every Neuron opcode must resolve to kernels and at least one device.
	for _, code := range neuron.OpCodes() {
		anyDev := false
		for _, d := range []soc.DeviceKind{soc.KindCPU, soc.KindGPU, soc.KindAPU} {
			if neuron.SupportedOn(code, d) {
				anyDev = true
			}
		}
		if !anyDev {
			t.Errorf("Neuron opcode %s runs on no device", code)
		}
	}
}
