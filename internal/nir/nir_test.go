package nir

import (
	"strings"
	"testing"

	"repro/internal/neuron"
	"repro/internal/passes"
	"repro/internal/relay"
	"repro/internal/soc"
	"repro/internal/tensor"
)

func randConst(shape tensor.Shape, seed uint64) *relay.Constant {
	t := tensor.New(tensor.Float32, shape)
	t.FillUniform(tensor.NewRNG(seed), -0.5, 0.5)
	return relay.Const(t)
}

func typed(t *testing.T, fn *relay.Function) *relay.Function {
	t.Helper()
	if _, err := relay.InferTypes(fn); err != nil {
		t.Fatal(err)
	}
	return fn
}

func TestSupportedDictionary(t *testing.T) {
	data := relay.NewVar("d", relay.TType(tensor.Float32, 1, 8, 8, 3))
	conv := relay.NewCall(relay.OpConv2D, []relay.Expr{data, randConst(tensor.Shape{4, 3, 3, 3}, 1)},
		relay.Attrs{"padding": []int{1, 1}})
	typed(t, relay.NewFunc([]*relay.Var{data}, conv))
	if !Supported(conv) {
		t.Error("conv2d must be supported")
	}
	lk := relay.NewCall(relay.OpLeakyReLU, []relay.Expr{data}, relay.Attrs{"alpha": 0.1})
	if Supported(lk) {
		t.Error("leaky_relu must not be supported")
	}
	for _, name := range []string{"nn.lrn", "mean", "strided_slice", "exp", "sqrt", "divide", "vision.yolo_output"} {
		if _, ok := opHandlerDict[name]; ok {
			t.Errorf("%s should be outside the Neuron dictionary", name)
		}
	}
}

func TestGroupedConvUnsupportedDepthwiseSupported(t *testing.T) {
	data := relay.NewVar("d", relay.TType(tensor.Float32, 1, 8, 8, 8))
	dw := relay.NewCall(relay.OpConv2D, []relay.Expr{data, randConst(tensor.Shape{8, 3, 3, 1}, 1)},
		relay.Attrs{"padding": []int{1, 1}, "groups": 8})
	typed(t, relay.NewFunc([]*relay.Var{data}, dw))
	if !Supported(dw) {
		t.Error("depthwise conv must be supported")
	}
	grouped := relay.NewCall(relay.OpConv2D, []relay.Expr{data, randConst(tensor.Shape{8, 3, 3, 2}, 2)},
		relay.Attrs{"padding": []int{1, 1}, "groups": 4})
	typed(t, relay.NewFunc([]*relay.Var{data}, grouped))
	if Supported(grouped) {
		t.Error("grouped (non-depthwise) conv must not be supported")
	}
}

func TestConvertFunctionListing1Shape(t *testing.T) {
	// conv -> bias_add -> relu region; check the converted Neuron model.
	data := relay.NewVar("nirp0", relay.TType(tensor.Float32, 1, 8, 8, 3))
	conv := relay.NewCall(relay.OpConv2D, []relay.Expr{data, randConst(tensor.Shape{4, 3, 3, 3}, 1)},
		relay.Attrs{"padding": []int{1, 1}})
	ba := relay.NewCall(relay.OpBiasAdd, []relay.Expr{conv, randConst(tensor.Shape{4}, 2)}, nil)
	act := relay.NewCall(relay.OpReLU, []relay.Expr{ba}, nil)
	fn := typed(t, relay.NewFunc([]*relay.Var{data}, act))

	model, err := ConvertFunction("nir_0", fn)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Inputs) != 1 || len(model.Outputs) != 1 {
		t.Fatalf("model io: %v / %v", model.Inputs, model.Outputs)
	}
	counts := model.OpCounts()
	if counts[neuron.Conv2D] != 1 || counts[neuron.BiasAdd] != 1 || counts[neuron.ReLU] != 1 {
		t.Errorf("op histogram wrong: %v", counts)
	}
	// Two constants (weight, bias) + input + three op outputs = 6 operands.
	if len(model.Operands) != 6 {
		t.Errorf("operand table has %d entries, want 6", len(model.Operands))
	}
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConvertDepthwiseMapsToDepthwiseOpcode(t *testing.T) {
	data := relay.NewVar("d", relay.TType(tensor.Float32, 1, 8, 8, 8))
	dw := relay.NewCall(relay.OpConv2D, []relay.Expr{data, randConst(tensor.Shape{8, 3, 3, 1}, 1)},
		relay.Attrs{"padding": []int{1, 1}, "groups": 8})
	fn := typed(t, relay.NewFunc([]*relay.Var{data}, dw))
	model, err := ConvertFunction("m", fn)
	if err != nil {
		t.Fatal(err)
	}
	if model.OpCounts()[neuron.DepthwiseConv2D] != 1 {
		t.Errorf("depthwise not mapped: %v", model.OpCounts())
	}
}

func TestConvertTupleConcat(t *testing.T) {
	a := relay.NewVar("a", relay.TType(tensor.Float32, 1, 4, 4, 2))
	b := relay.NewVar("b", relay.TType(tensor.Float32, 1, 4, 4, 3))
	tup := relay.NewTuple([]relay.Expr{a, b})
	cc := relay.NewCall(relay.OpConcatenate, []relay.Expr{tup}, relay.Attrs{"axis": 3})
	fn := typed(t, relay.NewFunc([]*relay.Var{a, b}, cc))
	model, err := ConvertFunction("m", fn)
	if err != nil {
		t.Fatal(err)
	}
	if model.OpCounts()[neuron.Concatenation] != 1 {
		t.Fatal("concat not converted")
	}
	op := model.Operations[0]
	if len(op.Inputs) != 2 {
		t.Errorf("CONCATENATION should consume 2 operands (tuple flattened), got %d", len(op.Inputs))
	}
}

func TestConvertQnnCarriesParamsOnEveryOperand(t *testing.T) {
	// qnn.conv2d (operator-oriented params) must produce operands that all
	// carry tensor-oriented params — the §3.3 augmentation.
	q := tensor.QuantParams{Scale: 0.02, ZeroPoint: 128}
	wq := tensor.QuantParams{Scale: 0.005, ZeroPoint: 0}
	data := relay.NewVar("d", relay.QTType(tensor.UInt8, q, 1, 8, 8, 3))
	w := tensor.New(tensor.Float32, tensor.Shape{4, 3, 3, 3})
	w.FillUniform(tensor.NewRNG(1), -0.5, 0.5)
	wc := relay.Const(w.QuantizeTo(tensor.UInt8, wq))
	conv := relay.NewCall(relay.OpQnnConv2D, []relay.Expr{data, wc}, relay.Attrs{
		"padding":     []int{1, 1},
		"input_scale": q.Scale, "input_zero_point": int(q.ZeroPoint),
		"kernel_scale": wq.Scale, "kernel_zero_point": int(wq.ZeroPoint),
	})
	rq := relay.NewCall(relay.OpQnnRequantize, []relay.Expr{conv}, relay.Attrs{
		"input_scale": q.Scale * wq.Scale, "input_zero_point": 0,
		"output_scale": 0.05, "output_zero_point": 100, "out_dtype": "uint8",
	})
	// Pass through a non-QNN op (max_pool): params must keep flowing.
	pool := relay.NewCall(relay.OpMaxPool2D, []relay.Expr{rq},
		relay.Attrs{"pool_size": []int{2, 2}, "strides": []int{2, 2}})
	fn := typed(t, relay.NewFunc([]*relay.Var{data}, pool))
	model, err := ConvertFunction("m", fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, od := range model.Operands {
		if od.Type.DType.IsQuantized() && od.Type.Quant == nil {
			t.Errorf("operand %s (%s) lost its quant params", od.Name, od.Type)
		}
	}
	// The pool output (model output) must carry the requantize's params.
	outOp := model.Operands[model.Outputs[0]]
	if outOp.Type.Quant == nil || outOp.Type.Quant.Scale != 0.05 || outOp.Type.Quant.ZeroPoint != 100 {
		t.Errorf("output operand params %v, want scale=0.05 zp=100 (propagated through max_pool)", outOp.Type.Quant)
	}
}

func TestConvertRejectsMissingQuantParams(t *testing.T) {
	// A hand-built function whose quantized var type lacks params must be
	// rejected with the tensor-oriented explanation.
	badType := &relay.TensorType{Shape: tensor.Shape{1, 4}, DType: tensor.UInt8} // no Quant
	data := relay.NewVar("d", badType)
	rs := relay.NewCall(relay.OpReshape, []relay.Expr{data}, relay.Attrs{"newshape": []int{4}})
	fn := typed(t, relay.NewFunc([]*relay.Var{data}, rs))
	_, err := ConvertFunction("m", fn)
	if err == nil {
		t.Fatal("conversion must fail without quant params")
	}
	if !strings.Contains(err.Error(), "quantization parameters") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestConvertBatchFlattenBecomesReshape(t *testing.T) {
	data := relay.NewVar("d", relay.TType(tensor.Float32, 2, 4, 4, 8))
	fl := relay.NewCall(relay.OpBatchFlatten, []relay.Expr{data}, nil)
	fn := typed(t, relay.NewFunc([]*relay.Var{data}, fl))
	model, err := ConvertFunction("m", fn)
	if err != nil {
		t.Fatal(err)
	}
	if model.OpCounts()[neuron.Reshape] != 1 {
		t.Fatal("batch_flatten must lower to RESHAPE")
	}
	ns := model.Operations[0].Attrs.Ints("newshape", nil)
	if len(ns) != 2 || ns[0] != 2 || ns[1] != 128 {
		t.Errorf("reshape newshape = %v, want [2 128]", ns)
	}
}

func TestPartitionForNIREndToEnd(t *testing.T) {
	data := relay.NewVar("data", relay.TType(tensor.Float32, 1, 8, 8, 3))
	conv := relay.NewCall(relay.OpConv2D, []relay.Expr{data, randConst(tensor.Shape{4, 3, 3, 3}, 1)},
		relay.Attrs{"padding": []int{1, 1}})
	act := relay.NewCall(relay.OpReLU, []relay.Expr{conv}, nil)
	m := relay.NewModule(relay.NewFunc([]*relay.Var{data}, act))
	out, err := PartitionForNIR(m, passes.DefaultPartitionOptions())
	if err != nil {
		t.Fatal(err)
	}
	ext := out.ExternalFuncs(CompilerName)
	if len(ext) != 1 {
		t.Fatalf("regions: %v", ext)
	}
	mods, err := Codegen(out, soc.NewDimensity800(), []soc.DeviceKind{soc.KindCPU, soc.KindAPU})
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 1 {
		t.Fatalf("codegen produced %d modules", len(mods))
	}
	for name, cm := range mods {
		if cm.Model.Name != name {
			t.Errorf("model name %q vs symbol %q", cm.Model.Name, name)
		}
	}
}

func TestConverterEntriesRecordInputsOutputs(t *testing.T) {
	// White-box Listing 1 check: NodeEntry of a call lists its argument
	// operands as inputs and its own operand as output.
	data := relay.NewVar("d", relay.TType(tensor.Float32, 1, 4))
	act := relay.NewCall(relay.OpReLU, []relay.Expr{data}, nil)
	fn := typed(t, relay.NewFunc([]*relay.Var{data}, act))
	cv := &Converter{model: neuron.NewModel("m"), nodeEntryDict: map[relay.Expr]*NodeEntry{}}
	entry, err := cv.visitVar(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(entry.Outputs) != 1 || entry.Outputs[0] != entry.Inputs[0] {
		t.Error("visit_var entry must alias the operand as input and output")
	}
	if err := cv.visitCall(act); err != nil {
		t.Fatal(err)
	}
	ce := cv.nodeEntryDict[act]
	if len(ce.Inputs) != 1 || ce.Inputs[0] != entry.Outputs[0] {
		t.Error("visit_call must gather argument outputs as inputs")
	}
	if len(ce.Outputs) != 1 || ce.Outputs[0] == ce.Inputs[0] {
		t.Error("visit_call must create a fresh output operand")
	}
	_ = fn
}

func TestConvertQnnAddAndConcat(t *testing.T) {
	q := tensor.QuantParams{Scale: 0.1, ZeroPoint: 0}
	q2 := tensor.QuantParams{Scale: 0.2, ZeroPoint: 10}
	qo := tensor.QuantParams{Scale: 0.05, ZeroPoint: 0}
	a := relay.NewVar("a", relay.QTType(tensor.UInt8, q, 1, 4, 4, 2))
	b := relay.NewVar("b", relay.QTType(tensor.UInt8, q2, 1, 4, 4, 2))
	sum := relay.NewCall(relay.OpQnnAdd, []relay.Expr{a, b}, relay.Attrs{
		"lhs_scale": q.Scale, "lhs_zero_point": int(q.ZeroPoint),
		"rhs_scale": q2.Scale, "rhs_zero_point": int(q2.ZeroPoint),
		"output_scale": qo.Scale, "output_zero_point": int(qo.ZeroPoint),
	})
	cc := relay.NewCall(relay.OpQnnConcatenate,
		[]relay.Expr{relay.NewTuple([]relay.Expr{sum, a})},
		relay.Attrs{"axis": 3, "output_scale": qo.Scale, "output_zero_point": int(qo.ZeroPoint)})
	fn := typed(t, relay.NewFunc([]*relay.Var{a, b}, cc))
	model, err := ConvertFunction("m", fn)
	if err != nil {
		t.Fatal(err)
	}
	h := model.OpCounts()
	if h[neuron.Add] != 1 || h[neuron.Concatenation] != 1 {
		t.Errorf("histogram %v", h)
	}
	// Output operand must carry the concatenate's params.
	out := model.Operands[model.Outputs[0]]
	if out.Type.Quant == nil || out.Type.Quant.Scale != qo.Scale {
		t.Errorf("output quant %v", out.Type.Quant)
	}
}

func TestConvertUpsamplingAndPad(t *testing.T) {
	x := relay.NewVar("x", relay.TType(tensor.Float32, 1, 4, 4, 2))
	up := relay.NewCall(relay.OpUpsampling, []relay.Expr{x}, relay.Attrs{"scale": 2})
	pd := relay.NewCall(relay.OpPad, []relay.Expr{up}, relay.Attrs{"pad_width": []int{1, 1}})
	fn := typed(t, relay.NewFunc([]*relay.Var{x}, pd))
	model, err := ConvertFunction("m", fn)
	if err != nil {
		t.Fatal(err)
	}
	h := model.OpCounts()
	if h[neuron.ResizeNearest] != 1 || h[neuron.Pad] != 1 {
		t.Errorf("histogram %v", h)
	}
	out := model.Operands[model.Outputs[0]]
	if !out.Type.Shape.Equal(tensor.Shape{1, 10, 10, 2}) {
		t.Errorf("output shape %s", out.Type.Shape)
	}
}

func TestOpcodeOfCoverage(t *testing.T) {
	// Every dictionary entry must map to a Neuron opcode.
	for _, name := range SupportedOpNames() {
		if _, ok := OpcodeOf(name); !ok {
			t.Errorf("dictionary op %q has no opcode mapping", name)
		}
	}
	if _, ok := OpcodeOf("nn.leaky_relu"); ok {
		t.Error("leaky_relu must have no opcode")
	}
}
