package nir

import (
	"fmt"

	"repro/internal/neuron"
	"repro/internal/relay"
	"repro/internal/soc"
)

// Codegen converts every Compiler="nir" region of the module into a Neuron
// model and compiles it with the Execution Planner for the enabled devices.
// The result maps global symbol → compiled NeuroPilot artifact, which the
// graph executor dispatches to at runtime.
func Codegen(m *relay.Module, sc *soc.SoC, devices []soc.DeviceKind) (map[string]*neuron.CompiledModel, error) {
	out := map[string]*neuron.CompiledModel{}
	for _, name := range m.ExternalFuncs(CompilerName) {
		fn, _ := m.Get(name)
		model, err := ConvertFunction(name, fn)
		if err != nil {
			return nil, fmt.Errorf("nir codegen %s: %w", name, err)
		}
		cm, err := neuron.Compile(model, sc, devices)
		if err != nil {
			return nil, fmt.Errorf("nir codegen %s: %w", name, err)
		}
		out[name] = cm
	}
	return out, nil
}
