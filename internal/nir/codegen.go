package nir

import (
	"fmt"
	"time"

	"repro/internal/neuron"
	"repro/internal/obs"
	"repro/internal/relay"
	"repro/internal/soc"
)

// Codegen converts every Compiler="nir" region of the module into a Neuron
// model and compiles it with the Execution Planner for the enabled devices.
// The result maps global symbol → compiled NeuroPilot artifact, which the
// graph executor dispatches to at runtime.
func Codegen(m *relay.Module, sc *soc.SoC, devices []soc.DeviceKind) (map[string]*neuron.CompiledModel, error) {
	return CodegenTraced(m, sc, devices, nil)
}

// CodegenTraced is Codegen with compile-time observability: when tk is
// non-nil, every region conversion and Execution-Planner compile emits one
// wall-clock span (Neuron op/operand counts and target devices in the args).
func CodegenTraced(m *relay.Module, sc *soc.SoC, devices []soc.DeviceKind, tk *obs.Track) (map[string]*neuron.CompiledModel, error) {
	out := map[string]*neuron.CompiledModel{}
	for _, name := range m.ExternalFuncs(CompilerName) {
		fn, _ := m.Get(name)
		convStart := time.Now()
		model, err := ConvertFunction(name, fn)
		if err != nil {
			return nil, fmt.Errorf("nir codegen %s: %w", name, err)
		}
		tk.Emit("ConvertFunction:"+name, "codegen", convStart, time.Since(convStart),
			obs.A("operations", len(model.Operations)),
			obs.A("operands", len(model.Operands)))
		compStart := time.Now()
		cm, err := neuron.Compile(model, sc, devices)
		if err != nil {
			return nil, fmt.Errorf("nir codegen %s: %w", name, err)
		}
		tk.Emit("neuron.Compile:"+name, "codegen", compStart, time.Since(compStart),
			obs.A("operations", len(model.Operations)),
			obs.A("devices", fmt.Sprint(devices)))
		out[name] = cm
	}
	return out, nil
}
