package nir

import (
	"fmt"

	"repro/internal/neuron"
	"repro/internal/relay"
	"repro/internal/verify"
)

// This file is the Go rendition of the paper's Listing 1: an ExprVisitor
// walks the relay AST of a partitioned region in post-order DFS, a NodeEntry
// records the Neuron operand indices produced for every relay node, and an
// op-handler dictionary maps each relay operator onto its Neuron IR
// counterpart.

// NodeEntry stores the inputs and outputs (Neuron operand indices) of one
// relay node during conversion.
type NodeEntry struct {
	Inputs  []int
	Outputs []int
}

// createOpFn builds the Neuron operation(s) for one relay call whose
// argument operands are already materialized.
type createOpFn func(cv *Converter, call *relay.Call, entry *NodeEntry) error

// checkFn imposes extra structural constraints for Supported().
type checkFn func(*relay.Call) bool

type opHandler struct {
	create createOpFn
	check  checkFn
}

// Converter lowers one relay function (a Compiler="nir" region) to a Neuron
// model.
type Converter struct {
	model *neuron.Model
	// nodeEntryDict is the node_entry_dict of Listing 1.
	nodeEntryDict map[relay.Expr]*NodeEntry
	nextName      int
}

// ConvertFunction converts a type-checked relay function into Neuron IR.
// Every tensor edge becomes an operand carrying shape, dtype and — for
// quantized dtypes — the quantization parameters propagated through the
// relay type system (§3.3).
func ConvertFunction(name string, fn *relay.Function) (*neuron.Model, error) {
	if fn.CheckedType() == nil {
		if _, err := relay.InferTypes(fn); err != nil {
			return nil, fmt.Errorf("nir: region %q is not type-checked: %w", name, err)
		}
	}
	cv := &Converter{
		model:         neuron.NewModel(name),
		nodeEntryDict: map[relay.Expr]*NodeEntry{},
	}
	// Model inputs: one runtime-fed operand per parameter, in order
	// (the paper's "convert the parameters into tensor-oriented
	// expressions" step).
	for _, p := range fn.Params {
		entry, err := cv.visitVar(p)
		if err != nil {
			return nil, err
		}
		cv.model.Inputs = append(cv.model.Inputs, entry.Outputs[0])
	}
	var cerr error
	relay.PostOrderVisit(fn.Body, func(e relay.Expr) {
		if cerr != nil {
			return
		}
		if _, done := cv.nodeEntryDict[e]; done {
			return
		}
		switch n := e.(type) {
		case *relay.Var:
			_, cerr = cv.visitVar(n)
		case *relay.Constant:
			cerr = cv.visitConstant(n)
		case *relay.Call:
			cerr = cv.visitCall(n)
		case *relay.Tuple:
			cerr = cv.visitTuple(n)
		case *relay.TupleGetItem:
			cerr = cv.visitTupleGetItem(n)
		case *relay.Function:
			cerr = fmt.Errorf("nir: nested function inside region %q (fuse before partitioning is unsupported)", name)
		}
	})
	if cerr != nil {
		return nil, cerr
	}
	rootEntry := cv.nodeEntryDict[fn.Body]
	if rootEntry == nil {
		return nil, fmt.Errorf("nir: region %q produced no output entry", name)
	}
	cv.model.Outputs = append(cv.model.Outputs, rootEntry.Outputs...)
	if err := cv.model.Validate(); err != nil {
		return nil, fmt.Errorf("nir: converted model invalid: %w", err)
	}
	if err := verify.NeuronModelErr(cv.model); err != nil {
		return nil, fmt.Errorf("nir: converted model failed IR verification: %w", err)
	}
	return cv.model, nil
}

// operandTypeOf maps a checked relay tensor type to a Neuron operand type,
// enforcing the tensor-oriented quantization invariant.
func operandTypeOf(t *relay.TensorType, ctx string) (neuron.OperandType, error) {
	ot := neuron.OperandType{Shape: t.Shape.Clone(), DType: t.DType}
	if t.Quant != nil {
		q := *t.Quant
		ot.Quant = &q
	}
	if t.DType.IsQuantized() && ot.Quant == nil {
		return ot, fmt.Errorf("nir: %s is %s but carries no quantization parameters; "+
			"relay QNN keeps them on operators — run the QNN propagation (type inference) first", ctx, t.DType)
	}
	return ot, nil
}

func (cv *Converter) freshName(prefix string) string {
	cv.nextName++
	return fmt.Sprintf("%s%d", prefix, cv.nextName-1)
}

// visitVar implements Listing 1's visit_var: the variable becomes a Neuron
// input operand and its NodeEntry lists that operand as both input and
// output.
func (cv *Converter) visitVar(v *relay.Var) (*NodeEntry, error) {
	if e, ok := cv.nodeEntryDict[v]; ok {
		return e, nil
	}
	tt, ok := v.CheckedType().(*relay.TensorType)
	if !ok {
		return nil, fmt.Errorf("nir: parameter %q has non-tensor type %s", v.Name, v.CheckedType())
	}
	ot, err := operandTypeOf(tt, "parameter "+v.Name)
	if err != nil {
		return nil, err
	}
	idx := cv.model.AddOperand(v.Name, ot, nil)
	entry := &NodeEntry{Inputs: []int{idx}, Outputs: []int{idx}}
	cv.nodeEntryDict[v] = entry
	return entry, nil
}

// visitConstant materializes weights/biases as constant operands.
func (cv *Converter) visitConstant(c *relay.Constant) error {
	tt := c.CheckedType().(*relay.TensorType)
	ot, err := operandTypeOf(tt, "constant")
	if err != nil {
		return err
	}
	idx := cv.model.AddOperand(cv.freshName("const"), ot, c.Value)
	cv.nodeEntryDict[c] = &NodeEntry{Inputs: []int{idx}, Outputs: []int{idx}}
	return nil
}

// visitTuple implements Listing 1's visit_tuple: the entry's outputs are the
// concatenation of the field outputs.
func (cv *Converter) visitTuple(t *relay.Tuple) error {
	entry := &NodeEntry{}
	for _, f := range t.Fields {
		fe := cv.nodeEntryDict[f]
		if fe == nil {
			return fmt.Errorf("nir: tuple field visited out of order")
		}
		entry.Inputs = append(entry.Inputs, fe.Outputs...)
	}
	entry.Outputs = entry.Inputs
	cv.nodeEntryDict[t] = entry
	return nil
}

func (cv *Converter) visitTupleGetItem(t *relay.TupleGetItem) error {
	te := cv.nodeEntryDict[t.Tuple]
	if te == nil {
		return fmt.Errorf("nir: tuple projection visited out of order")
	}
	if t.Index < 0 || t.Index >= len(te.Outputs) {
		return fmt.Errorf("nir: tuple projection index %d out of range (%d outputs)", t.Index, len(te.Outputs))
	}
	cv.nodeEntryDict[t] = &NodeEntry{
		Inputs:  []int{te.Outputs[t.Index]},
		Outputs: []int{te.Outputs[t.Index]},
	}
	return nil
}

// visitCall implements Listing 1's visit_call: gather argument operands into
// the NodeEntry, look up the handler in the dictionary, and let it create
// the Neuron operation.
func (cv *Converter) visitCall(call *relay.Call) error {
	if call.Op == nil {
		return fmt.Errorf("nir: call to a function value inside a region")
	}
	entry := &NodeEntry{}
	for _, a := range call.Args {
		ae := cv.nodeEntryDict[a]
		if ae == nil {
			return fmt.Errorf("nir: argument of %s visited out of order", call.Op.Name)
		}
		entry.Inputs = append(entry.Inputs, ae.Outputs...)
	}
	h, ok := opHandlerDict[call.Op.Name]
	if !ok {
		return fmt.Errorf("nir: no Neuron mapping for relay op %q — partitioning should not have "+
			"placed it in an external region", call.Op.Name)
	}
	if err := h.create(cv, call, entry); err != nil {
		return fmt.Errorf("nir: converting %s: %w", call.Op.Name, err)
	}
	cv.nodeEntryDict[call] = entry
	return nil
}

// addSimpleOp creates the output operand from the call's checked type and
// appends one Neuron operation consuming entry.Inputs.
func (cv *Converter) addSimpleOp(code neuron.OpCode, call *relay.Call, entry *NodeEntry, attrs relay.Attrs) error {
	tt, ok := call.CheckedType().(*relay.TensorType)
	if !ok {
		return fmt.Errorf("tuple-typed result not representable as one operand")
	}
	ot, err := operandTypeOf(tt, "result of "+call.Op.Name)
	if err != nil {
		return err
	}
	out := cv.model.AddOperand(cv.freshName("t"), ot, nil)
	if attrs == nil {
		attrs = call.Attrs.Clone()
	}
	cv.model.AddOperation(code, entry.Inputs, []int{out}, attrs)
	entry.Outputs = []int{out}
	return nil
}
