// Package nir implements the paper's contribution: NeuroPilot support for
// TVM through the BYOC flow. It provides
//
//   - the supported-operator dictionary that AnnotateTarget consults,
//   - PartitionForNIR (the paper's partition_for_nir) that carves the relay
//     graph into host and NeuroPilot regions,
//   - the ExprVisitor-based converter of Listing 1 — post-order DFS with
//     NodeEntry records and an op-handler dictionary — that lowers each
//     external region into Neuron IR, carrying quantization parameters onto
//     every operand (the §3.3 QNN augmentation), and
//   - the codegen step that hands each Neuron model to the NeuroPilot
//     compiler/Execution Planner for the enabled devices.
package nir

import (
	"fmt"

	"repro/internal/neuron"
	"repro/internal/passes"
	"repro/internal/relay"
	"repro/internal/soc"
	"repro/internal/tensor"
	"repro/internal/verify"
)

// CompilerName is the Compiler attribute value marking NIR regions.
const CompilerName = "nir"

// Supported reports whether the NeuroPilot backend can take a relay call.
// An op is supported when the converter dictionary has a handler for it and
// the call satisfies that handler's structural constraints. Anything else —
// leaky_relu, lrn, mean, strided_slice, exp, sqrt, divide, the YOLO decode —
// stays on the TVM side, which is what produces both the partitioned
// subgraphs and the missing NeuroPilot-only statistics of Figures 4/6.
func Supported(call *relay.Call) bool {
	if call.Op == nil {
		return false
	}
	h, ok := opHandlerDict[call.Op.Name]
	if !ok {
		return false
	}
	if h.check != nil && !h.check(call) {
		return false
	}
	return true
}

// SupportedOpNames returns the relay ops in the conversion dictionary;
// exported for tests and docs.
func SupportedOpNames() []string {
	names := make([]string, 0, len(opHandlerDict))
	for n := range opHandlerDict {
		names = append(names, n)
	}
	return names
}

// conv2dSupported: Neuron implements standard and depthwise convolution but
// not arbitrary grouped convolution.
func conv2dSupported(call *relay.Call) bool {
	groups := call.Attrs.Int("groups", 1)
	if groups == 1 {
		return true
	}
	data, ok := call.Args[0].CheckedType().(*relay.TensorType)
	if !ok || len(data.Shape) != 4 {
		return false
	}
	return groups == data.Shape[3] // depthwise
}

// float32Or8Bit restricts an op to the dtypes the Neuron backend implements.
func float32Or8Bit(call *relay.Call) bool {
	t, ok := call.CheckedType().(*relay.TensorType)
	if !ok {
		return true // checked post-inference; be permissive pre-inference
	}
	switch t.DType {
	case tensor.Float32, tensor.Int8, tensor.UInt8, tensor.Int32:
		return true
	}
	return false
}

// SupportedForDevices narrows Supported to the ops executable on at least
// one of the enabled NeuroPilot devices — the nir_targets parameter of the
// paper's Listing 6. Targeting the APU alone must not offload CPU-only
// operations like LOGISTIC.
func SupportedForDevices(devices []soc.DeviceKind) passes.Supported {
	if len(devices) == 0 {
		devices = []soc.DeviceKind{soc.KindCPU, soc.KindAPU}
	}
	return func(c *relay.Call) bool {
		if !Supported(c) {
			return false
		}
		code, ok := opcodeOf(c)
		if !ok {
			return false
		}
		for _, d := range devices {
			if neuron.SupportedOn(code, d) {
				return true
			}
		}
		return false
	}
}

// opcodeOf maps a supported relay call to its Neuron opcode (for
// device-coverage checks).
func opcodeOf(c *relay.Call) (neuron.OpCode, bool) {
	if c.Op.Name == "nn.conv2d" || c.Op.Name == "qnn.conv2d" {
		if c.Attrs.Int("groups", 1) > 1 {
			return neuron.DepthwiseConv2D, true
		}
		return neuron.Conv2D, true
	}
	return OpcodeOf(c.Op.Name)
}

// OpcodeOf maps a relay op name to its Neuron opcode (standard, non-grouped
// form); exported for the support-matrix documentation tool.
func OpcodeOf(name string) (neuron.OpCode, bool) {
	switch name {
	case "nn.conv2d", "qnn.conv2d":
		return neuron.Conv2D, true
	case "nn.dense", "qnn.dense":
		return neuron.FullyConnected, true
	case "nn.bias_add":
		return neuron.BiasAdd, true
	case "add", "qnn.add":
		return neuron.Add, true
	case "subtract":
		return neuron.Sub, true
	case "multiply":
		return neuron.Mul, true
	case "maximum":
		return neuron.Max, true
	case "minimum":
		return neuron.Min, true
	case "nn.relu":
		return neuron.ReLU, true
	case "clip":
		return neuron.Clamp, true
	case "sigmoid":
		return neuron.Logistic, true
	case "tanh":
		return neuron.TanhOp, true
	case "nn.softmax":
		return neuron.Softmax, true
	case "nn.max_pool2d":
		return neuron.MaxPool2D, true
	case "nn.avg_pool2d":
		return neuron.AveragePool2D, true
	case "nn.global_avg_pool2d":
		return neuron.GlobalAveragePool2D, true
	case "concatenate", "qnn.concatenate":
		return neuron.Concatenation, true
	case "reshape", "nn.batch_flatten":
		return neuron.Reshape, true
	case "squeeze":
		return neuron.Squeeze, true
	case "expand_dims":
		return neuron.ExpandDims, true
	case "transpose":
		return neuron.Transpose, true
	case "nn.pad":
		return neuron.Pad, true
	case "nn.upsampling":
		return neuron.ResizeNearest, true
	case "qnn.quantize":
		return neuron.Quantize, true
	case "qnn.dequantize":
		return neuron.Dequantize, true
	case "qnn.requantize":
		return neuron.Requantize, true
	}
	return 0, false
}

// PartitionForNIR is the paper's nir.partition_for_nir: annotate supported
// calls, merge compiler regions, and lift each region into a module-level
// function tagged Compiler="nir". Like TVM's partition_for_* helpers it
// first runs inference-mode simplification and constant folding so that
// training-time constructs (dropout, batch-norm statistics) do not split
// otherwise-contiguous regions. devices narrows the offloaded op set to the
// enabled NeuroPilot targets (Listing 6's nir_targets); empty means CPU+APU.
func PartitionForNIR(m *relay.Module, opts passes.PartitionOptions, devices ...soc.DeviceKind) (*relay.Module, error) {
	m, err := passes.Sequential(m, passes.NewContext(3),
		passes.SimplifyInference(),
		passes.FoldConstant(),
	)
	if err != nil {
		return nil, err
	}
	out, err := passes.PartitionForCompiler(m, CompilerName, SupportedForDevices(devices), opts)
	if err != nil {
		return nil, err
	}
	if err := verify.ModuleErr(out, VerifyOptions()); err != nil {
		return nil, fmt.Errorf("nir: partition_for_nir produced an ill-formed module: %w", err)
	}
	return out, nil
}
