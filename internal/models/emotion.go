package models

import (
	"bytes"
	"fmt"

	"repro/internal/frontend/keras"
	"repro/internal/relay"
	"repro/internal/tensor"
)

// The emotion-detection model (paper §4.3, Listing 4): a Keras Sequential
// CNN over 48×48 grayscale faces classifying the seven basic emotions. Every
// layer of the paper's listing is reproduced; the model is fully inside the
// Neuron op set (softmax included), so it is the one showcase model that
// runs NeuroPilot-only — and, per §5.1, is most efficient on the APU alone.

// EmotionLabels are the seven basic emotions, in output order.
var EmotionLabels = []string{
	"angry", "disgusted", "fearful", "happy", "neutral", "sad", "surprised",
}

// BuildEmotion constructs, serializes and reimports the Keras model.
func BuildEmotion(size Size) (*relay.Module, error) {
	denseUnits := 1024
	if size == SizeLite {
		denseUnits = 256
	}
	s := keras.NewSequential("emotion", 0xE307).
		Input(48, 48, 1).
		Conv2D(32, 3, 1, "valid", "relu").
		Conv2D(64, 3, 1, "valid", "relu").
		MaxPooling2D(2, 2).
		Dropout(0.25).
		Conv2D(128, 3, 1, "valid", "relu").
		MaxPooling2D(2, 2).
		Conv2D(128, 3, 1, "valid", "relu").
		MaxPooling2D(2, 2).
		Dropout(0.25).
		Flatten().
		Dense(denseUnits, "relu").
		Dropout(0.5).
		Dense(len(EmotionLabels), "softmax")
	js, err := s.ToJSON()
	if err != nil {
		return nil, fmt.Errorf("models: building emotion model: %w", err)
	}
	ws, err := s.Weights()
	if err != nil {
		return nil, err
	}
	// Round-trip the weight blob, as load_weights(weight_path) would.
	var buf bytes.Buffer
	if err := ws.SaveWeights(&buf); err != nil {
		return nil, err
	}
	loaded, err := keras.LoadWeights(&buf)
	if err != nil {
		return nil, err
	}
	return keras.FromKeras(js, loaded)
}

func init() {
	register(Spec{
		Name:      "emotion",
		Framework: "Keras",
		DataType:  tensor.Float32,
		WidthMult: 1.0,
		Build:     BuildEmotion,
	})
}
