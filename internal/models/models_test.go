package models

import (
	"testing"

	"repro/internal/nir"
	"repro/internal/passes"
	"repro/internal/relay"
	"repro/internal/runtime"
	"repro/internal/soc"
	"repro/internal/tensor"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"anti-spoofing", "emotion", "mobilenet ssd (quant)", "yolov3",
		"densenet", "inception resnet v2", "inception v3", "inception v4",
		"mobilenet v1", "mobilenet v2", "nasnet",
		"inception v3 (quant)", "mobilenet v1 (quant)", "mobilenet v2 (quant)",
	}
	for _, n := range want {
		if _, err := Get(n); err != nil {
			t.Errorf("missing model %q", n)
		}
	}
	if len(Names()) != len(want) {
		t.Errorf("registry has %d entries, want %d: %v", len(Names()), len(want), Names())
	}
}

func TestTable1Inventory(t *testing.T) {
	specs := Table1()
	if len(specs) != 7 {
		t.Fatalf("Table 1 lists 7 models, got %d", len(specs))
	}
	for _, s := range specs {
		if s.DataType != tensor.Float32 {
			t.Errorf("%s: Table 1 models are float32, got %s", s.Name, s.DataType)
		}
	}
}

func TestFigure6Sweep(t *testing.T) {
	specs := Figure6()
	if len(specs) != 10 {
		t.Fatalf("Figure 6 sweeps 10 models, got %d", len(specs))
	}
	quant := 0
	for _, s := range specs {
		if s.DataType.IsQuantized() {
			quant++
		}
	}
	if quant != 3 {
		t.Errorf("expected 3 quantized variants (inception v3, mobilenet v1/v2), got %d", quant)
	}
}

// buildLite builds every model at SizeLite, ensuring every frontend path
// works for every architecture family.
func TestAllModelsBuildLite(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, _ := Get(name)
			m, err := spec.Build(SizeLite)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if err := relay.InferModule(m); err != nil {
				t.Fatalf("type check: %v", err)
			}
			if n := relay.CountOps(m.Main()); n < 5 {
				t.Errorf("suspiciously small graph: %d ops", n)
			}
		})
	}
}

// Every lite model must execute end-to-end through the BYOC flow.
func TestAllModelsRunLiteBYOC(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, _ := Get(name)
			m, err := spec.Build(SizeLite)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			gm := runtime.NewGraphModule(lib)
			gm.SetInput(gm.InputNames()[0], RandomInput(m, 1))
			if err := gm.Run(); err != nil {
				t.Fatalf("run: %v", err)
			}
			if gm.LastProfile().Total() <= 0 {
				t.Error("no simulated cost")
			}
		})
	}
}

// The NeuroPilot-only support matrix drives the missing bars of Figures 4/6.
func TestNeuroPilotOnlySupportMatrix(t *testing.T) {
	cases := []struct {
		name      string
		supported bool
	}{
		{"anti-spoofing", false},        // leaky + spatial mean
		{"emotion", true},               // fully covered, APU-runnable
		{"mobilenet ssd (quant)", true}, // LOGISTIC is CPU-only but in the set
		{"yolov3", false},               // leaky + yolo decode
		{"densenet", true},
		{"nasnet", false}, // mean head
		{"inception resnet v2", true},
		{"mobilenet v1", true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			spec, _ := Get(c.name)
			m, err := spec.Build(SizeLite)
			if err != nil {
				t.Fatal(err)
			}
			_, err = runtime.BuildNeuroPilotOnly(m, nil, []soc.DeviceKind{soc.KindCPU, soc.KindAPU})
			if c.supported && err != nil {
				t.Errorf("should compile NeuroPilot-only, got: %v", err)
			}
			if !c.supported && err == nil {
				t.Error("should NOT compile NeuroPilot-only")
			}
		})
	}
}

// Emotion must run APU-only (paper §5.1: best on APU alone); the SSD must
// not (LOGISTIC is CPU-only).
func TestAPUOnlyMatrix(t *testing.T) {
	em, err := BuildEmotion(SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runtime.BuildNeuroPilotOnly(em, nil, []soc.DeviceKind{soc.KindAPU}); err != nil {
		t.Errorf("emotion should run APU-only: %v", err)
	}
	ssd, err := BuildMobileNetSSDQuant(SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runtime.BuildNeuroPilotOnly(ssd, nil, []soc.DeviceKind{soc.KindAPU}); err == nil {
		t.Error("SSD (LOGISTIC head) must not run APU-only")
	}
}

// The anti-spoofing model must shatter into many subgraphs (paper §5.1).
func TestAntiSpoofManySubgraphs(t *testing.T) {
	m, err := BuildDeePixBiS(SizeFull)
	if err != nil {
		t.Fatal(err)
	}
	part, err := nir.PartitionForNIR(m, passes.DefaultPartitionOptions())
	if err != nil {
		t.Fatal(err)
	}
	nRegions := len(part.ExternalFuncs("nir"))
	if nRegions < 4 {
		t.Errorf("anti-spoofing partitioned into %d regions, expected the many-subgraph pathology (>=4)", nRegions)
	}
	// Emotion, by contrast, is a single region.
	em, err := BuildEmotion(SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	partE, err := nir.PartitionForNIR(em, passes.DefaultPartitionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(partE.ExternalFuncs("nir")); n != 1 {
		t.Errorf("emotion partitioned into %d regions, want 1", n)
	}
	_ = partE
}

func TestModelDeterminism(t *testing.T) {
	a, err := BuildEmotion(SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildEmotion(SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	in := RandomInput(a, 7)
	run := func(m *relay.Module) *tensor.Tensor {
		lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: 3})
		if err != nil {
			t.Fatal(err)
		}
		gm := runtime.NewGraphModule(lib)
		gm.SetInput(gm.InputNames()[0], in)
		if err := gm.Run(); err != nil {
			t.Fatal(err)
		}
		return gm.MustOutput(0)
	}
	if !tensor.AllClose(run(a), run(b), 0, 0) {
		t.Error("two builds of the same model differ (non-deterministic weights)")
	}
}

func TestRandomInputMatchesModel(t *testing.T) {
	ssd, err := BuildMobileNetSSDQuant(SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	in := RandomInput(ssd, 3)
	if in.DType != tensor.UInt8 || in.Quant == nil {
		t.Errorf("SSD input should be quantized uint8, got %s", in)
	}
	em, err := BuildEmotion(SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	if RandomInput(em, 3).DType != tensor.Float32 {
		t.Error("emotion input should be float32")
	}
}
