package models

import (
	"fmt"

	"repro/internal/frontend/tflite"
	"repro/internal/relay"
	"repro/internal/tensor"
)

// The object-detection model (paper §4.2): a quantized MobileNet-SSD from
// TFLite. The backbone is MobileNet v1's depthwise-separable ladder
// (uint8, relu6), with SSD box/class heads on two feature-map scales whose
// outputs are reshaped, concatenated across scales, passed through LOGISTIC
// (class scores) and dequantized. LOGISTIC exists in the Neuron op set but
// not on the APU, so NeuroPilot-only APU has no statistics while CPU+APU
// runs — and the quantized convolutions exercise the §3.3 QNN flow
// end-to-end.

// SSDAnchors is the per-cell anchor count of the detection heads.
const SSDAnchors = 3

// SSDClasses is the class count (background + person).
const SSDClasses = 2

type ssdCfg struct {
	input    int
	channels []int // pointwise channel ladder; stride 2 every other block
}

func ssdConfig(size Size) ssdCfg {
	if size == SizeLite {
		return ssdCfg{input: 96, channels: []int{8, 16, 32, 64}}
	}
	return ssdCfg{input: 300, channels: []int{16, 32, 64, 128, 256, 512}}
}

// BuildMobileNetSSDQuant constructs the quantized model, serializes it into
// the tflite container and reimports it.
func BuildMobileNetSSDQuant(size Size) (*relay.Module, error) {
	cfg := ssdConfig(size)
	b := tflite.NewBuilder(0x55D0)
	inQ := &tensor.QuantParams{Scale: 1.0 / 255, ZeroPoint: 0}
	x := b.Input("normalized_input_image_tensor", []int{1, cfg.input, cfg.input, 3}, inQ)

	// Stem.
	x = b.Conv2D(x, cfg.channels[0], 3, 2, tflite.PaddingSame, tflite.ActRelu6)
	// Depthwise-separable ladder; stride 2 on every channel increase.
	var featA int = -1
	for i := 1; i < len(cfg.channels); i++ {
		x = b.DepthwiseConv2D(x, 3, 2, tflite.PaddingSame, tflite.ActRelu6)
		x = b.Conv2D(x, cfg.channels[i], 1, 1, tflite.PaddingSame, tflite.ActRelu6)
		x = b.DepthwiseConv2D(x, 3, 1, tflite.PaddingSame, tflite.ActRelu6)
		x = b.Conv2D(x, cfg.channels[i], 1, 1, tflite.PaddingSame, tflite.ActRelu6)
		if i == len(cfg.channels)-2 {
			featA = x
		}
	}
	featB := x
	if featA < 0 {
		featA = x
	}

	// SSD heads on both scales.
	headBox := func(feat int) (int, int) {
		shape := b.TensorShape(feat)
		cells := shape[1] * shape[2]
		box := b.Conv2D(feat, SSDAnchors*4, 1, 1, tflite.PaddingSame, tflite.ActNone)
		box = b.Reshape(box, []int{1, cells * SSDAnchors, 4})
		cls := b.Conv2D(feat, SSDAnchors*SSDClasses, 1, 1, tflite.PaddingSame, tflite.ActNone)
		cls = b.Reshape(cls, []int{1, cells * SSDAnchors, SSDClasses})
		return box, cls
	}
	boxA, clsA := headBox(featA)
	boxB, clsB := headBox(featB)
	boxes := b.Concat(1, boxA, boxB)
	classes := b.Concat(1, clsA, clsB)
	scores := b.Logistic(classes)

	outBoxes := b.Dequantize(boxes)
	outScores := b.Dequantize(scores)
	b.Output(outBoxes, outScores)

	blob, err := b.Bytes()
	if err != nil {
		return nil, fmt.Errorf("models: building mobilenet-ssd: %w", err)
	}
	return tflite.FromTFLite(blob)
}

func init() {
	register(Spec{
		Name:      "mobilenet ssd (quant)",
		Framework: "TFLite",
		DataType:  tensor.UInt8,
		WidthMult: 0.5,
		Build:     BuildMobileNetSSDQuant,
	})
}
