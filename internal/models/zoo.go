// Package models is the model zoo: programmatic builders for every network
// the paper uses — the three application-showcase models (§4) and the
// Figure 6 / Table 1 classifier sweep — each emitted in its source
// framework's serialized format and imported through the corresponding
// frontend, so every model exercises a real import path.
//
// Weights are synthesized deterministically (see DESIGN.md §2): inference
// *time* depends only on the architecture, and the showcase pipeline only
// needs stable, plausible activations. Architectures follow the published
// networks' block structure with a per-model width multiplier recorded in
// WidthMult (full-width inception-class models would occupy hundreds of MB
// of synthetic weights for no additional fidelity).
package models

import (
	"fmt"
	"sort"

	"repro/internal/relay"
	"repro/internal/tensor"
)

// Size selects a build preset.
type Size int

const (
	// SizeFull is the canonical architecture used for the Figure 4/6
	// experiments (static cost estimation + single verification runs).
	SizeFull Size = iota
	// SizeLite is a reduced-resolution variant used where many real
	// inferences run (the application showcase and pipeline experiments).
	SizeLite
)

// Spec describes one zoo entry.
type Spec struct {
	// Name as the paper's figures label it.
	Name string
	// Framework is the source ML framework ("PyTorch", "Keras", "TFLite",
	// "Darknet", "ONNX") — the Table 1-style provenance.
	Framework string
	// DataType is the Table 1 data type (float32 or int8/uint8).
	DataType tensor.DType
	// WidthMult records the channel-width multiplier applied to the
	// canonical architecture (1.0 = full width).
	WidthMult float64
	// Build emits the serialized artifact and imports it through the
	// frontend, returning the relay module.
	Build func(size Size) (*relay.Module, error)
}

// InputShape returns the NHWC input shape of the built module.
func InputShape(m *relay.Module) tensor.Shape {
	p := m.Main().Params[0]
	return p.TypeAnnotation.(*relay.TensorType).Shape.Clone()
}

// InputDType returns the input element type of the built module.
func InputDType(m *relay.Module) tensor.DType {
	p := m.Main().Params[0]
	return p.TypeAnnotation.(*relay.TensorType).DType
}

// InputQuant returns input quantization parameters (nil for float inputs).
func InputQuant(m *relay.Module) *tensor.QuantParams {
	p := m.Main().Params[0]
	return p.TypeAnnotation.(*relay.TensorType).Quant
}

// RandomInput synthesizes a deterministic input tensor matching the module.
func RandomInput(m *relay.Module, seed uint64) *tensor.Tensor {
	shape := InputShape(m)
	dt := InputDType(m)
	rng := tensor.NewRNG(seed)
	switch dt {
	case tensor.Float32:
		t := tensor.New(tensor.Float32, shape)
		t.FillUniform(rng, 0, 1)
		return t
	case tensor.UInt8:
		t := tensor.New(tensor.UInt8, shape)
		if q := InputQuant(m); q != nil {
			qq := *q
			t.Quant = &qq
		}
		raw := t.U8()
		for i := range raw {
			raw[i] = uint8(rng.Intn(256))
		}
		return t
	}
	panic(fmt.Sprintf("models: no input synthesizer for %s", dt))
}

var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("models: duplicate spec " + s.Name)
	}
	registry[s.Name] = s
}

// Get returns a spec by name.
func Get(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("models: unknown model %q", name)
	}
	return s, nil
}

// Names lists all registered models, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Showcase returns the three application-showcase models of Figure 4, in
// the paper's order: anti-spoofing (PyTorch), emotion (Keras), object
// detection (TFLite quantized MobileNet-SSD).
func Showcase() []Spec {
	return mustGet("anti-spoofing", "emotion", "mobilenet ssd (quant)")
}

// Figure6 returns the extended classifier sweep of Figure 6 / Table 1.
func Figure6() []Spec {
	return mustGet(
		"densenet",
		"inception resnet v2",
		"inception v3",
		"inception v4",
		"mobilenet v1",
		"mobilenet v2",
		"nasnet",
		"inception v3 (quant)",
		"mobilenet v1 (quant)",
		"mobilenet v2 (quant)",
	)
}

// Table1 returns the float32 classifier inventory exactly as Table 1 lists
// it.
func Table1() []Spec {
	return mustGet(
		"densenet",
		"inception resnet v2",
		"inception v3",
		"inception v4",
		"mobilenet v1",
		"mobilenet v2",
		"nasnet",
	)
}

func mustGet(names ...string) []Spec {
	out := make([]Spec, len(names))
	for i, n := range names {
		s, err := Get(n)
		if err != nil {
			panic(err)
		}
		out[i] = s
	}
	return out
}
