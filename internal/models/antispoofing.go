package models

import (
	"bytes"
	"fmt"

	"repro/internal/frontend/torchscript"
	"repro/internal/relay"
	"repro/internal/tensor"
)

// The face anti-spoofing model (paper §4.1): DeePixBiS — a DenseNet-style
// backbone with deep pixel-wise binary supervision. It arrives from PyTorch
// as a TorchScript trace (Listing 2) and has two outputs: a pixel-wise
// liveness map (sigmoid) and a scalar score (spatial mean of the map).
//
// Two properties of the real deployment are reproduced deliberately:
//   - the dense blocks use leaky activations, which have no Neuron IR
//     mapping, so partition_for_nir shatters the backbone into many
//     subgraphs — the paper's "large number of subgraphs" pathology that
//     makes this model the slowest of the three and pushes it to CPU+APU;
//   - the spatial-mean score head keeps the model from compiling
//     NeuroPilot-only at all (no statistics in Figure 4).
type deePixBiSCfg struct {
	input     int // square input resolution
	stem      int // stem filters
	growth    int // dense-block growth rate
	blocks    int
	layersPer int
}

func deePixBiSConfig(size Size) deePixBiSCfg {
	if size == SizeLite {
		return deePixBiSCfg{input: 64, stem: 8, growth: 8, blocks: 2, layersPer: 2}
	}
	return deePixBiSCfg{input: 224, stem: 32, growth: 24, blocks: 2, layersPer: 4}
}

// BuildDeePixBiS traces the model and reimports it through the TorchScript
// frontend (serialize → parse → import), returning the relay module.
func BuildDeePixBiS(size Size) (*relay.Module, error) {
	cfg := deePixBiSConfig(size)
	tr := torchscript.NewTracer(0xDEE9)
	x := tr.Input(1, 3, cfg.input, cfg.input)

	// Stem: conv/2 + bn + relu + maxpool/2.
	c := tr.Conv2D(x, cfg.stem, 3, 2, 1, 1)
	c = tr.BatchNorm(c)
	c = tr.ReLU(c)
	c = tr.MaxPool2D(c, 2, 2)

	// Dense blocks with channel concatenation; each layer: bn-conv3x3-leaky,
	// concatenated onto the running feature map. Transitions halve spatial
	// dims with a 1x1 conv + pool.
	for b := 0; b < cfg.blocks; b++ {
		for l := 0; l < cfg.layersPer; l++ {
			f := tr.BatchNorm(c)
			f = tr.Conv2D(f, cfg.growth, 3, 1, 1, 1)
			f = tr.LeakyReLU(f, 0.1)
			c = tr.Cat(1, c, f)
		}
		if b != cfg.blocks-1 {
			tshape := tr.Shape(c)
			c = tr.Conv2D(c, tshape[1]/2, 1, 1, 0, 1)
			c = tr.ReLU(c)
			c = tr.MaxPool2D(c, 2, 2)
		}
	}

	// Pixel-wise supervision head: 1x1 conv to a single-channel map +
	// sigmoid; binary score = spatial mean of the map.
	pix := tr.Conv2D(c, 1, 1, 1, 0, 1)
	pixmap := tr.Sigmoid(pix)
	score := tr.MeanSpatial(pixmap)
	tr.Output(pixmap, score)

	g, sd, err := tr.Trace()
	if err != nil {
		return nil, fmt.Errorf("models: tracing DeePixBiS: %w", err)
	}
	// Round-trip through the serialized artifact, as loading torch_path
	// would (Listing 2's build_model + torch.jit.trace).
	blob, err := torchscript.MarshalGraph(g)
	if err != nil {
		return nil, err
	}
	var wbuf bytes.Buffer
	if err := sd.Save(&wbuf); err != nil {
		return nil, err
	}
	g2, err := torchscript.UnmarshalGraph(blob)
	if err != nil {
		return nil, err
	}
	sd2, err := torchscript.LoadStateDict(&wbuf)
	if err != nil {
		return nil, err
	}
	return torchscript.FromTorch(g2, sd2)
}

func init() {
	register(Spec{
		Name:      "anti-spoofing",
		Framework: "PyTorch",
		DataType:  tensor.Float32,
		WidthMult: 0.25, // growth/stem reduced vs DenseNet-161's 48/96
		Build:     BuildDeePixBiS,
	})
}
