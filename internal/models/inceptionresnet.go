package models

import (
	"fmt"

	"repro/internal/frontend/onnx"
	"repro/internal/relay"
	"repro/internal/tensor"
)

// Inception-ResNet v2 arrives through the ONNX frontend (the MXNet export
// path): inception-style multi-branch blocks whose concatenated output is
// projected by a 1×1 convolution and added residually to the block input.

// onnxBuilder is a small authoring helper over the onnx proto types.
type onnxBuilder struct {
	mp   onnx.ModelProto
	rng  *tensor.RNG
	next int
	// channels tracks NCHW channel counts per value for weight sizing.
	channels map[string]int
	err      error
}

func newOnnxBuilder(name string, seed uint64) *onnxBuilder {
	b := &onnxBuilder{rng: tensor.NewRNG(seed), channels: map[string]int{}}
	b.mp.IRVersion = 7
	b.mp.ProducerName = "mxnet-onnx-export"
	b.mp.Graph.Name = name
	return b
}

func (b *onnxBuilder) fresh(prefix string) string {
	b.next++
	return fmt.Sprintf("%s_%d", prefix, b.next-1)
}

func (b *onnxBuilder) fail(format string, args ...interface{}) string {
	if b.err == nil {
		b.err = fmt.Errorf("onnx build: "+format, args...)
	}
	return ""
}

func (b *onnxBuilder) initializer(name string, t *tensor.Tensor) {
	ip, err := onnx.EncodeInitializer(name, t)
	if err != nil {
		b.err = err
		return
	}
	b.mp.Graph.Initializer = append(b.mp.Graph.Initializer, ip)
	b.mp.Graph.Input = append(b.mp.Graph.Input, onnx.ValueInfoProto{Name: name})
}

func (b *onnxBuilder) input(n, c, h, w int) string {
	name := "data"
	b.mp.Graph.Input = append(b.mp.Graph.Input,
		onnx.ValueInfoProto{Name: name, Shape: []int{n, c, h, w}, DType: "float32"})
	b.channels[name] = c
	return name
}

func (b *onnxBuilder) node(opType, out string, inputs []string, attrs map[string]interface{}) string {
	b.mp.Graph.Node = append(b.mp.Graph.Node, onnx.NodeProto{
		OpType: opType, Input: inputs, Output: []string{out}, Attribute: attrs,
	})
	return out
}

func (b *onnxBuilder) conv(x string, filters, kernel, stride, pad int) string {
	inC, ok := b.channels[x]
	if !ok {
		return b.fail("conv input %q unknown", x)
	}
	w := tensor.New(tensor.Float32, tensor.Shape{filters, inC, kernel, kernel})
	w.FillGlorot(b.rng, inC*kernel*kernel, filters)
	wName := b.fresh("w")
	b.initializer(wName, w)
	bName := b.fresh("b")
	b.initializer(bName, tensor.New(tensor.Float32, tensor.Shape{filters}))
	out := b.fresh("conv")
	b.node("Conv", out, []string{x, wName, bName}, map[string]interface{}{
		"strides": []interface{}{float64(stride), float64(stride)},
		"pads":    []interface{}{float64(pad), float64(pad), float64(pad), float64(pad)},
	})
	b.channels[out] = filters
	return out
}

func (b *onnxBuilder) relu(x string) string {
	out := b.fresh("relu")
	b.node("Relu", out, []string{x}, nil)
	b.channels[out] = b.channels[x]
	return out
}

func (b *onnxBuilder) add(x, y string) string {
	out := b.fresh("add")
	b.node("Add", out, []string{x, y}, nil)
	b.channels[out] = b.channels[x]
	return out
}

func (b *onnxBuilder) concat(xs ...string) string {
	out := b.fresh("concat")
	b.node("Concat", out, xs, map[string]interface{}{"axis": float64(1)})
	total := 0
	for _, x := range xs {
		total += b.channels[x]
	}
	b.channels[out] = total
	return out
}

func (b *onnxBuilder) maxPool(x string, k, s int) string {
	out := b.fresh("pool")
	b.node("MaxPool", out, []string{x}, map[string]interface{}{
		"kernel_shape": []interface{}{float64(k), float64(k)},
		"strides":      []interface{}{float64(s), float64(s)},
	})
	b.channels[out] = b.channels[x]
	return out
}

func (b *onnxBuilder) globalAvgPool(x string) string {
	out := b.fresh("gap")
	b.node("GlobalAveragePool", out, []string{x}, nil)
	b.channels[out] = b.channels[x]
	return out
}

func (b *onnxBuilder) flatten(x string) string {
	out := b.fresh("flat")
	b.node("Flatten", out, []string{x}, nil)
	b.channels[out] = b.channels[x]
	return out
}

func (b *onnxBuilder) gemm(x string, units, inFeatures int) string {
	w := tensor.New(tensor.Float32, tensor.Shape{units, inFeatures})
	w.FillGlorot(b.rng, inFeatures, units)
	wName := b.fresh("fcw")
	b.initializer(wName, w)
	bName := b.fresh("fcb")
	b.initializer(bName, tensor.New(tensor.Float32, tensor.Shape{units}))
	out := b.fresh("gemm")
	b.node("Gemm", out, []string{x, wName, bName}, map[string]interface{}{"transB": float64(1)})
	b.channels[out] = units
	return out
}

func (b *onnxBuilder) softmax(x string) string {
	out := b.fresh("prob")
	b.node("Softmax", out, []string{x}, nil)
	b.channels[out] = b.channels[x]
	return out
}

func (b *onnxBuilder) finish(outputs ...string) (*relay.Module, error) {
	if b.err != nil {
		return nil, b.err
	}
	b.mp.Graph.Output = outputs
	blob, err := onnx.Marshal(&b.mp)
	if err != nil {
		return nil, err
	}
	return onnx.FromONNX(blob)
}

// BuildInceptionResNetV2 builds the Inception-ResNet-v2-structured
// classifier (width 0.25): stem, three stages of residual inception blocks
// with reductions, global pool head. Fully Neuron-supported.
func BuildInceptionResNetV2(size Size) (*relay.Module, error) {
	input, w := 299, 16
	blocksA, blocksB, blocksC := 4, 8, 4 // 5/10/5 in the full network
	if size == SizeLite {
		input, w = 96, 8
		blocksA, blocksB, blocksC = 1, 2, 1
	}
	b := newOnnxBuilder("inception_resnet_v2", 0x1BE2)
	x := b.input(1, 3, input, input)

	// Stem.
	x = b.relu(b.conv(x, 2*w, 3, 2, 1))
	x = b.relu(b.conv(x, 2*w, 3, 1, 1))
	x = b.maxPool(x, 3, 2)
	x = b.relu(b.conv(x, 4*w, 3, 1, 1))
	x = b.maxPool(x, 3, 2)

	// Residual inception block: branches → concat → 1x1 projection → add.
	resBlock := func(x string, branchW int) string {
		c := b.channels[x]
		b1 := b.relu(b.conv(x, branchW, 1, 1, 0))
		b2 := b.relu(b.conv(x, branchW, 1, 1, 0))
		b2 = b.relu(b.conv(b2, branchW, 3, 1, 1))
		b3 := b.relu(b.conv(x, branchW, 1, 1, 0))
		b3 = b.relu(b.conv(b3, branchW, 3, 1, 1))
		b3 = b.relu(b.conv(b3, branchW, 3, 1, 1))
		mixed := b.concat(b1, b2, b3)
		proj := b.conv(mixed, c, 1, 1, 0) // linear projection back to c
		return b.relu(b.add(x, proj))
	}
	reduce := func(x string, outW int) string {
		// Both branches use VALID 3/2 windows so their spatial dims agree.
		b1 := b.relu(b.conv(x, outW, 3, 2, 0))
		b2 := b.maxPool(x, 3, 2)
		return b.concat(b1, b2)
	}

	for i := 0; i < blocksA; i++ {
		x = resBlock(x, w)
	}
	x = reduce(x, 4*w)
	for i := 0; i < blocksB; i++ {
		x = resBlock(x, 2*w)
	}
	x = reduce(x, 8*w)
	for i := 0; i < blocksC; i++ {
		x = resBlock(x, 2*w)
	}

	x = b.globalAvgPool(x)
	feat := b.channels[x]
	x = b.flatten(x)
	x = b.gemm(x, 1000, feat)
	x = b.softmax(x)
	return b.finish(x)
}

func init() {
	register(Spec{
		Name: "inception resnet v2", Framework: "ONNX", DataType: tensor.Float32,
		WidthMult: 0.25, Build: BuildInceptionResNetV2,
	})
}
