package models

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/frontend/darknet"
	"repro/internal/relay"
	"repro/internal/tensor"
)

// YOLOv3 (paper §4.2, Listing 3): the Darknet object detector the showcase
// uses on the server side before switching to the smaller MobileNet-SSD for
// mobile deployment. The .cfg is generated programmatically with the
// Darknet-53 residual backbone structure (width-scaled) and three detection
// heads fed through route/upsample, then synthetic .weights are emitted in
// the real darknet binary layout and both are parsed by the frontend.

// yoloCfg generates a YOLOv3-style .cfg at the given base width.
func yoloCfg(input, base int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[net]\nwidth=%d\nheight=%d\nchannels=3\n\n", input, input)
	conv := func(filters, size, stride int, bn bool, act string) {
		b.WriteString("[convolutional]\n")
		if bn {
			b.WriteString("batch_normalize=1\n")
		}
		fmt.Fprintf(&b, "filters=%d\nsize=%d\nstride=%d\npad=1\nactivation=%s\n\n",
			filters, size, stride, act)
	}
	residual := func(filters int, repeats int) {
		for i := 0; i < repeats; i++ {
			conv(filters/2, 1, 1, true, "leaky")
			conv(filters, 3, 1, true, "leaky")
			b.WriteString("[shortcut]\nfrom=-3\nactivation=linear\n\n")
		}
	}
	// Darknet-53 backbone (width-scaled).
	conv(base, 3, 1, true, "leaky")
	conv(base*2, 3, 2, true, "leaky")
	residual(base*2, 1)
	conv(base*4, 3, 2, true, "leaky")
	residual(base*4, 2)
	conv(base*8, 3, 2, true, "leaky")
	residual(base*8, 4) // 8 in the full network
	conv(base*16, 3, 2, true, "leaky")
	residual(base*16, 4)
	conv(base*32, 3, 2, true, "leaky")
	residual(base*32, 2)
	// Head 1 (stride 32).
	conv(base*16, 1, 1, true, "leaky")
	conv(base*32, 3, 1, true, "leaky")
	conv(3*(5+80), 1, 1, false, "linear")
	b.WriteString("[yolo]\nmask=6,7,8\nanchors=10,13, 16,30, 33,23, 30,61, 62,45, 59,119, 116,90, 156,198, 373,326\nclasses=80\nnum=9\n\n")
	// Head 2 (stride 16): route back, upsample, merge.
	b.WriteString("[route]\nlayers=-4\n\n")
	conv(base*8, 1, 1, true, "leaky")
	b.WriteString("[upsample]\nstride=2\n\n")
	// Merge with the last stride-16 feature map (end of the base*16
	// residual stage, 15 layers back from this route).
	b.WriteString("[route]\nlayers=-1,-15\n\n")
	conv(base*16, 3, 1, true, "leaky")
	conv(3*(5+80), 1, 1, false, "linear")
	b.WriteString("[yolo]\nmask=3,4,5\nanchors=10,13, 16,30, 33,23, 30,61, 62,45, 59,119, 116,90, 156,198, 373,326\nclasses=80\nnum=9\n")
	return b.String()
}

// yoloTinyCfg generates a YOLOv3-tiny-style .cfg.
func yoloTinyCfg(input, base int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[net]\nwidth=%d\nheight=%d\nchannels=3\n\n", input, input)
	conv := func(filters, size, stride int, bn bool, act string) {
		b.WriteString("[convolutional]\n")
		if bn {
			b.WriteString("batch_normalize=1\n")
		}
		fmt.Fprintf(&b, "filters=%d\nsize=%d\nstride=%d\npad=1\nactivation=%s\n\n",
			filters, size, stride, act)
	}
	pool := func(size, stride int) {
		fmt.Fprintf(&b, "[maxpool]\nsize=%d\nstride=%d\n\n", size, stride)
	}
	f := base
	for i := 0; i < 5; i++ {
		conv(f, 3, 1, true, "leaky")
		pool(2, 2)
		f *= 2
	}
	conv(f, 3, 1, true, "leaky")
	conv(f/2, 1, 1, true, "leaky")
	conv(f, 3, 1, true, "leaky")
	conv(3*(5+80), 1, 1, false, "linear")
	b.WriteString("[yolo]\nmask=3,4,5\nanchors=10,14, 23,27, 37,58, 81,82, 135,169, 344,319\nclasses=80\nnum=6\n\n")
	b.WriteString("[route]\nlayers=-4\n\n")
	conv(f/4, 1, 1, true, "leaky")
	b.WriteString("[upsample]\nstride=2\n\n")
	// Merge with the stride-16 backbone feature (absolute layer 8).
	b.WriteString("[route]\nlayers=-1,8\n\n")
	conv(f/2, 3, 1, true, "leaky")
	conv(3*(5+80), 1, 1, false, "linear")
	b.WriteString("[yolo]\nmask=0,1,2\nanchors=10,14, 23,27, 37,58, 81,82, 135,169, 344,319\nclasses=80\nnum=6\n")
	return b.String()
}

// BuildYOLOv3 generates the cfg + weights pair and imports it through the
// Darknet frontend. Full = width-scaled Darknet-53 YOLOv3 at 416²; Lite =
// YOLOv3-tiny structure at 224².
func BuildYOLOv3(size Size) (*relay.Module, error) {
	var cfg string
	if size == SizeLite {
		cfg = yoloTinyCfg(224, 8)
	} else {
		cfg = yoloCfg(416, 8)
	}
	var weights bytes.Buffer
	if err := darknet.SynthesizeWeights(cfg, 0x9010, &weights); err != nil {
		return nil, fmt.Errorf("models: synthesizing yolo weights: %w", err)
	}
	return darknet.FromDarknet(cfg, &weights)
}

func init() {
	register(Spec{
		Name:      "yolov3",
		Framework: "Darknet",
		DataType:  tensor.Float32,
		WidthMult: 0.25,
		Build:     BuildYOLOv3,
	})
}
