package models

import (
	"repro/internal/frontend/tflite"
	"repro/internal/frontend/torchscript"
	"repro/internal/relay"
	"repro/internal/tensor"
)

// The Figure 6 / Table 1 classifier sweep. Each architecture follows the
// published network's block structure at a width multiplier recorded in its
// Spec (the canonical widths would synthesize hundreds of MB of weights for
// identical relative-cost behaviour). Input resolutions are canonical:
// 224² for densenet/mobilenet/nasnet, 299² for the inception family.

// ---------------------------------------------------------------- densenet

// BuildDenseNet builds a DenseNet-121-structured classifier (torchscript,
// width 0.5: growth 16, stem 32). Fully Neuron-supported, so it has
// NeuroPilot-only statistics.
func BuildDenseNet(size Size) (*relay.Module, error) {
	input, stem, growth := 224, 32, 16
	blocks := []int{6, 12, 24, 16}
	if size == SizeLite {
		input, stem, growth = 64, 16, 8
		blocks = []int{2, 4, 4, 2}
	}
	tr := torchscript.NewTracer(0xD125)
	x := tr.Input(1, 3, input, input)
	c := tr.Conv2D(x, stem, 7, 2, 3, 1)
	c = tr.BatchNorm(c)
	c = tr.ReLU(c)
	c = tr.MaxPool2D(c, 2, 2)
	channels := stem
	for bi, layers := range blocks {
		for l := 0; l < layers; l++ {
			f := tr.BatchNorm(c)
			f = tr.ReLU(f)
			f = tr.Conv2D(f, 4*growth, 1, 1, 0, 1) // bottleneck
			f = tr.BatchNorm(f)
			f = tr.ReLU(f)
			f = tr.Conv2D(f, growth, 3, 1, 1, 1)
			c = tr.Cat(1, c, f)
			channels += growth
		}
		if bi != len(blocks)-1 {
			c = tr.BatchNorm(c)
			c = tr.ReLU(c)
			channels /= 2
			c = tr.Conv2D(c, channels, 1, 1, 0, 1)
			c = tr.MaxPool2D(c, 2, 2)
		}
	}
	c = tr.BatchNorm(c)
	c = tr.ReLU(c)
	c = tr.AdaptiveAvgPool2D1x1(c)
	c = tr.Flatten(c)
	c = tr.Linear(c, 1000)
	c = tr.Softmax(c, 1)
	tr.Output(c)
	return traceToModule(tr)
}

// ------------------------------------------------------------------ nasnet

// BuildNASNet builds a NASNet-A-flavored classifier (torchscript): stacked
// normal cells (separable-conv branches + skip, concatenated) with
// reduction cells between stages. Its head uses a spatial mean, which has no
// Neuron mapping — one of the Figure 6 models with empty NeuroPilot-only
// bars.
func BuildNASNet(size Size) (*relay.Module, error) {
	input, stem, cells := 224, 22, 4
	if size == SizeLite {
		input, stem, cells = 64, 8, 2
	}
	tr := torchscript.NewTracer(0x9A59)
	x := tr.Input(1, 3, input, input)
	c := tr.Conv2D(x, stem, 3, 2, 1, 1)
	c = tr.BatchNorm(c)

	sep := func(in string, ch, kernel, stride int) string {
		shape := tr.Shape(in)
		dw := tr.Conv2D(in, shape[1], kernel, stride, kernel/2, shape[1]) // depthwise
		pw := tr.Conv2D(dw, ch, 1, 1, 0, 1)
		b := tr.BatchNorm(pw)
		return tr.ReLU(b)
	}
	normalCell := func(in string, ch int) string {
		b1 := sep(in, ch, 3, 1)
		b2 := sep(in, ch, 5, 1)
		b3 := tr.Conv2D(in, ch, 1, 1, 0, 1)
		return tr.Cat(1, b1, b2, b3)
	}
	reductionCell := func(in string, ch int) string {
		b1 := sep(in, ch, 3, 2)
		b2 := sep(in, ch, 5, 2)
		b3 := tr.MaxPool2D(in, 2, 2)
		return tr.Cat(1, b1, b2, b3)
	}
	ch := stem
	for stage := 0; stage < 3; stage++ {
		for i := 0; i < cells; i++ {
			c = normalCell(c, ch)
		}
		if stage != 2 {
			ch *= 2
			c = reductionCell(c, ch)
		}
	}
	c = tr.ReLU(c)
	c = tr.MeanSpatial(c) // aten::mean → relay mean: outside the Neuron set
	c = tr.Linear(c, 1000)
	c = tr.Softmax(c, 1)
	tr.Output(c)
	return traceToModule(tr)
}

func traceToModule(tr *torchscript.Tracer) (*relay.Module, error) {
	g, sd, err := tr.Trace()
	if err != nil {
		return nil, err
	}
	blob, err := torchscript.MarshalGraph(g)
	if err != nil {
		return nil, err
	}
	g2, err := torchscript.UnmarshalGraph(blob)
	if err != nil {
		return nil, err
	}
	return torchscript.FromTorch(g2, sd)
}

// ----------------------------------------------------------- mobilenet v1/v2

// buildMobileNetV1 emits the 13-layer depthwise-separable ladder (tflite,
// width 0.5), float or quantized.
func buildMobileNetV1(size Size, quant bool) (*relay.Module, error) {
	input := 224
	ladder := []struct{ ch, stride int }{
		{32, 1}, {64, 2}, {64, 1}, {128, 2}, {128, 1}, {256, 2},
		{256, 1}, {256, 1}, {256, 1}, {256, 1}, {256, 1}, {512, 2}, {512, 1},
	}
	if size == SizeLite {
		input = 96
		ladder = ladder[:6]
	}
	seed := uint64(0x3B11)
	if quant {
		seed = 0x3B1C
	}
	b := tflite.NewBuilder(seed)
	var inQ *tensor.QuantParams
	if quant {
		inQ = &tensor.QuantParams{Scale: 1.0 / 255, ZeroPoint: 0}
	}
	x := b.Input("input", []int{1, input, input, 3}, inQ)
	x = b.Conv2D(x, 16, 3, 2, tflite.PaddingSame, tflite.ActRelu6)
	for _, l := range ladder {
		x = b.DepthwiseConv2D(x, 3, l.stride, tflite.PaddingSame, tflite.ActRelu6)
		x = b.Conv2D(x, l.ch, 1, 1, tflite.PaddingSame, tflite.ActRelu6)
	}
	x = b.MeanSpatial(x)
	x = b.FullyConnected(x, 1000, tflite.ActNone)
	x = b.Softmax(x)
	if quant {
		x = b.Dequantize(x)
	}
	b.Output(x)
	return builderToModule(b)
}

// buildMobileNetV2 emits inverted residual bottlenecks (tflite, width 0.5).
func buildMobileNetV2(size Size, quant bool) (*relay.Module, error) {
	input := 224
	// (expansion t, channels c, repeats n, stride s) per the paper's table,
	// at width 0.5.
	stages := []struct{ t, c, n, s int }{
		{1, 8, 1, 1}, {6, 12, 2, 2}, {6, 16, 3, 2}, {6, 32, 4, 2},
		{6, 48, 3, 1}, {6, 80, 3, 2}, {6, 160, 1, 1},
	}
	if size == SizeLite {
		input = 96
		stages = stages[:4]
	}
	seed := uint64(0x3B21)
	if quant {
		seed = 0x3B2C
	}
	b := tflite.NewBuilder(seed)
	var inQ *tensor.QuantParams
	if quant {
		inQ = &tensor.QuantParams{Scale: 1.0 / 255, ZeroPoint: 0}
	}
	x := b.Input("input", []int{1, input, input, 3}, inQ)
	x = b.Conv2D(x, 16, 3, 2, tflite.PaddingSame, tflite.ActRelu6)
	inC := 16
	for _, st := range stages {
		for i := 0; i < st.n; i++ {
			stride := 1
			if i == 0 {
				stride = st.s
			}
			in := x
			h := x
			if st.t != 1 {
				h = b.Conv2D(h, inC*st.t, 1, 1, tflite.PaddingSame, tflite.ActRelu6)
			}
			h = b.DepthwiseConv2D(h, 3, stride, tflite.PaddingSame, tflite.ActRelu6)
			h = b.Conv2D(h, st.c, 1, 1, tflite.PaddingSame, tflite.ActNone) // linear bottleneck
			if stride == 1 && inC == st.c {
				h = b.Add(in, h)
			}
			x = h
			inC = st.c
		}
	}
	x = b.Conv2D(x, 320, 1, 1, tflite.PaddingSame, tflite.ActRelu6)
	x = b.MeanSpatial(x)
	x = b.FullyConnected(x, 1000, tflite.ActNone)
	x = b.Softmax(x)
	if quant {
		x = b.Dequantize(x)
	}
	b.Output(x)
	return builderToModule(b)
}

func builderToModule(b *tflite.Builder) (*relay.Module, error) {
	blob, err := b.Bytes()
	if err != nil {
		return nil, err
	}
	return tflite.FromTFLite(blob)
}

// ------------------------------------------------------------ inception v3/v4

// inceptionStem: conv/2, conv, conv SAME, pool/2, conv, conv/2.
func inceptionStem(b *tflite.Builder, x int, w int) int {
	x = b.Conv2D(x, w, 3, 2, tflite.PaddingValid, tflite.ActRelu)
	x = b.Conv2D(x, w, 3, 1, tflite.PaddingValid, tflite.ActRelu)
	x = b.Conv2D(x, 2*w, 3, 1, tflite.PaddingSame, tflite.ActRelu)
	x = b.Pool(tflite.OpMaxPool2D, x, 3, 2)
	x = b.Conv2D(x, 2*w, 1, 1, tflite.PaddingSame, tflite.ActRelu)
	x = b.Conv2D(x, 4*w, 3, 2, tflite.PaddingValid, tflite.ActRelu)
	return x
}

// inceptionA: the classic 4-branch mixed block (1x1 | 1x1-3x3 | 1x1-3x3-3x3
// | avgpool-1x1), channels scaled by w.
func inceptionA(b *tflite.Builder, x int, w int) int {
	b1 := b.Conv2D(x, 2*w, 1, 1, tflite.PaddingSame, tflite.ActRelu)
	b2 := b.Conv2D(x, w, 1, 1, tflite.PaddingSame, tflite.ActRelu)
	b2 = b.Conv2D(b2, 2*w, 3, 1, tflite.PaddingSame, tflite.ActRelu)
	b3 := b.Conv2D(x, w, 1, 1, tflite.PaddingSame, tflite.ActRelu)
	b3 = b.Conv2D(b3, 2*w, 3, 1, tflite.PaddingSame, tflite.ActRelu)
	b3 = b.Conv2D(b3, 2*w, 3, 1, tflite.PaddingSame, tflite.ActRelu)
	b4 := b.PoolPadded(tflite.OpAveragePool2D, x, 3, 1, tflite.PaddingSame)
	b4 = b.Conv2D(b4, w, 1, 1, tflite.PaddingSame, tflite.ActRelu)
	return b.Concat(3, b1, b2, b3, b4)
}

// inceptionReduce: stride-2 branch pair + maxpool.
func inceptionReduce(b *tflite.Builder, x int, w int) int {
	b1 := b.Conv2D(x, 2*w, 3, 2, tflite.PaddingValid, tflite.ActRelu)
	b2 := b.Conv2D(x, w, 1, 1, tflite.PaddingSame, tflite.ActRelu)
	b2 = b.Conv2D(b2, 2*w, 3, 2, tflite.PaddingValid, tflite.ActRelu)
	b3 := b.Pool(tflite.OpMaxPool2D, x, 3, 2)
	return b.Concat(3, b1, b2, b3)
}

// buildInception emits an Inception-v3/v4-structured classifier. v4 differs
// by deeper stacks of mixed blocks. The factorized 7×7 branches of the
// original are represented by 3×3 pairs (same reduction structure).
func buildInception(version int, size Size, quant bool) (*relay.Module, error) {
	input, w := 299, 16
	blocksA, blocksB, blocksC := 3, 4, 2
	if version == 4 {
		blocksA, blocksB, blocksC = 4, 7, 3
	}
	if size == SizeLite {
		input, w = 96, 8
		blocksA, blocksB, blocksC = 1, 1, 1
	}
	seed := uint64(0x14C0 + uint64(version))
	if quant {
		seed += 0xC
	}
	b := tflite.NewBuilder(seed)
	var inQ *tensor.QuantParams
	if quant {
		inQ = &tensor.QuantParams{Scale: 1.0 / 255, ZeroPoint: 0}
	}
	x := b.Input("input", []int{1, input, input, 3}, inQ)
	x = inceptionStem(b, x, w)
	for i := 0; i < blocksA; i++ {
		x = inceptionA(b, x, w)
	}
	x = inceptionReduce(b, x, 2*w)
	for i := 0; i < blocksB; i++ {
		x = inceptionA(b, x, 2*w)
	}
	x = inceptionReduce(b, x, 4*w)
	for i := 0; i < blocksC; i++ {
		x = inceptionA(b, x, 4*w)
	}
	x = b.MeanSpatial(x)
	x = b.FullyConnected(x, 1000, tflite.ActNone)
	x = b.Softmax(x)
	if quant {
		x = b.Dequantize(x)
	}
	b.Output(x)
	return builderToModule(b)
}

func init() {
	register(Spec{
		Name: "densenet", Framework: "PyTorch", DataType: tensor.Float32,
		WidthMult: 0.5, Build: BuildDenseNet,
	})
	register(Spec{
		Name: "nasnet", Framework: "PyTorch", DataType: tensor.Float32,
		WidthMult: 0.5, Build: BuildNASNet,
	})
	register(Spec{
		Name: "mobilenet v1", Framework: "TFLite", DataType: tensor.Float32,
		WidthMult: 0.5,
		Build:     func(s Size) (*relay.Module, error) { return buildMobileNetV1(s, false) },
	})
	register(Spec{
		Name: "mobilenet v2", Framework: "TFLite", DataType: tensor.Float32,
		WidthMult: 0.5,
		Build:     func(s Size) (*relay.Module, error) { return buildMobileNetV2(s, false) },
	})
	register(Spec{
		Name: "mobilenet v1 (quant)", Framework: "TFLite", DataType: tensor.UInt8,
		WidthMult: 0.5,
		Build:     func(s Size) (*relay.Module, error) { return buildMobileNetV1(s, true) },
	})
	register(Spec{
		Name: "mobilenet v2 (quant)", Framework: "TFLite", DataType: tensor.UInt8,
		WidthMult: 0.5,
		Build:     func(s Size) (*relay.Module, error) { return buildMobileNetV2(s, true) },
	})
	register(Spec{
		Name: "inception v3", Framework: "TFLite", DataType: tensor.Float32,
		WidthMult: 0.25,
		Build:     func(s Size) (*relay.Module, error) { return buildInception(3, s, false) },
	})
	register(Spec{
		Name: "inception v4", Framework: "TFLite", DataType: tensor.Float32,
		WidthMult: 0.25,
		Build:     func(s Size) (*relay.Module, error) { return buildInception(4, s, false) },
	})
	register(Spec{
		Name: "inception v3 (quant)", Framework: "TFLite", DataType: tensor.UInt8,
		WidthMult: 0.25,
		Build:     func(s Size) (*relay.Module, error) { return buildInception(3, s, true) },
	})
}
