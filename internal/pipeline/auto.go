package pipeline

import (
	"fmt"
	"sort"

	"repro/internal/soc"
)

// Automatic pipeline scheduling — the algorithm the paper's conclusion
// announces as under development ("we are currently developing the
// algorithm for automatically pipeline scheduling of different models").
//
// Each stage has a set of candidate targets (a device set plus the stage's
// measured duration on that target, from §5.1 profiling). The scheduler
// enumerates every assignment, simulates the pipelined execution under
// exclusive resources, and returns the assignment with the smallest
// makespan — automatically discovering trade-offs like the paper's manual
// one (a stage accepting a slower solo target to unlock overlap).

// TargetOption is one candidate execution target for a stage.
type TargetOption struct {
	// Name identifies the target ("BYOC cpu", "NP-only apu", ...).
	Name string
	// Devices the stage would occupy exclusively.
	Devices []soc.DeviceKind
	// Duration per frame on this target.
	Duration soc.Seconds
}

// StageOptions lists the feasible targets of one stage (targets where the
// model has no statistics are simply not listed).
type StageOptions struct {
	Stage   Stage
	Options []TargetOption
}

// AutoResult is the outcome of the automatic search.
type AutoResult struct {
	// Chosen target name per stage.
	Choice map[Stage]string
	// Plan is the winning assignment.
	Plan Plan
	// Result is its sequential/pipelined comparison.
	Result Result
	// Evaluated is the number of assignments simulated.
	Evaluated int
}

// AutoSchedule exhaustively searches stage-target assignments for the best
// pipelined makespan over the given frame count. The search space is
// |detect| × |spoof| × |emotion|, small by construction (≤ 7³).
func AutoSchedule(detect, spoof, emotion StageOptions, frames int) (*AutoResult, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("pipeline: AutoSchedule needs frames > 0")
	}
	for _, so := range []StageOptions{detect, spoof, emotion} {
		if len(so.Options) == 0 {
			return nil, fmt.Errorf("pipeline: stage %s has no feasible targets", so.Stage)
		}
	}
	var best *AutoResult
	evaluated := 0
	for _, d := range detect.Options {
		for _, s := range spoof.Options {
			for _, e := range emotion.Options {
				plan := Plan{
					Detect:  StagePlan{Devices: d.Devices, Duration: d.Duration},
					Spoof:   StagePlan{Devices: s.Devices, Duration: s.Duration},
					Emotion: StagePlan{Devices: e.Devices, Duration: e.Duration},
				}
				res, err := Compare(plan, frames)
				if err != nil {
					return nil, err
				}
				evaluated++
				cand := &AutoResult{
					Choice: map[Stage]string{
						StageDetect:  d.Name,
						StageSpoof:   s.Name,
						StageEmotion: e.Name,
					},
					Plan:   plan,
					Result: res,
				}
				if best == nil || betterThan(cand, best) {
					best = cand
				}
			}
		}
	}
	best.Evaluated = evaluated
	return best, nil
}

// betterThan prefers the smaller pipelined makespan, breaking ties by the
// smaller sequential time (less total work) and then by name for
// determinism.
func betterThan(a, b *AutoResult) bool {
	if a.Result.Pipelined != b.Result.Pipelined {
		return a.Result.Pipelined < b.Result.Pipelined
	}
	if a.Result.Sequential != b.Result.Sequential {
		return a.Result.Sequential < b.Result.Sequential
	}
	return choiceKey(a) < choiceKey(b)
}

func choiceKey(r *AutoResult) string {
	keys := make([]string, 0, len(r.Choice))
	for s, n := range r.Choice {
		keys = append(keys, fmt.Sprintf("%d=%s", int(s), n))
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}
