package pipeline

import (
	"fmt"
	"sort"

	"repro/internal/soc"
)

// Automatic pipeline scheduling — the algorithm the paper's conclusion
// announces as under development ("we are currently developing the
// algorithm for automatically pipeline scheduling of different models").
//
// Each stage has a set of candidate targets (a device set plus the stage's
// measured duration on that target, from §5.1 profiling). The scheduler
// enumerates every assignment, simulates the pipelined execution under
// exclusive resources, and returns the assignment with the smallest
// makespan — automatically discovering trade-offs like the paper's manual
// one (a stage accepting a slower solo target to unlock overlap).

// TargetOption is one candidate execution target for a stage.
type TargetOption struct {
	// Name identifies the target ("BYOC cpu", "NP-only apu", ...).
	Name string
	// Devices the stage would occupy exclusively.
	Devices []soc.DeviceKind
	// Duration per frame on this target.
	Duration soc.Seconds
}

// StageOptions lists the feasible targets of one stage (targets where the
// model has no statistics are simply not listed).
type StageOptions struct {
	Stage   Stage
	Options []TargetOption
}

// AutoResult is the outcome of the automatic search.
type AutoResult struct {
	// Chosen target name per stage.
	Choice map[Stage]string
	// Plan is the winning assignment.
	Plan Plan
	// Result is its sequential/pipelined comparison.
	Result Result
	// Evaluated is the number of assignments simulated.
	Evaluated int
}

// AutoSchedule searches stage-target assignments for the best pipelined
// makespan over the given frame count. It is the fixed 3-stage front end of
// SearchSchedule (search.go): the showcase space is |detect| × |spoof| ×
// |emotion| ≤ 7³, far under the exhaustive limit, so the search stays the
// provably-optimal full enumeration with the same deterministic tie-breaks
// as the original enumerator.
func AutoSchedule(detect, spoof, emotion StageOptions, frames int) (*AutoResult, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("pipeline: AutoSchedule needs frames > 0")
	}
	stages := []StageSpec{
		{Name: StageDetect.String(), Label: "d", Options: detect.Options},
		{Name: StageSpoof.String(), Label: "s", Options: spoof.Options},
		{Name: StageEmotion.String(), Label: "e", Options: emotion.Options},
	}
	sr, err := SearchSchedule(stages, SearchOptions{Frames: frames})
	if err != nil {
		// Map the generic no-targets error back to the stage enum wording.
		for _, so := range []StageOptions{detect, spoof, emotion} {
			if len(so.Options) == 0 {
				return nil, fmt.Errorf("pipeline: stage %s has no feasible targets", so.Stage)
			}
		}
		return nil, err
	}
	plan := Plan{Detect: sr.Plans[0], Spoof: sr.Plans[1], Emotion: sr.Plans[2]}
	res, err := Compare(plan, frames)
	if err != nil {
		return nil, err
	}
	return &AutoResult{
		Choice: map[Stage]string{
			StageDetect:  sr.Choice[0],
			StageSpoof:   sr.Choice[1],
			StageEmotion: sr.Choice[2],
		},
		Plan:      plan,
		Result:    res,
		Evaluated: sr.Evaluated,
	}, nil
}

// betterThan is the assignment comparator: smaller pipelined makespan, ties
// broken by the smaller sequential time (less total work) and then by
// choice key for determinism. SearchSchedule's internal comparator mirrors
// it exactly; this form is kept for result post-processing and the
// equivalence tests.
func betterThan(a, b *AutoResult) bool {
	if a.Result.Pipelined != b.Result.Pipelined {
		return a.Result.Pipelined < b.Result.Pipelined
	}
	if a.Result.Sequential != b.Result.Sequential {
		return a.Result.Sequential < b.Result.Sequential
	}
	return choiceKey(a) < choiceKey(b)
}

func choiceKey(r *AutoResult) string {
	keys := make([]string, 0, len(r.Choice))
	for s, n := range r.Choice {
		keys = append(keys, fmt.Sprintf("%d=%s", int(s), n))
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}
