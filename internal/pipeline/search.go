package pipeline

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/soc"
)

// Cost-model-driven placement search. The paper enumerates seven target
// permutations per model (§5) and AutoSchedule enumerated the full cross
// product of stage targets; that stops scaling the moment stages multiply
// (N-stage pipelines, per-region device assignments). SearchSchedule keeps
// the exhaustive enumeration for small spaces — where it is provably optimal
// and bit-compatible with the old search — and switches to a beam search
// over per-stage assignments for large ones, ranking partial assignments by
// the simulated makespan of the scheduled prefix. Both paths use the same
// simulated-soc cost model (ScheduleStages) as the enumerator they replace.

// StageSpec is one stage of an N-stage pipeline offered to the search.
type StageSpec struct {
	// Name identifies the stage in results ("object-detection", ...).
	Name string
	// Label prefixes the stage's timeline entries; defaults to a letter
	// derived from the stage index when empty.
	Label string
	// Options are the feasible targets (from profiling or the cost model).
	Options []TargetOption
}

// SearchOptions tunes SearchSchedule.
type SearchOptions struct {
	// Frames is the simulated frame count (required, > 0).
	Frames int
	// ExhaustiveLimit is the assignment-count threshold up to which the
	// search enumerates the full cross product; beyond it the beam search
	// runs. 0 means the default (4096). Negative forces the beam search
	// regardless of size (tests and ablations).
	ExhaustiveLimit int
	// BeamWidth is the number of partial assignments kept per stage in beam
	// mode; 0 means the default (8).
	BeamWidth int
}

const (
	defaultExhaustiveLimit = 4096
	defaultBeamWidth       = 8
)

// SearchResult is the best assignment found.
type SearchResult struct {
	// Choice[i] is the chosen option name of stage i.
	Choice []string
	// Plans[i] is the stage's device set and duration under that choice.
	Plans []StagePlan
	// Pipelined is the simulated makespan; Sequential the unpipelined total.
	Pipelined, Sequential soc.Seconds
	// Evaluated counts schedule simulations; Exhaustive reports which mode
	// ran.
	Evaluated  int
	Exhaustive bool
}

// SearchSchedule finds the per-stage target assignment with the smallest
// simulated pipelined makespan. Exhaustive (optimal) for spaces up to
// ExhaustiveLimit assignments, beam search beyond; deterministic in both
// modes — ties break toward the smaller sequential time, then the
// lexicographically smaller choice key.
func SearchSchedule(stages []StageSpec, opt SearchOptions) (*SearchResult, error) {
	if opt.Frames <= 0 {
		return nil, fmt.Errorf("pipeline: SearchSchedule needs frames > 0")
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("pipeline: SearchSchedule needs at least one stage")
	}
	size := 1
	for _, st := range stages {
		if len(st.Options) == 0 {
			return nil, fmt.Errorf("pipeline: stage %s has no feasible targets", st.Name)
		}
		if size > 0 && size <= defaultExhaustiveLimit*1024 {
			size *= len(st.Options)
		}
	}
	limit := opt.ExhaustiveLimit
	if limit == 0 {
		limit = defaultExhaustiveLimit
	}
	labels := stageLabels(stages)
	if limit > 0 && size <= limit {
		return searchExhaustive(stages, labels, opt.Frames)
	}
	return searchBeam(stages, labels, opt.Frames, opt.BeamWidth)
}

// stageLabels resolves timeline label prefixes, keeping them unique.
func stageLabels(stages []StageSpec) []string {
	labels := make([]string, len(stages))
	seen := map[string]bool{}
	for i, st := range stages {
		l := st.Label
		if l == "" {
			l = string(rune('a' + i%26))
		}
		for seen[l] {
			l += "'"
		}
		seen[l] = true
		labels[i] = l
	}
	return labels
}

// assignment materializes one choice of option indices into stage plans.
func assignment(stages []StageSpec, idx []int) ([]StagePlan, []string) {
	plans := make([]StagePlan, len(stages))
	names := make([]string, len(stages))
	for i, st := range stages {
		o := st.Options[idx[i]]
		plans[i] = StagePlan{Devices: o.Devices, Duration: o.Duration}
		names[i] = o.Name
	}
	return plans, names
}

// searchKey reproduces the old AutoSchedule tie-break key exactly (sorted
// "i=name" fields rendered with fmt.Sprint), so the exhaustive path is
// bit-compatible with the enumeration it replaced.
func searchKey(names []string) string {
	keys := make([]string, len(names))
	for i, n := range names {
		keys[i] = fmt.Sprintf("%d=%s", i, n)
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}

type searchCand struct {
	idx                   []int
	pipelined, sequential soc.Seconds
	key                   string
}

func (a *searchCand) betterThan(b *searchCand) bool {
	if a.pipelined != b.pipelined {
		return a.pipelined < b.pipelined
	}
	if a.sequential != b.sequential {
		return a.sequential < b.sequential
	}
	return a.key < b.key
}

// evaluate simulates one (possibly partial) assignment.
func evaluate(stages []StageSpec, labels []string, idx []int, frames int) (*searchCand, error) {
	plans, names := assignment(stages[:len(idx)], idx)
	_, makespan, err := ScheduleStages(plans, labels[:len(idx)], frames)
	if err != nil {
		return nil, err
	}
	var seq soc.Seconds
	for _, p := range plans {
		seq += p.Duration
	}
	return &searchCand{
		idx:        append([]int(nil), idx...),
		pipelined:  makespan,
		sequential: seq * soc.Seconds(frames),
		key:        searchKey(names),
	}, nil
}

func searchExhaustive(stages []StageSpec, labels []string, frames int) (*SearchResult, error) {
	idx := make([]int, len(stages))
	var best *searchCand
	evaluated := 0
	for {
		cand, err := evaluate(stages, labels, idx, frames)
		if err != nil {
			return nil, err
		}
		evaluated++
		if best == nil || cand.betterThan(best) {
			best = cand
		}
		// Odometer increment, last stage fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(stages[i].Options) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return finishSearch(stages, best, evaluated, true, frames)
}

// searchBeam extends partial assignments stage by stage, keeping the
// beamWidth best-scheduled prefixes. The prefix makespan is monotone under
// extension (adding a stage never shortens the schedule), which makes it a
// sound greedy ranking; keeping several prefixes covers the paper's
// demote-to-overlap trade-off, where the best full pipeline rides a
// prefix that is not locally optimal.
func searchBeam(stages []StageSpec, labels []string, frames, beamWidth int) (*SearchResult, error) {
	if beamWidth <= 0 {
		beamWidth = defaultBeamWidth
	}
	evaluated := 0
	beam := []*searchCand{{idx: []int{}}}
	for si := range stages {
		var next []*searchCand
		for _, state := range beam {
			for oi := range stages[si].Options {
				cand, err := evaluate(stages, labels, append(state.idx, oi), frames)
				if err != nil {
					return nil, err
				}
				evaluated++
				next = append(next, cand)
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i].betterThan(next[j]) })
		if len(next) > beamWidth {
			next = next[:beamWidth]
		}
		beam = next
	}
	return finishSearch(stages, beam[0], evaluated, false, frames)
}

func finishSearch(stages []StageSpec, best *searchCand, evaluated int, exhaustive bool, frames int) (*SearchResult, error) {
	plans, names := assignment(stages, best.idx)
	return &SearchResult{
		Choice:     names,
		Plans:      plans,
		Pipelined:  best.pipelined,
		Sequential: best.sequential,
		Evaluated:  evaluated,
		Exhaustive: exhaustive,
	}, nil
}

// String renders the result compactly ("stage=target" pairs plus times).
func (r *SearchResult) Describe(stages []StageSpec) string {
	parts := make([]string, len(r.Choice))
	for i, c := range r.Choice {
		parts[i] = fmt.Sprintf("%s=%s", stages[i].Name, c)
	}
	mode := "beam"
	if r.Exhaustive {
		mode = "exhaustive"
	}
	return fmt.Sprintf("%s  pipelined=%s sequential=%s (%s, %d evaluated)",
		strings.Join(parts, " "), r.Pipelined, r.Sequential, mode, r.Evaluated)
}
