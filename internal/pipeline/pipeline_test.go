package pipeline

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/soc"
)

func TestSequentialMakespan(t *testing.T) {
	p := PaperAssignment(10e-3, 20e-3, 5e-3)
	if got := Sequential(p, 4); math.Abs(float64(got)-4*35e-3) > 1e-12 {
		t.Errorf("sequential = %s, want 140ms", got)
	}
}

func TestPipelinedBeatsSequential(t *testing.T) {
	// Paper assignment: detection (CPU) can overlap emotion (APU) of the
	// previous frame; anti-spoofing (CPU+APU) serializes with both.
	p := PaperAssignment(10e-3, 20e-3, 5e-3)
	res, err := Compare(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipelined >= res.Sequential {
		t.Errorf("pipelined %s should beat sequential %s", res.Pipelined, res.Sequential)
	}
	if res.Speedup <= 1 {
		t.Errorf("speedup %.3f", res.Speedup)
	}
}

func TestContentionAssignmentGivesNoOverlap(t *testing.T) {
	// With detection on CPU+APU, every stage touches a shared resource, so
	// pipelining cannot overlap anything: makespan equals sequential.
	p := ContentionAssignment(8e-3, 20e-3, 5e-3)
	res, err := Compare(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res.Pipelined)-float64(res.Sequential)) > 1e-12 {
		t.Errorf("contended pipeline %s should equal sequential %s", res.Pipelined, res.Sequential)
	}
}

func TestPaperTradeoff(t *testing.T) {
	// The paper's §5.2 decision: detection on CPU-only is individually
	// slower than CPU+APU, yet the pipeline wins overall. Model that:
	// CPU-only detection is 1.5x slower but overlaps emotion.
	spoof, emo := soc.Seconds(20e-3), soc.Seconds(8e-3)
	detFast, detSlow := soc.Seconds(8e-3), soc.Seconds(12e-3)
	frames := 16
	contended, err := Compare(ContentionAssignment(detFast, spoof, emo), frames)
	if err != nil {
		t.Fatal(err)
	}
	paper, err := Compare(PaperAssignment(detSlow, spoof, emo), frames)
	if err != nil {
		t.Fatal(err)
	}
	if paper.Pipelined >= contended.Pipelined {
		t.Errorf("paper assignment (%s) should beat the contended one (%s) despite slower detection",
			paper.Pipelined, contended.Pipelined)
	}
}

func TestExclusiveResourceInvariant(t *testing.T) {
	// No two intervals on the same device may overlap — the §5.2 invariant.
	p := PaperAssignment(7e-3, 13e-3, 9e-3)
	tl, _, err := Schedule(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	perDev := map[soc.DeviceKind][]soc.Interval{}
	for _, e := range tl.Events() {
		perDev[e.Device] = append(perDev[e.Device], e)
	}
	for dev, evs := range perDev {
		for i := 1; i < len(evs); i++ {
			if evs[i].Start < evs[i-1].End-1e-15 {
				t.Fatalf("device %s double-booked: %+v overlaps %+v", dev, evs[i-1], evs[i])
			}
		}
	}
}

func TestFrameDependenciesRespected(t *testing.T) {
	// Within a frame: detect ends before spoof starts, spoof before emotion.
	p := PaperAssignment(5e-3, 6e-3, 7e-3)
	tl, _, err := Schedule(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	start := map[string]soc.Seconds{}
	end := map[string]soc.Seconds{}
	for _, e := range tl.Events() {
		if _, ok := start[e.Label]; !ok || e.Start < start[e.Label] {
			start[e.Label] = e.Start
		}
		if e.End > end[e.Label] {
			end[e.Label] = e.End
		}
	}
	for f := 0; f < 3; f++ {
		d := string(rune('0' + f))
		if end["d"+d] > start["s"+d]+1e-15 {
			t.Errorf("frame %d: spoof started before detection finished", f)
		}
		if end["s"+d] > start["e"+d]+1e-15 {
			t.Errorf("frame %d: emotion started before anti-spoofing finished", f)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := Plan{
		Detect:  StagePlan{Devices: nil, Duration: 1},
		Spoof:   StagePlan{Devices: []soc.DeviceKind{soc.KindCPU}, Duration: 1},
		Emotion: StagePlan{Devices: []soc.DeviceKind{soc.KindAPU}, Duration: 1},
	}
	if err := bad.Validate(); err == nil {
		t.Error("empty device set accepted")
	}
	if _, _, err := Schedule(bad, 2); err == nil {
		t.Error("Schedule accepted invalid plan")
	}
}

// Property: pipelined makespan is never worse than sequential and never
// better than the critical-path lower bound.
func TestPipelineBoundsProperty(t *testing.T) {
	f := func(a, b, c uint16, nFrames uint8) bool {
		frames := int(nFrames%16) + 1
		det := soc.Seconds(float64(a%1000)+1) * 1e-6
		spoof := soc.Seconds(float64(b%1000)+1) * 1e-6
		emo := soc.Seconds(float64(c%1000)+1) * 1e-6
		p := PaperAssignment(det, spoof, emo)
		res, err := Compare(p, frames)
		if err != nil {
			return false
		}
		if res.Pipelined > res.Sequential+1e-15 {
			return false
		}
		// Lower bound: the anti-spoofing stage occupies both devices, so the
		// makespan is at least frames * spoof duration, and at least one
		// whole frame's chain.
		lower := soc.Seconds(float64(frames)) * spoof
		if chain := det + spoof + emo; chain > lower {
			lower = chain
		}
		return res.Pipelined >= lower-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGanttRenders(t *testing.T) {
	p := PaperAssignment(5e-3, 6e-3, 7e-3)
	tl, _, err := Schedule(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := tl.Gantt(60)
	if len(g) == 0 || g == "(empty timeline)\n" {
		t.Error("empty Gantt chart")
	}
}

func TestAutoScheduleFindsTradeoff(t *testing.T) {
	// Candidate targets mirroring §5: detection can run fast on cpu+apu or
	// slower on cpu-only; anti-spoofing needs cpu+apu; emotion apu-only.
	detect := StageOptions{Stage: StageDetect, Options: []TargetOption{
		{Name: "cpu+apu", Devices: []soc.DeviceKind{soc.KindCPU, soc.KindAPU}, Duration: 8e-3},
		{Name: "cpu", Devices: []soc.DeviceKind{soc.KindCPU}, Duration: 12e-3},
	}}
	spoof := StageOptions{Stage: StageSpoof, Options: []TargetOption{
		{Name: "cpu+apu", Devices: []soc.DeviceKind{soc.KindCPU, soc.KindAPU}, Duration: 20e-3},
	}}
	emotion := StageOptions{Stage: StageEmotion, Options: []TargetOption{
		{Name: "apu", Devices: []soc.DeviceKind{soc.KindAPU}, Duration: 8e-3},
		{Name: "cpu", Devices: []soc.DeviceKind{soc.KindCPU}, Duration: 14e-3},
	}}
	res, err := AutoSchedule(detect, spoof, emotion, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 4 {
		t.Errorf("evaluated %d assignments, want 4", res.Evaluated)
	}
	// The auto scheduler must discover the paper's trade-off: detection on
	// cpu-only (slower solo) + emotion on apu, which overlap.
	if res.Choice[StageDetect] != "cpu" || res.Choice[StageEmotion] != "apu" {
		t.Errorf("auto choice %v, want detect=cpu emotion=apu", res.Choice)
	}
	// And it must beat the all-fastest assignment.
	contended, err := Compare(ContentionAssignment(8e-3, 20e-3, 8e-3), 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.Pipelined >= contended.Pipelined {
		t.Errorf("auto (%s) should beat contended (%s)", res.Result.Pipelined, contended.Pipelined)
	}
}

func TestAutoScheduleRejectsEmptyStage(t *testing.T) {
	empty := StageOptions{Stage: StageDetect}
	ok := StageOptions{Stage: StageSpoof, Options: []TargetOption{
		{Name: "cpu", Devices: []soc.DeviceKind{soc.KindCPU}, Duration: 1e-3},
	}}
	if _, err := AutoSchedule(empty, ok, ok, 4); err == nil {
		t.Error("empty stage options accepted")
	}
	if _, err := AutoSchedule(ok, ok, ok, 0); err == nil {
		t.Error("zero frames accepted")
	}
}

// Property: the auto schedule is never worse than any manually enumerated
// assignment (it is an exhaustive argmin).
func TestAutoScheduleOptimalProperty(t *testing.T) {
	f := func(d1, d2, s1, e1, e2 uint16) bool {
		ms := func(v uint16) soc.Seconds { return soc.Seconds(float64(v%2000)+1) * 1e-6 }
		detect := StageOptions{Stage: StageDetect, Options: []TargetOption{
			{Name: "a", Devices: []soc.DeviceKind{soc.KindCPU, soc.KindAPU}, Duration: ms(d1)},
			{Name: "b", Devices: []soc.DeviceKind{soc.KindCPU}, Duration: ms(d2)},
		}}
		spoof := StageOptions{Stage: StageSpoof, Options: []TargetOption{
			{Name: "a", Devices: []soc.DeviceKind{soc.KindCPU, soc.KindAPU}, Duration: ms(s1)},
		}}
		emotion := StageOptions{Stage: StageEmotion, Options: []TargetOption{
			{Name: "a", Devices: []soc.DeviceKind{soc.KindAPU}, Duration: ms(e1)},
			{Name: "b", Devices: []soc.DeviceKind{soc.KindCPU}, Duration: ms(e2)},
		}}
		res, err := AutoSchedule(detect, spoof, emotion, 8)
		if err != nil {
			return false
		}
		for _, d := range detect.Options {
			for _, e := range emotion.Options {
				plan := Plan{
					Detect:  StagePlan{Devices: d.Devices, Duration: d.Duration},
					Spoof:   StagePlan{Devices: spoof.Options[0].Devices, Duration: spoof.Options[0].Duration},
					Emotion: StagePlan{Devices: e.Devices, Duration: e.Duration},
				}
				manual, err := Compare(plan, 8)
				if err != nil {
					return false
				}
				if manual.Pipelined < res.Result.Pipelined-1e-15 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
