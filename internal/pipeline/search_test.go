package pipeline

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/soc"
)

func twoDev(name string, devs []soc.DeviceKind, d soc.Seconds) TargetOption {
	return TargetOption{Name: name, Devices: devs, Duration: d}
}

// searchStages builds an N-stage spec where each stage offers a CPU-only
// and an APU-only target with pseudo-random durations.
func searchStages(n int, seed int64) []StageSpec {
	rng := rand.New(rand.NewSource(seed))
	stages := make([]StageSpec, n)
	for i := range stages {
		stages[i] = StageSpec{
			Name: fmt.Sprintf("stage%d", i),
			Options: []TargetOption{
				twoDev("cpu", []soc.DeviceKind{soc.KindCPU}, soc.Seconds(1+rng.Intn(5))),
				twoDev("apu", []soc.DeviceKind{soc.KindAPU}, soc.Seconds(1+rng.Intn(5))),
			},
		}
	}
	return stages
}

func TestSearchScheduleValidation(t *testing.T) {
	stages := searchStages(2, 1)
	if _, err := SearchSchedule(stages, SearchOptions{Frames: 0}); err == nil {
		t.Error("frames=0 accepted")
	}
	if _, err := SearchSchedule(nil, SearchOptions{Frames: 1}); err == nil {
		t.Error("no stages accepted")
	}
	empty := []StageSpec{{Name: "x"}}
	if _, err := SearchSchedule(empty, SearchOptions{Frames: 1}); err == nil {
		t.Error("stage without options accepted")
	}
}

// TestBeamMatchesExhaustiveSmall: on spaces the exhaustive search can
// enumerate, the beam search (forced via a negative limit) must find an
// assignment with the same optimal pipelined makespan.
func TestBeamMatchesExhaustiveSmall(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		stages := searchStages(4, seed)
		ex, err := SearchSchedule(stages, SearchOptions{Frames: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !ex.Exhaustive {
			t.Fatalf("seed %d: 16-assignment space not enumerated", seed)
		}
		beam, err := SearchSchedule(stages, SearchOptions{Frames: 5, ExhaustiveLimit: -1})
		if err != nil {
			t.Fatal(err)
		}
		if beam.Exhaustive {
			t.Fatalf("seed %d: negative limit did not force beam mode", seed)
		}
		if beam.Pipelined > ex.Pipelined {
			t.Errorf("seed %d: beam makespan %v worse than optimal %v (choice %v vs %v)",
				seed, beam.Pipelined, ex.Pipelined, beam.Choice, ex.Choice)
		}
		if beam.Evaluated >= ex.Evaluated*4 {
			t.Errorf("seed %d: beam evaluated %d, exhaustive only %d", seed, beam.Evaluated, ex.Evaluated)
		}
	}
}

// TestBeamHandlesLargeSpaces: a 12-stage space (4096+ assignments at two
// options each) must fall to beam mode by default and stay cheap.
func TestBeamHandlesLargeSpaces(t *testing.T) {
	stages := searchStages(13, 7) // 2^13 = 8192 > default limit
	res, err := SearchSchedule(stages, SearchOptions{Frames: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhaustive {
		t.Fatal("8192-assignment space was enumerated")
	}
	if res.Evaluated > 13*8*2 {
		t.Fatalf("beam evaluated %d schedules, want <= stages*beam*options", res.Evaluated)
	}
	if len(res.Choice) != 13 || len(res.Plans) != 13 {
		t.Fatalf("result covers %d stages", len(res.Choice))
	}
	if res.Pipelined <= 0 || res.Sequential < res.Pipelined {
		t.Fatalf("times: pipelined %v sequential %v", res.Pipelined, res.Sequential)
	}
}

func TestSearchDeterministic(t *testing.T) {
	stages := searchStages(5, 11)
	for _, limit := range []int{0, -1} {
		a, err := SearchSchedule(stages, SearchOptions{Frames: 4, ExhaustiveLimit: limit})
		if err != nil {
			t.Fatal(err)
		}
		b, err := SearchSchedule(stages, SearchOptions{Frames: 4, ExhaustiveLimit: limit})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(a.Choice) != fmt.Sprint(b.Choice) || a.Pipelined != b.Pipelined || a.Evaluated != b.Evaluated {
			t.Fatalf("limit %d: search not deterministic: %+v vs %+v", limit, a, b)
		}
	}
}

// TestSearchScheduleOverlap reproduces the paper's pipelining effect in the
// N-stage searcher: stages on disjoint devices overlap, so the chosen
// assignment must beat the sequential time.
func TestSearchScheduleOverlap(t *testing.T) {
	stages := []StageSpec{
		{Name: "detect", Options: []TargetOption{
			twoDev("apu", []soc.DeviceKind{soc.KindAPU}, 2),
			twoDev("cpu", []soc.DeviceKind{soc.KindCPU}, 2)}},
		{Name: "classify", Options: []TargetOption{
			twoDev("cpu", []soc.DeviceKind{soc.KindCPU}, 2),
			twoDev("apu", []soc.DeviceKind{soc.KindAPU}, 2)}},
	}
	res, err := SearchSchedule(stages, SearchOptions{Frames: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Choice[0] == res.Choice[1] {
		t.Fatalf("search picked same-device stages %v: no overlap possible", res.Choice)
	}
	if res.Pipelined >= res.Sequential {
		t.Fatalf("pipelined %v not better than sequential %v", res.Pipelined, res.Sequential)
	}
	if got := res.Describe(stages); got == "" {
		t.Error("Describe returned empty")
	}
}

// TestScheduleStagesMatchesSchedule pins the N-stage generalization to the
// fixed three-stage scheduler it replaced.
func TestScheduleStagesMatchesSchedule(t *testing.T) {
	p := PaperAssignment(3, 2, 1)
	const frames = 6
	_, wantMakespan, err := Schedule(p, frames)
	if err != nil {
		t.Fatal(err)
	}
	_, gotMakespan, err := ScheduleStages(
		[]StagePlan{p.Detect, p.Spoof, p.Emotion}, []string{"d", "s", "e"}, frames)
	if err != nil {
		t.Fatal(err)
	}
	if gotMakespan != wantMakespan {
		t.Fatalf("ScheduleStages makespan %v != Schedule %v", gotMakespan, wantMakespan)
	}
	if _, _, err := ScheduleStages([]StagePlan{p.Detect}, []string{"a", "b"}, 1); err == nil {
		t.Error("label/stage length mismatch accepted")
	}
}
