package pipeline

import (
	"strings"
	"testing"

	"repro/internal/soc"
)

// Edge-case coverage for AutoSchedule: degenerate frame counts,
// single-device SoCs (no overlap possible), and the deterministic
// tie-breaking chain in betterThan/choiceKey.

func cpuOnly(name string, d soc.Seconds) TargetOption {
	return TargetOption{Name: name, Devices: []soc.DeviceKind{soc.KindCPU}, Duration: d}
}

func TestAutoScheduleRejectsNonPositiveFrames(t *testing.T) {
	so := func(s Stage) StageOptions {
		return StageOptions{Stage: s, Options: []TargetOption{cpuOnly("cpu", 1)}}
	}
	for _, frames := range []int{0, -1} {
		if _, err := AutoSchedule(so(StageDetect), so(StageSpoof), so(StageEmotion), frames); err == nil {
			t.Errorf("frames=%d: no error", frames)
		}
	}
}

// TestAutoScheduleSingleDeviceSoC: when every target of every stage lives on
// the one device, no overlap is possible — the best pipelined makespan must
// equal the sequential time of the per-stage-fastest assignment.
func TestAutoScheduleSingleDeviceSoC(t *testing.T) {
	detect := StageOptions{Stage: StageDetect, Options: []TargetOption{
		cpuOnly("slow", 4), cpuOnly("fast", 2)}}
	spoof := StageOptions{Stage: StageSpoof, Options: []TargetOption{
		cpuOnly("only", 3)}}
	emotion := StageOptions{Stage: StageEmotion, Options: []TargetOption{
		cpuOnly("fast", 1), cpuOnly("slow", 5)}}

	const frames = 4
	res, err := AutoSchedule(detect, spoof, emotion, frames)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 2*1*2 {
		t.Errorf("evaluated %d assignments, want 4", res.Evaluated)
	}
	if got := res.Choice[StageDetect]; got != "fast" {
		t.Errorf("detect choice %q, want the faster single-device target", got)
	}
	if got := res.Choice[StageEmotion]; got != "fast" {
		t.Errorf("emotion choice %q, want the faster single-device target", got)
	}
	want := soc.Seconds(frames * (2 + 3 + 1))
	if res.Result.Pipelined != want {
		t.Errorf("pipelined makespan %v, want %v (single device ⇒ no overlap)", res.Result.Pipelined, want)
	}
	if res.Result.Sequential != res.Result.Pipelined {
		t.Errorf("sequential %v != pipelined %v on a single-device SoC", res.Result.Sequential, res.Result.Pipelined)
	}
	if res.Result.Speedup != 1 {
		t.Errorf("speedup %g, want exactly 1", res.Result.Speedup)
	}
}

// TestAutoScheduleTieBrokenByName: two targets indistinguishable by makespan
// and total work must resolve deterministically (lexicographically smaller
// choice key wins), regardless of option order.
func TestAutoScheduleTieBrokenByName(t *testing.T) {
	mk := func(names ...string) StageOptions {
		so := StageOptions{Stage: StageDetect}
		for _, n := range names {
			so.Options = append(so.Options, cpuOnly(n, 2))
		}
		return so
	}
	spoof := StageOptions{Stage: StageSpoof, Options: []TargetOption{cpuOnly("s", 1)}}
	emotion := StageOptions{Stage: StageEmotion, Options: []TargetOption{cpuOnly("e", 1)}}

	for _, order := range [][]string{{"zeta", "alpha"}, {"alpha", "zeta"}} {
		res, err := AutoSchedule(mk(order...), spoof, emotion, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Choice[StageDetect]; got != "alpha" {
			t.Errorf("order %v: chose %q, want tie broken to \"alpha\"", order, got)
		}
	}
}

// TestBetterThan covers the comparison chain directly: pipelined first,
// then sequential (less total work), then the choice key.
func TestBetterThan(t *testing.T) {
	mk := func(pipelined, sequential soc.Seconds, name string) *AutoResult {
		return &AutoResult{
			Choice: map[Stage]string{StageDetect: name, StageSpoof: "s", StageEmotion: "e"},
			Result: Result{Pipelined: pipelined, Sequential: sequential},
		}
	}
	cases := []struct {
		name string
		a, b *AutoResult
		want bool
	}{
		{"smaller makespan wins", mk(1, 9, "x"), mk(2, 1, "a"), true},
		{"larger makespan loses", mk(2, 1, "a"), mk(1, 9, "x"), false},
		{"makespan tie: less total work wins", mk(2, 3, "x"), mk(2, 4, "a"), true},
		{"makespan tie: more total work loses", mk(2, 4, "a"), mk(2, 3, "x"), false},
		{"full tie: smaller key wins", mk(2, 3, "a"), mk(2, 3, "b"), true},
		{"full tie: larger key loses", mk(2, 3, "b"), mk(2, 3, "a"), false},
		{"identical: not better", mk(2, 3, "a"), mk(2, 3, "a"), false},
	}
	for _, c := range cases {
		if got := betterThan(c.a, c.b); got != c.want {
			t.Errorf("%s: betterThan = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestChoiceKeyDeterministic: the key must not depend on map iteration
// order — it sorts stage entries — and must distinguish different choices.
func TestChoiceKeyDeterministic(t *testing.T) {
	a := &AutoResult{Choice: map[Stage]string{
		StageDetect: "d", StageSpoof: "s", StageEmotion: "e"}}
	for i := 0; i < 32; i++ {
		if k := choiceKey(a); k != choiceKey(a) {
			t.Fatalf("choiceKey unstable: %q", k)
		}
	}
	key := choiceKey(a)
	for _, part := range []string{"0=d", "1=s", "2=e"} {
		if !strings.Contains(key, part) {
			t.Errorf("choiceKey %q missing %q", key, part)
		}
	}
	b := &AutoResult{Choice: map[Stage]string{
		StageDetect: "d2", StageSpoof: "s", StageEmotion: "e"}}
	if choiceKey(a) == choiceKey(b) {
		t.Error("different choices share a key")
	}
}

// TestAutoScheduleZeroDurationStage: a stage may legitimately cost ~nothing
// (e.g. no faces found); the search must handle zero durations without
// division surprises.
func TestAutoScheduleZeroDurationStage(t *testing.T) {
	detect := StageOptions{Stage: StageDetect, Options: []TargetOption{cpuOnly("d", 0)}}
	spoof := StageOptions{Stage: StageSpoof, Options: []TargetOption{cpuOnly("s", 0)}}
	emotion := StageOptions{Stage: StageEmotion, Options: []TargetOption{cpuOnly("e", 0)}}
	res, err := AutoSchedule(detect, spoof, emotion, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.Pipelined != 0 {
		t.Errorf("pipelined %v, want 0", res.Result.Pipelined)
	}
	if res.Result.Speedup != 0 {
		// Compare guards the 0/0 case by leaving Speedup at zero.
		t.Errorf("speedup %g, want 0 for a zero-makespan plan", res.Result.Speedup)
	}
}
