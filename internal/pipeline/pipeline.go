// Package pipeline implements the paper's §5 scheduling work: model-level
// computation scheduling (assign each showcase model to its most efficient
// target) and the early pipeline-scheduling prototype of Figure 5, built on
// the concatenation-style list scheduling of inter-frame stage overlap under
// exclusive resource usage.
//
// The paper's final assignment: the anti-spoofing model keeps mobile
// CPU+APU (too many subgraphs to live on one device), the emotion model runs
// APU-only, and the object detector is *demoted* from CPU+APU to CPU-only so
// that it can execute concurrently with the emotion model of the previous
// frame — exclusive use of every resource is preserved while the two stages
// overlap.
package pipeline

import (
	"fmt"

	"repro/internal/soc"
)

// Stage identifies one showcase pipeline stage.
type Stage int

const (
	StageDetect Stage = iota
	StageSpoof
	StageEmotion
	numStages
)

func (s Stage) String() string {
	switch s {
	case StageDetect:
		return "object-detection"
	case StageSpoof:
		return "anti-spoofing"
	case StageEmotion:
		return "emotion"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// StagePlan is one stage's device assignment and per-frame duration under
// that assignment.
type StagePlan struct {
	// Devices the stage occupies exclusively while running.
	Devices []soc.DeviceKind
	// Duration per frame on that target.
	Duration soc.Seconds
}

// Plan assigns all three stages.
type Plan struct {
	Detect, Spoof, Emotion StagePlan
}

func (p Plan) stage(s Stage) StagePlan {
	switch s {
	case StageDetect:
		return p.Detect
	case StageSpoof:
		return p.Spoof
	case StageEmotion:
		return p.Emotion
	}
	panic("pipeline: bad stage")
}

// Validate rejects empty device sets and negative durations.
func (p Plan) Validate() error {
	for s := Stage(0); s < numStages; s++ {
		sp := p.stage(s)
		if len(sp.Devices) == 0 {
			return fmt.Errorf("pipeline: %s has no devices", s)
		}
		if sp.Duration < 0 {
			return fmt.Errorf("pipeline: %s has negative duration", s)
		}
	}
	return nil
}

// PaperAssignment returns the Figure 5 device assignment given per-stage
// durations: detection CPU-only (blue), anti-spoofing CPU+APU (yellow),
// emotion APU-only (green).
func PaperAssignment(detect, spoof, emotion soc.Seconds) Plan {
	return Plan{
		Detect:  StagePlan{Devices: []soc.DeviceKind{soc.KindCPU}, Duration: detect},
		Spoof:   StagePlan{Devices: []soc.DeviceKind{soc.KindCPU, soc.KindAPU}, Duration: spoof},
		Emotion: StagePlan{Devices: []soc.DeviceKind{soc.KindAPU}, Duration: emotion},
	}
}

// ContentionAssignment is the pre-pipeline configuration (§5.1): every model
// on its individually-fastest target, object detection on CPU+APU — which
// blocks all overlap (every stage touches a shared resource).
func ContentionAssignment(detect, spoof, emotion soc.Seconds) Plan {
	return Plan{
		Detect:  StagePlan{Devices: []soc.DeviceKind{soc.KindCPU, soc.KindAPU}, Duration: detect},
		Spoof:   StagePlan{Devices: []soc.DeviceKind{soc.KindCPU, soc.KindAPU}, Duration: spoof},
		Emotion: StagePlan{Devices: []soc.DeviceKind{soc.KindAPU}, Duration: emotion},
	}
}

// Sequential simulates the unpipelined application: every stage of every
// frame strictly in order. Returns the makespan.
func Sequential(p Plan, frames int) soc.Seconds {
	var t soc.Seconds
	for i := 0; i < frames; i++ {
		t += p.Detect.Duration + p.Spoof.Duration + p.Emotion.Duration
	}
	return t
}

// Schedule list-schedules the pipelined execution: within a frame the
// stages are chained (detect → spoof → emotion); across frames a stage
// waits for every device in its set (exclusive use); stages of the same
// kind execute in frame order. Returns the timeline (for the Gantt chart)
// and the makespan.
func Schedule(p Plan, frames int) (*soc.Timeline, soc.Seconds, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	return ScheduleStages([]StagePlan{p.Detect, p.Spoof, p.Emotion},
		[]string{"d", "s", "e"}, frames)
}

// ScheduleStages is the N-stage generalization of Schedule: stage i of a
// frame starts after stage i-1 of the same frame and after every device in
// its set is free. labels[i] prefixes the stage's timeline entries (the
// frame index is appended). The fixed 3-stage Schedule and the placement
// search (search.go) both run through here.
func ScheduleStages(stages []StagePlan, labels []string, frames int) (*soc.Timeline, soc.Seconds, error) {
	if len(labels) != len(stages) {
		return nil, 0, fmt.Errorf("pipeline: %d labels for %d stages", len(labels), len(stages))
	}
	for i, sp := range stages {
		if len(sp.Devices) == 0 {
			return nil, 0, fmt.Errorf("pipeline: stage %s has no devices", labels[i])
		}
		if sp.Duration < 0 {
			return nil, 0, fmt.Errorf("pipeline: stage %s has negative duration", labels[i])
		}
	}
	tl := soc.NewTimeline()
	for i := 0; i < frames; i++ {
		var ready soc.Seconds
		for s, sp := range stages {
			ready = tl.ScheduleMulti(sp.Devices, fmt.Sprintf("%s%d", labels[s], i), ready, sp.Duration)
		}
	}
	return tl, tl.Now(), nil
}

// Result summarizes a sequential-vs-pipelined comparison (the Figure 5
// experiment).
type Result struct {
	Frames     int
	Sequential soc.Seconds
	Pipelined  soc.Seconds
	Speedup    float64
	Timeline   *soc.Timeline
}

// Compare runs both simulations.
func Compare(p Plan, frames int) (Result, error) {
	tl, pipelined, err := Schedule(p, frames)
	if err != nil {
		return Result{}, err
	}
	seq := Sequential(p, frames)
	r := Result{Frames: frames, Sequential: seq, Pipelined: pipelined, Timeline: tl}
	if pipelined > 0 {
		r.Speedup = float64(seq) / float64(pipelined)
	}
	return r, nil
}
