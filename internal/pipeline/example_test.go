package pipeline_test

import (
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/soc"
)

// Example reproduces the paper's Figure 5 reasoning with round numbers:
// detection can run in 8 ms sharing CPU+APU or 12 ms on the CPU alone;
// demoting it unlocks overlap with the emotion stage and wins overall.
func Example() {
	frames := 10
	contended, _ := pipeline.Compare(pipeline.ContentionAssignment(8e-3, 20e-3, 8e-3), frames)
	paper, _ := pipeline.Compare(pipeline.PaperAssignment(12e-3, 20e-3, 8e-3), frames)
	fmt.Printf("contended: %s (%.2fx)\n", contended.Pipelined, contended.Speedup)
	fmt.Printf("paper:     %s (%.2fx)\n", paper.Pipelined, paper.Speedup)

	// The automatic scheduler discovers the same trade-off.
	auto, _ := pipeline.AutoSchedule(
		pipeline.StageOptions{Stage: pipeline.StageDetect, Options: []pipeline.TargetOption{
			{Name: "cpu+apu", Devices: []soc.DeviceKind{soc.KindCPU, soc.KindAPU}, Duration: 8e-3},
			{Name: "cpu", Devices: []soc.DeviceKind{soc.KindCPU}, Duration: 12e-3},
		}},
		pipeline.StageOptions{Stage: pipeline.StageSpoof, Options: []pipeline.TargetOption{
			{Name: "cpu+apu", Devices: []soc.DeviceKind{soc.KindCPU, soc.KindAPU}, Duration: 20e-3},
		}},
		pipeline.StageOptions{Stage: pipeline.StageEmotion, Options: []pipeline.TargetOption{
			{Name: "apu", Devices: []soc.DeviceKind{soc.KindAPU}, Duration: 8e-3},
		}},
		frames)
	fmt.Printf("auto picks detection on: %s\n", auto.Choice[pipeline.StageDetect])
	// Output:
	// contended: 360.000ms (1.00x)
	// paper:     328.000ms (1.22x)
	// auto picks detection on: cpu
}
