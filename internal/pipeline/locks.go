package pipeline

import (
	"sync"

	"repro/internal/soc"
)

// DeviceLocks serializes wall-clock access to the simulated devices — the
// exclusive-resource rule of the §5 pipeline prototype enforced with real
// mutexes. A stage (or a serving batch) holds every device in its set for
// the duration of its execution, so two workloads overlap in wall-clock time
// only when their device sets are disjoint.
//
// Locks are always taken in DeviceKind order, so multi-device holders cannot
// deadlock. One DeviceLocks value is shared per simulated SoC: the live
// showcase pipeline (internal/app) and the serving scheduler (internal/serve)
// both coordinate through it.
type DeviceLocks struct {
	mu [soc.NumDeviceKinds]sync.Mutex
}

// Lock acquires the devices in canonical order.
func (l *DeviceLocks) Lock(devs []soc.DeviceKind) {
	for k := soc.DeviceKind(0); k < soc.NumDeviceKinds; k++ {
		for _, d := range devs {
			if d == k {
				l.mu[k].Lock()
				break
			}
		}
	}
}

// Unlock releases in reverse order.
func (l *DeviceLocks) Unlock(devs []soc.DeviceKind) {
	for k := soc.NumDeviceKinds - 1; k >= 0; k-- {
		for _, d := range devs {
			if d == k {
				l.mu[k].Unlock()
				break
			}
		}
	}
}
