package bench

import (
	"strings"
	"testing"

	"repro/internal/models"
	"repro/internal/soc"
)

// TestFigure4Shape verifies the qualitative claims of the paper's Figure 4:
// TVM-only is slowest, BYOC with NeuroPilot backends wins, NeuroPilot-only
// has missing statistics for models with uncovered ops, anti-spoofing and
// object detection prefer CPU+APU while emotion prefers APU.
func TestFigure4Shape(t *testing.T) {
	rows, err := RunFigure4(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("Figure 4 has 3 models, got %d", len(rows))
	}
	byName := map[string]ModelRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}

	for name, r := range byName {
		tvm := r.Cells[TVMOnly]
		if !tvm.OK {
			t.Fatalf("%s: TVM-only must always have statistics", name)
		}
		// TVM-only slower than every available BYOC permutation.
		for _, p := range []Permutation{BYOCCPU, BYOCAPU, BYOCCPUAPU} {
			c := r.Cells[p]
			if !c.OK {
				t.Fatalf("%s: %s must have statistics (BYOC always runs)", name, p)
			}
			if c.Time >= tvm.Time {
				t.Errorf("%s: %s (%s) should beat TVM-only (%s)", name, p, c.Time, tvm.Time)
			}
		}
	}

	// Missing NP-only statistics: anti-spoofing everywhere (mean head).
	spoof := byName["anti-spoofing"]
	for _, p := range []Permutation{NPOnlyCPU, NPOnlyAPU, NPOnlyCPUAPU} {
		if spoof.Cells[p].OK {
			t.Errorf("anti-spoofing should have no statistics under %s", p)
		}
	}
	// SSD: NP-only APU missing (LOGISTIC), CPU and CPU+APU present.
	ssd := byName["mobilenet ssd (quant)"]
	if ssd.Cells[NPOnlyAPU].OK {
		t.Error("SSD should have no statistics under NP-only APU")
	}
	if !ssd.Cells[NPOnlyCPU].OK || !ssd.Cells[NPOnlyCPUAPU].OK {
		t.Error("SSD should run NP-only on CPU and CPU+APU")
	}
	// Emotion runs everywhere.
	emotion := byName["emotion"]
	for _, p := range AllPermutations {
		if !emotion.Cells[p].OK {
			t.Errorf("emotion should have statistics under %s", p)
		}
	}

	// §5.1 preferences: anti-spoofing and SSD best on a CPU+APU mix,
	// emotion best on an APU-only target.
	if best, _ := spoof.Best(); best != BYOCCPUAPU {
		t.Errorf("anti-spoofing best = %s, want BYOC (CPU+APU)", best)
	}
	// The SSD's best target must use the APU; CPU+APU and APU-only are
	// within noise of each other here because the only host-fallback op
	// (the LOGISTIC sandwich) is tiny — see EXPERIMENTS.md.
	if best, _ := ssd.Best(); best != BYOCCPUAPU && best != NPOnlyCPUAPU && best != BYOCAPU {
		t.Errorf("SSD best = %s, want an APU-backed target", best)
	}
	if ssd.Cells[BYOCCPUAPU].Time >= ssd.Cells[TVMOnly].Time {
		t.Error("SSD: BYOC CPU+APU must beat TVM-only")
	}
	if best, _ := emotion.Best(); best != BYOCAPU && best != NPOnlyAPU {
		t.Errorf("emotion best = %s, want an APU-only target", best)
	}
}

func TestFigure4Render(t *testing.T) {
	rows, err := RunFigure4(nil)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderFigure("Figure 4", rows)
	if !strings.Contains(out, "anti-spoofing") || !strings.Contains(out, "TVM-only") {
		t.Errorf("render missing content:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Error("render should show no-statistics cells")
	}
}

// TestFigure6Shape: the same pattern on the classifier sweep, plus the
// quantized models must be faster than their float twins on the APU.
func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale sweep")
	}
	rows, err := RunFigure6(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("Figure 6 sweeps 10 models, got %d", len(rows))
	}
	byName := map[string]ModelRow{}
	for _, r := range rows {
		byName[r.Name] = r
		tvm := r.Cells[TVMOnly]
		byoc := r.Cells[BYOCCPUAPU]
		if !tvm.OK || !byoc.OK {
			t.Fatalf("%s: TVM-only and BYOC must have statistics", r.Name)
		}
		if byoc.Time >= tvm.Time {
			t.Errorf("%s: BYOC (%s) should beat TVM-only (%s)", r.Name, byoc.Time, tvm.Time)
		}
	}
	// nasnet has a mean head: no NP-only statistics.
	for _, p := range []Permutation{NPOnlyCPU, NPOnlyAPU, NPOnlyCPUAPU} {
		if byName["nasnet"].Cells[p].OK {
			t.Errorf("nasnet should have no statistics under %s", p)
		}
	}
	// densenet is fully covered: NP-only statistics present.
	if !byName["densenet"].Cells[NPOnlyCPUAPU].OK {
		t.Error("densenet should run NeuroPilot-only")
	}
	// Quantized mobilenet v1 beats float mobilenet v1 on the APU path.
	fq := byName["mobilenet v1 (quant)"].Cells[BYOCCPUAPU]
	ff := byName["mobilenet v1"].Cells[BYOCCPUAPU]
	if fq.Time >= ff.Time {
		t.Errorf("quantized mobilenet (%s) should beat float (%s) on CPU+APU", fq.Time, ff.Time)
	}
}

func TestFigure5PipelineWins(t *testing.T) {
	res, err := RunFigure5(nil, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Pipelined beats its own sequential baseline.
	if res.Paper.Pipelined >= res.Paper.Sequential {
		t.Errorf("pipelined %s should beat sequential %s",
			res.Paper.Pipelined, res.Paper.Sequential)
	}
	// And beats the contended assignment despite slower CPU-only detection.
	if res.Paper.Pipelined >= res.Contention.Pipelined {
		t.Errorf("paper assignment (%s) should beat contended (%s)",
			res.Paper.Pipelined, res.Contention.Pipelined)
	}
	if res.Gantt == "" {
		t.Error("no Gantt chart")
	}
}

func TestComputationSchedule(t *testing.T) {
	rows, err := RunFigure4(nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := ComputationSchedule(rows)
	if len(sched) != 3 {
		t.Fatalf("schedule covers %d models", len(sched))
	}
	for name, p := range sched {
		if p < 0 {
			t.Errorf("%s has no runnable permutation", name)
		}
	}
}

func TestTables(t *testing.T) {
	t1 := Table1String()
	for _, m := range []string{"densenet", "inception resnet v2", "inception v3",
		"inception v4", "mobilenet v1", "mobilenet v2", "nasnet"} {
		if !strings.Contains(t1, m) {
			t.Errorf("Table 1 missing %s", m)
		}
	}
	if !strings.Contains(t1, "float32") {
		t.Error("Table 1 missing dtypes")
	}
	t2 := Table2String(nil)
	for _, s := range []string{"Android 11", "Dimensity 800", "Cortex-A76", "Mali-G57", "APU 3.0"} {
		if !strings.Contains(t2, s) {
			t.Errorf("Table 2 missing %q", s)
		}
	}
}

func TestMeasureModuleErrors(t *testing.T) {
	m, err := models.BuildEmotion(models.SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	sc := soc.NewDimensity800()
	for _, p := range AllPermutations {
		cell, err := MeasureModule(m, p, sc)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !cell.OK {
			t.Errorf("%s: emotion must run under every permutation", p)
		}
	}
}

// The automatic scheduler (paper §7 future work) must do at least as well
// as the hand-chosen Figure 5 assignment.
func TestAutoPipelineAtLeastPaperPlan(t *testing.T) {
	fig5, err := RunFigure5(nil, 12)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := RunAutoPipeline(nil, 12)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Result.Pipelined > fig5.Paper.Pipelined+1e-12 {
		t.Errorf("auto schedule (%s) worse than the manual Figure 5 plan (%s)",
			auto.Result.Pipelined, fig5.Paper.Pipelined)
	}
	if auto.Evaluated < 7*2 {
		t.Errorf("search space suspiciously small: %d assignments", auto.Evaluated)
	}
}

// §5.1: operation-level scheduling should never lose to model-level on
// models the planner can spread across CPU+APU, and the comparison must
// carry the transfer-cost caveat (op-level pays DMA, visible in profiles).
func TestOpLevelVsModelLevel(t *testing.T) {
	m, err := models.BuildEmotion(models.SizeFull)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := RunOpLevelComparison("emotion", m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.ModelLevel.OK || !cmp.OpLevel.OK {
		t.Fatal("emotion must run under both scheduling granularities")
	}
	// The planner may keep everything on one device (then times tie) but
	// must never be slower than the best single device by more than the
	// dispatch noise.
	if cmp.OpLevel.Time > cmp.ModelLevel.Time*1.05 {
		t.Errorf("op-level (%s) much slower than model-level (%s)",
			cmp.OpLevel.Time, cmp.ModelLevel.Time)
	}
	// densenet is heavy enough that the planner splits work and the op-level
	// plan at least matches the best single device.
	dm, err := models.BuildDenseNet(models.SizeFull)
	if err != nil {
		t.Fatal(err)
	}
	dcmp, err := RunOpLevelComparison("densenet", dm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dcmp.OpLevel.Time > dcmp.ModelLevel.Time*1.05 {
		t.Errorf("densenet: op-level (%s) much slower than model-level (%s)",
			dcmp.OpLevel.Time, dcmp.ModelLevel.Time)
	}
}

// GPU extension: all seven Table 1 models compile and run with the GPU
// enabled. Note the planner is *greedy*: widening the device set can regress
// some models (an op hops to the GPU to dodge one CPU→APU DMA, forcing later
// GPU→APU transfers) — a real scheduling insight this extension surfaces;
// the test pins both directions.
func TestGPUExtension(t *testing.T) {
	rows, err := RunGPUExtension(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("GPU extension covers %d models", len(rows))
	}
	regressed := 0
	for _, r := range rows {
		if !r.CPUAPU.OK || !r.CPUGPUAPU.OK {
			t.Fatalf("%s: missing statistics", r.Name)
		}
		ratio := float64(r.CPUGPUAPU.Time) / float64(r.CPUAPU.Time)
		t.Logf("%-24s cpu+apu %s, cpu+gpu+apu %s (%.2fx)", r.Name, r.CPUAPU.Time, r.CPUGPUAPU.Time, ratio)
		if ratio > 1.01 {
			regressed++
		}
		// Even when the greedy plan regresses, it must stay within 2x (the
		// GPU is never catastrophically chosen).
		if ratio > 2 {
			t.Errorf("%s: GPU-enabled plan degenerate (%.2fx)", r.Name, ratio)
		}
	}
	if regressed == len(rows) {
		t.Error("GPU enabling regressed every model — planner likely broken")
	}
}

func TestSupportMatrix(t *testing.T) {
	m := SupportMatrixString()
	for _, frag := range []string{"nn.conv2d", "vision.yolo_output", "tvm", "np-apu"} {
		if !strings.Contains(m, frag) {
			t.Errorf("support matrix missing %q", frag)
		}
	}
	// yolo decode: TVM yes, NeuroPilot no.
	for _, line := range strings.Split(m, "\n") {
		if strings.HasPrefix(line, "vision.yolo_output") {
			if !strings.Contains(line, "yes") || strings.Count(line, "-") != 3 {
				t.Errorf("yolo row wrong: %q", line)
			}
		}
	}
}

// The auto-quantization extension must produce a faster int8 model with the
// same top-1 prediction on the probe.
func TestAutoQuantExtension(t *testing.T) {
	res, err := RunAutoQuantExtension(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Float.OK || !res.Quantized.OK {
		t.Fatal("missing statistics")
	}
	if res.Quantized.Time >= res.Float.Time {
		t.Errorf("auto-quantized (%s) should beat float (%s)", res.Quantized.Time, res.Float.Time)
	}
	if !res.SamePick {
		t.Error("auto-quantization changed the top-1 prediction on the probe")
	}
	if res.MaxAbsDiff > 0.15 {
		t.Errorf("quantization error too large: %g", res.MaxAbsDiff)
	}
}
