// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation — the seven target permutations over the
// showcase models (Figure 4) and the extended classifier sweep (Figure 6),
// the model inventory (Table 1), the platform spec (Table 2), and the
// pipeline-scheduling prototype comparison (Figure 5).
package bench

import (
	"fmt"
	"strings"

	"repro/internal/models"
	"repro/internal/neuron"
	"repro/internal/nir"
	"repro/internal/passes"
	"repro/internal/pipeline"
	"repro/internal/relay"
	"repro/internal/runtime"
	"repro/internal/soc"
	"repro/internal/tensor"
	"repro/internal/topi"
)

// Permutation enumerates the paper's seven target configurations (§5, §6).
type Permutation int

const (
	TVMOnly Permutation = iota
	BYOCCPU
	BYOCAPU
	BYOCCPUAPU
	NPOnlyCPU
	NPOnlyAPU
	NPOnlyCPUAPU
	numPermutations
)

// AllPermutations in the paper's listing order.
var AllPermutations = []Permutation{
	TVMOnly, BYOCCPU, BYOCAPU, BYOCCPUAPU, NPOnlyCPU, NPOnlyAPU, NPOnlyCPUAPU,
}

func (p Permutation) String() string {
	switch p {
	case TVMOnly:
		return "TVM-only"
	case BYOCCPU:
		return "BYOC (CPU)"
	case BYOCAPU:
		return "BYOC (APU)"
	case BYOCCPUAPU:
		return "BYOC (CPU+APU)"
	case NPOnlyCPU:
		return "NP-only (CPU)"
	case NPOnlyAPU:
		return "NP-only (APU)"
	case NPOnlyCPUAPU:
		return "NP-only (CPU+APU)"
	}
	return fmt.Sprintf("permutation(%d)", int(p))
}

// devicesOf returns the NeuroPilot device set of a permutation.
func devicesOf(p Permutation) []soc.DeviceKind {
	switch p {
	case BYOCCPU, NPOnlyCPU:
		return []soc.DeviceKind{soc.KindCPU}
	case BYOCAPU, NPOnlyAPU:
		return []soc.DeviceKind{soc.KindAPU}
	case BYOCCPUAPU, NPOnlyCPUAPU:
		return []soc.DeviceKind{soc.KindCPU, soc.KindAPU}
	}
	return nil
}

// IsNeuroPilotOnly reports whether the permutation bypasses TVM.
func (p Permutation) IsNeuroPilotOnly() bool {
	return p == NPOnlyCPU || p == NPOnlyAPU || p == NPOnlyCPUAPU
}

// MeasureModule estimates one inference of the module under a permutation.
// A nil error with OK=false never happens: unsupported configurations return
// a no-statistics cell (the empty bars of Figures 4/6) without error, any
// other failure is reported.
func MeasureModule(m *relay.Module, p Permutation, sc *soc.SoC) (Cell, error) {
	if sc == nil {
		sc = soc.NewDimensity800()
	}
	if p.IsNeuroPilotOnly() {
		cm, err := runtime.BuildNeuroPilotOnly(m, sc, devicesOf(p))
		if err != nil {
			if runtime.IsNoStatistics(err) {
				return Cell{}, nil // no statistics to show
			}
			return Cell{}, err
		}
		prof := soc.NewProfile()
		return Cell{OK: true, Time: cm.Estimate(prof), Profile: prof}, nil
	}
	opts := runtime.BuildOptions{OptLevel: 3, SoC: sc}
	if p != TVMOnly {
		opts.UseNIR = true
		opts.NIRDevices = devicesOf(p)
	}
	lib, err := runtime.Build(m, opts)
	if err != nil {
		return Cell{}, err
	}
	prof, err := lib.Estimate()
	if err != nil {
		return Cell{}, err
	}
	return Cell{OK: true, Time: prof.Total(), Profile: prof}, nil
}

// Cell is one bar of a figure: a measured time or "no statistics".
type Cell struct {
	OK      bool
	Time    soc.Seconds
	Profile *soc.Profile
}

// ModelRow is one model's measurements across all permutations.
type ModelRow struct {
	Name  string
	Cells map[Permutation]Cell
}

// Best returns the fastest available permutation.
func (r ModelRow) Best() (Permutation, Cell) {
	best := Permutation(-1)
	var bestCell Cell
	for _, p := range AllPermutations {
		c, ok := r.Cells[p]
		if !ok || !c.OK {
			continue
		}
		if best < 0 || c.Time < bestCell.Time {
			best, bestCell = p, c
		}
	}
	return best, bestCell
}

// sweep measures a set of model specs across all permutations. Models are
// built once and reused across permutations.
func sweep(specs []models.Spec, size models.Size, sc *soc.SoC) ([]ModelRow, error) {
	rows := make([]ModelRow, 0, len(specs))
	for _, spec := range specs {
		m, err := spec.Build(size)
		if err != nil {
			return nil, fmt.Errorf("bench: building %s: %w", spec.Name, err)
		}
		row := ModelRow{Name: spec.Name, Cells: map[Permutation]Cell{}}
		for _, p := range AllPermutations {
			cell, err := MeasureModule(m, p, sc)
			if err != nil {
				return nil, fmt.Errorf("bench: %s under %s: %w", spec.Name, p, err)
			}
			row.Cells[p] = cell
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunFigure4 measures the three showcase models across the seven
// permutations at full scale.
func RunFigure4(sc *soc.SoC) ([]ModelRow, error) {
	return sweep(models.Showcase(), models.SizeFull, sc)
}

// RunFigure6 measures the extended classifier sweep.
func RunFigure6(sc *soc.SoC) ([]ModelRow, error) {
	return sweep(models.Figure6(), models.SizeFull, sc)
}

// RenderFigure renders rows as a text table (ms, "-" for no statistics).
func RenderFigure(title string, rows []ModelRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-24s", "model")
	for _, p := range AllPermutations {
		fmt.Fprintf(&b, "%18s", p)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s", r.Name)
		for _, p := range AllPermutations {
			c := r.Cells[p]
			if !c.OK {
				fmt.Fprintf(&b, "%18s", "-")
				continue
			}
			fmt.Fprintf(&b, "%15.2fms", c.Time.Ms())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ComputationSchedule implements §5.1: pick each model's most efficient
// permutation from the measured rows.
func ComputationSchedule(rows []ModelRow) map[string]Permutation {
	out := map[string]Permutation{}
	for _, r := range rows {
		best, _ := r.Best()
		out[r.Name] = best
	}
	return out
}

// Figure5Result bundles the pipeline experiment output.
type Figure5Result struct {
	Plan       pipeline.Plan
	Contention pipeline.Result // all models on their §5.1-best targets
	Paper      pipeline.Result // detection demoted to CPU-only (Figure 5)
	Gantt      string
}

// RunFigure5 measures per-stage durations of the showcase models under the
// Figure 5 assignment (detection BYOC CPU-only, anti-spoofing BYOC CPU+APU,
// emotion NeuroPilot APU-only) and compares sequential, contended and
// pipelined execution over the given frame count. Stage durations assume
// one detected face per frame (the model-level schedule of the paper).
func RunFigure5(sc *soc.SoC, frames int) (*Figure5Result, error) {
	if sc == nil {
		sc = soc.NewDimensity800()
	}
	measure := func(build func(models.Size) (*relay.Module, error), p Permutation) (soc.Seconds, error) {
		m, err := build(models.SizeFull)
		if err != nil {
			return 0, err
		}
		cell, err := MeasureModule(m, p, sc)
		if err != nil {
			return 0, err
		}
		if !cell.OK {
			return 0, fmt.Errorf("bench: stage has no statistics under %s", p)
		}
		return cell.Time, nil
	}
	detCPUAPU, err := measure(models.BuildMobileNetSSDQuant, BYOCCPUAPU)
	if err != nil {
		return nil, err
	}
	detCPU, err := measure(models.BuildMobileNetSSDQuant, BYOCCPU)
	if err != nil {
		return nil, err
	}
	spoof, err := measure(models.BuildDeePixBiS, BYOCCPUAPU)
	if err != nil {
		return nil, err
	}
	emotion, err := measure(models.BuildEmotion, NPOnlyAPU)
	if err != nil {
		return nil, err
	}

	contPlan := pipeline.ContentionAssignment(detCPUAPU, spoof, emotion)
	paperPlan := pipeline.PaperAssignment(detCPU, spoof, emotion)
	cont, err := pipeline.Compare(contPlan, frames)
	if err != nil {
		return nil, err
	}
	paper, err := pipeline.Compare(paperPlan, frames)
	if err != nil {
		return nil, err
	}
	return &Figure5Result{
		Plan:       paperPlan,
		Contention: cont,
		Paper:      paper,
		Gantt:      paper.Timeline.Gantt(100),
	}, nil
}

// Table1String renders the Table 1 model/dtype inventory.
func Table1String() string {
	var b strings.Builder
	b.WriteString("Table 1: Models used for testing and their data types\n")
	fmt.Fprintf(&b, "%-24s%-12s%-10s%s\n", "Model", "Data Type", "Source", "Width")
	for _, s := range models.Table1() {
		fmt.Fprintf(&b, "%-24s%-12s%-10s%.2f\n", s.Name, s.DataType, s.Framework, s.WidthMult)
	}
	return b.String()
}

// Table2String renders the Table 2 platform specification.
func Table2String(sc *soc.SoC) string {
	if sc == nil {
		sc = soc.NewDimensity800()
	}
	var b strings.Builder
	b.WriteString("Table 2: Specifications of experiment environment\n")
	fmt.Fprintf(&b, "%-10s%s\n", "Device", sc.Name)
	fmt.Fprintf(&b, "%-10s%s\n", "OS", sc.OS)
	fmt.Fprintf(&b, "%-10s%s\n", "Chipset", sc.Chipset)
	fmt.Fprintf(&b, "%-10s%s\n", "CPU", sc.CPU.Name)
	fmt.Fprintf(&b, "%-10s%s\n", "GPU", sc.GPU.Name)
	fmt.Fprintf(&b, "%-10s%s\n", "APU", sc.APU.Name)
	return b.String()
}

// StageOptionsFor measures one stage model under every permutation and
// returns the feasible targets as pipeline options. The exclusive device
// set of each option is derived from the measured profile (every device the
// configuration actually launched work on).
func StageOptionsFor(stage pipeline.Stage, m *relay.Module, sc *soc.SoC) (pipeline.StageOptions, error) {
	so := pipeline.StageOptions{Stage: stage}
	for _, p := range AllPermutations {
		cell, err := MeasureModule(m, p, sc)
		if err != nil {
			return so, err
		}
		if !cell.OK {
			continue // no statistics: infeasible target
		}
		var devices []soc.DeviceKind
		for _, d := range []soc.DeviceKind{soc.KindCPU, soc.KindAPU, soc.KindGPU} {
			if cell.Profile.Launches[d] > 0 {
				devices = append(devices, d)
			}
		}
		if len(devices) == 0 {
			devices = []soc.DeviceKind{soc.KindCPU}
		}
		so.Options = append(so.Options, pipeline.TargetOption{
			Name:     p.String(),
			Devices:  devices,
			Duration: cell.Time,
		})
	}
	return so, nil
}

// RunAutoPipeline implements the paper's announced future work: measure
// every showcase stage under every feasible target and automatically search
// the assignment with the best pipelined makespan (§7).
func RunAutoPipeline(sc *soc.SoC, frames int) (*pipeline.AutoResult, error) {
	if sc == nil {
		sc = soc.NewDimensity800()
	}
	det, err := models.BuildMobileNetSSDQuant(models.SizeFull)
	if err != nil {
		return nil, err
	}
	spoof, err := models.BuildDeePixBiS(models.SizeFull)
	if err != nil {
		return nil, err
	}
	emo, err := models.BuildEmotion(models.SizeFull)
	if err != nil {
		return nil, err
	}
	detOpts, err := StageOptionsFor(pipeline.StageDetect, det, sc)
	if err != nil {
		return nil, err
	}
	spoofOpts, err := StageOptionsFor(pipeline.StageSpoof, spoof, sc)
	if err != nil {
		return nil, err
	}
	emoOpts, err := StageOptionsFor(pipeline.StageEmotion, emo, sc)
	if err != nil {
		return nil, err
	}
	return pipeline.AutoSchedule(detOpts, spoofOpts, emoOpts, frames)
}

// OpLevelComparison quantifies §5.1's model-level vs operation-level
// scheduling discussion for one model: model-level scheduling forces the
// whole network onto its best single NeuroPilot device, while
// operation-level scheduling lets the Execution Planner assign every
// operation individually across CPU+APU (paying I/O transfer time at each
// boundary — exactly the cost the paper says makes it "more difficult").
type OpLevelComparison struct {
	Model string
	// ModelLevel is the best single-device time (NP-only CPU or APU), or
	// !OK when neither single device covers the model.
	ModelLevel     Cell
	ModelLevelPick Permutation
	// OpLevel is the per-operation CPU+APU plan (NP-only CPU+APU).
	OpLevel Cell
}

// RunOpLevelComparison measures the comparison for a module.
func RunOpLevelComparison(name string, m *relay.Module, sc *soc.SoC) (OpLevelComparison, error) {
	out := OpLevelComparison{Model: name, ModelLevelPick: -1}
	for _, p := range []Permutation{NPOnlyCPU, NPOnlyAPU} {
		cell, err := MeasureModule(m, p, sc)
		if err != nil {
			return out, err
		}
		if !cell.OK {
			continue
		}
		if !out.ModelLevel.OK || cell.Time < out.ModelLevel.Time {
			out.ModelLevel = cell
			out.ModelLevelPick = p
		}
	}
	cell, err := MeasureModule(m, NPOnlyCPUAPU, sc)
	if err != nil {
		return out, err
	}
	out.OpLevel = cell
	return out, nil
}

// GPUExtensionRow compares the paper's BYOC CPU+APU against the extension
// permutation with the Mali GPU also enabled (NeuroPilot lists the mobile
// GPU among its backends, §5, but the paper's experiments never exercise
// it).
type GPUExtensionRow struct {
	Name      string
	CPUAPU    Cell
	CPUGPUAPU Cell
}

// RunGPUExtension measures the GPU-enabled permutation on the Table 1
// float models.
func RunGPUExtension(sc *soc.SoC) ([]GPUExtensionRow, error) {
	if sc == nil {
		sc = soc.NewDimensity800()
	}
	var rows []GPUExtensionRow
	for _, spec := range models.Table1() {
		m, err := spec.Build(models.SizeFull)
		if err != nil {
			return nil, err
		}
		base, err := MeasureModule(m, BYOCCPUAPU, sc)
		if err != nil {
			return nil, err
		}
		lib, err := runtime.Build(m, runtime.BuildOptions{
			OptLevel: 3, UseNIR: true, SoC: sc,
			NIRDevices: []soc.DeviceKind{soc.KindCPU, soc.KindGPU, soc.KindAPU},
		})
		if err != nil {
			return nil, err
		}
		prof, err := lib.Estimate()
		if err != nil {
			return nil, err
		}
		rows = append(rows, GPUExtensionRow{
			Name:      spec.Name,
			CPUAPU:    base,
			CPUGPUAPU: Cell{OK: true, Time: prof.Total(), Profile: prof},
		})
	}
	return rows, nil
}

// SupportMatrixString renders the operator coverage matrix: every relay op
// against the TVM host kernels and the NeuroPilot device backends — the
// coverage story behind every missing bar in Figures 4/6.
func SupportMatrixString() string {
	var b strings.Builder
	b.WriteString("Operator support matrix (relay op × backend)\n")
	fmt.Fprintf(&b, "%-24s %-5s %-8s %-8s %-8s\n", "relay op", "tvm", "np-cpu", "np-apu", "np-gpu")
	mark := func(ok bool) string {
		if ok {
			return "yes"
		}
		return "-"
	}
	for _, name := range relay.OpNames() {
		_, tvmOK := topi.Lookup(name)
		npCode, npOK := nir.OpcodeOf(name)
		apu, gpu := false, false
		if npOK {
			apu = neuron.SupportedOn(npCode, soc.KindAPU)
			gpu = neuron.SupportedOn(npCode, soc.KindGPU)
		}
		fmt.Fprintf(&b, "%-24s %-5s %-8s %-8s %-8s\n",
			name, mark(tvmOK), mark(npOK), mark(apu), mark(gpu))
	}
	return b.String()
}

// AutoQuantResult summarizes the automatic-quantization extension on one
// model: float vs auto-quantized int8 time under the same target, plus the
// output deviation on a probe input.
type AutoQuantResult struct {
	Model      string
	Float      Cell
	Quantized  Cell
	MaxAbsDiff float64
	SamePick   bool
}

// RunAutoQuantExtension auto-quantizes the (float) Keras emotion model —
// calibrate on synthetic face crops, rewrite to QNN — and compares it with
// its float original under NeuroPilot CPU+APU.
func RunAutoQuantExtension(sc *soc.SoC) (*AutoQuantResult, error) {
	if sc == nil {
		sc = soc.NewDimensity800()
	}
	m, err := models.BuildEmotion(models.SizeFull)
	if err != nil {
		return nil, err
	}
	// Inference-mode cleanup before calibration (dropout must be gone).
	m, err = passes.Sequential(m, passes.NewContext(3),
		passes.SimplifyInference(), passes.FoldConstant())
	if err != nil {
		return nil, err
	}
	var calib []*tensor.Tensor
	for i := 0; i < 3; i++ {
		t := tensor.New(tensor.Float32, tensor.Shape{1, 48, 48, 1})
		t.FillUniform(tensor.NewRNG(uint64(900+i)), 0, 1)
		calib = append(calib, t)
	}
	prof, err := passes.Calibrate(m, calib)
	if err != nil {
		return nil, err
	}
	qm, err := passes.QuantizeModule(m, prof)
	if err != nil {
		return nil, err
	}

	fCell, err := MeasureModule(m, NPOnlyCPUAPU, sc)
	if err != nil {
		return nil, err
	}
	qCell, err := MeasureModule(qm, NPOnlyCPUAPU, sc)
	if err != nil {
		return nil, err
	}

	// Accuracy probe through the real executor (TVM path, real numerics).
	probe := tensor.New(tensor.Float32, tensor.Shape{1, 48, 48, 1})
	probe.FillUniform(tensor.NewRNG(4242), 0, 1)
	runOne := func(mod *relay.Module) (*tensor.Tensor, error) {
		lib, err := runtime.Build(mod, runtime.BuildOptions{OptLevel: 3, SoC: sc})
		if err != nil {
			return nil, err
		}
		gm := runtime.NewGraphModule(lib)
		gm.SetInput(gm.InputNames()[0], probe)
		if err := gm.Run(); err != nil {
			return nil, err
		}
		return gm.MustOutput(0), nil
	}
	fOut, err := runOne(m)
	if err != nil {
		return nil, err
	}
	qOut, err := runOne(qm)
	if err != nil {
		return nil, err
	}
	return &AutoQuantResult{
		Model:      "emotion",
		Float:      fCell,
		Quantized:  qCell,
		MaxAbsDiff: tensor.MaxAbsDiff(fOut, qOut),
		SamePick:   fOut.ArgMax() == qOut.ArgMax(),
	}, nil
}
