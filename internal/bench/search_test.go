package bench

import (
	"testing"

	"repro/internal/models"
	"repro/internal/pipeline"
	"repro/internal/relay"
	"repro/internal/soc"
)

// showcaseStageSpecs measures the three showcase models under every
// permutation and packages the feasible targets for the N-stage searcher —
// the same inputs RunAutoPipeline feeds the three-stage wrapper.
func showcaseStageSpecs(t *testing.T, sc *soc.SoC) []pipeline.StageSpec {
	t.Helper()
	det, err := models.BuildMobileNetSSDQuant(models.SizeFull)
	if err != nil {
		t.Fatal(err)
	}
	spoof, err := models.BuildDeePixBiS(models.SizeFull)
	if err != nil {
		t.Fatal(err)
	}
	emo, err := models.BuildEmotion(models.SizeFull)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]pipeline.StageSpec, 0, 3)
	for _, st := range []struct {
		stage pipeline.Stage
		label string
		m     *relay.Module
	}{
		{pipeline.StageDetect, "d", det},
		{pipeline.StageSpoof, "s", spoof},
		{pipeline.StageEmotion, "e", emo},
	} {
		so, err := StageOptionsFor(st.stage, st.m, sc)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, pipeline.StageSpec{
			Name: st.stage.String(), Label: st.label, Options: so.Options})
	}
	return specs
}

// TestSearchScheduleReproducesFigure5: the cost-model placement search —
// in both exhaustive and beam mode — must find a showcase-pipeline schedule
// at least as good as the paper's hand-built Figure 5 assignment on the
// simulated clock.
func TestSearchScheduleReproducesFigure5(t *testing.T) {
	sc := soc.NewDimensity800()
	const frames = 12
	fig5, err := RunFigure5(sc, frames)
	if err != nil {
		t.Fatal(err)
	}
	stages := showcaseStageSpecs(t, sc)

	ex, err := pipeline.SearchSchedule(stages, pipeline.SearchOptions{Frames: frames})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Exhaustive {
		t.Fatalf("three-stage space not enumerated (%d evaluated)", ex.Evaluated)
	}
	if ex.Pipelined > fig5.Paper.Pipelined+1e-12 {
		t.Errorf("exhaustive search (%s) worse than the Figure 5 plan (%s): %v",
			ex.Pipelined, fig5.Paper.Pipelined, ex.Choice)
	}

	beam, err := pipeline.SearchSchedule(stages, pipeline.SearchOptions{Frames: frames, ExhaustiveLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if beam.Pipelined > ex.Pipelined+1e-12 {
		t.Errorf("beam search (%s) worse than the exhaustive optimum (%s): %v vs %v",
			beam.Pipelined, ex.Pipelined, beam.Choice, ex.Choice)
	}
}
