package tensor

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestDTypeSizeAndString(t *testing.T) {
	cases := []struct {
		dt   DType
		size int
		str  string
	}{
		{Float32, 4, "float32"},
		{Int8, 1, "int8"},
		{UInt8, 1, "uint8"},
		{Int32, 4, "int32"},
	}
	for _, c := range cases {
		if c.dt.Size() != c.size {
			t.Errorf("%s size = %d, want %d", c.str, c.dt.Size(), c.size)
		}
		if c.dt.String() != c.str {
			t.Errorf("String() = %q, want %q", c.dt.String(), c.str)
		}
		back, err := ParseDType(c.str)
		if err != nil || back != c.dt {
			t.Errorf("ParseDType(%q) = %v, %v", c.str, back, err)
		}
	}
	if _, err := ParseDType("float16"); err == nil {
		t.Error("ParseDType accepted unknown dtype")
	}
}

func TestDTypeIsQuantized(t *testing.T) {
	if Float32.IsQuantized() || Int32.IsQuantized() {
		t.Error("float32/int32 must not be quantized dtypes")
	}
	if !Int8.IsQuantized() || !UInt8.IsQuantized() {
		t.Error("int8/uint8 must be quantized dtypes")
	}
}

func TestShapeBasics(t *testing.T) {
	s := Shape{2, 3, 4}
	if s.Elems() != 24 {
		t.Errorf("Elems = %d, want 24", s.Elems())
	}
	if (Shape{}).Elems() != 1 {
		t.Error("scalar shape should have 1 element")
	}
	if !s.Equal(Shape{2, 3, 4}) || s.Equal(Shape{2, 3}) || s.Equal(Shape{2, 3, 5}) {
		t.Error("Shape.Equal wrong")
	}
	c := s.Clone()
	c[0] = 9
	if s[0] != 2 {
		t.Error("Clone must not alias")
	}
	if s.String() != "(2,3,4)" {
		t.Errorf("String = %q", s.String())
	}
	if !s.Valid() || (Shape{2, 0}).Valid() || (Shape{-1}).Valid() {
		t.Error("Valid wrong")
	}
}

func TestNewAndAccessors(t *testing.T) {
	for _, dt := range []DType{Float32, Int8, UInt8, Int32} {
		tt := New(dt, Shape{2, 3})
		if tt.Elems() != 6 {
			t.Fatalf("%s Elems = %d", dt, tt.Elems())
		}
		if tt.Bytes() != 6*dt.Size() {
			t.Fatalf("%s Bytes = %d", dt, tt.Bytes())
		}
		for i := 0; i < 6; i++ {
			if tt.GetF(i) != 0 {
				t.Fatalf("%s not zero-initialized", dt)
			}
		}
	}
}

func TestIndexAndAt(t *testing.T) {
	tt := New(Float32, Shape{2, 3, 4})
	tt.Set(7.5, 1, 2, 3)
	if tt.At(1, 2, 3) != 7.5 {
		t.Error("Set/At roundtrip failed")
	}
	if tt.Index(1, 2, 3) != 1*12+2*4+3 {
		t.Errorf("Index = %d", tt.Index(1, 2, 3))
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds index should panic")
		}
	}()
	tt.Index(2, 0, 0)
}

func TestQuantParamsRoundTrip(t *testing.T) {
	q := QuantParams{Scale: 0.05, ZeroPoint: 128}
	for _, real := range []float64{-3.0, -0.07, 0, 0.05, 1.234, 5.0} {
		qv := q.Quantize(real)
		back := q.Dequantize(qv)
		if math.Abs(back-real) > q.Scale/2+1e-12 {
			t.Errorf("quantize(%g)=%d dequantize=%g, err > scale/2", real, qv, back)
		}
	}
}

func TestQuantizedSetGetClamps(t *testing.T) {
	q := QuantParams{Scale: 1, ZeroPoint: 0}
	u := New(UInt8, Shape{1})
	u.Quant = &q
	u.SetF(0, 300)
	if u.GetF(0) != 255 {
		t.Errorf("uint8 should clamp to 255, got %g", u.GetF(0))
	}
	u.SetF(0, -5)
	if u.GetF(0) != 0 {
		t.Errorf("uint8 should clamp to 0, got %g", u.GetF(0))
	}
	i := New(Int8, Shape{1})
	i.Quant = &q
	i.SetF(0, 200)
	if i.GetF(0) != 127 {
		t.Errorf("int8 should clamp to 127, got %g", i.GetF(0))
	}
	i.SetF(0, -200)
	if i.GetF(0) != -128 {
		t.Errorf("int8 should clamp to -128, got %g", i.GetF(0))
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromF32([]float32{1, 2, 3}, Shape{3})
	b := a.Clone()
	b.F32()[0] = 99
	if a.F32()[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := FromF32([]float32{1, 2, 3, 4}, Shape{2, 2})
	b := a.Reshape(Shape{4})
	b.F32()[0] = 42
	if a.F32()[0] != 42 {
		t.Error("Reshape must share storage")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad reshape should panic")
		}
	}()
	a.Reshape(Shape{3})
}

func TestToFloat32AndQuantizeTo(t *testing.T) {
	f := FromF32([]float32{-1, 0, 0.5, 1}, Shape{4})
	q := f.QuantizeTo(UInt8, QuantParams{Scale: 1.0 / 128, ZeroPoint: 128})
	back := q.ToFloat32()
	for i := 0; i < 4; i++ {
		if math.Abs(float64(back.F32()[i])-float64(f.F32()[i])) > 1.0/128 {
			t.Errorf("quantize/dequantize roundtrip error at %d: %g vs %g", i, back.F32()[i], f.F32()[i])
		}
	}
}

func TestAllCloseAndMaxAbsDiff(t *testing.T) {
	a := FromF32([]float32{1, 2, 3}, Shape{3})
	b := FromF32([]float32{1, 2.0005, 3}, Shape{3})
	if !AllClose(a, b, 1e-3, 0) {
		t.Error("AllClose should accept within atol")
	}
	if AllClose(a, b, 1e-6, 0) {
		t.Error("AllClose should reject outside atol")
	}
	if d := MaxAbsDiff(a, b); math.Abs(d-0.0005) > 1e-6 {
		t.Errorf("MaxAbsDiff = %g", d)
	}
	c := FromF32([]float32{1}, Shape{1})
	if AllClose(a, c, 1, 1) {
		t.Error("AllClose must reject shape mismatch")
	}
}

func TestArgMax(t *testing.T) {
	a := FromF32([]float32{0.1, 0.9, 0.3}, Shape{3})
	if a.ArgMax() != 1 {
		t.Errorf("ArgMax = %d", a.ArgMax())
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := NewRNG(42)
	tensors := []*Tensor{
		New(Float32, Shape{2, 3}),
		New(Int32, Shape{5}),
		FromI8([]int8{-128, 0, 127}, Shape{3}, QuantParams{Scale: 0.1, ZeroPoint: -3}),
		FromU8([]uint8{0, 128, 255}, Shape{3}, QuantParams{Scale: 0.02, ZeroPoint: 128}),
		Scalar(3.25),
	}
	tensors[0].FillUniform(rng, -1, 1)
	for _, src := range tensors {
		var buf bytes.Buffer
		if err := src.Serialize(&buf); err != nil {
			t.Fatalf("serialize %s: %v", src, err)
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("deserialize %s: %v", src, err)
		}
		if got.DType != src.DType || !got.Shape.Equal(src.Shape) {
			t.Fatalf("roundtrip mismatch: %s vs %s", got, src)
		}
		if (got.Quant == nil) != (src.Quant == nil) {
			t.Fatalf("quant presence mismatch for %s", src)
		}
		if got.Quant != nil && *got.Quant != *src.Quant {
			t.Fatalf("quant mismatch: %v vs %v", got.Quant, src.Quant)
		}
		if !AllClose(got, src, 0, 0) {
			t.Fatalf("data mismatch for %s", src)
		}
	}
}

func TestReadFromRejectsCorrupt(t *testing.T) {
	cases := [][]byte{
		{},
		{99, 0},                  // bad dtype
		{0, 7},                   // bad quant flag
		{0, 0, 0xff, 0xff, 0, 0}, // absurd rank
		{0, 0, 1, 0, 0, 0, 2, 0}, // truncated shape+data
	}
	for i, c := range cases {
		if _, err := ReadFrom(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: corrupt stream accepted", i)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Error("zero seed must be remapped")
	}
}

func TestFillGlorotRange(t *testing.T) {
	tt := New(Float32, Shape{64, 3, 3, 16})
	tt.FillGlorot(NewRNG(1), 3*3*16, 64)
	limit := math.Sqrt(6.0 / float64(3*3*16+64))
	for i, v := range tt.F32() {
		if math.Abs(float64(v)) > limit {
			t.Fatalf("element %d = %g exceeds glorot limit %g", i, v, limit)
		}
	}
}

// Property: quantize→dequantize error is bounded by scale/2 for values
// representable in range.
func TestQuantRoundTripProperty(t *testing.T) {
	q := QuantParams{Scale: 0.03, ZeroPoint: 10}
	f := func(x float64) bool {
		x = math.Mod(x, 3) // keep in representable range of int8-ish span
		if math.IsNaN(x) {
			return true
		}
		back := q.Dequantize(q.Quantize(x))
		return math.Abs(back-x) <= q.Scale/2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: serialize→deserialize is the identity on float tensors.
func TestSerializeProperty(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			raw = []float32{0}
		}
		for i, v := range raw {
			if math.IsNaN(float64(v)) {
				raw[i] = 0
			}
		}
		src := FromF32(raw, Shape{len(raw)})
		var buf bytes.Buffer
		if err := src.Serialize(&buf); err != nil {
			return false
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			return false
		}
		return AllClose(got, src, 0, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: broadcast fill/readback agree across all dtypes.
func TestSetGetFProperty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		v = math.Mod(v, 100)
		tt := New(Float32, Shape{1})
		tt.SetF(0, v)
		return math.Abs(tt.GetF(0)-v) < 1e-4*(1+math.Abs(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromConstructorsValidateLength(t *testing.T) {
	cases := []func(){
		func() { FromF32([]float32{1, 2}, Shape{3}) },
		func() { FromI8([]int8{1}, Shape{2}, QuantParams{Scale: 1}) },
		func() { FromU8([]uint8{1}, Shape{2}, QuantParams{Scale: 1}) },
		func() { FromI32([]int32{1}, Shape{2}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: length mismatch not rejected", i)
				}
			}()
			f()
		}()
	}
}

func TestTypedAccessorPanicsOnWrongDType(t *testing.T) {
	f := New(Float32, Shape{1})
	defer func() {
		if recover() == nil {
			t.Error("I8() on float tensor should panic")
		}
	}()
	f.I8()
}
