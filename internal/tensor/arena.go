package tensor

import "fmt"

// Arena is a preallocated pool of storage buffers that the planned graph
// executor's static memory planner hands out to intermediate tensors. Each
// storage is one flat buffer of a fixed dtype and element count; value slots
// bind to a storage through View, which shares the backing store but carries
// the slot's own shape and quantization parameters. Because the planner
// assigns storages by liveness, two views of the same storage are never live
// at the same time, and the arena is allocated once per executor instance —
// steady-state inference performs no heap allocation for intermediates.
type Arena struct {
	storages []*Tensor
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Add allocates one storage buffer and returns its id.
func (a *Arena) Add(dt DType, elems int) int {
	a.storages = append(a.storages, New(dt, Shape{elems}))
	return len(a.storages) - 1
}

// Storages returns the number of allocated storage buffers.
func (a *Arena) Storages() int { return len(a.storages) }

// Bytes returns the total allocated arena size.
func (a *Arena) Bytes() int {
	n := 0
	for _, s := range a.storages {
		n += s.Bytes()
	}
	return n
}

// View binds a tensor of the given shape (and optional quantization params)
// to storage id. The dtype and element count must match the storage exactly;
// the memory planner only coalesces identically-sized slots.
func (a *Arena) View(id int, dt DType, shape Shape, q *QuantParams) (*Tensor, error) {
	if id < 0 || id >= len(a.storages) {
		return nil, fmt.Errorf("tensor: arena view of storage %d, arena has %d", id, len(a.storages))
	}
	s := a.storages[id]
	if s.DType != dt {
		return nil, fmt.Errorf("tensor: arena storage %d is %s, view wants %s", id, s.DType, dt)
	}
	if s.Elems() != shape.Elems() {
		return nil, fmt.Errorf("tensor: arena storage %d holds %d elems, view wants %s", id, s.Elems(), shape)
	}
	v := s.Reshape(shape)
	if q != nil {
		qq := *q
		v.Quant = &qq
	} else {
		v.Quant = nil
	}
	return v, nil
}

// Zero clears every element to raw zero. Kernels that rely on zero-initialized
// output (padding regions, accumulate-into loops) call this before reusing a
// destination buffer.
func (t *Tensor) Zero() {
	switch t.DType {
	case Float32:
		clearF32(t.f32)
	case Int8:
		for i := range t.i8 {
			t.i8[i] = 0
		}
	case UInt8:
		for i := range t.u8 {
			t.u8[i] = 0
		}
	case Int32:
		for i := range t.i32 {
			t.i32[i] = 0
		}
	}
}

func clearF32(s []float32) {
	for i := range s {
		s[i] = 0
	}
}

// CopyFrom copies src's raw storage into t. The dtype and element count must
// match; shapes may differ (reshape-style kernels copy across shapes sharing
// a flat layout).
func (t *Tensor) CopyFrom(src *Tensor) error {
	if t.DType != src.DType {
		return fmt.Errorf("tensor: CopyFrom %s into %s", src.DType, t.DType)
	}
	if t.Elems() != src.Elems() {
		return fmt.Errorf("tensor: CopyFrom %d elems into %d", src.Elems(), t.Elems())
	}
	switch t.DType {
	case Float32:
		copy(t.f32, src.f32)
	case Int8:
		copy(t.i8, src.i8)
	case UInt8:
		copy(t.u8, src.u8)
	case Int32:
		copy(t.i32, src.i32)
	}
	return nil
}
