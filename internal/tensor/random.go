package tensor

import "math"

// RNG is a small deterministic xorshift64* generator. Model-zoo weight
// synthesis must be reproducible across runs and platforms, so we avoid
// math/rand (whose stream is not guaranteed stable across Go versions) and
// carry our own.
type RNG struct{ state uint64 }

// NewRNG seeds a generator; a zero seed is remapped to a fixed constant
// because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0,n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns an approximately standard-normal value (Irwin–Hall sum of 12
// uniforms); adequate for synthetic weight initialization.
func (r *RNG) Norm() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// FillUniform fills t with uniform real-domain values in [lo,hi).
func (t *Tensor) FillUniform(r *RNG, lo, hi float64) {
	for i, n := 0, t.Elems(); i < n; i++ {
		t.SetF(i, lo+(hi-lo)*r.Float64())
	}
}

// FillGlorot fills t with Glorot/Xavier-style values scaled by fan-in/out,
// the initialization the synthetic model zoo uses so activations stay in a
// sane numeric range through deep networks.
func (t *Tensor) FillGlorot(r *RNG, fanIn, fanOut int) {
	if fanIn <= 0 {
		fanIn = 1
	}
	if fanOut <= 0 {
		fanOut = 1
	}
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	t.FillUniform(r, -limit, limit)
}
