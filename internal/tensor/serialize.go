package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The binary tensor format used by artifact export (runtime package) and by
// the synthetic serialized model formats (tflite-like, darknet .weights):
//
//	u8    dtype
//	u8    hasQuant (0/1)
//	[f64 scale, i32 zeroPoint]   if hasQuant
//	u32   rank
//	u32 × rank   extents
//	raw little-endian element data
const maxSerializedRank = 32

// Serialize writes the tensor to w in the binary tensor format.
func (t *Tensor) Serialize(w io.Writer) error {
	hdr := []byte{byte(t.DType), 0}
	if t.Quant != nil {
		hdr[1] = 1
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if t.Quant != nil {
		if err := binary.Write(w, binary.LittleEndian, t.Quant.Scale); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, t.Quant.ZeroPoint); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(t.Shape))); err != nil {
		return err
	}
	for _, d := range t.Shape {
		if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
			return err
		}
	}
	return t.writeData(w)
}

func (t *Tensor) writeData(w io.Writer) error {
	switch t.DType {
	case Float32:
		buf := make([]byte, 4*len(t.f32))
		for i, v := range t.f32 {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		_, err := w.Write(buf)
		return err
	case Int32:
		buf := make([]byte, 4*len(t.i32))
		for i, v := range t.i32 {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
		}
		_, err := w.Write(buf)
		return err
	case Int8:
		buf := make([]byte, len(t.i8))
		for i, v := range t.i8 {
			buf[i] = byte(v)
		}
		_, err := w.Write(buf)
		return err
	case UInt8:
		_, err := w.Write(t.u8)
		return err
	}
	return fmt.Errorf("tensor: cannot serialize dtype %s", t.DType)
}

// ReadFrom deserializes one tensor from r.
func ReadFrom(r io.Reader) (*Tensor, error) {
	hdr := make([]byte, 2)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	dt := DType(hdr[0])
	if dt != Float32 && dt != Int8 && dt != UInt8 && dt != Int32 {
		return nil, fmt.Errorf("tensor: corrupt stream, dtype byte %d", hdr[0])
	}
	var quant *QuantParams
	if hdr[1] == 1 {
		var q QuantParams
		if err := binary.Read(r, binary.LittleEndian, &q.Scale); err != nil {
			return nil, err
		}
		if err := binary.Read(r, binary.LittleEndian, &q.ZeroPoint); err != nil {
			return nil, err
		}
		quant = &q
	} else if hdr[1] != 0 {
		return nil, fmt.Errorf("tensor: corrupt stream, quant flag %d", hdr[1])
	}
	var rank uint32
	if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
		return nil, err
	}
	if rank > maxSerializedRank {
		return nil, fmt.Errorf("tensor: corrupt stream, rank %d", rank)
	}
	shape := make(Shape, rank)
	for i := range shape {
		var d uint32
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return nil, err
		}
		shape[i] = int(d)
	}
	if !shape.Valid() && rank > 0 {
		return nil, fmt.Errorf("tensor: corrupt stream, shape %v", shape)
	}
	t := New(dt, shape)
	t.Quant = quant
	if err := t.readData(r); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Tensor) readData(r io.Reader) error {
	n := t.Elems()
	switch t.DType {
	case Float32:
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		for i := range t.f32 {
			t.f32[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	case Int32:
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		for i := range t.i32 {
			t.i32[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	case Int8:
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		for i := range t.i8 {
			t.i8[i] = int8(buf[i])
		}
	case UInt8:
		if _, err := io.ReadFull(r, t.u8); err != nil {
			return err
		}
	}
	return nil
}
