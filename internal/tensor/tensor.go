// Package tensor provides the dense n-dimensional array type shared by every
// layer of the stack: frontends deserialize weights into Tensors, the relay
// interpreter and TOPI kernels compute on them, and the Neuron runtime moves
// them between simulated devices.
//
// Layout convention: 4-D activation tensors are NHWC and 4-D convolution
// weights are OHWI (output, height, width, input), matching the tensor layout
// used by NNAPI-style mobile stacks such as NeuroPilot.
package tensor

import (
	"fmt"
	"strings"
)

// DType enumerates the element types supported by the stack. These mirror the
// types exercised in the paper: float32 models and int8/uint8 quantized
// models (with int32 bias/accumulator tensors).
type DType uint8

const (
	Float32 DType = iota
	Int8
	UInt8
	Int32
)

// Size returns the element width in bytes.
func (d DType) Size() int {
	switch d {
	case Float32, Int32:
		return 4
	case Int8, UInt8:
		return 1
	}
	panic(fmt.Sprintf("tensor: unknown dtype %d", d))
}

// IsQuantized reports whether the dtype is one of the 8-bit quantized types.
func (d DType) IsQuantized() bool { return d == Int8 || d == UInt8 }

func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Int8:
		return "int8"
	case UInt8:
		return "uint8"
	case Int32:
		return "int32"
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// ParseDType converts a dtype name (as used in serialized model formats) back
// to a DType.
func ParseDType(s string) (DType, error) {
	switch s {
	case "float32", "f32":
		return Float32, nil
	case "int8", "i8":
		return Int8, nil
	case "uint8", "u8":
		return UInt8, nil
	case "int32", "i32":
		return Int32, nil
	}
	return Float32, fmt.Errorf("tensor: unknown dtype %q", s)
}

// Shape is a tensor shape. A nil/empty shape denotes a scalar.
type Shape []int

// Elems returns the total element count, 1 for scalars.
func (s Shape) Elems() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Equal reports whether two shapes have identical rank and extents.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Valid reports whether every extent is positive.
func (s Shape) Valid() bool {
	for _, d := range s {
		if d <= 0 {
			return false
		}
	}
	return true
}

// QuantParams holds affine per-tensor quantization parameters:
// real = scale * (q - zeroPoint). In relay QNN these live on operators; in
// Neuron IR (and hence across the BYOC boundary) they must be carried on
// every tensor — the mismatch §3.3 of the paper resolves.
type QuantParams struct {
	Scale     float64
	ZeroPoint int32
}

// Quantize maps a real value to the quantized domain (unclamped).
func (q QuantParams) Quantize(real float64) int32 {
	return int32(roundHalfAway(real/q.Scale)) + q.ZeroPoint
}

// Dequantize maps a quantized value back to the real domain.
func (q QuantParams) Dequantize(qv int32) float64 {
	return q.Scale * float64(qv-q.ZeroPoint)
}

func roundHalfAway(x float64) float64 {
	if x >= 0 {
		return float64(int64(x + 0.5))
	}
	return float64(int64(x - 0.5))
}

// Tensor is a dense array of one of the supported dtypes. Exactly one of the
// backing slices is non-nil, selected by DType. Quant is non-nil only for
// quantized tensors.
type Tensor struct {
	DType DType
	Shape Shape
	Quant *QuantParams

	f32 []float32
	i8  []int8
	u8  []uint8
	i32 []int32
}

// New allocates a zero-filled tensor.
func New(dt DType, shape Shape) *Tensor {
	t := &Tensor{DType: dt, Shape: shape.Clone()}
	n := shape.Elems()
	switch dt {
	case Float32:
		t.f32 = make([]float32, n)
	case Int8:
		t.i8 = make([]int8, n)
	case UInt8:
		t.u8 = make([]uint8, n)
	case Int32:
		t.i32 = make([]int32, n)
	default:
		panic(fmt.Sprintf("tensor: unknown dtype %d", dt))
	}
	return t
}

// FromF32 wraps a float32 slice (not copied) as a tensor.
func FromF32(data []float32, shape Shape) *Tensor {
	if len(data) != shape.Elems() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{DType: Float32, Shape: shape.Clone(), f32: data}
}

// FromI8 wraps an int8 slice as a quantized tensor.
func FromI8(data []int8, shape Shape, q QuantParams) *Tensor {
	if len(data) != shape.Elems() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{DType: Int8, Shape: shape.Clone(), f32: nil, i8: data, Quant: &q}
}

// FromU8 wraps a uint8 slice as a quantized tensor.
func FromU8(data []uint8, shape Shape, q QuantParams) *Tensor {
	if len(data) != shape.Elems() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{DType: UInt8, Shape: shape.Clone(), u8: data, Quant: &q}
}

// FromI32 wraps an int32 slice as a tensor (used for quantized biases).
func FromI32(data []int32, shape Shape) *Tensor {
	if len(data) != shape.Elems() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{DType: Int32, Shape: shape.Clone(), i32: data}
}

// Scalar returns a rank-0 float32 tensor holding v.
func Scalar(v float32) *Tensor { return FromF32([]float32{v}, Shape{}) }

// F32 returns the float32 backing slice; panics on dtype mismatch.
func (t *Tensor) F32() []float32 {
	if t.DType != Float32 {
		panic("tensor: F32() on " + t.DType.String())
	}
	return t.f32
}

// I8 returns the int8 backing slice; panics on dtype mismatch.
func (t *Tensor) I8() []int8 {
	if t.DType != Int8 {
		panic("tensor: I8() on " + t.DType.String())
	}
	return t.i8
}

// U8 returns the uint8 backing slice; panics on dtype mismatch.
func (t *Tensor) U8() []uint8 {
	if t.DType != UInt8 {
		panic("tensor: U8() on " + t.DType.String())
	}
	return t.u8
}

// I32 returns the int32 backing slice; panics on dtype mismatch.
func (t *Tensor) I32() []int32 {
	if t.DType != Int32 {
		panic("tensor: I32() on " + t.DType.String())
	}
	return t.i32
}

// Elems returns the element count.
func (t *Tensor) Elems() int { return t.Shape.Elems() }

// Bytes returns the backing-store size in bytes; used by the SoC cost model
// to charge memory traffic.
func (t *Tensor) Bytes() int { return t.Elems() * t.DType.Size() }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{DType: t.DType, Shape: t.Shape.Clone()}
	if t.Quant != nil {
		q := *t.Quant
		c.Quant = &q
	}
	switch t.DType {
	case Float32:
		c.f32 = append([]float32(nil), t.f32...)
	case Int8:
		c.i8 = append([]int8(nil), t.i8...)
	case UInt8:
		c.u8 = append([]uint8(nil), t.u8...)
	case Int32:
		c.i32 = append([]int32(nil), t.i32...)
	}
	return c
}

// Reshape returns a view with a new shape sharing the backing store.
// The element count must match.
func (t *Tensor) Reshape(shape Shape) *Tensor {
	if shape.Elems() != t.Elems() {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes element count", t.Shape, shape))
	}
	v := *t
	v.Shape = shape.Clone()
	return &v
}

// GetF returns element i as a float64 in the *real* domain: quantized
// tensors are dequantized through their QuantParams. This is the accessor
// used by accuracy checks that compare quantized against float execution.
func (t *Tensor) GetF(i int) float64 {
	switch t.DType {
	case Float32:
		return float64(t.f32[i])
	case Int8:
		v := int32(t.i8[i])
		if t.Quant != nil {
			return t.Quant.Dequantize(v)
		}
		return float64(v)
	case UInt8:
		v := int32(t.u8[i])
		if t.Quant != nil {
			return t.Quant.Dequantize(v)
		}
		return float64(v)
	case Int32:
		return float64(t.i32[i])
	}
	panic("tensor: unknown dtype")
}

// GetRaw returns element i in the quantized/storage domain without
// dequantization.
func (t *Tensor) GetRaw(i int) int32 {
	switch t.DType {
	case Int8:
		return int32(t.i8[i])
	case UInt8:
		return int32(t.u8[i])
	case Int32:
		return t.i32[i]
	case Float32:
		return int32(t.f32[i])
	}
	panic("tensor: unknown dtype")
}

// SetF stores a real-domain value into element i, quantizing if needed.
func (t *Tensor) SetF(i int, v float64) {
	switch t.DType {
	case Float32:
		t.f32[i] = float32(v)
	case Int8:
		q := int32(v)
		if t.Quant != nil {
			q = t.Quant.Quantize(v)
		}
		t.i8[i] = int8(clampI32(q, -128, 127))
	case UInt8:
		q := int32(v)
		if t.Quant != nil {
			q = t.Quant.Quantize(v)
		}
		t.u8[i] = uint8(clampI32(q, 0, 255))
	case Int32:
		t.i32[i] = int32(v)
	}
}

func clampI32(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Index computes the flat offset of a row-major multi-index.
func (t *Tensor) Index(idx ...int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, d := range t.Shape {
		if idx[i] < 0 || idx[i] >= d {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.Shape))
		}
		off = off*d + idx[i]
	}
	return off
}

// At returns the real-domain value at a multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.GetF(t.Index(idx...)) }

// Set stores a real-domain value at a multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.SetF(t.Index(idx...), v) }

// Fill sets every element to the real-domain value v.
func (t *Tensor) Fill(v float64) {
	for i, n := 0, t.Elems(); i < n; i++ {
		t.SetF(i, v)
	}
}

// ToFloat32 converts (dequantizing if needed) to a float32 tensor.
func (t *Tensor) ToFloat32() *Tensor {
	if t.DType == Float32 {
		return t
	}
	out := New(Float32, t.Shape)
	for i, n := 0, t.Elems(); i < n; i++ {
		out.f32[i] = float32(t.GetF(i))
	}
	return out
}

// QuantizeTo converts a float32 tensor into the given quantized dtype using
// params q.
func (t *Tensor) QuantizeTo(dt DType, q QuantParams) *Tensor {
	if !dt.IsQuantized() {
		panic("tensor: QuantizeTo requires a quantized dtype")
	}
	src := t.ToFloat32()
	out := New(dt, t.Shape)
	out.Quant = &q
	for i, n := 0, t.Elems(); i < n; i++ {
		out.SetF(i, float64(src.f32[i]))
	}
	return out
}

func (t *Tensor) String() string {
	q := ""
	if t.Quant != nil {
		q = fmt.Sprintf(" q(scale=%g,zp=%d)", t.Quant.Scale, t.Quant.ZeroPoint)
	}
	return fmt.Sprintf("Tensor[%s %s%s]", t.DType, t.Shape, q)
}

// AllClose reports whether two tensors have equal shape and element-wise
// real-domain values within atol + rtol*|b|.
func AllClose(a, b *Tensor, atol, rtol float64) bool {
	if !a.Shape.Equal(b.Shape) {
		return false
	}
	for i, n := 0, a.Elems(); i < n; i++ {
		av, bv := a.GetF(i), b.GetF(i)
		d := av - bv
		if d < 0 {
			d = -d
		}
		bb := bv
		if bb < 0 {
			bb = -bb
		}
		if d > atol+rtol*bb {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the maximum element-wise absolute difference in the
// real domain; useful for accuracy reporting in tests and EXPERIMENTS.md.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !a.Shape.Equal(b.Shape) {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	max := 0.0
	for i, n := 0, a.Elems(); i < n; i++ {
		d := a.GetF(i) - b.GetF(i)
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// ArgMax returns the flat index of the maximum real-domain element.
func (t *Tensor) ArgMax() int {
	best, bestV := 0, t.GetF(0)
	for i, n := 1, t.Elems(); i < n; i++ {
		if v := t.GetF(i); v > bestV {
			best, bestV = i, v
		}
	}
	return best
}
