package verify

import (
	"sort"

	"repro/internal/neuron"
	"repro/internal/soc"
)

// RegistrySnapshot is the cross-registry state the lint audits: the relay op
// registry, the NIR converter's op-handler dictionary, the TOPI kernel
// inventory, and the Neuron opcode catalogue with its per-device support
// sets. It is plain data + closures so the verifier stays below
// internal/nir and internal/topi in the dependency order;
// nir.VerifySnapshot assembles the live one.
type RegistrySnapshot struct {
	// RelayOps is relay.OpNames(): every registered relay operator.
	RelayOps []string
	// NIRHandlers is nir.SupportedOpNames(): relay ops with a Neuron
	// conversion handler.
	NIRHandlers []string
	// OpcodeOf maps a handled relay op name to its Neuron opcode
	// (nir.OpcodeOf).
	OpcodeOf func(string) (neuron.OpCode, bool)
	// TOPIKernels is topi.KernelNames(): ops with a reference kernel.
	TOPIKernels []string
	// Devices are the NeuroPilot backends to audit coverage for; empty
	// defaults to CPU+APU+GPU.
	Devices []soc.DeviceKind
}

// Registries cross-checks the four operator registries so that a new op
// cannot be half-registered: every relay op with an NIR handler must exist
// in the op registry and map to a known Neuron opcode, every TOPI kernel
// must implement a registered relay op (and vice versa), and every Neuron
// opcode must resolve to real reference kernels and be executable on at
// least one backend device.
func Registries(s RegistrySnapshot) *Result {
	res := &Result{}
	devices := s.Devices
	if len(devices) == 0 {
		devices = []soc.DeviceKind{soc.KindCPU, soc.KindAPU, soc.KindGPU}
	}
	relayOps := toSet(s.RelayOps)
	kernels := toSet(s.TOPIKernels)

	// NIR handler dictionary ↔ relay op registry ↔ Neuron opcode catalogue.
	handlers := append([]string(nil), s.NIRHandlers...)
	sort.Strings(handlers)
	for _, name := range handlers {
		if !relayOps[name] {
			res.errorf("nir-orphan-handler", "nir:"+name,
				"converter has a handler for %q but the relay op registry does not define it", name)
		}
		code, ok := s.OpcodeOf(name)
		if !ok {
			res.errorf("nir-no-opcode", "nir:"+name,
				"handled relay op %q maps to no Neuron opcode (device-coverage checks cannot see it)", name)
			continue
		}
		if !neuron.KnownOpCode(code) {
			res.errorf("nir-no-opcode", "nir:"+name,
				"handled relay op %q maps to unknown Neuron opcode %d", name, int(code))
		}
	}

	// TOPI kernel inventory ↔ relay op registry.
	for _, name := range s.TOPIKernels {
		if !relayOps[name] {
			res.errorf("topi-orphan-kernel", "topi:"+name,
				"kernel %q implements no registered relay op", name)
		}
	}
	for _, name := range s.RelayOps {
		if !kernels[name] {
			res.errorf("relay-op-no-kernel", "relay:"+name,
				"relay op %q has no TOPI kernel — the graph executor cannot run it", name)
		}
	}

	// Neuron opcode catalogue: reference kernels and device coverage.
	for _, code := range neuron.OpCodes() {
		where := "neuron:" + code.String()
		for _, quantized := range []bool{false, true} {
			k := neuron.KernelFor(code, quantized)
			if k == "" {
				res.errorf("neuron-no-kernel", where,
					"opcode has no reference kernel mapping (quantized=%v)", quantized)
			} else if !kernels[k] {
				res.errorf("neuron-no-kernel", where,
					"opcode maps to kernel %q, which is not in the TOPI inventory (quantized=%v)", k, quantized)
			}
		}
		supported := false
		for _, d := range devices {
			if neuron.SupportedOn(code, d) {
				supported = true
				break
			}
		}
		if !supported {
			res.errorf("neuron-no-device", where,
				"no enabled device's supported-op set contains the opcode (devices %v)", devices)
		}
	}
	return res
}

// RegistriesErr is Registries returning an error.
func RegistriesErr(s RegistrySnapshot) error { return Registries(s).Err() }

func toSet(names []string) map[string]bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return set
}
