// Package verify is the IR verifier subsystem: MLIR-style invariant checking
// for the two IRs of the stack. verify.Module audits relay well-formedness
// (bound variables, checked types consistent with the op registry, BYOC
// region structure, the QNN quantization invariant) and verify.NeuronModel
// audits the tensor-oriented Neuron IR (operand indices, per-operation arity,
// topological order, the §3.3 every-quantized-operand-has-params invariant,
// execution-plan device coverage).
//
// Verifiers return structured diagnostics rather than a bare error so that
// callers — the verify-after-each-pass instrumentation in internal/passes,
// the frontends, and the npc -verify/-lint driver modes — can report the
// severity, invariant class, offending node and pass provenance of every
// finding at once.
//
// The package sits below internal/passes and internal/nir in the dependency
// order (it imports only relay, neuron and soc), so both the pass pipeline
// and the BYOC flow can verify their outputs without an import cycle.
package verify

import (
	"fmt"
	"strings"
)

// Severity ranks a diagnostic.
type Severity int

const (
	// SevWarning marks a suspicious but executable construct.
	SevWarning Severity = iota
	// SevError marks a broken invariant: the module must not proceed to
	// codegen or execution.
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Diagnostic is one verifier finding.
type Diagnostic struct {
	Sev Severity
	// Check names the invariant class, e.g. "unbound-var" or "op-arity".
	Check string
	// Where locates the offending node: function name plus a pretty-printed
	// one-line context of the expression or operation.
	Where string
	// Pass records provenance when the verifier ran as pass instrumentation
	// ("" when the module did not come out of a named pass).
	Pass string
	Msg  string
}

func (d Diagnostic) String() string {
	var b strings.Builder
	b.WriteString(d.Sev.String())
	b.WriteString(" [")
	b.WriteString(d.Check)
	b.WriteString("]")
	if d.Pass != "" {
		fmt.Fprintf(&b, " (after %s)", d.Pass)
	}
	if d.Where != "" {
		b.WriteString(" at ")
		b.WriteString(d.Where)
	}
	b.WriteString(": ")
	b.WriteString(d.Msg)
	return b.String()
}

// Result collects the diagnostics of one verifier run.
type Result struct {
	Diags []Diagnostic
}

func (r *Result) add(sev Severity, check, where, format string, args ...interface{}) {
	r.Diags = append(r.Diags, Diagnostic{
		Sev:   sev,
		Check: check,
		Where: where,
		Msg:   fmt.Sprintf(format, args...),
	})
}

func (r *Result) errorf(check, where, format string, args ...interface{}) {
	r.add(SevError, check, where, format, args...)
}

func (r *Result) warnf(check, where, format string, args ...interface{}) {
	r.add(SevWarning, check, where, format, args...)
}

// Merge appends another result's diagnostics.
func (r *Result) Merge(o *Result) {
	if o != nil {
		r.Diags = append(r.Diags, o.Diags...)
	}
}

// Errors returns the error-severity diagnostics.
func (r *Result) Errors() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Sev == SevError {
			out = append(out, d)
		}
	}
	return out
}

// OK reports whether no error-severity diagnostic was recorded.
func (r *Result) OK() bool { return len(r.Errors()) == 0 }

// Has reports whether any diagnostic of the given invariant class was
// recorded; the mutation tests assert on it.
func (r *Result) Has(check string) bool {
	for _, d := range r.Diags {
		if d.Check == check {
			return true
		}
	}
	return false
}

// Err converts the result into an error: nil when OK, otherwise an *Error
// wrapping every diagnostic.
func (r *Result) Err() error {
	if r.OK() {
		return nil
	}
	return &Error{Diags: r.Diags}
}

// Error is the error form of a failed verification; it renders every
// diagnostic, errors first.
type Error struct {
	Diags []Diagnostic
}

func (e *Error) Error() string {
	var errs, warns []string
	for _, d := range e.Diags {
		if d.Sev == SevError {
			errs = append(errs, d.String())
		} else {
			warns = append(warns, d.String())
		}
	}
	lines := append(errs, warns...)
	if len(lines) == 1 {
		return "verify: " + lines[0]
	}
	return fmt.Sprintf("verify: %d invariant violations:\n  %s",
		len(errs), strings.Join(lines, "\n  "))
}
