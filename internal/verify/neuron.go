package verify

import (
	"fmt"

	"repro/internal/neuron"
)

// opSignature is the NNAPI-style arity contract of one Neuron operation.
// minIn/maxIn bound the input operand count (maxIn < 0 means unbounded, the
// CONCATENATION case); outs is the exact output operand count. The fused
// forms the Neuron compiler produces (conv+bias, dense+bias) raise maxIn by
// one over the converter's unfused emission.
type opSignature struct {
	minIn, maxIn, outs int
}

var opSignatures = map[neuron.OpCode]opSignature{
	neuron.Conv2D:              {2, 3, 1}, // data, weight [, fused bias]
	neuron.DepthwiseConv2D:     {2, 3, 1},
	neuron.FullyConnected:      {2, 3, 1},
	neuron.MaxPool2D:           {1, 1, 1},
	neuron.AveragePool2D:       {1, 1, 1},
	neuron.GlobalAveragePool2D: {1, 1, 1},
	neuron.ReLU:                {1, 1, 1},
	neuron.Clamp:               {1, 1, 1},
	neuron.Logistic:            {1, 1, 1},
	neuron.TanhOp:              {1, 1, 1},
	neuron.Softmax:             {1, 1, 1},
	neuron.Add:                 {2, 2, 1},
	neuron.Sub:                 {2, 2, 1},
	neuron.Mul:                 {2, 2, 1},
	neuron.Max:                 {2, 2, 1},
	neuron.Min:                 {2, 2, 1},
	neuron.Concatenation:       {1, -1, 1},
	neuron.Reshape:             {1, 1, 1},
	neuron.Transpose:           {1, 1, 1},
	neuron.Squeeze:             {1, 1, 1},
	neuron.ExpandDims:          {1, 1, 1},
	neuron.Pad:                 {1, 1, 1},
	neuron.ResizeNearest:       {1, 1, 1},
	neuron.Quantize:            {1, 1, 1},
	neuron.Dequantize:          {1, 1, 1},
	neuron.Requantize:          {1, 1, 1},
	neuron.BiasAdd:             {2, 2, 1},
}

// fusedActivations are the activation names the Neuron operation-fusion pass
// may stamp on an anchor operation.
var fusedActivations = map[string]bool{"relu": true, "relu6": true}

// NeuronModel verifies the tensor-oriented invariants of a Neuron IR model:
// operand indices in bounds, every quantized operand carrying scale and
// zero-point (the paper's §3.3 invariant), per-operation arity against the
// NNAPI-style signature table, topological operation order, constants never
// written, and fused conv+bias+requantize+activation forms remaining valid.
func NeuronModel(m *neuron.Model) *Result {
	res := &Result{}
	n := len(m.Operands)
	where := func(oi int, op neuron.Operation) string {
		return fmt.Sprintf("model %q op #%d %s", m.Name, oi, op.Code)
	}
	inBounds := func(idx int) bool { return idx >= 0 && idx < n }

	// Operand table: quantization params and constant shape agreement.
	for i, od := range m.Operands {
		ow := fmt.Sprintf("model %q operand #%d (%s)", m.Name, i, od.Name)
		if od.Type.DType.IsQuantized() {
			if od.Type.Quant == nil {
				res.errorf("quant-params", ow,
					"operand is %s but carries no scale/zero-point — Neuron IR is tensor-oriented, "+
						"quantization parameters must ride on every operand", od.Type.DType)
			} else if od.Type.Quant.Scale <= 0 {
				res.errorf("quant-params", ow,
					"operand has non-positive quantization scale %g", od.Type.Quant.Scale)
			}
		}
		if od.IsConst() && !od.Const.Shape.Equal(od.Type.Shape) {
			res.errorf("const-type", ow,
				"constant value shape %s disagrees with declared %s", od.Const.Shape, od.Type.Shape)
		}
	}

	// Model inputs/outputs.
	for _, i := range m.Inputs {
		if !inBounds(i) {
			res.errorf("operand-range", fmt.Sprintf("model %q", m.Name),
				"input operand %d out of range (%d operands)", i, n)
		} else if m.Operands[i].IsConst() {
			res.errorf("input-const", fmt.Sprintf("model %q", m.Name),
				"input operand %d (%s) is a compile-time constant", i, m.Operands[i].Name)
		}
	}
	for _, i := range m.Outputs {
		if !inBounds(i) {
			res.errorf("operand-range", fmt.Sprintf("model %q", m.Name),
				"output operand %d out of range (%d operands)", i, n)
		}
	}

	// Operation list: arity, bounds, topological order, fusion attributes.
	defined := map[int]bool{}
	for _, i := range m.Inputs {
		if inBounds(i) {
			defined[i] = true
		}
	}
	for i, od := range m.Operands {
		if od.IsConst() {
			defined[i] = true
		}
	}
	for oi, op := range m.Operations {
		w := where(oi, op)
		if !neuron.KnownOpCode(op.Code) {
			res.errorf("unknown-opcode", w, "opcode %d is not in the Neuron catalogue", int(op.Code))
			continue
		}
		sig, ok := opSignatures[op.Code]
		if !ok {
			res.errorf("op-signature", w, "opcode has no signature in the verifier table")
			continue
		}
		if len(op.Inputs) < sig.minIn || (sig.maxIn >= 0 && len(op.Inputs) > sig.maxIn) {
			if sig.maxIn == sig.minIn {
				res.errorf("op-arity", w, "operation has %d inputs, signature wants %d",
					len(op.Inputs), sig.minIn)
			} else {
				res.errorf("op-arity", w, "operation has %d inputs, signature wants %d..%d",
					len(op.Inputs), sig.minIn, sig.maxIn)
			}
		}
		if len(op.Outputs) != sig.outs {
			res.errorf("op-arity", w, "operation has %d outputs, signature wants %d",
				len(op.Outputs), sig.outs)
		}
		for _, in := range op.Inputs {
			if !inBounds(in) {
				res.errorf("operand-range", w, "input operand %d out of range (%d operands)", in, n)
				continue
			}
			if !defined[in] {
				res.errorf("topo-order", w,
					"uses operand %d before any operation produces it (operations must be topologically ordered)", in)
			}
		}
		for _, out := range op.Outputs {
			if !inBounds(out) {
				res.errorf("operand-range", w, "output operand %d out of range (%d operands)", out, n)
				continue
			}
			if m.Operands[out].IsConst() {
				res.errorf("write-const", w, "writes constant operand %d (%s)", out, m.Operands[out].Name)
			}
			defined[out] = true
		}
		checkFusedForm(res, m, oi, op, w, inBounds)
	}
	for _, i := range m.Outputs {
		if inBounds(i) && !defined[i] {
			res.errorf("output-produced", fmt.Sprintf("model %q", m.Name),
				"model output %d is never produced by any operation", i)
		}
	}
	return res
}

// checkFusedForm validates the epilogues the Neuron operation-fusion pass
// attaches to an anchor: a third bias input must be a rank-1 constant, a
// fused activation must be a known activation name, and a fused requantize
// must carry its output scale.
func checkFusedForm(res *Result, m *neuron.Model, oi int, op neuron.Operation, w string, inBounds func(int) bool) {
	switch op.Code {
	case neuron.Conv2D, neuron.DepthwiseConv2D, neuron.FullyConnected:
		if len(op.Inputs) == 3 && inBounds(op.Inputs[2]) {
			bias := m.Operands[op.Inputs[2]]
			if !bias.IsConst() {
				res.errorf("fused-bias", w, "fused bias operand %d (%s) is not a constant", op.Inputs[2], bias.Name)
			} else if len(bias.Type.Shape) != 1 {
				res.errorf("fused-bias", w, "fused bias operand %d has shape %s, want rank 1",
					op.Inputs[2], bias.Type.Shape)
			}
		}
	}
	if act := op.Attrs.Str("fused_activation", ""); act != "" && !fusedActivations[act] {
		res.errorf("fused-activation", w, "fused activation %q is not a known activation", act)
	}
	if op.Attrs.Bool("fused_requantize", false) {
		if op.Attrs.Float("requant_output_scale", 0) <= 0 {
			res.errorf("fused-requantize", w,
				"operation fuses a requantize but carries no positive requant_output_scale attribute")
		}
	}
}

// NeuronModelErr is NeuronModel returning an error.
func NeuronModelErr(m *neuron.Model) error { return NeuronModel(m).Err() }

// Plan verifies a compiled model's execution plan: one device per operation,
// each drawn from the enabled device set, and each supporting the operation
// it was assigned — the Execution Planner must never place an op on a device
// whose supported-op set does not contain it.
func Plan(cm *neuron.CompiledModel) *Result {
	res := NeuronModel(cm.Model)
	enabled := map[int]bool{}
	for _, d := range cm.Devices {
		enabled[int(d)] = true
	}
	if len(cm.Plan) != len(cm.Model.Operations) {
		res.errorf("plan-length", fmt.Sprintf("model %q", cm.Model.Name),
			"plan covers %d operations, model has %d", len(cm.Plan), len(cm.Model.Operations))
		return res
	}
	for oi, dev := range cm.Plan {
		op := cm.Model.Operations[oi]
		w := fmt.Sprintf("model %q op #%d %s", cm.Model.Name, oi, op.Code)
		if !enabled[int(dev)] {
			res.errorf("plan-device", w, "assigned to %s, which is not among the enabled devices %v",
				dev, cm.Devices)
		}
		if !neuron.SupportedOn(op.Code, dev) {
			res.errorf("plan-unsupported", w,
				"assigned to %s, whose supported-op set does not contain %s", dev, op.Code)
		}
	}
	return res
}

// PlanErr is Plan returning an error.
func PlanErr(cm *neuron.CompiledModel) error { return Plan(cm).Err() }
