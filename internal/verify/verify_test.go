package verify_test

// Mutation-style coverage for the IR verifier: start from well-formed relay
// modules and Neuron models, apply one deliberate corruption per test, and
// assert the verifier reports exactly the invariant class that was broken.

import (
	"strings"
	"testing"

	"repro/internal/neuron"
	"repro/internal/passes"
	"repro/internal/relay"
	"repro/internal/soc"
	"repro/internal/tensor"
	"repro/internal/verify"
)

// convModule builds conv2d→relu over a 1×8×8×4 input and type-checks it.
func convModule(t *testing.T) (*relay.Module, *relay.Var, *relay.Call) {
	t.Helper()
	x := relay.NewVar("x", relay.TType(tensor.Float32, 1, 8, 8, 4))
	w := relay.Const(tensor.New(tensor.Float32, tensor.Shape{8, 3, 3, 4}))
	conv := relay.NewCall(relay.OpConv2D, []relay.Expr{x, w}, relay.Attrs{"padding": []int{1, 1, 1, 1}})
	relu := relay.NewCall(relay.OpReLU, []relay.Expr{conv}, nil)
	m := relay.NewModule(relay.NewFunc([]*relay.Var{x}, relu))
	if err := relay.InferModule(m); err != nil {
		t.Fatalf("well-formed module failed inference: %v", err)
	}
	return m, x, conv
}

// regionModule builds a module with one partitioned region, as
// PartitionGraph would emit it: main calls @nir_0 whose body is relu(p0).
func regionModule(t *testing.T) (*relay.Module, *relay.Function) {
	t.Helper()
	x := relay.NewVar("x", relay.TType(tensor.Float32, 1, 16))
	p0 := relay.NewVar("p0", relay.TType(tensor.Float32, 1, 16))
	region := relay.NewFunc([]*relay.Var{p0}, relay.NewCall(relay.OpReLU, []relay.Expr{p0}, nil))
	region.FnAttrs[relay.FnAttrCompiler] = "nir"
	region.FnAttrs[relay.FnAttrGlobalSymbol] = "nir_0"
	m := relay.NewModule(relay.NewFunc([]*relay.Var{x}, relay.NewFnCall(region, []relay.Expr{x})))
	if err := m.Add("nir_0", region); err != nil {
		t.Fatal(err)
	}
	if err := relay.InferModule(m); err != nil {
		t.Fatalf("well-formed region module failed inference: %v", err)
	}
	return m, region
}

func wantClean(t *testing.T, res *verify.Result) {
	t.Helper()
	if !res.OK() {
		t.Fatalf("well-formed IR reported errors: %v", res.Err())
	}
}

func wantCheck(t *testing.T, res *verify.Result, check string) {
	t.Helper()
	if res.OK() {
		t.Fatalf("corruption went undetected (want %q)", check)
	}
	if !res.Has(check) {
		t.Fatalf("corruption detected but with the wrong class: want %q, got %v", check, res.Err())
	}
}

func TestModuleWellFormed(t *testing.T) {
	m, _, _ := convModule(t)
	wantClean(t, verify.Module(m, verify.Options{}))
	rm, _ := regionModule(t)
	wantClean(t, verify.Module(rm, verify.Options{}))
}

func TestCorruptUnboundVar(t *testing.T) {
	m, _, _ := convModule(t)
	stray := relay.NewVar("stray", relay.TType(tensor.Float32, 1, 6, 6, 8))
	main := m.Main()
	m.SetMain(relay.NewFunc(main.Params, relay.NewCall(relay.OpReLU, []relay.Expr{stray}, nil)))
	if err := relay.InferModule(m); err != nil {
		t.Fatal(err) // inference alone does not catch unbound variables
	}
	wantCheck(t, verify.Module(m, verify.Options{}), "unbound-var")
}

func TestCorruptUntyped(t *testing.T) {
	// A module that never went through InferType: rewrite-produced calls
	// carry no checked type.
	x := relay.NewVar("x", relay.TType(tensor.Float32, 1, 16))
	body := relay.NewCall(relay.OpReLU, []relay.Expr{x}, nil)
	m := relay.NewModule(relay.NewFunc([]*relay.Var{x}, body))
	wantCheck(t, verify.Module(m, verify.Options{}), "untyped")
}

func TestCorruptStaleTypeAfterAttrRewrite(t *testing.T) {
	// A buggy pass mutates attributes without re-running inference: the
	// checked type no longer agrees with the registry's inference.
	m, _, conv := convModule(t)
	conv.Attrs["strides"] = []int{2, 2}
	wantCheck(t, verify.Module(m, verify.Options{}), "type-mismatch")
}

func TestCorruptOpSignature(t *testing.T) {
	// Mis-wired arity: conv2d handed a third argument.
	m, x, conv := convModule(t)
	conv.Args = append(conv.Args, x)
	wantCheck(t, verify.Module(m, verify.Options{}), "op-signature")
}

func TestCorruptQuantParamsDropped(t *testing.T) {
	// The §3.3 invariant at the relay level: a quantized tensor type whose
	// scale/zero-point were dropped.
	x := relay.NewVar("x", relay.TType(tensor.UInt8, 1, 16)) // quantized dtype, no QuantParams
	m := relay.NewModule(relay.NewFunc([]*relay.Var{x}, x))
	if err := relay.InferModule(m); err != nil {
		t.Fatal(err)
	}
	wantCheck(t, verify.Module(m, verify.Options{}), "quant-params")
}

func TestCorruptRegionAttrs(t *testing.T) {
	m, region := regionModule(t)
	region.FnAttrs[relay.FnAttrGlobalSymbol] = "nir_9" // no longer matches the binding
	wantCheck(t, verify.Module(m, verify.Options{}), "region-attrs")
}

func TestCorruptDeadBinding(t *testing.T) {
	m, _ := regionModule(t)
	p := relay.NewVar("p", relay.TType(tensor.Float32, 1, 16))
	orphan := relay.NewFunc([]*relay.Var{p}, relay.NewCall(relay.OpTanh, []relay.Expr{p}, nil))
	orphan.FnAttrs[relay.FnAttrCompiler] = "nir"
	orphan.FnAttrs[relay.FnAttrGlobalSymbol] = "nir_7"
	if err := m.Add("nir_7", orphan); err != nil {
		t.Fatal(err)
	}
	if err := relay.InferModule(m); err != nil {
		t.Fatal(err)
	}
	wantCheck(t, verify.Module(m, verify.Options{}), "dead-binding")
}

func TestCorruptNestedPartition(t *testing.T) {
	// Region convexity: a partitioned region must never contain another
	// partitioned region.
	m, region := regionModule(t)
	q := relay.NewVar("q", relay.TType(tensor.Float32, 1, 16))
	inner := relay.NewFunc([]*relay.Var{q}, relay.NewCall(relay.OpSigmoid, []relay.Expr{q}, nil))
	inner.FnAttrs[relay.FnAttrCompiler] = "nir"
	inner.FnAttrs[relay.FnAttrGlobalSymbol] = "nir_inner"
	newBody := relay.NewFnCall(inner, []relay.Expr{region.Body})
	m.SetMain(m.Main()) // keep main; rewrite the region in place
	region.Body = newBody
	if err := relay.InferModule(m); err != nil {
		t.Fatal(err)
	}
	wantCheck(t, verify.Module(m, verify.Options{}), "nested-partition")
}

func TestCorruptPrimitiveNested(t *testing.T) {
	// FuseOps output invariant: a fused Primitive kernel must not contain a
	// nested function.
	x := relay.NewVar("x", relay.TType(tensor.Float32, 1, 16))
	q := relay.NewVar("q", relay.TType(tensor.Float32, 1, 16))
	innerPrim := relay.NewFunc([]*relay.Var{q}, relay.NewCall(relay.OpReLU, []relay.Expr{q}, nil))
	innerPrim.FnAttrs[relay.FnAttrPrimitive] = "1"
	p := relay.NewVar("p", relay.TType(tensor.Float32, 1, 16))
	outerPrim := relay.NewFunc([]*relay.Var{p}, relay.NewFnCall(innerPrim, []relay.Expr{p}))
	outerPrim.FnAttrs[relay.FnAttrPrimitive] = "1"
	m := relay.NewModule(relay.NewFunc([]*relay.Var{x}, relay.NewFnCall(outerPrim, []relay.Expr{x})))
	if err := relay.InferModule(m); err != nil {
		t.Fatal(err)
	}
	wantCheck(t, verify.Module(m, verify.Options{}), "primitive-nested")
}

func TestCorruptCallArity(t *testing.T) {
	m, region := regionModule(t)
	m.SetMain(relay.NewFunc(m.Main().Params, relay.NewFnCall(region, nil))) // region wants 1 arg
	wantCheck(t, verify.Module(m, verify.Options{}), "call-arity")
}

func TestCorruptRegionUnsupportedOp(t *testing.T) {
	// Partitioning placed an op inside a region that the external codegen
	// has no handler for.
	m, region := regionModule(t)
	region.Body = relay.NewCall(relay.OpExp, []relay.Expr{region.Params[0]}, nil)
	if err := relay.InferModule(m); err != nil {
		t.Fatal(err)
	}
	opts := verify.Options{ExternalOps: map[string]func(*relay.Call) bool{
		"nir": func(c *relay.Call) bool { return c.Op.Name != "exp" },
	}}
	wantCheck(t, verify.Module(m, opts), "region-unsupported-op")
	// The same module is clean when the codegen does support exp.
	opts.ExternalOps["nir"] = func(*relay.Call) bool { return true }
	wantClean(t, verify.Module(m, opts))
}

// --- Neuron IR mutations ---

// denseModel builds in→FULLY_CONNECTED→out with a constant weight.
func denseModel(t *testing.T) *neuron.Model {
	t.Helper()
	m := neuron.NewModel("test")
	in := m.AddOperand("in", neuron.OperandType{Shape: tensor.Shape{1, 8}, DType: tensor.Float32}, nil)
	w := m.AddOperand("w", neuron.OperandType{Shape: tensor.Shape{4, 8}, DType: tensor.Float32},
		tensor.New(tensor.Float32, tensor.Shape{4, 8}))
	out := m.AddOperand("out", neuron.OperandType{Shape: tensor.Shape{1, 4}, DType: tensor.Float32}, nil)
	m.AddOperation(neuron.FullyConnected, []int{in, w}, []int{out}, nil)
	m.Inputs = []int{in}
	m.Outputs = []int{out}
	if err := m.Validate(); err != nil {
		t.Fatalf("well-formed Neuron model invalid: %v", err)
	}
	return m
}

func TestNeuronModelWellFormed(t *testing.T) {
	wantClean(t, verify.NeuronModel(denseModel(t)))
}

func TestCorruptOperandOutOfRange(t *testing.T) {
	m := denseModel(t)
	m.Operations[0].Inputs[1] = 99
	wantCheck(t, verify.NeuronModel(m), "operand-range")
}

func TestCorruptNeuronQuantDropped(t *testing.T) {
	// The §3.3 invariant at the Neuron level: a quantized operand whose
	// params were dropped on the way through the converter.
	m := denseModel(t)
	m.Operands[0].Type.DType = tensor.UInt8 // no Quant attached
	wantCheck(t, verify.NeuronModel(m), "quant-params")
}

func TestCorruptNeuronArity(t *testing.T) {
	m := denseModel(t)
	m.Operations[0].Inputs = m.Operations[0].Inputs[:1] // FULLY_CONNECTED with one input
	wantCheck(t, verify.NeuronModel(m), "op-arity")
}

func TestCorruptTopologicalOrder(t *testing.T) {
	m := denseModel(t)
	// Append a RELU reading an operand that only a *later* operation
	// produces.
	mid := m.AddOperand("mid", neuron.OperandType{Shape: tensor.Shape{1, 4}, DType: tensor.Float32}, nil)
	ops := []neuron.Operation{
		{Code: neuron.ReLU, Inputs: []int{mid}, Outputs: []int{m.Outputs[0]}, Attrs: relay.Attrs{}},
		{Code: neuron.FullyConnected, Inputs: m.Operations[0].Inputs, Outputs: []int{mid}, Attrs: relay.Attrs{}},
	}
	m.Operations = ops
	wantCheck(t, verify.NeuronModel(m), "topo-order")
}

func TestCorruptFusedActivation(t *testing.T) {
	m := denseModel(t)
	m.Operations[0].Attrs = relay.Attrs{neuron.FusedActivationAttr: "swish"}
	wantCheck(t, verify.NeuronModel(m), "fused-activation")
}

func TestCorruptFusedRequantize(t *testing.T) {
	m := denseModel(t)
	m.Operations[0].Attrs = relay.Attrs{neuron.FusedRequantAttr: true} // no requant_output_scale
	wantCheck(t, verify.NeuronModel(m), "fused-requantize")
}

func TestCorruptPlanUnsupportedDevice(t *testing.T) {
	// The Execution Planner invariant: plans only assign ops to devices
	// whose supported-op set contains them. LOGISTIC cannot run on the APU.
	m := neuron.NewModel("plan")
	in := m.AddOperand("in", neuron.OperandType{Shape: tensor.Shape{1, 4}, DType: tensor.Float32}, nil)
	out := m.AddOperand("out", neuron.OperandType{Shape: tensor.Shape{1, 4}, DType: tensor.Float32}, nil)
	m.AddOperation(neuron.Logistic, []int{in}, []int{out}, nil)
	m.Inputs, m.Outputs = []int{in}, []int{out}
	cm := &neuron.CompiledModel{
		Model:   m,
		SoC:     soc.NewDimensity800(),
		Devices: []soc.DeviceKind{soc.KindCPU, soc.KindAPU},
		Plan:    []soc.DeviceKind{soc.KindAPU},
	}
	wantCheck(t, verify.Plan(cm), "plan-unsupported")
	if err := cm.CheckPlan(); err == nil {
		t.Error("neuron.CheckPlan accepted an op on a device that does not support it")
	}
	cm.Plan[0] = soc.KindCPU
	wantClean(t, verify.Plan(cm))
	// A device outside the enabled set is rejected even when capable.
	cm.Devices = []soc.DeviceKind{soc.KindAPU}
	wantCheck(t, verify.Plan(cm), "plan-device")
}

// --- pass instrumentation ---

func TestVerifyAfterEachPassNamesTheBreakingPass(t *testing.T) {
	m, _, _ := convModule(t)
	broken := relay.NewVar("stray", relay.TType(tensor.Float32, 1, 16))
	breakIt := passes.Pass{
		Name: "BreakIt",
		Run: func(m *relay.Module, ctx *passes.Context) (*relay.Module, error) {
			out := m.Clone()
			out.SetMain(relay.NewFunc(m.Main().Params,
				relay.NewCall(relay.OpReLU, []relay.Expr{broken}, nil)))
			return out, nil
		},
	}
	ctx := passes.NewContext(3)
	ctx.VerifyAfterEachPass = func(m *relay.Module, pass string) error {
		return verify.ModuleErr(m, verify.Options{})
	}
	// A clean pipeline passes the instrumentation.
	if _, err := passes.Sequential(m.Clone(), ctx, passes.SimplifyInference(), passes.FoldConstant()); err != nil {
		t.Fatalf("clean pipeline failed instrumented run: %v", err)
	}
	// The breaking pass is caught and named.
	_, err := passes.Sequential(m, ctx, passes.SimplifyInference(), breakIt, passes.FoldConstant())
	if err == nil {
		t.Fatal("instrumentation missed a pass that emitted an unbound variable")
	}
	if !strings.Contains(err.Error(), "after BreakIt") {
		t.Errorf("error does not name the breaking pass: %v", err)
	}
	if !strings.Contains(err.Error(), "unbound-var") {
		t.Errorf("error does not name the broken invariant: %v", err)
	}
}

// --- registry lint ---

func TestRegistriesCatchHalfRegisteredOp(t *testing.T) {
	snap := verify.RegistrySnapshot{
		RelayOps:    []string{"nn.relu"},
		NIRHandlers: []string{"nn.relu", "nn.phantom"},
		OpcodeOf: func(name string) (neuron.OpCode, bool) {
			if name == "nn.relu" {
				return neuron.ReLU, true
			}
			return 0, false
		},
		TOPIKernels: []string{"nn.relu", "nn.orphan"},
	}
	res := verify.Registries(snap)
	for _, check := range []string{
		"nir-orphan-handler", // nn.phantom handled but not registered
		"nir-no-opcode",      // nn.phantom maps to no Neuron opcode
		"topi-orphan-kernel", // nn.orphan implements no registered op
		"neuron-no-kernel",   // most opcodes' kernels missing from the tiny inventory
	} {
		if !res.Has(check) {
			t.Errorf("lint missed %q: %v", check, res.Err())
		}
	}
}
