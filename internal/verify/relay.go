package verify

import (
	"fmt"

	"repro/internal/relay"
)

// Options configures Module verification.
type Options struct {
	// ExternalOps maps a Compiler attribute value (e.g. "nir") to the
	// predicate deciding whether that external codegen accepts a call.
	// When provided, every operator call inside a matching partitioned
	// region is checked against it: partitioning must never place an op the
	// converter has no handler for inside a region.
	ExternalOps map[string]func(*relay.Call) bool
}

// Module verifies relay well-formedness: every variable bound, checked types
// present and consistent with the op-registry signatures, call arity, fused
// Primitive functions free of nested partitions, BYOC regions properly
// attributed and registered, quantized types carrying complete quantization
// parameters, and no dangling or dead module bindings.
func Module(m *relay.Module, opts Options) *Result {
	v := &moduleVerifier{
		res:        &Result{},
		m:          m,
		opts:       opts,
		referenced: map[*relay.Function]bool{},
		visited:    map[relay.Expr]bool{},
	}
	v.run()
	return v.res
}

// ModuleErr is Module returning an error (nil when every invariant holds).
func ModuleErr(m *relay.Module, opts Options) error {
	return Module(m, opts).Err()
}

type moduleVerifier struct {
	res        *Result
	m          *relay.Module
	opts       Options
	referenced map[*relay.Function]bool
	visited    map[relay.Expr]bool
}

// walkCtx tracks the path-sensitive state of the verification walk.
type walkCtx struct {
	fnName string
	// compiler is the Compiler attribute of the innermost enclosing
	// partitioned region ("" outside regions).
	compiler string
	// primitive reports whether the walk is inside a fused Primitive body.
	primitive bool
}

func (v *moduleVerifier) run() {
	if v.m.Main() == nil {
		v.res.errorf("no-main", "", "module has no %q entry function", relay.MainFunc)
		return
	}
	v.m.Functions(func(name string, fn *relay.Function) {
		if name != relay.MainFunc {
			v.checkRegionDef(name, fn)
		}
		ctx := walkCtx{fnName: name, compiler: fn.Attr(relay.FnAttrCompiler)}
		v.checkFunction(name, fn)
		v.walk(fn.Body, ctx)
	})
	// Dead bindings: every non-main definition must be reachable from main
	// (partitioned regions are referenced through Call.Fn in the rewritten
	// main body).
	v.m.Functions(func(name string, fn *relay.Function) {
		if name == relay.MainFunc || v.referenced[fn] {
			return
		}
		v.res.errorf("dead-binding", "@"+name,
			"function is never referenced from @%s", relay.MainFunc)
	})
}

// checkRegionDef audits the attributes of a module-level definition other
// than main: only partitioned regions are registered, and their
// global_symbol must agree with the binding name.
func (v *moduleVerifier) checkRegionDef(name string, fn *relay.Function) {
	comp := fn.Attr(relay.FnAttrCompiler)
	if comp == "" {
		v.res.errorf("region-attrs", "@"+name,
			"module-level function carries no %s attribute (only partitioned regions are registered)",
			relay.FnAttrCompiler)
		return
	}
	if sym := fn.Attr(relay.FnAttrGlobalSymbol); sym != name {
		v.res.errorf("region-attrs", "@"+name,
			"%s=%q does not match the module binding name", relay.FnAttrGlobalSymbol, sym)
	}
}

// checkFunction audits one function's binding structure: every free variable
// of the body must be a parameter.
func (v *moduleVerifier) checkFunction(name string, fn *relay.Function) {
	for _, free := range relay.FreeVars(fn) {
		v.res.errorf("unbound-var", exprWhere(name, free),
			"variable %%%s is used but bound by no enclosing parameter list", free.Name)
	}
	for _, p := range fn.Params {
		if p.TypeAnnotation == nil {
			v.res.errorf("var-annotation", exprWhere(name, p),
				"parameter %%%s has no type annotation", p.Name)
		}
	}
}

func (v *moduleVerifier) walk(e relay.Expr, ctx walkCtx) {
	if e == nil || v.visited[e] {
		return
	}
	v.visited[e] = true
	switch n := e.(type) {
	case *relay.Var:
		v.checkVar(n, ctx)
	case *relay.Constant:
		v.checkConstant(n, ctx)
	case *relay.Call:
		for _, a := range n.Args {
			v.walk(a, ctx)
		}
		v.checkCall(n, ctx) // callee walked inside (needs region context)
	case *relay.Tuple:
		for _, f := range n.Fields {
			v.walk(f, ctx)
		}
		v.checkTyped(n, ctx)
	case *relay.TupleGetItem:
		v.walk(n.Tuple, ctx)
		v.checkTupleGet(n, ctx)
	case *relay.Function:
		v.enterNestedFunc(n, ctx)
	}
}

// enterNestedFunc checks a Function literal reached through the expression
// tree (a Primitive kernel or a partitioned region callee) and walks its
// body under the updated context.
func (v *moduleVerifier) enterNestedFunc(fn *relay.Function, ctx walkCtx) {
	comp := fn.Attr(relay.FnAttrCompiler)
	prim := fn.Attr(relay.FnAttrPrimitive)
	if ctx.primitive {
		v.res.errorf("primitive-nested", exprWhere(ctx.fnName, fn),
			"fused Primitive function contains a nested function (fusion must not cross partition or kernel boundaries)")
	}
	if ctx.compiler != "" {
		if comp != "" {
			v.res.errorf("nested-partition", exprWhere(ctx.fnName, fn),
				"partitioned region for %q contains a nested %s=%q region (regions must be convex, never nested)",
				ctx.compiler, relay.FnAttrCompiler, comp)
		} else {
			v.res.errorf("region-nested-fn", exprWhere(ctx.fnName, fn),
				"partitioned region for %q contains a nested function; the converter only accepts flat op graphs",
				ctx.compiler)
		}
	}
	v.checkFunction(ctx.fnName, fn)
	sub := ctx
	if comp != "" {
		sub.compiler = comp
	}
	if prim != "" {
		sub.primitive = true
	}
	v.walk(fn.Body, sub)
}

func (v *moduleVerifier) checkVar(n *relay.Var, ctx walkCtx) {
	if n.TypeAnnotation != nil {
		v.checkType(n.TypeAnnotation, "var-annotation", ctx.fnName, n)
		if ct := n.CheckedType(); ct != nil && !ct.Same(n.TypeAnnotation) {
			v.res.errorf("type-mismatch", exprWhere(ctx.fnName, n),
				"checked type %s disagrees with annotation %s (stale inference after a rewrite?)",
				ct, n.TypeAnnotation)
		}
	}
	v.checkTyped(n, ctx)
}

func (v *moduleVerifier) checkConstant(n *relay.Constant, ctx walkCtx) {
	if n.Value == nil {
		v.res.errorf("const-value", exprWhere(ctx.fnName, n), "constant carries no tensor value")
		return
	}
	if tt, ok := n.CheckedType().(*relay.TensorType); ok {
		if !tt.Shape.Equal(n.Value.Shape) || tt.DType != n.Value.DType {
			v.res.errorf("const-type", exprWhere(ctx.fnName, n),
				"checked type %s disagrees with the stored tensor (%s %s)",
				tt, n.Value.DType, n.Value.Shape)
		}
	}
	v.checkTyped(n, ctx)
}

// checkCall verifies one call node: a well-defined callee, arity and
// argument types per the registry or callee signature, and a checked result
// type consistent with re-running the operator's type-inference function.
func (v *moduleVerifier) checkCall(n *relay.Call, ctx walkCtx) {
	switch {
	case n.Op != nil && n.Fn != nil:
		v.res.errorf("ambiguous-callee", exprWhere(ctx.fnName, n),
			"call has both an operator and a function callee")
	case n.Op == nil && n.Fn == nil:
		v.res.errorf("no-callee", exprWhere(ctx.fnName, n), "call has neither operator nor function callee")
	case n.Op != nil:
		v.checkOpCall(n, ctx)
	default:
		v.checkFnCall(n, ctx)
	}
	v.checkTyped(n, ctx)
}

func (v *moduleVerifier) checkOpCall(n *relay.Call, ctx walkCtx) {
	if _, registered := relay.LookupOp(n.Op.Name); !registered {
		v.res.errorf("unregistered-op", exprWhere(ctx.fnName, n),
			"operator %q is not in the relay op registry", n.Op.Name)
		return
	}
	if ctx.compiler != "" {
		if sup := v.opts.ExternalOps[ctx.compiler]; sup != nil && !sup(n) {
			v.res.errorf("region-unsupported-op", exprWhere(ctx.fnName, n),
				"op %s is inside a %s=%q region but the external codegen does not support it",
				n.Op.Name, relay.FnAttrCompiler, ctx.compiler)
		}
	}
	args := make([]relay.Type, len(n.Args))
	for i, a := range n.Args {
		if args[i] = a.CheckedType(); args[i] == nil {
			return // diagnosed as untyped at the argument node
		}
	}
	got, err := n.Op.Infer(args, n.Attrs)
	if err != nil {
		v.res.errorf("op-signature", exprWhere(ctx.fnName, n),
			"call does not satisfy the registry signature: %v", err)
		return
	}
	if ct := n.CheckedType(); ct != nil && !got.Same(ct) {
		v.res.errorf("type-mismatch", exprWhere(ctx.fnName, n),
			"checked type %s disagrees with registry inference %s (stale after a rewrite?)", ct, got)
	}
}

func (v *moduleVerifier) checkFnCall(n *relay.Call, ctx walkCtx) {
	fn, ok := n.Fn.(*relay.Function)
	if !ok {
		v.res.errorf("no-callee", exprWhere(ctx.fnName, n),
			"function callee is a %T, not a Function literal", n.Fn)
		return
	}
	comp := fn.Attr(relay.FnAttrCompiler)
	prim := fn.Attr(relay.FnAttrPrimitive)
	switch {
	case comp != "":
		sym := fn.Attr(relay.FnAttrGlobalSymbol)
		reg, found := v.m.Get(sym)
		if !found || reg != fn {
			v.res.errorf("unregistered-region", exprWhere(ctx.fnName, n),
				"call targets a %s=%q region with %s=%q that is not the module definition of that name",
				relay.FnAttrCompiler, comp, relay.FnAttrGlobalSymbol, sym)
		} else {
			v.referenced[fn] = true
		}
	case prim == "":
		v.res.errorf("anonymous-fn-call", exprWhere(ctx.fnName, n),
			"callee function carries neither %s nor %s attributes",
			relay.FnAttrCompiler, relay.FnAttrPrimitive)
	}
	if len(fn.Params) != len(n.Args) {
		v.res.errorf("call-arity", exprWhere(ctx.fnName, n),
			"call passes %d arguments, callee declares %d parameters", len(n.Args), len(fn.Params))
	} else {
		for i, a := range n.Args {
			at, pt := a.CheckedType(), fn.Params[i].TypeAnnotation
			if at != nil && pt != nil && !at.Same(pt) {
				v.res.errorf("call-arg-type", exprWhere(ctx.fnName, n),
					"argument %d has type %s, callee parameter %%%s wants %s",
					i, at, fn.Params[i].Name, pt)
			}
		}
	}
	v.enterNestedFunc(fn, ctx)
}

func (v *moduleVerifier) checkTupleGet(n *relay.TupleGetItem, ctx walkCtx) {
	if tt, ok := n.Tuple.CheckedType().(*relay.TupleType); ok {
		if n.Index < 0 || n.Index >= len(tt.Fields) {
			v.res.errorf("tuple-index", exprWhere(ctx.fnName, n),
				"projection index %d out of range for %d-field tuple", n.Index, len(tt.Fields))
		}
	}
	v.checkTyped(n, ctx)
}

// checkTyped enforces that inference ran (every node carries a checked type)
// and that quantized tensor types carry complete quantization parameters —
// the relay-side half of the paper's §3.3 invariant.
//
// Diagnostic locations are rendered only when a check actually fires: the
// verifier visits every node after every pass, and eagerly formatting a
// where-string per visit dominated compile-path profiles.
func (v *moduleVerifier) checkTyped(e relay.Expr, ctx walkCtx) {
	t := e.CheckedType()
	if t == nil {
		v.res.errorf("untyped", exprWhere(ctx.fnName, e),
			"expression has no checked type (InferType did not run after the last rewrite)")
		return
	}
	v.checkType(t, "quant-params", ctx.fnName, e)
}

// checkType recursively audits a type: quantized dtypes must carry valid
// quantization parameters. The diagnostic location is derived from (fnName,
// at) lazily, on error only.
func (v *moduleVerifier) checkType(t relay.Type, check, fnName string, at relay.Expr) {
	switch tt := t.(type) {
	case *relay.TensorType:
		if tt.DType.IsQuantized() {
			if tt.Quant == nil {
				v.res.errorf(check, exprWhere(fnName, at),
					"type %s is quantized but carries no scale/zero-point (QNN params must survive onto every tensor)", tt)
			} else if tt.Quant.Scale <= 0 {
				v.res.errorf(check, exprWhere(fnName, at),
					"type %s has non-positive quantization scale %g", tt, tt.Quant.Scale)
			}
		}
	case *relay.TupleType:
		for _, f := range tt.Fields {
			v.checkType(f, check, fnName, at)
		}
	case *relay.FuncType:
		for _, p := range tt.Params {
			v.checkType(p, check, fnName, at)
		}
		if tt.Ret != nil {
			v.checkType(tt.Ret, check, fnName, at)
		}
	}
}

// exprWhere renders a one-line context for a diagnostic: the enclosing
// function plus a compact description of the node.
func exprWhere(fnName string, e relay.Expr) string {
	return "@" + fnName + ": " + summarize(e)
}

// Summarize renders a compact one-line description of an expression for
// diagnostic Where fields; internal/analysis shares it so `npc -analyze`
// findings read like `-verify` ones.
func Summarize(e relay.Expr) string { return summarize(e) }

func summarize(e relay.Expr) string {
	switch n := e.(type) {
	case *relay.Var:
		return "%" + n.Name
	case *relay.Constant:
		if n.Value == nil {
			return "const(<nil>)"
		}
		return fmt.Sprintf("const(%s%s)", n.Value.DType, n.Value.Shape)
	case *relay.Call:
		if n.Op != nil {
			return fmt.Sprintf("%s(%d args)", n.Op.Name, len(n.Args))
		}
		if fn, ok := n.Fn.(*relay.Function); ok {
			if sym := fn.Attr(relay.FnAttrGlobalSymbol); sym != "" {
				return fmt.Sprintf("call @%s", sym)
			}
			if fn.Attr(relay.FnAttrPrimitive) != "" {
				return "call primitive-fn"
			}
		}
		return "call fn"
	case *relay.Tuple:
		return fmt.Sprintf("tuple(%d fields)", len(n.Fields))
	case *relay.TupleGetItem:
		return fmt.Sprintf("%s.%d", summarize(n.Tuple), n.Index)
	case *relay.Function:
		if sym := n.Attr(relay.FnAttrGlobalSymbol); sym != "" {
			return "fn @" + sym
		}
		return fmt.Sprintf("fn(%d params)", len(n.Params))
	}
	return fmt.Sprintf("%T", e)
}
