package passes

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/relay"
)

// A traced Sequential records one span per executed pass — including the
// initial type inference — with op counts before and after in the args;
// skipped passes record nothing.
func TestSequentialTracesExecutedPasses(t *testing.T) {
	tracer := obs.NewTracer(0)
	ctx := NewContext(3)
	ctx.Trace = tracer.NewTrack("compile")
	ctx.Disabled["FuseOps"] = true

	if _, err := Sequential(convBNReLU(), ctx, DefaultPipeline()...); err != nil {
		t.Fatal(err)
	}
	spans, _ := tracer.Snapshot()
	byName := map[string]obs.Span{}
	for _, s := range spans {
		if s.Cat != "pass" {
			t.Errorf("span %q has cat %q, want pass", s.Name, s.Cat)
		}
		byName[s.Name] = s
	}
	if _, ok := byName["InferType"]; !ok {
		t.Errorf("no InferType span in %v", names(spans))
	}
	if _, ok := byName["SimplifyInference"]; !ok {
		t.Errorf("no SimplifyInference span in %v", names(spans))
	}
	if _, ok := byName["FuseOps"]; ok {
		t.Error("disabled FuseOps still recorded a span")
	}
	for name, s := range byName {
		args := map[string]any{}
		for _, a := range s.Args {
			args[a.Key] = a.Val
		}
		before, okB := args["ops_before"].(int)
		after, okA := args["ops_after"].(int)
		if !okB || !okA || before <= 0 || after <= 0 {
			t.Errorf("pass %s args = %v, want positive ops_before/ops_after", name, s.Args)
		}
	}
	// SimplifyInference decomposes batch_norm into elementwise ops, so its
	// op count must actually change — the args reflect the rewrite.
	si := byName["SimplifyInference"]
	var before, after int
	for _, a := range si.Args {
		if a.Key == "ops_before" {
			before = a.Val.(int)
		}
		if a.Key == "ops_after" {
			after = a.Val.(int)
		}
	}
	if after == before {
		t.Errorf("SimplifyInference ops_before=%d ops_after=%d, want a change", before, after)
	}
}

// An untraced context (Trace == nil) must run identically — the no-op path
// every production build without -trace takes.
func TestSequentialUntraced(t *testing.T) {
	out, err := Sequential(convBNReLU(), NewContext(3), DefaultPipeline()...)
	if err != nil {
		t.Fatal(err)
	}
	if n := relay.CountOps(out.Main(), "nn.batch_norm"); n != 0 {
		t.Errorf("pipeline result differs without tracing: %d batch_norm left", n)
	}
}

func names(spans []obs.Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}
