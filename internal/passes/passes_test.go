package passes

import (
	"testing"

	"repro/internal/relay"
	"repro/internal/tensor"
)

func randConst(shape tensor.Shape, seed uint64) *relay.Constant {
	t := tensor.New(tensor.Float32, shape)
	t.FillUniform(tensor.NewRNG(seed), -1, 1)
	return relay.Const(t)
}

// convBNReLU builds data -> conv -> batch_norm -> relu -> global pool.
func convBNReLU() *relay.Module {
	data := relay.NewVar("data", relay.TType(tensor.Float32, 1, 8, 8, 3))
	conv := relay.NewCall(relay.OpConv2D,
		[]relay.Expr{data, randConst(tensor.Shape{4, 3, 3, 3}, 1)},
		relay.Attrs{"strides": []int{1, 1}, "padding": []int{1, 1}})
	varT := tensor.New(tensor.Float32, tensor.Shape{4})
	varT.FillUniform(tensor.NewRNG(5), 0.5, 1.5)
	bn := relay.NewCall(relay.OpBatchNorm, []relay.Expr{
		conv, randConst(tensor.Shape{4}, 2), randConst(tensor.Shape{4}, 3),
		randConst(tensor.Shape{4}, 4), relay.Const(varT),
	}, relay.Attrs{"epsilon": 1e-5})
	act := relay.NewCall(relay.OpReLU, []relay.Expr{bn}, nil)
	pool := relay.NewCall(relay.OpGlobalAvgPool, []relay.Expr{act}, nil)
	return relay.NewModule(relay.NewFunc([]*relay.Var{data}, pool))
}

func TestSimplifyInferenceFoldsBatchNorm(t *testing.T) {
	m := convBNReLU()
	out, err := Sequential(m, NewContext(3), SimplifyInference())
	if err != nil {
		t.Fatal(err)
	}
	if n := relay.CountOps(out.Main(), "nn.batch_norm"); n != 0 {
		t.Errorf("batch_norm survived SimplifyInference (%d left)", n)
	}
	if n := relay.CountOps(out.Main(), "multiply"); n != 1 {
		t.Errorf("expected 1 multiply after folding, got %d", n)
	}
}

func TestSimplifyInferenceDropsDropout(t *testing.T) {
	data := relay.NewVar("d", relay.TType(tensor.Float32, 2, 2))
	drop := relay.NewCall(relay.OpDropout, []relay.Expr{data}, relay.Attrs{"rate": 0.5})
	m := relay.NewModule(relay.NewFunc([]*relay.Var{data}, drop))
	out, err := Sequential(m, NewContext(3), SimplifyInference())
	if err != nil {
		t.Fatal(err)
	}
	if relay.CountOps(out.Main()) != 0 {
		t.Error("dropout not removed")
	}
}

func TestFoldConstant(t *testing.T) {
	// relu(const) + var should fold the relu into a constant.
	c := randConst(tensor.Shape{4}, 7)
	folded := relay.NewCall(relay.OpReLU, []relay.Expr{c}, nil)
	v := relay.NewVar("x", relay.TType(tensor.Float32, 4))
	sum := relay.NewCall(relay.OpAdd, []relay.Expr{folded, v}, nil)
	m := relay.NewModule(relay.NewFunc([]*relay.Var{v}, sum))
	out, err := Sequential(m, NewContext(3), FoldConstant())
	if err != nil {
		t.Fatal(err)
	}
	if n := relay.CountOps(out.Main(), "nn.relu"); n != 0 {
		t.Error("relu over constant not folded")
	}
	if n := relay.CountOps(out.Main(), "add"); n != 1 {
		t.Error("data-dependent add must survive")
	}
}

func TestFoldConstantSkippedAtLowOptLevel(t *testing.T) {
	c := randConst(tensor.Shape{4}, 7)
	folded := relay.NewCall(relay.OpReLU, []relay.Expr{c}, nil)
	m := relay.NewModule(relay.NewFunc(nil, folded))
	out, err := Sequential(m, NewContext(1), FoldConstant()) // MinOptLevel 2
	if err != nil {
		t.Fatal(err)
	}
	if n := relay.CountOps(out.Main(), "nn.relu"); n != 1 {
		t.Error("FoldConstant must not run at opt level 1")
	}
}

func TestFuseOpsConvBiasReLU(t *testing.T) {
	data := relay.NewVar("data", relay.TType(tensor.Float32, 1, 8, 8, 3))
	conv := relay.NewCall(relay.OpConv2D,
		[]relay.Expr{data, randConst(tensor.Shape{4, 3, 3, 3}, 1)},
		relay.Attrs{"strides": []int{1, 1}, "padding": []int{1, 1}})
	biased := relay.NewCall(relay.OpBiasAdd, []relay.Expr{conv, randConst(tensor.Shape{4}, 2)}, nil)
	act := relay.NewCall(relay.OpReLU, []relay.Expr{biased}, nil)
	m := relay.NewModule(relay.NewFunc([]*relay.Var{data}, act))
	out, err := Sequential(m, NewContext(3), FuseOps())
	if err != nil {
		t.Fatal(err)
	}
	// The whole chain should be one primitive call now.
	body := out.Main().Body
	call, ok := body.(*relay.Call)
	if !ok || call.Fn == nil {
		t.Fatalf("body is %T, want call to primitive function", body)
	}
	fn := call.Fn.(*relay.Function)
	if fn.Attr(relay.FnAttrPrimitive) == "" {
		t.Error("fused function missing Primitive attr")
	}
	if n := relay.CountOps(fn.Body); n != 3 {
		t.Errorf("primitive body has %d ops, want 3", n)
	}
	// Data is the only non-constant external input.
	if len(fn.Params) != 1 {
		t.Errorf("primitive has %d params, want 1 (weights stay inline)", len(fn.Params))
	}
}

func TestFuseOpsStopsAtSharedValues(t *testing.T) {
	// relu output consumed twice: cannot fuse into either consumer.
	data := relay.NewVar("d", relay.TType(tensor.Float32, 4))
	act := relay.NewCall(relay.OpReLU, []relay.Expr{data}, nil)
	s := relay.NewCall(relay.OpSigmoid, []relay.Expr{act}, nil)
	tt := relay.NewCall(relay.OpTanh, []relay.Expr{act}, nil)
	sum := relay.NewCall(relay.OpAdd, []relay.Expr{s, tt}, nil)
	m := relay.NewModule(relay.NewFunc([]*relay.Var{data}, sum))
	out, err := Sequential(m, NewContext(3), FuseOps())
	if err != nil {
		t.Fatal(err)
	}
	// relu must not be duplicated into both branches: count relu ops overall.
	total := 0
	relay.PostOrderVisit(out.Main().Body, func(e relay.Expr) {
		if c, ok := e.(*relay.Call); ok && c.Op != nil && c.Op.Name == "nn.relu" {
			total++
		}
		if c, ok := e.(*relay.Call); ok && c.Fn != nil {
			relay.PostOrderVisit(c.Fn, func(inner relay.Expr) {
				if ic, ok := inner.(*relay.Call); ok && ic.Op != nil && ic.Op.Name == "nn.relu" {
					total++
				}
			})
		}
	})
	if total != 1 {
		t.Errorf("relu appears %d times after fusion, want exactly 1", total)
	}
}

func TestFuseOpsDoesNotMergeTwoHeavyOps(t *testing.T) {
	data := relay.NewVar("data", relay.TType(tensor.Float32, 1, 8, 8, 3))
	conv1 := relay.NewCall(relay.OpConv2D,
		[]relay.Expr{data, randConst(tensor.Shape{4, 3, 3, 3}, 1)},
		relay.Attrs{"padding": []int{1, 1}})
	conv2 := relay.NewCall(relay.OpConv2D,
		[]relay.Expr{conv1, randConst(tensor.Shape{4, 3, 3, 4}, 2)},
		relay.Attrs{"padding": []int{1, 1}})
	m := relay.NewModule(relay.NewFunc([]*relay.Var{data}, conv2))
	out, err := Sequential(m, NewContext(3), FuseOps())
	if err != nil {
		t.Fatal(err)
	}
	// Both convolutions must remain separate kernels (no primitive containing 2 convs).
	relay.PostOrderVisit(out.Main().Body, func(e relay.Expr) {
		if c, ok := e.(*relay.Call); ok && c.Fn != nil {
			fn := c.Fn.(*relay.Function)
			if relay.CountOps(fn.Body, "nn.conv2d") > 1 {
				t.Error("two convolutions fused into one primitive")
			}
		}
	})
}

// supportAll marks every op except the named ones as supported.
func supportAllBut(names ...string) Supported {
	deny := map[string]bool{}
	for _, n := range names {
		deny[n] = true
	}
	return func(c *relay.Call) bool { return !deny[c.Op.Name] }
}

func TestPartitionLiftsSingleRegion(t *testing.T) {
	m := convBNReLU()
	m, err := Sequential(m, NewContext(3), SimplifyInference(), FoldConstant())
	if err != nil {
		t.Fatal(err)
	}
	out, err := PartitionForCompiler(m, "ext", supportAllBut(), DefaultPartitionOptions())
	if err != nil {
		t.Fatal(err)
	}
	ext := out.ExternalFuncs("ext")
	if len(ext) != 1 {
		t.Fatalf("expected 1 external region, got %d: %v", len(ext), ext)
	}
	// Main body should be a single call to the region.
	call, ok := out.Main().Body.(*relay.Call)
	if !ok || call.Fn == nil {
		t.Fatalf("main body is %T, want external call", out.Main().Body)
	}
	fn := call.Fn.(*relay.Function)
	if fn.Attr(relay.FnAttrCompiler) != "ext" {
		t.Error("missing Compiler attr")
	}
	if fn.Attr(relay.FnAttrGlobalSymbol) == "" {
		t.Error("missing global_symbol attr")
	}
}

func TestPartitionSplitsAroundUnsupported(t *testing.T) {
	// conv -> leaky_relu (unsupported) -> conv => two regions.
	data := relay.NewVar("data", relay.TType(tensor.Float32, 1, 8, 8, 3))
	conv1 := relay.NewCall(relay.OpConv2D,
		[]relay.Expr{data, randConst(tensor.Shape{4, 3, 3, 3}, 1)},
		relay.Attrs{"padding": []int{1, 1}})
	lk := relay.NewCall(relay.OpLeakyReLU, []relay.Expr{conv1}, relay.Attrs{"alpha": 0.1})
	conv2 := relay.NewCall(relay.OpConv2D,
		[]relay.Expr{lk, randConst(tensor.Shape{4, 3, 3, 4}, 2)},
		relay.Attrs{"padding": []int{1, 1}})
	m := relay.NewModule(relay.NewFunc([]*relay.Var{data}, conv2))
	out, err := PartitionForCompiler(m, "ext", supportAllBut("nn.leaky_relu"), DefaultPartitionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out.ExternalFuncs("ext")); got != 2 {
		t.Errorf("expected 2 regions around unsupported op, got %d", got)
	}
	if n := relay.CountOps(out.Main().Body, "nn.leaky_relu"); n != 1 {
		t.Errorf("leaky_relu must stay in main, found %d", n)
	}
}

func TestPartitionNoMergeYieldsPerOpRegions(t *testing.T) {
	m := convBNReLU()
	m, err := Sequential(m, NewContext(3), SimplifyInference(), FoldConstant())
	if err != nil {
		t.Fatal(err)
	}
	nOps := relay.CountOps(m.Main().Body)
	out, err := PartitionForCompiler(m, "ext", supportAllBut(),
		PartitionOptions{MergeRegions: false, MinRegionSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out.ExternalFuncs("ext")); got != nOps {
		t.Errorf("without merging, want %d single-op regions, got %d", nOps, got)
	}
}

func TestPartitionConvexityNoCycle(t *testing.T) {
	// Diamond where one branch is unsupported:
	//   a = relu(x) [sup] ; b = leaky(a) [unsup] ; c = sigmoid(a) [sup]
	//   d = add(b, c) [sup]
	// Merging {a, c, d} would create a cycle through b; the partitioner must
	// keep d separate from (or c out of) a region that feeds b.
	x := relay.NewVar("x", relay.TType(tensor.Float32, 4))
	a := relay.NewCall(relay.OpReLU, []relay.Expr{x}, nil)
	b := relay.NewCall(relay.OpLeakyReLU, []relay.Expr{a}, relay.Attrs{"alpha": 0.1})
	c := relay.NewCall(relay.OpSigmoid, []relay.Expr{a}, nil)
	d := relay.NewCall(relay.OpAdd, []relay.Expr{b, c}, nil)
	m := relay.NewModule(relay.NewFunc([]*relay.Var{x}, d))
	out, err := PartitionForCompiler(m, "ext", supportAllBut("nn.leaky_relu"), DefaultPartitionOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Type inference on the result already proves acyclicity (a cycle would
	// make the rewrite non-constructible); additionally the unsupported op
	// must remain in main.
	if n := relay.CountOps(out.Main().Body, "nn.leaky_relu"); n != 1 {
		t.Errorf("leaky_relu not in main after partition")
	}
}

func TestPartitionMinRegionSize(t *testing.T) {
	// A single supported op between unsupported ones: MinRegionSize=2 should
	// leave it on the host.
	x := relay.NewVar("x", relay.TType(tensor.Float32, 4))
	a := relay.NewCall(relay.OpLeakyReLU, []relay.Expr{x}, relay.Attrs{"alpha": 0.1})
	b := relay.NewCall(relay.OpReLU, []relay.Expr{a}, nil)
	c := relay.NewCall(relay.OpLeakyReLU, []relay.Expr{b}, relay.Attrs{"alpha": 0.1})
	m := relay.NewModule(relay.NewFunc([]*relay.Var{x}, c))
	out, err := PartitionForCompiler(m, "ext", supportAllBut("nn.leaky_relu"),
		PartitionOptions{MergeRegions: true, MinRegionSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out.ExternalFuncs("ext")); got != 0 {
		t.Errorf("region below min size must not be lifted, got %d regions", got)
	}
}

func TestPartitionMultiOutputRegion(t *testing.T) {
	// Region producing two values consumed by an unsupported op.
	x := relay.NewVar("x", relay.TType(tensor.Float32, 4))
	a := relay.NewCall(relay.OpReLU, []relay.Expr{x}, nil)
	b := relay.NewCall(relay.OpSigmoid, []relay.Expr{a}, nil)
	c := relay.NewCall(relay.OpTanh, []relay.Expr{a}, nil)
	// divide unsupported: consumes both region outputs.
	d := relay.NewCall(relay.OpDivide, []relay.Expr{b, c}, nil)
	m := relay.NewModule(relay.NewFunc([]*relay.Var{x}, d))
	out, err := PartitionForCompiler(m, "ext", supportAllBut("divide"), DefaultPartitionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out.ExternalFuncs("ext")); got != 1 {
		t.Fatalf("want 1 multi-output region, got %d", got)
	}
	name := out.ExternalFuncs("ext")[0]
	fn, _ := out.Get(name)
	if _, isTuple := fn.Body.(*relay.Tuple); !isTuple {
		t.Errorf("multi-output region body should be a tuple, got %T", fn.Body)
	}
}

func TestCSEMergesDuplicateCalls(t *testing.T) {
	// Two structurally identical relu calls over the same input.
	x := relay.NewVar("x", relay.TType(tensor.Float32, 4))
	a := relay.NewCall(relay.OpReLU, []relay.Expr{x}, nil)
	b := relay.NewCall(relay.OpReLU, []relay.Expr{x}, nil)
	sum := relay.NewCall(relay.OpAdd, []relay.Expr{a, b}, nil)
	m := relay.NewModule(relay.NewFunc([]*relay.Var{x}, sum))
	out, err := Sequential(m, NewContext(3), EliminateCommonSubexpr())
	if err != nil {
		t.Fatal(err)
	}
	body := out.Main().Body.(*relay.Call)
	if body.Args[0] != body.Args[1] {
		t.Error("identical relu calls not merged")
	}
	if n := relay.CountOps(out.Main().Body, "nn.relu"); n != 1 {
		t.Errorf("relu count %d after CSE", n)
	}
}

func TestCSERespectsAttrs(t *testing.T) {
	// Same op, different attrs: must NOT merge.
	x := relay.NewVar("x", relay.TType(tensor.Float32, 4))
	a := relay.NewCall(relay.OpClip, []relay.Expr{x}, relay.Attrs{"a_min": 0.0, "a_max": 6.0})
	b := relay.NewCall(relay.OpClip, []relay.Expr{x}, relay.Attrs{"a_min": 0.0, "a_max": 1.0})
	sum := relay.NewCall(relay.OpAdd, []relay.Expr{a, b}, nil)
	m := relay.NewModule(relay.NewFunc([]*relay.Var{x}, sum))
	out, err := Sequential(m, NewContext(3), EliminateCommonSubexpr())
	if err != nil {
		t.Fatal(err)
	}
	if n := relay.CountOps(out.Main().Body, "clip"); n != 2 {
		t.Errorf("clip count %d, different attrs must not merge", n)
	}
}

func TestCSEChains(t *testing.T) {
	// Duplicate whole chains: conv(w)+relu twice merges into one.
	x := relay.NewVar("x", relay.TType(tensor.Float32, 1, 8, 8, 3))
	w := randConst(tensor.Shape{4, 3, 3, 3}, 9)
	mk := func() relay.Expr {
		conv := relay.NewCall(relay.OpConv2D, []relay.Expr{x, w}, relay.Attrs{"padding": []int{1, 1}})
		return relay.NewCall(relay.OpReLU, []relay.Expr{conv}, nil)
	}
	sum := relay.NewCall(relay.OpAdd, []relay.Expr{mk(), mk()}, nil)
	m := relay.NewModule(relay.NewFunc([]*relay.Var{x}, sum))
	out, err := Sequential(m, NewContext(3), EliminateCommonSubexpr())
	if err != nil {
		t.Fatal(err)
	}
	if n := relay.CountOps(out.Main().Body, "nn.conv2d"); n != 1 {
		t.Errorf("conv count %d after chain CSE", n)
	}
}
