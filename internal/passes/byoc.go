package passes

import (
	"fmt"

	"repro/internal/relay"
)

// The BYOC partitioner: AnnotateTarget marks the operator calls an external
// compiler supports, MergeCompilerRegions grows maximal convex regions out of
// the marks, and PartitionGraph lifts each region into a module-level
// function tagged Compiler=<name> that the external codegen consumes. The
// three stages are implemented together in PartitionForCompiler; the
// PartitionOptions let ablations disable region merging (every supported op
// becomes its own region — the paper's "too many subgraphs" pathology on the
// anti-spoofing model).

// PartitionOptions configures PartitionForCompiler.
type PartitionOptions struct {
	// MergeRegions enables MergeCompilerRegions; when false every supported
	// call is lifted as its own single-op region.
	MergeRegions bool
	// MinRegionSize drops regions with fewer ops than this back to the host
	// (0 or 1 keeps everything).
	MinRegionSize int
}

// DefaultPartitionOptions mirrors TVM's defaults.
func DefaultPartitionOptions() PartitionOptions {
	return PartitionOptions{MergeRegions: true, MinRegionSize: 1}
}

// Supported decides whether the external compiler can execute a call.
type Supported func(*relay.Call) bool

// PartitionForCompiler runs annotate → merge → partition for one external
// compiler over the module's main function. Returned module has rewritten
// main plus one definition per region.
func PartitionForCompiler(m *relay.Module, compiler string, sup Supported, opts PartitionOptions) (*relay.Module, error) {
	if err := relay.InferModule(m); err != nil {
		return nil, err
	}
	p := &partitioner{
		compiler:  compiler,
		supported: sup,
		opts:      opts,
	}
	return p.run(m)
}

type partitioner struct {
	compiler  string
	supported Supported
	opts      PartitionOptions

	order     []*relay.Call // supported+unsupported calls, post-order
	group     map[*relay.Call]*fuseGroup
	isSup     map[*relay.Call]bool
	succ      map[relay.Expr][]relay.Expr // consumer edges over the whole scope
	effArgs   map[*relay.Call][]relay.Expr
	regionSeq int
}

func (p *partitioner) run(m *relay.Module) (*relay.Module, error) {
	main := m.Main()
	p.analyze(main.Body)

	// Stage 2: merge regions along supported producer→consumer edges, unless
	// doing so would create a cycle through the host graph.
	if p.opts.MergeRegions {
		for _, c := range p.order {
			if !p.isSup[c] {
				continue
			}
			for _, arg := range p.effArgs[c] {
				a, ok := arg.(*relay.Call)
				if !ok || !p.isSup[a] {
					continue
				}
				p.tryMerge(a, c)
			}
		}
	}

	// Stage 3: lift regions.
	out := m.Clone()
	newBody, err := p.partitionBody(main.Body, out)
	if err != nil {
		return nil, err
	}
	nf := relay.NewFunc(main.Params, newBody)
	for k, v := range main.FnAttrs {
		nf.FnAttrs[k] = v
	}
	out.SetMain(nf)
	if err := relay.InferModule(out); err != nil {
		return nil, fmt.Errorf("partition produced ill-typed module: %w", err)
	}
	return out, nil
}

// analyze builds post-order, supported marks, effective args (tuples
// flattened) and the successor relation of the main scope.
func (p *partitioner) analyze(body relay.Expr) {
	p.group = map[*relay.Call]*fuseGroup{}
	p.isSup = map[*relay.Call]bool{}
	p.succ = map[relay.Expr][]relay.Expr{}
	p.effArgs = map[*relay.Call][]relay.Expr{}

	visited := map[relay.Expr]bool{}
	var walk func(e relay.Expr)
	walk = func(e relay.Expr) {
		if e == nil || visited[e] {
			return
		}
		visited[e] = true
		switch n := e.(type) {
		case *relay.Call:
			var eff []relay.Expr
			for _, a := range n.Args {
				walk(a)
				p.succ[a] = append(p.succ[a], n)
				if tup, ok := a.(*relay.Tuple); ok {
					eff = append(eff, tup.Fields...)
				} else {
					eff = append(eff, a)
				}
			}
			if n.Fn != nil {
				walk(n.Fn)
				p.succ[n.Fn] = append(p.succ[n.Fn], n)
			}
			p.effArgs[n] = eff
			if n.Op != nil {
				p.order = append(p.order, n)
				p.group[n] = &fuseGroup{}
				p.isSup[n] = p.supported(n)
			}
		case *relay.Tuple:
			for _, f := range n.Fields {
				walk(f)
				p.succ[f] = append(p.succ[f], n)
			}
		case *relay.TupleGetItem:
			walk(n.Tuple)
			p.succ[n.Tuple] = append(p.succ[n.Tuple], n)
		case *relay.Function:
			// Nested functions are opaque to partitioning.
		}
	}
	walk(body)
}

// tryMerge unifies the regions of producer a and consumer c unless the
// merged region would be non-convex: a path from region(a) through a host
// node back into region(c) would force the host to both consume and feed the
// lifted function, i.e. a cycle.
func (p *partitioner) tryMerge(a, c *relay.Call) {
	ga, gc := p.group[a].find(), p.group[c].find()
	if ga == gc {
		return
	}
	merged := map[*relay.Call]bool{}
	for _, n := range p.order {
		g := p.group[n].find()
		if g == ga || g == gc {
			merged[n] = true
		}
	}
	if p.pathThroughOutside(merged) {
		return
	}
	ga.parent = gc
}

// tupleTransparent reports whether a Tuple node merely routes values between
// in-region members (a concatenate input tuple), in which case it counts as
// inside the region for convexity and output analysis.
func (p *partitioner) tupleTransparent(t *relay.Tuple, region map[*relay.Call]bool) bool {
	succs := p.succ[t]
	if len(succs) == 0 {
		return false
	}
	for _, s := range succs {
		c, ok := s.(*relay.Call)
		if !ok || !region[c] {
			return false
		}
	}
	return true
}

// pathThroughOutside reports whether some node outside the candidate region
// lies on a path region → outside → region.
func (p *partitioner) pathThroughOutside(region map[*relay.Call]bool) bool {
	// BFS from every outside successor of the region; if we can re-enter the
	// region, merging is illegal.
	inRegion := func(e relay.Expr) bool {
		if c, ok := e.(*relay.Call); ok {
			return region[c]
		}
		if t, ok := e.(*relay.Tuple); ok {
			return p.tupleTransparent(t, region)
		}
		return false
	}
	var frontier []relay.Expr
	seen := map[relay.Expr]bool{}
	for n := range region {
		for _, s := range p.succ[n] {
			if !inRegion(s) && !seen[s] {
				seen[s] = true
				frontier = append(frontier, s)
			}
		}
	}
	for len(frontier) > 0 {
		e := frontier[0]
		frontier = frontier[1:]
		for _, s := range p.succ[e] {
			if inRegion(s) {
				return true
			}
			if !seen[s] {
				seen[s] = true
				frontier = append(frontier, s)
			}
		}
	}
	return false
}

// regionInfo captures one liftable region.
type regionInfo struct {
	members []*relay.Call // topo order
	outputs []*relay.Call // members with consumers outside the region
}

func (p *partitioner) collectRegions(bodyRoot relay.Expr) []*regionInfo {
	byGroup := map[*fuseGroup]*regionInfo{}
	var regions []*regionInfo
	for _, c := range p.order {
		if !p.isSup[c] {
			continue
		}
		g := p.group[c].find()
		r := byGroup[g]
		if r == nil {
			r = &regionInfo{}
			byGroup[g] = r
			regions = append(regions, r)
		}
		r.members = append(r.members, c)
	}
	for _, r := range regions {
		in := map[*relay.Call]bool{}
		for _, m := range r.members {
			in[m] = true
		}
		for _, m := range r.members {
			external := m == bodyRoot
			for _, s := range p.succ[m] {
				if c, ok := s.(*relay.Call); ok && in[c] {
					continue
				}
				if t, ok := s.(*relay.Tuple); ok && p.tupleTransparent(t, in) {
					continue
				}
				external = true
			}
			if external {
				r.outputs = append(r.outputs, m)
			}
		}
	}
	// Filter small regions.
	if p.opts.MinRegionSize > 1 {
		var kept []*regionInfo
		for _, r := range regions {
			if len(r.members) >= p.opts.MinRegionSize {
				kept = append(kept, r)
			}
		}
		regions = kept
	}
	return regions
}

// partitionBody rewrites the body, lifting each region into an external
// function registered in mod.
func (p *partitioner) partitionBody(body relay.Expr, mod *relay.Module) (relay.Expr, error) {
	regions := p.collectRegions(body)
	// Map from output member -> (region, output index).
	type outRef struct {
		r   *regionInfo
		idx int
	}
	outOf := map[*relay.Call]outRef{}
	for _, r := range regions {
		for i, o := range r.outputs {
			outOf[o] = outRef{r, i}
		}
	}

	memo := map[relay.Expr]relay.Expr{}
	regionCall := map[*regionInfo]relay.Expr{}
	var rerr error

	var transform func(e relay.Expr) relay.Expr
	buildRegion := func(r *regionInfo) relay.Expr {
		if c, ok := regionCall[r]; ok {
			return c
		}
		call, err := p.liftRegion(r, mod, transform)
		if err != nil {
			rerr = err
			return nil
		}
		regionCall[r] = call
		return call
	}
	transform = func(e relay.Expr) relay.Expr {
		if e == nil || rerr != nil {
			return e
		}
		if r, ok := memo[e]; ok {
			return r
		}
		var out relay.Expr
		switch n := e.(type) {
		case *relay.Call:
			if ref, isOut := outOf[n]; isOut {
				rc := buildRegion(ref.r)
				if rerr != nil {
					return e
				}
				if len(ref.r.outputs) == 1 {
					out = rc
				} else {
					out = relay.NewTupleGetItem(rc, ref.idx)
				}
				break
			}
			newArgs := make([]relay.Expr, len(n.Args))
			for i, a := range n.Args {
				newArgs[i] = transform(a)
			}
			newFn := n.Fn
			if n.Fn != nil {
				newFn = transform(n.Fn)
			}
			out = &relay.Call{Op: n.Op, Fn: newFn, Args: newArgs, Attrs: n.Attrs}
		case *relay.Tuple:
			fields := make([]relay.Expr, len(n.Fields))
			for i, f := range n.Fields {
				fields[i] = transform(f)
			}
			out = relay.NewTuple(fields)
		case *relay.TupleGetItem:
			out = relay.NewTupleGetItem(transform(n.Tuple), n.Index)
		default:
			out = e
		}
		memo[e] = out
		return out
	}
	res := transform(body)
	return res, rerr
}

// liftRegion clones a region into fn(params){...} with the Compiler and
// global_symbol attributes, registers it in the module, and returns the call
// expression feeding it the transformed external inputs.
func (p *partitioner) liftRegion(r *regionInfo, mod *relay.Module, transform func(relay.Expr) relay.Expr) (relay.Expr, error) {
	in := map[*relay.Call]bool{}
	for _, m := range r.members {
		in[m] = true
	}
	var params []*relay.Var
	var outerArgs []relay.Expr
	paramFor := map[relay.Expr]*relay.Var{}
	cloneMemo := map[relay.Expr]relay.Expr{}

	var cloneExpr func(e relay.Expr) relay.Expr
	cloneExpr = func(e relay.Expr) relay.Expr {
		if r, ok := cloneMemo[e]; ok {
			return r
		}
		var out relay.Expr
		switch n := e.(type) {
		case *relay.Constant:
			out = n // constants are baked into the external module
		case *relay.Call:
			if in[n] {
				newArgs := make([]relay.Expr, len(n.Args))
				for i, a := range n.Args {
					newArgs[i] = cloneExpr(a)
				}
				out = &relay.Call{Op: n.Op, Args: newArgs, Attrs: n.Attrs}
				break
			}
			out = cloneBoundary(n, &params, &outerArgs, paramFor, transform)
		case *relay.Tuple:
			// Tuples feeding concatenate-style members are cloned inline.
			fields := make([]relay.Expr, len(n.Fields))
			for i, f := range n.Fields {
				fields[i] = cloneExpr(f)
			}
			out = relay.NewTuple(fields)
		default:
			out = cloneBoundary(e, &params, &outerArgs, paramFor, transform)
		}
		cloneMemo[e] = out
		return out
	}

	var bodyExpr relay.Expr
	if len(r.outputs) == 1 {
		bodyExpr = cloneExpr(r.outputs[0])
	} else {
		fields := make([]relay.Expr, len(r.outputs))
		for i, o := range r.outputs {
			fields[i] = cloneExpr(o)
		}
		bodyExpr = relay.NewTuple(fields)
	}
	fn := relay.NewFunc(params, bodyExpr)
	name := fmt.Sprintf("%s_%d", p.compiler, p.regionSeq)
	p.regionSeq++
	fn.FnAttrs[relay.FnAttrCompiler] = p.compiler
	fn.FnAttrs[relay.FnAttrGlobalSymbol] = name
	if err := mod.Add(name, fn); err != nil {
		return nil, err
	}
	return relay.NewFnCall(fn, outerArgs), nil
}

// cloneBoundary turns an external input into a region parameter (one per
// distinct source expression) and records the transformed outer argument.
func cloneBoundary(e relay.Expr, params *[]*relay.Var, outerArgs *[]relay.Expr,
	paramFor map[relay.Expr]*relay.Var, transform func(relay.Expr) relay.Expr) relay.Expr {
	if v, ok := paramFor[e]; ok {
		return v
	}
	v := relay.NewVar(fmt.Sprintf("nirp%d", len(*params)), e.CheckedType())
	paramFor[e] = v
	*params = append(*params, v)
	*outerArgs = append(*outerArgs, transform(e))
	return v
}
