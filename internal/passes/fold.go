package passes

import (
	"repro/internal/relay"
	"repro/internal/tensor"
	"repro/internal/topi"
)

// FoldConstant evaluates every operator call whose inputs are all constants
// at compile time, replacing the call with the resulting constant tensor.
// After SimplifyInference this collapses the weight-side arithmetic of folded
// batch norms, so the runtime graph contains only data-dependent work.
func FoldConstant() Pass {
	return Pass{
		Name:        "FoldConstant",
		MinOptLevel: 2,
		Run: func(m *relay.Module, ctx *Context) (*relay.Module, error) {
			var ferr error
			out := rewriteMainOnly(m, func(e relay.Expr) relay.Expr {
				if ferr != nil {
					return e
				}
				folded, err := tryFold(e)
				if err != nil {
					ferr = err
					return e
				}
				return folded
			})
			return out, ferr
		},
	}
}

func tryFold(e relay.Expr) (relay.Expr, error) {
	call, ok := e.(*relay.Call)
	if !ok || call.Op == nil {
		return e, nil
	}
	if _, hasKernel := topi.Lookup(call.Op.Name); !hasKernel {
		return e, nil
	}
	// Gather constant arguments; bail if any input is dynamic.
	var flat []*tensor.Tensor
	argTypes := make([]relay.Type, len(call.Args))
	for i, a := range call.Args {
		switch arg := a.(type) {
		case *relay.Constant:
			flat = append(flat, arg.Value)
			argTypes[i] = arg.CheckedType()
		case *relay.Tuple:
			fields := make([]relay.Type, len(arg.Fields))
			for j, f := range arg.Fields {
				c, ok := f.(*relay.Constant)
				if !ok {
					return e, nil
				}
				flat = append(flat, c.Value)
				fields[j] = c.CheckedType()
			}
			argTypes[i] = &relay.TupleType{Fields: fields}
		default:
			return e, nil
		}
	}
	outTy, err := call.Op.Infer(argTypes, call.Attrs)
	if err != nil {
		return nil, err
	}
	tt, ok := outTy.(*relay.TensorType)
	if !ok {
		return e, nil // tuple-producing op: not foldable into one Constant
	}
	res, err := topi.Run(call.Op.Name, flat, call.Attrs, tt)
	if err != nil {
		return nil, err
	}
	return relay.Const(res), nil
}
