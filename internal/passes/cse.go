package passes

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relay"
)

// EliminateCommonSubexpr merges structurally identical operator calls — the
// classic CSE pass TVM runs at opt level 2. Frontends that expand shared
// framework subgraphs by value (the darknet route/shortcut paths, repeated
// constant arithmetic after SimplifyInference) produce duplicate calls that
// this pass collapses, so each unique computation is executed (and charged)
// once.
func EliminateCommonSubexpr() Pass {
	return Pass{
		Name:        "EliminateCommonSubexpr",
		MinOptLevel: 2,
		Run: func(m *relay.Module, ctx *Context) (*relay.Module, error) {
			out := m.Clone()
			main := m.Main()
			nf := relay.NewFunc(main.Params, cseBody(main.Body))
			for k, v := range main.FnAttrs {
				nf.FnAttrs[k] = v
			}
			out.SetMain(nf)
			return out, nil
		},
	}
}

// cseBody rewrites the body bottom-up, canonicalizing each node by a
// structural key. Constants are keyed by identity (comparing tensor payloads
// would be quadratic in weight bytes for no gain — frontends already share
// constant objects they duplicate by reference).
func cseBody(body relay.Expr) relay.Expr {
	canon := map[string]relay.Expr{}
	ids := map[relay.Expr]int{}
	nextID := 0
	idOf := func(e relay.Expr) int {
		if id, ok := ids[e]; ok {
			return id
		}
		nextID++
		ids[e] = nextID - 1
		return nextID - 1
	}
	return relay.Rewrite(body, func(e relay.Expr) relay.Expr {
		key, ok := structuralKey(e, idOf)
		if !ok {
			idOf(e)
			return e
		}
		if prev, seen := canon[key]; seen {
			return prev
		}
		idOf(e)
		canon[key] = e
		return e
	})
}

// structuralKey builds a canonical string for CSE-able nodes. Only pure
// operator calls and tuple plumbing participate; function calls (external
// regions, primitives) are left alone.
func structuralKey(e relay.Expr, idOf func(relay.Expr) int) (string, bool) {
	switch n := e.(type) {
	case *relay.Call:
		if n.Op == nil {
			return "", false
		}
		var b strings.Builder
		b.WriteString("call:")
		b.WriteString(n.Op.Name)
		b.WriteString("(")
		for i, a := range n.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", idOf(a))
		}
		b.WriteString(")[")
		b.WriteString(attrsKey(n.Attrs))
		b.WriteString("]")
		return b.String(), true
	case *relay.Tuple:
		var b strings.Builder
		b.WriteString("tuple:(")
		for i, f := range n.Fields {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", idOf(f))
		}
		b.WriteString(")")
		return b.String(), true
	case *relay.TupleGetItem:
		return fmt.Sprintf("get:%d.%d", idOf(n.Tuple), n.Index), true
	}
	return "", false
}

func attrsKey(a relay.Attrs) string {
	if len(a) == 0 {
		return ""
	}
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%v", k, a[k])
	}
	return strings.Join(parts, ";")
}
