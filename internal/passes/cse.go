package passes

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/relay"
)

// EliminateCommonSubexpr merges structurally identical operator calls — the
// classic CSE pass TVM runs at opt level 2. Frontends that expand shared
// framework subgraphs by value (the darknet route/shortcut paths, repeated
// constant arithmetic after SimplifyInference) produce duplicate calls that
// this pass collapses, so each unique computation is executed (and charged)
// once.
func EliminateCommonSubexpr() Pass {
	return Pass{
		Name:        "EliminateCommonSubexpr",
		MinOptLevel: 2,
		Run: func(m *relay.Module, ctx *Context) (*relay.Module, error) {
			out := m.Clone()
			main := m.Main()
			nf := relay.NewFunc(main.Params, cseBody(main.Body))
			for k, v := range main.FnAttrs {
				nf.FnAttrs[k] = v
			}
			out.SetMain(nf)
			return out, nil
		},
	}
}

// cseBody rewrites the body bottom-up, canonicalizing each node by a
// structural key. Constants are keyed by identity (comparing tensor payloads
// would be quadratic in weight bytes for no gain — frontends already share
// constant objects they duplicate by reference).
func cseBody(body relay.Expr) relay.Expr {
	canon := map[string]relay.Expr{}
	ids := map[relay.Expr]int{}
	nextID := 0
	idOf := func(e relay.Expr) int {
		if id, ok := ids[e]; ok {
			return id
		}
		nextID++
		ids[e] = nextID - 1
		return nextID - 1
	}
	return relay.Rewrite(body, func(e relay.Expr) relay.Expr {
		key, ok := structuralKey(e, idOf)
		if !ok {
			idOf(e)
			return e
		}
		if prev, seen := canon[key]; seen {
			return prev
		}
		idOf(e)
		canon[key] = e
		return e
	})
}

// structuralKey builds a canonical string for CSE-able nodes. Only pure
// operator calls and tuple plumbing participate; function calls (external
// regions, primitives) are left alone. Keys are assembled with strconv
// appends — this runs for every node on every build, and reflective fmt
// formatting showed up in compile-path profiles.
func structuralKey(e relay.Expr, idOf func(relay.Expr) int) (string, bool) {
	switch n := e.(type) {
	case *relay.Call:
		if n.Op == nil {
			return "", false
		}
		buf := make([]byte, 0, 64)
		buf = append(buf, "call:"...)
		buf = append(buf, n.Op.Name...)
		buf = append(buf, '(')
		for i, a := range n.Args {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendInt(buf, int64(idOf(a)), 10)
		}
		buf = append(buf, ")["...)
		buf = appendAttrsKey(buf, n.Attrs)
		buf = append(buf, ']')
		return string(buf), true
	case *relay.Tuple:
		buf := make([]byte, 0, 32)
		buf = append(buf, "tuple:("...)
		for i, f := range n.Fields {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendInt(buf, int64(idOf(f)), 10)
		}
		buf = append(buf, ')')
		return string(buf), true
	case *relay.TupleGetItem:
		buf := make([]byte, 0, 24)
		buf = append(buf, "get:"...)
		buf = strconv.AppendInt(buf, int64(idOf(n.Tuple)), 10)
		buf = append(buf, '.')
		buf = strconv.AppendInt(buf, int64(n.Index), 10)
		return string(buf), true
	}
	return "", false
}

func appendAttrsKey(buf []byte, a relay.Attrs) []byte {
	if len(a) == 0 {
		return buf
	}
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			buf = append(buf, ';')
		}
		buf = append(buf, k...)
		buf = append(buf, '=')
		buf = appendAttrValue(buf, a[k])
	}
	return buf
}

// appendAttrValue formats the attribute value kinds frontends actually emit
// without reflection, falling back to fmt for anything exotic. The fallback
// prints identically to the fast paths, so keys are stable either way.
func appendAttrValue(buf []byte, v any) []byte {
	switch x := v.(type) {
	case int:
		return strconv.AppendInt(buf, int64(x), 10)
	case int64:
		return strconv.AppendInt(buf, x, 10)
	case float64:
		return strconv.AppendFloat(buf, x, 'g', -1, 64)
	case string:
		return append(buf, x...)
	case bool:
		return strconv.AppendBool(buf, x)
	case []int:
		buf = append(buf, '[')
		for i, e := range x {
			if i > 0 {
				buf = append(buf, ' ')
			}
			buf = strconv.AppendInt(buf, int64(e), 10)
		}
		return append(buf, ']')
	default:
		return fmt.Appendf(buf, "%v", v)
	}
}
