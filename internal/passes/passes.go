// Package passes implements the graph-level optimization and BYOC
// partitioning passes of the mini-TVM stack: type inference, inference-mode
// simplification, constant folding, operator fusion, and the
// AnnotateTarget / MergeCompilerRegions / PartitionGraph sequence that powers
// partition_for_nir.
package passes

import (
	"fmt"

	"repro/internal/relay"
)

// Context mirrors tvm.transform.PassContext: the opt level gates which passes
// run, and individual passes can be disabled by name (used by the ablation
// benchmarks).
type Context struct {
	OptLevel int
	Disabled map[string]bool
	// VerifyAfterEachPass, when non-nil, runs on the module after the
	// initial type inference and again after every executed pass — the
	// MLIR-style verify-after-each-pass instrumentation. The hook receives
	// the name of the pass that just ran ("InferType" for the initial
	// inference); a returned error aborts the pipeline, attributing the
	// broken invariant to that pass. Callers typically install a closure
	// over verify.ModuleErr (internal/verify cannot be imported from here
	// without a cycle through internal/nir).
	VerifyAfterEachPass func(m *relay.Module, pass string) error
}

// NewContext returns a context at the given opt level.
func NewContext(optLevel int) *Context {
	return &Context{OptLevel: optLevel, Disabled: map[string]bool{}}
}

// Enabled reports whether a pass should run under this context.
func (c *Context) Enabled(p Pass) bool {
	return c.OptLevel >= p.MinOptLevel && !c.Disabled[p.Name]
}

// Pass is a module-to-module transformation.
type Pass struct {
	Name        string
	MinOptLevel int
	Run         func(*relay.Module, *Context) (*relay.Module, error)
}

// Sequential applies the passes in order, skipping those the context
// disables, and re-running type inference after each structural pass.
func Sequential(m *relay.Module, ctx *Context, ps ...Pass) (*relay.Module, error) {
	if ctx == nil {
		ctx = NewContext(3)
	}
	if err := relay.InferModule(m); err != nil {
		return nil, fmt.Errorf("passes: initial type inference: %w", err)
	}
	if err := ctx.verifyAfter(m, "InferType"); err != nil {
		return nil, err
	}
	for _, p := range ps {
		if !ctx.Enabled(p) {
			continue
		}
		nm, err := p.Run(m, ctx)
		if err != nil {
			return nil, fmt.Errorf("passes: %s: %w", p.Name, err)
		}
		if err := relay.InferModule(nm); err != nil {
			return nil, fmt.Errorf("passes: type inference after %s: %w", p.Name, err)
		}
		if err := ctx.verifyAfter(nm, p.Name); err != nil {
			return nil, err
		}
		m = nm
	}
	return m, nil
}

// verifyAfter runs the VerifyAfterEachPass hook, naming the pass whose
// output broke an invariant.
func (c *Context) verifyAfter(m *relay.Module, pass string) error {
	if c.VerifyAfterEachPass == nil {
		return nil
	}
	if err := c.VerifyAfterEachPass(m, pass); err != nil {
		return fmt.Errorf("passes: IR verification failed after %s: %w", pass, err)
	}
	return nil
}

// DefaultPipeline returns the standard optimization pipeline run by
// relay.build before code generation (the BYOC partitioning passes are
// inserted separately by partition_for_nir, matching the paper's flow).
func DefaultPipeline() []Pass {
	return []Pass{
		SimplifyInference(),
		FoldConstant(),
		FuseOps(),
	}
}

// rewriteMainOnly applies an expression rewrite to the main function's body,
// leaving partitioned external functions untouched (TVM never re-optimizes
// regions already handed to an external codegen).
func rewriteMainOnly(m *relay.Module, fn func(relay.Expr) relay.Expr) *relay.Module {
	out := m.Clone()
	main := m.Main()
	newBody := relay.Rewrite(main.Body, fn)
	if newBody != main.Body {
		nf := relay.NewFunc(main.Params, newBody)
		for k, v := range main.FnAttrs {
			nf.FnAttrs[k] = v
		}
		out.SetMain(nf)
	}
	return out
}
