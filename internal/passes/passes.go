// Package passes implements the graph-level optimization and BYOC
// partitioning passes of the mini-TVM stack: type inference, inference-mode
// simplification, constant folding, operator fusion, and the
// AnnotateTarget / MergeCompilerRegions / PartitionGraph sequence that powers
// partition_for_nir.
package passes

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/relay"
)

// Context mirrors tvm.transform.PassContext: the opt level gates which passes
// run, and individual passes can be disabled by name (used by the ablation
// benchmarks).
type Context struct {
	OptLevel int
	Disabled map[string]bool
	// VerifyAfterEachPass, when non-nil, runs on the module after the
	// initial type inference and again after every executed pass — the
	// MLIR-style verify-after-each-pass instrumentation. The hook receives
	// the name of the pass that just ran ("InferType" for the initial
	// inference); a returned error aborts the pipeline, attributing the
	// broken invariant to that pass. Callers typically install a closure
	// over verify.ModuleErr (internal/verify cannot be imported from here
	// without a cycle through internal/nir).
	VerifyAfterEachPass func(m *relay.Module, pass string) error
	// Trace, when non-nil, receives one wall-clock span per executed pass
	// (including the initial type inference), with the main function's op
	// count before and after in the span args — the compile-time half of
	// the observability layer. A nil track is a no-op, so instrumented
	// pipelines cost nothing when tracing is off.
	Trace *obs.Track
}

// NewContext returns a context at the given opt level.
func NewContext(optLevel int) *Context {
	return &Context{OptLevel: optLevel, Disabled: map[string]bool{}}
}

// Enabled reports whether a pass should run under this context.
func (c *Context) Enabled(p Pass) bool {
	return c.OptLevel >= p.MinOptLevel && !c.Disabled[p.Name]
}

// Pass is a module-to-module transformation.
type Pass struct {
	Name        string
	MinOptLevel int
	Run         func(*relay.Module, *Context) (*relay.Module, error)
}

// Sequential applies the passes in order, skipping those the context
// disables, and re-running type inference after each structural pass.
func Sequential(m *relay.Module, ctx *Context, ps ...Pass) (*relay.Module, error) {
	if ctx == nil {
		ctx = NewContext(3)
	}
	inferStart := time.Now()
	if err := relay.InferModule(m); err != nil {
		return nil, fmt.Errorf("passes: initial type inference: %w", err)
	}
	ctx.tracePass("InferType", inferStart, m, m)
	if err := ctx.verifyAfter(m, "InferType"); err != nil {
		return nil, err
	}
	for _, p := range ps {
		if !ctx.Enabled(p) {
			continue
		}
		passStart := time.Now()
		nm, err := p.Run(m, ctx)
		if err != nil {
			return nil, fmt.Errorf("passes: %s: %w", p.Name, err)
		}
		if err := relay.InferModule(nm); err != nil {
			return nil, fmt.Errorf("passes: type inference after %s: %w", p.Name, err)
		}
		ctx.tracePass(p.Name, passStart, m, nm)
		if err := ctx.verifyAfter(nm, p.Name); err != nil {
			return nil, err
		}
		m = nm
	}
	return m, nil
}

// tracePass emits one compile-time span for an executed pass. Op counts are
// computed only when a trace track is installed.
func (c *Context) tracePass(name string, start time.Time, before, after *relay.Module) {
	if c.Trace == nil {
		return
	}
	c.Trace.Emit(name, "pass", start, time.Since(start),
		obs.A("ops_before", relay.CountOps(before.Main())),
		obs.A("ops_after", relay.CountOps(after.Main())))
}

// verifyAfter runs the VerifyAfterEachPass hook, naming the pass whose
// output broke an invariant.
func (c *Context) verifyAfter(m *relay.Module, pass string) error {
	if c.VerifyAfterEachPass == nil {
		return nil
	}
	if err := c.VerifyAfterEachPass(m, pass); err != nil {
		return fmt.Errorf("passes: IR verification failed after %s: %w", pass, err)
	}
	return nil
}

// DefaultPipeline returns the standard optimization pipeline run by
// relay.build before code generation (the BYOC partitioning passes are
// inserted separately by partition_for_nir, matching the paper's flow).
func DefaultPipeline() []Pass {
	return []Pass{
		SimplifyInference(),
		FoldConstant(),
		FuseOps(),
	}
}

// rewriteMainOnly applies an expression rewrite to the main function's body,
// leaving partitioned external functions untouched (TVM never re-optimizes
// regions already handed to an external codegen).
func rewriteMainOnly(m *relay.Module, fn func(relay.Expr) relay.Expr) *relay.Module {
	out := m.Clone()
	main := m.Main()
	newBody := relay.Rewrite(main.Body, fn)
	if newBody != main.Body {
		nf := relay.NewFunc(main.Params, newBody)
		for k, v := range main.FnAttrs {
			nf.FnAttrs[k] = v
		}
		out.SetMain(nf)
	}
	return out
}
