package passes

import (
	"math"

	"repro/internal/relay"
	"repro/internal/tensor"
)

// SimplifyInference rewrites training-time constructs into their inference
// forms: nn.batch_norm with constant statistics becomes a per-channel
// multiply+add (which FoldConstant and FuseOps then absorb into the
// preceding convolution's epilogue), and nn.dropout becomes the identity.
func SimplifyInference() Pass {
	return Pass{
		Name:        "SimplifyInference",
		MinOptLevel: 0,
		Run: func(m *relay.Module, ctx *Context) (*relay.Module, error) {
			return rewriteMainOnly(m, simplifyOne), nil
		},
	}
}

func simplifyOne(e relay.Expr) relay.Expr {
	call, ok := e.(*relay.Call)
	if !ok || call.Op == nil {
		return e
	}
	switch call.Op.Name {
	case "nn.dropout":
		return call.Args[0]
	case "nn.batch_norm":
		return simplifyBatchNorm(call)
	}
	return e
}

// simplifyBatchNorm folds bn(x, γ, β, μ, σ²) into x*scale + shift when the
// statistics are constants: scale = γ/√(σ²+ε), shift = β − μ·scale.
func simplifyBatchNorm(call *relay.Call) relay.Expr {
	gamma, ok1 := call.Args[1].(*relay.Constant)
	beta, ok2 := call.Args[2].(*relay.Constant)
	mean, ok3 := call.Args[3].(*relay.Constant)
	variance, ok4 := call.Args[4].(*relay.Constant)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return call // dynamic statistics: leave for the runtime kernel
	}
	eps := call.Attrs.Float("epsilon", 1e-5)
	c := gamma.Value.Elems()
	scale := tensor.New(tensor.Float32, tensor.Shape{c})
	shift := tensor.New(tensor.Float32, tensor.Shape{c})
	for i := 0; i < c; i++ {
		s := gamma.Value.GetF(i) / math.Sqrt(variance.Value.GetF(i)+eps)
		scale.SetF(i, s)
		shift.SetF(i, beta.Value.GetF(i)-mean.Value.GetF(i)*s)
	}
	scaled := relay.NewCall(relay.OpMultiply, []relay.Expr{call.Args[0], relay.Const(scale)}, nil)
	return relay.NewCall(relay.OpAdd, []relay.Expr{scaled, relay.Const(shift)}, nil)
}
