package passes

import (
	"fmt"
	"math"

	"repro/internal/relay"
	"repro/internal/tensor"
	"repro/internal/topi"
)

// Automatic quantization — the relay.quantize flow of TVM, reproduced as an
// extension (the paper's §3.3 consumes models that arrive pre-quantized from
// TFLite; this pass manufactures such models from float32 ones):
//
//  1. *Calibrate*: run the float graph on sample inputs, recording each
//     intermediate tensor's |max| (activation range).
//  2. *Rewrite*: convolution/dense layers become qnn.conv2d / qnn.dense over
//     uint8 data and weights with int32 biases, requantized to the
//     calibrated output range; range-preserving ops (relu, clip, pools,
//     reshape/flatten) stay in the quantized domain; anything else gets a
//     dequantize boundary and the graph continues in float (a later conv
//     re-quantizes).
//
// The result is a relay QNN module indistinguishable from a TFLite import,
// so it flows through partition_for_nir and the Neuron converter unchanged.

// CalibrationProfile maps expressions to observed activation ranges.
type CalibrationProfile map[relay.Expr]float64

// Calibrate runs the module's main function on each input and records the
// max |value| of every intermediate tensor.
func Calibrate(m *relay.Module, inputs []*tensor.Tensor) (CalibrationProfile, error) {
	if err := relay.InferModule(m); err != nil {
		return nil, err
	}
	main := m.Main()
	if len(main.Params) != 1 {
		return nil, fmt.Errorf("passes: Calibrate supports single-input models, have %d", len(main.Params))
	}
	prof := CalibrationProfile{}
	for _, in := range inputs {
		env := map[relay.Expr]*tensor.Tensor{main.Params[0]: in}
		if _, err := calibEval(main.Body, env, prof); err != nil {
			return nil, err
		}
	}
	return prof, nil
}

// calibEval is a minimal float interpreter with range recording.
func calibEval(e relay.Expr, env map[relay.Expr]*tensor.Tensor, prof CalibrationProfile) (*tensor.Tensor, error) {
	if t, ok := env[e]; ok {
		return t, nil
	}
	var out *tensor.Tensor
	switch n := e.(type) {
	case *relay.Constant:
		out = n.Value
	case *relay.Var:
		return nil, fmt.Errorf("passes: unbound variable %q during calibration", n.Name)
	case *relay.Call:
		if n.Op == nil {
			return nil, fmt.Errorf("passes: calibration over function calls unsupported (quantize before partitioning)")
		}
		var args []*tensor.Tensor
		for _, a := range n.Args {
			if tup, ok := a.(*relay.Tuple); ok {
				for _, f := range tup.Fields {
					t, err := calibEval(f, env, prof)
					if err != nil {
						return nil, err
					}
					args = append(args, t)
				}
				continue
			}
			t, err := calibEval(a, env, prof)
			if err != nil {
				return nil, err
			}
			args = append(args, t)
		}
		tt, ok := n.CheckedType().(*relay.TensorType)
		if !ok {
			return nil, fmt.Errorf("passes: tuple-valued op %s in calibration", n.Op.Name)
		}
		res, err := topi.Run(n.Op.Name, args, n.Attrs, tt)
		if err != nil {
			return nil, err
		}
		out = res
	case *relay.TupleGetItem:
		return nil, fmt.Errorf("passes: tuple projection unsupported in calibration")
	case *relay.Tuple:
		return nil, fmt.Errorf("passes: bare tuple unsupported in calibration")
	default:
		return nil, fmt.Errorf("passes: cannot calibrate %T", e)
	}
	env[e] = out
	if m := topi.AbsMax(out); m > prof[e] {
		prof[e] = m
	}
	return out, nil
}

// actParams derives uint8 activation parameters covering [-absMax, absMax].
func actParams(absMax float64) tensor.QuantParams {
	if absMax <= 0 || math.IsNaN(absMax) {
		absMax = 1
	}
	return tensor.QuantParams{Scale: 2 * absMax / 255, ZeroPoint: 128}
}

// QuantizeModule rewrites a calibrated float module into QNN form.
func QuantizeModule(m *relay.Module, prof CalibrationProfile) (*relay.Module, error) {
	if err := relay.InferModule(m); err != nil {
		return nil, err
	}
	q := &quantizer{prof: prof, qval: map[relay.Expr]relay.Expr{}, fval: map[relay.Expr]relay.Expr{}}
	main := m.Main()
	if len(main.Params) != 1 {
		return nil, fmt.Errorf("passes: QuantizeModule supports single-input models")
	}
	// Uses analysis: biases may only fold into single-consumer accumulators.
	q.uses = countUses(main.Body)
	body, err := q.float(main.Body)
	if err != nil {
		return nil, err
	}
	out := relay.NewModule(relay.NewFunc(main.Params, body))
	if err := relay.InferModule(out); err != nil {
		return nil, fmt.Errorf("passes: quantized module ill-typed: %w", err)
	}
	return out, nil
}

func countUses(body relay.Expr) map[relay.Expr]int {
	uses := map[relay.Expr]int{}
	relay.PostOrderVisit(body, func(e relay.Expr) {
		switch n := e.(type) {
		case *relay.Call:
			for _, a := range n.Args {
				uses[a]++
			}
		case *relay.Tuple:
			for _, f := range n.Fields {
				uses[f]++
			}
		case *relay.TupleGetItem:
			uses[n.Tuple]++
		}
	})
	return uses
}

// quantizer carries the rewrite state: for every original expr it can
// produce a float version (fval) and/or a quantized version (qval).
type quantizer struct {
	prof CalibrationProfile
	uses map[relay.Expr]int
	qval map[relay.Expr]relay.Expr // quantized uint8 form
	fval map[relay.Expr]relay.Expr // float form
}

// paramsOf returns the calibrated activation params of an original expr.
func (q *quantizer) paramsOf(e relay.Expr) tensor.QuantParams {
	return actParams(q.prof[e])
}

// quantized returns e in uint8 form, inserting qnn.quantize from the float
// form where no native quantized version exists.
func (q *quantizer) quantized(e relay.Expr) (relay.Expr, tensor.QuantParams, error) {
	if err := q.rewrite(e); err != nil {
		return nil, tensor.QuantParams{}, err
	}
	if v, ok := q.qval[e]; ok {
		tt := v.CheckedType().(*relay.TensorType)
		return v, *tt.Quant, nil
	}
	f, err := q.float(e)
	if err != nil {
		return nil, tensor.QuantParams{}, err
	}
	p := q.paramsOf(e)
	qe := relay.NewCall(relay.OpQnnQuantize, []relay.Expr{f}, relay.Attrs{
		"output_scale": p.Scale, "output_zero_point": int(p.ZeroPoint), "out_dtype": "uint8"})
	if _, err := relay.InferTypes(qe); err != nil {
		return nil, p, err
	}
	q.qval[e] = qe
	return qe, p, nil
}

// float returns e in float32 form, inserting qnn.dequantize where the
// rewrite produced a quantized version.
func (q *quantizer) float(e relay.Expr) (relay.Expr, error) {
	if v, ok := q.fval[e]; ok {
		return v, nil
	}
	if err := q.rewrite(e); err != nil {
		return nil, err
	}
	if v, ok := q.fval[e]; ok {
		return v, nil
	}
	qe := q.qval[e]
	tt := qe.CheckedType().(*relay.TensorType)
	de := relay.NewCall(relay.OpQnnDequantize, []relay.Expr{qe}, relay.Attrs{
		"input_scale": tt.Quant.Scale, "input_zero_point": int(tt.Quant.ZeroPoint)})
	if _, err := relay.InferTypes(de); err != nil {
		return nil, err
	}
	q.fval[e] = de
	return de, nil
}

// rewrite populates qval and/or fval for e.
func (q *quantizer) rewrite(e relay.Expr) error {
	if _, ok := q.qval[e]; ok {
		return nil
	}
	if _, ok := q.fval[e]; ok {
		return nil
	}
	switch n := e.(type) {
	case *relay.Var, *relay.Constant:
		q.fval[e] = e
		return nil
	case *relay.Call:
		return q.rewriteCall(n)
	}
	return fmt.Errorf("passes: quantizer cannot rewrite %T", e)
}

func (q *quantizer) rewriteCall(c *relay.Call) error {
	switch c.Op.Name {
	case "nn.conv2d", "nn.dense":
		return q.rewriteMatmulLike(c, nil)
	case "nn.bias_add":
		// bias_add over a conv/dense: fold the bias into the quantized op.
		if inner, ok := c.Args[0].(*relay.Call); ok && inner.Op != nil &&
			(inner.Op.Name == "nn.conv2d" || inner.Op.Name == "nn.dense") &&
			q.uses[inner] == 1 {
			if bias, ok := c.Args[1].(*relay.Constant); ok {
				return q.rewriteMatmulLike(inner, bias, c)
			}
		}
		return q.fallbackFloat(c)
	case "nn.relu", "clip", "nn.max_pool2d", "nn.avg_pool2d",
		"nn.global_avg_pool2d", "reshape", "nn.batch_flatten", "squeeze":
		// Range-preserving / passthrough ops: stay quantized when the input
		// is quantized.
		in, _, err := q.quantized(c.Args[0])
		if err != nil {
			return err
		}
		out := relay.NewCall(c.Op, []relay.Expr{in}, c.Attrs)
		if _, err := relay.InferTypes(out); err != nil {
			return err
		}
		q.qval[c] = out
		return nil
	default:
		return q.fallbackFloat(c)
	}
}

// rewriteMatmulLike quantizes a conv2d/dense (optionally with a folded
// bias). outExpr is the expression whose calibrated range defines the
// requantized output (the bias_add when folded, else the op itself).
func (q *quantizer) rewriteMatmulLike(c *relay.Call, bias *relay.Constant, outExprOpt ...*relay.Call) error {
	outExpr := relay.Expr(c)
	if len(outExprOpt) > 0 {
		outExpr = outExprOpt[0]
	}
	wConst, ok := c.Args[1].(*relay.Constant)
	if !ok {
		return q.fallbackFloat(c)
	}
	in, inP, err := q.quantized(c.Args[0])
	if err != nil {
		return err
	}
	// Symmetric uint8 weight quantization from the actual weight range.
	wAbs := topi.AbsMax(wConst.Value)
	wP := tensor.QuantParams{Scale: 2 * math.Max(wAbs, 1e-9) / 255, ZeroPoint: 128}
	wq := wConst.Value.QuantizeTo(tensor.UInt8, wP)

	attrs := c.Attrs.Clone()
	attrs["input_scale"] = inP.Scale
	attrs["input_zero_point"] = int(inP.ZeroPoint)
	attrs["kernel_scale"] = wP.Scale
	attrs["kernel_zero_point"] = int(wP.ZeroPoint)
	opName := "qnn.conv2d"
	if c.Op.Name == "nn.dense" {
		opName = "qnn.dense"
	}
	acc := relay.Expr(relay.NewCall(relay.GetOp(opName), []relay.Expr{in, relay.Const(wq)}, attrs))

	if bias != nil {
		accScale := inP.Scale * wP.Scale
		bi := tensor.New(tensor.Int32, bias.Value.Shape)
		for i := 0; i < bias.Value.Elems(); i++ {
			bi.I32()[i] = int32(math.Round(bias.Value.GetF(i) / accScale))
		}
		acc = relay.NewCall(relay.OpBiasAdd, []relay.Expr{acc, relay.Const(bi)}, nil)
	}

	outP := actParams(q.prof[outExpr])
	rq := relay.NewCall(relay.OpQnnRequantize, []relay.Expr{acc}, relay.Attrs{
		"input_scale": inP.Scale * wP.Scale, "input_zero_point": 0,
		"output_scale": outP.Scale, "output_zero_point": int(outP.ZeroPoint),
		"out_dtype": "uint8"})
	if _, err := relay.InferTypes(rq); err != nil {
		return err
	}
	q.qval[outExpr] = rq
	return nil
}

// fallbackFloat keeps the op in float32, dequantizing inputs as needed.
func (q *quantizer) fallbackFloat(c *relay.Call) error {
	newArgs := make([]relay.Expr, len(c.Args))
	for i, a := range c.Args {
		if tup, ok := a.(*relay.Tuple); ok {
			fields := make([]relay.Expr, len(tup.Fields))
			for j, f := range tup.Fields {
				ff, err := q.float(f)
				if err != nil {
					return err
				}
				fields[j] = ff
			}
			newArgs[i] = relay.NewTuple(fields)
			continue
		}
		f, err := q.float(a)
		if err != nil {
			return err
		}
		newArgs[i] = f
	}
	out := relay.NewCall(c.Op, newArgs, c.Attrs)
	if _, err := relay.InferTypes(out); err != nil {
		return err
	}
	q.fval[c] = out
	return nil
}
