package passes

import (
	"repro/internal/relay"
)

// FuseOps groups chains of operators into Primitive functions, mirroring
// TVM's kernel fusion: a complex op (conv2d/dense) absorbs a trailing chain
// of elementwise/broadcast ops, and adjacent injective ops merge. The graph
// executor launches one "kernel" per primitive call, so fusion directly
// reduces per-op launch overhead — the mechanism that makes opt_level=3
// TVM faster than the unfused baseline in the ablation bench.
//
// Fusion never crosses into nested functions (BYOC regions already handed to
// the external codegen stay untouched).
func FuseOps() Pass {
	return Pass{
		Name:        "FuseOps",
		MinOptLevel: 1,
		Run: func(m *relay.Module, ctx *Context) (*relay.Module, error) {
			out := m.Clone()
			main := m.Main()
			newBody := fuseBody(main.Body)
			nf := relay.NewFunc(main.Params, newBody)
			for k, v := range main.FnAttrs {
				nf.FnAttrs[k] = v
			}
			out.SetMain(nf)
			return out, nil
		},
	}
}

// fuseGroup is a union-find node over calls in the current scope.
type fuseGroup struct {
	parent *fuseGroup
}

func (g *fuseGroup) find() *fuseGroup {
	for g.parent != nil {
		if g.parent.parent != nil {
			g.parent = g.parent.parent // path halving
		}
		g = g.parent
	}
	return g
}

func fuseBody(body relay.Expr) relay.Expr {
	// 1. Collect the calls of this scope in post-order, without descending
	// into nested Function bodies, and count consumers of every node.
	var order []*relay.Call
	uses := map[relay.Expr]int{}
	visited := map[relay.Expr]bool{}
	var walk func(e relay.Expr)
	walk = func(e relay.Expr) {
		if e == nil || visited[e] {
			return
		}
		visited[e] = true
		switch n := e.(type) {
		case *relay.Call:
			for _, a := range n.Args {
				walk(a)
				uses[a]++
			}
			if n.Fn != nil {
				uses[n.Fn]++
			}
			if n.Op != nil {
				order = append(order, n)
			}
		case *relay.Tuple:
			for _, f := range n.Fields {
				walk(f)
				uses[f]++
			}
		case *relay.TupleGetItem:
			walk(n.Tuple)
			uses[n.Tuple]++
		case *relay.Function:
			// Opaque boundary: do not fuse across or inside.
		}
	}
	walk(body)
	uses[body]++

	// 2. Union-find merging by the two fusion rules.
	groups := map[*relay.Call]*fuseGroup{}
	for _, c := range order {
		groups[c] = &fuseGroup{}
	}
	inScope := func(e relay.Expr) (*relay.Call, bool) {
		c, ok := e.(*relay.Call)
		if !ok || c.Op == nil {
			return nil, false
		}
		_, tracked := groups[c]
		return c, tracked
	}
	for _, c := range order {
		pc := c.Op.Pattern
		for _, arg := range c.Args {
			a, ok := inScope(arg)
			if !ok || uses[a] != 1 {
				continue
			}
			pa := a.Op.Pattern
			mergeable := false
			switch {
			case pc <= relay.PatternBroadcast && pa <= relay.PatternOutEWiseFusable:
				// conv2d → bias_add → relu chains; ewise onto anything fusable.
				mergeable = true
			case pc == relay.PatternInjective && pa <= relay.PatternInjective:
				// reshape/transpose chains.
				mergeable = true
			}
			if mergeable {
				ga, gc := groups[a].find(), groups[c].find()
				if ga != gc {
					ga.parent = gc
				}
			}
		}
	}

	// 3. Collect members per group; identify each group's root (the member
	// not consumed by another member of the same group).
	members := map[*fuseGroup][]*relay.Call{}
	for _, c := range order {
		g := groups[c].find()
		members[g] = append(members[g], c)
	}
	rootOf := map[*relay.Call][]*relay.Call{} // root call -> all members (topo order)
	for _, ms := range members {
		if len(ms) < 2 {
			continue
		}
		inGroup := map[*relay.Call]bool{}
		for _, m := range ms {
			inGroup[m] = true
		}
		consumedInside := map[*relay.Call]bool{}
		for _, m := range ms {
			for _, arg := range m.Args {
				if a, ok := arg.(*relay.Call); ok && inGroup[a] {
					consumedInside[a] = true
				}
			}
		}
		var root *relay.Call
		for _, m := range ms {
			if !consumedInside[m] {
				root = m // exactly one by construction (merges follow use edges)
			}
		}
		rootOf[root] = ms
	}

	// 4. Rebuild the body, replacing every group root with a call to a
	// Primitive function over the group's external inputs.
	memo := map[relay.Expr]relay.Expr{}
	var transform func(e relay.Expr) relay.Expr
	transform = func(e relay.Expr) relay.Expr {
		if e == nil {
			return nil
		}
		if r, ok := memo[e]; ok {
			return r
		}
		var out relay.Expr
		switch n := e.(type) {
		case *relay.Call:
			if ms, isRoot := rootOf[n]; isRoot {
				out = buildPrimitive(n, ms, transform)
				break
			}
			newArgs := make([]relay.Expr, len(n.Args))
			for i, a := range n.Args {
				newArgs[i] = transform(a)
			}
			newFn := n.Fn
			if n.Fn != nil {
				newFn = transform(n.Fn)
			}
			out = &relay.Call{Op: n.Op, Fn: newFn, Args: newArgs, Attrs: n.Attrs}
		case *relay.Tuple:
			fields := make([]relay.Expr, len(n.Fields))
			for i, f := range n.Fields {
				fields[i] = transform(f)
			}
			out = relay.NewTuple(fields)
		case *relay.TupleGetItem:
			out = relay.NewTupleGetItem(transform(n.Tuple), n.Index)
		default:
			out = e
		}
		memo[e] = out
		return out
	}
	// Members other than roots are only reachable via their roots, so the
	// transform never visits them directly.
	return transform(body)
}

// buildPrimitive lifts a fused group into fn(params...){chain} and returns
// the call feeding it the transformed external inputs. Constants stay inline
// in the primitive body (they are baked into the fused kernel).
func buildPrimitive(root *relay.Call, ms []*relay.Call, transform func(relay.Expr) relay.Expr) relay.Expr {
	inGroup := map[*relay.Call]bool{}
	for _, m := range ms {
		inGroup[m] = true
	}
	var params []*relay.Var
	var outerArgs []relay.Expr
	paramFor := map[relay.Expr]*relay.Var{}

	var cloneMember func(c *relay.Call) relay.Expr
	cloneArg := func(a relay.Expr) relay.Expr {
		if c, ok := a.(*relay.Call); ok && inGroup[c] {
			return cloneMember(c)
		}
		if k, ok := a.(*relay.Constant); ok {
			return k
		}
		if v, seen := paramFor[a]; seen {
			return v
		}
		ty := a.CheckedType()
		v := relay.NewVar("p"+itoa(len(params)), ty)
		paramFor[a] = v
		params = append(params, v)
		outerArgs = append(outerArgs, transform(a))
		return v
	}
	cloneMemo := map[*relay.Call]relay.Expr{}
	cloneMember = func(c *relay.Call) relay.Expr {
		if r, ok := cloneMemo[c]; ok {
			return r
		}
		newArgs := make([]relay.Expr, len(c.Args))
		for i, a := range c.Args {
			newArgs[i] = cloneArg(a)
		}
		out := &relay.Call{Op: c.Op, Args: newArgs, Attrs: c.Attrs}
		cloneMemo[c] = out
		return out
	}
	bodyClone := cloneMember(root)
	fn := relay.NewFunc(params, bodyClone)
	fn.FnAttrs[relay.FnAttrPrimitive] = "1"
	return relay.NewFnCall(fn, outerArgs)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
