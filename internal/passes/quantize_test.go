package passes

import (
	"testing"

	"repro/internal/relay"
	"repro/internal/tensor"
)

// floatCNN builds a small sequential float network with conv+bias+relu,
// pooling, flatten, dense+bias and softmax — the shape the auto-quantizer
// targets.
func floatCNN() *relay.Module {
	data := relay.NewVar("data", relay.TType(tensor.Float32, 1, 16, 16, 3))
	conv := relay.NewCall(relay.OpConv2D,
		[]relay.Expr{data, randConst(tensor.Shape{8, 3, 3, 3}, 41)},
		relay.Attrs{"padding": []int{1, 1}})
	biased := relay.NewCall(relay.OpBiasAdd, []relay.Expr{conv, randConst(tensor.Shape{8}, 42)}, nil)
	act := relay.NewCall(relay.OpReLU, []relay.Expr{biased}, nil)
	pool := relay.NewCall(relay.OpMaxPool2D, []relay.Expr{act},
		relay.Attrs{"pool_size": []int{2, 2}, "strides": []int{2, 2}})
	flat := relay.NewCall(relay.OpBatchFlatten, []relay.Expr{pool}, nil)
	fc := relay.NewCall(relay.OpDense, []relay.Expr{flat, randConst(tensor.Shape{5, 8 * 8 * 8}, 43)}, nil)
	fcb := relay.NewCall(relay.OpBiasAdd, []relay.Expr{fc, randConst(tensor.Shape{5}, 44)}, nil)
	sm := relay.NewCall(relay.OpSoftmax, []relay.Expr{fcb}, nil)
	return relay.NewModule(relay.NewFunc([]*relay.Var{data}, sm))
}

func calibInputs(n int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, n)
	for i := range out {
		t := tensor.New(tensor.Float32, tensor.Shape{1, 16, 16, 3})
		t.FillUniform(tensor.NewRNG(uint64(100+i)), 0, 1)
		out[i] = t
	}
	return out
}

// evalFloat runs a module's main through the calibration interpreter.
func evalFloat(t *testing.T, m *relay.Module, in *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	if err := relay.InferModule(m); err != nil {
		t.Fatal(err)
	}
	main := m.Main()
	env := map[relay.Expr]*tensor.Tensor{main.Params[0]: in}
	out, err := calibEval(main.Body, env, CalibrationProfile{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCalibrateRecordsRanges(t *testing.T) {
	m := floatCNN()
	prof, err := Calibrate(m, calibInputs(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) < 7 {
		t.Errorf("profile has %d entries, expected one per op", len(prof))
	}
	for e, v := range prof {
		if v < 0 {
			t.Errorf("negative range for %T", e)
		}
	}
}

func TestQuantizeModuleStructure(t *testing.T) {
	m := floatCNN()
	prof, err := Calibrate(m, calibInputs(2))
	if err != nil {
		t.Fatal(err)
	}
	qm, err := QuantizeModule(m, prof)
	if err != nil {
		t.Fatal(err)
	}
	if n := relay.CountOps(qm.Main(), "qnn.conv2d"); n != 1 {
		t.Errorf("qnn.conv2d count %d", n)
	}
	if n := relay.CountOps(qm.Main(), "qnn.dense"); n != 1 {
		t.Errorf("qnn.dense count %d", n)
	}
	if n := relay.CountOps(qm.Main(), "nn.conv2d"); n != 0 {
		t.Errorf("float conv survived quantization: %d", n)
	}
	if n := relay.CountOps(qm.Main(), "qnn.requantize"); n != 2 {
		t.Errorf("requantize count %d", n)
	}
	// Softmax stays float behind a dequantize.
	if n := relay.CountOps(qm.Main(), "qnn.dequantize"); n < 1 {
		t.Error("no dequantize boundary before softmax")
	}
	// Biases became int32 constants.
	found := false
	relay.PostOrderVisit(qm.Main().Body, func(e relay.Expr) {
		if c, ok := e.(*relay.Constant); ok && c.Value.DType == tensor.Int32 {
			found = true
		}
	})
	if !found {
		t.Error("no int32 bias constant in quantized module")
	}
}

func TestQuantizeModuleAccuracy(t *testing.T) {
	m := floatCNN()
	prof, err := Calibrate(m, calibInputs(4))
	if err != nil {
		t.Fatal(err)
	}
	qm, err := QuantizeModule(m, prof)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.Float32, tensor.Shape{1, 16, 16, 3})
	in.FillUniform(tensor.NewRNG(777), 0, 1)
	want := evalFloat(t, m, in)
	got := evalFloat(t, qm, in)
	// Softmax outputs: quantization error must stay small in probability
	// space, and the argmax must survive.
	if !tensor.AllClose(got, want, 0.08, 0.1) {
		t.Errorf("quantized output diverges, max diff %g", tensor.MaxAbsDiff(got, want))
	}
	if got.ArgMax() != want.ArgMax() {
		t.Errorf("quantization changed the prediction: %d vs %d", got.ArgMax(), want.ArgMax())
	}
}

func TestQuantizeModuleNoProfileFallsBack(t *testing.T) {
	// With an empty profile every activation range defaults to 1; the module
	// must still be well-typed and runnable (degraded accuracy is fine).
	m := floatCNN()
	qm, err := QuantizeModule(m, CalibrationProfile{})
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.Float32, tensor.Shape{1, 16, 16, 3})
	in.FillUniform(tensor.NewRNG(5), 0, 1)
	out := evalFloat(t, qm, in)
	if out.Elems() != 5 {
		t.Errorf("unexpected output size %d", out.Elems())
	}
}

func TestCalibrateRejectsMultiInput(t *testing.T) {
	a := relay.NewVar("a", relay.TType(tensor.Float32, 2))
	b := relay.NewVar("b", relay.TType(tensor.Float32, 2))
	m := relay.NewModule(relay.NewFunc([]*relay.Var{a, b},
		relay.NewCall(relay.OpAdd, []relay.Expr{a, b}, nil)))
	if _, err := Calibrate(m, calibInputs(1)); err == nil {
		t.Error("multi-input calibration accepted")
	}
}

func TestQuantizeModuleWithConcatFallback(t *testing.T) {
	// Branchy model: two conv branches concatenated. concatenate is not on
	// the quantizer's passthrough list, so it must fall back to float with
	// dequantize boundaries — and stay numerically faithful.
	data := relay.NewVar("data", relay.TType(tensor.Float32, 1, 8, 8, 3))
	mkBranch := func(seed uint64) relay.Expr {
		conv := relay.NewCall(relay.OpConv2D,
			[]relay.Expr{data, randConst(tensor.Shape{4, 3, 3, 3}, seed)},
			relay.Attrs{"padding": []int{1, 1}})
		return relay.NewCall(relay.OpReLU, []relay.Expr{conv}, nil)
	}
	cc := relay.NewCall(relay.OpConcatenate,
		[]relay.Expr{relay.NewTuple([]relay.Expr{mkBranch(51), mkBranch(52)})},
		relay.Attrs{"axis": 3})
	m := relay.NewModule(relay.NewFunc([]*relay.Var{data}, cc))

	ins := []*tensor.Tensor{tensor.New(tensor.Float32, tensor.Shape{1, 8, 8, 3})}
	ins[0].FillUniform(tensor.NewRNG(61), 0, 1)
	prof, err := Calibrate(m, ins)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := QuantizeModule(m, prof)
	if err != nil {
		t.Fatal(err)
	}
	if n := relay.CountOps(qm.Main(), "qnn.conv2d"); n != 2 {
		t.Errorf("qnn.conv2d count %d", n)
	}
	if n := relay.CountOps(qm.Main(), "qnn.dequantize"); n < 2 {
		t.Errorf("expected dequantize boundaries before concat, got %d", n)
	}
	want := evalFloat(t, m, ins[0])
	got := evalFloat(t, qm, ins[0])
	if !tensor.AllClose(got, want, 0.1, 0.1) {
		t.Errorf("branchy quantization diverges, max %g", tensor.MaxAbsDiff(got, want))
	}
}
