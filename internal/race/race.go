//go:build race

// Package race reports whether the Go race detector is compiled into the
// binary, mirroring the standard library's internal/race. Tests that pin
// exact allocation counts consult it: the detector's shadow-memory
// bookkeeping and altered GC timing make testing.AllocsPerRun
// nondeterministic, so such pins only hold in non-race builds.
package race

// Enabled is true when the binary was built with -race.
const Enabled = true
