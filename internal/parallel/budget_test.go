package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// The shared token budget must bound total concurrency across nested
// For/ForChunked calls: one implicit worker per top-level caller plus at most
// MaxWorkers-1 helpers, no matter how deeply kernels nest.
func TestNestedParallelismBounded(t *testing.T) {
	old := SetMaxWorkers(4)
	defer SetMaxWorkers(old)

	var cur, peak int64
	enter := func() {
		c := atomic.AddInt64(&cur, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if c <= p || atomic.CompareAndSwapInt64(&peak, p, c) {
				break
			}
		}
	}
	leave := func() { atomic.AddInt64(&cur, -1) }

	var visited int64
	ForChunked(8, func(lo, hi int) {
		enter()
		defer leave()
		for i := lo; i < hi; i++ {
			// Nested kernel-style loop competing for the same budget.
			ForChunked(64, func(l, h int) {
				enter()
				defer leave()
				for j := l; j < h; j++ {
					atomic.AddInt64(&visited, 1)
				}
			})
		}
	})
	if visited != 8*64 {
		t.Fatalf("visited %d, want %d", visited, 8*64)
	}
	// Each goroutine is counted at most twice (an outer body running its
	// nested first chunk inline holds two enters on one goroutine), so true
	// goroutine concurrency ≤ MaxWorkers bounds the counter by 2×MaxWorkers.
	// Without the shared budget, 8 outer chunks × 4-way inner splits would
	// push this toward 32.
	if p := atomic.LoadInt64(&peak); p > 8 {
		t.Fatalf("peak body concurrency %d exceeds 2×MaxWorkers=8", p)
	}
}

// All tokens must return to the pool once every parallel call completes.
func TestTokensRestored(t *testing.T) {
	old := SetMaxWorkers(4)
	defer SetMaxWorkers(old)
	want := AvailableTokens()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ForChunked(32, func(lo, hi int) {
					ForElems(4*elemGrain, func(l, h int) {})
				})
			}
		}()
	}
	wg.Wait()
	if got := AvailableTokens(); got != want {
		t.Fatalf("AvailableTokens after drain = %d, want %d", got, want)
	}
}

// A caller that nests under an exhausted budget must still make progress
// (serial execution), never deadlock.
func TestExhaustedBudgetRunsSerially(t *testing.T) {
	old := SetMaxWorkers(2)
	defer SetMaxWorkers(old)
	var visited int64
	ForChunked(2, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			// With 2 workers, the outer call holds the only token: the inner
			// call must fall back to the serial path.
			For(100, func(int) { atomic.AddInt64(&visited, 1) })
		}
	})
	if visited != 200 {
		t.Fatalf("visited %d, want 200", visited)
	}
}

func TestForElemsCoverage(t *testing.T) {
	for _, n := range []int{0, 1, 7, elemGrain - 1, 2 * elemGrain, 5*elemGrain + 13} {
		var visited int64
		var mu sync.Mutex
		seen := make(map[int]bool, n)
		ForElems(n, func(lo, hi int) {
			atomic.AddInt64(&visited, int64(hi-lo))
			mu.Lock()
			for i := lo; i < hi; i++ {
				if seen[i] {
					t.Errorf("n=%d: index %d in two chunks", n, i)
				}
				seen[i] = true
			}
			mu.Unlock()
		})
		if visited != int64(n) {
			t.Fatalf("n=%d: visited %d", n, visited)
		}
	}
}

// Serial ForElems below the grain must not allocate (kernels rely on this
// for the planned executor's allocation-free steady state).
func TestForElemsSerialNoAlloc(t *testing.T) {
	dst := make([]float32, elemGrain)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = 1
		}
	}
	if allocs := testing.AllocsPerRun(100, func() { ForElems(len(dst), body) }); allocs != 0 {
		t.Fatalf("serial ForElems allocates %.1f times per run", allocs)
	}
}
