package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	n := 1000
	counts := make([]int32, n)
	For(n, func(i int) {
		atomic.AddInt32(&counts[i], 1)
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForChunkedCoversRange(t *testing.T) {
	n := 777
	var mu sync.Mutex
	seen := make([]bool, n)
	ForChunked(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		mu.Lock()
		for i := lo; i < hi; i++ {
			if seen[i] {
				t.Errorf("index %d in two chunks", i)
			}
			seen[i] = true
		}
		mu.Unlock()
	})
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d never visited", i)
		}
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	called := false
	For(0, func(int) { called = true })
	For(-5, func(int) { called = true })
	if called {
		t.Error("body called for empty range")
	}
}

func TestSetMaxWorkers(t *testing.T) {
	old := SetMaxWorkers(1)
	defer SetMaxWorkers(old)
	if MaxWorkers() != 1 {
		t.Errorf("MaxWorkers = %d", MaxWorkers())
	}
	// Serial path must still cover the range.
	sum := 0
	For(10, func(i int) { sum += i }) // safe: single worker
	if sum != 45 {
		t.Errorf("serial sum = %d", sum)
	}
	if prev := SetMaxWorkers(0); prev != 1 {
		t.Errorf("SetMaxWorkers returned %d, want 1", prev)
	}
	if MaxWorkers() != 1 {
		t.Error("worker cap below 1 must clamp to 1")
	}
}

// Property: the set of visited indices equals [0,n) for any n.
func TestForCoverageProperty(t *testing.T) {
	f := func(n uint16) bool {
		m := int(n % 500)
		var visited int64
		For(m, func(i int) { atomic.AddInt64(&visited, 1) })
		return visited == int64(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
