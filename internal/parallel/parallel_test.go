package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	n := 1000
	counts := make([]int32, n)
	For(n, func(i int) {
		atomic.AddInt32(&counts[i], 1)
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForChunkedCoversRange(t *testing.T) {
	n := 777
	var mu sync.Mutex
	seen := make([]bool, n)
	ForChunked(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		mu.Lock()
		for i := lo; i < hi; i++ {
			if seen[i] {
				t.Errorf("index %d in two chunks", i)
			}
			seen[i] = true
		}
		mu.Unlock()
	})
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d never visited", i)
		}
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	called := false
	For(0, func(int) { called = true })
	For(-5, func(int) { called = true })
	if called {
		t.Error("body called for empty range")
	}
}

func TestSetMaxWorkers(t *testing.T) {
	old := SetMaxWorkers(1)
	defer SetMaxWorkers(old)
	if MaxWorkers() != 1 {
		t.Errorf("MaxWorkers = %d", MaxWorkers())
	}
	// Serial path must still cover the range.
	sum := 0
	For(10, func(i int) { sum += i }) // safe: single worker
	if sum != 45 {
		t.Errorf("serial sum = %d", sum)
	}
	if prev := SetMaxWorkers(0); prev != 1 {
		t.Errorf("SetMaxWorkers returned %d, want 1", prev)
	}
	if MaxWorkers() != 1 {
		t.Error("worker cap below 1 must clamp to 1")
	}
}

// The worker cap is written by tests/ablations while concurrently running
// kernels read it; this must be race-free (run with -race). The wavefront
// executor dispatches kernels from several goroutines at once, so the
// concurrent-For part also exercises nested parallelism.
func TestConcurrentForAndSetMaxWorkers(t *testing.T) {
	old := MaxWorkers()
	defer SetMaxWorkers(old)
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for w := 1; ; w = w%4 + 1 {
			select {
			case <-stop:
				return
			default:
				SetMaxWorkers(w)
			}
		}
	}()
	var visited int64
	const loops, n = 50, 200
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for l := 0; l < loops; l++ {
				For(n, func(i int) { atomic.AddInt64(&visited, 1) })
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-writerDone
	if visited != 4*loops*n {
		t.Fatalf("visited %d indices, want %d", visited, 4*loops*n)
	}
}

// Property: the set of visited indices equals [0,n) for any n.
func TestForCoverageProperty(t *testing.T) {
	f := func(n uint16) bool {
		m := int(n % 500)
		var visited int64
		For(m, func(i int) { atomic.AddInt64(&visited, 1) })
		return visited == int64(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
