package parallel

import (
	"fmt"
	"testing"
)

// BenchmarkElemGrain measures the crossover between the serial loop and the
// token-budget parallel split for a representative cheap elementwise body
// (load, multiply, store). The elemGrain constant in parallel.go is derived
// from this benchmark together with BenchmarkSpawnJoin: the parallel split
// only pays once the per-helper slice of work comfortably exceeds the
// spawn+join cost. The cap is pinned to 4 workers so the split mechanics are
// measured even on a single-core runner (where the OS timeshares the
// helpers). Re-run with
//
//	go test ./internal/parallel -bench 'ElemGrain|SpawnJoin' -benchtime 100ms
//
// when retuning the constant for a new target machine.
func BenchmarkElemGrain(b *testing.B) {
	old := SetMaxWorkers(4)
	defer SetMaxWorkers(old)
	for _, n := range []int{1 << 10, 4 << 10, 8 << 10, 16 << 10, 64 << 10, 256 << 10} {
		src := make([]float32, n)
		dst := make([]float32, n)
		body := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dst[i] = src[i] * 1.5
			}
		}
		b.Run(fmt.Sprintf("serial/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				body(0, n)
			}
		})
		b.Run(fmt.Sprintf("forchunked/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ForChunked(n, body)
			}
		})
		b.Run(fmt.Sprintf("forelems/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ForElems(n, body)
			}
		})
	}
}

// BenchmarkSpawnJoin isolates the fixed cost of one helper-goroutine
// spawn+join through the token budget — the overhead a too-low serial
// threshold pays on every tiny kernel.
func BenchmarkSpawnJoin(b *testing.B) {
	old := SetMaxWorkers(4)
	defer SetMaxWorkers(old)
	for i := 0; i < b.N; i++ {
		ForChunked(2, func(lo, hi int) {})
	}
}
