// Package parallel provides the goroutine work-splitting helpers used by the
// TOPI CPU kernels and the planned executor's wavefront scheduler. Kernels
// parallelize over their outermost independent dimension (batch×output-row
// tiles for convolution, N-panel tiles for GEMM), which keeps per-goroutine
// state disjoint so no locking is needed.
//
// Inter-op (wavefront) and intra-op (kernel tile) parallelism share one
// bounded budget: a global pool of MaxWorkers-1 "extra worker" tokens. Every
// For/ForChunked/ForElems call runs part of the range on the calling
// goroutine and spawns at most as many helper goroutines as tokens it could
// acquire; tokens are returned when the call completes. Acquisition never
// blocks — when the executor's wavefront has already claimed the budget, a
// kernel nested inside one of its tasks simply runs serially instead of
// oversubscribing GOMAXPROCS with a second layer of goroutines.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers caps total parallelism; GOMAXPROCS by default. It is read on
// every For/ForChunked call — possibly from concurrently executing kernels —
// while tests and ablations write it, so access is atomic.
var maxWorkers atomic.Int64

// tokens counts the extra-worker slots currently available (cap-1 when idle:
// the calling goroutine itself is the implicit first worker and needs no
// token). Helpers acquire with a CAS loop and release on completion; the
// counter can dip below zero transiently while SetMaxWorkers shrinks the cap
// under outstanding work, which simply starves acquisition until releases
// catch up.
var tokens atomic.Int64

func init() {
	n := int64(runtime.GOMAXPROCS(0))
	maxWorkers.Store(n)
	tokens.Store(n - 1)
}

// SetMaxWorkers overrides the worker cap (testing and the serial-kernel
// ablation use 1). Returns the previous value. n < 1 is treated as 1.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	old := maxWorkers.Swap(int64(n))
	// Adjust the available budget by the cap delta. Concurrent calls
	// telescope: each Swap observes the previous value exactly once, so the
	// summed deltas always equal final-minus-initial.
	tokens.Add(int64(n) - old)
	return int(old)
}

// MaxWorkers returns the current worker cap.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// AvailableTokens reports how many extra-worker slots are currently free.
// Intended for tests and monitoring; the value is immediately stale.
func AvailableTokens() int { return int(tokens.Load()) }

// acquireTokens takes up to want extra-worker slots from the shared budget
// without blocking, returning how many it got (possibly zero).
func acquireTokens(want int) int {
	if want <= 0 {
		return 0
	}
	for {
		avail := tokens.Load()
		if avail <= 0 {
			return 0
		}
		take := int64(want)
		if take > avail {
			take = avail
		}
		if tokens.CompareAndSwap(avail, avail-take) {
			return int(take)
		}
	}
}

func releaseTokens(n int) {
	if n > 0 {
		tokens.Add(int64(n))
	}
}

// elemGrain is the serial cutoff for ForElems, in elements of a cheap
// (load/op/store) elementwise loop. Derived from BenchmarkSpawnJoin and
// BenchmarkElemGrain in grain_bench_test.go: spawning and joining one helper
// goroutine costs on the order of a microsecond, while a simple float32 map
// loop runs at roughly 1 element/ns, so a helper must own several thousand
// elements before the split pays for itself. 8k per worker gives the
// coordination cost a ~4× margin and keeps small activation tensors (the
// common case in the paper's mobile models: 56×56×8 tiles, softmax rows,
// scalar epilogues) on the allocation-free serial path.
const elemGrain = 8 << 10

// For runs body(i) for every i in [0,n), splitting the range into contiguous
// chunks: one executed inline by the caller, the rest by helper goroutines —
// at most as many as the shared budget has tokens. It runs serially when n
// is small, only one worker is allowed, or the budget is exhausted (e.g.
// when nested under a wavefront task that already owns the workers).
func For(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	// Serial fast path: skip the chunk-closure wrapper entirely, so a
	// single-worker For is allocation-free (the planned executor's
	// steady-state hot loop runs through here on every kernel).
	if n == 1 || MaxWorkers() <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ChunkOpts bounds one ForChunkedOpts call's parallelism. The zero value
// applies no per-call limits (shared-budget behavior, identical to
// ForChunked). The autotuner (internal/tune) turns these as knobs: a kernel
// that benches faster with fewer workers or coarser chunks carries its tuned
// limits through the dispatch table.
type ChunkOpts struct {
	// MaxWorkers caps the total workers (including the caller) used by this
	// call, on top of the shared budget. 0 means no per-call cap.
	MaxWorkers int
	// MinGrain is the minimum chunk size: the range is never split finer
	// than MinGrain iterations per worker. 0 means no minimum.
	MinGrain int
}

// ForChunked splits [0,n) into contiguous [lo,hi) chunks, one per worker.
// Use this form when the body can amortize per-chunk setup (e.g. scratch
// buffers for im2col). The caller always executes the first chunk itself;
// helper goroutines are spawned only for tokens acquired from the shared
// inter/intra-op budget, so nested calls degrade to serial instead of
// oversubscribing.
func ForChunked(n int, body func(lo, hi int)) {
	ForChunkedOpts(n, ChunkOpts{}, body)
}

// ForChunkedOpts is ForChunked with per-call parallelism limits.
func ForChunkedOpts(n int, o ChunkOpts, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := MaxWorkers()
	if o.MaxWorkers > 0 && workers > o.MaxWorkers {
		workers = o.MaxWorkers
	}
	if workers > n {
		workers = n
	}
	if o.MinGrain > 1 {
		if byGrain := n / o.MinGrain; workers > byGrain {
			workers = byGrain
		}
	}
	if workers > 1 {
		workers = 1 + acquireTokens(workers-1)
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	body(0, chunk) // caller is the first worker
	wg.Wait()
	releaseTokens(workers - 1)
}

// ForElems is ForChunked for cheap elementwise loops: ranges shorter than
// the benchmark-derived elemGrain run serially with zero coordination, and
// longer ranges never split finer than elemGrain elements per worker.
func ForElems(n int, body func(lo, hi int)) {
	if n < 2*elemGrain {
		if n > 0 {
			body(0, n)
		}
		return
	}
	workers := n / elemGrain
	if mw := MaxWorkers(); workers > mw {
		workers = mw
	}
	if workers > 1 {
		workers = 1 + acquireTokens(workers-1)
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	body(0, chunk)
	wg.Wait()
	releaseTokens(workers - 1)
}
