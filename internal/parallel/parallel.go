// Package parallel provides the goroutine work-splitting helpers used by the
// TOPI CPU kernels and the planned executor's wavefront scheduler. Kernels
// parallelize over their outermost independent dimension (batch×output-row
// tiles for convolution, rows for dense), which keeps per-goroutine state
// disjoint so no locking is needed.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers caps kernel parallelism; GOMAXPROCS by default. It is read on
// every For/ForChunked call — possibly from concurrently executing kernels —
// while tests and ablations write it, so access is atomic.
var maxWorkers atomic.Int64

func init() { maxWorkers.Store(int64(runtime.GOMAXPROCS(0))) }

// SetMaxWorkers overrides the worker cap (testing and the serial-kernel
// ablation use 1). Returns the previous value. n < 1 is treated as 1.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(maxWorkers.Swap(int64(n)))
}

// MaxWorkers returns the current worker cap.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// For runs body(i) for every i in [0,n), splitting the range into contiguous
// chunks across at most MaxWorkers goroutines. It runs serially when n is
// small or only one worker is allowed, avoiding goroutine overhead on tiny
// kernels.
func For(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	// Serial fast path: skip the chunk-closure wrapper entirely, so a
	// single-worker For is allocation-free (the planned executor's
	// steady-state hot loop runs through here on every kernel).
	if n == 1 || MaxWorkers() <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked splits [0,n) into contiguous [lo,hi) chunks, one per worker.
// Use this form when the body can amortize per-chunk setup (e.g. scratch
// buffers for im2col).
func ForChunked(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := MaxWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
