package tflite

import (
	"testing"

	"repro/internal/relay"
	"repro/internal/runtime"
	"repro/internal/soc"
	"repro/internal/tensor"
)

// buildQuantCNN: a quantized conv/dw-conv stack with relu6, pooling,
// reshape and logistic head — MobileNet-SSD-flavored.
func buildQuantCNN(t *testing.T) []byte {
	t.Helper()
	b := NewBuilder(11)
	in := b.Input("input", []int{1, 16, 16, 3}, &tensor.QuantParams{Scale: 1.0 / 255, ZeroPoint: 0})
	c1 := b.Conv2D(in, 8, 3, 2, PaddingSame, ActRelu6)
	d1 := b.DepthwiseConv2D(c1, 3, 1, PaddingSame, ActRelu6)
	c2 := b.Conv2D(d1, 16, 1, 1, PaddingSame, ActRelu6)
	pool := b.Pool(OpAveragePool2D, c2, 2, 2)
	rs := b.Reshape(pool, []int{1, 4 * 4 * 16})
	fc := b.FullyConnected(rs, 10, ActNone)
	lg := b.Logistic(fc)
	out := b.Dequantize(lg)
	b.Output(out)
	blob, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func buildFloatCNN(t *testing.T) []byte {
	t.Helper()
	b := NewBuilder(12)
	in := b.Input("input", []int{1, 16, 16, 3}, nil)
	c1 := b.Conv2D(in, 8, 3, 2, PaddingSame, ActRelu)
	c2 := b.Conv2D(c1, 16, 3, 1, PaddingSame, ActRelu)
	sm := b.Softmax(b.FullyConnected(b.Reshape(c2, []int{1, 8 * 8 * 16}), 10, ActNone))
	b.Output(sm)
	blob, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestParseRoundTrip(t *testing.T) {
	blob := buildQuantCNN(t)
	m, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Operators) != 8 {
		t.Errorf("op count %d, want 8", len(m.Operators))
	}
	if len(m.Inputs) != 1 || len(m.Outputs) != 1 {
		t.Errorf("io: %v %v", m.Inputs, m.Outputs)
	}
	// Input tensor must carry quant params.
	if m.Tensors[m.Inputs[0]].Quant == nil {
		t.Error("input lost quant params through serialization")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("not a tflite file at all")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Parse(buildQuantCNN(t)[:40]); err == nil {
		t.Error("truncated model accepted")
	}
}

func TestImportQuantizedModel(t *testing.T) {
	mod, err := FromTFLite(buildQuantCNN(t))
	if err != nil {
		t.Fatal(err)
	}
	main := mod.Main()
	if n := relay.CountOps(main, "qnn.conv2d"); n != 3 { // 2 conv + 1 depthwise
		t.Errorf("qnn.conv2d count %d, want 3", n)
	}
	if n := relay.CountOps(main, "qnn.requantize"); n < 3 {
		t.Errorf("requantize count %d, want >= 3", n)
	}
	if n := relay.CountOps(main, "qnn.dense"); n != 1 {
		t.Errorf("qnn.dense count %d", n)
	}
	// Output is dequantized float.
	ret := main.CheckedType().(*relay.FuncType).Ret.(*relay.TensorType)
	if ret.DType != tensor.Float32 {
		t.Errorf("output dtype %s", ret.DType)
	}
}

func TestQuantizedExecutionProducesSaneRange(t *testing.T) {
	mod, err := FromTFLite(buildQuantCNN(t))
	if err != nil {
		t.Fatal(err)
	}
	lib, err := runtime.Build(mod, runtime.BuildOptions{OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	gm := runtime.NewGraphModule(lib)
	in := tensor.New(tensor.UInt8, tensor.Shape{1, 16, 16, 3})
	q := tensor.QuantParams{Scale: 1.0 / 255, ZeroPoint: 0}
	in.Quant = &q
	rng := tensor.NewRNG(5)
	for i := 0; i < in.Elems(); i++ {
		in.U8()[i] = uint8(rng.Intn(256))
	}
	gm.SetInput(gm.InputNames()[0], in)
	if err := gm.Run(); err != nil {
		t.Fatal(err)
	}
	out := gm.MustOutput(0)
	for i := 0; i < out.Elems(); i++ {
		v := out.GetF(i)
		if v < 0 || v > 1 {
			t.Fatalf("logistic output out of [0,1]: %g", v)
		}
	}
}

func TestQuantizedModelRunsThroughBYOC(t *testing.T) {
	// The paper's §3.3 headline: the quantized model goes through the NIR
	// flow and produces the same answer as the TVM path.
	mod, err := FromTFLite(buildQuantCNN(t))
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.UInt8, tensor.Shape{1, 16, 16, 3})
	q := tensor.QuantParams{Scale: 1.0 / 255, ZeroPoint: 0}
	in.Quant = &q
	rng := tensor.NewRNG(7)
	for i := 0; i < in.Elems(); i++ {
		in.U8()[i] = uint8(rng.Intn(256))
	}
	run := func(useNIR bool) *tensor.Tensor {
		lib, err := runtime.Build(mod, runtime.BuildOptions{OptLevel: 3, UseNIR: useNIR})
		if err != nil {
			t.Fatal(err)
		}
		gm := runtime.NewGraphModule(lib)
		gm.SetInput(gm.InputNames()[0], in)
		if err := gm.Run(); err != nil {
			t.Fatal(err)
		}
		return gm.MustOutput(0)
	}
	ref := run(false)
	got := run(true)
	if !tensor.AllClose(got, ref, 1e-5, 1e-5) {
		t.Errorf("BYOC quantized output differs from TVM path, max %g", tensor.MaxAbsDiff(got, ref))
	}
}

func TestQuantizedCloseToFloatTwin(t *testing.T) {
	// Build structurally identical float and quantized models from the same
	// seed and compare outputs — "performance similar to the original flow"
	// (paper §4.2) on the accuracy side.
	build := func(quant bool) *relay.Module {
		b := NewBuilder(33)
		var qp *tensor.QuantParams
		if quant {
			qp = &tensor.QuantParams{Scale: 1.0 / 255, ZeroPoint: 0}
		}
		in := b.Input("input", []int{1, 8, 8, 3}, qp)
		c1 := b.Conv2D(in, 4, 3, 1, PaddingSame, ActRelu6)
		var head int
		if quant {
			head = b.Dequantize(c1)
		} else {
			head = c1
		}
		b.Output(head)
		blob, err := b.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		mod, err := FromTFLite(blob)
		if err != nil {
			t.Fatal(err)
		}
		return mod
	}
	fIn := tensor.New(tensor.Float32, tensor.Shape{1, 8, 8, 3})
	fIn.FillUniform(tensor.NewRNG(3), 0, 1)
	qIn := fIn.QuantizeTo(tensor.UInt8, tensor.QuantParams{Scale: 1.0 / 255, ZeroPoint: 0})

	runOne := func(mod *relay.Module, in *tensor.Tensor) *tensor.Tensor {
		lib, err := runtime.Build(mod, runtime.BuildOptions{OptLevel: 3})
		if err != nil {
			t.Fatal(err)
		}
		gm := runtime.NewGraphModule(lib)
		gm.SetInput(gm.InputNames()[0], in)
		if err := gm.Run(); err != nil {
			t.Fatal(err)
		}
		return gm.MustOutput(0)
	}
	fOut := runOne(build(false), fIn)
	qOut := runOne(build(true), qIn)
	// Same seed → same float weights; quantization error bounded by a few
	// activation steps.
	if !tensor.AllClose(qOut, fOut, 0.15, 0.1) {
		t.Errorf("quantized model diverges from float twin, max %g", tensor.MaxAbsDiff(qOut, fOut))
	}
}

func TestImportFloatModel(t *testing.T) {
	mod, err := FromTFLite(buildFloatCNN(t))
	if err != nil {
		t.Fatal(err)
	}
	if n := relay.CountOps(mod.Main(), "nn.conv2d"); n != 2 {
		t.Errorf("float conv count %d", n)
	}
	if n := relay.CountOps(mod.Main(), "qnn.conv2d"); n != 0 {
		t.Errorf("float model produced qnn ops")
	}
}

func TestQuantizedNeuroPilotOnly(t *testing.T) {
	// The fully supported quantized model must compile NeuroPilot-only on
	// CPU+APU (testing the §3.3 tensor-oriented conversion down to Neuron).
	mod, err := FromTFLite(buildQuantCNN(t))
	if err != nil {
		t.Fatal(err)
	}
	cm, err := runtime.BuildNeuroPilotOnly(mod, nil, []soc.DeviceKind{soc.KindCPU, soc.KindAPU})
	if err != nil {
		t.Fatalf("NeuroPilot-only on quantized model: %v", err)
	}
	for _, od := range cm.Model.Operands {
		if od.Type.DType.IsQuantized() && od.Type.Quant == nil {
			t.Fatalf("operand %s lost quant params in Neuron IR", od.Name)
		}
	}
}

func TestSamePadHelper(t *testing.T) {
	// 16x16, k3 s2: TFLite SAME gives output 8 and pad total 1 (0 top, 1 bottom).
	p := samePad(16, 16, 3, 3, 2, 2)
	if p[0] != 0 || p[2] != 1 {
		t.Errorf("samePad = %v", p)
	}
	// k3 s1: symmetric 1/1.
	p = samePad(16, 16, 3, 3, 1, 1)
	if p[0] != 1 || p[2] != 1 {
		t.Errorf("samePad s1 = %v", p)
	}
}
