package tflite

import (
	"bytes"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Builder is the authoring side of the frontend — the stand-in for the
// TensorFlow Lite converter that produced the paper's quantized MobileNet
// SSD. The model zoo constructs quantized (uint8) and float models through
// it; weights are synthesized deterministically and quantization parameters
// are derived from the synthetic value ranges.
type Builder struct {
	m   Model
	rng *tensor.RNG
	err error
}

// NewBuilder starts a model.
func NewBuilder(seed uint64) *Builder {
	return &Builder{rng: tensor.NewRNG(seed)}
}

// Err returns the first building error.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(format string, args ...interface{}) int {
	if b.err == nil {
		b.err = fmt.Errorf("tflite build: "+format, args...)
	}
	return -1
}

// addTensor appends a tensor table entry.
func (b *Builder) addTensor(name string, dt tensor.DType, shape []int, q *tensor.QuantParams, buf int) int {
	idx := len(b.m.Tensors)
	b.m.Tensors = append(b.m.Tensors, Tensor{
		Name: name, DType: dt, Shape: append([]int(nil), shape...), Quant: q, Buffer: buf,
	})
	return idx
}

// addBuffer appends a constant payload.
func (b *Builder) addBuffer(t *tensor.Tensor) int {
	b.m.Buffers = append(b.m.Buffers, t)
	return len(b.m.Buffers) - 1
}

// Input declares the (single) model input. For quantized models pass the
// input quantization (e.g. scale 1/255, zp 0 for normalized images).
func (b *Builder) Input(name string, shape []int, q *tensor.QuantParams) int {
	dt := tensor.Float32
	if q != nil {
		dt = tensor.UInt8
	}
	idx := b.addTensor(name, dt, shape, q, -1)
	b.m.Inputs = append(b.m.Inputs, idx)
	return idx
}

// Output marks model outputs.
func (b *Builder) Output(tensors ...int) { b.m.Outputs = append(b.m.Outputs, tensors...) }

// TensorShape returns a declared tensor's shape.
func (b *Builder) TensorShape(ti int) []int {
	return append([]int(nil), b.m.Tensors[ti].Shape...)
}

// quantOf returns a tensor's quant params (nil for float tensors).
func (b *Builder) quantOf(ti int) *tensor.QuantParams { return b.m.Tensors[ti].Quant }

// synthWeights creates float weights and, for quantized models, their uint8
// form with symmetric-ish parameters derived from the actual value range.
func (b *Builder) synthWeights(shape tensor.Shape, fanIn, fanOut int, quantized bool) (*tensor.Tensor, *tensor.QuantParams) {
	f := tensor.New(tensor.Float32, shape)
	f.FillGlorot(b.rng, fanIn, fanOut)
	if !quantized {
		return f, nil
	}
	absMax := 0.0
	for i, n := 0, f.Elems(); i < n; i++ {
		if v := math.Abs(f.GetF(i)); v > absMax {
			absMax = v
		}
	}
	if absMax == 0 {
		absMax = 1
	}
	q := tensor.QuantParams{Scale: 2 * absMax / 255, ZeroPoint: 128}
	return f.QuantizeTo(tensor.UInt8, q), &q
}

// actQuant is the fixed activation quantization used by the synthetic
// models: range [-4, 4] over uint8.
func actQuant() *tensor.QuantParams {
	return &tensor.QuantParams{Scale: 8.0 / 255, ZeroPoint: 128}
}

// Conv2D appends a (possibly quantized) convolution with bias and fused
// activation, returning the output tensor index.
func (b *Builder) Conv2D(input, filters, kernel, stride, padding, fusedAct int) int {
	if b.err != nil {
		return -1
	}
	in := b.m.Tensors[input]
	if len(in.Shape) != 4 {
		return b.fail("Conv2D input rank %d", len(in.Shape))
	}
	inC := in.Shape[3]
	quantized := in.Quant != nil
	w, wq := b.synthWeights(tensor.Shape{filters, kernel, kernel, inC}, kernel*kernel*inC, filters, quantized)
	wIdx := b.addTensor(fmt.Sprintf("w%d", len(b.m.Tensors)), w.DType,
		[]int{filters, kernel, kernel, inC}, wq, b.addBuffer(w))

	inputs := []int{input, wIdx}
	if quantized {
		bias := tensor.New(tensor.Int32, tensor.Shape{filters})
		bq := tensor.QuantParams{Scale: in.Quant.Scale * wq.Scale, ZeroPoint: 0}
		bIdx := b.addTensor(fmt.Sprintf("b%d", len(b.m.Tensors)), tensor.Int32,
			[]int{filters}, &bq, b.addBuffer(bias))
		inputs = append(inputs, bIdx)
	} else {
		bias := tensor.New(tensor.Float32, tensor.Shape{filters})
		bIdx := b.addTensor(fmt.Sprintf("b%d", len(b.m.Tensors)), tensor.Float32,
			[]int{filters}, nil, b.addBuffer(bias))
		inputs = append(inputs, bIdx)
	}

	oh, ow := convOut(in.Shape[1], kernel, stride, padding), convOut(in.Shape[2], kernel, stride, padding)
	var oq *tensor.QuantParams
	dt := tensor.Float32
	if quantized {
		oq = actQuant()
		dt = tensor.UInt8
	}
	out := b.addTensor(fmt.Sprintf("conv%d", len(b.m.Tensors)), dt,
		[]int{in.Shape[0], oh, ow, filters}, oq, -1)
	b.m.Operators = append(b.m.Operators, Operator{
		Opcode: OpConv2D, Inputs: inputs, Outputs: []int{out},
		Options: map[string]float64{
			"stride_h": float64(stride), "stride_w": float64(stride),
			"padding": float64(padding), "fused_activation_function": float64(fusedAct),
		},
	})
	return out
}

// DepthwiseConv2D appends a depthwise convolution (1HWC weights).
func (b *Builder) DepthwiseConv2D(input, kernel, stride, padding, fusedAct int) int {
	if b.err != nil {
		return -1
	}
	in := b.m.Tensors[input]
	if len(in.Shape) != 4 {
		return b.fail("DepthwiseConv2D input rank %d", len(in.Shape))
	}
	c := in.Shape[3]
	quantized := in.Quant != nil
	w, wq := b.synthWeights(tensor.Shape{1, kernel, kernel, c}, kernel*kernel, 1, quantized)
	wIdx := b.addTensor(fmt.Sprintf("dw%d", len(b.m.Tensors)), w.DType,
		[]int{1, kernel, kernel, c}, wq, b.addBuffer(w))
	inputs := []int{input, wIdx}
	if quantized {
		bias := tensor.New(tensor.Int32, tensor.Shape{c})
		bq := tensor.QuantParams{Scale: in.Quant.Scale * wq.Scale, ZeroPoint: 0}
		inputs = append(inputs, b.addTensor(fmt.Sprintf("b%d", len(b.m.Tensors)),
			tensor.Int32, []int{c}, &bq, b.addBuffer(bias)))
	} else {
		bias := tensor.New(tensor.Float32, tensor.Shape{c})
		inputs = append(inputs, b.addTensor(fmt.Sprintf("b%d", len(b.m.Tensors)),
			tensor.Float32, []int{c}, nil, b.addBuffer(bias)))
	}
	oh, ow := convOut(in.Shape[1], kernel, stride, padding), convOut(in.Shape[2], kernel, stride, padding)
	var oq *tensor.QuantParams
	dt := tensor.Float32
	if quantized {
		oq = actQuant()
		dt = tensor.UInt8
	}
	out := b.addTensor(fmt.Sprintf("dwout%d", len(b.m.Tensors)), dt,
		[]int{in.Shape[0], oh, ow, c}, oq, -1)
	b.m.Operators = append(b.m.Operators, Operator{
		Opcode: OpDepthwiseConv2D, Inputs: inputs, Outputs: []int{out},
		Options: map[string]float64{
			"stride_h": float64(stride), "stride_w": float64(stride),
			"padding": float64(padding), "fused_activation_function": float64(fusedAct),
			"depth_multiplier": 1,
		},
	})
	return out
}

func convOut(in, k, s, padding int) int {
	if padding == PaddingSame {
		return (in + s - 1) / s
	}
	return (in-k)/s + 1
}

// Pool appends a max/average pool with VALID padding.
func (b *Builder) Pool(opcode, input, filter, stride int) int {
	return b.PoolPadded(opcode, input, filter, stride, PaddingValid)
}

// PoolPadded appends a pool with an explicit padding scheme (inception-style
// stride-1 SAME average pools keep spatial dims).
func (b *Builder) PoolPadded(opcode, input, filter, stride, padding int) int {
	if b.err != nil {
		return -1
	}
	in := b.m.Tensors[input]
	oh := convOut(in.Shape[1], filter, stride, padding)
	ow := convOut(in.Shape[2], filter, stride, padding)
	out := b.addTensor(fmt.Sprintf("pool%d", len(b.m.Tensors)), in.DType,
		[]int{in.Shape[0], oh, ow, in.Shape[3]}, in.Quant, -1)
	b.m.Operators = append(b.m.Operators, Operator{
		Opcode: opcode, Inputs: []int{input}, Outputs: []int{out},
		Options: map[string]float64{
			"filter_height": float64(filter), "filter_width": float64(filter),
			"stride_h": float64(stride), "stride_w": float64(stride),
			"padding": float64(padding),
		},
	})
	return out
}

// Reshape appends a reshape.
func (b *Builder) Reshape(input int, newShape []int) int {
	if b.err != nil {
		return -1
	}
	in := b.m.Tensors[input]
	out := b.addTensor(fmt.Sprintf("reshape%d", len(b.m.Tensors)), in.DType, newShape, in.Quant, -1)
	b.m.Operators = append(b.m.Operators, Operator{
		Opcode: OpReshape, Inputs: []int{input}, Outputs: []int{out},
		IntListOptions: map[string][]int{"new_shape": append([]int(nil), newShape...)},
	})
	return out
}

// Concat appends a concatenation along axis.
func (b *Builder) Concat(axis int, inputs ...int) int {
	if b.err != nil {
		return -1
	}
	first := b.m.Tensors[inputs[0]]
	shape := append([]int(nil), first.Shape...)
	if axis < 0 {
		axis += len(shape)
	}
	shape[axis] = 0
	for _, ti := range inputs {
		shape[axis] += b.m.Tensors[ti].Shape[axis]
	}
	q := first.Quant
	out := b.addTensor(fmt.Sprintf("concat%d", len(b.m.Tensors)), first.DType, shape, q, -1)
	b.m.Operators = append(b.m.Operators, Operator{
		Opcode: OpConcatenation, Inputs: append([]int(nil), inputs...), Outputs: []int{out},
		Options: map[string]float64{"axis": float64(axis)},
	})
	return out
}

// Add appends an elementwise add.
func (b *Builder) Add(lhs, rhs int) int {
	if b.err != nil {
		return -1
	}
	in := b.m.Tensors[lhs]
	out := b.addTensor(fmt.Sprintf("add%d", len(b.m.Tensors)), in.DType, in.Shape, in.Quant, -1)
	b.m.Operators = append(b.m.Operators, Operator{
		Opcode: OpAdd, Inputs: []int{lhs, rhs}, Outputs: []int{out},
		Options: map[string]float64{"fused_activation_function": ActNone},
	})
	return out
}

// Logistic appends a sigmoid. Quantized outputs use TFLite's canonical
// LOGISTIC output params (scale 1/256, zp 0).
func (b *Builder) Logistic(input int) int {
	if b.err != nil {
		return -1
	}
	in := b.m.Tensors[input]
	var q *tensor.QuantParams
	if in.Quant != nil {
		q = &tensor.QuantParams{Scale: 1.0 / 256, ZeroPoint: 0}
	}
	out := b.addTensor(fmt.Sprintf("logistic%d", len(b.m.Tensors)), in.DType, in.Shape, q, -1)
	b.m.Operators = append(b.m.Operators, Operator{
		Opcode: OpLogistic, Inputs: []int{input}, Outputs: []int{out},
	})
	return out
}

// Softmax appends a softmax (same canonical quant output as LOGISTIC).
func (b *Builder) Softmax(input int) int {
	if b.err != nil {
		return -1
	}
	in := b.m.Tensors[input]
	var q *tensor.QuantParams
	if in.Quant != nil {
		q = &tensor.QuantParams{Scale: 1.0 / 256, ZeroPoint: 0}
	}
	out := b.addTensor(fmt.Sprintf("softmax%d", len(b.m.Tensors)), in.DType, in.Shape, q, -1)
	b.m.Operators = append(b.m.Operators, Operator{
		Opcode: OpSoftmax, Inputs: []int{input}, Outputs: []int{out},
		Options: map[string]float64{"beta": 1},
	})
	return out
}

// MeanSpatial appends MEAN over the H,W axes.
func (b *Builder) MeanSpatial(input int) int {
	if b.err != nil {
		return -1
	}
	in := b.m.Tensors[input]
	out := b.addTensor(fmt.Sprintf("mean%d", len(b.m.Tensors)), in.DType,
		[]int{in.Shape[0], in.Shape[3]}, in.Quant, -1)
	b.m.Operators = append(b.m.Operators, Operator{
		Opcode: OpMean, Inputs: []int{input}, Outputs: []int{out},
		IntListOptions: map[string][]int{"axis": {1, 2}},
	})
	return out
}

// FullyConnected appends a (possibly quantized) dense layer.
func (b *Builder) FullyConnected(input, units, fusedAct int) int {
	if b.err != nil {
		return -1
	}
	in := b.m.Tensors[input]
	k := 1
	for _, d := range in.Shape[1:] {
		k *= d
	}
	quantized := in.Quant != nil
	w, wq := b.synthWeights(tensor.Shape{units, k}, k, units, quantized)
	wIdx := b.addTensor(fmt.Sprintf("fcw%d", len(b.m.Tensors)), w.DType, []int{units, k}, wq, b.addBuffer(w))
	inputs := []int{input, wIdx}
	if quantized {
		bias := tensor.New(tensor.Int32, tensor.Shape{units})
		bq := tensor.QuantParams{Scale: in.Quant.Scale * wq.Scale, ZeroPoint: 0}
		inputs = append(inputs, b.addTensor(fmt.Sprintf("fcb%d", len(b.m.Tensors)),
			tensor.Int32, []int{units}, &bq, b.addBuffer(bias)))
	} else {
		bias := tensor.New(tensor.Float32, tensor.Shape{units})
		inputs = append(inputs, b.addTensor(fmt.Sprintf("fcb%d", len(b.m.Tensors)),
			tensor.Float32, []int{units}, nil, b.addBuffer(bias)))
	}
	var oq *tensor.QuantParams
	dt := tensor.Float32
	if quantized {
		oq = actQuant()
		dt = tensor.UInt8
	}
	out := b.addTensor(fmt.Sprintf("fc%d", len(b.m.Tensors)), dt, []int{in.Shape[0], units}, oq, -1)
	b.m.Operators = append(b.m.Operators, Operator{
		Opcode: OpFullyConnected, Inputs: inputs, Outputs: []int{out},
		Options: map[string]float64{"fused_activation_function": float64(fusedAct)},
	})
	return out
}

// Dequantize appends an explicit dequantize (quantized output heads).
func (b *Builder) Dequantize(input int) int {
	if b.err != nil {
		return -1
	}
	in := b.m.Tensors[input]
	out := b.addTensor(fmt.Sprintf("deq%d", len(b.m.Tensors)), tensor.Float32, in.Shape, nil, -1)
	b.m.Operators = append(b.m.Operators, Operator{
		Opcode: OpDequantize, Inputs: []int{input}, Outputs: []int{out},
	})
	return out
}

// Finish validates and returns the model.
func (b *Builder) Finish() (*Model, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.m.Inputs) == 0 || len(b.m.Outputs) == 0 {
		return nil, fmt.Errorf("tflite build: model needs inputs and outputs")
	}
	return &b.m, nil
}

// Bytes serializes the finished model.
func (b *Builder) Bytes() ([]byte, error) {
	m, err := b.Finish()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := m.Serialize(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
