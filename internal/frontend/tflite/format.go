// Package tflite implements the TFLite frontend: the paper's quantized
// MobileNet-SSD object-detection model ships as a .tflite file, and this
// package parses a binary model format with the same information content —
// buffer table, tensor table with per-tensor quantization parameters, and an
// operator list using TFLite's BuiltinOperator codes — then lowers it to
// relay QNN form (qnn.conv2d → bias_add → qnn.requantize chains), exercising
// the paper's §3.3 QNN flow.
//
// The container encoding is a custom little-endian layout rather than
// FlatBuffers (see DESIGN.md §2); tensor layouts and operator semantics
// follow TFLite: activations NHWC, conv weights OHWI, depthwise weights
// 1HWC, uint8 asymmetric quantization with int32 biases.
package tflite

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/tensor"
)

// BuiltinOperator codes (the subset used), numerically equal to TFLite's.
const (
	OpAdd             = 0
	OpAveragePool2D   = 1
	OpConcatenation   = 2
	OpConv2D          = 3
	OpDepthwiseConv2D = 4
	OpDequantize      = 6
	OpFullyConnected  = 9
	OpLogistic        = 14
	OpMaxPool2D       = 17
	OpPad             = 34
	OpMean            = 40
	OpRelu            = 19
	OpRelu6           = 21
	OpReshape         = 22
	OpSoftmax         = 25
	OpQuantize        = 114
	OpResizeNearest   = 97
)

// Padding schemes.
const (
	PaddingSame  = 0
	PaddingValid = 1
)

// Fused activations.
const (
	ActNone  = 0
	ActRelu  = 1
	ActRelu6 = 3
)

// Tensor is one entry of the model's tensor table.
type Tensor struct {
	Name   string
	DType  tensor.DType
	Shape  []int
	Quant  *tensor.QuantParams
	Buffer int // index into Buffers, -1 for runtime tensors
}

// Operator applies one builtin op.
type Operator struct {
	Opcode  int
	Inputs  []int
	Outputs []int
	// Options holds the builtin options as key → float64 (TFLite's typed
	// option tables, flattened).
	Options map[string]float64
	// IntListOptions holds list-typed options (new_shape, axes, paddings).
	IntListOptions map[string][]int
}

func (op Operator) opt(key string, def float64) float64 {
	if v, ok := op.Options[key]; ok {
		return v
	}
	return def
}

func (op Operator) optInt(key string, def int) int { return int(op.opt(key, float64(def))) }

// Model is the parsed .tflite stand-in.
type Model struct {
	Buffers   []*tensor.Tensor // weight/bias payloads
	Tensors   []Tensor
	Operators []Operator
	Inputs    []int
	Outputs   []int
}

var tflMagic = []byte("TFLM1\x00")

// Serialize writes the model in the binary container format.
func (m *Model) Serialize(w io.Writer) error {
	if _, err := w.Write(tflMagic); err != nil {
		return err
	}
	le := binary.LittleEndian
	wu32 := func(v uint32) error { return binary.Write(w, le, v) }
	wi32 := func(v int32) error { return binary.Write(w, le, v) }
	wstr := func(s string) error {
		if err := wu32(uint32(len(s))); err != nil {
			return err
		}
		_, err := io.WriteString(w, s)
		return err
	}
	if err := wu32(uint32(len(m.Buffers))); err != nil {
		return err
	}
	for _, b := range m.Buffers {
		if err := b.Serialize(w); err != nil {
			return err
		}
	}
	if err := wu32(uint32(len(m.Tensors))); err != nil {
		return err
	}
	for _, t := range m.Tensors {
		if err := wstr(t.Name); err != nil {
			return err
		}
		flags := byte(0)
		if t.Quant != nil {
			flags = 1
		}
		if _, err := w.Write([]byte{byte(t.DType), flags}); err != nil {
			return err
		}
		if t.Quant != nil {
			if err := binary.Write(w, le, t.Quant.Scale); err != nil {
				return err
			}
			if err := wi32(t.Quant.ZeroPoint); err != nil {
				return err
			}
		}
		if err := wu32(uint32(len(t.Shape))); err != nil {
			return err
		}
		for _, d := range t.Shape {
			if err := wi32(int32(d)); err != nil {
				return err
			}
		}
		if err := wi32(int32(t.Buffer)); err != nil {
			return err
		}
	}
	if err := wu32(uint32(len(m.Operators))); err != nil {
		return err
	}
	for _, op := range m.Operators {
		if err := wu32(uint32(op.Opcode)); err != nil {
			return err
		}
		if err := writeIntList(w, op.Inputs); err != nil {
			return err
		}
		if err := writeIntList(w, op.Outputs); err != nil {
			return err
		}
		if err := wu32(uint32(len(op.Options))); err != nil {
			return err
		}
		for _, k := range sortedOptionKeys(op.Options) {
			if err := wstr(k); err != nil {
				return err
			}
			if err := binary.Write(w, le, op.Options[k]); err != nil {
				return err
			}
		}
		if err := wu32(uint32(len(op.IntListOptions))); err != nil {
			return err
		}
		for _, k := range sortedListKeys(op.IntListOptions) {
			if err := wstr(k); err != nil {
				return err
			}
			if err := writeIntList(w, op.IntListOptions[k]); err != nil {
				return err
			}
		}
	}
	if err := writeIntList(w, m.Inputs); err != nil {
		return err
	}
	return writeIntList(w, m.Outputs)
}

// Parse reads a serialized model.
func Parse(data []byte) (*Model, error) {
	r := bytes.NewReader(data)
	magic := make([]byte, len(tflMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("tflite: truncated model: %w", err)
	}
	if !bytes.Equal(magic, tflMagic) {
		return nil, fmt.Errorf("tflite: not a model file (bad magic)")
	}
	le := binary.LittleEndian
	ru32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(r, le, &v)
		return v, err
	}
	ri32 := func() (int32, error) {
		var v int32
		err := binary.Read(r, le, &v)
		return v, err
	}
	rstr := func() (string, error) {
		n, err := ru32()
		if err != nil {
			return "", err
		}
		if n > 4096 {
			return "", fmt.Errorf("tflite: corrupt string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	m := &Model{}
	nBuf, err := ru32()
	if err != nil {
		return nil, err
	}
	if nBuf > 1<<20 {
		return nil, fmt.Errorf("tflite: corrupt buffer count %d", nBuf)
	}
	for i := uint32(0); i < nBuf; i++ {
		t, err := tensor.ReadFrom(r)
		if err != nil {
			return nil, fmt.Errorf("tflite: buffer %d: %w", i, err)
		}
		m.Buffers = append(m.Buffers, t)
	}
	nT, err := ru32()
	if err != nil {
		return nil, err
	}
	if nT > 1<<20 {
		return nil, fmt.Errorf("tflite: corrupt tensor count %d", nT)
	}
	for i := uint32(0); i < nT; i++ {
		var t Tensor
		if t.Name, err = rstr(); err != nil {
			return nil, err
		}
		hdr := make([]byte, 2)
		if _, err := io.ReadFull(r, hdr); err != nil {
			return nil, err
		}
		t.DType = tensor.DType(hdr[0])
		if hdr[1] == 1 {
			var q tensor.QuantParams
			if err := binary.Read(r, le, &q.Scale); err != nil {
				return nil, err
			}
			zp, err := ri32()
			if err != nil {
				return nil, err
			}
			q.ZeroPoint = zp
			t.Quant = &q
		}
		rank, err := ru32()
		if err != nil {
			return nil, err
		}
		if rank > 16 {
			return nil, fmt.Errorf("tflite: corrupt rank %d", rank)
		}
		t.Shape = make([]int, rank)
		for j := range t.Shape {
			d, err := ri32()
			if err != nil {
				return nil, err
			}
			t.Shape[j] = int(d)
		}
		buf, err := ri32()
		if err != nil {
			return nil, err
		}
		t.Buffer = int(buf)
		m.Tensors = append(m.Tensors, t)
	}
	nOps, err := ru32()
	if err != nil {
		return nil, err
	}
	if nOps > 1<<20 {
		return nil, fmt.Errorf("tflite: corrupt op count %d", nOps)
	}
	for i := uint32(0); i < nOps; i++ {
		var op Operator
		code, err := ru32()
		if err != nil {
			return nil, err
		}
		op.Opcode = int(code)
		if op.Inputs, err = readIntList(r); err != nil {
			return nil, err
		}
		if op.Outputs, err = readIntList(r); err != nil {
			return nil, err
		}
		nOpt, err := ru32()
		if err != nil {
			return nil, err
		}
		if nOpt > 0 {
			op.Options = map[string]float64{}
		}
		for j := uint32(0); j < nOpt; j++ {
			k, err := rstr()
			if err != nil {
				return nil, err
			}
			var v float64
			if err := binary.Read(r, le, &v); err != nil {
				return nil, err
			}
			op.Options[k] = v
		}
		nList, err := ru32()
		if err != nil {
			return nil, err
		}
		if nList > 0 {
			op.IntListOptions = map[string][]int{}
		}
		for j := uint32(0); j < nList; j++ {
			k, err := rstr()
			if err != nil {
				return nil, err
			}
			l, err := readIntList(r)
			if err != nil {
				return nil, err
			}
			op.IntListOptions[k] = l
		}
		m.Operators = append(m.Operators, op)
	}
	if m.Inputs, err = readIntList(r); err != nil {
		return nil, err
	}
	if m.Outputs, err = readIntList(r); err != nil {
		return nil, err
	}
	return m, nil
}

func writeIntList(w io.Writer, l []int) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(l))); err != nil {
		return err
	}
	for _, v := range l {
		if err := binary.Write(w, binary.LittleEndian, int32(v)); err != nil {
			return err
		}
	}
	return nil
}

func readIntList(r io.Reader) ([]int, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("tflite: corrupt list length %d", n)
	}
	out := make([]int, n)
	for i := range out {
		var v int32
		if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
			return nil, err
		}
		out[i] = int(v)
	}
	return out, nil
}

func sortedOptionKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	insertionSort(keys)
	return keys
}

func sortedListKeys(m map[string][]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	insertionSort(keys)
	return keys
}

func insertionSort(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
