package tflite

import (
	"fmt"

	"repro/internal/relay"
	"repro/internal/tensor"
	"repro/internal/verify"
)

// FromTFLite lowers a parsed model to relay. Quantized operators become
// relay QNN chains (qnn.conv2d → nn.bias_add → qnn.requantize [+ clip for
// fused RELU/RELU6]); float operators map directly. TFLite and this stack
// share the NHWC/OHWI layouts, so no layout conversion is required — only
// the depthwise 1HWC→CHW1 weight permutation.
func FromTFLite(data []byte) (*relay.Module, error) {
	m, err := Parse(data)
	if err != nil {
		return nil, err
	}
	return Lower(m)
}

// Lower converts an in-memory model to relay (exported separately so tests
// and tools can inspect the parsed form).
func Lower(m *Model) (*relay.Module, error) {
	imp := &importer{m: m, values: make([]relay.Expr, len(m.Tensors))}
	var vars []*relay.Var
	for _, ti := range m.Inputs {
		t := m.Tensors[ti]
		tt := &relay.TensorType{Shape: append(tensor.Shape(nil), t.Shape...), DType: t.DType}
		if t.Quant != nil {
			q := *t.Quant
			tt.Quant = &q
		}
		v := relay.NewVar(t.Name, tt)
		imp.values[ti] = v
		vars = append(vars, v)
	}
	for i, op := range m.Operators {
		if err := imp.convert(op); err != nil {
			return nil, fmt.Errorf("tflite: operator %d (opcode %d): %w", i, op.Opcode, err)
		}
	}
	var body relay.Expr
	switch len(m.Outputs) {
	case 0:
		return nil, fmt.Errorf("tflite: model has no outputs")
	case 1:
		body = imp.values[m.Outputs[0]]
	default:
		fields := make([]relay.Expr, len(m.Outputs))
		for i, o := range m.Outputs {
			if imp.values[o] == nil {
				return nil, fmt.Errorf("tflite: output tensor %d never produced", o)
			}
			fields[i] = imp.values[o]
		}
		body = relay.NewTuple(fields)
	}
	if body == nil {
		return nil, fmt.Errorf("tflite: output tensor never produced")
	}
	mod := relay.NewModule(relay.NewFunc(vars, body))
	if err := relay.InferModule(mod); err != nil {
		return nil, fmt.Errorf("tflite: imported module ill-typed: %w", err)
	}
	if err := verify.ModuleErr(mod, verify.Options{}); err != nil {
		return nil, fmt.Errorf("tflite: imported module failed IR verification: %w", err)
	}
	return mod, nil
}

type importer struct {
	m      *Model
	values []relay.Expr
}

// value materializes tensor ti as a relay expression (constant buffers are
// wrapped on demand).
func (imp *importer) value(ti int) (relay.Expr, error) {
	if ti < 0 || ti >= len(imp.values) {
		return nil, fmt.Errorf("tensor index %d out of range", ti)
	}
	if imp.values[ti] != nil {
		return imp.values[ti], nil
	}
	t := imp.m.Tensors[ti]
	if t.Buffer < 0 || t.Buffer >= len(imp.m.Buffers) {
		return nil, fmt.Errorf("tensor %q (%d) is neither produced nor constant", t.Name, ti)
	}
	val := imp.m.Buffers[t.Buffer]
	if t.Quant != nil {
		val = val.Clone()
		q := *t.Quant
		val.Quant = &q
	}
	c := relay.Const(val)
	imp.values[ti] = c
	return c, nil
}

func (imp *importer) tensorInfo(ti int) Tensor { return imp.m.Tensors[ti] }

func (imp *importer) set(ti int, e relay.Expr) error {
	if _, err := relay.InferTypes(e); err != nil {
		return err
	}
	imp.values[ti] = e
	return nil
}

// samePad computes TFLite SAME padding: [top, left, bottom, right].
func samePad(inH, inW, kh, kw, sh, sw int) []int {
	pad := func(in, k, s int) (int, int) {
		var total int
		if in%s == 0 {
			total = k - s
		} else {
			total = k - in%s
		}
		if total < 0 {
			total = 0
		}
		return total / 2, total - total/2
	}
	t, b := pad(inH, kh, sh)
	l, r := pad(inW, kw, sw)
	return []int{t, l, b, r}
}

func (imp *importer) fusedActivation(e relay.Expr, act int) (relay.Expr, error) {
	switch act {
	case ActNone:
		return e, nil
	case ActRelu:
		return relay.NewCall(relay.OpReLU, []relay.Expr{e}, nil), nil
	case ActRelu6:
		return relay.NewCall(relay.OpClip, []relay.Expr{e}, relay.Attrs{"a_min": 0.0, "a_max": 6.0}), nil
	}
	return nil, fmt.Errorf("fused activation %d unsupported", act)
}

func (imp *importer) convert(op Operator) error {
	switch op.Opcode {
	case OpConv2D, OpDepthwiseConv2D:
		return imp.convertConv(op)
	case OpFullyConnected:
		return imp.convertFC(op)
	case OpMaxPool2D, OpAveragePool2D:
		return imp.convertPool(op)
	case OpRelu:
		return imp.unary(op, relay.OpReLU, nil)
	case OpRelu6:
		return imp.unary(op, relay.OpClip, relay.Attrs{"a_min": 0.0, "a_max": 6.0})
	case OpLogistic:
		return imp.convertViaFloat(op, relay.OpSigmoid, nil)
	case OpSoftmax:
		return imp.convertViaFloat(op, relay.OpSoftmax, nil)
	case OpReshape:
		return imp.convertReshape(op)
	case OpConcatenation:
		return imp.convertConcat(op)
	case OpAdd:
		return imp.convertAdd(op)
	case OpQuantize:
		return imp.convertQuantize(op)
	case OpDequantize:
		return imp.convertDequantize(op)
	case OpPad:
		return imp.convertPad(op)
	case OpMean:
		return imp.convertMean(op)
	case OpResizeNearest:
		return imp.convertResize(op)
	}
	return fmt.Errorf("builtin operator %d not supported by the importer", op.Opcode)
}

func (imp *importer) unary(op Operator, ro *relay.Op, attrs relay.Attrs) error {
	x, err := imp.value(op.Inputs[0])
	if err != nil {
		return err
	}
	return imp.set(op.Outputs[0], relay.NewCall(ro, []relay.Expr{x}, attrs))
}

// convertViaFloat lowers transcendental ops on quantized tensors through a
// dequantize → op → quantize sandwich (TVM's QNN legalization for LOGISTIC /
// SOFTMAX); float tensors map directly.
func (imp *importer) convertViaFloat(op Operator, ro *relay.Op, attrs relay.Attrs) error {
	x, err := imp.value(op.Inputs[0])
	if err != nil {
		return err
	}
	inT := imp.tensorInfo(op.Inputs[0])
	outT := imp.tensorInfo(op.Outputs[0])
	if inT.Quant == nil {
		return imp.set(op.Outputs[0], relay.NewCall(ro, []relay.Expr{x}, attrs))
	}
	deq := relay.NewCall(relay.OpQnnDequantize, []relay.Expr{x}, relay.Attrs{
		"input_scale": inT.Quant.Scale, "input_zero_point": int(inT.Quant.ZeroPoint)})
	f := relay.NewCall(ro, []relay.Expr{deq}, attrs)
	if outT.Quant == nil {
		return imp.set(op.Outputs[0], f)
	}
	q := relay.NewCall(relay.OpQnnQuantize, []relay.Expr{f}, relay.Attrs{
		"output_scale": outT.Quant.Scale, "output_zero_point": int(outT.Quant.ZeroPoint),
		"out_dtype": outT.DType.String()})
	return imp.set(op.Outputs[0], q)
}

// permute1HWCtoCHW1 converts TFLite depthwise weights to the stack's layout.
func permute1HWCtoCHW1(w *tensor.Tensor) *tensor.Tensor {
	kh, kw, c := w.Shape[1], w.Shape[2], w.Shape[3]
	out := tensor.New(w.DType, tensor.Shape{c, kh, kw, 1})
	if w.Quant != nil {
		q := *w.Quant
		out.Quant = &q
	}
	for y := 0; y < kh; y++ {
		for x := 0; x < kw; x++ {
			for ch := 0; ch < c; ch++ {
				src := (y*kw+x)*c + ch
				dst := (ch*kh+y)*kw + x
				switch w.DType {
				case tensor.Float32:
					out.F32()[dst] = w.F32()[src]
				default:
					v := w.GetRaw(src)
					switch w.DType {
					case tensor.UInt8:
						out.U8()[dst] = uint8(v)
					case tensor.Int8:
						out.I8()[dst] = int8(v)
					}
				}
			}
		}
	}
	return out
}

func (imp *importer) convertConv(op Operator) error {
	if len(op.Inputs) < 2 {
		return fmt.Errorf("conv expects data, weight[, bias]")
	}
	x, err := imp.value(op.Inputs[0])
	if err != nil {
		return err
	}
	dataT := imp.tensorInfo(op.Inputs[0])
	weightT := imp.tensorInfo(op.Inputs[1])
	if weightT.Buffer < 0 {
		return fmt.Errorf("conv weight must be constant")
	}
	wTensor := imp.m.Buffers[weightT.Buffer]
	if weightT.Quant != nil {
		wTensor = wTensor.Clone()
		q := *weightT.Quant
		wTensor.Quant = &q
	}
	groups := 1
	if op.Opcode == OpDepthwiseConv2D {
		if op.optInt("depth_multiplier", 1) != 1 {
			return fmt.Errorf("depth_multiplier != 1 unsupported")
		}
		wTensor = permute1HWCtoCHW1(wTensor)
		groups = wTensor.Shape[0]
	}
	kh, kw := wTensor.Shape[1], wTensor.Shape[2]
	sh := op.optInt("stride_h", 1)
	sw := op.optInt("stride_w", 1)
	var pad []int
	if op.optInt("padding", PaddingSame) == PaddingSame {
		pad = samePad(dataT.Shape[1], dataT.Shape[2], kh, kw, sh, sw)
	} else {
		pad = []int{0, 0}
	}
	attrs := relay.Attrs{"strides": []int{sh, sw}, "padding": pad, "groups": groups}

	quantized := dataT.Quant != nil && weightT.Quant != nil
	var conv relay.Expr
	if quantized {
		attrs["input_scale"] = dataT.Quant.Scale
		attrs["input_zero_point"] = int(dataT.Quant.ZeroPoint)
		attrs["kernel_scale"] = weightT.Quant.Scale
		attrs["kernel_zero_point"] = int(weightT.Quant.ZeroPoint)
		conv = relay.NewCall(relay.OpQnnConv2D, []relay.Expr{x, relay.Const(wTensor)}, attrs)
	} else {
		conv = relay.NewCall(relay.OpConv2D, []relay.Expr{x, relay.Const(wTensor)}, attrs)
	}
	out := conv
	if len(op.Inputs) >= 3 && op.Inputs[2] >= 0 {
		bias, err := imp.value(op.Inputs[2])
		if err != nil {
			return err
		}
		out = relay.NewCall(relay.OpBiasAdd, []relay.Expr{out, bias}, nil)
	}
	outT := imp.tensorInfo(op.Outputs[0])
	if quantized {
		if outT.Quant == nil {
			return fmt.Errorf("quantized conv output tensor %q has no quant params", outT.Name)
		}
		out = relay.NewCall(relay.OpQnnRequantize, []relay.Expr{out}, relay.Attrs{
			"input_scale":       dataT.Quant.Scale * weightT.Quant.Scale,
			"input_zero_point":  0,
			"output_scale":      outT.Quant.Scale,
			"output_zero_point": int(outT.Quant.ZeroPoint),
			"out_dtype":         outT.DType.String(),
		})
	}
	act, err := imp.fusedActivation(out, op.optInt("fused_activation_function", ActNone))
	if err != nil {
		return err
	}
	return imp.set(op.Outputs[0], act)
}

func (imp *importer) convertFC(op Operator) error {
	x, err := imp.value(op.Inputs[0])
	if err != nil {
		return err
	}
	dataT := imp.tensorInfo(op.Inputs[0])
	weightT := imp.tensorInfo(op.Inputs[1])
	if len(dataT.Shape) != 2 {
		// TFLite implicitly flattens.
		x = relay.NewCall(relay.OpBatchFlatten, []relay.Expr{x}, nil)
	}
	w, err := imp.value(op.Inputs[1])
	if err != nil {
		return err
	}
	quantized := dataT.Quant != nil && weightT.Quant != nil
	var fc relay.Expr
	if quantized {
		fc = relay.NewCall(relay.OpQnnDense, []relay.Expr{x, w}, relay.Attrs{
			"input_scale": dataT.Quant.Scale, "input_zero_point": int(dataT.Quant.ZeroPoint),
			"kernel_scale": weightT.Quant.Scale, "kernel_zero_point": int(weightT.Quant.ZeroPoint),
		})
	} else {
		fc = relay.NewCall(relay.OpDense, []relay.Expr{x, w}, nil)
	}
	out := fc
	if len(op.Inputs) >= 3 && op.Inputs[2] >= 0 {
		bias, err := imp.value(op.Inputs[2])
		if err != nil {
			return err
		}
		out = relay.NewCall(relay.OpBiasAdd, []relay.Expr{out, bias}, nil)
	}
	outT := imp.tensorInfo(op.Outputs[0])
	if quantized {
		if outT.Quant == nil {
			return fmt.Errorf("quantized FC output %q has no quant params", outT.Name)
		}
		out = relay.NewCall(relay.OpQnnRequantize, []relay.Expr{out}, relay.Attrs{
			"input_scale":       dataT.Quant.Scale * weightT.Quant.Scale,
			"input_zero_point":  0,
			"output_scale":      outT.Quant.Scale,
			"output_zero_point": int(outT.Quant.ZeroPoint),
			"out_dtype":         outT.DType.String(),
		})
	}
	act, err := imp.fusedActivation(out, op.optInt("fused_activation_function", ActNone))
	if err != nil {
		return err
	}
	return imp.set(op.Outputs[0], act)
}

func (imp *importer) convertPool(op Operator) error {
	x, err := imp.value(op.Inputs[0])
	if err != nil {
		return err
	}
	dataT := imp.tensorInfo(op.Inputs[0])
	kh := op.optInt("filter_height", 2)
	kw := op.optInt("filter_width", 2)
	sh := op.optInt("stride_h", 2)
	sw := op.optInt("stride_w", 2)
	var pad []int
	if op.optInt("padding", PaddingValid) == PaddingSame {
		pad = samePad(dataT.Shape[1], dataT.Shape[2], kh, kw, sh, sw)
	} else {
		pad = []int{0, 0}
	}
	ro := relay.OpMaxPool2D
	if op.Opcode == OpAveragePool2D {
		ro = relay.OpAvgPool2D
	}
	return imp.set(op.Outputs[0], relay.NewCall(ro, []relay.Expr{x}, relay.Attrs{
		"pool_size": []int{kh, kw}, "strides": []int{sh, sw}, "padding": pad}))
}

func (imp *importer) convertReshape(op Operator) error {
	x, err := imp.value(op.Inputs[0])
	if err != nil {
		return err
	}
	shape := op.IntListOptions["new_shape"]
	if shape == nil {
		return fmt.Errorf("reshape without new_shape")
	}
	return imp.set(op.Outputs[0], relay.NewCall(relay.OpReshape, []relay.Expr{x},
		relay.Attrs{"newshape": append([]int(nil), shape...)}))
}

func (imp *importer) convertConcat(op Operator) error {
	fields := make([]relay.Expr, len(op.Inputs))
	quantized := false
	for i, ti := range op.Inputs {
		e, err := imp.value(ti)
		if err != nil {
			return err
		}
		fields[i] = e
		if imp.tensorInfo(ti).Quant != nil {
			quantized = true
		}
	}
	axis := op.optInt("axis", -1)
	outT := imp.tensorInfo(op.Outputs[0])
	if quantized {
		if outT.Quant == nil {
			return fmt.Errorf("quantized concat output %q has no quant params", outT.Name)
		}
		return imp.set(op.Outputs[0], relay.NewCall(relay.OpQnnConcatenate,
			[]relay.Expr{relay.NewTuple(fields)}, relay.Attrs{
				"axis":              axis,
				"output_scale":      outT.Quant.Scale,
				"output_zero_point": int(outT.Quant.ZeroPoint),
			}))
	}
	return imp.set(op.Outputs[0], relay.NewCall(relay.OpConcatenate,
		[]relay.Expr{relay.NewTuple(fields)}, relay.Attrs{"axis": axis}))
}

func (imp *importer) convertAdd(op Operator) error {
	a, err := imp.value(op.Inputs[0])
	if err != nil {
		return err
	}
	b, err := imp.value(op.Inputs[1])
	if err != nil {
		return err
	}
	aT := imp.tensorInfo(op.Inputs[0])
	bT := imp.tensorInfo(op.Inputs[1])
	outT := imp.tensorInfo(op.Outputs[0])
	var out relay.Expr
	if aT.Quant != nil && bT.Quant != nil {
		if outT.Quant == nil {
			return fmt.Errorf("quantized add output %q has no quant params", outT.Name)
		}
		out = relay.NewCall(relay.OpQnnAdd, []relay.Expr{a, b}, relay.Attrs{
			"lhs_scale": aT.Quant.Scale, "lhs_zero_point": int(aT.Quant.ZeroPoint),
			"rhs_scale": bT.Quant.Scale, "rhs_zero_point": int(bT.Quant.ZeroPoint),
			"output_scale": outT.Quant.Scale, "output_zero_point": int(outT.Quant.ZeroPoint),
		})
	} else {
		out = relay.NewCall(relay.OpAdd, []relay.Expr{a, b}, nil)
	}
	act, err := imp.fusedActivation(out, op.optInt("fused_activation_function", ActNone))
	if err != nil {
		return err
	}
	return imp.set(op.Outputs[0], act)
}

func (imp *importer) convertQuantize(op Operator) error {
	x, err := imp.value(op.Inputs[0])
	if err != nil {
		return err
	}
	outT := imp.tensorInfo(op.Outputs[0])
	if outT.Quant == nil {
		return fmt.Errorf("QUANTIZE output %q has no quant params", outT.Name)
	}
	inT := imp.tensorInfo(op.Inputs[0])
	if inT.Quant != nil {
		// Re-quantization form.
		return imp.set(op.Outputs[0], relay.NewCall(relay.OpQnnRequantize, []relay.Expr{x}, relay.Attrs{
			"input_scale": inT.Quant.Scale, "input_zero_point": int(inT.Quant.ZeroPoint),
			"output_scale": outT.Quant.Scale, "output_zero_point": int(outT.Quant.ZeroPoint),
			"out_dtype": outT.DType.String(),
		}))
	}
	return imp.set(op.Outputs[0], relay.NewCall(relay.OpQnnQuantize, []relay.Expr{x}, relay.Attrs{
		"output_scale": outT.Quant.Scale, "output_zero_point": int(outT.Quant.ZeroPoint),
		"out_dtype": outT.DType.String(),
	}))
}

func (imp *importer) convertDequantize(op Operator) error {
	x, err := imp.value(op.Inputs[0])
	if err != nil {
		return err
	}
	inT := imp.tensorInfo(op.Inputs[0])
	attrs := relay.Attrs{}
	if inT.Quant != nil {
		attrs["input_scale"] = inT.Quant.Scale
		attrs["input_zero_point"] = int(inT.Quant.ZeroPoint)
	}
	return imp.set(op.Outputs[0], relay.NewCall(relay.OpQnnDequantize, []relay.Expr{x}, attrs))
}

func (imp *importer) convertPad(op Operator) error {
	x, err := imp.value(op.Inputs[0])
	if err != nil {
		return err
	}
	pads := op.IntListOptions["paddings"]
	if pads == nil {
		return fmt.Errorf("PAD without paddings")
	}
	return imp.set(op.Outputs[0], relay.NewCall(relay.OpPad, []relay.Expr{x},
		relay.Attrs{"pad_width": append([]int(nil), pads...)}))
}

func (imp *importer) convertMean(op Operator) error {
	x, err := imp.value(op.Inputs[0])
	if err != nil {
		return err
	}
	axes := op.IntListOptions["axis"]
	inT := imp.tensorInfo(op.Inputs[0])
	// Spatial mean over NHWC [1,2] with quantized input lowers to global
	// average pooling (which preserves quant params) + reshape.
	if len(axes) == 2 && axes[0] == 1 && axes[1] == 2 && len(inT.Shape) == 4 {
		gap := relay.NewCall(relay.OpGlobalAvgPool, []relay.Expr{x}, nil)
		return imp.set(op.Outputs[0], relay.NewCall(relay.OpBatchFlatten, []relay.Expr{gap}, nil))
	}
	return imp.set(op.Outputs[0], relay.NewCall(relay.OpMean, []relay.Expr{x},
		relay.Attrs{"axis": append([]int(nil), axes...), "keepdims": op.optInt("keep_dims", 0) == 1}))
}

func (imp *importer) convertResize(op Operator) error {
	x, err := imp.value(op.Inputs[0])
	if err != nil {
		return err
	}
	scale := op.optInt("scale", 2)
	return imp.set(op.Outputs[0], relay.NewCall(relay.OpUpsampling, []relay.Expr{x},
		relay.Attrs{"scale": scale, "method": "nearest"}))
}
