package keras

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Small binary helpers shared by the weight blob format.

func writeU32(w io.Writer, v uint32) error {
	return binary.Write(w, binary.LittleEndian, v)
}

func readU32(r io.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

const maxNameLen = 4096

func writeString(w io.Writer, s string) error {
	if len(s) > maxNameLen {
		return fmt.Errorf("keras: name too long (%d bytes)", len(s))
	}
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > maxNameLen {
		return "", fmt.Errorf("keras: corrupt blob, name length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func sortStrings(s []string) { sort.Strings(s) }
