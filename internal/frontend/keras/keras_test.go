package keras

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/relay"
	"repro/internal/tensor"
)

// emotionLikeModel builds a small version of the paper's emotion CNN
// (Listing 4): conv-relu stacks, pooling, dropout, dense+softmax head.
func emotionLikeModel(t *testing.T) ([]byte, WeightStore) {
	t.Helper()
	s := NewSequential("emotion", 42).
		Input(48, 48, 1).
		Conv2D(32, 3, 1, "valid", "relu").
		Conv2D(64, 3, 1, "valid", "relu").
		MaxPooling2D(2, 2).
		Dropout(0.25).
		Conv2D(128, 3, 1, "valid", "relu").
		MaxPooling2D(2, 2).
		Flatten().
		Dense(64, "relu").
		Dropout(0.5).
		Dense(7, "softmax")
	js, err := s.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := s.Weights()
	if err != nil {
		t.Fatal(err)
	}
	return js, ws
}

func TestFromKerasEmotionModel(t *testing.T) {
	js, ws := emotionLikeModel(t)
	m, err := FromKeras(js, ws)
	if err != nil {
		t.Fatal(err)
	}
	main := m.Main()
	ft := main.CheckedType().(*relay.FuncType)
	if !ft.Ret.Same(relay.TType(tensor.Float32, 1, 7)) {
		t.Errorf("output type %s, want (1,7) float32", ft.Ret)
	}
	if n := relay.CountOps(main, "nn.conv2d"); n != 3 {
		t.Errorf("conv count %d", n)
	}
	if n := relay.CountOps(main, "nn.softmax"); n != 1 {
		t.Errorf("softmax count %d", n)
	}
	if n := relay.CountOps(main, "nn.dropout"); n != 2 {
		t.Errorf("dropout count %d", n)
	}
}

func TestWeightBlobRoundTrip(t *testing.T) {
	_, ws := emotionLikeModel(t)
	var buf bytes.Buffer
	if err := ws.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadWeights(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ws) {
		t.Fatalf("weight count %d vs %d", len(back), len(ws))
	}
	for name, want := range ws {
		got, ok := back[name]
		if !ok {
			t.Fatalf("missing %q after round trip", name)
		}
		if !tensor.AllClose(got, want, 0, 0) {
			t.Fatalf("weight %q changed", name)
		}
	}
}

func TestFromKerasSerializedRoundTrip(t *testing.T) {
	// Full artifact cycle: build → serialize → parse → import.
	js, ws := emotionLikeModel(t)
	var buf bytes.Buffer
	if err := ws.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadWeights(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromKeras(js, loaded); err != nil {
		t.Fatal(err)
	}
}

func TestFromKerasRejectsNonSequential(t *testing.T) {
	_, err := FromKeras([]byte(`{"class_name":"Functional","config":{}}`), WeightStore{})
	if err == nil || !strings.Contains(err.Error(), "Sequential") {
		t.Errorf("want Sequential error, got %v", err)
	}
}

func TestFromKerasMissingWeights(t *testing.T) {
	js, _ := emotionLikeModel(t)
	_, err := FromKeras(js, WeightStore{})
	if err == nil || !strings.Contains(err.Error(), "missing weight") {
		t.Errorf("want missing-weight error, got %v", err)
	}
}

func TestFromKerasBadJSON(t *testing.T) {
	if _, err := FromKeras([]byte(`{not json`), WeightStore{}); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestSequentialErrorPropagation(t *testing.T) {
	s := NewSequential("bad", 1).Input(8, 8, 3).Dense(10, "softmax") // Dense on 4-D
	if _, err := s.ToJSON(); err == nil {
		t.Error("builder error not propagated")
	}
}

func TestSamePaddingShapes(t *testing.T) {
	// 'same' conv keeps spatial dims at stride 1.
	s := NewSequential("same", 2).Input(16, 16, 3).Conv2D(8, 3, 1, "same", "relu")
	js, err := s.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	ws, _ := s.Weights()
	m, err := FromKeras(js, ws)
	if err != nil {
		t.Fatal(err)
	}
	ret := m.Main().CheckedType().(*relay.FuncType).Ret
	if !ret.Same(relay.TType(tensor.Float32, 1, 16, 16, 8)) {
		t.Errorf("'same' conv output %s", ret)
	}
}

func TestBatchNormImport(t *testing.T) {
	s := NewSequential("bn", 3).Input(8, 8, 3).Conv2D(4, 3, 1, "same", "linear").BatchNormalization()
	js, err := s.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	ws, _ := s.Weights()
	m, err := FromKeras(js, ws)
	if err != nil {
		t.Fatal(err)
	}
	if n := relay.CountOps(m.Main(), "nn.batch_norm"); n != 1 {
		t.Errorf("batch_norm count %d", n)
	}
}

func TestDepthwiseImport(t *testing.T) {
	s := NewSequential("dw", 4).Input(8, 8, 6).DepthwiseConv2D(3, 1, "same", "relu")
	js, err := s.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	ws, _ := s.Weights()
	m, err := FromKeras(js, ws)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	relay.PostOrderVisit(m.Main().Body, func(e relay.Expr) {
		if c, ok := e.(*relay.Call); ok && c.Op != nil && c.Op.Name == "nn.conv2d" {
			if c.Attrs.Int("groups", 1) == 6 {
				found = true
			}
		}
	})
	if !found {
		t.Error("depthwise conv did not import with groups=channels")
	}
}

func TestLoadWeightsCorrupt(t *testing.T) {
	cases := [][]byte{
		{},
		{0xff, 0xff, 0xff, 0xff},             // absurd count... but maxed; reader must bail
		{1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}, // absurd name length
	}
	for i, c := range cases {
		if _, err := LoadWeights(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: corrupt blob accepted", i)
		}
	}
}
