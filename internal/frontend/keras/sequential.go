package keras

import (
	"encoding/json"
	"fmt"

	"repro/internal/tensor"
)

// Sequential is the authoring side of the frontend — the stand-in for the
// Keras Python API the paper's Listing 4 uses (model = Sequential();
// model.add(Conv2D(...))). The model zoo builds the emotion-detection model
// through this API and serializes it with ToJSON/SaveWeights, so the
// importer genuinely parses a foreign artifact rather than receiving relay
// directly.
type Sequential struct {
	name    string
	layers  []LayerConfig
	weights WeightStore
	rng     *tensor.RNG

	// running output shape (NHWC or NC), used to size kernels
	shape tensor.Shape
	err   error
}

// NewSequential starts a model; seed drives deterministic weight synthesis.
func NewSequential(name string, seed uint64) *Sequential {
	return &Sequential{name: name, weights: WeightStore{}, rng: tensor.NewRNG(seed)}
}

// Err returns the first building error (checked once at Save time too).
func (s *Sequential) Err() error { return s.err }

func (s *Sequential) fail(format string, args ...interface{}) {
	if s.err == nil {
		s.err = fmt.Errorf("keras build %q: "+format, append([]interface{}{s.name}, args...)...)
	}
}

func (s *Sequential) layerName(class string) string {
	return fmt.Sprintf("%s_%d", class, len(s.layers))
}

func (s *Sequential) add(class string, cfg map[string]interface{}) string {
	name := s.layerName(class)
	cfg["name"] = name
	if len(s.layers) == 0 && s.shape != nil {
		bis := make([]interface{}, len(s.shape))
		bis[0] = nil
		for i := 1; i < len(s.shape); i++ {
			bis[i] = float64(s.shape[i])
		}
		cfg["batch_input_shape"] = bis
	}
	s.layers = append(s.layers, LayerConfig{ClassName: class, Config: cfg})
	return name
}

func (s *Sequential) newWeight(name string, shape tensor.Shape, fanIn, fanOut int) {
	t := tensor.New(tensor.Float32, shape)
	t.FillGlorot(s.rng, fanIn, fanOut)
	s.weights[name] = t
}

// Input declares the model input shape (H, W, C) with an implied batch of 1.
func (s *Sequential) Input(h, w, c int) *Sequential {
	if s.shape != nil {
		s.fail("Input declared twice")
		return s
	}
	s.shape = tensor.Shape{1, h, w, c}
	return s
}

func outDim(in, k, stride int, same bool) int {
	if same {
		return (in + stride - 1) / stride
	}
	return (in-k)/stride + 1
}

// Conv2D appends a convolution (+bias, +activation).
func (s *Sequential) Conv2D(filters, kernel, stride int, padding, activation string) *Sequential {
	if s.err != nil {
		return s
	}
	if len(s.shape) != 4 {
		s.fail("Conv2D on non-4D shape %v", s.shape)
		return s
	}
	inC := s.shape[3]
	name := s.add("Conv2D", map[string]interface{}{
		"filters":     float64(filters),
		"kernel_size": []interface{}{float64(kernel), float64(kernel)},
		"strides":     []interface{}{float64(stride), float64(stride)},
		"padding":     padding,
		"activation":  activation,
		"use_bias":    true,
	})
	s.newWeight(name+"/kernel", tensor.Shape{filters, kernel, kernel, inC}, kernel*kernel*inC, filters)
	s.weights[name+"/bias"] = tensor.New(tensor.Float32, tensor.Shape{filters})
	same := padding == "same"
	s.shape = tensor.Shape{1, outDim(s.shape[1], kernel, stride, same), outDim(s.shape[2], kernel, stride, same), filters}
	return s
}

// DepthwiseConv2D appends a depthwise convolution.
func (s *Sequential) DepthwiseConv2D(kernel, stride int, padding, activation string) *Sequential {
	if s.err != nil {
		return s
	}
	if len(s.shape) != 4 {
		s.fail("DepthwiseConv2D on non-4D shape %v", s.shape)
		return s
	}
	c := s.shape[3]
	name := s.add("DepthwiseConv2D", map[string]interface{}{
		"kernel_size": []interface{}{float64(kernel), float64(kernel)},
		"strides":     []interface{}{float64(stride), float64(stride)},
		"padding":     padding,
		"activation":  activation,
		"use_bias":    true,
	})
	s.newWeight(name+"/depthwise_kernel", tensor.Shape{c, kernel, kernel, 1}, kernel*kernel, 1)
	s.weights[name+"/bias"] = tensor.New(tensor.Float32, tensor.Shape{c})
	same := padding == "same"
	s.shape = tensor.Shape{1, outDim(s.shape[1], kernel, stride, same), outDim(s.shape[2], kernel, stride, same), c}
	return s
}

// MaxPooling2D appends a max pool.
func (s *Sequential) MaxPooling2D(pool, stride int) *Sequential {
	return s.pool("MaxPooling2D", pool, stride)
}

// AveragePooling2D appends an average pool.
func (s *Sequential) AveragePooling2D(pool, stride int) *Sequential {
	return s.pool("AveragePooling2D", pool, stride)
}

func (s *Sequential) pool(class string, pool, stride int) *Sequential {
	if s.err != nil {
		return s
	}
	if len(s.shape) != 4 {
		s.fail("%s on non-4D shape %v", class, s.shape)
		return s
	}
	s.add(class, map[string]interface{}{
		"pool_size": []interface{}{float64(pool), float64(pool)},
		"strides":   []interface{}{float64(stride), float64(stride)},
		"padding":   "valid",
	})
	s.shape = tensor.Shape{1, outDim(s.shape[1], pool, stride, false), outDim(s.shape[2], pool, stride, false), s.shape[3]}
	return s
}

// GlobalAveragePooling2D reduces H×W, producing (N, C).
func (s *Sequential) GlobalAveragePooling2D() *Sequential {
	if s.err != nil {
		return s
	}
	s.add("GlobalAveragePooling2D", map[string]interface{}{})
	s.shape = tensor.Shape{1, s.shape[3]}
	return s
}

// Flatten collapses to (N, H*W*C).
func (s *Sequential) Flatten() *Sequential {
	if s.err != nil {
		return s
	}
	n := 1
	for _, d := range s.shape[1:] {
		n *= d
	}
	s.add("Flatten", map[string]interface{}{})
	s.shape = tensor.Shape{1, n}
	return s
}

// Dense appends a fully connected layer.
func (s *Sequential) Dense(units int, activation string) *Sequential {
	if s.err != nil {
		return s
	}
	if len(s.shape) != 2 {
		s.fail("Dense on non-2D shape %v (missing Flatten?)", s.shape)
		return s
	}
	k := s.shape[1]
	name := s.add("Dense", map[string]interface{}{
		"units":      float64(units),
		"activation": activation,
		"use_bias":   true,
	})
	s.newWeight(name+"/kernel", tensor.Shape{units, k}, k, units)
	s.weights[name+"/bias"] = tensor.New(tensor.Float32, tensor.Shape{units})
	s.shape = tensor.Shape{1, units}
	return s
}

// Dropout appends an (inference-time no-op) dropout layer, as in Listing 4.
func (s *Sequential) Dropout(rate float64) *Sequential {
	if s.err != nil {
		return s
	}
	s.add("Dropout", map[string]interface{}{"rate": rate})
	return s
}

// BatchNormalization appends a batch-norm layer with synthesized statistics.
func (s *Sequential) BatchNormalization() *Sequential {
	if s.err != nil {
		return s
	}
	c := s.shape[len(s.shape)-1]
	name := s.add("BatchNormalization", map[string]interface{}{"epsilon": 1e-3})
	gamma := tensor.New(tensor.Float32, tensor.Shape{c})
	gamma.FillUniform(s.rng, 0.8, 1.2)
	beta := tensor.New(tensor.Float32, tensor.Shape{c})
	beta.FillUniform(s.rng, -0.1, 0.1)
	mean := tensor.New(tensor.Float32, tensor.Shape{c})
	mean.FillUniform(s.rng, -0.2, 0.2)
	variance := tensor.New(tensor.Float32, tensor.Shape{c})
	variance.FillUniform(s.rng, 0.5, 1.5)
	s.weights[name+"/gamma"] = gamma
	s.weights[name+"/beta"] = beta
	s.weights[name+"/moving_mean"] = mean
	s.weights[name+"/moving_variance"] = variance
	return s
}

// OutputShape returns the current running shape.
func (s *Sequential) OutputShape() tensor.Shape { return s.shape.Clone() }

// ToJSON serializes the architecture like model.to_json().
func (s *Sequential) ToJSON() ([]byte, error) {
	if s.err != nil {
		return nil, s.err
	}
	var cfg ModelConfig
	cfg.ClassName = "Sequential"
	cfg.Config.Name = s.name
	cfg.Config.Layers = s.layers
	return json.Marshal(cfg)
}

// Weights returns the weight store for SaveWeights.
func (s *Sequential) Weights() (WeightStore, error) {
	if s.err != nil {
		return nil, s.err
	}
	return s.weights, nil
}
