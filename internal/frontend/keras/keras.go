// Package keras implements the Keras frontend: it parses the JSON
// architecture produced by Keras' model.to_json() (Sequential models) plus a
// binary weight blob, and emits a relay module — the relay.frontend.from_keras
// path the paper's emotion-detection model takes (Listing 4).
//
// The weight blob is this stack's equivalent of an HDF5 weight file: a
// sequence of (name, tensor) records in the shared binary tensor format.
package keras

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/relay"
	"repro/internal/tensor"
	"repro/internal/verify"
)

// ModelConfig is the top-level structure of a serialized Keras model.
type ModelConfig struct {
	ClassName string `json:"class_name"` // "Sequential"
	Config    struct {
		Name   string        `json:"name"`
		Layers []LayerConfig `json:"layers"`
	} `json:"config"`
}

// LayerConfig is one layer entry.
type LayerConfig struct {
	ClassName string                 `json:"class_name"`
	Config    map[string]interface{} `json:"config"`
}

func (l LayerConfig) name() string {
	if n, ok := l.Config["name"].(string); ok {
		return n
	}
	return ""
}

func (l LayerConfig) str(key, def string) string {
	if v, ok := l.Config[key].(string); ok {
		return v
	}
	return def
}

func (l LayerConfig) number(key string, def float64) float64 {
	if v, ok := l.Config[key].(float64); ok {
		return v
	}
	return def
}

func (l LayerConfig) intPair(key string, def int) (int, int, error) {
	v, ok := l.Config[key]
	if !ok {
		return def, def, nil
	}
	switch vv := v.(type) {
	case float64:
		return int(vv), int(vv), nil
	case []interface{}:
		if len(vv) == 2 {
			a, ok1 := vv[0].(float64)
			b, ok2 := vv[1].(float64)
			if ok1 && ok2 {
				return int(a), int(b), nil
			}
		}
	}
	return 0, 0, fmt.Errorf("keras: layer attr %q has bad value %v", key, v)
}

// WeightStore holds named weight tensors (the HDF5 stand-in).
type WeightStore map[string]*tensor.Tensor

// SaveWeights writes the store as a binary blob (sorted by name for
// determinism).
func (ws WeightStore) SaveWeights(w io.Writer) error {
	names := make([]string, 0, len(ws))
	for n := range ws {
		names = append(names, n)
	}
	sortStrings(names)
	if err := writeU32(w, uint32(len(names))); err != nil {
		return err
	}
	for _, n := range names {
		if err := writeString(w, n); err != nil {
			return err
		}
		if err := ws[n].Serialize(w); err != nil {
			return err
		}
	}
	return nil
}

// LoadWeights reads a weight blob.
func LoadWeights(r io.Reader) (WeightStore, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	ws := WeightStore{}
	for i := uint32(0); i < n; i++ {
		name, err := readString(r)
		if err != nil {
			return nil, err
		}
		t, err := tensor.ReadFrom(r)
		if err != nil {
			return nil, fmt.Errorf("keras: weight %q: %w", name, err)
		}
		ws[name] = t
	}
	return ws, nil
}

// FromKeras parses a model JSON + weights into a relay module, mirroring
// relay.frontend.from_keras(model, shape_dict). Keras layers are NHWC
// natively, so no layout conversion is needed.
func FromKeras(configJSON []byte, weights WeightStore) (*relay.Module, error) {
	var cfg ModelConfig
	if err := json.Unmarshal(configJSON, &cfg); err != nil {
		return nil, fmt.Errorf("keras: bad model json: %w", err)
	}
	if cfg.ClassName != "Sequential" {
		return nil, fmt.Errorf("keras: only Sequential models are supported, got %q", cfg.ClassName)
	}
	b := &builder{weights: weights}
	return b.build(cfg)
}

type builder struct {
	weights WeightStore
	cur     relay.Expr
	curType *relay.TensorType
}

func (b *builder) weight(layer, suffix string, want tensor.Shape) (*relay.Constant, error) {
	key := layer + "/" + suffix
	t, ok := b.weights[key]
	if !ok {
		return nil, fmt.Errorf("keras: missing weight %q", key)
	}
	if want != nil && !t.Shape.Equal(want) {
		return nil, fmt.Errorf("keras: weight %q has shape %s, want %s", key, t.Shape, want)
	}
	return relay.Const(t), nil
}

func (b *builder) infer() error {
	ty, err := relay.InferTypes(b.cur)
	if err != nil {
		return err
	}
	tt, ok := ty.(*relay.TensorType)
	if !ok {
		return fmt.Errorf("keras: non-tensor intermediate %s", ty)
	}
	b.curType = tt
	return nil
}

func (b *builder) applyActivation(act string) error {
	switch act {
	case "", "linear":
		return nil
	case "relu":
		b.cur = relay.NewCall(relay.OpReLU, []relay.Expr{b.cur}, nil)
	case "sigmoid":
		b.cur = relay.NewCall(relay.OpSigmoid, []relay.Expr{b.cur}, nil)
	case "tanh":
		b.cur = relay.NewCall(relay.OpTanh, []relay.Expr{b.cur}, nil)
	case "softmax":
		b.cur = relay.NewCall(relay.OpSoftmax, []relay.Expr{b.cur}, nil)
	default:
		return fmt.Errorf("keras: unsupported activation %q", act)
	}
	return b.infer()
}

func (b *builder) build(cfg ModelConfig) (*relay.Module, error) {
	if len(cfg.Config.Layers) == 0 {
		return nil, fmt.Errorf("keras: model has no layers")
	}
	var input *relay.Var
	for i, layer := range cfg.Config.Layers {
		// The first layer may carry batch_input_shape.
		if input == nil {
			shape, err := layerInputShape(layer)
			if err != nil {
				return nil, err
			}
			if shape == nil {
				return nil, fmt.Errorf("keras: first layer %q has no batch_input_shape", layer.ClassName)
			}
			input = relay.NewVar("input_1", relay.TType(tensor.Float32, shape...))
			b.cur = input
			if err := b.infer(); err != nil {
				return nil, err
			}
		}
		if err := b.addLayer(layer); err != nil {
			return nil, fmt.Errorf("keras: layer %d (%s): %w", i, layer.ClassName, err)
		}
	}
	m := relay.NewModule(relay.NewFunc([]*relay.Var{input}, b.cur))
	if err := relay.InferModule(m); err != nil {
		return nil, err
	}
	if err := verify.ModuleErr(m, verify.Options{}); err != nil {
		return nil, fmt.Errorf("keras: imported module failed IR verification: %w", err)
	}
	return m, nil
}

func layerInputShape(layer LayerConfig) ([]int, error) {
	v, ok := layer.Config["batch_input_shape"]
	if !ok {
		return nil, nil
	}
	arr, ok := v.([]interface{})
	if !ok {
		return nil, fmt.Errorf("keras: bad batch_input_shape %v", v)
	}
	shape := make([]int, len(arr))
	for i, d := range arr {
		switch dv := d.(type) {
		case nil:
			shape[i] = 1 // batch dimension: fix to 1
		case float64:
			shape[i] = int(dv)
		default:
			return nil, fmt.Errorf("keras: bad batch_input_shape entry %v", d)
		}
	}
	return shape, nil
}

func (b *builder) addLayer(layer LayerConfig) error {
	switch layer.ClassName {
	case "InputLayer":
		return nil
	case "Conv2D":
		return b.addConv2D(layer)
	case "DepthwiseConv2D":
		return b.addDepthwiseConv2D(layer)
	case "MaxPooling2D", "AveragePooling2D":
		return b.addPool(layer)
	case "GlobalAveragePooling2D":
		b.cur = relay.NewCall(relay.OpGlobalAvgPool, []relay.Expr{b.cur}, nil)
		if err := b.infer(); err != nil {
			return err
		}
		// Keras returns (N, C), not (N,1,1,C).
		b.cur = relay.NewCall(relay.OpBatchFlatten, []relay.Expr{b.cur}, nil)
		return b.infer()
	case "Flatten":
		b.cur = relay.NewCall(relay.OpBatchFlatten, []relay.Expr{b.cur}, nil)
		return b.infer()
	case "Dense":
		return b.addDense(layer)
	case "Dropout":
		b.cur = relay.NewCall(relay.OpDropout, []relay.Expr{b.cur},
			relay.Attrs{"rate": layer.number("rate", 0.5)})
		return b.infer()
	case "Activation":
		return b.applyActivation(layer.str("activation", "linear"))
	case "BatchNormalization":
		return b.addBatchNorm(layer)
	case "ReLU":
		b.cur = relay.NewCall(relay.OpReLU, []relay.Expr{b.cur}, nil)
		return b.infer()
	}
	return fmt.Errorf("unsupported layer class %q", layer.ClassName)
}

func (b *builder) addConv2D(layer LayerConfig) error {
	filters := int(layer.number("filters", 0))
	kh, kw, err := layer.intPair("kernel_size", 3)
	if err != nil {
		return err
	}
	sh, sw, err := layer.intPair("strides", 1)
	if err != nil {
		return err
	}
	inC := b.curType.Shape[3]
	w, err := b.weight(layer.name(), "kernel", tensor.Shape{filters, kh, kw, inC})
	if err != nil {
		return err
	}
	pad := []int{0, 0}
	if layer.str("padding", "valid") == "same" {
		pad = samePadding(kh, kw)
	}
	b.cur = relay.NewCall(relay.OpConv2D, []relay.Expr{b.cur, w},
		relay.Attrs{"strides": []int{sh, sw}, "padding": pad})
	if err := b.infer(); err != nil {
		return err
	}
	if useBias(layer) {
		bias, err := b.weight(layer.name(), "bias", tensor.Shape{filters})
		if err != nil {
			return err
		}
		b.cur = relay.NewCall(relay.OpBiasAdd, []relay.Expr{b.cur, bias}, nil)
		if err := b.infer(); err != nil {
			return err
		}
	}
	return b.applyActivation(layer.str("activation", "linear"))
}

func (b *builder) addDepthwiseConv2D(layer LayerConfig) error {
	kh, kw, err := layer.intPair("kernel_size", 3)
	if err != nil {
		return err
	}
	sh, sw, err := layer.intPair("strides", 1)
	if err != nil {
		return err
	}
	c := b.curType.Shape[3]
	w, err := b.weight(layer.name(), "depthwise_kernel", tensor.Shape{c, kh, kw, 1})
	if err != nil {
		return err
	}
	pad := []int{0, 0}
	if layer.str("padding", "valid") == "same" {
		pad = samePadding(kh, kw)
	}
	b.cur = relay.NewCall(relay.OpConv2D, []relay.Expr{b.cur, w},
		relay.Attrs{"strides": []int{sh, sw}, "padding": pad, "groups": c})
	if err := b.infer(); err != nil {
		return err
	}
	if useBias(layer) {
		bias, err := b.weight(layer.name(), "bias", tensor.Shape{c})
		if err != nil {
			return err
		}
		b.cur = relay.NewCall(relay.OpBiasAdd, []relay.Expr{b.cur, bias}, nil)
		if err := b.infer(); err != nil {
			return err
		}
	}
	return b.applyActivation(layer.str("activation", "linear"))
}

func (b *builder) addPool(layer LayerConfig) error {
	kh, kw, err := layer.intPair("pool_size", 2)
	if err != nil {
		return err
	}
	sh, sw, err := layer.intPair("strides", kh)
	if err != nil {
		return err
	}
	op := relay.OpMaxPool2D
	if layer.ClassName == "AveragePooling2D" {
		op = relay.OpAvgPool2D
	}
	pad := []int{0, 0}
	if layer.str("padding", "valid") == "same" {
		pad = samePadding(kh, kw)
	}
	b.cur = relay.NewCall(op, []relay.Expr{b.cur},
		relay.Attrs{"pool_size": []int{kh, kw}, "strides": []int{sh, sw}, "padding": pad})
	return b.infer()
}

func (b *builder) addDense(layer LayerConfig) error {
	units := int(layer.number("units", 0))
	if len(b.curType.Shape) != 2 {
		return fmt.Errorf("Dense needs 2-D input, have %s (add Flatten)", b.curType.Shape)
	}
	k := b.curType.Shape[1]
	w, err := b.weight(layer.name(), "kernel", tensor.Shape{units, k})
	if err != nil {
		return err
	}
	b.cur = relay.NewCall(relay.OpDense, []relay.Expr{b.cur, w}, nil)
	if err := b.infer(); err != nil {
		return err
	}
	if useBias(layer) {
		bias, err := b.weight(layer.name(), "bias", tensor.Shape{units})
		if err != nil {
			return err
		}
		b.cur = relay.NewCall(relay.OpBiasAdd, []relay.Expr{b.cur, bias}, nil)
		if err := b.infer(); err != nil {
			return err
		}
	}
	return b.applyActivation(layer.str("activation", "linear"))
}

func (b *builder) addBatchNorm(layer LayerConfig) error {
	c := b.curType.Shape[len(b.curType.Shape)-1]
	gamma, err := b.weight(layer.name(), "gamma", tensor.Shape{c})
	if err != nil {
		return err
	}
	beta, err := b.weight(layer.name(), "beta", tensor.Shape{c})
	if err != nil {
		return err
	}
	mean, err := b.weight(layer.name(), "moving_mean", tensor.Shape{c})
	if err != nil {
		return err
	}
	variance, err := b.weight(layer.name(), "moving_variance", tensor.Shape{c})
	if err != nil {
		return err
	}
	b.cur = relay.NewCall(relay.OpBatchNorm,
		[]relay.Expr{b.cur, gamma, beta, mean, variance},
		relay.Attrs{"epsilon": layer.number("epsilon", 1e-3)})
	return b.infer()
}

func useBias(layer LayerConfig) bool {
	if v, ok := layer.Config["use_bias"].(bool); ok {
		return v
	}
	return true
}

// samePadding computes Keras "same" padding for stride-1-compatible output
// (symmetric floor/ceil split: [top, left, bottom, right]).
func samePadding(kh, kw int) []int {
	return []int{(kh - 1) / 2, (kw - 1) / 2, kh / 2, kw / 2}
}
