package darknet

import (
	"fmt"
	"io"

	"repro/internal/relay"
	"repro/internal/tensor"
	"repro/internal/verify"
)

// FromDarknet imports a parsed .cfg + .weights pair into a relay module —
// relay.frontend.from_darknet of Listing 3. Darknet is NCHW/OIHW; the
// importer produces an NHWC module (weights permuted at import, channel
// concat/shortcut axes remapped). YOLO head sections lower to
// vision.yolo_output, which is outside the Neuron op set — exactly why the
// paper's object-detection model has no NeuroPilot-only statistics.
func FromDarknet(cfgText string, weights io.Reader) (*relay.Module, error) {
	sections, err := ParseCfg(cfgText)
	if err != nil {
		return nil, err
	}
	wr, err := NewWeightsReader(weights)
	if err != nil {
		return nil, err
	}
	net := sections[0]
	h := net.Int("height", 416)
	w := net.Int("width", 416)
	c := net.Int("channels", 3)
	input := relay.NewVar("data", relay.TType(tensor.Float32, 1, h, w, c))

	imp := &dkImporter{wr: wr}
	cur := relay.Expr(input)
	var outputs []relay.Expr
	for i, sec := range sections[1:] {
		var out relay.Expr
		var err error
		switch sec.Name {
		case "convolutional":
			out, err = imp.conv(sec, cur)
		case "maxpool":
			out, err = imp.maxpool(sec, cur)
		case "upsample":
			out, err = imp.upsample(sec, cur)
		case "route":
			out, err = imp.route(sec, i)
		case "shortcut":
			out, err = imp.shortcut(sec, cur, i)
		case "yolo":
			out, err = imp.yolo(sec, cur)
			if err == nil {
				outputs = append(outputs, out)
			}
		case "avgpool":
			out = relay.NewCall(relay.OpGlobalAvgPool, []relay.Expr{cur}, nil)
			if _, terr := relay.InferTypes(out); terr != nil {
				err = terr
			}
		default:
			err = fmt.Errorf("unsupported section [%s]", sec.Name)
		}
		if err != nil {
			return nil, fmt.Errorf("darknet: layer %d [%s]: %w", i, sec.Name, err)
		}
		imp.layers = append(imp.layers, out)
		cur = out
	}
	var body relay.Expr
	switch len(outputs) {
	case 0:
		body = cur // classification-style network
	case 1:
		body = outputs[0]
	default:
		body = relay.NewTuple(outputs)
	}
	m := relay.NewModule(relay.NewFunc([]*relay.Var{input}, body))
	if err := relay.InferModule(m); err != nil {
		return nil, fmt.Errorf("darknet: imported module ill-typed: %w", err)
	}
	if err := verify.ModuleErr(m, verify.Options{}); err != nil {
		return nil, fmt.Errorf("darknet: imported module failed IR verification: %w", err)
	}
	return m, nil
}

type dkImporter struct {
	wr     *WeightsReader
	layers []relay.Expr
}

func (imp *dkImporter) layerRef(idx, at int) (relay.Expr, error) {
	if idx < 0 {
		idx = at + idx
	}
	if idx < 0 || idx >= len(imp.layers) || imp.layers[idx] == nil {
		return nil, fmt.Errorf("layer reference %d out of range at layer %d", idx, at)
	}
	return imp.layers[idx], nil
}

func channelsOf(e relay.Expr) (int, error) {
	tt, ok := e.CheckedType().(*relay.TensorType)
	if !ok || len(tt.Shape) != 4 {
		return 0, fmt.Errorf("expected 4-D tensor, got %v", e.CheckedType())
	}
	return tt.Shape[3], nil
}

func (imp *dkImporter) conv(sec *Section, in relay.Expr) (relay.Expr, error) {
	filters := sec.Int("filters", 1)
	size := sec.Int("size", 1)
	stride := sec.Int("stride", 1)
	padFlag := sec.Int("pad", 0)
	bn := sec.Int("batch_normalize", 0) == 1
	activation := sec.Str("activation", "linear")
	inC, err := channelsOf(in)
	if err != nil {
		return nil, err
	}

	// Weight order in the file: [bias(+bn stats)] then OIHW weights.
	bias, err := imp.wr.ReadFloats(tensor.Shape{filters})
	if err != nil {
		return nil, err
	}
	var gamma, mean, variance *tensor.Tensor
	if bn {
		if gamma, err = imp.wr.ReadFloats(tensor.Shape{filters}); err != nil {
			return nil, err
		}
		if mean, err = imp.wr.ReadFloats(tensor.Shape{filters}); err != nil {
			return nil, err
		}
		if variance, err = imp.wr.ReadFloats(tensor.Shape{filters}); err != nil {
			return nil, err
		}
	}
	oihw, err := imp.wr.ReadFloats(tensor.Shape{filters, inC, size, size})
	if err != nil {
		return nil, err
	}
	ohwi := permuteOIHWtoOHWI(oihw)

	pad := 0
	if padFlag == 1 {
		pad = size / 2
	}
	out := relay.Expr(relay.NewCall(relay.OpConv2D, []relay.Expr{in, relay.Const(ohwi)},
		relay.Attrs{"strides": []int{stride, stride}, "padding": []int{pad, pad}}))
	if bn {
		out = relay.NewCall(relay.OpBatchNorm, []relay.Expr{
			out, relay.Const(gamma), relay.Const(bias), relay.Const(mean), relay.Const(variance),
		}, relay.Attrs{"epsilon": 1e-5})
	} else {
		out = relay.NewCall(relay.OpBiasAdd, []relay.Expr{out, relay.Const(bias)}, nil)
	}
	switch activation {
	case "leaky":
		out = relay.NewCall(relay.OpLeakyReLU, []relay.Expr{out}, relay.Attrs{"alpha": 0.1})
	case "relu":
		out = relay.NewCall(relay.OpReLU, []relay.Expr{out}, nil)
	case "linear":
	default:
		return nil, fmt.Errorf("unsupported activation %q", activation)
	}
	if _, err := relay.InferTypes(out); err != nil {
		return nil, err
	}
	return out, nil
}

func (imp *dkImporter) maxpool(sec *Section, in relay.Expr) (relay.Expr, error) {
	size := sec.Int("size", 2)
	stride := sec.Int("stride", 2)
	attrs := relay.Attrs{"pool_size": []int{size, size}, "strides": []int{stride, stride}}
	if stride == 1 {
		// YOLO-tiny's stride-1 maxpool keeps spatial dims via asymmetric pad.
		attrs["padding"] = []int{0, 0, size - 1, size - 1}
	}
	out := relay.NewCall(relay.OpMaxPool2D, []relay.Expr{in}, attrs)
	if _, err := relay.InferTypes(out); err != nil {
		return nil, err
	}
	return out, nil
}

func (imp *dkImporter) upsample(sec *Section, in relay.Expr) (relay.Expr, error) {
	out := relay.NewCall(relay.OpUpsampling, []relay.Expr{in},
		relay.Attrs{"scale": sec.Int("stride", 2), "method": "nearest"})
	if _, err := relay.InferTypes(out); err != nil {
		return nil, err
	}
	return out, nil
}

func (imp *dkImporter) route(sec *Section, at int) (relay.Expr, error) {
	refs, err := sec.IntList("layers")
	if err != nil {
		return nil, err
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("route without layers")
	}
	fields := make([]relay.Expr, len(refs))
	for i, r := range refs {
		e, err := imp.layerRef(r, at)
		if err != nil {
			return nil, err
		}
		fields[i] = e
	}
	if len(fields) == 1 {
		return fields[0], nil
	}
	out := relay.NewCall(relay.OpConcatenate, []relay.Expr{relay.NewTuple(fields)},
		relay.Attrs{"axis": 3})
	if _, err := relay.InferTypes(out); err != nil {
		return nil, err
	}
	return out, nil
}

func (imp *dkImporter) shortcut(sec *Section, cur relay.Expr, at int) (relay.Expr, error) {
	from := sec.Int("from", -1)
	other, err := imp.layerRef(from, at)
	if err != nil {
		return nil, err
	}
	out := relay.Expr(relay.NewCall(relay.OpAdd, []relay.Expr{cur, other}, nil))
	if sec.Str("activation", "linear") == "leaky" {
		out = relay.NewCall(relay.OpLeakyReLU, []relay.Expr{out}, relay.Attrs{"alpha": 0.1})
	}
	if _, err := relay.InferTypes(out); err != nil {
		return nil, err
	}
	return out, nil
}

func (imp *dkImporter) yolo(sec *Section, in relay.Expr) (relay.Expr, error) {
	mask, err := sec.IntList("mask")
	if err != nil {
		return nil, err
	}
	anchors := len(mask)
	if anchors == 0 {
		anchors = 3
	}
	classes := sec.Int("classes", 80)
	out := relay.NewCall(relay.OpYoloOutput, []relay.Expr{in},
		relay.Attrs{"anchors": anchors, "classes": classes})
	if _, err := relay.InferTypes(out); err != nil {
		return nil, err
	}
	return out, nil
}

func permuteOIHWtoOHWI(w *tensor.Tensor) *tensor.Tensor {
	o, i, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	out := tensor.New(tensor.Float32, tensor.Shape{o, kh, kw, i})
	src := w.F32()
	dst := out.F32()
	for oo := 0; oo < o; oo++ {
		for ii := 0; ii < i; ii++ {
			for y := 0; y < kh; y++ {
				for x := 0; x < kw; x++ {
					dst[((oo*kh+y)*kw+x)*i+ii] = src[((oo*i+ii)*kh+y)*kw+x]
				}
			}
		}
	}
	return out
}

// SynthesizeWeights writes a .weights file matching the cfg's convolutional
// layers, with deterministic Glorot weights — the model zoo's stand-in for
// downloading pretrained YOLO weights.
func SynthesizeWeights(cfgText string, seed uint64, w io.Writer) error {
	sections, err := ParseCfg(cfgText)
	if err != nil {
		return err
	}
	ww, err := NewWeightsWriter(w)
	if err != nil {
		return err
	}
	rng := tensor.NewRNG(seed)
	// Track channel counts through the network to size conv weights.
	channels := []int{}
	curC := sections[0].Int("channels", 3)
	for i, sec := range sections[1:] {
		switch sec.Name {
		case "convolutional":
			filters := sec.Int("filters", 1)
			size := sec.Int("size", 1)
			bn := sec.Int("batch_normalize", 0) == 1
			bias := tensor.New(tensor.Float32, tensor.Shape{filters})
			if err := ww.WriteFloats(bias); err != nil {
				return err
			}
			if bn {
				gamma := tensor.New(tensor.Float32, tensor.Shape{filters})
				gamma.FillUniform(rng, 0.8, 1.2)
				mean := tensor.New(tensor.Float32, tensor.Shape{filters})
				mean.FillUniform(rng, -0.2, 0.2)
				variance := tensor.New(tensor.Float32, tensor.Shape{filters})
				variance.FillUniform(rng, 0.5, 1.5)
				for _, t := range []*tensor.Tensor{gamma, mean, variance} {
					if err := ww.WriteFloats(t); err != nil {
						return err
					}
				}
			}
			wt := tensor.New(tensor.Float32, tensor.Shape{filters, curC, size, size})
			wt.FillGlorot(rng, curC*size*size, filters)
			if err := ww.WriteFloats(wt); err != nil {
				return err
			}
			curC = filters
		case "route":
			refs, err := sec.IntList("layers")
			if err != nil {
				return err
			}
			total := 0
			for _, r := range refs {
				idx := r
				if idx < 0 {
					idx = i + idx
				}
				if idx < 0 || idx >= len(channels) {
					return fmt.Errorf("darknet: route reference %d out of range", r)
				}
				total += channels[idx]
			}
			curC = total
		case "shortcut", "maxpool", "upsample", "yolo", "avgpool":
			// channel count unchanged
		}
		channels = append(channels, curC)
	}
	return nil
}
