package darknet

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/relay"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// tinyYoloCfg is a miniature two-head YOLOv3-tiny-style network: conv/leaky
// stacks, maxpool downsampling, a route+upsample second branch and two yolo
// detection heads.
const tinyYoloCfg = `
[net]
# Testing network
width=32
height=32
channels=3

[convolutional]
batch_normalize=1
filters=8
size=3
stride=1
pad=1
activation=leaky

[maxpool]
size=2
stride=2

[convolutional]
batch_normalize=1
filters=16
size=3
stride=1
pad=1
activation=leaky

[maxpool]
size=2
stride=2

[convolutional]
batch_normalize=1
filters=32
size=3
stride=1
pad=1
activation=leaky

[convolutional]
filters=21
size=1
stride=1
pad=1
activation=linear

[yolo]
mask=0,1,2
anchors=10,14, 23,27, 37,58, 81,82, 135,169, 344,319
classes=2
num=6

[route]
layers=-3

[upsample]
stride=2

[convolutional]
filters=21
size=1
stride=1
pad=1
activation=linear

[yolo]
mask=3,4,5
anchors=10,14, 23,27, 37,58, 81,82, 135,169, 344,319
classes=2
num=6
`

func buildWeights(t *testing.T, cfg string) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := SynthesizeWeights(cfg, 9, &buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestParseCfg(t *testing.T) {
	sections, err := ParseCfg(tinyYoloCfg)
	if err != nil {
		t.Fatal(err)
	}
	if sections[0].Name != "net" {
		t.Errorf("first section %q", sections[0].Name)
	}
	nConv := 0
	for _, s := range sections {
		if s.Name == "convolutional" {
			nConv++
		}
	}
	if nConv != 5 {
		t.Errorf("conv section count %d", nConv)
	}
	if sections[1].Int("filters", 0) != 8 || sections[1].Str("activation", "") != "leaky" {
		t.Error("section options misparsed")
	}
}

func TestParseCfgErrors(t *testing.T) {
	if _, err := ParseCfg("filters=3\n"); err == nil {
		t.Error("option outside section accepted")
	}
	if _, err := ParseCfg("[convolutional]\nfilters=3\n"); err == nil {
		t.Error("cfg without [net] accepted")
	}
	if _, err := ParseCfg("[net]\nbroken line without equals\n"); err == nil {
		t.Error("malformed option accepted")
	}
}

func TestWeightsHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	ww, err := NewWeightsWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w := tensor.New(tensor.Float32, tensor.Shape{4})
	w.FillUniform(tensor.NewRNG(1), -1, 1)
	if err := ww.WriteFloats(w); err != nil {
		t.Fatal(err)
	}
	rd, err := NewWeightsReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Minor != 2 {
		t.Errorf("header minor %d", rd.Minor)
	}
	back, err := rd.ReadFloats(tensor.Shape{4})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(w, back, 0, 0) {
		t.Error("weights changed in round trip")
	}
}

func TestFromDarknetTinyYolo(t *testing.T) {
	m, err := FromDarknet(tinyYoloCfg, buildWeights(t, tinyYoloCfg))
	if err != nil {
		t.Fatal(err)
	}
	main := m.Main()
	if n := relay.CountOps(main, "nn.conv2d"); n != 5 {
		t.Errorf("conv count %d", n)
	}
	if n := relay.CountOps(main, "vision.yolo_output"); n != 2 {
		t.Errorf("yolo head count %d", n)
	}
	if n := relay.CountOps(main, "nn.leaky_relu"); n != 3 {
		t.Errorf("leaky count %d", n)
	}
	if n := relay.CountOps(main, "nn.upsampling"); n != 1 {
		t.Errorf("upsample count %d", n)
	}
	// Two detection outputs.
	if _, ok := main.Body.(*relay.Tuple); !ok {
		t.Errorf("expected tuple of yolo outputs, got %T", main.Body)
	}
	// Input NHWC.
	it := main.Params[0].TypeAnnotation.(*relay.TensorType)
	if !it.Shape.Equal(tensor.Shape{1, 32, 32, 3}) {
		t.Errorf("input shape %s", it.Shape)
	}
}

func TestDarknetRunsEndToEnd(t *testing.T) {
	m, err := FromDarknet(tinyYoloCfg, buildWeights(t, tinyYoloCfg))
	if err != nil {
		t.Fatal(err)
	}
	lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
	if err != nil {
		t.Fatal(err)
	}
	gm := runtime.NewGraphModule(lib)
	in := tensor.New(tensor.Float32, tensor.Shape{1, 32, 32, 3})
	in.FillUniform(tensor.NewRNG(3), 0, 1)
	gm.SetInput(gm.InputNames()[0], in)
	if err := gm.Run(); err != nil {
		t.Fatal(err)
	}
	if gm.NumOutputs() != 2 {
		t.Fatalf("outputs %d", gm.NumOutputs())
	}
	// First head: 8x8 cells, 3 anchors × (5+2).
	if !gm.MustOutput(0).Shape.Equal(tensor.Shape{1, 8, 8, 21}) {
		t.Errorf("head 0 shape %s", gm.MustOutput(0).Shape)
	}
	// Second head: upsampled back to 16x16.
	if !gm.MustOutput(1).Shape.Equal(tensor.Shape{1, 16, 16, 21}) {
		t.Errorf("head 1 shape %s", gm.MustOutput(1).Shape)
	}
	// yolo sigmoided channels are probabilities.
	out := gm.MustOutput(0)
	if v := out.GetF(4); v < 0 || v > 1 {
		t.Errorf("objectness %g out of [0,1]", v)
	}
	// leaky_relu and yolo decode stay on the host: regions exist but the
	// whole model cannot be NeuroPilot-only.
	if len(lib.Module.ExternalFuncs("nir")) == 0 {
		t.Error("no NIR regions created for yolo model")
	}
	if _, err := runtime.BuildNeuroPilotOnly(m, nil, nil); err == nil {
		t.Error("yolo model must not compile NeuroPilot-only")
	}
}

func TestTruncatedWeightsRejected(t *testing.T) {
	buf := buildWeights(t, tinyYoloCfg)
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()/2])
	if _, err := FromDarknet(tinyYoloCfg, trunc); err == nil ||
		!strings.Contains(err.Error(), "truncated") {
		t.Errorf("truncated weights: %v", err)
	}
}
