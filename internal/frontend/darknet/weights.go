package darknet

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/tensor"
)

// The .weights binary layout (matching real darknet):
//
//	i32 major, i32 minor, i32 revision, i64 seen
//	for each [convolutional] layer, in network order:
//	  if batch_normalize: biases[n] scales[n] rolling_mean[n] rolling_var[n]
//	  else:               biases[n]
//	  weights[n*c*size*size]  (OIHW, float32 little-endian)

// WeightsReader streams floats out of a .weights payload.
type WeightsReader struct {
	r io.Reader
	// Major/Minor/Revision/Seen are the header fields.
	Major, Minor, Revision int32
	Seen                   int64
}

// NewWeightsReader validates the header.
func NewWeightsReader(r io.Reader) (*WeightsReader, error) {
	wr := &WeightsReader{r: r}
	for _, p := range []interface{}{&wr.Major, &wr.Minor, &wr.Revision, &wr.Seen} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("darknet: reading weights header: %w", err)
		}
	}
	return wr, nil
}

// ReadFloats reads n float32 values into a fresh tensor of the given shape.
func (wr *WeightsReader) ReadFloats(shape tensor.Shape) (*tensor.Tensor, error) {
	t := tensor.New(tensor.Float32, shape)
	buf := make([]byte, 4*t.Elems())
	if _, err := io.ReadFull(wr.r, buf); err != nil {
		return nil, fmt.Errorf("darknet: weights file truncated: %w", err)
	}
	dst := t.F32()
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return t, nil
}

// WeightsWriter emits the .weights layout (the authoring side used by the
// model zoo to synthesize pretrained files).
type WeightsWriter struct {
	w io.Writer
}

// NewWeightsWriter writes the header.
func NewWeightsWriter(w io.Writer) (*WeightsWriter, error) {
	ww := &WeightsWriter{w: w}
	for _, v := range []interface{}{int32(0), int32(2), int32(5), int64(32013312)} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	return ww, nil
}

// WriteFloats appends a tensor's float payload.
func (ww *WeightsWriter) WriteFloats(t *tensor.Tensor) error {
	src := t.F32()
	buf := make([]byte, 4*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	_, err := ww.w.Write(buf)
	return err
}
