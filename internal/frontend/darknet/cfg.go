// Package darknet implements the Darknet frontend used for YOLOv3 (paper
// §4.2, Listing 3): it parses the real .cfg INI-like network description and
// the .weights binary layout (header + per-layer BN statistics + OIHW
// weights), and lowers the network to relay in NHWC form.
package darknet

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// Section is one [name] block of a .cfg file.
type Section struct {
	Name    string
	Options map[string]string
}

// Int reads an integer option with a default.
func (s *Section) Int(key string, def int) int {
	v, ok := s.Options[key]
	if !ok {
		return def
	}
	n, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil {
		return def
	}
	return n
}

// Str reads a string option with a default.
func (s *Section) Str(key, def string) string {
	if v, ok := s.Options[key]; ok {
		return strings.TrimSpace(v)
	}
	return def
}

// IntList reads a comma-separated integer list option.
func (s *Section) IntList(key string) ([]int, error) {
	v, ok := s.Options[key]
	if !ok {
		return nil, nil
	}
	parts := strings.Split(v, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("darknet: bad int %q in option %s", p, key)
		}
		out = append(out, n)
	}
	return out, nil
}

// ParseCfg parses a darknet .cfg file into sections.
func ParseCfg(text string) ([]*Section, error) {
	var sections []*Section
	var cur *Section
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("darknet: line %d: malformed section header %q", lineNo, line)
			}
			cur = &Section{Name: strings.Trim(line, "[]"), Options: map[string]string{}}
			sections = append(sections, cur)
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("darknet: line %d: option outside any section", lineNo)
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return nil, fmt.Errorf("darknet: line %d: expected key=value, got %q", lineNo, line)
		}
		cur.Options[strings.TrimSpace(line[:eq])] = strings.TrimSpace(line[eq+1:])
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(sections) == 0 || sections[0].Name != "net" && sections[0].Name != "network" {
		return nil, fmt.Errorf("darknet: cfg must start with a [net] section")
	}
	return sections, nil
}
