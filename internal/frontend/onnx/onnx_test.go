package onnx

import (
	"testing"

	"repro/internal/relay"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// buildModel assembles a small ONNX classifier by hand: conv/relu ×2,
// global pool, flatten, gemm, softmax.
func buildModel(t *testing.T) []byte {
	t.Helper()
	rng := tensor.NewRNG(17)
	newT := func(shape ...int) *tensor.Tensor {
		x := tensor.New(tensor.Float32, tensor.Shape(shape))
		x.FillGlorot(rng, shape[len(shape)-1]*9, shape[0])
		return x
	}
	inits := []InitializerProto{}
	addInit := func(name string, x *tensor.Tensor) {
		ip, err := EncodeInitializer(name, x)
		if err != nil {
			t.Fatal(err)
		}
		inits = append(inits, ip)
	}
	addInit("w1", newT(8, 3, 3, 3)) // OIHW
	addInit("b1", tensor.New(tensor.Float32, tensor.Shape{8}))
	addInit("w2", newT(16, 8, 3, 3))
	addInit("b2", tensor.New(tensor.Float32, tensor.Shape{16}))
	addInit("fc_w", newT(5, 16))
	addInit("fc_b", tensor.New(tensor.Float32, tensor.Shape{5}))

	mp := &ModelProto{
		IRVersion:    7,
		ProducerName: "mxnet-onnx-export",
		Graph: GraphProto{
			Name: "classifier",
			Input: []ValueInfoProto{
				{Name: "data", Shape: []int{1, 3, 16, 16}, DType: "float32"},
				{Name: "w1"}, {Name: "b1"}, {Name: "w2"}, {Name: "b2"},
				{Name: "fc_w"}, {Name: "fc_b"},
			},
			Node: []NodeProto{
				{OpType: "Conv", Input: []string{"data", "w1", "b1"}, Output: []string{"c1"},
					Attribute: map[string]interface{}{
						"strides": []interface{}{1.0, 1.0},
						"pads":    []interface{}{1.0, 1.0, 1.0, 1.0}}},
				{OpType: "Relu", Input: []string{"c1"}, Output: []string{"r1"}},
				{OpType: "Conv", Input: []string{"r1", "w2", "b2"}, Output: []string{"c2"},
					Attribute: map[string]interface{}{
						"strides": []interface{}{2.0, 2.0},
						"pads":    []interface{}{1.0, 1.0, 1.0, 1.0}}},
				{OpType: "Relu", Input: []string{"c2"}, Output: []string{"r2"}},
				{OpType: "GlobalAveragePool", Input: []string{"r2"}, Output: []string{"g"}},
				{OpType: "Flatten", Input: []string{"g"}, Output: []string{"f"}},
				{OpType: "Gemm", Input: []string{"f", "fc_w", "fc_b"}, Output: []string{"fc"}},
				{OpType: "Softmax", Input: []string{"fc"}, Output: []string{"prob"}},
			},
			Output:      []string{"prob"},
			Initializer: inits,
		},
	}
	blob, err := Marshal(mp)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestFromONNXImportsAndRuns(t *testing.T) {
	mod, err := FromONNX(buildModel(t))
	if err != nil {
		t.Fatal(err)
	}
	main := mod.Main()
	it := main.Params[0].TypeAnnotation.(*relay.TensorType)
	if !it.Shape.Equal(tensor.Shape{1, 16, 16, 3}) {
		t.Errorf("input should be NHWC, got %s", it.Shape)
	}
	ret := main.CheckedType().(*relay.FuncType).Ret
	if !ret.Same(relay.TType(tensor.Float32, 1, 5)) {
		t.Errorf("output %s", ret)
	}
	lib, err := runtime.Build(mod, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
	if err != nil {
		t.Fatal(err)
	}
	gm := runtime.NewGraphModule(lib)
	in := tensor.New(tensor.Float32, tensor.Shape{1, 16, 16, 3})
	in.FillUniform(tensor.NewRNG(2), 0, 1)
	gm.SetInput("data", in)
	if err := gm.Run(); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := 0; i < 5; i++ {
		sum += gm.MustOutput(0).GetF(i)
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("softmax sums to %g", sum)
	}
}

func TestFromONNXRejectsUnknownOp(t *testing.T) {
	mp := &ModelProto{Graph: GraphProto{
		Input:  []ValueInfoProto{{Name: "x", Shape: []int{1, 3, 8, 8}}},
		Node:   []NodeProto{{OpType: "Einsum", Input: []string{"x"}, Output: []string{"y"}}},
		Output: []string{"y"},
	}}
	blob, _ := Marshal(mp)
	if _, err := FromONNX(blob); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestFromONNXBadJSON(t *testing.T) {
	if _, err := FromONNX([]byte("{oops")); err == nil {
		t.Error("bad json accepted")
	}
}

func TestInitializerRoundTrip(t *testing.T) {
	x := tensor.New(tensor.Float32, tensor.Shape{2, 3})
	x.FillUniform(tensor.NewRNG(1), -1, 1)
	ip, err := EncodeInitializer("w", x)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeInitializer(ip)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(x, back, 0, 0) {
		t.Error("initializer changed in round trip")
	}
	if _, err := decodeInitializer(InitializerProto{Name: "bad", Raw: "!!!"}); err == nil {
		t.Error("bad base64 accepted")
	}
}
