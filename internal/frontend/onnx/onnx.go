// Package onnx implements the ONNX frontend (and, through ONNX export, the
// MXNet path the paper's abstract lists). The serialized form is a JSON
// rendition of an ONNX ModelProto — graph nodes with op_type / inputs /
// outputs / attributes, typed value_info inputs, and initializers embedded
// as base64 tensors — see DESIGN.md §2 for the protobuf→JSON substitution.
//
// ONNX models are NCHW/OIHW; the importer emits an NHWC relay module,
// permuting convolution weights and remapping channel-indexed attributes,
// exactly like the TorchScript frontend.
package onnx

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"

	"repro/internal/relay"
	"repro/internal/tensor"
	"repro/internal/verify"
)

// ModelProto is the top-level serialized model.
type ModelProto struct {
	IRVersion    int        `json:"ir_version"`
	ProducerName string     `json:"producer_name"`
	Graph        GraphProto `json:"graph"`
}

// GraphProto is the graph body.
type GraphProto struct {
	Name        string             `json:"name"`
	Node        []NodeProto        `json:"node"`
	Input       []ValueInfoProto   `json:"input"`
	Output      []string           `json:"output"`
	Initializer []InitializerProto `json:"initializer"`
}

// NodeProto is one operator node.
type NodeProto struct {
	OpType    string                 `json:"op_type"`
	Input     []string               `json:"input"`
	Output    []string               `json:"output"`
	Attribute map[string]interface{} `json:"attribute,omitempty"`
}

// ValueInfoProto declares a graph input.
type ValueInfoProto struct {
	Name  string `json:"name"`
	Shape []int  `json:"shape"`
	DType string `json:"elem_type"`
}

// InitializerProto is an embedded weight tensor (base64 of the shared binary
// tensor format).
type InitializerProto struct {
	Name string `json:"name"`
	Raw  string `json:"raw_data"`
}

// Marshal serializes a model.
func Marshal(m *ModelProto) ([]byte, error) { return json.Marshal(m) }

// EncodeInitializer packs a tensor for embedding.
func EncodeInitializer(name string, t *tensor.Tensor) (InitializerProto, error) {
	var buf bytes.Buffer
	if err := t.Serialize(&buf); err != nil {
		return InitializerProto{}, err
	}
	return InitializerProto{Name: name, Raw: base64.StdEncoding.EncodeToString(buf.Bytes())}, nil
}

func decodeInitializer(ip InitializerProto) (*tensor.Tensor, error) {
	raw, err := base64.StdEncoding.DecodeString(ip.Raw)
	if err != nil {
		return nil, fmt.Errorf("onnx: initializer %q: %w", ip.Name, err)
	}
	return tensor.ReadFrom(bytes.NewReader(raw))
}

func nodeAttrInt(n NodeProto, key string, def int) int {
	if v, ok := n.Attribute[key].(float64); ok {
		return int(v)
	}
	return def
}

func nodeAttrFloat(n NodeProto, key string, def float64) float64 {
	if v, ok := n.Attribute[key].(float64); ok {
		return v
	}
	return def
}

func nodeAttrInts(n NodeProto, key string, def []int) []int {
	v, ok := n.Attribute[key].([]interface{})
	if !ok {
		return def
	}
	out := make([]int, len(v))
	for i, x := range v {
		f, ok := x.(float64)
		if !ok {
			return def
		}
		out[i] = int(f)
	}
	return out
}

// FromONNX parses and imports a serialized model.
func FromONNX(data []byte) (*relay.Module, error) {
	var mp ModelProto
	if err := json.Unmarshal(data, &mp); err != nil {
		return nil, fmt.Errorf("onnx: bad model json: %w", err)
	}
	return Import(&mp)
}

// Import lowers a parsed model to relay.
func Import(mp *ModelProto) (*relay.Module, error) {
	g := &mp.Graph
	imp := &importer{values: map[string]relay.Expr{}, params: map[string]*tensor.Tensor{}}
	for _, ip := range g.Initializer {
		t, err := decodeInitializer(ip)
		if err != nil {
			return nil, err
		}
		imp.params[ip.Name] = t
	}
	var vars []*relay.Var
	for _, in := range g.Input {
		if _, isParam := imp.params[in.Name]; isParam {
			continue // ONNX lists initializers among inputs too
		}
		shape, err := nchwToNHWC(in.Shape)
		if err != nil {
			return nil, fmt.Errorf("onnx: input %q: %v", in.Name, err)
		}
		v := relay.NewVar(in.Name, relay.TType(tensor.Float32, shape...))
		imp.values[in.Name] = v
		vars = append(vars, v)
	}
	if len(vars) == 0 {
		return nil, fmt.Errorf("onnx: graph has no runtime inputs")
	}
	for i, n := range g.Node {
		if err := imp.convert(n); err != nil {
			return nil, fmt.Errorf("onnx: node %d (%s): %w", i, n.OpType, err)
		}
	}
	var body relay.Expr
	switch len(g.Output) {
	case 0:
		return nil, fmt.Errorf("onnx: graph has no outputs")
	case 1:
		body = imp.values[g.Output[0]]
	default:
		fields := make([]relay.Expr, len(g.Output))
		for i, o := range g.Output {
			fields[i] = imp.values[o]
			if fields[i] == nil {
				return nil, fmt.Errorf("onnx: unknown output %q", o)
			}
		}
		body = relay.NewTuple(fields)
	}
	if body == nil {
		return nil, fmt.Errorf("onnx: unknown output %q", g.Output[0])
	}
	m := relay.NewModule(relay.NewFunc(vars, body))
	if err := relay.InferModule(m); err != nil {
		return nil, fmt.Errorf("onnx: imported module ill-typed: %w", err)
	}
	if err := verify.ModuleErr(m, verify.Options{}); err != nil {
		return nil, fmt.Errorf("onnx: imported module failed IR verification: %w", err)
	}
	return m, nil
}

func nchwToNHWC(s []int) ([]int, error) {
	switch len(s) {
	case 4:
		return []int{s[0], s[2], s[3], s[1]}, nil
	case 2:
		return append([]int(nil), s...), nil
	}
	return nil, fmt.Errorf("rank-%d shape %v unsupported", len(s), s)
}

type importer struct {
	values map[string]relay.Expr
	params map[string]*tensor.Tensor
}

func (imp *importer) value(name string) (relay.Expr, error) {
	if e, ok := imp.values[name]; ok {
		return e, nil
	}
	if p, ok := imp.params[name]; ok {
		c := relay.Const(p)
		imp.values[name] = c
		return c, nil
	}
	return nil, fmt.Errorf("unknown value %q", name)
}

func (imp *importer) param(name string) (*tensor.Tensor, error) {
	p, ok := imp.params[name]
	if !ok {
		return nil, fmt.Errorf("missing initializer %q", name)
	}
	return p, nil
}

func (imp *importer) set(name string, e relay.Expr) error {
	if _, err := relay.InferTypes(e); err != nil {
		return err
	}
	imp.values[name] = e
	return nil
}

func permuteOIHWtoOHWI(w *tensor.Tensor) *tensor.Tensor {
	o, i, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	out := tensor.New(tensor.Float32, tensor.Shape{o, kh, kw, i})
	src, dst := w.F32(), out.F32()
	for oo := 0; oo < o; oo++ {
		for ii := 0; ii < i; ii++ {
			for y := 0; y < kh; y++ {
				for x := 0; x < kw; x++ {
					dst[((oo*kh+y)*kw+x)*i+ii] = src[((oo*i+ii)*kh+y)*kw+x]
				}
			}
		}
	}
	return out
}

func (imp *importer) convert(n NodeProto) error {
	switch n.OpType {
	case "Conv":
		return imp.convertConv(n)
	case "Relu":
		return imp.unary(n, relay.OpReLU, nil)
	case "LeakyRelu":
		return imp.unary(n, relay.OpLeakyReLU, relay.Attrs{"alpha": nodeAttrFloat(n, "alpha", 0.01)})
	case "Sigmoid":
		return imp.unary(n, relay.OpSigmoid, nil)
	case "Tanh":
		return imp.unary(n, relay.OpTanh, nil)
	case "Clip":
		return imp.unary(n, relay.OpClip, relay.Attrs{
			"a_min": nodeAttrFloat(n, "min", 0), "a_max": nodeAttrFloat(n, "max", 6)})
	case "Dropout":
		return imp.unary(n, relay.OpDropout, nil)
	case "MaxPool", "AveragePool":
		k := nodeAttrInts(n, "kernel_shape", []int{2, 2})
		s := nodeAttrInts(n, "strides", k)
		pads := nodeAttrInts(n, "pads", []int{0, 0, 0, 0})
		op := relay.OpMaxPool2D
		if n.OpType == "AveragePool" {
			op = relay.OpAvgPool2D
		}
		return imp.unary(n, op, relay.Attrs{
			"pool_size": k, "strides": s,
			"padding": []int{pads[0], pads[1], pads[2], pads[3]},
		})
	case "GlobalAveragePool":
		return imp.unary(n, relay.OpGlobalAvgPool, nil)
	case "Add":
		return imp.binary(n, relay.OpAdd)
	case "Mul":
		return imp.binary(n, relay.OpMultiply)
	case "Concat":
		return imp.convertConcat(n)
	case "Softmax":
		return imp.unary(n, relay.OpSoftmax, nil)
	case "Flatten":
		return imp.convertFlatten(n)
	case "Gemm":
		return imp.convertGemm(n)
	case "BatchNormalization":
		return imp.convertBatchNorm(n)
	case "Upsample":
		return imp.unary(n, relay.OpUpsampling,
			relay.Attrs{"scale": nodeAttrInt(n, "scale", 2), "method": "nearest"})
	}
	return fmt.Errorf("ONNX operator %q not supported by the importer", n.OpType)
}

func (imp *importer) unary(n NodeProto, op *relay.Op, attrs relay.Attrs) error {
	x, err := imp.value(n.Input[0])
	if err != nil {
		return err
	}
	return imp.set(n.Output[0], relay.NewCall(op, []relay.Expr{x}, attrs))
}

func (imp *importer) binary(n NodeProto, op *relay.Op) error {
	a, err := imp.value(n.Input[0])
	if err != nil {
		return err
	}
	b, err := imp.value(n.Input[1])
	if err != nil {
		return err
	}
	return imp.set(n.Output[0], relay.NewCall(op, []relay.Expr{a, b}, nil))
}

func (imp *importer) convertConv(n NodeProto) error {
	x, err := imp.value(n.Input[0])
	if err != nil {
		return err
	}
	w, err := imp.param(n.Input[1])
	if err != nil {
		return err
	}
	strides := nodeAttrInts(n, "strides", []int{1, 1})
	pads := nodeAttrInts(n, "pads", []int{0, 0, 0, 0})
	groups := nodeAttrInt(n, "group", 1)
	conv := relay.NewCall(relay.OpConv2D, []relay.Expr{x, relay.Const(permuteOIHWtoOHWI(w))},
		relay.Attrs{"strides": strides,
			"padding": []int{pads[0], pads[1], pads[2], pads[3]}, "groups": groups})
	out := relay.Expr(conv)
	if len(n.Input) >= 3 {
		b, err := imp.param(n.Input[2])
		if err != nil {
			return err
		}
		out = relay.NewCall(relay.OpBiasAdd, []relay.Expr{conv, relay.Const(b)}, nil)
	}
	return imp.set(n.Output[0], out)
}

func (imp *importer) convertConcat(n NodeProto) error {
	fields := make([]relay.Expr, len(n.Input))
	rank := 0
	for i, in := range n.Input {
		e, err := imp.value(in)
		if err != nil {
			return err
		}
		fields[i] = e
		if tt, ok := e.CheckedType().(*relay.TensorType); ok {
			rank = len(tt.Shape)
		}
	}
	axis := nodeAttrInt(n, "axis", 1)
	if rank == 4 {
		// NCHW channel axis 1 → NHWC axis 3 (spatial axes likewise remapped).
		switch axis {
		case 1:
			axis = 3
		case 2:
			axis = 1
		case 3:
			axis = 2
		}
	}
	return imp.set(n.Output[0], relay.NewCall(relay.OpConcatenate,
		[]relay.Expr{relay.NewTuple(fields)}, relay.Attrs{"axis": axis}))
}

func (imp *importer) convertFlatten(n NodeProto) error {
	x, err := imp.value(n.Input[0])
	if err != nil {
		return err
	}
	tt, ok := x.CheckedType().(*relay.TensorType)
	if !ok {
		return fmt.Errorf("flatten input is not a tensor")
	}
	if len(tt.Shape) == 4 && (tt.Shape[1] != 1 || tt.Shape[2] != 1) {
		return fmt.Errorf("flatten of non-1x1 spatial tensor %s is layout-ambiguous", tt.Shape)
	}
	return imp.set(n.Output[0], relay.NewCall(relay.OpBatchFlatten, []relay.Expr{x}, nil))
}

func (imp *importer) convertGemm(n NodeProto) error {
	x, err := imp.value(n.Input[0])
	if err != nil {
		return err
	}
	w, err := imp.param(n.Input[1])
	if err != nil {
		return err
	}
	if nodeAttrInt(n, "transB", 1) != 1 {
		return fmt.Errorf("Gemm with transB=0 unsupported")
	}
	out := relay.Expr(relay.NewCall(relay.OpDense, []relay.Expr{x, relay.Const(w)}, nil))
	if len(n.Input) >= 3 {
		b, err := imp.param(n.Input[2])
		if err != nil {
			return err
		}
		out = relay.NewCall(relay.OpBiasAdd, []relay.Expr{out, relay.Const(b)}, nil)
	}
	return imp.set(n.Output[0], out)
}

func (imp *importer) convertBatchNorm(n NodeProto) error {
	if len(n.Input) != 5 {
		return fmt.Errorf("BatchNormalization expects 5 inputs")
	}
	x, err := imp.value(n.Input[0])
	if err != nil {
		return err
	}
	args := []relay.Expr{x}
	for _, pn := range n.Input[1:] {
		p, err := imp.param(pn)
		if err != nil {
			return err
		}
		args = append(args, relay.Const(p))
	}
	return imp.set(n.Output[0], relay.NewCall(relay.OpBatchNorm, args,
		relay.Attrs{"epsilon": nodeAttrFloat(n, "epsilon", 1e-5)}))
}
