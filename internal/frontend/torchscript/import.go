package torchscript

import (
	"fmt"

	"repro/internal/relay"
	"repro/internal/tensor"
	"repro/internal/verify"
)

// FromTorch imports a traced graph + state dict into a relay module —
// relay.frontend.from_pytorch of Listing 2. The returned module is NHWC: the
// data input expects NHWC tensors and convolution weights have been permuted
// OIHW→OHWI at import time.
func FromTorch(g *Graph, params StateDict) (*relay.Module, error) {
	if len(g.Inputs) == 0 {
		return nil, fmt.Errorf("torchscript: graph has no inputs")
	}
	imp := &importer{values: map[string]relay.Expr{}, params: params}
	var vars []*relay.Var
	for _, in := range g.Inputs {
		if in.DType != "" && in.DType != "float32" {
			return nil, fmt.Errorf("torchscript: input %q dtype %s unsupported", in.Name, in.DType)
		}
		shape, err := nchwToNHWC(in.Shape)
		if err != nil {
			return nil, fmt.Errorf("torchscript: input %q: %v", in.Name, err)
		}
		v := relay.NewVar(in.Name, relay.TType(tensor.Float32, shape...))
		imp.values[in.Name] = v
		vars = append(vars, v)
	}
	for i, n := range g.Nodes {
		if err := imp.convertNode(n); err != nil {
			return nil, fmt.Errorf("torchscript: node %d (%s): %w", i, n.Op, err)
		}
	}
	var body relay.Expr
	switch len(g.Outputs) {
	case 0:
		return nil, fmt.Errorf("torchscript: graph has no outputs")
	case 1:
		body = imp.values[g.Outputs[0]]
	default:
		fields := make([]relay.Expr, len(g.Outputs))
		for i, o := range g.Outputs {
			fields[i] = imp.values[o]
			if fields[i] == nil {
				return nil, fmt.Errorf("torchscript: unknown output %q", o)
			}
		}
		body = relay.NewTuple(fields)
	}
	if body == nil {
		return nil, fmt.Errorf("torchscript: unknown output %q", g.Outputs[0])
	}
	m := relay.NewModule(relay.NewFunc(vars, body))
	if err := relay.InferModule(m); err != nil {
		return nil, fmt.Errorf("torchscript: imported module ill-typed: %w", err)
	}
	if err := verify.ModuleErr(m, verify.Options{}); err != nil {
		return nil, fmt.Errorf("torchscript: imported module failed IR verification: %w", err)
	}
	return m, nil
}

// nchwToNHWC converts a 4-D shape; 2-D shapes pass through.
func nchwToNHWC(s []int) ([]int, error) {
	switch len(s) {
	case 4:
		return []int{s[0], s[2], s[3], s[1]}, nil
	case 2:
		return append([]int(nil), s...), nil
	}
	return nil, fmt.Errorf("rank-%d shape %v unsupported", len(s), s)
}

type importer struct {
	values map[string]relay.Expr
	params StateDict
}

func (imp *importer) value(name string) (relay.Expr, error) {
	if e, ok := imp.values[name]; ok {
		return e, nil
	}
	if p, ok := imp.params[name]; ok {
		c := relay.Const(p)
		imp.values[name] = c
		return c, nil
	}
	return nil, fmt.Errorf("unknown value %q", name)
}

// param fetches a raw parameter tensor (bypassing the value map).
func (imp *importer) param(name string) (*tensor.Tensor, error) {
	p, ok := imp.params[name]
	if !ok {
		return nil, fmt.Errorf("missing parameter %q", name)
	}
	return p, nil
}

func (imp *importer) set(name string, e relay.Expr) error {
	if _, err := relay.InferTypes(e); err != nil {
		return err
	}
	imp.values[name] = e
	return nil
}

func (imp *importer) convertNode(n Node) error {
	switch n.Op {
	case "aten::_convolution", "aten::conv2d":
		return imp.convertConv(n)
	case "aten::relu":
		return imp.unary(n, relay.OpReLU, nil)
	case "aten::leaky_relu":
		return imp.unary(n, relay.OpLeakyReLU, relay.Attrs{"alpha": n.attrFloat("negative_slope", 0.01)})
	case "aten::sigmoid":
		return imp.unary(n, relay.OpSigmoid, nil)
	case "aten::tanh":
		return imp.unary(n, relay.OpTanh, nil)
	case "aten::hardtanh":
		return imp.unary(n, relay.OpClip, relay.Attrs{
			"a_min": n.attrFloat("min_val", 0), "a_max": n.attrFloat("max_val", 6)})
	case "aten::dropout":
		return imp.unary(n, relay.OpDropout, relay.Attrs{"rate": n.attrFloat("p", 0.5)})
	case "aten::max_pool2d":
		k := n.attrInts("kernel_size", []int{2, 2})
		s := n.attrInts("stride", k)
		return imp.unary(n, relay.OpMaxPool2D, relay.Attrs{"pool_size": k, "strides": s})
	case "aten::avg_pool2d":
		k := n.attrInts("kernel_size", []int{2, 2})
		s := n.attrInts("stride", k)
		return imp.unary(n, relay.OpAvgPool2D, relay.Attrs{"pool_size": k, "strides": s})
	case "aten::adaptive_avg_pool2d":
		out := n.attrInts("output_size", []int{1, 1})
		if len(out) != 2 || out[0] != 1 || out[1] != 1 {
			return fmt.Errorf("adaptive_avg_pool2d only supports 1x1 output, got %v", out)
		}
		return imp.unary(n, relay.OpGlobalAvgPool, nil)
	case "aten::batch_norm":
		return imp.convertBatchNorm(n)
	case "aten::add":
		return imp.binary(n, relay.OpAdd)
	case "aten::mul":
		return imp.binary(n, relay.OpMultiply)
	case "aten::cat":
		return imp.convertCat(n)
	case "aten::mean":
		return imp.convertMean(n)
	case "aten::flatten":
		return imp.convertFlatten(n)
	case "aten::linear":
		return imp.convertLinear(n)
	case "aten::softmax":
		return imp.convertSoftmax(n)
	case "aten::upsample_nearest2d":
		return imp.unary(n, relay.OpUpsampling,
			relay.Attrs{"scale": n.attrInt("scale_factor", 2), "method": "nearest"})
	}
	return fmt.Errorf("aten operator %q not supported by the importer", n.Op)
}

func (imp *importer) unary(n Node, op *relay.Op, attrs relay.Attrs) error {
	if len(n.Inputs) != 1 {
		return fmt.Errorf("expects 1 input, got %d", len(n.Inputs))
	}
	x, err := imp.value(n.Inputs[0])
	if err != nil {
		return err
	}
	return imp.set(n.Output, relay.NewCall(op, []relay.Expr{x}, attrs))
}

func (imp *importer) binary(n Node, op *relay.Op) error {
	if len(n.Inputs) != 2 {
		return fmt.Errorf("expects 2 inputs, got %d", len(n.Inputs))
	}
	a, err := imp.value(n.Inputs[0])
	if err != nil {
		return err
	}
	b, err := imp.value(n.Inputs[1])
	if err != nil {
		return err
	}
	return imp.set(n.Output, relay.NewCall(op, []relay.Expr{a, b}, nil))
}

// permuteOIHWtoOHWI rewrites conv weights into the stack's layout.
func permuteOIHWtoOHWI(w *tensor.Tensor) *tensor.Tensor {
	o, i, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	out := tensor.New(tensor.Float32, tensor.Shape{o, kh, kw, i})
	src := w.F32()
	dst := out.F32()
	for oo := 0; oo < o; oo++ {
		for ii := 0; ii < i; ii++ {
			for y := 0; y < kh; y++ {
				for x := 0; x < kw; x++ {
					dst[((oo*kh+y)*kw+x)*i+ii] = src[((oo*i+ii)*kh+y)*kw+x]
				}
			}
		}
	}
	return out
}

func (imp *importer) convertConv(n Node) error {
	if len(n.Inputs) < 2 {
		return fmt.Errorf("convolution expects x, weight[, bias]")
	}
	x, err := imp.value(n.Inputs[0])
	if err != nil {
		return err
	}
	w, err := imp.param(n.Inputs[1])
	if err != nil {
		return err
	}
	if len(w.Shape) != 4 {
		return fmt.Errorf("conv weight rank %d", len(w.Shape))
	}
	stride := n.attrInts("stride", []int{1, 1})
	pad := n.attrInts("padding", []int{0, 0})
	dilation := n.attrInts("dilation", []int{1, 1})
	groups := n.attrInt("groups", 1)
	conv := relay.NewCall(relay.OpConv2D,
		[]relay.Expr{x, relay.Const(permuteOIHWtoOHWI(w))},
		relay.Attrs{"strides": stride, "padding": pad, "dilation": dilation, "groups": groups})
	out := relay.Expr(conv)
	if len(n.Inputs) >= 3 {
		b, err := imp.param(n.Inputs[2])
		if err != nil {
			return err
		}
		out = relay.NewCall(relay.OpBiasAdd, []relay.Expr{conv, relay.Const(b)}, nil)
	}
	return imp.set(n.Output, out)
}

func (imp *importer) convertBatchNorm(n Node) error {
	if len(n.Inputs) != 5 {
		return fmt.Errorf("batch_norm expects x + 4 params")
	}
	x, err := imp.value(n.Inputs[0])
	if err != nil {
		return err
	}
	args := []relay.Expr{x}
	for _, pn := range n.Inputs[1:] {
		p, err := imp.param(pn)
		if err != nil {
			return err
		}
		args = append(args, relay.Const(p))
	}
	return imp.set(n.Output, relay.NewCall(relay.OpBatchNorm, args,
		relay.Attrs{"epsilon": n.attrFloat("eps", 1e-5)}))
}

func (imp *importer) convertCat(n Node) error {
	fields := make([]relay.Expr, len(n.Inputs))
	var rank int
	for i, in := range n.Inputs {
		e, err := imp.value(in)
		if err != nil {
			return err
		}
		fields[i] = e
		if tt, ok := e.CheckedType().(*relay.TensorType); ok {
			rank = len(tt.Shape)
		}
	}
	dim := n.attrInt("dim", 1)
	axis, err := translateAxis(dim, rank)
	if err != nil {
		return err
	}
	return imp.set(n.Output, relay.NewCall(relay.OpConcatenate,
		[]relay.Expr{relay.NewTuple(fields)}, relay.Attrs{"axis": axis}))
}

// translateAxis maps an NCHW dim to the NHWC axis for 4-D values (identity
// for 2-D).
func translateAxis(dim, rank int) (int, error) {
	if dim < 0 {
		dim += rank
	}
	if rank != 4 {
		return dim, nil
	}
	switch dim {
	case 0:
		return 0, nil
	case 1:
		return 3, nil
	case 2:
		return 1, nil
	case 3:
		return 2, nil
	}
	return 0, fmt.Errorf("dim %d out of range", dim)
}

func (imp *importer) convertMean(n Node) error {
	x, err := imp.value(n.Inputs[0])
	if err != nil {
		return err
	}
	dims := n.attrInts("dim", nil)
	tt, ok := x.CheckedType().(*relay.TensorType)
	if !ok {
		return fmt.Errorf("mean input is not a tensor")
	}
	axes := make([]int, len(dims))
	for i, d := range dims {
		a, err := translateAxis(d, len(tt.Shape))
		if err != nil {
			return err
		}
		axes[i] = a
	}
	return imp.set(n.Output, relay.NewCall(relay.OpMean, []relay.Expr{x},
		relay.Attrs{"axis": axes, "keepdims": false}))
}

func (imp *importer) convertFlatten(n Node) error {
	x, err := imp.value(n.Inputs[0])
	if err != nil {
		return err
	}
	tt, ok := x.CheckedType().(*relay.TensorType)
	if !ok {
		return fmt.Errorf("flatten input is not a tensor")
	}
	if len(tt.Shape) == 4 && (tt.Shape[1] != 1 || tt.Shape[2] != 1) {
		// Flattening a spatial NCHW tensor produces a channel-major order
		// this NHWC importer cannot reproduce without a transpose; the
		// models in the zoo flatten only after global pooling.
		return fmt.Errorf("flatten of non-1x1 spatial tensor %s is layout-ambiguous; "+
			"pool to 1x1 first", tt.Shape)
	}
	return imp.set(n.Output, relay.NewCall(relay.OpBatchFlatten, []relay.Expr{x}, nil))
}

func (imp *importer) convertLinear(n Node) error {
	if len(n.Inputs) < 2 {
		return fmt.Errorf("linear expects x, weight[, bias]")
	}
	x, err := imp.value(n.Inputs[0])
	if err != nil {
		return err
	}
	w, err := imp.param(n.Inputs[1])
	if err != nil {
		return err
	}
	out := relay.Expr(relay.NewCall(relay.OpDense, []relay.Expr{x, relay.Const(w)}, nil))
	if len(n.Inputs) >= 3 {
		b, err := imp.param(n.Inputs[2])
		if err != nil {
			return err
		}
		out = relay.NewCall(relay.OpBiasAdd, []relay.Expr{out, relay.Const(b)}, nil)
	}
	return imp.set(n.Output, out)
}

func (imp *importer) convertSoftmax(n Node) error {
	x, err := imp.value(n.Inputs[0])
	if err != nil {
		return err
	}
	tt, ok := x.CheckedType().(*relay.TensorType)
	if !ok {
		return fmt.Errorf("softmax input is not a tensor")
	}
	dim := n.attrInt("dim", -1)
	if dim < 0 {
		dim += len(tt.Shape)
	}
	if dim != len(tt.Shape)-1 {
		return fmt.Errorf("softmax over dim %d of rank-%d value unsupported (last dim only)", dim, len(tt.Shape))
	}
	return imp.set(n.Output, relay.NewCall(relay.OpSoftmax, []relay.Expr{x}, nil))
}
