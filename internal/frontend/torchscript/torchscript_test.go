package torchscript

import (
	"bytes"
	"testing"

	"repro/internal/relay"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// traceMiniPixBiS builds a scaled-down DeePixBiS-style network: conv/bn/relu
// stem, a dense-style concat block, a 1x1 conv to a pixel map with sigmoid,
// and a mean-pooled binary score — two outputs like the real model.
func traceMiniPixBiS(t *testing.T) (*Graph, StateDict) {
	t.Helper()
	tr := NewTracer(7)
	x := tr.Input(1, 3, 32, 32)
	c1 := tr.Conv2D(x, 8, 3, 1, 1, 1)
	b1 := tr.BatchNorm(c1)
	r1 := tr.ReLU(b1)
	// dense-block flavored concat
	c2 := tr.Conv2D(r1, 8, 3, 1, 1, 1)
	r2 := tr.ReLU(c2)
	cat := tr.Cat(1, r1, r2)
	p := tr.MaxPool2D(cat, 2, 2)
	// pixel-wise supervision head
	pix := tr.Conv2D(p, 1, 1, 1, 0, 1)
	pixmap := tr.Sigmoid(pix)
	score := tr.MeanSpatial(pixmap)
	tr.Output(pixmap, score)
	g, sd, err := tr.Trace()
	if err != nil {
		t.Fatal(err)
	}
	return g, sd
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	g, sd := traceMiniPixBiS(t)
	blob, err := MarshalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := UnmarshalGraph(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Nodes) != len(g.Nodes) || len(g2.Outputs) != 2 {
		t.Fatalf("graph changed: %d nodes, %d outputs", len(g2.Nodes), len(g2.Outputs))
	}
	var buf bytes.Buffer
	if err := sd.Save(&buf); err != nil {
		t.Fatal(err)
	}
	sd2, err := LoadStateDict(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(sd2) != len(sd) {
		t.Fatalf("state dict %d vs %d entries", len(sd2), len(sd))
	}
}

func TestFromTorchImports(t *testing.T) {
	g, sd := traceMiniPixBiS(t)
	m, err := FromTorch(g, sd)
	if err != nil {
		t.Fatal(err)
	}
	main := m.Main()
	// Input must be NHWC.
	it := main.Params[0].TypeAnnotation.(*relay.TensorType)
	if !it.Shape.Equal(tensor.Shape{1, 32, 32, 3}) {
		t.Errorf("imported input shape %s, want NHWC (1,32,32,3)", it.Shape)
	}
	if n := relay.CountOps(main, "nn.conv2d"); n != 3 {
		t.Errorf("conv count %d", n)
	}
	if n := relay.CountOps(main, "concatenate"); n != 1 {
		t.Errorf("concat count %d", n)
	}
	// Two outputs (pixel map + score).
	if _, ok := main.Body.(*relay.Tuple); !ok {
		t.Errorf("expected tuple output, got %T", main.Body)
	}
}

// TestImportMatchesPyTorchReference reproduces the paper's §4.1 check: run
// the original (reference NCHW) model and the TVM-imported model and compare.
func TestImportMatchesPyTorchReference(t *testing.T) {
	g, sd := traceMiniPixBiS(t)

	// Reference (PyTorch-side) execution, NCHW.
	inNCHW := tensor.New(tensor.Float32, tensor.Shape{1, 3, 32, 32})
	inNCHW.FillUniform(tensor.NewRNG(99), 0, 1)
	refOut, err := Reference(g, sd, map[string]*tensor.Tensor{g.Inputs[0].Name: inNCHW})
	if err != nil {
		t.Fatal(err)
	}

	// TVM-side execution, NHWC.
	m, err := FromTorch(g, sd)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	gm := runtime.NewGraphModule(lib)
	gm.SetInput(gm.InputNames()[0], NCHWToNHWC(inNCHW))
	if err := gm.Run(); err != nil {
		t.Fatal(err)
	}
	gotPix := NHWCToNCHW(gm.MustOutput(0))
	wantPix := refOut[g.Outputs[0]]
	if !tensor.AllClose(gotPix, wantPix, 1e-3, 1e-3) {
		t.Errorf("pixel map differs from PyTorch reference, max %g", tensor.MaxAbsDiff(gotPix, wantPix))
	}
	gotScore := gm.MustOutput(1)
	wantScore := refOut[g.Outputs[1]]
	if !tensor.AllClose(gotScore, wantScore, 1e-3, 1e-3) {
		t.Errorf("score differs from PyTorch reference, max %g", tensor.MaxAbsDiff(gotScore, wantScore))
	}
}

// And the same equivalence must hold through the BYOC path.
func TestImportMatchesReferenceThroughBYOC(t *testing.T) {
	g, sd := traceMiniPixBiS(t)
	inNCHW := tensor.New(tensor.Float32, tensor.Shape{1, 3, 32, 32})
	inNCHW.FillUniform(tensor.NewRNG(123), 0, 1)
	refOut, err := Reference(g, sd, map[string]*tensor.Tensor{g.Inputs[0].Name: inNCHW})
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromTorch(g, sd)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
	if err != nil {
		t.Fatal(err)
	}
	gm := runtime.NewGraphModule(lib)
	gm.SetInput(gm.InputNames()[0], NCHWToNHWC(inNCHW))
	if err := gm.Run(); err != nil {
		t.Fatal(err)
	}
	gotPix := NHWCToNCHW(gm.MustOutput(0))
	if !tensor.AllClose(gotPix, refOut[g.Outputs[0]], 1e-3, 1e-3) {
		t.Errorf("BYOC pixel map differs from reference, max %g",
			tensor.MaxAbsDiff(gotPix, refOut[g.Outputs[0]]))
	}
}

func TestLayoutConversions(t *testing.T) {
	x := tensor.New(tensor.Float32, tensor.Shape{2, 3, 4, 5})
	x.FillUniform(tensor.NewRNG(5), -1, 1)
	back := NHWCToNCHW(NCHWToNHWC(x))
	if !tensor.AllClose(x, back, 0, 0) {
		t.Error("layout conversion not invertible")
	}
}

func TestImportRejectsUnknownOp(t *testing.T) {
	g := &Graph{
		Inputs:  []ValueInfo{{Name: "x", Shape: []int{1, 3, 8, 8}, DType: "float32"}},
		Nodes:   []Node{{Op: "aten::frobnicate", Inputs: []string{"x"}, Output: "y"}},
		Outputs: []string{"y"},
	}
	if _, err := FromTorch(g, StateDict{}); err == nil {
		t.Error("unknown aten op accepted")
	}
}

func TestImportRejectsAmbiguousFlatten(t *testing.T) {
	tr := NewTracer(1)
	x := tr.Input(1, 3, 8, 8)
	f := tr.Flatten(x) // spatial 8x8: layout-ambiguous
	tr.Output(f)
	g, sd, err := tr.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromTorch(g, sd); err == nil {
		t.Error("layout-ambiguous flatten accepted")
	}
}

func TestLinearAfterGlobalPool(t *testing.T) {
	tr := NewTracer(2)
	x := tr.Input(1, 3, 8, 8)
	c := tr.Conv2D(x, 8, 3, 1, 1, 1)
	gp := tr.AdaptiveAvgPool2D1x1(c)
	fl := tr.Flatten(gp)
	fc := tr.Linear(fl, 5)
	sm := tr.Softmax(fc, 1)
	tr.Output(sm)
	g, sd, err := tr.Trace()
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromTorch(g, sd)
	if err != nil {
		t.Fatal(err)
	}
	// Verify against reference.
	inNCHW := tensor.New(tensor.Float32, tensor.Shape{1, 3, 8, 8})
	inNCHW.FillUniform(tensor.NewRNG(77), -1, 1)
	refOut, err := Reference(g, sd, map[string]*tensor.Tensor{g.Inputs[0].Name: inNCHW})
	if err != nil {
		t.Fatal(err)
	}
	lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	gm := runtime.NewGraphModule(lib)
	gm.SetInput(gm.InputNames()[0], NCHWToNHWC(inNCHW))
	if err := gm.Run(); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(gm.MustOutput(0), refOut[g.Outputs[0]], 1e-4, 1e-4) {
		t.Errorf("linear head differs from reference, max %g",
			tensor.MaxAbsDiff(gm.MustOutput(0), refOut[g.Outputs[0]]))
	}
}
