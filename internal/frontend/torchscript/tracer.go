package torchscript

import (
	"fmt"

	"repro/internal/tensor"
)

// Tracer is the authoring side: the stand-in for defining an nn.Module and
// running torch.jit.trace over it. The model zoo builds the DeePixBiS
// anti-spoofing network through this API; parameters are synthesized
// deterministically and the result serializes into the trace JSON +
// state-dict blob the importer consumes.
type Tracer struct {
	graph  Graph
	params StateDict
	rng    *tensor.RNG
	shapes map[string][]int // NCHW shapes of every value
	nextID int
	err    error
}

// NewTracer starts a trace.
func NewTracer(seed uint64) *Tracer {
	return &Tracer{
		graph:  Graph{Producer: "torch.jit.trace"},
		params: StateDict{},
		rng:    tensor.NewRNG(seed),
		shapes: map[string][]int{},
	}
}

// Err returns the first building error.
func (t *Tracer) Err() error { return t.err }

func (t *Tracer) fail(format string, args ...interface{}) string {
	if t.err == nil {
		t.err = fmt.Errorf("torch trace: "+format, args...)
	}
	return ""
}

func (t *Tracer) fresh(prefix string) string {
	t.nextID++
	return fmt.Sprintf("%s.%d", prefix, t.nextID)
}

// Input declares the graph input (NCHW).
func (t *Tracer) Input(n, c, h, w int) string {
	name := t.fresh("input")
	t.graph.Inputs = append(t.graph.Inputs, ValueInfo{Name: name, Shape: []int{n, c, h, w}, DType: "float32"})
	t.shapes[name] = []int{n, c, h, w}
	return name
}

// Output marks graph outputs.
func (t *Tracer) Output(names ...string) { t.graph.Outputs = append(t.graph.Outputs, names...) }

func (t *Tracer) node(op, out string, inputs []string, attrs map[string]interface{}, outShape []int) string {
	t.graph.Nodes = append(t.graph.Nodes, Node{Op: op, Inputs: inputs, Output: out, Attrs: attrs})
	t.shapes[out] = outShape
	return out
}

func (t *Tracer) newParam(name string, shape tensor.Shape, fanIn, fanOut int) {
	p := tensor.New(tensor.Float32, shape)
	p.FillGlorot(t.rng, fanIn, fanOut)
	t.params[name] = p
}

// Conv2D adds aten::_convolution with bias; weights are OIHW as in PyTorch.
func (t *Tracer) Conv2D(x string, outC, kernel, stride, pad, groups int) string {
	s, ok := t.shapes[x]
	if !ok || len(s) != 4 {
		return t.fail("conv input %q has shape %v", x, s)
	}
	inC := s[1]
	if inC%groups != 0 || outC%groups != 0 {
		return t.fail("conv groups %d incompatible with channels %d->%d", groups, inC, outC)
	}
	wName := t.fresh("weight")
	bName := t.fresh("bias")
	t.newParam(wName, tensor.Shape{outC, inC / groups, kernel, kernel}, kernel*kernel*inC/groups, outC)
	t.params[bName] = tensor.New(tensor.Float32, tensor.Shape{outC})
	oh := (s[2]+2*pad-kernel)/stride + 1
	ow := (s[3]+2*pad-kernel)/stride + 1
	out := t.fresh("conv")
	return t.node("aten::_convolution", out, []string{x, wName, bName}, map[string]interface{}{
		"stride":   []interface{}{float64(stride), float64(stride)},
		"padding":  []interface{}{float64(pad), float64(pad)},
		"dilation": []interface{}{float64(1), float64(1)},
		"groups":   float64(groups),
	}, []int{s[0], outC, oh, ow})
}

func (t *Tracer) unary(op, prefix, x string, attrs map[string]interface{}) string {
	s, ok := t.shapes[x]
	if !ok {
		return t.fail("%s input %q unknown", op, x)
	}
	out := t.fresh(prefix)
	return t.node(op, out, []string{x}, attrs, append([]int(nil), s...))
}

// ReLU adds aten::relu.
func (t *Tracer) ReLU(x string) string { return t.unary("aten::relu", "relu", x, nil) }

// LeakyReLU adds aten::leaky_relu.
func (t *Tracer) LeakyReLU(x string, slope float64) string {
	return t.unary("aten::leaky_relu", "leaky", x, map[string]interface{}{"negative_slope": slope})
}

// Sigmoid adds aten::sigmoid.
func (t *Tracer) Sigmoid(x string) string { return t.unary("aten::sigmoid", "sig", x, nil) }

// Tanh adds aten::tanh.
func (t *Tracer) Tanh(x string) string { return t.unary("aten::tanh", "tanh", x, nil) }

// HardTanh adds aten::hardtanh (relu6 when 0..6).
func (t *Tracer) HardTanh(x string, min, max float64) string {
	return t.unary("aten::hardtanh", "htanh", x, map[string]interface{}{"min_val": min, "max_val": max})
}

// MaxPool2D adds aten::max_pool2d.
func (t *Tracer) MaxPool2D(x string, kernel, stride int) string {
	s := t.shapes[x]
	if len(s) != 4 {
		return t.fail("max_pool input %q shape %v", x, s)
	}
	out := t.fresh("pool")
	oh := (s[2]-kernel)/stride + 1
	ow := (s[3]-kernel)/stride + 1
	return t.node("aten::max_pool2d", out, []string{x}, map[string]interface{}{
		"kernel_size": []interface{}{float64(kernel), float64(kernel)},
		"stride":      []interface{}{float64(stride), float64(stride)},
	}, []int{s[0], s[1], oh, ow})
}

// AdaptiveAvgPool2D1x1 adds aten::adaptive_avg_pool2d with output 1x1.
func (t *Tracer) AdaptiveAvgPool2D1x1(x string) string {
	s := t.shapes[x]
	if len(s) != 4 {
		return t.fail("adaptive pool input %q shape %v", x, s)
	}
	out := t.fresh("gap")
	return t.node("aten::adaptive_avg_pool2d", out, []string{x}, map[string]interface{}{
		"output_size": []interface{}{float64(1), float64(1)},
	}, []int{s[0], s[1], 1, 1})
}

// BatchNorm adds aten::batch_norm with synthesized statistics.
func (t *Tracer) BatchNorm(x string) string {
	s := t.shapes[x]
	if len(s) != 4 {
		return t.fail("batch_norm input %q shape %v", x, s)
	}
	c := s[1]
	mk := func(prefix string, lo, hi float64) string {
		name := t.fresh(prefix)
		p := tensor.New(tensor.Float32, tensor.Shape{c})
		p.FillUniform(t.rng, lo, hi)
		t.params[name] = p
		return name
	}
	g := mk("bn.gamma", 0.8, 1.2)
	b := mk("bn.beta", -0.1, 0.1)
	m := mk("bn.mean", -0.2, 0.2)
	v := mk("bn.var", 0.5, 1.5)
	out := t.fresh("bn")
	return t.node("aten::batch_norm", out, []string{x, g, b, m, v},
		map[string]interface{}{"eps": 1e-5}, append([]int(nil), s...))
}

// Add adds aten::add (same-shape residual).
func (t *Tracer) Add(a, b string) string {
	sa, sb := t.shapes[a], t.shapes[b]
	if len(sa) == 0 || len(sb) == 0 {
		return t.fail("add inputs %q/%q unknown", a, b)
	}
	out := t.fresh("add")
	return t.node("aten::add", out, []string{a, b}, nil, append([]int(nil), sa...))
}

// Cat adds aten::cat along dim (NCHW dim).
func (t *Tracer) Cat(dim int, xs ...string) string {
	if len(xs) == 0 {
		return t.fail("cat of nothing")
	}
	base := append([]int(nil), t.shapes[xs[0]]...)
	for _, x := range xs[1:] {
		s := t.shapes[x]
		if len(s) != len(base) {
			return t.fail("cat rank mismatch")
		}
		base[dim] += s[dim]
	}
	out := t.fresh("cat")
	return t.node("aten::cat", out, xs, map[string]interface{}{"dim": float64(dim)}, base)
}

// Mean adds aten::mean over spatial dims (NCHW [2,3]).
func (t *Tracer) MeanSpatial(x string) string {
	s := t.shapes[x]
	if len(s) != 4 {
		return t.fail("mean input %q shape %v", x, s)
	}
	out := t.fresh("mean")
	return t.node("aten::mean", out, []string{x}, map[string]interface{}{
		"dim": []interface{}{float64(2), float64(3)},
	}, []int{s[0], s[1]})
}

// Flatten adds aten::flatten(start_dim=1). Only valid when the spatial area
// is 1x1 (layout-independent); the importer rejects other uses.
func (t *Tracer) Flatten(x string) string {
	s := t.shapes[x]
	n := 1
	for _, d := range s[1:] {
		n *= d
	}
	out := t.fresh("flat")
	return t.node("aten::flatten", out, []string{x}, map[string]interface{}{"start_dim": float64(1)}, []int{s[0], n})
}

// Linear adds aten::linear over a 2-D value.
func (t *Tracer) Linear(x string, units int) string {
	s := t.shapes[x]
	if len(s) != 2 {
		return t.fail("linear input %q shape %v", x, s)
	}
	wName := t.fresh("weight")
	bName := t.fresh("bias")
	t.newParam(wName, tensor.Shape{units, s[1]}, s[1], units)
	t.params[bName] = tensor.New(tensor.Float32, tensor.Shape{units})
	out := t.fresh("linear")
	return t.node("aten::linear", out, []string{x, wName, bName}, nil, []int{s[0], units})
}

// Softmax adds aten::softmax over dim.
func (t *Tracer) Softmax(x string, dim int) string {
	return t.unary("aten::softmax", "softmax", x, map[string]interface{}{"dim": float64(dim)})
}

// Dropout adds aten::dropout.
func (t *Tracer) Dropout(x string, p float64) string {
	return t.unary("aten::dropout", "drop", x, map[string]interface{}{"p": p})
}

// UpsampleNearest2x adds aten::upsample_nearest2d with scale 2.
func (t *Tracer) UpsampleNearest2x(x string) string {
	s := t.shapes[x]
	if len(s) != 4 {
		return t.fail("upsample input %q shape %v", x, s)
	}
	out := t.fresh("up")
	return t.node("aten::upsample_nearest2d", out, []string{x},
		map[string]interface{}{"scale_factor": float64(2)}, []int{s[0], s[1], s[2] * 2, s[3] * 2})
}

// Shape returns the traced NCHW shape of a value.
func (t *Tracer) Shape(x string) []int { return append([]int(nil), t.shapes[x]...) }

// Trace finalizes the graph (torch.jit.trace output).
func (t *Tracer) Trace() (*Graph, StateDict, error) {
	if t.err != nil {
		return nil, nil, t.err
	}
	if len(t.graph.Outputs) == 0 {
		return nil, nil, fmt.Errorf("torch trace: no outputs marked")
	}
	return &t.graph, t.params, nil
}
