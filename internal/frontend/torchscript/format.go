// Package torchscript implements the PyTorch frontend of the stack: the
// paper's anti-spoofing model arrives as a TorchScript trace
// (torch.jit.trace) and is imported with relay.frontend.from_pytorch
// (Listing 2). The serialized form here is a JSON rendition of the traced
// graph — aten:: operator nodes over named values — plus a state_dict blob
// of named parameter tensors.
//
// PyTorch is NCHW/OIHW; the importer performs the layout conversion TVM's
// from_pytorch + ConvertLayout would: activations become NHWC (the imported
// module's input is NHWC), convolution weights are permuted to OHWI, and
// channel-indexed attributes (cat dim, softmax dim, mean dims) are remapped.
package torchscript

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/tensor"
)

// Graph is the serialized traced graph.
type Graph struct {
	Producer string      `json:"producer"`
	Inputs   []ValueInfo `json:"inputs"`
	Nodes    []Node      `json:"nodes"`
	Outputs  []string    `json:"outputs"`
}

// ValueInfo declares a graph input (NCHW shape, as PyTorch reports it).
type ValueInfo struct {
	Name  string `json:"name"`
	Shape []int  `json:"shape"`
	DType string `json:"dtype"`
}

// Node is one traced aten:: operator application.
type Node struct {
	Op     string                 `json:"op"`
	Inputs []string               `json:"inputs"`
	Output string                 `json:"output"`
	Attrs  map[string]interface{} `json:"attrs,omitempty"`
}

func (n Node) attrInt(key string, def int) int {
	v, ok := n.Attrs[key]
	if !ok {
		return def
	}
	switch vv := v.(type) {
	case float64:
		return int(vv)
	case int:
		return vv
	}
	return def
}

func (n Node) attrFloat(key string, def float64) float64 {
	v, ok := n.Attrs[key]
	if !ok {
		return def
	}
	switch vv := v.(type) {
	case float64:
		return vv
	case int:
		return float64(vv)
	}
	return def
}

func (n Node) attrInts(key string, def []int) []int {
	v, ok := n.Attrs[key]
	if !ok {
		return def
	}
	switch vv := v.(type) {
	case []interface{}:
		out := make([]int, len(vv))
		for i, x := range vv {
			f, ok := x.(float64)
			if !ok {
				return def
			}
			out[i] = int(f)
		}
		return out
	case []int:
		return vv
	}
	return def
}

// StateDict is the named parameter store (torch state_dict stand-in).
type StateDict map[string]*tensor.Tensor

// Save writes the state dict as a deterministic binary blob.
func (sd StateDict) Save(w io.Writer) error {
	names := make([]string, 0, len(sd))
	for n := range sd {
		names = append(names, n)
	}
	sort.Strings(names)
	if err := binary.Write(w, binary.LittleEndian, uint32(len(names))); err != nil {
		return err
	}
	for _, n := range names {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(n))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, n); err != nil {
			return err
		}
		if err := sd[n].Serialize(w); err != nil {
			return err
		}
	}
	return nil
}

// LoadStateDict reads a state-dict blob.
func LoadStateDict(r io.Reader) (StateDict, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("torchscript: corrupt state dict (%d entries)", n)
	}
	sd := StateDict{}
	for i := uint32(0); i < n; i++ {
		var ln uint32
		if err := binary.Read(r, binary.LittleEndian, &ln); err != nil {
			return nil, err
		}
		if ln > 4096 {
			return nil, fmt.Errorf("torchscript: corrupt state dict name length %d", ln)
		}
		buf := make([]byte, ln)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		t, err := tensor.ReadFrom(r)
		if err != nil {
			return nil, fmt.Errorf("torchscript: param %q: %w", string(buf), err)
		}
		sd[string(buf)] = t
	}
	return sd, nil
}

// MarshalGraph serializes the graph JSON.
func MarshalGraph(g *Graph) ([]byte, error) { return json.Marshal(g) }

// UnmarshalGraph parses the graph JSON.
func UnmarshalGraph(data []byte) (*Graph, error) {
	var g Graph
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("torchscript: bad trace json: %w", err)
	}
	if g.Producer == "" {
		g.Producer = "torch.jit.trace"
	}
	return &g, nil
}
