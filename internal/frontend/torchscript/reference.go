package torchscript

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Reference executes the traced graph directly in PyTorch's native NCHW
// layout with independent naive kernels. It reproduces the paper's §4.1
// verification step ("we also ran PyTorch's original method to see if the
// output was the same"): tests run a model through the importer + relay
// executor and through this evaluator, then compare.
func Reference(g *Graph, params StateDict, inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	env := map[string]*tensor.Tensor{}
	for k, v := range params {
		env[k] = v
	}
	for _, in := range g.Inputs {
		t, ok := inputs[in.Name]
		if !ok {
			return nil, fmt.Errorf("torch reference: missing input %q", in.Name)
		}
		env[in.Name] = t
	}
	for i, n := range g.Nodes {
		out, err := refNode(n, env)
		if err != nil {
			return nil, fmt.Errorf("torch reference: node %d (%s): %w", i, n.Op, err)
		}
		env[n.Output] = out
	}
	res := map[string]*tensor.Tensor{}
	for _, o := range g.Outputs {
		t, ok := env[o]
		if !ok {
			return nil, fmt.Errorf("torch reference: unknown output %q", o)
		}
		res[o] = t
	}
	return res, nil
}

func refNode(n Node, env map[string]*tensor.Tensor) (*tensor.Tensor, error) {
	in := func(i int) (*tensor.Tensor, error) {
		if i >= len(n.Inputs) {
			return nil, fmt.Errorf("missing input %d", i)
		}
		t, ok := env[n.Inputs[i]]
		if !ok {
			return nil, fmt.Errorf("unknown value %q", n.Inputs[i])
		}
		return t, nil
	}
	x, err := in(0)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case "aten::_convolution", "aten::conv2d":
		w, err := in(1)
		if err != nil {
			return nil, err
		}
		var b *tensor.Tensor
		if len(n.Inputs) >= 3 {
			if b, err = in(2); err != nil {
				return nil, err
			}
		}
		stride := n.attrInts("stride", []int{1, 1})
		pad := n.attrInts("padding", []int{0, 0})
		groups := n.attrInt("groups", 1)
		return refConvNCHW(x, w, b, stride[0], stride[1], pad[0], pad[1], groups), nil
	case "aten::relu":
		return refMap(x, func(v float64) float64 { return math.Max(v, 0) }), nil
	case "aten::leaky_relu":
		a := n.attrFloat("negative_slope", 0.01)
		return refMap(x, func(v float64) float64 {
			if v < 0 {
				return v * a
			}
			return v
		}), nil
	case "aten::sigmoid":
		return refMap(x, func(v float64) float64 { return 1 / (1 + math.Exp(-v)) }), nil
	case "aten::tanh":
		return refMap(x, math.Tanh), nil
	case "aten::hardtanh":
		lo, hi := n.attrFloat("min_val", 0), n.attrFloat("max_val", 6)
		return refMap(x, func(v float64) float64 { return math.Min(math.Max(v, lo), hi) }), nil
	case "aten::dropout":
		return x, nil
	case "aten::max_pool2d":
		k := n.attrInts("kernel_size", []int{2, 2})
		s := n.attrInts("stride", k)
		return refPoolNCHW(x, k[0], k[1], s[0], s[1], true), nil
	case "aten::avg_pool2d":
		k := n.attrInts("kernel_size", []int{2, 2})
		s := n.attrInts("stride", k)
		return refPoolNCHW(x, k[0], k[1], s[0], s[1], false), nil
	case "aten::adaptive_avg_pool2d":
		return refPoolNCHW(x, x.Shape[2], x.Shape[3], 1, 1, false), nil
	case "aten::batch_norm":
		var ps [4]*tensor.Tensor
		for i := 0; i < 4; i++ {
			p, err := in(i + 1)
			if err != nil {
				return nil, err
			}
			ps[i] = p
		}
		return refBatchNormNCHW(x, ps[0], ps[1], ps[2], ps[3], n.attrFloat("eps", 1e-5)), nil
	case "aten::add":
		y, err := in(1)
		if err != nil {
			return nil, err
		}
		return refZip(x, y, func(a, b float64) float64 { return a + b }), nil
	case "aten::mul":
		y, err := in(1)
		if err != nil {
			return nil, err
		}
		return refZip(x, y, func(a, b float64) float64 { return a * b }), nil
	case "aten::cat":
		tensors := make([]*tensor.Tensor, len(n.Inputs))
		for i := range n.Inputs {
			if tensors[i], err = in(i); err != nil {
				return nil, err
			}
		}
		return refCat(tensors, n.attrInt("dim", 1)), nil
	case "aten::mean":
		return refMeanSpatialNCHW(x), nil
	case "aten::flatten":
		nElems := 1
		for _, d := range x.Shape[1:] {
			nElems *= d
		}
		return x.Reshape(tensor.Shape{x.Shape[0], nElems}), nil
	case "aten::linear":
		w, err := in(1)
		if err != nil {
			return nil, err
		}
		var b *tensor.Tensor
		if len(n.Inputs) >= 3 {
			if b, err = in(2); err != nil {
				return nil, err
			}
		}
		return refLinear(x, w, b), nil
	case "aten::softmax":
		return refSoftmaxLastDim(x), nil
	case "aten::upsample_nearest2d":
		return refUpsampleNCHW(x, n.attrInt("scale_factor", 2)), nil
	}
	return nil, fmt.Errorf("reference evaluator does not implement %q", n.Op)
}

func refMap(x *tensor.Tensor, f func(float64) float64) *tensor.Tensor {
	out := tensor.New(tensor.Float32, x.Shape)
	for i, n := 0, x.Elems(); i < n; i++ {
		out.SetF(i, f(x.GetF(i)))
	}
	return out
}

func refZip(a, b *tensor.Tensor, f func(x, y float64) float64) *tensor.Tensor {
	out := tensor.New(tensor.Float32, a.Shape)
	for i, n := 0, a.Elems(); i < n; i++ {
		out.SetF(i, f(a.GetF(i), b.GetF(i)))
	}
	return out
}

func refConvNCHW(x, w, b *tensor.Tensor, sh, sw, ph, pw, groups int) *tensor.Tensor {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oc, icg, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	oh := (h+2*ph-kh)/sh + 1
	ow := (wd+2*pw-kw)/sw + 1
	out := tensor.New(tensor.Float32, tensor.Shape{n, oc, oh, ow})
	ocg := oc / groups
	for bi := 0; bi < n; bi++ {
		for o := 0; o < oc; o++ {
			g := o / ocg
			bias := 0.0
			if b != nil {
				bias = b.GetF(o)
			}
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					acc := bias
					for ic := 0; ic < icg; ic++ {
						for ky := 0; ky < kh; ky++ {
							iy := oy*sh - ph + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < kw; kx++ {
								ix := ox*sw - pw + kx
								if ix < 0 || ix >= wd {
									continue
								}
								acc += x.At(bi, g*icg+ic, iy, ix) * w.At(o, ic, ky, kx)
							}
						}
					}
					out.Set(acc, bi, o, oy, ox)
				}
			}
		}
	}
	_ = c
	return out
}

func refPoolNCHW(x *tensor.Tensor, kh, kw, sh, sw int, isMax bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h-kh)/sh + 1
	ow := (w-kw)/sw + 1
	out := tensor.New(tensor.Float32, tensor.Shape{n, c, oh, ow})
	for bi := 0; bi < n; bi++ {
		for ci := 0; ci < c; ci++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					if isMax {
						best := math.Inf(-1)
						for ky := 0; ky < kh; ky++ {
							for kx := 0; kx < kw; kx++ {
								best = math.Max(best, x.At(bi, ci, oy*sh+ky, ox*sw+kx))
							}
						}
						out.Set(best, bi, ci, oy, ox)
					} else {
						sum := 0.0
						for ky := 0; ky < kh; ky++ {
							for kx := 0; kx < kw; kx++ {
								sum += x.At(bi, ci, oy*sh+ky, ox*sw+kx)
							}
						}
						out.Set(sum/float64(kh*kw), bi, ci, oy, ox)
					}
				}
			}
		}
	}
	return out
}

func refBatchNormNCHW(x, g, b, m, v *tensor.Tensor, eps float64) *tensor.Tensor {
	out := tensor.New(tensor.Float32, x.Shape)
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	for bi := 0; bi < n; bi++ {
		for ci := 0; ci < c; ci++ {
			scale := g.GetF(ci) / math.Sqrt(v.GetF(ci)+eps)
			shift := b.GetF(ci) - m.GetF(ci)*scale
			for y := 0; y < h; y++ {
				for xx := 0; xx < w; xx++ {
					out.Set(x.At(bi, ci, y, xx)*scale+shift, bi, ci, y, xx)
				}
			}
		}
	}
	return out
}

func refCat(ts []*tensor.Tensor, dim int) *tensor.Tensor {
	shape := ts[0].Shape.Clone()
	for _, t := range ts[1:] {
		shape[dim] += t.Shape[dim]
	}
	out := tensor.New(tensor.Float32, shape)
	outer := 1
	for i := 0; i < dim; i++ {
		outer *= shape[i]
	}
	inner := 1
	for i := dim + 1; i < len(shape); i++ {
		inner *= shape[i]
	}
	off := 0
	for _, t := range ts {
		ax := t.Shape[dim]
		for o := 0; o < outer; o++ {
			for a := 0; a < ax; a++ {
				srcBase := (o*ax + a) * inner
				dstBase := (o*shape[dim] + off + a) * inner
				for i := 0; i < inner; i++ {
					out.SetF(dstBase+i, t.GetF(srcBase+i))
				}
			}
		}
		off += ax
	}
	return out
}

func refMeanSpatialNCHW(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := tensor.New(tensor.Float32, tensor.Shape{n, c})
	for bi := 0; bi < n; bi++ {
		for ci := 0; ci < c; ci++ {
			sum := 0.0
			for y := 0; y < h; y++ {
				for xx := 0; xx < w; xx++ {
					sum += x.At(bi, ci, y, xx)
				}
			}
			out.Set(sum/float64(h*w), bi, ci)
		}
	}
	return out
}

func refLinear(x, w, b *tensor.Tensor) *tensor.Tensor {
	n, k := x.Shape[0], x.Shape[1]
	units := w.Shape[0]
	out := tensor.New(tensor.Float32, tensor.Shape{n, units})
	for r := 0; r < n; r++ {
		for u := 0; u < units; u++ {
			acc := 0.0
			if b != nil {
				acc = b.GetF(u)
			}
			for i := 0; i < k; i++ {
				acc += x.At(r, i) * w.At(u, i)
			}
			out.Set(acc, r, u)
		}
	}
	return out
}

func refSoftmaxLastDim(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(tensor.Float32, x.Shape)
	last := x.Shape[len(x.Shape)-1]
	rows := x.Elems() / last
	for r := 0; r < rows; r++ {
		base := r * last
		maxV := math.Inf(-1)
		for i := 0; i < last; i++ {
			maxV = math.Max(maxV, x.GetF(base+i))
		}
		sum := 0.0
		for i := 0; i < last; i++ {
			e := math.Exp(x.GetF(base+i) - maxV)
			out.SetF(base+i, e)
			sum += e
		}
		for i := 0; i < last; i++ {
			out.SetF(base+i, out.GetF(base+i)/sum)
		}
	}
	return out
}

func refUpsampleNCHW(x *tensor.Tensor, scale int) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := tensor.New(tensor.Float32, tensor.Shape{n, c, h * scale, w * scale})
	for bi := 0; bi < n; bi++ {
		for ci := 0; ci < c; ci++ {
			for y := 0; y < h*scale; y++ {
				for xx := 0; xx < w*scale; xx++ {
					out.Set(x.At(bi, ci, y/scale, xx/scale), bi, ci, y, xx)
				}
			}
		}
	}
	return out
}

// NCHWToNHWC converts an activation tensor between layouts (test helper and
// app-side input adapter).
func NCHWToNHWC(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := tensor.New(x.DType, tensor.Shape{n, h, w, c})
	for bi := 0; bi < n; bi++ {
		for ci := 0; ci < c; ci++ {
			for y := 0; y < h; y++ {
				for xx := 0; xx < w; xx++ {
					out.Set(x.At(bi, ci, y, xx), bi, y, xx, ci)
				}
			}
		}
	}
	return out
}

// NHWCToNCHW is the inverse conversion.
func NHWCToNCHW(x *tensor.Tensor) *tensor.Tensor {
	n, h, w, c := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := tensor.New(x.DType, tensor.Shape{n, c, h, w})
	for bi := 0; bi < n; bi++ {
		for y := 0; y < h; y++ {
			for xx := 0; xx < w; xx++ {
				for ci := 0; ci < c; ci++ {
					out.Set(x.At(bi, y, xx, ci), bi, ci, y, xx)
				}
			}
		}
	}
	return out
}
