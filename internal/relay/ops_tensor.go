package relay

import (
	"fmt"

	"repro/internal/tensor"
)

// Tensor-manipulation and arithmetic operator registrations.

// BroadcastShapes computes the numpy-style broadcast of two shapes, or an
// error if they are incompatible.
func BroadcastShapes(a, b tensor.Shape) (tensor.Shape, error) {
	la, lb := len(a), len(b)
	lo := la
	if lb > lo {
		lo = lb
	}
	out := make(tensor.Shape, lo)
	for i := 0; i < lo; i++ {
		da, db := 1, 1
		if i >= lo-la {
			da = a[i-(lo-la)]
		}
		if i >= lo-lb {
			db = b[i-(lo-lb)]
		}
		switch {
		case da == db:
			out[i] = da
		case da == 1:
			out[i] = db
		case db == 1:
			out[i] = da
		default:
			return nil, fmt.Errorf("cannot broadcast %s with %s", a, b)
		}
	}
	return out, nil
}

func binaryBroadcastInfer(name string) TypeInferFn {
	return func(args []Type, attrs Attrs) (Type, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("%s expects 2 args, got %d", name, len(args))
		}
		a, err := AsTensorType(args[0], name+" lhs")
		if err != nil {
			return nil, err
		}
		b, err := AsTensorType(args[1], name+" rhs")
		if err != nil {
			return nil, err
		}
		if a.DType != b.DType {
			return nil, fmt.Errorf("%s dtype mismatch: %s vs %s", name, a.DType, b.DType)
		}
		if a.DType.IsQuantized() {
			return nil, fmt.Errorf("%s on quantized tensors requires qnn.%s", name, name)
		}
		shape, err := BroadcastShapes(a.Shape, b.Shape)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		return &TensorType{Shape: shape, DType: a.DType}, nil
	}
}

func inferConcatenate(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("concatenate expects 1 tuple arg, got %d", len(args))
	}
	tup, ok := args[0].(*TupleType)
	if !ok {
		return nil, fmt.Errorf("concatenate expects a tuple argument, got %s", args[0])
	}
	if len(tup.Fields) == 0 {
		return nil, fmt.Errorf("concatenate of empty tuple")
	}
	first, err := AsTensorType(tup.Fields[0], "concatenate field 0")
	if err != nil {
		return nil, err
	}
	axis := attrs.Int("axis", -1)
	if axis < 0 {
		axis += len(first.Shape)
	}
	if axis < 0 || axis >= len(first.Shape) {
		return nil, fmt.Errorf("concatenate axis out of range for %s", first.Shape)
	}
	out := first.Shape.Clone()
	for i, f := range tup.Fields[1:] {
		t, err := AsTensorType(f, fmt.Sprintf("concatenate field %d", i+1))
		if err != nil {
			return nil, err
		}
		if t.DType != first.DType {
			return nil, fmt.Errorf("concatenate dtype mismatch: %s vs %s", t.DType, first.DType)
		}
		if len(t.Shape) != len(first.Shape) {
			return nil, fmt.Errorf("concatenate rank mismatch: %s vs %s", t.Shape, first.Shape)
		}
		for d := range t.Shape {
			if d == axis {
				continue
			}
			if t.Shape[d] != first.Shape[d] {
				return nil, fmt.Errorf("concatenate shape mismatch off-axis: %s vs %s", t.Shape, first.Shape)
			}
		}
		out[axis] += t.Shape[axis]
	}
	// Quant propagates only when all fields agree (qnn.concatenate handles
	// requantizing mismatched fields).
	quant := first.Quant
	for _, f := range tup.Fields[1:] {
		t := f.(*TensorType)
		if (t.Quant == nil) != (quant == nil) || (quant != nil && *t.Quant != *quant) {
			if first.DType.IsQuantized() {
				return nil, fmt.Errorf("concatenate of quantized tensors with differing params requires qnn.concatenate")
			}
			quant = nil
			break
		}
	}
	return &TensorType{Shape: out, DType: first.DType, Quant: quant}, nil
}

func inferReshape(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("reshape expects 1 arg, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "reshape")
	if err != nil {
		return nil, err
	}
	newshape := attrs.Ints("newshape", nil)
	if newshape == nil {
		return nil, fmt.Errorf("reshape requires newshape attr")
	}
	total := data.Shape.Elems()
	known := 1
	infer := -1
	out := make(tensor.Shape, len(newshape))
	for i, d := range newshape {
		switch {
		case d == -1:
			if infer >= 0 {
				return nil, fmt.Errorf("reshape with more than one -1: %v", newshape)
			}
			infer = i
		case d > 0:
			out[i] = d
			known *= d
		default:
			return nil, fmt.Errorf("reshape with invalid extent %d", d)
		}
	}
	if infer >= 0 {
		if known == 0 || total%known != 0 {
			return nil, fmt.Errorf("reshape %s -> %v not divisible", data.Shape, newshape)
		}
		out[infer] = total / known
		known *= out[infer]
	}
	if known != total {
		return nil, fmt.Errorf("reshape %s -> %v changes element count", data.Shape, newshape)
	}
	return &TensorType{Shape: out, DType: data.DType, Quant: data.Quant}, nil
}

func inferTranspose(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("transpose expects 1 arg, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "transpose")
	if err != nil {
		return nil, err
	}
	axes := attrs.Ints("axes", nil)
	if axes == nil {
		// Default: reverse all axes.
		axes = make([]int, len(data.Shape))
		for i := range axes {
			axes[i] = len(data.Shape) - 1 - i
		}
	}
	if len(axes) != len(data.Shape) {
		return nil, fmt.Errorf("transpose axes %v rank mismatch with %s", axes, data.Shape)
	}
	seen := map[int]bool{}
	out := make(tensor.Shape, len(axes))
	for i, ax := range axes {
		if ax < 0 || ax >= len(data.Shape) || seen[ax] {
			return nil, fmt.Errorf("transpose axes %v invalid for %s", axes, data.Shape)
		}
		seen[ax] = true
		out[i] = data.Shape[ax]
	}
	return &TensorType{Shape: out, DType: data.DType, Quant: data.Quant}, nil
}

func inferSqueeze(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("squeeze expects 1 arg, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "squeeze")
	if err != nil {
		return nil, err
	}
	axes := attrs.Ints("axis", nil)
	drop := map[int]bool{}
	if axes == nil {
		for i, d := range data.Shape {
			if d == 1 {
				drop[i] = true
			}
		}
	} else {
		for _, ax := range axes {
			if ax < 0 {
				ax += len(data.Shape)
			}
			if ax < 0 || ax >= len(data.Shape) || data.Shape[ax] != 1 {
				return nil, fmt.Errorf("squeeze axis %v invalid for %s", axes, data.Shape)
			}
			drop[ax] = true
		}
	}
	var out tensor.Shape
	for i, d := range data.Shape {
		if !drop[i] {
			out = append(out, d)
		}
	}
	return &TensorType{Shape: out, DType: data.DType, Quant: data.Quant}, nil
}

func inferExpandDims(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("expand_dims expects 1 arg, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "expand_dims")
	if err != nil {
		return nil, err
	}
	axis := attrs.Int("axis", 0)
	if axis < 0 {
		axis += len(data.Shape) + 1
	}
	if axis < 0 || axis > len(data.Shape) {
		return nil, fmt.Errorf("expand_dims axis %d out of range for %s", axis, data.Shape)
	}
	out := make(tensor.Shape, 0, len(data.Shape)+1)
	out = append(out, data.Shape[:axis]...)
	out = append(out, 1)
	out = append(out, data.Shape[axis:]...)
	return &TensorType{Shape: out, DType: data.DType, Quant: data.Quant}, nil
}

func inferMean(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("mean expects 1 arg, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "mean")
	if err != nil {
		return nil, err
	}
	if data.DType != tensor.Float32 {
		return nil, fmt.Errorf("mean supports float32 only, got %s", data.DType)
	}
	axes := attrs.Ints("axis", nil)
	keep := attrs.Bool("keepdims", false)
	reduce := map[int]bool{}
	if axes == nil {
		for i := range data.Shape {
			reduce[i] = true
		}
	} else {
		for _, ax := range axes {
			if ax < 0 {
				ax += len(data.Shape)
			}
			if ax < 0 || ax >= len(data.Shape) {
				return nil, fmt.Errorf("mean axis %v out of range for %s", axes, data.Shape)
			}
			reduce[ax] = true
		}
	}
	var out tensor.Shape
	for i, d := range data.Shape {
		if reduce[i] {
			if keep {
				out = append(out, 1)
			}
			continue
		}
		out = append(out, d)
	}
	return &TensorType{Shape: out, DType: tensor.Float32}, nil
}

func inferClip(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("clip expects 1 arg, got %d", len(args))
	}
	if _, err := AsTensorType(args[0], "clip"); err != nil {
		return nil, err
	}
	// a_min / a_max are validated here so malformed frontend output fails at
	// type-check time, not inside a kernel.
	min := attrs.Float("a_min", 0)
	max := attrs.Float("a_max", 0)
	if min > max {
		return nil, fmt.Errorf("clip a_min %g > a_max %g", min, max)
	}
	return args[0], nil
}

func inferStridedSlice(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("strided_slice expects 1 arg, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "strided_slice")
	if err != nil {
		return nil, err
	}
	begin := attrs.Ints("begin", nil)
	end := attrs.Ints("end", nil)
	if len(begin) != len(data.Shape) || len(end) != len(data.Shape) {
		return nil, fmt.Errorf("strided_slice begin/end rank mismatch with %s", data.Shape)
	}
	out := make(tensor.Shape, len(data.Shape))
	for i := range data.Shape {
		b, e := begin[i], end[i]
		if b < 0 {
			b += data.Shape[i]
		}
		if e < 0 {
			e += data.Shape[i]
		}
		if e > data.Shape[i] {
			e = data.Shape[i]
		}
		if b < 0 || b >= data.Shape[i] || e <= b {
			return nil, fmt.Errorf("strided_slice [%d:%d) invalid for axis %d of %s", begin[i], end[i], i, data.Shape)
		}
		out[i] = e - b
	}
	return &TensorType{Shape: out, DType: data.DType, Quant: data.Quant}, nil
}

var (
	OpAdd          = RegisterOp("add", PatternBroadcast, binaryBroadcastInfer("add"))
	OpSubtract     = RegisterOp("subtract", PatternBroadcast, binaryBroadcastInfer("subtract"))
	OpMultiply     = RegisterOp("multiply", PatternBroadcast, binaryBroadcastInfer("multiply"))
	OpDivide       = RegisterOp("divide", PatternBroadcast, binaryBroadcastInfer("divide"))
	OpMaximum      = RegisterOp("maximum", PatternBroadcast, binaryBroadcastInfer("maximum"))
	OpMinimum      = RegisterOp("minimum", PatternBroadcast, binaryBroadcastInfer("minimum"))
	OpConcatenate  = RegisterOp("concatenate", PatternInjective, inferConcatenate)
	OpReshape      = RegisterOp("reshape", PatternInjective, inferReshape)
	OpTranspose    = RegisterOp("transpose", PatternInjective, inferTranspose)
	OpSqueeze      = RegisterOp("squeeze", PatternInjective, inferSqueeze)
	OpExpandDims   = RegisterOp("expand_dims", PatternInjective, inferExpandDims)
	OpMean         = RegisterOp("mean", PatternCommReduce, inferMean)
	OpClip         = RegisterOp("clip", PatternElemWise, inferClip)
	OpStridedSlice = RegisterOp("strided_slice", PatternInjective, inferStridedSlice)
)
