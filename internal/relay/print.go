package relay

import (
	"fmt"
	"sort"
	"strings"
)

// PrintModule renders every function of the module in the textual form used
// by debug dumps and golden tests.
func PrintModule(m *Module) string {
	var b strings.Builder
	m.Functions(func(name string, f *Function) {
		fmt.Fprintf(&b, "def @%s%s\n", name, fnAttrSuffix(f))
		b.WriteString(PrintExpr(f))
		b.WriteString("\n")
	})
	return b.String()
}

func fnAttrSuffix(f *Function) string {
	if len(f.FnAttrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(f.FnAttrs))
	for k := range f.FnAttrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, f.FnAttrs[k])
	}
	return " [" + strings.Join(parts, ", ") + "]"
}

// PrintExpr renders an expression in an ANF-like numbered form:
//
//	%0 = nn.conv2d(%data, const<...>, strides=[2 2])
//	%1 = nn.relu(%0)
//	%1
//
// Deterministic output (post-order numbering) makes it suitable for golden
// comparisons in tests.
func PrintExpr(root Expr) string {
	var b strings.Builder
	ids := map[Expr]string{}
	next := 0
	var ref func(Expr) string
	var emit func(Expr)

	fresh := func() string {
		s := fmt.Sprintf("%%%d", next)
		next++
		return s
	}

	ref = func(e Expr) string {
		if s, ok := ids[e]; ok {
			return s
		}
		switch n := e.(type) {
		case *Var:
			s := "%" + n.Name
			ids[e] = s
			return s
		case *Constant:
			s := fmt.Sprintf("const<%s %s>", n.Value.DType, n.Value.Shape)
			ids[e] = s
			return s
		default:
			emit(e)
			return ids[e]
		}
	}

	emit = func(e Expr) {
		if _, done := ids[e]; done {
			return
		}
		switch n := e.(type) {
		case *Call:
			args := make([]string, len(n.Args))
			for i, a := range n.Args {
				args[i] = ref(a)
			}
			callee := n.OpName()
			if n.Fn != nil {
				callee = ref(n.Fn)
			}
			id := fresh()
			ids[e] = id
			attrStr := ""
			if s := n.Attrs.String(); s != "" {
				attrStr = ", " + s
			}
			fmt.Fprintf(&b, "  %s = %s(%s%s)\n", id, callee, strings.Join(args, ", "), attrStr)
		case *Tuple:
			fields := make([]string, len(n.Fields))
			for i, f := range n.Fields {
				fields[i] = ref(f)
			}
			id := fresh()
			ids[e] = id
			fmt.Fprintf(&b, "  %s = (%s)\n", id, strings.Join(fields, ", "))
		case *TupleGetItem:
			t := ref(n.Tuple)
			id := fresh()
			ids[e] = id
			fmt.Fprintf(&b, "  %s = %s.%d\n", id, t, n.Index)
		case *Function:
			params := make([]string, len(n.Params))
			for i, p := range n.Params {
				ty := ""
				if p.TypeAnnotation != nil {
					ty = ": " + p.TypeAnnotation.String()
				}
				params[i] = "%" + p.Name + ty
			}
			id := fresh()
			ids[e] = id
			fmt.Fprintf(&b, "  %s = fn%s(%s) {\n", id, fnAttrSuffix(n), strings.Join(params, ", "))
			inner := PrintExpr(n.Body)
			for _, line := range strings.Split(strings.TrimRight(inner, "\n"), "\n") {
				fmt.Fprintf(&b, "  %s\n", line)
			}
			fmt.Fprintf(&b, "  }\n")
		case *Var, *Constant:
			ref(e)
		}
	}

	if f, ok := root.(*Function); ok {
		// Top-level function: print body directly with params implied.
		out := ref(f.Body)
		fmt.Fprintf(&b, "  %s\n", out)
		return b.String()
	}
	out := ref(root)
	fmt.Fprintf(&b, "  %s\n", out)
	return b.String()
}
