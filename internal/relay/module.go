package relay

import (
	"fmt"
	"sort"
)

// MainFunc is the entry-point name every frontend emits.
const MainFunc = "main"

// Module is an IRModule: a set of named functions. "main" is the model entry
// point; PartitionGraph adds one definition per external (NeuroPilot) region.
type Module struct {
	funcs map[string]*Function
}

// NewModule creates a module with the given main function.
func NewModule(main *Function) *Module {
	m := &Module{funcs: map[string]*Function{}}
	m.funcs[MainFunc] = main
	return m
}

// Main returns the entry function.
func (m *Module) Main() *Function { return m.funcs[MainFunc] }

// SetMain replaces the entry function.
func (m *Module) SetMain(f *Function) { m.funcs[MainFunc] = f }

// Get returns a named function.
func (m *Module) Get(name string) (*Function, bool) {
	f, ok := m.funcs[name]
	return f, ok
}

// Add installs a named function, failing on duplicates.
func (m *Module) Add(name string, f *Function) error {
	if _, dup := m.funcs[name]; dup {
		return fmt.Errorf("relay: module already defines %q", name)
	}
	m.funcs[name] = f
	return nil
}

// Names returns the function names, sorted, main first.
func (m *Module) Names() []string {
	names := make([]string, 0, len(m.funcs))
	for n := range m.funcs {
		if n != MainFunc {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return append([]string{MainFunc}, names...)
}

// Functions iterates deterministically over all definitions.
func (m *Module) Functions(fn func(name string, f *Function)) {
	for _, n := range m.Names() {
		fn(n, m.funcs[n])
	}
}

// ExternalFuncs returns the names of functions partitioned for the given
// external compiler, sorted.
func (m *Module) ExternalFuncs(compiler string) []string {
	var names []string
	for n, f := range m.funcs {
		if f.Attr(FnAttrCompiler) == compiler {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Clone copies the module map (functions themselves are immutable and
// shared).
func (m *Module) Clone() *Module {
	c := &Module{funcs: make(map[string]*Function, len(m.funcs))}
	for k, v := range m.funcs {
		c.funcs[k] = v
	}
	return c
}
