package relay

import (
	"strings"
	"testing"

	"repro/internal/tensor"
)

// buildSmallCNN constructs data -> conv2d -> bias_add -> relu -> max_pool.
func buildSmallCNN(t *testing.T) (*Function, *Var) {
	t.Helper()
	data := NewVar("data", TType(tensor.Float32, 1, 8, 8, 3))
	w := Const(tensor.New(tensor.Float32, tensor.Shape{4, 3, 3, 3}))
	b := Const(tensor.New(tensor.Float32, tensor.Shape{4}))
	conv := NewCall(OpConv2D, []Expr{data, w}, Attrs{"strides": []int{1, 1}, "padding": []int{1, 1}})
	biased := NewCall(OpBiasAdd, []Expr{conv, b}, nil)
	act := NewCall(OpReLU, []Expr{biased}, nil)
	pool := NewCall(OpMaxPool2D, []Expr{act}, Attrs{"pool_size": []int{2, 2}, "strides": []int{2, 2}})
	return NewFunc([]*Var{data}, pool), data
}

func TestInferTypesSmallCNN(t *testing.T) {
	fn, _ := buildSmallCNN(t)
	ty, err := InferTypes(fn)
	if err != nil {
		t.Fatal(err)
	}
	ft := ty.(*FuncType)
	want := TType(tensor.Float32, 1, 4, 4, 4)
	if !ft.Ret.Same(want) {
		t.Errorf("result type %s, want %s", ft.Ret, want)
	}
}

func TestConvOutDim(t *testing.T) {
	cases := []struct {
		in, k, s, pb, pa, d, want int
		err                       bool
	}{
		{8, 3, 1, 1, 1, 1, 8, false},
		{8, 3, 2, 0, 0, 1, 3, false},
		{224, 7, 2, 3, 3, 1, 112, false},
		{5, 3, 1, 0, 0, 2, 1, false}, // dilated: effective kernel 5
		{2, 5, 1, 0, 0, 1, 0, true},
		{8, 3, 0, 0, 0, 1, 0, true},
	}
	for i, c := range cases {
		got, err := ConvOutDim(c.in, c.k, c.s, c.pb, c.pa, c.d)
		if c.err {
			if err == nil {
				t.Errorf("case %d: want error", i)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("case %d: got %d, %v; want %d", i, got, err, c.want)
		}
	}
}

func TestInferConv2DErrors(t *testing.T) {
	data := TType(tensor.Float32, 1, 8, 8, 3)
	cases := []struct {
		name   string
		weight *TensorType
		attrs  Attrs
	}{
		{"bad input channels", TType(tensor.Float32, 4, 3, 3, 5), Attrs{}},
		{"bad groups divisor", TType(tensor.Float32, 4, 3, 3, 3), Attrs{"groups": 2}},
		{"kernel too large", TType(tensor.Float32, 4, 9, 9, 3), Attrs{}},
		{"rank", TType(tensor.Float32, 4, 3, 3), Attrs{}},
	}
	for _, c := range cases {
		if _, err := inferConv2D([]Type{data, c.weight}, c.attrs); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestDepthwiseConvTyping(t *testing.T) {
	// groups == channels, OHWI weight with 1 input channel per group.
	data := TType(tensor.Float32, 1, 16, 16, 8)
	weight := TType(tensor.Float32, 8, 3, 3, 1)
	ty, err := inferConv2D([]Type{data, weight}, Attrs{"groups": 8, "padding": []int{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !ty.Same(TType(tensor.Float32, 1, 16, 16, 8)) {
		t.Errorf("depthwise output type %s", ty)
	}
}

func TestBroadcastShapes(t *testing.T) {
	cases := []struct {
		a, b, want tensor.Shape
		err        bool
	}{
		{tensor.Shape{2, 3}, tensor.Shape{2, 3}, tensor.Shape{2, 3}, false},
		{tensor.Shape{2, 3}, tensor.Shape{3}, tensor.Shape{2, 3}, false},
		{tensor.Shape{2, 1, 4}, tensor.Shape{3, 1}, tensor.Shape{2, 3, 4}, false},
		{tensor.Shape{}, tensor.Shape{5}, tensor.Shape{5}, false},
		{tensor.Shape{2}, tensor.Shape{3}, nil, true},
	}
	for i, c := range cases {
		got, err := BroadcastShapes(c.a, c.b)
		if c.err != (err != nil) {
			t.Errorf("case %d: err = %v", i, err)
			continue
		}
		if !c.err && !got.Equal(c.want) {
			t.Errorf("case %d: got %s want %s", i, got, c.want)
		}
	}
}

func TestReshapeInference(t *testing.T) {
	data := TType(tensor.Float32, 2, 3, 4)
	ty, err := inferReshape([]Type{data}, Attrs{"newshape": []int{2, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if !ty.Same(TType(tensor.Float32, 2, 12)) {
		t.Errorf("reshape type %s", ty)
	}
	if _, err := inferReshape([]Type{data}, Attrs{"newshape": []int{5, 5}}); err == nil {
		t.Error("bad reshape accepted")
	}
	if _, err := inferReshape([]Type{data}, Attrs{"newshape": []int{-1, -1}}); err == nil {
		t.Error("double -1 accepted")
	}
}

func TestConcatenateInference(t *testing.T) {
	a := TType(tensor.Float32, 1, 4, 4, 8)
	b := TType(tensor.Float32, 1, 4, 4, 16)
	tup := &TupleType{Fields: []Type{a, b}}
	ty, err := inferConcatenate([]Type{tup}, Attrs{"axis": 3})
	if err != nil {
		t.Fatal(err)
	}
	if !ty.Same(TType(tensor.Float32, 1, 4, 4, 24)) {
		t.Errorf("concat type %s", ty)
	}
	// Off-axis mismatch must fail.
	c := TType(tensor.Float32, 1, 5, 4, 8)
	if _, err := inferConcatenate([]Type{&TupleType{Fields: []Type{a, c}}}, Attrs{"axis": 3}); err == nil {
		t.Error("off-axis mismatch accepted")
	}
}

func TestQuantPropagationThroughPoolAndReshape(t *testing.T) {
	// The §3.3 rule: non-QNN ops must carry the input's quant params to the
	// output type.
	q := tensor.QuantParams{Scale: 0.05, ZeroPoint: 128}
	data := QTType(tensor.UInt8, q, 1, 8, 8, 4)
	pool, err := pool2DInfer("nn.max_pool2d")([]Type{data}, Attrs{"pool_size": []int{2, 2}, "strides": []int{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	pt := pool.(*TensorType)
	if pt.Quant == nil || *pt.Quant != q {
		t.Errorf("max_pool2d dropped quant params: %v", pt.Quant)
	}
	rs, err := inferReshape([]Type{pt}, Attrs{"newshape": []int{1, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if rs.(*TensorType).Quant == nil || *rs.(*TensorType).Quant != q {
		t.Error("reshape dropped quant params")
	}
}

func TestQnnConv2DInference(t *testing.T) {
	q := tensor.QuantParams{Scale: 0.05, ZeroPoint: 128}
	wq := tensor.QuantParams{Scale: 0.01, ZeroPoint: 0}
	data := QTType(tensor.UInt8, q, 1, 8, 8, 3)
	weight := QTType(tensor.UInt8, wq, 4, 3, 3, 3)
	ty, err := inferQnnConv2D([]Type{data, weight}, Attrs{
		"strides": []int{1, 1}, "padding": []int{1, 1},
		"input_scale": 0.05, "input_zero_point": 128,
		"kernel_scale": 0.01, "kernel_zero_point": 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	tt := ty.(*TensorType)
	if tt.DType != tensor.Int32 {
		t.Errorf("qnn.conv2d accumulator dtype %s, want int32", tt.DType)
	}
	if tt.Quant == nil || tt.Quant.Scale != 0.05*0.01 || tt.Quant.ZeroPoint != 0 {
		t.Errorf("accumulator quant %v, want scale=5e-4 zp=0", tt.Quant)
	}
	// Missing scales must fail.
	if _, err := inferQnnConv2D([]Type{data, weight}, Attrs{}); err == nil {
		t.Error("qnn.conv2d without scales accepted")
	}
}

func TestQnnRequantizeInference(t *testing.T) {
	acc := &TensorType{Shape: tensor.Shape{1, 4}, DType: tensor.Int32,
		Quant: &tensor.QuantParams{Scale: 5e-4}}
	ty, err := inferQnnRequantize([]Type{acc}, Attrs{
		"input_scale": 5e-4, "output_scale": 0.1, "output_zero_point": 100, "out_dtype": "uint8",
	})
	if err != nil {
		t.Fatal(err)
	}
	tt := ty.(*TensorType)
	if tt.DType != tensor.UInt8 || tt.Quant.Scale != 0.1 || tt.Quant.ZeroPoint != 100 {
		t.Errorf("requantize output type %s", tt)
	}
}

func TestPostOrderVisitOrder(t *testing.T) {
	fn, _ := buildSmallCNN(t)
	var order []string
	PostOrderVisit(fn, func(e Expr) {
		if c, ok := e.(*Call); ok {
			order = append(order, c.OpName())
		}
	})
	want := []string{"nn.conv2d", "nn.bias_add", "nn.relu", "nn.max_pool2d"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Errorf("visit order %v, want %v", order, want)
	}
}

func TestPostOrderVisitSharedNodesOnce(t *testing.T) {
	x := NewVar("x", TType(tensor.Float32, 2))
	shared := NewCall(OpReLU, []Expr{x}, nil)
	sum := NewCall(OpAdd, []Expr{shared, shared}, nil)
	count := 0
	PostOrderVisit(sum, func(e Expr) {
		if c, ok := e.(*Call); ok && c.Op == OpReLU {
			count++
		}
	})
	if count != 1 {
		t.Errorf("shared node visited %d times, want 1", count)
	}
}

func TestRewritePreservesSharing(t *testing.T) {
	x := NewVar("x", TType(tensor.Float32, 2))
	shared := NewCall(OpSigmoid, []Expr{x}, nil)
	sum := NewCall(OpAdd, []Expr{shared, shared}, nil)
	// Rewrite sigmoid -> tanh.
	out := Rewrite(sum, func(e Expr) Expr {
		if c, ok := e.(*Call); ok && c.Op == OpSigmoid {
			return NewCall(OpTanh, c.Args, nil)
		}
		return e
	})
	oc := out.(*Call)
	if oc.Args[0] != oc.Args[1] {
		t.Error("rewrite broke sharing of identical sub-expressions")
	}
	if oc.Args[0].(*Call).Op != OpTanh {
		t.Error("rewrite did not apply")
	}
}

func TestRewriteIdentityReturnsSameNodes(t *testing.T) {
	fn, _ := buildSmallCNN(t)
	out := Rewrite(fn, func(e Expr) Expr { return e })
	if out != Expr(fn) {
		t.Error("identity rewrite should return the original node")
	}
}

func TestFreeVars(t *testing.T) {
	x := NewVar("x", TType(tensor.Float32, 2))
	y := NewVar("y", TType(tensor.Float32, 2))
	inner := NewFunc([]*Var{y}, NewCall(OpAdd, []Expr{x, y}, nil))
	call := NewFnCall(inner, []Expr{NewCall(OpReLU, []Expr{x}, nil)})
	fv := FreeVars(call)
	if len(fv) != 1 || fv[0] != x {
		t.Errorf("FreeVars = %v, want [x]", fv)
	}
}

func TestModuleBasics(t *testing.T) {
	fn, _ := buildSmallCNN(t)
	m := NewModule(fn)
	if m.Main() != fn {
		t.Error("Main() mismatch")
	}
	ext := fn.WithAttr(FnAttrCompiler, "nir").WithAttr(FnAttrGlobalSymbol, "nir_0")
	if err := m.Add("nir_0", ext); err != nil {
		t.Fatal(err)
	}
	if err := m.Add("nir_0", ext); err == nil {
		t.Error("duplicate Add accepted")
	}
	if got := m.ExternalFuncs("nir"); len(got) != 1 || got[0] != "nir_0" {
		t.Errorf("ExternalFuncs = %v", got)
	}
	names := m.Names()
	if names[0] != "main" || len(names) != 2 {
		t.Errorf("Names = %v", names)
	}
	if ext.Attr(FnAttrCompiler) != "nir" || fn.Attr(FnAttrCompiler) != "" {
		t.Error("WithAttr must not mutate the receiver")
	}
}

func TestPrintExprDeterministic(t *testing.T) {
	fn, _ := buildSmallCNN(t)
	a := PrintExpr(fn)
	b := PrintExpr(fn)
	if a != b {
		t.Error("printer nondeterministic")
	}
	for _, frag := range []string{"nn.conv2d", "nn.bias_add", "nn.relu", "nn.max_pool2d", "%data"} {
		if !strings.Contains(a, frag) {
			t.Errorf("printed form missing %q:\n%s", frag, a)
		}
	}
}

func TestOpRegistryLookup(t *testing.T) {
	if op, ok := LookupOp("nn.conv2d"); !ok || op != OpConv2D {
		t.Error("LookupOp nn.conv2d failed")
	}
	if _, ok := LookupOp("nn.nonexistent"); ok {
		t.Error("LookupOp invented an op")
	}
	names := OpNames()
	if len(names) < 30 {
		t.Errorf("expected a full op registry, got %d ops", len(names))
	}
}

func TestInferFnCall(t *testing.T) {
	// A call to a function value — the shape PartitionGraph produces.
	x := NewVar("x", TType(tensor.Float32, 1, 4))
	inner := NewFunc([]*Var{x}, NewCall(OpReLU, []Expr{x}, nil))
	outerArg := NewVar("d", TType(tensor.Float32, 1, 4))
	call := NewFnCall(inner, []Expr{outerArg})
	top := NewFunc([]*Var{outerArg}, call)
	ty, err := InferTypes(top)
	if err != nil {
		t.Fatal(err)
	}
	if !ty.(*FuncType).Ret.Same(TType(tensor.Float32, 1, 4)) {
		t.Errorf("fn-call type %s", ty)
	}
	// Arity mismatch must fail.
	bad := NewFunc([]*Var{outerArg}, NewFnCall(inner, []Expr{outerArg, outerArg}))
	if _, err := InferTypes(bad); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestTupleInference(t *testing.T) {
	x := NewVar("x", TType(tensor.Float32, 2))
	tup := NewTuple([]Expr{x, NewCall(OpReLU, []Expr{x}, nil)})
	proj := NewTupleGetItem(tup, 1)
	fn := NewFunc([]*Var{x}, proj)
	ty, err := InferTypes(fn)
	if err != nil {
		t.Fatal(err)
	}
	if !ty.(*FuncType).Ret.Same(TType(tensor.Float32, 2)) {
		t.Errorf("projection type %s", ty)
	}
	badProj := NewTupleGetItem(tup, 5)
	if _, err := InferTypes(NewFunc([]*Var{x}, badProj)); err == nil {
		t.Error("out-of-range projection accepted")
	}
}

func TestCountOps(t *testing.T) {
	fn, _ := buildSmallCNN(t)
	if n := CountOps(fn); n != 4 {
		t.Errorf("CountOps = %d, want 4", n)
	}
	if n := CountOps(fn, "nn.conv2d"); n != 1 {
		t.Errorf("CountOps(conv2d) = %d, want 1", n)
	}
}

func TestAttrsAccessors(t *testing.T) {
	a := Attrs{"i": 3, "f": 2.5, "b": true, "s": "hi", "v": []int{1, 2}, "p4": []int{1, 2, 3, 4}}
	if a.Int("i", 0) != 3 || a.Int("missing", 7) != 7 {
		t.Error("Int accessor")
	}
	if a.Float("f", 0) != 2.5 || a.Float("i", 0) != 3.0 {
		t.Error("Float accessor")
	}
	if !a.Bool("b", false) || a.Bool("missing", true) != true {
		t.Error("Bool accessor")
	}
	if a.Str("s", "") != "hi" {
		t.Error("Str accessor")
	}
	if h, w := a.IntPair("v", 0); h != 1 || w != 2 {
		t.Error("IntPair accessor")
	}
	if h, w := a.IntPair("i", 0); h != 3 || w != 3 {
		t.Error("IntPair scalar broadcast")
	}
	if p := a.Pad4("p4"); p != [4]int{1, 2, 3, 4} {
		t.Error("Pad4 accessor")
	}
	if p := a.Pad4("v"); p != [4]int{1, 2, 1, 2} {
		t.Error("Pad4 symmetric form")
	}
	c := a.Clone()
	c["v"].([]int)[0] = 99
	if a["v"].([]int)[0] != 1 {
		t.Error("Clone must deep-copy slices")
	}
}

func TestBatchNormInference(t *testing.T) {
	data := TType(tensor.Float32, 1, 4, 4, 8)
	vec := TType(tensor.Float32, 8)
	args := []Type{data, vec, vec, vec, vec}
	ty, err := inferBatchNorm(args, Attrs{"epsilon": 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if !ty.Same(data) {
		t.Errorf("batch_norm type %s", ty)
	}
	bad := []Type{data, TType(tensor.Float32, 4), vec, vec, vec}
	if _, err := inferBatchNorm(bad, Attrs{}); err == nil {
		t.Error("channel mismatch accepted")
	}
}

func TestYoloOutputInference(t *testing.T) {
	data := TType(tensor.Float32, 1, 13, 13, 255)
	ty, err := inferYoloOutput([]Type{data}, Attrs{"anchors": 3, "classes": 80})
	if err != nil {
		t.Fatal(err)
	}
	if !ty.Same(data) {
		t.Errorf("yolo_output type %s", ty)
	}
	if _, err := inferYoloOutput([]Type{data}, Attrs{"anchors": 3, "classes": 10}); err == nil {
		t.Error("channel mismatch accepted")
	}
}

func TestPrintExprGolden(t *testing.T) {
	x := NewVar("x", TType(tensor.Float32, 1, 4))
	r := NewCall(OpReLU, []Expr{x}, nil)
	s := NewCall(OpSoftmax, []Expr{r}, nil)
	fn := NewFunc([]*Var{x}, s)
	got := PrintExpr(fn)
	want := "  %0 = nn.relu(%x)\n  %1 = nn.softmax(%0)\n  %1\n"
	if got != want {
		t.Errorf("printer output changed:\n got: %q\nwant: %q", got, want)
	}
}

func TestPrintModuleShowsExternalAttrs(t *testing.T) {
	x := NewVar("x", TType(tensor.Float32, 4))
	fn := NewFunc([]*Var{x}, NewCall(OpReLU, []Expr{x}, nil))
	ext := fn.WithAttr(FnAttrCompiler, "nir").WithAttr(FnAttrGlobalSymbol, "nir_0")
	m := NewModule(fn)
	if err := m.Add("nir_0", ext); err != nil {
		t.Fatal(err)
	}
	out := PrintModule(m)
	if !strings.Contains(out, `Compiler="nir"`) || !strings.Contains(out, `global_symbol="nir_0"`) {
		t.Errorf("module print missing BYOC attrs:\n%s", out)
	}
}

func TestToDOT(t *testing.T) {
	fn, _ := buildSmallCNN(t)
	m := NewModule(fn)
	ext := fn.WithAttr(FnAttrCompiler, "nir").WithAttr(FnAttrGlobalSymbol, "nir_0")
	if err := m.Add("nir_0", ext); err != nil {
		t.Fatal(err)
	}
	dot := ToDOT(m)
	for _, frag := range []string{"digraph module", "nn.conv2d", "Compiler=nir",
		"cluster_0", "cluster_1", "output"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q", frag)
		}
	}
	// Balanced braces (cheap structural sanity).
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Error("unbalanced DOT braces")
	}
}
