package relay

import (
	"fmt"

	"repro/internal/tensor"
)

// QNN (quantized neural network) operator registrations, mirroring TVM's
// relay.qnn dialect. QNN is *operator-oriented*: quantization parameters
// appear as attributes on each qnn.* call (input_scale, kernel_scale,
// output_zero_point, ...). The Neuron IR on the other side of the BYOC
// boundary is *tensor-oriented* — every operand carries its own params. The
// type-inference rules here additionally stamp the resulting params into the
// checked TensorType so the converter (internal/nir) can read them off every
// edge; that is the mechanism behind the paper's §3.3 QNN augmentation.

func qnnOutDType(attrs Attrs, def tensor.DType) (tensor.DType, error) {
	s := attrs.Str("out_dtype", "")
	if s == "" {
		return def, nil
	}
	dt, err := tensor.ParseDType(s)
	if err != nil {
		return 0, err
	}
	return dt, nil
}

func inferQnnQuantize(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("qnn.quantize expects 1 arg, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "qnn.quantize")
	if err != nil {
		return nil, err
	}
	if data.DType != tensor.Float32 {
		return nil, fmt.Errorf("qnn.quantize input must be float32, got %s", data.DType)
	}
	dt, err := qnnOutDType(attrs, tensor.UInt8)
	if err != nil {
		return nil, err
	}
	if !dt.IsQuantized() {
		return nil, fmt.Errorf("qnn.quantize out_dtype must be int8/uint8, got %s", dt)
	}
	scale := attrs.Float("output_scale", 0)
	if scale <= 0 {
		return nil, fmt.Errorf("qnn.quantize requires positive output_scale, got %g", scale)
	}
	q := tensor.QuantParams{Scale: scale, ZeroPoint: int32(attrs.Int("output_zero_point", 0))}
	return &TensorType{Shape: data.Shape, DType: dt, Quant: &q}, nil
}

func inferQnnDequantize(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("qnn.dequantize expects 1 arg, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "qnn.dequantize")
	if err != nil {
		return nil, err
	}
	if !data.DType.IsQuantized() && data.DType != tensor.Int32 {
		return nil, fmt.Errorf("qnn.dequantize input must be quantized, got %s", data.DType)
	}
	return &TensorType{Shape: data.Shape, DType: tensor.Float32}, nil
}

func inferQnnRequantize(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("qnn.requantize expects 1 arg, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "qnn.requantize")
	if err != nil {
		return nil, err
	}
	if !data.DType.IsQuantized() && data.DType != tensor.Int32 {
		return nil, fmt.Errorf("qnn.requantize input must be quantized/int32, got %s", data.DType)
	}
	if attrs.Float("input_scale", 0) <= 0 || attrs.Float("output_scale", 0) <= 0 {
		return nil, fmt.Errorf("qnn.requantize requires positive input_scale and output_scale")
	}
	dt, err := qnnOutDType(attrs, tensor.UInt8)
	if err != nil {
		return nil, err
	}
	if !dt.IsQuantized() {
		return nil, fmt.Errorf("qnn.requantize out_dtype must be int8/uint8, got %s", dt)
	}
	q := tensor.QuantParams{
		Scale:     attrs.Float("output_scale", 0),
		ZeroPoint: int32(attrs.Int("output_zero_point", 0)),
	}
	return &TensorType{Shape: data.Shape, DType: dt, Quant: &q}, nil
}

func inferQnnConv2D(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("qnn.conv2d expects 2 args, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "qnn.conv2d data")
	if err != nil {
		return nil, err
	}
	weight, err := AsTensorType(args[1], "qnn.conv2d weight")
	if err != nil {
		return nil, err
	}
	if !data.DType.IsQuantized() || !weight.DType.IsQuantized() {
		return nil, fmt.Errorf("qnn.conv2d requires quantized data/weight, got %s / %s", data.DType, weight.DType)
	}
	inScale := attrs.Float("input_scale", 0)
	kScale := attrs.Float("kernel_scale", 0)
	if inScale <= 0 || kScale <= 0 {
		return nil, fmt.Errorf("qnn.conv2d requires positive input_scale/kernel_scale")
	}
	// Spatial arithmetic is identical to float conv2d; reuse it by faking a
	// float data type pair.
	fData := &TensorType{Shape: data.Shape, DType: tensor.Float32}
	fWeight := &TensorType{Shape: weight.Shape, DType: tensor.Float32}
	out, err := inferConv2D([]Type{fData, fWeight}, attrs)
	if err != nil {
		return nil, fmt.Errorf("qnn.conv2d: %v", err)
	}
	ot := out.(*TensorType)
	// Accumulator output: int32 with scale = Si*Sk, zero point 0 (TVM
	// convention); a following qnn.requantize narrows back to 8 bits.
	return &TensorType{
		Shape: ot.Shape,
		DType: tensor.Int32,
		Quant: &tensor.QuantParams{Scale: inScale * kScale, ZeroPoint: 0},
	}, nil
}

func inferQnnDense(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("qnn.dense expects 2 args, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "qnn.dense data")
	if err != nil {
		return nil, err
	}
	weight, err := AsTensorType(args[1], "qnn.dense weight")
	if err != nil {
		return nil, err
	}
	if !data.DType.IsQuantized() || !weight.DType.IsQuantized() {
		return nil, fmt.Errorf("qnn.dense requires quantized data/weight, got %s / %s", data.DType, weight.DType)
	}
	if len(data.Shape) != 2 || len(weight.Shape) != 2 || data.Shape[1] != weight.Shape[1] {
		return nil, fmt.Errorf("qnn.dense shape mismatch: %s vs %s", data.Shape, weight.Shape)
	}
	inScale := attrs.Float("input_scale", 0)
	kScale := attrs.Float("kernel_scale", 0)
	if inScale <= 0 || kScale <= 0 {
		return nil, fmt.Errorf("qnn.dense requires positive input_scale/kernel_scale")
	}
	return &TensorType{
		Shape: tensor.Shape{data.Shape[0], weight.Shape[0]},
		DType: tensor.Int32,
		Quant: &tensor.QuantParams{Scale: inScale * kScale, ZeroPoint: 0},
	}, nil
}

func inferQnnAdd(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("qnn.add expects 2 args, got %d", len(args))
	}
	a, err := AsTensorType(args[0], "qnn.add lhs")
	if err != nil {
		return nil, err
	}
	b, err := AsTensorType(args[1], "qnn.add rhs")
	if err != nil {
		return nil, err
	}
	if !a.DType.IsQuantized() || a.DType != b.DType {
		return nil, fmt.Errorf("qnn.add requires matching quantized dtypes, got %s / %s", a.DType, b.DType)
	}
	shape, err := BroadcastShapes(a.Shape, b.Shape)
	if err != nil {
		return nil, fmt.Errorf("qnn.add: %v", err)
	}
	for _, k := range []string{"lhs_scale", "rhs_scale", "output_scale"} {
		if attrs.Float(k, 0) <= 0 {
			return nil, fmt.Errorf("qnn.add requires positive %s", k)
		}
	}
	q := tensor.QuantParams{
		Scale:     attrs.Float("output_scale", 0),
		ZeroPoint: int32(attrs.Int("output_zero_point", 0)),
	}
	return &TensorType{Shape: shape, DType: a.DType, Quant: &q}, nil
}

func inferQnnConcatenate(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("qnn.concatenate expects 1 tuple arg, got %d", len(args))
	}
	out, err := inferConcatenateShapeOnly(args[0], attrs)
	if err != nil {
		return nil, err
	}
	if attrs.Float("output_scale", 0) <= 0 {
		return nil, fmt.Errorf("qnn.concatenate requires positive output_scale")
	}
	q := tensor.QuantParams{
		Scale:     attrs.Float("output_scale", 0),
		ZeroPoint: int32(attrs.Int("output_zero_point", 0)),
	}
	out.Quant = &q
	return out, nil
}

// inferConcatenateShapeOnly reuses the float concatenate shape logic while
// ignoring the per-field quant agreement requirement.
func inferConcatenateShapeOnly(arg Type, attrs Attrs) (*TensorType, error) {
	tup, ok := arg.(*TupleType)
	if !ok {
		return nil, fmt.Errorf("qnn.concatenate expects a tuple argument, got %s", arg)
	}
	stripped := make([]Type, len(tup.Fields))
	for i, f := range tup.Fields {
		t, err := AsTensorType(f, fmt.Sprintf("qnn.concatenate field %d", i))
		if err != nil {
			return nil, err
		}
		stripped[i] = &TensorType{Shape: t.Shape, DType: t.DType, Quant: nil}
	}
	// Temporarily treat fields as unquantized for the shape computation.
	base := make([]Type, len(stripped))
	for i := range stripped {
		st := stripped[i].(*TensorType)
		base[i] = &TensorType{Shape: st.Shape, DType: tensor.Float32}
	}
	out, err := inferConcatenate([]Type{&TupleType{Fields: base}}, attrs)
	if err != nil {
		return nil, err
	}
	ot := out.(*TensorType)
	return &TensorType{Shape: ot.Shape, DType: stripped[0].(*TensorType).DType}, nil
}

// inferQnnFusedBias validates the optional absorbed bias operand of a fused
// qnn anchor: a rank-1 int32 vector matching the output-channel count.
func inferQnnFusedBias(arg Type, channels int, op string) error {
	bias, err := AsTensorType(arg, op+" bias")
	if err != nil {
		return err
	}
	if bias.DType != tensor.Int32 {
		return fmt.Errorf("%s bias must be int32, got %s", op, bias.DType)
	}
	if len(bias.Shape) != 1 || bias.Shape[0] != channels {
		return fmt.Errorf("%s bias shape %s does not match %d output channels", op, bias.Shape, channels)
	}
	return nil
}

// inferQnnFusedOut narrows a fused anchor's int32 accumulator type to the
// requantized output described by the absorbed requant_* attributes.
func inferQnnFusedOut(acc *TensorType, attrs Attrs, op string) (Type, error) {
	if attrs.Float("requant_input_scale", 0) <= 0 || attrs.Float("requant_output_scale", 0) <= 0 {
		return nil, fmt.Errorf("%s requires positive requant_input_scale and requant_output_scale", op)
	}
	dt := tensor.UInt8
	if s := attrs.Str("requant_out_dtype", ""); s != "" {
		var err error
		if dt, err = tensor.ParseDType(s); err != nil {
			return nil, err
		}
	}
	if !dt.IsQuantized() {
		return nil, fmt.Errorf("%s requant_out_dtype must be int8/uint8, got %s", op, dt)
	}
	q := tensor.QuantParams{
		Scale:     attrs.Float("requant_output_scale", 0),
		ZeroPoint: int32(attrs.Int("requant_output_zero_point", 0)),
	}
	return &TensorType{Shape: acc.Shape, DType: dt, Quant: &q}, nil
}

// Fused anchors: qnn.conv2d / qnn.dense with the following bias_add,
// requantize and activation absorbed into a single launch (the Neuron
// fusion pass emits these; topi/fused.go holds the kernels). Output is the
// requantized 8-bit tensor rather than the int32 accumulator.
func inferQnnConv2DFused(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 2 && len(args) != 3 {
		return nil, fmt.Errorf("qnn.conv2d_fused expects 2 or 3 args, got %d", len(args))
	}
	out, err := inferQnnConv2D(args[:2], attrs)
	if err != nil {
		return nil, err
	}
	acc := out.(*TensorType)
	if len(args) == 3 {
		if err := inferQnnFusedBias(args[2], acc.Shape[3], "qnn.conv2d_fused"); err != nil {
			return nil, err
		}
	}
	return inferQnnFusedOut(acc, attrs, "qnn.conv2d_fused")
}

func inferQnnDenseFused(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 2 && len(args) != 3 {
		return nil, fmt.Errorf("qnn.dense_fused expects 2 or 3 args, got %d", len(args))
	}
	out, err := inferQnnDense(args[:2], attrs)
	if err != nil {
		return nil, err
	}
	acc := out.(*TensorType)
	if len(args) == 3 {
		if err := inferQnnFusedBias(args[2], acc.Shape[1], "qnn.dense_fused"); err != nil {
			return nil, err
		}
	}
	return inferQnnFusedOut(acc, attrs, "qnn.dense_fused")
}

var (
	OpQnnQuantize    = RegisterOp("qnn.quantize", PatternElemWise, inferQnnQuantize)
	OpQnnDequantize  = RegisterOp("qnn.dequantize", PatternElemWise, inferQnnDequantize)
	OpQnnRequantize  = RegisterOp("qnn.requantize", PatternElemWise, inferQnnRequantize)
	OpQnnConv2D      = RegisterOp("qnn.conv2d", PatternOutEWiseFusable, inferQnnConv2D)
	OpQnnDense       = RegisterOp("qnn.dense", PatternOutEWiseFusable, inferQnnDense)
	OpQnnAdd         = RegisterOp("qnn.add", PatternBroadcast, inferQnnAdd)
	OpQnnConcatenate = RegisterOp("qnn.concatenate", PatternInjective, inferQnnConcatenate)

	OpQnnConv2DFused = RegisterOp("qnn.conv2d_fused", PatternOutEWiseFusable, inferQnnConv2DFused)
	OpQnnDenseFused  = RegisterOp("qnn.dense_fused", PatternOutEWiseFusable, inferQnnDenseFused)
)
