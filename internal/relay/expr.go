package relay

import (
	"fmt"

	"repro/internal/tensor"
)

// Expr is a node of the relay AST. Nodes are immutable after construction
// (passes rewrite by rebuilding); identity is pointer identity, which is what
// visitor memoization and the partitioner's region maps key on.
type Expr interface {
	isExpr()
	// CheckedType returns the type computed by the InferType pass, or nil
	// if the expression has not been type-checked yet.
	CheckedType() Type
	setCheckedType(Type)
	stamp(ep uint64) bool
	memoGet(ep uint64) (Expr, bool)
	memoSet(ep uint64, r Expr)
}

// exprBase carries the checked type shared by all node kinds, plus the
// traversal scratch used by visitor.go: an epoch stamp and a rewrite memo.
// Interface-keyed memo maps (hash + incremental growth) dominated
// compile-path profiles; a per-node epoch compare is a single load. Each
// traversal draws a fresh epoch from a global counter, so stale stamps from
// earlier traversals can never be mistaken for this one's. The cost is that
// traversals over a shared expression graph are not safe to run
// concurrently — the same contract as TVM's ExprVisitor/ExprMutator.
type exprBase struct {
	typ   Type
	epoch uint64
	memo  Expr
}

func (b *exprBase) CheckedType() Type     { return b.typ }
func (b *exprBase) setCheckedType(t Type) { b.typ = t }

// stamp marks the node as visited in epoch ep, reporting whether it already
// was. Used by visit-only traversals (PostOrderVisit, FreeVars).
func (b *exprBase) stamp(ep uint64) bool {
	if b.epoch == ep {
		return true
	}
	b.epoch = ep
	return false
}

// memoGet/memoSet record a rewrite result for epoch ep. Rewrite uses these
// instead of stamp so that a node's memo value is always paired with the
// epoch that produced it.
func (b *exprBase) memoGet(ep uint64) (Expr, bool) {
	if b.epoch == ep {
		return b.memo, true
	}
	return nil, false
}

func (b *exprBase) memoSet(ep uint64, r Expr) {
	b.epoch, b.memo = ep, r
}

// Var is a function parameter or graph input. TypeAnnotation is the declared
// type (required for function parameters so inference has a starting point).
type Var struct {
	exprBase
	Name           string
	TypeAnnotation Type
}

func (*Var) isExpr() {}

// NewVar constructs a typed variable.
func NewVar(name string, ty Type) *Var {
	v := &Var{Name: name, TypeAnnotation: ty}
	v.setCheckedType(ty)
	return v
}

// Constant wraps a tensor literal (weights, biases, scalar attributes that
// ride as inputs).
type Constant struct {
	exprBase
	Value *tensor.Tensor
}

func (*Constant) isExpr() {}

// Const constructs a constant expression.
func Const(v *tensor.Tensor) *Constant {
	c := &Constant{Value: v}
	tt := &TensorType{Shape: v.Shape.Clone(), DType: v.DType}
	if v.Quant != nil {
		q := *v.Quant
		tt.Quant = &q
	}
	c.setCheckedType(tt)
	return c
}

// ConstScalar constructs a rank-0 float32 constant.
func ConstScalar(v float32) *Constant { return Const(tensor.Scalar(v)) }

// Call applies an operator (or a partitioned sub-function) to arguments.
type Call struct {
	exprBase
	Op    *Op  // non-nil for operator calls
	Fn    Expr // non-nil for calls to Function values (BYOC regions)
	Args  []Expr
	Attrs Attrs
}

func (*Call) isExpr() {}

// NewCall constructs an operator call.
func NewCall(op *Op, args []Expr, attrs Attrs) *Call {
	if attrs == nil {
		attrs = Attrs{}
	}
	return &Call{Op: op, Args: args, Attrs: attrs}
}

// NewFnCall constructs a call whose callee is a Function expression (the form
// PartitionGraph produces for external regions).
func NewFnCall(fn Expr, args []Expr) *Call {
	return &Call{Fn: fn, Args: args, Attrs: Attrs{}}
}

// OpName returns the callee operator name, or "" for function calls.
func (c *Call) OpName() string {
	if c.Op != nil {
		return c.Op.Name
	}
	return ""
}

// Tuple groups several values (multi-output layers, concatenate inputs).
type Tuple struct {
	exprBase
	Fields []Expr
}

func (*Tuple) isExpr() {}

// NewTuple constructs a tuple expression.
func NewTuple(fields []Expr) *Tuple { return &Tuple{Fields: fields} }

// TupleGetItem projects one field out of a tuple-valued expression.
type TupleGetItem struct {
	exprBase
	Tuple Expr
	Index int
}

func (*TupleGetItem) isExpr() {}

// NewTupleGetItem constructs a tuple projection.
func NewTupleGetItem(t Expr, i int) *TupleGetItem { return &TupleGetItem{Tuple: t, Index: i} }

// FnAttr* are the well-known function attribute keys used by the BYOC flow,
// mirroring TVM's.
const (
	FnAttrCompiler     = "Compiler"      // external codegen name, e.g. "nir"
	FnAttrGlobalSymbol = "global_symbol" // exported symbol of a partitioned fn
	FnAttrComposite    = "Composite"     // fused-pattern name inside a region
	FnAttrPrimitive    = "Primitive"     // fused kernel produced by FuseOps
)

// Function is a relay function: the body of a module-level definition or a
// partitioned external region.
type Function struct {
	exprBase
	Params []*Var
	Body   Expr
	// FnAttrs carries the BYOC markers (Compiler, global_symbol, ...).
	FnAttrs map[string]string
}

func (*Function) isExpr() {}

// NewFunc constructs a function expression.
func NewFunc(params []*Var, body Expr) *Function {
	return &Function{Params: params, Body: body, FnAttrs: map[string]string{}}
}

// Attr returns a function attribute value ("" when absent).
func (f *Function) Attr(key string) string {
	if f.FnAttrs == nil {
		return ""
	}
	return f.FnAttrs[key]
}

// WithAttr returns a shallow copy of f with the attribute set.
func (f *Function) WithAttr(key, val string) *Function {
	nf := &Function{Params: f.Params, Body: f.Body, FnAttrs: map[string]string{}}
	for k, v := range f.FnAttrs {
		nf.FnAttrs[k] = v
	}
	nf.FnAttrs[key] = val
	nf.setCheckedType(f.CheckedType())
	return nf
}

// TensorTypeOf returns the checked TensorType of e, panicking if the
// expression is untyped or tuple-typed. Passes that run after InferType use
// this accessor.
func TensorTypeOf(e Expr) *TensorType {
	t := e.CheckedType()
	if t == nil {
		panic(fmt.Sprintf("relay: expression %T has no checked type (run InferType first)", e))
	}
	tt, ok := t.(*TensorType)
	if !ok {
		panic(fmt.Sprintf("relay: expression %T has non-tensor type %s", e, t))
	}
	return tt
}
