package relay

import "sync/atomic"

// This file provides the AST traversal infrastructure the paper's Listing 1
// is built on: a memoized post-order DFS visitor (TVM's ExprVisitor) and a
// bottom-up rewriter (TVM's ExprMutator).
//
// Visited-sets and rewrite memos normally live on the nodes themselves
// (exprBase epoch stamps) rather than in interface-keyed maps: traversals
// run once per pass per build, and map hashing plus incremental growth
// dominated compile-path profiles. Each traversal draws a fresh epoch, so
// no clearing is needed between runs. A node holds exactly one stamp, so
// only the outermost traversal may use it: nested traversals (a visitor
// callback walking a sub-function) and concurrent traversals detect each
// other through traversalDepth and fall back to a private map, which keeps
// them correct at the old cost.
var (
	traversalEpoch atomic.Uint64
	traversalDepth atomic.Int32
)

// seenFunc returns the visited-check for one traversal: it reports (and
// records) whether a node was already visited. Outermost traversals use the
// node epoch stamp; nested or concurrent ones get a map.
func seenFunc(outermost bool, ep uint64) func(Expr) bool {
	if outermost {
		return func(e Expr) bool { return e.stamp(ep) }
	}
	visited := map[Expr]bool{}
	return func(e Expr) bool {
		if visited[e] {
			return true
		}
		visited[e] = true
		return false
	}
}

// PostOrderVisit calls fn exactly once per reachable node, children before
// parents. Shared sub-expressions (the IR is a DAG) are visited once.
func PostOrderVisit(e Expr, fn func(Expr)) {
	outermost := traversalDepth.Add(1) == 1
	defer traversalDepth.Add(-1)
	seen := seenFunc(outermost, traversalEpoch.Add(1))
	var walk func(Expr)
	walk = func(e Expr) {
		if e == nil || seen(e) {
			return
		}
		switch n := e.(type) {
		case *Var, *Constant:
		case *Call:
			if n.Fn != nil {
				walk(n.Fn)
			}
			for _, a := range n.Args {
				walk(a)
			}
		case *Tuple:
			for _, f := range n.Fields {
				walk(f)
			}
		case *TupleGetItem:
			walk(n.Tuple)
		case *Function:
			for _, p := range n.Params {
				walk(p)
			}
			walk(n.Body)
		}
		fn(e)
	}
	walk(e)
}

// Rewrite rebuilds the expression bottom-up, calling fn on each node after
// its children have been rewritten. fn may return the node unchanged.
// Memoization preserves sharing: a sub-expression reachable through two paths
// is rewritten once and both parents reference the same result. Checked types
// are invalidated on rebuilt nodes; rerun InferType afterwards.
func Rewrite(e Expr, fn func(Expr) Expr) Expr {
	outermost := traversalDepth.Add(1) == 1
	defer traversalDepth.Add(-1)
	var memoGet func(Expr) (Expr, bool)
	var memoSet func(Expr, Expr)
	if outermost {
		ep := traversalEpoch.Add(1)
		memoGet = func(e Expr) (Expr, bool) { return e.memoGet(ep) }
		memoSet = func(e, r Expr) { e.memoSet(ep, r) }
	} else {
		memo := map[Expr]Expr{}
		memoGet = func(e Expr) (Expr, bool) { r, ok := memo[e]; return r, ok }
		memoSet = func(e, r Expr) { memo[e] = r }
	}
	var walk func(Expr) Expr
	walk = func(e Expr) Expr {
		if e == nil {
			return nil
		}
		if r, ok := memoGet(e); ok {
			return r
		}
		var rebuilt Expr
		switch n := e.(type) {
		case *Var, *Constant:
			rebuilt = n
		case *Call:
			newFn := n.Fn
			if n.Fn != nil {
				newFn = walk(n.Fn)
			}
			newArgs := make([]Expr, len(n.Args))
			changed := newFn != n.Fn
			for i, a := range n.Args {
				newArgs[i] = walk(a)
				changed = changed || newArgs[i] != a
			}
			if changed {
				rebuilt = &Call{Op: n.Op, Fn: newFn, Args: newArgs, Attrs: n.Attrs}
			} else {
				rebuilt = n
			}
		case *Tuple:
			newFields := make([]Expr, len(n.Fields))
			changed := false
			for i, f := range n.Fields {
				newFields[i] = walk(f)
				changed = changed || newFields[i] != f
			}
			if changed {
				rebuilt = &Tuple{Fields: newFields}
			} else {
				rebuilt = n
			}
		case *TupleGetItem:
			nt := walk(n.Tuple)
			if nt != n.Tuple {
				rebuilt = &TupleGetItem{Tuple: nt, Index: n.Index}
			} else {
				rebuilt = n
			}
		case *Function:
			nb := walk(n.Body)
			if nb != n.Body {
				nf := &Function{Params: n.Params, Body: nb, FnAttrs: n.FnAttrs}
				rebuilt = nf
			} else {
				rebuilt = n
			}
		default:
			rebuilt = e
		}
		out := fn(rebuilt)
		memoSet(e, out)
		return out
	}
	return walk(e)
}

// FreeVars returns the variables used by e that are not bound by any
// Function parameter list inside e, in first-use order. The BYOC partitioner
// uses this to compute the parameter list of a lifted region.
func FreeVars(e Expr) []*Var {
	bound := map[*Var]bool{}
	vseen := map[*Var]bool{}
	var free []*Var
	outermost := traversalDepth.Add(1) == 1
	defer traversalDepth.Add(-1)
	seen := seenFunc(outermost, traversalEpoch.Add(1))
	var walk func(Expr)
	walk = func(e Expr) {
		if e == nil {
			return
		}
		// Vars may legitimately be revisited (no early-out for them); for
		// all other nodes, memoize.
		if _, isVar := e.(*Var); !isVar {
			if seen(e) {
				return
			}
		}
		switch n := e.(type) {
		case *Var:
			if !bound[n] && !vseen[n] {
				vseen[n] = true
				free = append(free, n)
			}
		case *Constant:
		case *Call:
			if n.Fn != nil {
				walk(n.Fn)
			}
			for _, a := range n.Args {
				walk(a)
			}
		case *Tuple:
			for _, f := range n.Fields {
				walk(f)
			}
		case *TupleGetItem:
			walk(n.Tuple)
		case *Function:
			for _, p := range n.Params {
				bound[p] = true
			}
			walk(n.Body)
		}
	}
	walk(e)
	return free
}

// CountNodes returns the number of distinct reachable AST nodes; used by
// tests and by the bench harness to report graph sizes.
func CountNodes(e Expr) int {
	n := 0
	PostOrderVisit(e, func(Expr) { n++ })
	return n
}

// CountOps returns the number of operator-call nodes whose name matches any
// of the given names; with no names it counts all op calls.
func CountOps(e Expr, names ...string) int {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	n := 0
	PostOrderVisit(e, func(x Expr) {
		c, ok := x.(*Call)
		if !ok || c.Op == nil {
			return
		}
		if len(want) == 0 || want[c.Op.Name] {
			n++
		}
	})
	return n
}
