package relay

// This file provides the AST traversal infrastructure the paper's Listing 1
// is built on: a memoized post-order DFS visitor (TVM's ExprVisitor) and a
// bottom-up rewriter (TVM's ExprMutator).

// PostOrderVisit calls fn exactly once per reachable node, children before
// parents. Shared sub-expressions (the IR is a DAG) are visited once.
func PostOrderVisit(e Expr, fn func(Expr)) {
	visited := map[Expr]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		if e == nil || visited[e] {
			return
		}
		visited[e] = true
		switch n := e.(type) {
		case *Var, *Constant:
		case *Call:
			if n.Fn != nil {
				walk(n.Fn)
			}
			for _, a := range n.Args {
				walk(a)
			}
		case *Tuple:
			for _, f := range n.Fields {
				walk(f)
			}
		case *TupleGetItem:
			walk(n.Tuple)
		case *Function:
			for _, p := range n.Params {
				walk(p)
			}
			walk(n.Body)
		}
		fn(e)
	}
	walk(e)
}

// Rewrite rebuilds the expression bottom-up, calling fn on each node after
// its children have been rewritten. fn may return the node unchanged.
// Memoization preserves sharing: a sub-expression reachable through two paths
// is rewritten once and both parents reference the same result. Checked types
// are invalidated on rebuilt nodes; rerun InferType afterwards.
func Rewrite(e Expr, fn func(Expr) Expr) Expr {
	memo := map[Expr]Expr{}
	var walk func(Expr) Expr
	walk = func(e Expr) Expr {
		if e == nil {
			return nil
		}
		if r, ok := memo[e]; ok {
			return r
		}
		var rebuilt Expr
		switch n := e.(type) {
		case *Var, *Constant:
			rebuilt = n
		case *Call:
			newFn := n.Fn
			if n.Fn != nil {
				newFn = walk(n.Fn)
			}
			newArgs := make([]Expr, len(n.Args))
			changed := newFn != n.Fn
			for i, a := range n.Args {
				newArgs[i] = walk(a)
				changed = changed || newArgs[i] != a
			}
			if changed {
				rebuilt = &Call{Op: n.Op, Fn: newFn, Args: newArgs, Attrs: n.Attrs}
			} else {
				rebuilt = n
			}
		case *Tuple:
			newFields := make([]Expr, len(n.Fields))
			changed := false
			for i, f := range n.Fields {
				newFields[i] = walk(f)
				changed = changed || newFields[i] != f
			}
			if changed {
				rebuilt = &Tuple{Fields: newFields}
			} else {
				rebuilt = n
			}
		case *TupleGetItem:
			nt := walk(n.Tuple)
			if nt != n.Tuple {
				rebuilt = &TupleGetItem{Tuple: nt, Index: n.Index}
			} else {
				rebuilt = n
			}
		case *Function:
			nb := walk(n.Body)
			if nb != n.Body {
				nf := &Function{Params: n.Params, Body: nb, FnAttrs: n.FnAttrs}
				rebuilt = nf
			} else {
				rebuilt = n
			}
		default:
			rebuilt = e
		}
		out := fn(rebuilt)
		memo[e] = out
		return out
	}
	return walk(e)
}

// FreeVars returns the variables used by e that are not bound by any
// Function parameter list inside e, in first-use order. The BYOC partitioner
// uses this to compute the parameter list of a lifted region.
func FreeVars(e Expr) []*Var {
	bound := map[*Var]bool{}
	seen := map[*Var]bool{}
	var free []*Var
	visited := map[Expr]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		if e == nil || visited[e] {
			return
		}
		// Vars may legitimately be revisited (no early-out for them); for
		// all other nodes, memoize.
		if _, isVar := e.(*Var); !isVar {
			visited[e] = true
		}
		switch n := e.(type) {
		case *Var:
			if !bound[n] && !seen[n] {
				seen[n] = true
				free = append(free, n)
			}
		case *Constant:
		case *Call:
			if n.Fn != nil {
				walk(n.Fn)
			}
			for _, a := range n.Args {
				walk(a)
			}
		case *Tuple:
			for _, f := range n.Fields {
				walk(f)
			}
		case *TupleGetItem:
			walk(n.Tuple)
		case *Function:
			for _, p := range n.Params {
				bound[p] = true
			}
			walk(n.Body)
		}
	}
	walk(e)
	return free
}

// CountNodes returns the number of distinct reachable AST nodes; used by
// tests and by the bench harness to report graph sizes.
func CountNodes(e Expr) int {
	n := 0
	PostOrderVisit(e, func(Expr) { n++ })
	return n
}

// CountOps returns the number of operator-call nodes whose name matches any
// of the given names; with no names it counts all op calls.
func CountOps(e Expr, names ...string) int {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	n := 0
	PostOrderVisit(e, func(x Expr) {
		c, ok := x.(*Call)
		if !ok || c.Op == nil {
			return
		}
		if len(want) == 0 || want[c.Op.Name] {
			n++
		}
	})
	return n
}
