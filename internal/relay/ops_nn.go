package relay

import (
	"fmt"

	"repro/internal/tensor"
)

// Neural-network operator registrations. All spatial operators use NHWC
// activations and OHWI convolution weights (see package tensor).

// ConvOutDim computes one spatial output extent of a convolution/pool:
// floor((in + padBefore + padAfter - effectiveKernel)/stride) + 1.
func ConvOutDim(in, kernel, stride, padBefore, padAfter, dilation int) (int, error) {
	eff := (kernel-1)*dilation + 1
	num := in + padBefore + padAfter - eff
	if num < 0 {
		return 0, fmt.Errorf("kernel %d (dilation %d) larger than padded input %d", kernel, dilation, in+padBefore+padAfter)
	}
	if stride <= 0 {
		return 0, fmt.Errorf("non-positive stride %d", stride)
	}
	return num/stride + 1, nil
}

func inferConv2D(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("nn.conv2d expects 2 args, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "nn.conv2d data")
	if err != nil {
		return nil, err
	}
	weight, err := AsTensorType(args[1], "nn.conv2d weight")
	if err != nil {
		return nil, err
	}
	if len(data.Shape) != 4 || len(weight.Shape) != 4 {
		return nil, fmt.Errorf("nn.conv2d expects 4-D data/weight, got %s / %s", data.Shape, weight.Shape)
	}
	n, h, w, c := data.Shape[0], data.Shape[1], data.Shape[2], data.Shape[3]
	oc, kh, kw, icPerGroup := weight.Shape[0], weight.Shape[1], weight.Shape[2], weight.Shape[3]
	groups := attrs.Int("groups", 1)
	if groups <= 0 {
		return nil, fmt.Errorf("nn.conv2d groups must be positive, got %d", groups)
	}
	if c%groups != 0 || oc%groups != 0 {
		return nil, fmt.Errorf("nn.conv2d channels %d / out %d not divisible by groups %d", c, oc, groups)
	}
	if icPerGroup != c/groups {
		return nil, fmt.Errorf("nn.conv2d weight input channels %d, want %d (=%d/%d)", icPerGroup, c/groups, c, groups)
	}
	sh, sw := attrs.IntPair("strides", 1)
	dh, dw := attrs.IntPair("dilation", 1)
	pad := attrs.Pad4("padding")
	oh, err := ConvOutDim(h, kh, sh, pad[0], pad[2], dh)
	if err != nil {
		return nil, fmt.Errorf("nn.conv2d height: %v", err)
	}
	ow, err := ConvOutDim(w, kw, sw, pad[1], pad[3], dw)
	if err != nil {
		return nil, fmt.Errorf("nn.conv2d width: %v", err)
	}
	if data.DType != tensor.Float32 {
		return nil, fmt.Errorf("nn.conv2d supports float32 only (use qnn.conv2d for %s)", data.DType)
	}
	return TType(tensor.Float32, n, oh, ow, oc), nil
}

func inferDense(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("nn.dense expects 2 args, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "nn.dense data")
	if err != nil {
		return nil, err
	}
	weight, err := AsTensorType(args[1], "nn.dense weight")
	if err != nil {
		return nil, err
	}
	if len(data.Shape) != 2 || len(weight.Shape) != 2 {
		return nil, fmt.Errorf("nn.dense expects 2-D data/weight, got %s / %s", data.Shape, weight.Shape)
	}
	if data.Shape[1] != weight.Shape[1] {
		return nil, fmt.Errorf("nn.dense reduction mismatch: data %s vs weight %s", data.Shape, weight.Shape)
	}
	if data.DType != tensor.Float32 {
		return nil, fmt.Errorf("nn.dense supports float32 only (use qnn.dense for %s)", data.DType)
	}
	return TType(tensor.Float32, data.Shape[0], weight.Shape[0]), nil
}

func inferBiasAdd(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("nn.bias_add expects 2 args, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "nn.bias_add data")
	if err != nil {
		return nil, err
	}
	bias, err := AsTensorType(args[1], "nn.bias_add bias")
	if err != nil {
		return nil, err
	}
	if len(bias.Shape) != 1 {
		return nil, fmt.Errorf("nn.bias_add bias must be 1-D, got %s", bias.Shape)
	}
	axis := attrs.Int("axis", -1)
	if axis < 0 {
		axis += len(data.Shape)
	}
	if axis < 0 || axis >= len(data.Shape) {
		return nil, fmt.Errorf("nn.bias_add axis out of range for %s", data.Shape)
	}
	if data.Shape[axis] != bias.Shape[0] {
		return nil, fmt.Errorf("nn.bias_add channel mismatch: %d vs %d", data.Shape[axis], bias.Shape[0])
	}
	return data, nil
}

// sameTypeElemwise returns args[0]'s type unchanged — the inference rule for
// unary elementwise ops. Quantization parameters propagate with the type,
// implementing the §3.3 pass-through rule at the type level.
func sameTypeElemwise(name string) TypeInferFn {
	return func(args []Type, attrs Attrs) (Type, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("%s expects 1 arg, got %d", name, len(args))
		}
		if _, err := AsTensorType(args[0], name); err != nil {
			return nil, err
		}
		return args[0], nil
	}
}

func pool2DInfer(name string) TypeInferFn {
	return func(args []Type, attrs Attrs) (Type, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("%s expects 1 arg, got %d", name, len(args))
		}
		data, err := AsTensorType(args[0], name)
		if err != nil {
			return nil, err
		}
		if len(data.Shape) != 4 {
			return nil, fmt.Errorf("%s expects 4-D NHWC input, got %s", name, data.Shape)
		}
		kh, kw := attrs.IntPair("pool_size", 1)
		sh, sw := attrs.IntPair("strides", 1)
		pad := attrs.Pad4("padding")
		oh, err := ConvOutDim(data.Shape[1], kh, sh, pad[0], pad[2], 1)
		if err != nil {
			return nil, fmt.Errorf("%s height: %v", name, err)
		}
		ow, err := ConvOutDim(data.Shape[2], kw, sw, pad[1], pad[3], 1)
		if err != nil {
			return nil, fmt.Errorf("%s width: %v", name, err)
		}
		out := &TensorType{
			Shape: tensor.Shape{data.Shape[0], oh, ow, data.Shape[3]},
			DType: data.DType,
			Quant: data.Quant, // pooling preserves scale/zero-point
		}
		return out, nil
	}
}

func inferGlobalAvgPool(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("nn.global_avg_pool2d expects 1 arg, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "nn.global_avg_pool2d")
	if err != nil {
		return nil, err
	}
	if len(data.Shape) != 4 {
		return nil, fmt.Errorf("nn.global_avg_pool2d expects 4-D NHWC input, got %s", data.Shape)
	}
	return &TensorType{
		Shape: tensor.Shape{data.Shape[0], 1, 1, data.Shape[3]},
		DType: data.DType,
		Quant: data.Quant,
	}, nil
}

func inferSoftmax(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("nn.softmax expects 1 arg, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "nn.softmax")
	if err != nil {
		return nil, err
	}
	if data.DType != tensor.Float32 {
		return nil, fmt.Errorf("nn.softmax supports float32 only, got %s", data.DType)
	}
	return data, nil
}

func inferBatchNorm(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 5 {
		return nil, fmt.Errorf("nn.batch_norm expects data,gamma,beta,mean,var (5 args), got %d", len(args))
	}
	data, err := AsTensorType(args[0], "nn.batch_norm data")
	if err != nil {
		return nil, err
	}
	c := data.Shape[len(data.Shape)-1]
	for i, nm := range []string{"gamma", "beta", "moving_mean", "moving_var"} {
		t, err := AsTensorType(args[i+1], "nn.batch_norm "+nm)
		if err != nil {
			return nil, err
		}
		if len(t.Shape) != 1 || t.Shape[0] != c {
			return nil, fmt.Errorf("nn.batch_norm %s must be 1-D of %d channels, got %s", nm, c, t.Shape)
		}
	}
	// Simplification vs. TVM: inference-mode batch_norm yields the normalized
	// tensor directly rather than a (tensor, mean, var) tuple.
	return data, nil
}

func inferPad(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("nn.pad expects 1 arg, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "nn.pad")
	if err != nil {
		return nil, err
	}
	if len(data.Shape) != 4 {
		return nil, fmt.Errorf("nn.pad expects 4-D NHWC input, got %s", data.Shape)
	}
	pad := attrs.Pad4("pad_width")
	out := data.Shape.Clone()
	out[1] += pad[0] + pad[2]
	out[2] += pad[1] + pad[3]
	return &TensorType{Shape: out, DType: data.DType, Quant: data.Quant}, nil
}

func inferUpsampling(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("nn.upsampling expects 1 arg, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "nn.upsampling")
	if err != nil {
		return nil, err
	}
	if len(data.Shape) != 4 {
		return nil, fmt.Errorf("nn.upsampling expects 4-D NHWC input, got %s", data.Shape)
	}
	scale := attrs.Int("scale", 2)
	if scale < 1 {
		return nil, fmt.Errorf("nn.upsampling scale must be >= 1, got %d", scale)
	}
	out := data.Shape.Clone()
	out[1] *= scale
	out[2] *= scale
	return &TensorType{Shape: out, DType: data.DType, Quant: data.Quant}, nil
}

func inferBatchFlatten(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("nn.batch_flatten expects 1 arg, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "nn.batch_flatten")
	if err != nil {
		return nil, err
	}
	if len(data.Shape) == 0 {
		return nil, fmt.Errorf("nn.batch_flatten on scalar")
	}
	rest := 1
	for _, d := range data.Shape[1:] {
		rest *= d
	}
	return &TensorType{Shape: tensor.Shape{data.Shape[0], rest}, DType: data.DType, Quant: data.Quant}, nil
}

func inferLRN(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("nn.lrn expects 1 arg, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "nn.lrn")
	if err != nil {
		return nil, err
	}
	if data.DType != tensor.Float32 {
		return nil, fmt.Errorf("nn.lrn supports float32 only")
	}
	return data, nil
}

// YOLO detection-head decode: applies sigmoid to box x/y, objectness and
// class channels for every anchor. Output shape equals input shape. This op
// is deliberately outside the NeuroPilot supported set, reproducing the
// paper's "NeuroPilot-only has no statistics for some models" effect.
func inferYoloOutput(args []Type, attrs Attrs) (Type, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("vision.yolo_output expects 1 arg, got %d", len(args))
	}
	data, err := AsTensorType(args[0], "vision.yolo_output")
	if err != nil {
		return nil, err
	}
	if len(data.Shape) != 4 {
		return nil, fmt.Errorf("vision.yolo_output expects 4-D NHWC input, got %s", data.Shape)
	}
	anchors := attrs.Int("anchors", 3)
	classes := attrs.Int("classes", 80)
	if data.Shape[3] != anchors*(5+classes) {
		return nil, fmt.Errorf("vision.yolo_output channels %d != anchors*(5+classes) = %d", data.Shape[3], anchors*(5+classes))
	}
	return data, nil
}

// Exported op handles. Grabbing them as package variables both forces
// registration at init time and gives builder code compile-time names.
var (
	OpConv2D        = RegisterOp("nn.conv2d", PatternOutEWiseFusable, inferConv2D)
	OpDense         = RegisterOp("nn.dense", PatternOutEWiseFusable, inferDense)
	OpBiasAdd       = RegisterOp("nn.bias_add", PatternBroadcast, inferBiasAdd)
	OpReLU          = RegisterOp("nn.relu", PatternElemWise, sameTypeElemwise("nn.relu"))
	OpLeakyReLU     = RegisterOp("nn.leaky_relu", PatternElemWise, sameTypeElemwise("nn.leaky_relu"))
	OpSigmoid       = RegisterOp("sigmoid", PatternElemWise, sameTypeElemwise("sigmoid"))
	OpTanh          = RegisterOp("tanh", PatternElemWise, sameTypeElemwise("tanh"))
	OpExp           = RegisterOp("exp", PatternElemWise, sameTypeElemwise("exp"))
	OpSqrt          = RegisterOp("sqrt", PatternElemWise, sameTypeElemwise("sqrt"))
	OpMaxPool2D     = RegisterOp("nn.max_pool2d", PatternInjective, pool2DInfer("nn.max_pool2d"))
	OpAvgPool2D     = RegisterOp("nn.avg_pool2d", PatternInjective, pool2DInfer("nn.avg_pool2d"))
	OpGlobalAvgPool = RegisterOp("nn.global_avg_pool2d", PatternCommReduce, inferGlobalAvgPool)
	OpSoftmax       = RegisterOp("nn.softmax", PatternOpaque, inferSoftmax)
	OpBatchNorm     = RegisterOp("nn.batch_norm", PatternBroadcast, inferBatchNorm)
	OpDropout       = RegisterOp("nn.dropout", PatternElemWise, sameTypeElemwise("nn.dropout"))
	OpPad           = RegisterOp("nn.pad", PatternInjective, inferPad)
	OpUpsampling    = RegisterOp("nn.upsampling", PatternInjective, inferUpsampling)
	OpBatchFlatten  = RegisterOp("nn.batch_flatten", PatternInjective, inferBatchFlatten)
	OpLRN           = RegisterOp("nn.lrn", PatternOpaque, inferLRN)
	OpYoloOutput    = RegisterOp("vision.yolo_output", PatternOpaque, inferYoloOutput)
)
