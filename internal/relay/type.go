// Package relay implements the graph-level intermediate representation of the
// mini-TVM stack: a typed, functional expression IR modeled on TVM's Relay.
// A model imported from any frontend becomes a relay Module; graph passes
// (fusion, constant folding, BYOC annotation/partitioning) operate on it; and
// the graph executor or the NeuroPilot bridge consume the result.
package relay

import (
	"fmt"
	"strings"

	"repro/internal/tensor"
)

// Type is the checked type of a relay expression: either a TensorType or a
// TupleType.
type Type interface {
	isType()
	String() string
	// Same reports structural type equality.
	Same(Type) bool
}

// TensorType describes a tensor-valued expression. Quant is carried in the
// type for quantized tensors: relay QNN keeps quantization parameters on
// operator attributes, but tracking them in the checked type as well is what
// lets the BYOC converter attach them to every Neuron operand (paper §3.3).
type TensorType struct {
	Shape tensor.Shape
	DType tensor.DType
	Quant *tensor.QuantParams
}

func (*TensorType) isType() {}

func (t *TensorType) String() string {
	q := ""
	if t.Quant != nil {
		q = fmt.Sprintf(", q(%g,%d)", t.Quant.Scale, t.Quant.ZeroPoint)
	}
	return fmt.Sprintf("Tensor[%s, %s%s]", t.Shape, t.DType, q)
}

func (t *TensorType) Same(o Type) bool {
	ot, ok := o.(*TensorType)
	if !ok {
		return false
	}
	if t.DType != ot.DType || !t.Shape.Equal(ot.Shape) {
		return false
	}
	if (t.Quant == nil) != (ot.Quant == nil) {
		return false
	}
	if t.Quant != nil && *t.Quant != *ot.Quant {
		return false
	}
	return true
}

// TType is shorthand for constructing a float tensor type.
func TType(dt tensor.DType, shape ...int) *TensorType {
	return &TensorType{Shape: tensor.Shape(shape), DType: dt}
}

// QTType constructs a quantized tensor type.
func QTType(dt tensor.DType, q tensor.QuantParams, shape ...int) *TensorType {
	return &TensorType{Shape: tensor.Shape(shape), DType: dt, Quant: &q}
}

// TupleType is the type of a Tuple expression.
type TupleType struct {
	Fields []Type
}

func (*TupleType) isType() {}

func (t *TupleType) String() string {
	parts := make([]string, len(t.Fields))
	for i, f := range t.Fields {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func (t *TupleType) Same(o Type) bool {
	ot, ok := o.(*TupleType)
	if !ok || len(t.Fields) != len(ot.Fields) {
		return false
	}
	for i := range t.Fields {
		if !t.Fields[i].Same(ot.Fields[i]) {
			return false
		}
	}
	return true
}

// FuncType is the type of a Function expression.
type FuncType struct {
	Params []Type
	Ret    Type
}

func (*FuncType) isType() {}

func (t *FuncType) String() string {
	parts := make([]string, len(t.Params))
	for i, p := range t.Params {
		parts[i] = p.String()
	}
	return "fn(" + strings.Join(parts, ", ") + ") -> " + t.Ret.String()
}

func (t *FuncType) Same(o Type) bool {
	ot, ok := o.(*FuncType)
	if !ok || len(t.Params) != len(ot.Params) {
		return false
	}
	for i := range t.Params {
		if !t.Params[i].Same(ot.Params[i]) {
			return false
		}
	}
	return t.Ret.Same(ot.Ret)
}

// AsTensorType asserts that ty is a TensorType, returning an error mentioning
// ctx otherwise. Used throughout op type-inference functions.
func AsTensorType(ty Type, ctx string) (*TensorType, error) {
	tt, ok := ty.(*TensorType)
	if !ok {
		return nil, fmt.Errorf("relay: %s expects a tensor argument, got %s", ctx, ty)
	}
	return tt, nil
}
