package relay

import "fmt"

// InferTypes computes and stamps the checked type of every node reachable
// from e, children first. Variables must carry type annotations (frontends
// always emit them). Calls to Function values (partitioned regions) get the
// callee's return type.
//
// It returns the type of e. Errors carry the textual form of the offending
// call so frontend bugs are diagnosable.
//
// The stamped type doubles as the memo: operator calls, tuples, and
// projections are immutable once built, so a node that already carries a
// checked type — stamped at construction, or by the inference run after an
// earlier pass — cannot have changed and is returned without revisiting its
// subtree. Re-inference after a rewrite therefore costs O(new nodes), not
// O(graph); the verifier's checkOpCall independently re-derives every call
// type, so a pass that stamped a stale type is still caught.
//
// Two node kinds are excluded from the fast path: *Function (its Body and
// FnAttrs are assigned in place by partitioning and by tests, so a stamp
// proves nothing about the current body) and calls of function values (so a
// mutated callee reachable only through a stamped call is still re-walked).
// Each is re-derived at most once per InferTypes run, recorded in a
// per-run memo: a node cannot be mutated mid-run, and without the memo a
// DAG of fused-function calls (e.g. residual blocks, whose fused add takes
// two args sharing the upstream chain) re-walks paths exponentially.
func InferTypes(e Expr) (Type, error) {
	var rerr error
	// rederived memoizes this run's excluded-node results (see above).
	var rederived map[Expr]Type
	var infer func(Expr) Type
	infer = func(e Expr) Type {
		if rerr != nil {
			return nil
		}
		if t := e.CheckedType(); t != nil {
			switch n := e.(type) {
			case *Function:
				if t, ok := rederived[e]; ok {
					return t
				}
				// fall through: re-derive from the current body
			case *Call:
				if n.Fn == nil {
					return t
				}
				if t, ok := rederived[e]; ok {
					return t
				}
				// fall through: re-walk the callee
			default:
				return t
			}
		}
		var t Type
		switch n := e.(type) {
		case *Var:
			if n.TypeAnnotation == nil {
				rerr = fmt.Errorf("relay: variable %q has no type annotation", n.Name)
				return nil
			}
			t = n.TypeAnnotation
		case *Constant:
			t = n.CheckedType() // set at construction
		case *Call:
			args := make([]Type, len(n.Args))
			for i, a := range n.Args {
				args[i] = infer(a)
				if rerr != nil {
					return nil
				}
			}
			switch {
			case n.Op != nil:
				ot, err := n.Op.Infer(args, n.Attrs)
				if err != nil {
					rerr = fmt.Errorf("relay: type error in %s(%s): %v", n.Op.Name, n.Attrs, err)
					return nil
				}
				t = ot
			case n.Fn != nil:
				ft := infer(n.Fn)
				if rerr != nil {
					return nil
				}
				fty, ok := ft.(*FuncType)
				if !ok {
					rerr = fmt.Errorf("relay: call of non-function value of type %s", ft)
					return nil
				}
				if len(fty.Params) != len(args) {
					rerr = fmt.Errorf("relay: call arity %d, function wants %d", len(args), len(fty.Params))
					return nil
				}
				for i := range args {
					if !fty.Params[i].Same(args[i]) {
						rerr = fmt.Errorf("relay: call arg %d type %s, function wants %s", i, args[i], fty.Params[i])
						return nil
					}
				}
				t = fty.Ret
			default:
				rerr = fmt.Errorf("relay: call with neither op nor function callee")
				return nil
			}
		case *Tuple:
			fields := make([]Type, len(n.Fields))
			for i, f := range n.Fields {
				fields[i] = infer(f)
				if rerr != nil {
					return nil
				}
			}
			t = &TupleType{Fields: fields}
		case *TupleGetItem:
			tt := infer(n.Tuple)
			if rerr != nil {
				return nil
			}
			tup, ok := tt.(*TupleType)
			if !ok {
				rerr = fmt.Errorf("relay: tuple projection on non-tuple type %s", tt)
				return nil
			}
			if n.Index < 0 || n.Index >= len(tup.Fields) {
				rerr = fmt.Errorf("relay: tuple index %d out of range (%d fields)", n.Index, len(tup.Fields))
				return nil
			}
			t = tup.Fields[n.Index]
		case *Function:
			params := make([]Type, len(n.Params))
			for i, p := range n.Params {
				params[i] = infer(p)
				if rerr != nil {
					return nil
				}
			}
			ret := infer(n.Body)
			if rerr != nil {
				return nil
			}
			t = &FuncType{Params: params, Ret: ret}
		default:
			rerr = fmt.Errorf("relay: unknown expression kind %T", e)
			return nil
		}
		e.setCheckedType(t)
		switch n := e.(type) {
		case *Function:
			if rederived == nil {
				rederived = make(map[Expr]Type)
			}
			rederived[e] = t
		case *Call:
			if n.Fn != nil {
				if rederived == nil {
					rederived = make(map[Expr]Type)
				}
				rederived[e] = t
			}
		}
		return t
	}
	t := infer(e)
	if rerr != nil {
		return nil, rerr
	}
	return t, nil
}

// InferModule type-checks every function in the module.
func InferModule(m *Module) error {
	var err error
	m.Functions(func(name string, f *Function) {
		if err != nil {
			return
		}
		if _, ierr := InferTypes(f); ierr != nil {
			err = fmt.Errorf("in @%s: %w", name, ierr)
		}
	})
	return err
}
