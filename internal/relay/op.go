package relay

import (
	"fmt"
	"sort"
	"sync"
)

// TypeInferFn computes the result type of a call from argument types and
// attributes. It should validate shapes/dtypes and return descriptive errors;
// the InferType pass surfaces them with expression context.
type TypeInferFn func(args []Type, attrs Attrs) (Type, error)

// OpPattern classifies operators for the fusion pass, mirroring TVM's
// TOpPattern. Fusion merges chains up to kCommReduce and attaches
// elementwise/broadcast ops to a preceding complex-out-fusable op.
type OpPattern int

const (
	// PatternElemWise ops map each input element to one output element.
	PatternElemWise OpPattern = iota
	// PatternBroadcast ops are elementwise with broadcasting (add, mul).
	PatternBroadcast
	// PatternInjective ops are data movement (reshape, transpose, concat).
	PatternInjective
	// PatternCommReduce ops reduce over axes (mean, global pool).
	PatternCommReduce
	// PatternOutEWiseFusable ops are complex kernels whose output can absorb
	// a trailing elementwise chain (conv2d, dense).
	PatternOutEWiseFusable
	// PatternOpaque ops cannot be fused with anything.
	PatternOpaque
)

// Op is a registered relay operator. Ops are process-global singletons
// looked up by name, so pointer equality identifies an operator.
type Op struct {
	Name    string
	Infer   TypeInferFn
	Pattern OpPattern
}

var (
	opMu       sync.RWMutex
	opRegistry = map[string]*Op{}
)

// RegisterOp installs an operator in the global registry. Registering the
// same name twice panics: duplicate registrations indicate an init-order bug.
func RegisterOp(name string, pattern OpPattern, infer TypeInferFn) *Op {
	opMu.Lock()
	defer opMu.Unlock()
	if _, dup := opRegistry[name]; dup {
		panic(fmt.Sprintf("relay: duplicate operator registration %q", name))
	}
	op := &Op{Name: name, Infer: infer, Pattern: pattern}
	opRegistry[name] = op
	return op
}

// GetOp looks up an operator by name, panicking if it is not registered.
// Frontends use LookupOp to report user-facing errors instead.
func GetOp(name string) *Op {
	opMu.RLock()
	defer opMu.RUnlock()
	op, ok := opRegistry[name]
	if !ok {
		panic(fmt.Sprintf("relay: operator %q is not registered", name))
	}
	return op
}

// LookupOp looks up an operator by name.
func LookupOp(name string) (*Op, bool) {
	opMu.RLock()
	defer opMu.RUnlock()
	op, ok := opRegistry[name]
	return op, ok
}

// OpNames returns all registered operator names, sorted.
func OpNames() []string {
	opMu.RLock()
	defer opMu.RUnlock()
	names := make([]string, 0, len(opRegistry))
	for n := range opRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
