package relay

import (
	"strings"
	"testing"

	"repro/internal/tensor"
)

// TestDOTEscaping feeds hostile names and attrs through ToDOT and checks
// the emitted document cannot be broken out of: quotes stay balanced, raw
// control characters never reach the output, and newlines arrive as DOT
// line breaks rather than literal breaks in the middle of an attribute.
func TestDOTEscaping(t *testing.T) {
	evil := "x\"];\nevil [label=\"pwned"
	v := NewVar(evil, TType(tensor.Float32, 4))
	call := NewCall(GetOp("add"), []Expr{v, v}, Attrs{
		"note":  "line1\nline2\t<b>&\"quoted\"</b>\\path",
		"bell":  "\a\x1b",
		"plain": 7,
	})
	m := NewModule(NewFunc([]*Var{v}, call))
	dot := ToDOT(m)

	if strings.Contains(dot, "pwned [") || strings.Contains(dot, `"];`+"\n"+"evil") {
		t.Fatalf("crafted name broke out of its label:\n%s", dot)
	}
	for _, r := range dot {
		if r != '\n' && (r < 0x20 || r == 0x7f) {
			t.Fatalf("raw control character %q in DOT output", r)
		}
	}
	// Every quote is either an attribute delimiter or escaped; unescaped
	// quotes must come in pairs on each line.
	for _, line := range strings.Split(dot, "\n") {
		unescaped := 0
		for i := 0; i < len(line); i++ {
			if line[i] == '"' && (i == 0 || line[i-1] != '\\') {
				unescaped++
			}
		}
		if unescaped%2 != 0 {
			t.Fatalf("unbalanced quotes on line %q", line)
		}
	}
	if !strings.Contains(dot, `\n`) {
		t.Error("newline in attr not rendered as a DOT line break")
	}
	if !strings.Contains(dot, "<b>&") {
		t.Error("HTML metacharacters should survive inside the quoted label")
	}
}

// TestDOTAttrOrderDeterministic pins sorted attr rendering: two maps with
// identical contents must serialize identically.
func TestDOTAttrOrderDeterministic(t *testing.T) {
	build := func() string {
		v := NewVar("x", TType(tensor.Float32, 4))
		c := NewCall(GetOp("add"), []Expr{v, v}, Attrs{
			"alpha": 1, "beta": 2, "gamma": 3, "delta": 4, "epsilon": 5,
		})
		return ToDOT(NewModule(NewFunc([]*Var{v}, c)))
	}
	a := build()
	for i := 0; i < 8; i++ {
		if b := build(); b != a {
			t.Fatal("attr order varies across renders")
		}
	}
	if !strings.Contains(a, "alpha=1 beta=2 delta=4 epsilon=5 gamma=3") {
		t.Errorf("attrs not in sorted key order:\n%s", a)
	}
}

func TestDOTQuoteTable(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `"plain"`},
		{`has "quotes"`, `"has \"quotes\""`},
		{"two\nlines", `"two\nlines"`},
		{`back\slash`, `"back\\slash"`},
		{"tab\there", `"tab here"`},
		{"bell\a", `"bell?"`},
		{"<html>&", `"<html>&"`},
	}
	for _, tc := range cases {
		if got := dotQuote(tc.in); got != tc.want {
			t.Errorf("dotQuote(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}
