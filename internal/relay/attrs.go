package relay

import (
	"fmt"
	"sort"
	"strings"
)

// Attrs carries per-call operator attributes (strides, padding, axis, QNN
// scales...). Values are restricted to a small set of JSON-friendly kinds:
// int, float64, bool, string, []int, []float64.
type Attrs map[string]interface{}

// Clone shallow-copies the attribute map (slice values are copied too, since
// passes may rewrite them).
func (a Attrs) Clone() Attrs {
	c := make(Attrs, len(a))
	for k, v := range a {
		switch vv := v.(type) {
		case []int:
			c[k] = append([]int(nil), vv...)
		case []float64:
			c[k] = append([]float64(nil), vv...)
		default:
			c[k] = v
		}
	}
	return c
}

// Int returns an integer attribute, or def when absent.
func (a Attrs) Int(key string, def int) int {
	v, ok := a[key]
	if !ok {
		return def
	}
	switch vv := v.(type) {
	case int:
		return vv
	case float64:
		return int(vv)
	}
	panic(fmt.Sprintf("relay: attr %q is %T, want int", key, v))
}

// Float returns a float attribute, or def when absent.
func (a Attrs) Float(key string, def float64) float64 {
	v, ok := a[key]
	if !ok {
		return def
	}
	switch vv := v.(type) {
	case float64:
		return vv
	case int:
		return float64(vv)
	}
	panic(fmt.Sprintf("relay: attr %q is %T, want float", key, v))
}

// Bool returns a boolean attribute, or def when absent.
func (a Attrs) Bool(key string, def bool) bool {
	v, ok := a[key]
	if !ok {
		return def
	}
	b, ok := v.(bool)
	if !ok {
		panic(fmt.Sprintf("relay: attr %q is %T, want bool", key, v))
	}
	return b
}

// Str returns a string attribute, or def when absent.
func (a Attrs) Str(key, def string) string {
	v, ok := a[key]
	if !ok {
		return def
	}
	s, ok := v.(string)
	if !ok {
		panic(fmt.Sprintf("relay: attr %q is %T, want string", key, v))
	}
	return s
}

// Ints returns an []int attribute, or def when absent.
func (a Attrs) Ints(key string, def []int) []int {
	v, ok := a[key]
	if !ok {
		return def
	}
	s, ok := v.([]int)
	if !ok {
		panic(fmt.Sprintf("relay: attr %q is %T, want []int", key, v))
	}
	return s
}

// IntPair returns a 2-element []int attribute (strides, pool sizes), or
// (def, def) when absent. A scalar int is broadcast to both positions.
func (a Attrs) IntPair(key string, def int) (int, int) {
	v, ok := a[key]
	if !ok {
		return def, def
	}
	switch vv := v.(type) {
	case int:
		return vv, vv
	case []int:
		if len(vv) == 1 {
			return vv[0], vv[0]
		}
		if len(vv) == 2 {
			return vv[0], vv[1]
		}
	}
	panic(fmt.Sprintf("relay: attr %q = %v, want int or 2-element []int", key, v))
}

// Pad4 returns a 4-element padding attribute (top, left, bottom, right).
// Accepts scalar, [2] (symmetric h/w) or [4] forms, defaulting to zero.
func (a Attrs) Pad4(key string) [4]int {
	v, ok := a[key]
	if !ok {
		return [4]int{}
	}
	switch vv := v.(type) {
	case int:
		return [4]int{vv, vv, vv, vv}
	case []int:
		switch len(vv) {
		case 1:
			return [4]int{vv[0], vv[0], vv[0], vv[0]}
		case 2:
			return [4]int{vv[0], vv[1], vv[0], vv[1]}
		case 4:
			return [4]int{vv[0], vv[1], vv[2], vv[3]}
		}
	}
	panic(fmt.Sprintf("relay: attr %q = %v, want int, [2]int or [4]int", key, v))
}

// String renders attributes deterministically (sorted by key), used by the
// pretty printer and golden tests.
func (a Attrs) String() string {
	if len(a) == 0 {
		return ""
	}
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%v", k, a[k])
	}
	return strings.Join(parts, ", ")
}
