package relay

import (
	"fmt"
	"sort"
	"strings"
)

// ToDOT renders the module as a Graphviz digraph — one subgraph cluster per
// function, operator calls as boxes, variables as ellipses, constants
// folded into small labels. `npc -dot` exposes it for visualizing how
// partition_for_nir carved a model.
func ToDOT(m *Module) string {
	var b strings.Builder
	b.WriteString("digraph module {\n  rankdir=TB;\n  node [fontsize=10];\n")
	cluster := 0
	m.Functions(func(name string, fn *Function) {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n", cluster)
		label := name
		if c := fn.Attr(FnAttrCompiler); c != "" {
			label += " [Compiler=" + c + "]"
		}
		fmt.Fprintf(&b, "    label=%q;\n", label)
		if fn.Attr(FnAttrCompiler) != "" {
			b.WriteString("    style=filled; color=lightgrey;\n")
		}
		writeDOTBody(&b, fn, fmt.Sprintf("f%d", cluster))
		b.WriteString("  }\n")
		cluster++
	})
	b.WriteString("}\n")
	return b.String()
}

func writeDOTBody(b *strings.Builder, fn *Function, prefix string) {
	ids := map[Expr]string{}
	next := 0
	fresh := func() string {
		next++
		return fmt.Sprintf("%s_n%d", prefix, next-1)
	}
	var visit func(e Expr) string
	visit = func(e Expr) string {
		if id, ok := ids[e]; ok {
			return id
		}
		id := fresh()
		ids[e] = id
		switch n := e.(type) {
		case *Var:
			fmt.Fprintf(b, "    %s [label=%q shape=ellipse];\n", id, "%"+n.Name)
		case *Constant:
			fmt.Fprintf(b, "    %s [label=%q shape=note fontsize=8];\n", id,
				fmt.Sprintf("const %s%s", n.Value.DType, n.Value.Shape))
		case *Call:
			label := n.OpName()
			if n.Fn != nil {
				if f, ok := n.Fn.(*Function); ok {
					if sym := f.Attr(FnAttrGlobalSymbol); sym != "" {
						label = "call @" + sym
					} else if f.Attr(FnAttrPrimitive) != "" {
						label = "fused{" + primitiveOps(f) + "}"
					} else {
						label = "call fn"
					}
				}
			}
			fmt.Fprintf(b, "    %s [label=%q shape=box];\n", id, label)
			for _, a := range n.Args {
				fmt.Fprintf(b, "    %s -> %s;\n", visit(a), id)
			}
		case *Tuple:
			fmt.Fprintf(b, "    %s [label=\"tuple\" shape=diamond];\n", id)
			for _, f := range n.Fields {
				fmt.Fprintf(b, "    %s -> %s;\n", visit(f), id)
			}
		case *TupleGetItem:
			fmt.Fprintf(b, "    %s [label=%q shape=diamond];\n", id, fmt.Sprintf(".%d", n.Index))
			fmt.Fprintf(b, "    %s -> %s;\n", visit(n.Tuple), id)
		case *Function:
			// Inline function value (already summarized by the caller).
			fmt.Fprintf(b, "    %s [label=\"fn\" shape=box];\n", id)
		}
		return id
	}
	out := visit(fn.Body)
	retID := fresh()
	fmt.Fprintf(b, "    %s [label=\"output\" shape=ellipse style=dashed];\n", retID)
	fmt.Fprintf(b, "    %s -> %s;\n", out, retID)
}

// primitiveOps summarizes the op names inside a fused primitive.
func primitiveOps(f *Function) string {
	set := map[string]bool{}
	PostOrderVisit(f.Body, func(e Expr) {
		if c, ok := e.(*Call); ok && c.Op != nil {
			set[c.Op.Name] = true
		}
	})
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}
