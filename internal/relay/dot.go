package relay

import (
	"fmt"
	"sort"
	"strings"
)

// ToDOT renders the module as a Graphviz digraph — one subgraph cluster per
// function, operator calls as boxes, variables as ellipses, constants
// folded into small labels. `npc -dot` exposes it for visualizing how
// partition_for_nir carved a model.
func ToDOT(m *Module) string {
	var b strings.Builder
	b.WriteString("digraph module {\n  rankdir=TB;\n  node [fontsize=10];\n")
	cluster := 0
	m.Functions(func(name string, fn *Function) {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n", cluster)
		label := name
		if c := fn.Attr(FnAttrCompiler); c != "" {
			label += " [Compiler=" + c + "]"
		}
		fmt.Fprintf(&b, "    label=%s;\n", dotQuote(label))
		if fn.Attr(FnAttrCompiler) != "" {
			b.WriteString("    style=filled; color=lightgrey;\n")
		}
		writeDOTBody(&b, fn, fmt.Sprintf("f%d", cluster))
		b.WriteString("  }\n")
		cluster++
	})
	b.WriteString("}\n")
	return b.String()
}

func writeDOTBody(b *strings.Builder, fn *Function, prefix string) {
	ids := map[Expr]string{}
	next := 0
	fresh := func() string {
		next++
		return fmt.Sprintf("%s_n%d", prefix, next-1)
	}
	var visit func(e Expr) string
	visit = func(e Expr) string {
		if id, ok := ids[e]; ok {
			return id
		}
		id := fresh()
		ids[e] = id
		switch n := e.(type) {
		case *Var:
			fmt.Fprintf(b, "    %s [label=%s shape=ellipse];\n", id, dotQuote("%"+n.Name))
		case *Constant:
			fmt.Fprintf(b, "    %s [label=%s shape=note fontsize=8];\n", id,
				dotQuote(fmt.Sprintf("const %s%s", n.Value.DType, n.Value.Shape)))
		case *Call:
			label := n.OpName()
			if n.Fn != nil {
				if f, ok := n.Fn.(*Function); ok {
					if sym := f.Attr(FnAttrGlobalSymbol); sym != "" {
						label = "call @" + sym
					} else if f.Attr(FnAttrPrimitive) != "" {
						label = "fused{" + primitiveOps(f) + "}"
					} else {
						label = "call fn"
					}
				}
			} else if len(n.Attrs) > 0 {
				label += "\n" + attrSummary(n.Attrs)
			}
			fmt.Fprintf(b, "    %s [label=%s shape=box];\n", id, dotQuote(label))
			for _, a := range n.Args {
				fmt.Fprintf(b, "    %s -> %s;\n", visit(a), id)
			}
		case *Tuple:
			fmt.Fprintf(b, "    %s [label=\"tuple\" shape=diamond];\n", id)
			for _, f := range n.Fields {
				fmt.Fprintf(b, "    %s -> %s;\n", visit(f), id)
			}
		case *TupleGetItem:
			fmt.Fprintf(b, "    %s [label=\".%d\" shape=diamond];\n", id, n.Index)
			fmt.Fprintf(b, "    %s -> %s;\n", visit(n.Tuple), id)
		case *Function:
			// Inline function value (already summarized by the caller).
			fmt.Fprintf(b, "    %s [label=\"fn\" shape=box];\n", id)
		}
		return id
	}
	out := visit(fn.Body)
	retID := fresh()
	fmt.Fprintf(b, "    %s [label=\"output\" shape=ellipse style=dashed];\n", retID)
	fmt.Fprintf(b, "    %s -> %s;\n", out, retID)
}

// dotQuote renders s as a Graphviz double-quoted string. Go's %q is the
// wrong tool here: the DOT language only understands \" and \n-style line
// breaks inside quoted strings, so Go escapes like \t or \x1b would reach
// the renderer verbatim — and a crafted op attr containing a quote or
// newline must not be able to terminate the attribute early.
// Quotes and backslashes are escaped, newlines become DOT line breaks,
// and remaining control characters are replaced with '?'. HTML
// metacharacters (<, >, &) need no rewriting inside a quoted string —
// quoting itself keeps them out of HTML-like label position — so they are
// passed through and render literally.
func dotQuote(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for _, r := range s {
		switch {
		case r == '"':
			b.WriteString(`\"`)
		case r == '\\':
			b.WriteString(`\\`)
		case r == '\n':
			b.WriteString(`\n`)
		case r == '\r' || r == '\t':
			b.WriteByte(' ')
		case r < 0x20 || r == 0x7f:
			b.WriteByte('?')
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// attrSummary renders call attributes as "k=v" pairs in sorted key order,
// so DOT output is deterministic regardless of map iteration.
func attrSummary(attrs Attrs) string {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, attrs[k]))
	}
	return strings.Join(parts, " ")
}

// primitiveOps summarizes the op names inside a fused primitive.
func primitiveOps(f *Function) string {
	set := map[string]bool{}
	PostOrderVisit(f.Body, func(e Expr) {
		if c, ok := e.(*Call); ok && c.Op != nil {
			set[c.Op.Name] = true
		}
	})
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}
