package video

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestSourceValidation(t *testing.T) {
	if _, err := NewSource(8, 8, 1, 1, 1); err == nil {
		t.Error("tiny frame accepted")
	}
	if _, err := NewSource(64, 64, 1, 1, 1); err != nil {
		t.Errorf("valid source rejected: %v", err)
	}
}

func TestFramePixelRange(t *testing.T) {
	src, err := NewSource(96, 64, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range src.Frames(3) {
		for i, n := 0, f.Image.Elems(); i < n; i++ {
			v := f.Image.GetF(i)
			if v < 0 || v > 1 {
				t.Fatalf("pixel %d = %g out of [0,1]", i, v)
			}
		}
		if !f.Image.Shape.Equal(tensor.Shape{1, 64, 96, 3}) {
			t.Fatalf("frame shape %s", f.Image.Shape)
		}
	}
}

func TestActorsMoveAndStayInBounds(t *testing.T) {
	src, err := NewSource(64, 64, 2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	var prev []Actor
	moved := false
	for _, f := range src.Frames(20) {
		for i, a := range f.Truth {
			box := a.Box.Clamp(64, 64)
			if box.W <= 0 || box.H <= 0 {
				t.Fatalf("frame %d: actor %d degenerate box %+v", f.Index, i, a.Box)
			}
			if prev != nil && (a.Box.X != prev[i].Box.X || a.Box.Y != prev[i].Box.Y) {
				moved = true
			}
		}
		prev = f.Truth
	}
	if !moved {
		t.Error("no actor ever moved")
	}
}

func TestTruthIsSnapshot(t *testing.T) {
	src, err := NewSource(64, 64, 1, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	f1 := src.Next()
	saved := f1.Truth[0].Box
	src.Next()
	if f1.Truth[0].Box != saved {
		t.Error("frame truth mutated by advancing the source")
	}
}

func TestRectClamp(t *testing.T) {
	r := Rect{X: -5, Y: -5, W: 20, H: 20}.Clamp(10, 10)
	if r.X != 0 || r.Y != 0 || r.W != 10 || r.H != 10 {
		t.Errorf("clamp = %+v", r)
	}
	r = Rect{X: 8, Y: 8, W: 20, H: 20}.Clamp(10, 10)
	if r.W != 2 || r.H != 2 {
		t.Errorf("clamp = %+v", r)
	}
	r = Rect{X: 50, Y: 50, W: 5, H: 5}.Clamp(10, 10)
	if r.Area() != 0 {
		t.Errorf("out-of-canvas clamp = %+v", r)
	}
}

func TestRenderFacePatchSeparation(t *testing.T) {
	live := RenderFacePatch(32, 32, false, 1)
	spoof := RenderFacePatch(32, 32, true, 1)
	// Mean intensity of the live patch must exceed the spoofed one (the
	// calibration signal).
	mean := func(t2 *tensor.Tensor) float64 {
		s := 0.0
		for i := 0; i < t2.Elems(); i++ {
			s += t2.GetF(i)
		}
		return s / float64(t2.Elems())
	}
	if mean(live) <= mean(spoof) {
		t.Errorf("live patch (%.3f) should be brighter than spoofed (%.3f)",
			mean(live), mean(spoof))
	}
}

func TestCropResizeGradient(t *testing.T) {
	// A horizontal gradient must survive resizing monotonically.
	img := tensor.New(tensor.Float32, tensor.Shape{1, 4, 16, 3})
	for y := 0; y < 4; y++ {
		for x := 0; x < 16; x++ {
			for c := 0; c < 3; c++ {
				img.Set(float64(x)/16, 0, y, x, c)
			}
		}
	}
	out := CropResize(img, Rect{X: 0, Y: 0, W: 16, H: 4}, 4, 8, 3)
	for x := 1; x < 8; x++ {
		if out.At(0, 2, x, 0) < out.At(0, 2, x-1, 0) {
			t.Fatalf("resized gradient not monotone at %d", x)
		}
	}
}

// Property: IoU is symmetric, bounded in [0,1], and 1 exactly on identical
// non-degenerate boxes.
func TestIoUProperty(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a := Rect{int(ax % 50), int(ay % 50), int(aw%20) + 1, int(ah%20) + 1}
		b := Rect{int(bx % 50), int(by % 50), int(bw%20) + 1, int(bh%20) + 1}
		ab, ba := IoU(a, b), IoU(b, a)
		if ab != ba {
			return false
		}
		if ab < 0 || ab > 1 {
			return false
		}
		return IoU(a, a) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
