// Package video provides the synthetic video source for the application
// showcase. The paper feeds a camera video through the pipeline; here a
// deterministic generator synthesizes frames with planted "objects"
// (textured rectangles) and "faces" (bright elliptical blobs, some marked as
// spoofed prints with a flat texture), so the detector → anti-spoofing →
// emotion dependency chain actually fires, with realistic frame-to-frame
// motion.
package video

import (
	"fmt"

	"repro/internal/tensor"
)

// Rect is an axis-aligned box in pixel coordinates.
type Rect struct {
	X, Y, W, H int
}

// Clamp restricts the box to a width×height canvas.
func (r Rect) Clamp(width, height int) Rect {
	if r.X < 0 {
		r.W += r.X
		r.X = 0
	}
	if r.Y < 0 {
		r.H += r.Y
		r.Y = 0
	}
	if r.X+r.W > width {
		r.W = width - r.X
	}
	if r.Y+r.H > height {
		r.H = height - r.Y
	}
	if r.W < 0 {
		r.W = 0
	}
	if r.H < 0 {
		r.H = 0
	}
	return r
}

// Area returns the box area.
func (r Rect) Area() int { return r.W * r.H }

// IoU computes intersection-over-union between two boxes — the overlap test
// of the paper's Listing 5.
func IoU(a, b Rect) float64 {
	x1 := max(a.X, b.X)
	y1 := max(a.Y, b.Y)
	x2 := min(a.X+a.W, b.X+b.W)
	y2 := min(a.Y+a.H, b.Y+b.H)
	if x2 <= x1 || y2 <= y1 {
		return 0
	}
	inter := (x2 - x1) * (y2 - y1)
	union := a.Area() + b.Area() - inter
	if union <= 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Intersects reports any positive overlap.
func Intersects(a, b Rect) bool { return IoU(a, b) > 0 }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Rendering constants for face actors; the application calibrates its
// anti-spoofing threshold against these (see app.New).
const (
	// LiveFaceBrightness is the mean intensity of live faces (plus texture).
	LiveFaceBrightness float32 = 0.85
	// SpoofFaceBrightness is the flat intensity of printed-photo attacks.
	SpoofFaceBrightness float32 = 0.72
)

// Actor is one moving entity in the synthetic scene.
type Actor struct {
	Box     Rect
	VX, VY  int
	IsFace  bool
	Spoofed bool // printed-photo attack: flat texture
	Emotion int  // planted emotion index for face actors
}

// Frame is one video frame: an NHWC float32 RGB image in [0,1] plus the
// ground-truth actor boxes (used by tests and report generation, never by
// the models).
type Frame struct {
	Index int
	Image *tensor.Tensor // (1, H, W, 3)
	Truth []Actor
}

// Source generates deterministic frames.
type Source struct {
	W, H   int
	actors []Actor
	rng    *tensor.RNG
	frame  int
}

// NewSource creates a scene with nFaces face actors (alternating live and
// spoofed) and nObjects non-face objects.
func NewSource(w, h, nFaces, nObjects int, seed uint64) (*Source, error) {
	if w < 32 || h < 32 {
		return nil, fmt.Errorf("video: frame %dx%d too small", w, h)
	}
	s := &Source{W: w, H: h, rng: tensor.NewRNG(seed)}
	for i := 0; i < nFaces; i++ {
		size := h/6 + s.rng.Intn(h/8)
		s.actors = append(s.actors, Actor{
			Box: Rect{
				X: s.rng.Intn(w - size), Y: s.rng.Intn(h - size),
				W: size, H: size,
			},
			VX: s.rng.Intn(5) - 2, VY: s.rng.Intn(5) - 2,
			IsFace:  true,
			Spoofed: i%2 == 1,
			Emotion: s.rng.Intn(7),
		})
	}
	for i := 0; i < nObjects; i++ {
		bw := w/5 + s.rng.Intn(w/6)
		bh := h/4 + s.rng.Intn(h/6)
		s.actors = append(s.actors, Actor{
			Box: Rect{X: s.rng.Intn(max(1, w-bw)), Y: s.rng.Intn(max(1, h-bh)), W: bw, H: bh},
			VX:  s.rng.Intn(3) - 1, VY: s.rng.Intn(3) - 1,
		})
	}
	return s, nil
}

// Next renders the next frame and advances the scene.
func (s *Source) Next() *Frame {
	img := tensor.New(tensor.Float32, tensor.Shape{1, s.H, s.W, 3})
	data := img.F32()
	// Background: smooth gradient with low-amplitude noise.
	for y := 0; y < s.H; y++ {
		for x := 0; x < s.W; x++ {
			base := 0.15 + 0.1*float32(y)/float32(s.H)
			n := float32(s.rng.Float64()) * 0.02
			idx := (y*s.W + x) * 3
			data[idx] = base + n
			data[idx+1] = base + n*0.5
			data[idx+2] = base
		}
	}
	for _, a := range s.actors {
		s.renderActor(img, a)
	}
	f := &Frame{Index: s.frame, Image: img, Truth: append([]Actor(nil), s.actors...)}
	s.frame++
	// Advance motion with reflection at borders.
	for i := range s.actors {
		a := &s.actors[i]
		a.Box.X += a.VX
		a.Box.Y += a.VY
		if a.Box.X < 0 || a.Box.X+a.Box.W > s.W {
			a.VX = -a.VX
			a.Box.X += 2 * a.VX
		}
		if a.Box.Y < 0 || a.Box.Y+a.Box.H > s.H {
			a.VY = -a.VY
			a.Box.Y += 2 * a.VY
		}
	}
	return f
}

func (s *Source) renderActor(img *tensor.Tensor, a Actor) {
	box := a.Box.Clamp(s.W, s.H)
	data := img.F32()
	cx := float64(box.X) + float64(box.W)/2
	cy := float64(box.Y) + float64(box.H)/2
	rx := float64(box.W) / 2
	ry := float64(box.H) / 2
	for y := box.Y; y < box.Y+box.H; y++ {
		for x := box.X; x < box.X+box.W; x++ {
			idx := (y*s.W + x) * 3
			if a.IsFace {
				// Elliptical bright blob; live faces are bright and
				// textured, spoofed ones (printed photos) dimmer and flat.
				dx := (float64(x) - cx) / rx
				dy := (float64(y) - cy) / ry
				if dx*dx+dy*dy > 1 {
					continue
				}
				v := LiveFaceBrightness
				if a.Spoofed {
					v = SpoofFaceBrightness
				} else {
					v += float32(s.rng.Float64()-0.5) * 0.2
				}
				data[idx] = v
				data[idx+1] = v * 0.85
				data[idx+2] = v * 0.75
			} else {
				// Textured rectangle object.
				v := 0.4 + 0.2*float32((x+y)%7)/7
				data[idx] = v * 0.5
				data[idx+1] = v
				data[idx+2] = v * 0.8
			}
		}
	}
}

// Frames returns the next n frames.
func (s *Source) Frames(n int) []*Frame {
	out := make([]*Frame, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// RenderFacePatch renders a reference face crop exactly as the scene
// renderer would produce it — elliptical blob over background — for
// calibrating downstream models against live vs printed-photo appearance.
func RenderFacePatch(h, w int, spoofed bool, seed uint64) *tensor.Tensor {
	s := &Source{W: w, H: h, rng: tensor.NewRNG(seed)}
	img := tensor.New(tensor.Float32, tensor.Shape{1, h, w, 3})
	data := img.F32()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			base := 0.15 + 0.1*float32(y)/float32(h)
			idx := (y*w + x) * 3
			data[idx] = base
			data[idx+1] = base
			data[idx+2] = base
		}
	}
	s.renderActor(img, Actor{
		Box:     Rect{X: 0, Y: 0, W: w, H: h},
		IsFace:  true,
		Spoofed: spoofed,
	})
	return img
}

// CropResize extracts a box from a frame image and bilinearly resizes it to
// (outH, outW) — the face-region extraction feeding the anti-spoofing and
// emotion models. channels selects the output channel count (1 converts to
// grayscale for the emotion model).
func CropResize(img *tensor.Tensor, box Rect, outH, outW, channels int) *tensor.Tensor {
	h, w := img.Shape[1], img.Shape[2]
	box = box.Clamp(w, h)
	if box.W < 1 {
		box.W = 1
	}
	if box.H < 1 {
		box.H = 1
	}
	out := tensor.New(tensor.Float32, tensor.Shape{1, outH, outW, channels})
	for oy := 0; oy < outH; oy++ {
		sy := float64(box.Y) + (float64(oy)+0.5)*float64(box.H)/float64(outH) - 0.5
		for ox := 0; ox < outW; ox++ {
			sx := float64(box.X) + (float64(ox)+0.5)*float64(box.W)/float64(outW) - 0.5
			r := bilinear(img, sy, sx, 0)
			g := bilinear(img, sy, sx, 1)
			b := bilinear(img, sy, sx, 2)
			if channels == 1 {
				out.Set(0.299*r+0.587*g+0.114*b, 0, oy, ox, 0)
			} else {
				out.Set(r, 0, oy, ox, 0)
				out.Set(g, 0, oy, ox, 1)
				out.Set(b, 0, oy, ox, 2)
			}
		}
	}
	return out
}

func bilinear(img *tensor.Tensor, y, x float64, c int) float64 {
	h, w := img.Shape[1], img.Shape[2]
	x0, y0 := int(x), int(y)
	fx, fy := x-float64(x0), y-float64(y0)
	clampAt := func(yy, xx int) float64 {
		if yy < 0 {
			yy = 0
		}
		if yy >= h {
			yy = h - 1
		}
		if xx < 0 {
			xx = 0
		}
		if xx >= w {
			xx = w - 1
		}
		return img.At(0, yy, xx, c)
	}
	return clampAt(y0, x0)*(1-fx)*(1-fy) +
		clampAt(y0, x0+1)*fx*(1-fy) +
		clampAt(y0+1, x0)*(1-fx)*fy +
		clampAt(y0+1, x0+1)*fx*fy
}
