package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/runtime"
	"repro/internal/serve"
)

// The registry's per-model state machine:
//
//	Deploy(v2):  v2 —register→ ACTIVE (alias cutover)
//	             v1 ACTIVE → STANDBY         (pool stays warm for rollback)
//	             v0 STANDBY —drain→ RETIRED  (workers finish in-flight, exit)
//	Rollback:    STANDBY ⇄ ACTIVE            (pure alias pointer swap)
//	Remove:      ACTIVE, STANDBY —drain→ RETIRED; alias deleted
//
// The serving invariants: the public alias always targets a live pool (the
// cutover is one map write under the server mutex), a draining pool answers
// everything it admitted, and because every response is version-stamped by
// the worker that executed it, no response can mix versions across a cutover.

// States of one model version in the registry.
const (
	StateActive  = "active"  // the alias target: new requests route here
	StateStandby = "standby" // previous version, warm, rollback target
	StateRetired = "retired" // drained; kept for history only
)

// VersionInfo describes one deployed version of a model.
type VersionInfo struct {
	Model    string    `json:"model"`
	Version  string    `json:"version"`
	Endpoint string    `json:"endpoint"` // serve endpoint name (model@version)
	State    string    `json:"state"`
	CacheKey string    `json:"cache_key,omitempty"`
	Deployed time.Time `json:"deployed"`
}

type modelState struct {
	active  *VersionInfo
	standby *VersionInfo
	retired []*VersionInfo
}

// Registry manages versioned model lifecycles on one live serve.Server.
type Registry struct {
	srv *serve.Server

	mu     sync.Mutex
	models map[string]*modelState
}

// New wraps a serve.Server with a versioned registry.
func New(srv *serve.Server) *Registry {
	return &Registry{srv: srv, models: map[string]*modelState{}}
}

// EndpointName is the serve-endpoint naming scheme for a model version.
func EndpointName(model, version string) string { return model + "@" + version }

// Deploy hot-loads version of model and atomically cuts public traffic over
// to it: the new pool is registered and warmed first, the alias swap is one
// pointer write, the previous active version stays warm in standby for
// rollback, and the version it displaces from standby drains without
// dropping in-flight requests. cacheKey is recorded for introspection (use
// "" when the lib was built outside the artifact cache).
func (r *Registry) Deploy(model, version string, lib *runtime.Lib, opts serve.ModelOptions, cacheKey string) error {
	if model == "" || version == "" {
		return errors.New("registry: empty model or version")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.models[model]
	if m == nil {
		m = &modelState{}
		r.models[model] = m
	}
	ep := EndpointName(model, version)
	opts.Version = version
	if err := r.srv.Register(ep, lib, opts); err != nil {
		return fmt.Errorf("registry: deploy %s: %w", ep, err)
	}
	if err := r.srv.SetAlias(model, ep); err != nil {
		// Roll the half-deploy back so the registry and server stay agreed.
		_ = r.srv.DrainEndpoint(ep)
		return fmt.Errorf("registry: cutover to %s: %w", ep, err)
	}
	displaced := m.standby
	m.standby = m.active
	if m.standby != nil {
		m.standby.State = StateStandby
	}
	m.active = &VersionInfo{
		Model: model, Version: version, Endpoint: ep,
		State: StateActive, CacheKey: cacheKey, Deployed: time.Now(),
	}
	if displaced != nil {
		if err := r.srv.DrainEndpoint(displaced.Endpoint); err != nil {
			return fmt.Errorf("registry: retiring %s: %w", displaced.Endpoint, err)
		}
		displaced.State = StateRetired
		m.retired = append(m.retired, displaced)
	}
	return nil
}

// Rollback swaps the model's active and standby versions — a pure alias
// pointer swap; both pools are warm, so the cutover is instant in either
// direction. It fails when no standby version exists.
func (r *Registry) Rollback(model string) (restored string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.models[model]
	if m == nil || m.active == nil {
		return "", fmt.Errorf("registry: model %q not deployed", model)
	}
	if m.standby == nil {
		return "", fmt.Errorf("registry: model %q has no standby version to roll back to", model)
	}
	if err := r.srv.SetAlias(model, m.standby.Endpoint); err != nil {
		return "", fmt.Errorf("registry: rollback %s: %w", model, err)
	}
	m.active, m.standby = m.standby, m.active
	m.active.State = StateActive
	m.standby.State = StateStandby
	return m.active.Version, nil
}

// Remove unloads the model entirely: the alias is deleted (new requests get
// ErrUnknownModel), then the active and standby pools drain — every admitted
// request is still answered.
func (r *Registry) Remove(model string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.models[model]
	if m == nil || m.active == nil {
		return fmt.Errorf("registry: model %q not deployed", model)
	}
	r.srv.RemoveAlias(model)
	for _, v := range []*VersionInfo{m.active, m.standby} {
		if v == nil {
			continue
		}
		if err := r.srv.DrainEndpoint(v.Endpoint); err != nil {
			return fmt.Errorf("registry: removing %s: %w", v.Endpoint, err)
		}
		v.State = StateRetired
		m.retired = append(m.retired, v)
	}
	m.active, m.standby = nil, nil
	return nil
}

// Active returns the currently serving version of a model.
func (r *Registry) Active(model string) (VersionInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.models[model]
	if m == nil || m.active == nil {
		return VersionInfo{}, false
	}
	return *m.active, true
}

// Status snapshots every known version, sorted by model then state
// (active, standby, then retired in deployment order).
func (r *Registry) Status() []VersionInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []VersionInfo
	for _, n := range names {
		m := r.models[n]
		if m.active != nil {
			out = append(out, *m.active)
		}
		if m.standby != nil {
			out = append(out, *m.standby)
		}
		for _, v := range m.retired {
			out = append(out, *v)
		}
	}
	return out
}

// ------------------------------------------------------------------- admin

// LoadFunc materializes a deployable library for (model, version) — npserve
// wires the zoo build through the artifact cache here. The returned cacheKey
// is recorded on the VersionInfo.
type LoadFunc func(model, version string) (lib *runtime.Lib, opts serve.ModelOptions, cacheKey string, err error)

// AdminRequest is the body of every POST /admin/* lifecycle call.
type AdminRequest struct {
	Model   string `json:"model"`
	Version string `json:"version,omitempty"`
}

// AdminHandler returns the model-lifecycle HTTP surface, mounted by npserve
// under /admin/:
//
//	POST /admin/deploy   {"model":"emotion","version":"v2"}  → hot-load + cutover
//	POST /admin/rollback {"model":"emotion"}                 → alias swap to standby
//	POST /admin/remove   {"model":"emotion"}                 → drain + unload
//	GET  /admin/registry                                     → version state dump
//
// load may be nil, which disables /admin/deploy (405) — rollback and remove
// operate on pools that are already resident.
func (r *Registry) AdminHandler(load LoadFunc) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/admin/registry", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"versions": r.Status()})
	})
	mux.HandleFunc("/admin/deploy", func(w http.ResponseWriter, req *http.Request) {
		ar, ok := adminBody(w, req)
		if !ok {
			return
		}
		if load == nil {
			writeJSON(w, http.StatusMethodNotAllowed, errJSON("deploy disabled: no model loader configured"))
			return
		}
		if ar.Version == "" {
			writeJSON(w, http.StatusBadRequest, errJSON("missing version"))
			return
		}
		lib, opts, key, err := load(ar.Model, ar.Version)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errJSON(err.Error()))
			return
		}
		if err := r.Deploy(ar.Model, ar.Version, lib, opts, key); err != nil {
			writeJSON(w, http.StatusConflict, errJSON(err.Error()))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"model": ar.Model, "active": ar.Version, "cache_key": key})
	})
	mux.HandleFunc("/admin/rollback", func(w http.ResponseWriter, req *http.Request) {
		ar, ok := adminBody(w, req)
		if !ok {
			return
		}
		restored, err := r.Rollback(ar.Model)
		if err != nil {
			writeJSON(w, http.StatusConflict, errJSON(err.Error()))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"model": ar.Model, "active": restored})
	})
	mux.HandleFunc("/admin/remove", func(w http.ResponseWriter, req *http.Request) {
		ar, ok := adminBody(w, req)
		if !ok {
			return
		}
		if err := r.Remove(ar.Model); err != nil {
			writeJSON(w, http.StatusConflict, errJSON(err.Error()))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"model": ar.Model, "removed": true})
	})
	return mux
}

func adminBody(w http.ResponseWriter, req *http.Request) (AdminRequest, bool) {
	if req.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errJSON("POST only"))
		return AdminRequest{}, false
	}
	var ar AdminRequest
	if err := json.NewDecoder(req.Body).Decode(&ar); err != nil {
		writeJSON(w, http.StatusBadRequest, errJSON("bad request body: "+err.Error()))
		return AdminRequest{}, false
	}
	if ar.Model == "" {
		writeJSON(w, http.StatusBadRequest, errJSON("missing model"))
		return AdminRequest{}, false
	}
	return ar, true
}

func errJSON(msg string) map[string]string { return map[string]string{"error": msg} }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
