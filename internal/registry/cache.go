// Package registry is the model-lifecycle tier over the serving layer: a
// content-addressed compiled-artifact cache (compile once per (model,
// options, tuning) fleet-wide) and a versioned model registry with atomic
// hot-load, drain, and rollback on a live serve.Server — the production
// counterpart of the paper's §4.5 export/load deployment flow, where the
// compile host and the device fleet share artifacts instead of recompiling
// per process.
package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/soc"
)

// Key derives the content address of the artifact Build(mod, opts) would
// produce under the given tuning-record bytes (nil when untuned): a hex
// SHA-256 over the canonical module encoding, the build-option fingerprint,
// and the tuning bytes (runtime.ArtifactKey). Equal keys ⇒ bitwise-equal
// artifacts, so the cache can hand one compiled Lib to every requester.
var Key = runtime.ArtifactKey

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	// Hits counts loads served without compiling (memory or disk); Misses
	// counts loads that had to compile; Builds is the number of compilations
	// actually executed (single-flight: concurrent misses on one key share
	// one build, so Builds <= Misses).
	Hits, Misses, Builds uint64
	// MemHits/DiskHits split Hits by layer.
	MemHits, DiskHits uint64
	// BytesWritten/BytesRead are artifact bytes exported to / loaded from
	// the disk store.
	BytesWritten, BytesRead uint64
	// MemEntries is the number of Libs resident in the memory layer.
	MemEntries int
}

// Cache is a two-layer content-addressed store of compiled libraries:
// an in-process map (shared *Lib — immutable once built, with the lowered
// ExecPlan cached inside it) over an optional local-disk artifact directory
// (ExportLibrary format, one file per key). Concurrent requests for the same
// key single-flight: one compiles, the rest wait and share the result.
type Cache struct {
	dir string

	mu       sync.Mutex
	mem      map[string]*runtime.Lib
	inflight map[string]*flight
	stats    CacheStats

	// Metric hooks (nil-safe): wired by EnableMetrics onto a serve registry
	// so cache behavior shows up on /metricsz fleet-wide.
	hitsM, missesM, buildsM *obs.Counter
	bytesWM, bytesRM        *obs.Counter
	memHitsM, diskHitsM     *obs.Counter
	entriesG                *obs.Gauge
}

type flight struct {
	done chan struct{}
	lib  *runtime.Lib
	err  error
}

// NewCache opens (creating if needed) a cache over the given artifact
// directory; dir == "" keeps the cache memory-only.
func NewCache(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("registry: artifact cache dir: %w", err)
		}
	}
	return &Cache{dir: dir, mem: map[string]*runtime.Lib{}, inflight: map[string]*flight{}}, nil
}

// Dir returns the disk store path ("" for memory-only caches).
func (c *Cache) Dir() string { return c.dir }

// EnableMetrics registers the np_fleet_artifact_cache_* instrument family on
// reg and mirrors every subsequent cache event onto it.
func (c *Cache) EnableMetrics(reg *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	outcome := func(o string) *obs.Counter {
		return reg.Counter("np_fleet_artifact_cache_requests_total",
			"Artifact cache loads by outcome (hit_memory, hit_disk, miss).",
			obs.L("outcome", o))
	}
	c.memHitsM = outcome("hit_memory")
	c.diskHitsM = outcome("hit_disk")
	c.missesM = outcome("miss")
	c.hitsM = reg.Counter("np_fleet_artifact_cache_hits_total",
		"Artifact cache loads served without compiling.", obs.L())
	c.buildsM = reg.Counter("np_fleet_artifact_cache_builds_total",
		"Compilations executed (single-flighted misses).", obs.L())
	c.bytesWM = reg.Counter("np_fleet_artifact_cache_bytes_written_total",
		"Artifact bytes exported to the disk store.", obs.L())
	c.bytesRM = reg.Counter("np_fleet_artifact_cache_bytes_read_total",
		"Artifact bytes loaded from the disk store.", obs.L())
	c.entriesG = reg.Gauge("np_fleet_artifact_cache_entries",
		"Libraries resident in the in-process cache layer.", obs.L())
	// Replay the state accumulated before metrics were enabled so the
	// exposition never under-reports (registration order is not load order).
	c.hitsM.Add(float64(c.stats.Hits))
	c.memHitsM.Add(float64(c.stats.MemHits))
	c.diskHitsM.Add(float64(c.stats.DiskHits))
	c.missesM.Add(float64(c.stats.Misses))
	c.buildsM.Add(float64(c.stats.Builds))
	c.bytesWM.Add(float64(c.stats.BytesWritten))
	c.bytesRM.Add(float64(c.stats.BytesRead))
	c.entriesG.Set(float64(len(c.mem)))
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.MemEntries = len(c.mem)
	return s
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".nplib")
}

// GetOrBuild returns the library for key, compiling it with build at most
// once per key fleet-wide: first the in-process layer, then the disk store
// (LoadLibrary against sc), and only then build() — whose result is exported
// to the disk store and shared with every concurrent requester of the same
// key. hit reports whether compilation was avoided.
func (c *Cache) GetOrBuild(key string, sc *soc.SoC, build func() (*runtime.Lib, error)) (lib *runtime.Lib, hit bool, err error) {
	for {
		c.mu.Lock()
		if lib, ok := c.mem[key]; ok {
			c.stats.Hits++
			c.stats.MemHits++
			inc(c.hitsM)
			inc(c.memHitsM)
			c.mu.Unlock()
			return lib, true, nil
		}
		if fl, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			<-fl.done
			if fl.err != nil {
				return nil, false, fl.err
			}
			// The winner populated the memory layer; loop to count a hit.
			continue
		}
		fl := &flight{done: make(chan struct{})}
		c.inflight[key] = fl
		c.mu.Unlock()

		fl.lib, fl.err = c.load(key, sc, build, &hit)
		c.mu.Lock()
		delete(c.inflight, key)
		if fl.err == nil {
			c.mem[key] = fl.lib
			if c.entriesG != nil {
				c.entriesG.Set(float64(len(c.mem)))
			}
		}
		c.mu.Unlock()
		close(fl.done)
		return fl.lib, hit, fl.err
	}
}

// load resolves one single-flighted key: disk layer, then compile + export.
func (c *Cache) load(key string, sc *soc.SoC, build func() (*runtime.Lib, error), hit *bool) (*runtime.Lib, error) {
	if c.dir != "" {
		if lib, n, err := c.loadDisk(key, sc); err == nil {
			c.count(func(s *CacheStats) {
				s.Hits++
				s.DiskHits++
				s.BytesRead += n
			})
			inc(c.hitsM)
			inc(c.diskHitsM)
			add(c.bytesRM, float64(n))
			*hit = true
			return lib, nil
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("registry: artifact %s: %w", key, err)
		}
	}
	c.count(func(s *CacheStats) { s.Misses++; s.Builds++ })
	inc(c.missesM)
	inc(c.buildsM)
	lib, err := build()
	if err != nil {
		return nil, err
	}
	if c.dir != "" {
		n, err := c.storeDisk(key, lib)
		if err != nil {
			return nil, fmt.Errorf("registry: exporting artifact %s: %w", key, err)
		}
		c.count(func(s *CacheStats) { s.BytesWritten += n })
		add(c.bytesWM, float64(n))
	}
	return lib, nil
}

func (c *Cache) loadDisk(key string, sc *soc.SoC) (*runtime.Lib, uint64, error) {
	f, err := os.Open(c.path(key))
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	lib, err := runtime.LoadLibrary(f, sc)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	return lib, uint64(st.Size()), nil
}

// storeDisk exports the lib atomically: write to a temp file, then rename,
// so a concurrent process (or a crash) never observes a torn artifact.
func (c *Cache) storeDisk(key string, lib *runtime.Lib) (uint64, error) {
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	if err := lib.ExportLibrary(tmp); err != nil {
		tmp.Close()
		return 0, err
	}
	st, err := tmp.Stat()
	if err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		return 0, err
	}
	return uint64(st.Size()), nil
}

func (c *Cache) count(f func(*CacheStats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

func inc(ctr *obs.Counter) {
	if ctr != nil {
		ctr.Inc()
	}
}

func add(ctr *obs.Counter, v float64) {
	if ctr != nil {
		ctr.Add(v)
	}
}
