package registry

import (
	"encoding/json"
	"net/http"
)

// CacheStatsJSON is the /debugz/cache wire shape: the CacheStats counters
// under stable snake_case keys plus the derived hit rate, so dashboards don't
// re-implement the ratio.
type CacheStatsJSON struct {
	Hits         uint64  `json:"hits"`
	MemHits      uint64  `json:"mem_hits"`
	DiskHits     uint64  `json:"disk_hits"`
	Misses       uint64  `json:"misses"`
	Builds       uint64  `json:"builds"`
	BytesWritten uint64  `json:"bytes_written"`
	BytesRead    uint64  `json:"bytes_read"`
	MemEntries   int     `json:"mem_entries"`
	HitRate      float64 `json:"hit_rate"`
}

// statsJSON converts a snapshot to the wire shape.
func statsJSON(s CacheStats) CacheStatsJSON {
	out := CacheStatsJSON{
		Hits:         s.Hits,
		MemHits:      s.MemHits,
		DiskHits:     s.DiskHits,
		Misses:       s.Misses,
		Builds:       s.Builds,
		BytesWritten: s.BytesWritten,
		BytesRead:    s.BytesRead,
		MemEntries:   s.MemEntries,
	}
	if total := s.Hits + s.Misses; total > 0 {
		out.HitRate = float64(s.Hits) / float64(total)
	}
	return out
}

// Handler serves the cache counters as JSON — npserve mounts it at
// /debugz/cache so the fleet dashboard can report per-worker artifact-cache
// hit rates without scraping and parsing the Prometheus exposition.
func (c *Cache) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(statsJSON(c.Stats()))
	})
}
