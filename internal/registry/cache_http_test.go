package registry

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"repro/internal/models"
	"repro/internal/runtime"
)

// TestCacheHandlerJSON: /debugz/cache reports the live counters with the
// derived hit rate, under the stable snake_case keys the fleet dashboard
// scrapes.
func TestCacheHandlerJSON(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, err := models.BuildEmotion(models.SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	opts := runtime.BuildOptions{OptLevel: 3}
	key, err := Key(m, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	build := func() (*runtime.Lib, error) { return runtime.Build(m, opts) }
	for i := 0; i < 3; i++ { // one miss+build, two memory hits
		if _, _, err := c.GetOrBuild(key, nil, build); err != nil {
			t.Fatal(err)
		}
	}

	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debugz/cache", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var got CacheStatsJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode: %v\n%s", err, rec.Body.String())
	}
	if got.Hits != 2 || got.MemHits != 2 || got.Misses != 1 || got.Builds != 1 {
		t.Errorf("counters %+v, want 2 hits (mem), 1 miss, 1 build", got)
	}
	if want := 2.0 / 3.0; got.HitRate != want {
		t.Errorf("hit_rate = %v, want %v", got.HitRate, want)
	}
	if got.BytesWritten == 0 || got.MemEntries != 1 {
		t.Errorf("bytes_written=%d mem_entries=%d, want artifact persisted and resident", got.BytesWritten, got.MemEntries)
	}

	// The raw keys are part of the wire contract — dashboards parse them.
	var raw map[string]any
	json.Unmarshal(rec.Body.Bytes(), &raw)
	for _, k := range []string{"hits", "mem_hits", "disk_hits", "misses", "builds",
		"bytes_written", "bytes_read", "mem_entries", "hit_rate"} {
		if _, ok := raw[k]; !ok {
			t.Errorf("wire document missing key %q", k)
		}
	}
}

// TestCacheHandlerEmptyNoNaN: zero traffic must yield hit_rate 0, not NaN
// (which would fail JSON encoding outright).
func TestCacheHandlerEmptyNoNaN(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debugz/cache", nil))
	var got CacheStatsJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode: %v\n%s", err, rec.Body.String())
	}
	if got.HitRate != 0 {
		t.Errorf("idle hit_rate = %v, want 0", got.HitRate)
	}
}
