package registry

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/models"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/tensor"
)

func buildEmotion(t testing.TB) *runtime.Lib {
	t.Helper()
	m, err := models.BuildEmotion(models.SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func submitSeed(t *testing.T, s *serve.Server, model string, lib *runtime.Lib, seed uint64) *serve.Result {
	t.Helper()
	inName := runtime.NewGraphModule(lib).InputNames()[0]
	res, err := s.Submit(context.Background(), model,
		map[string]*tensor.Tensor{inName: models.RandomInput(lib.Module, seed)})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDeployRollbackLifecycle walks the full state machine: v1 deploy, v2
// hot-load with cutover, rollback (pointer swap), v3 deploy retiring the
// displaced standby, and Remove draining everything.
func TestDeployRollbackLifecycle(t *testing.T) {
	s := serve.NewServer()
	r := New(s)
	opts := serve.ModelOptions{Pool: 1, QueueDepth: 8}

	v1, v2, v3 := buildEmotion(t), buildEmotion(t), buildEmotion(t)
	if err := r.Deploy("emotion", "v1", v1, opts, "key1"); err != nil {
		t.Fatal(err)
	}
	if res := submitSeed(t, s, "emotion", v1, 1); res.Version != "v1" {
		t.Fatalf("serving %q, want v1", res.Version)
	}

	if err := r.Deploy("emotion", "v2", v2, opts, "key2"); err != nil {
		t.Fatal(err)
	}
	if res := submitSeed(t, s, "emotion", v2, 1); res.Version != "v2" {
		t.Fatalf("after deploy: serving %q, want v2", res.Version)
	}
	if a, _ := r.Active("emotion"); a.Version != "v2" || a.CacheKey != "key2" {
		t.Fatalf("active %+v, want v2/key2", a)
	}

	restored, err := r.Rollback("emotion")
	if err != nil {
		t.Fatal(err)
	}
	if restored != "v1" {
		t.Fatalf("rollback restored %q, want v1", restored)
	}
	if res := submitSeed(t, s, "emotion", v1, 1); res.Version != "v1" {
		t.Fatalf("after rollback: serving %q, want v1", res.Version)
	}

	// v3 displaces the standby (v2), which must drain and retire.
	if err := r.Deploy("emotion", "v3", v3, opts, ""); err != nil {
		t.Fatal(err)
	}
	states := map[string]string{}
	for _, v := range r.Status() {
		states[v.Version] = v.State
	}
	if states["v3"] != StateActive || states["v1"] != StateStandby || states["v2"] != StateRetired {
		t.Fatalf("states %v, want v3 active / v1 standby / v2 retired", states)
	}

	if err := r.Remove("emotion"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Active("emotion"); ok {
		t.Fatal("model still active after Remove")
	}
	inName := runtime.NewGraphModule(v1).InputNames()[0]
	if _, err := s.Submit(context.Background(), "emotion",
		map[string]*tensor.Tensor{inName: models.RandomInput(v1.Module, 1)}); err == nil {
		t.Fatal("submit after Remove should fail")
	}

	if _, err := r.Rollback("emotion"); err == nil {
		t.Error("rollback with nothing deployed should fail")
	}
	if err := r.Deploy("", "v1", v1, opts, ""); err == nil {
		t.Error("empty model name should fail")
	}
}

// TestCacheSingleFlightAndLayers pins the artifact cache contract: one build
// per key under concurrent demand, memory hits for the same process, disk
// hits (LoadLibrary) for a cold process, and the byte counters moving.
func TestCacheSingleFlightAndLayers(t *testing.T) {
	m, err := models.BuildEmotion(models.SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	opts := runtime.BuildOptions{OptLevel: 3}
	key, err := Key(m, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	key2, err := Key(m, runtime.BuildOptions{OptLevel: 3, UseNIR: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if key == key2 {
		t.Fatal("different build options must produce different keys")
	}
	key3, err := Key(m, opts, []byte(`{"tuned":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if key3 == key {
		t.Fatal("tuning records must change the key")
	}

	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	build := func() (*runtime.Lib, error) {
		builds.Add(1)
		return runtime.Build(m, opts)
	}

	// 8 concurrent requesters, one compilation.
	var wg sync.WaitGroup
	libs := make([]*runtime.Lib, 8)
	for i := range libs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lib, _, err := c.GetOrBuild(key, nil, build)
			if err != nil {
				t.Error(err)
				return
			}
			libs[i] = lib
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("builds = %d, want 1 (single-flight)", n)
	}
	for _, lib := range libs[1:] {
		if lib != libs[0] {
			t.Fatal("concurrent requesters must share one *Lib")
		}
	}
	st := c.Stats()
	if st.Builds != 1 || st.Misses != 1 || st.Hits < 7 || st.BytesWritten == 0 {
		t.Fatalf("stats after warm-up: %+v", st)
	}

	// A cold cache over the same directory hits the disk layer: zero builds.
	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	lib, hit, err := c2.GetOrBuild(key, nil, func() (*runtime.Lib, error) {
		t.Fatal("disk hit must not compile")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("want disk hit")
	}
	st2 := c2.Stats()
	if st2.DiskHits != 1 || st2.Builds != 0 || st2.BytesRead == 0 {
		t.Fatalf("cold-cache stats: %+v", st2)
	}

	// The reloaded lib must serve: outputs bitwise-identical to the built one.
	gmA, gmB := runtime.NewGraphModule(libs[0]), runtime.NewGraphModule(lib)
	in := models.RandomInput(m, 7)
	name := gmA.InputNames()[0]
	for _, gm := range []*runtime.GraphModule{gmA, gmB} {
		gm.SetInput(name, in)
		if err := gm.Run(); err != nil {
			t.Fatal(err)
		}
	}
	a, b := gmA.MustOutput(0), gmB.MustOutput(0)
	if !a.Shape.Equal(b.Shape) {
		t.Fatal("shape mismatch")
	}
	for i := 0; i < a.Elems(); i++ {
		if a.GetF(i) != b.GetF(i) {
			t.Fatalf("output[%d]: built %v != reloaded %v", i, a.GetF(i), b.GetF(i))
		}
	}

	// A failed build must not poison the key.
	_, _, err = c.GetOrBuild("bad-key", nil, func() (*runtime.Lib, error) {
		return nil, fmt.Errorf("boom")
	})
	if err == nil {
		t.Fatal("want build error")
	}
	if _, _, err := c.GetOrBuild("bad-key", nil, build); err != nil {
		t.Fatalf("key poisoned after failed build: %v", err)
	}
}

// TestKeyDeterminism: the same module built twice (fresh synthesis) keys
// identically, so separate worker processes agree on artifact identity.
func TestKeyDeterminism(t *testing.T) {
	opts := runtime.BuildOptions{OptLevel: 3, UseNIR: true}
	m1, err := models.BuildEmotion(models.SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := models.BuildEmotion(models.SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := Key(m1, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(m2, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("same model, same options: keys differ\n%s\n%s", k1, k2)
	}
}
