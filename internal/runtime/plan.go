package runtime

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/neuron"
	"repro/internal/relay"
	"repro/internal/soc"
	"repro/internal/tensor"
	"repro/internal/topi"
)

// This file is the compile half of the planned executor: it lowers a built
// module's main function (post fusion/partitioning) into a linearized
// ExecPlan — a topologically sorted node list with explicit value slots —
// and runs a static memory planner that assigns arena storage IDs by
// liveness, TVM GraphPlanMemory-style, so intermediate buffers are reused
// across non-overlapping lifetimes. plan_exec.go executes the result;
// plan_verify.go audits it.

// planNodeKind discriminates the executable node forms of a plan.
type planNodeKind int

const (
	// nodeOp is a single TOPI operator application.
	nodeOp planNodeKind = iota
	// nodePrim is a fused kernel (relay Primitive function) lowered to a
	// serial sub-plan charged as one launch.
	nodePrim
	// nodeExternal dispatches a partitioned region to its compiled
	// NeuroPilot artifact.
	nodeExternal
)

func (k planNodeKind) String() string {
	switch k {
	case nodeOp:
		return "op"
	case nodePrim:
		return "primitive"
	case nodeExternal:
		return "external"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// pval is the plan-time shape of an expression's value: a tensor slot or a
// tuple of pvals. Tuples exist only at plan time — the builder resolves every
// TupleGetItem statically, so the executed plan moves tensors exclusively.
type pval struct {
	slot   int
	fields []pval // non-nil for tuple-valued expressions
}

// planNode is one executable step.
type planNode struct {
	id    int
	kind  planNodeKind
	level int // wavefront dependency level
	lane  int // index within the level — the trace row concurrent nodes render on

	// label names the node for profile events and trace spans: the op name,
	// the fused kernel's op chain, or the external region's global symbol.
	label string

	// nodeOp fields.
	opName string
	attrs  relay.Attrs
	outTy  *relay.TensorType

	args []int // input slot ids, tuple arguments pre-flattened
	out  []int // output slot ids (len > 1 only for multi-output externals)

	// nodePrim fields.
	fn  *relay.Function
	sub *ExecPlan

	// nodeExternal fields.
	sym string
	cm  *neuron.CompiledModel
	// devSummary renders the Execution Planner's device placement for trace
	// spans ("apu:12 cpu:3"), precomputed so profiled runs don't re-derive it.
	devSummary string

	// charge is the precomputed TVM-engine cost of this node (op and
	// primitive nodes). External nodes charge through cm.Estimate instead.
	charge soc.Seconds
}

// slotInfo describes one value slot: the static type, the producing node,
// the liveness interval in wavefront levels, and the arena storage backing
// it (-1 when the value is externally owned: graph inputs, constants, and
// NeuroPilot region outputs).
type slotInfo struct {
	Shape tensor.Shape
	DType tensor.DType
	Quant *tensor.QuantParams

	Producer int // producing node id; -1 for inputs and constants
	Storage  int // arena storage id; -1 when not arena-backed
	DefLevel int // level of the producing node; -1 for inputs/constants
	LastUse  int // highest consumer level (= DefLevel when unconsumed)
	IsOutput bool

	Const     *tensor.Tensor // non-nil for constant slots
	InputName string         // non-empty for graph-input slots
}

// storageRec is one arena buffer: slots only share a storage when their
// dtype and element count match exactly, so views are always whole-buffer.
type storageRec struct {
	DType tensor.DType
	Elems int
}

// ExecPlan is a lowered, memory-planned form of a module's main function.
type ExecPlan struct {
	nodes  []*planNode
	slots  []*slotInfo
	levels [][]int // node ids per dependency level

	params  []int          // input slots in declaration order
	inputs  map[string]int // input name → slot
	outputs []int          // graph-output slots in result order

	storages []storageRec

	// NaiveBytes is what one-buffer-per-node allocation would use for the
	// arena-backed intermediates; ArenaBytes is what the planner's reuse
	// actually allocates. The ratio is the memory planner's payoff.
	NaiveBytes int
	ArenaBytes int

	// TunedNodes counts the op and fused-kernel nodes (including sub-plan
	// ops) whose task signature resolved to a non-default tuned config in
	// the dispatch table installed when the plan was lowered. Zero when no
	// table is loaded — the graceful-fallback path.
	TunedNodes int
}

// NumNodes returns the executable node count.
func (p *ExecPlan) NumNodes() int { return len(p.nodes) }

// NumLevels returns the wavefront depth.
func (p *ExecPlan) NumLevels() int { return len(p.levels) }

// NumStorages returns how many arena buffers the memory planner allocated.
func (p *ExecPlan) NumStorages() int { return len(p.storages) }

// String summarizes the plan (the executor's debug view).
func (p *ExecPlan) String() string {
	tuned := ""
	if p.TunedNodes > 0 {
		tuned = fmt.Sprintf(", %d tuned", p.TunedNodes)
	}
	return fmt.Sprintf("ExecPlan{%d nodes, %d levels, %d slots, %d storages, arena %d B (naive %d B)%s}",
		len(p.nodes), len(p.levels), len(p.slots), len(p.storages), p.ArenaBytes, p.NaiveBytes, tuned)
}

// planBuilder lowers relay expressions into an ExecPlan.
type planBuilder struct {
	lib   *Lib
	plan  *ExecPlan
	memo  map[relay.Expr]pval
	env   map[*relay.Var]pval
	inner bool // building a primitive sub-plan
}

// BuildPlan lowers the library's main function into an execution plan. It
// fails on constructs the planned executor does not support (plain
// non-primitive function calls, tuple-typed parameters); callers fall back
// to the interpreting executor in that case.
func BuildPlan(lib *Lib) (*ExecPlan, error) {
	main := lib.Module.Main()
	b := newPlanBuilder(lib, false)
	for _, prm := range main.Params {
		tt, ok := prm.TypeAnnotation.(*relay.TensorType)
		if !ok {
			return nil, fmt.Errorf("runtime: plan: input %q is not tensor-typed", prm.Name)
		}
		s := b.addSlot(tt)
		b.plan.slots[s].InputName = prm.Name
		b.plan.inputs[prm.Name] = s
		b.plan.params = append(b.plan.params, s)
		b.env[prm] = pval{slot: s}
	}
	root, err := b.eval(main.Body)
	if err != nil {
		return nil, err
	}
	if root.fields != nil {
		for i, f := range root.fields {
			if f.fields != nil {
				return nil, fmt.Errorf("runtime: plan: nested tuple in graph output %d", i)
			}
			b.plan.outputs = append(b.plan.outputs, f.slot)
		}
	} else {
		b.plan.outputs = append(b.plan.outputs, root.slot)
	}
	for _, s := range b.plan.outputs {
		b.plan.slots[s].IsOutput = true
	}
	b.finish()
	if err := VerifyPlan(b.plan).Err(); err != nil {
		return nil, fmt.Errorf("runtime: built plan failed verification: %w", err)
	}
	// Second, independent gate: the dataflow safety checker re-derives
	// levels and liveness from the node list alone and audits the storage
	// assignment against them (see internal/analysis).
	if err := analysis.PlanSafety(b.plan.View()).Err(); err != nil {
		return nil, fmt.Errorf("runtime: built plan failed safety analysis: %w", err)
	}
	return b.plan, nil
}

func newPlanBuilder(lib *Lib, inner bool) *planBuilder {
	return &planBuilder{
		lib:   lib,
		plan:  &ExecPlan{inputs: map[string]int{}},
		memo:  map[relay.Expr]pval{},
		env:   map[*relay.Var]pval{},
		inner: inner,
	}
}

func (b *planBuilder) addSlot(tt *relay.TensorType) int {
	b.plan.slots = append(b.plan.slots, &slotInfo{
		Shape:    tt.Shape,
		DType:    tt.DType,
		Quant:    tt.Quant,
		Producer: -1,
		Storage:  -1,
		DefLevel: -1,
	})
	return len(b.plan.slots) - 1
}

func (b *planBuilder) addNode(n *planNode) int {
	n.id = len(b.plan.nodes)
	b.plan.nodes = append(b.plan.nodes, n)
	for _, o := range n.out {
		b.plan.slots[o].Producer = n.id
	}
	return n.id
}

func (b *planBuilder) eval(e relay.Expr) (pval, error) {
	if v, ok := b.memo[e]; ok {
		return v, nil
	}
	v, err := b.evalUncached(e)
	if err != nil {
		return pval{}, err
	}
	b.memo[e] = v
	return v, nil
}

func (b *planBuilder) evalUncached(e relay.Expr) (pval, error) {
	switch n := e.(type) {
	case *relay.Var:
		v, ok := b.env[n]
		if !ok {
			return pval{}, fmt.Errorf("runtime: plan: unbound variable %q", n.Name)
		}
		return v, nil
	case *relay.Constant:
		tt, ok := n.CheckedType().(*relay.TensorType)
		if !ok {
			return pval{}, fmt.Errorf("runtime: plan: constant with non-tensor type")
		}
		s := b.addSlot(tt)
		b.plan.slots[s].Const = n.Value
		return pval{slot: s}, nil
	case *relay.Tuple:
		fields := make([]pval, len(n.Fields))
		for i, f := range n.Fields {
			v, err := b.eval(f)
			if err != nil {
				return pval{}, err
			}
			fields[i] = v
		}
		return pval{fields: fields}, nil
	case *relay.TupleGetItem:
		tv, err := b.eval(n.Tuple)
		if err != nil {
			return pval{}, err
		}
		if tv.fields == nil {
			return pval{}, fmt.Errorf("runtime: plan: projection on non-tuple value")
		}
		if n.Index < 0 || n.Index >= len(tv.fields) {
			return pval{}, fmt.Errorf("runtime: plan: projection index %d out of range", n.Index)
		}
		return tv.fields[n.Index], nil
	case *relay.Call:
		return b.evalCall(n)
	}
	return pval{}, fmt.Errorf("runtime: plan: cannot lower %T", e)
}

// flattenArgs resolves call arguments to flat slot lists, mirroring the
// interpreter's tuple flattening for operator calls (concatenate).
func (b *planBuilder) flattenArgs(args []relay.Expr, what string) ([]int, error) {
	flat := make([]int, 0, len(args))
	for _, a := range args {
		v, err := b.eval(a)
		if err != nil {
			return nil, err
		}
		if v.fields == nil {
			flat = append(flat, v.slot)
			continue
		}
		for _, f := range v.fields {
			if f.fields != nil {
				return nil, fmt.Errorf("runtime: plan: nested tuple argument to %s", what)
			}
			flat = append(flat, f.slot)
		}
	}
	return flat, nil
}

func (b *planBuilder) evalCall(c *relay.Call) (pval, error) {
	if c.Op != nil {
		return b.evalOpCall(c)
	}
	fn, ok := c.Fn.(*relay.Function)
	if !ok {
		return pval{}, fmt.Errorf("runtime: plan: call of non-literal function value")
	}
	switch {
	case fn.Attr(relay.FnAttrCompiler) == "nir":
		return b.evalExternal(c, fn)
	case fn.Attr(relay.FnAttrPrimitive) != "":
		return b.evalPrimitive(c, fn)
	default:
		// Plain function calls do not survive the pass pipeline; rather than
		// replicate the interpreter's inlining, the plan refuses and the
		// module runs on the reference interpreter.
		return pval{}, fmt.Errorf("runtime: plan: non-primitive function call is not plannable")
	}
}

func (b *planBuilder) evalOpCall(c *relay.Call) (pval, error) {
	args, err := b.flattenArgs(c.Args, c.Op.Name)
	if err != nil {
		return pval{}, err
	}
	outTy, ok := c.CheckedType().(*relay.TensorType)
	if !ok {
		return pval{}, fmt.Errorf("runtime: plan: op %s has non-tensor checked type %v", c.Op.Name, c.CheckedType())
	}
	out := b.addSlot(outTy)
	w := soc.WorkOf(c)
	b.addNode(&planNode{
		kind:   nodeOp,
		opName: c.Op.Name,
		label:  c.Op.Name,
		attrs:  c.Attrs,
		outTy:  outTy,
		args:   args,
		out:    []int{out},
		charge: b.lib.SoC.CPU.OpTime(w, soc.TVMEff(w)),
	})
	if planNodeTuned(c) {
		b.plan.TunedNodes++
	}
	return pval{slot: out}, nil
}

// planNodeTuned consults the installed tuning table at lowering time: it
// reports whether this op call's task signature resolves to a non-default
// kernel config, i.e. whether the dispatch the plan encodes will deviate
// from the built-in defaults. Ops outside the tunable families, rank
// mismatches, and a missing table all fall back to false.
func planNodeTuned(c *relay.Call) bool {
	tbl := topi.Tuning()
	if tbl == nil || len(c.Args) < 2 {
		return false
	}
	data, ok := c.Args[0].CheckedType().(*relay.TensorType)
	if !ok {
		return false
	}
	weight, ok := c.Args[1].CheckedType().(*relay.TensorType)
	if !ok {
		return false
	}
	var key topi.TaskKey
	switch c.Op.Name {
	case "nn.conv2d", "qnn.conv2d", "qnn.conv2d_fused":
		if len(data.Shape) != 4 || len(weight.Shape) != 4 {
			return false
		}
		key = topi.ConvTaskKeyTypes(c.Op.Name, data, weight, c.Attrs)
	case "nn.dense", "qnn.dense", "qnn.dense_fused":
		if len(data.Shape) != 2 || len(weight.Shape) != 2 {
			return false
		}
		key = topi.DenseTaskKeyTypes(c.Op.Name, data, weight)
	default:
		return false
	}
	cfg, ok := tbl.Lookup(key)
	return ok && !cfg.IsDefault()
}

// planSummary renders a compiled model's per-device operation counts in
// device order ("apu:12 cpu:3").
func planSummary(cm *neuron.CompiledModel) string {
	counts := cm.PlanCounts()
	kinds := make([]soc.DeviceKind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	out := ""
	for _, k := range kinds {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", k, counts[k])
	}
	return out
}

// primLabel names a fused kernel by its operator chain ("fused:conv2d+relu").
func primLabel(fn *relay.Function) string {
	var ops []string
	relay.PostOrderVisit(fn.Body, func(e relay.Expr) {
		if c, ok := e.(*relay.Call); ok && c.Op != nil {
			ops = append(ops, c.Op.Name)
		}
	})
	if len(ops) == 0 {
		return "fused:identity"
	}
	out := "fused:" + ops[0]
	for _, o := range ops[1:] {
		out += "+" + o
	}
	return out
}

// evalPrimitive lowers a fused kernel: the body becomes a serial sub-plan
// with its own (per-node) arena, charged as a single launch like the
// interpreter's evalPrimitive.
func (b *planBuilder) evalPrimitive(c *relay.Call, fn *relay.Function) (pval, error) {
	if len(c.Args) != len(fn.Params) {
		return pval{}, fmt.Errorf("runtime: plan: primitive call arity %d, function wants %d", len(c.Args), len(fn.Params))
	}
	// Fused functions may take tuple-typed parameters (fused concatenate):
	// the sub-plan assigns one slot per leaf tensor, and the call site passes
	// the argument leaves in the same order.
	var args []int
	for i, a := range c.Args {
		v, err := b.eval(a)
		if err != nil {
			return pval{}, err
		}
		before := len(args)
		args = appendLeaves(args, v)
		if got, want := len(args)-before, countLeaves(fn.Params[i].TypeAnnotation); got != want {
			return pval{}, fmt.Errorf("runtime: plan: primitive argument %d has %d tensor leaves, parameter wants %d", i, got, want)
		}
	}
	sub, err := buildSubPlan(b.lib, fn)
	if err != nil {
		return pval{}, err
	}
	outTy, ok := c.CheckedType().(*relay.TensorType)
	if !ok {
		return pval{}, fmt.Errorf("runtime: plan: primitive with non-tensor result type %v", c.CheckedType())
	}
	out := b.addSlot(outTy)
	b.plan.TunedNodes += sub.TunedNodes
	fw := soc.FunctionWork(fn)
	b.addNode(&planNode{
		kind:   nodePrim,
		fn:     fn,
		label:  primLabel(fn),
		sub:    sub,
		outTy:  outTy,
		args:   args,
		out:    []int{out},
		charge: b.lib.SoC.CPU.OpTime(fw, soc.TVMEff(fw)),
	})
	return pval{slot: out}, nil
}

// appendLeaves collects a pval's tensor slots in depth-first order.
func appendLeaves(dst []int, v pval) []int {
	if v.fields == nil {
		return append(dst, v.slot)
	}
	for _, f := range v.fields {
		dst = appendLeaves(dst, f)
	}
	return dst
}

// countLeaves counts the tensor leaves of a type (1 for a tensor, the summed
// field leaves for a tuple).
func countLeaves(ty relay.Type) int {
	tup, ok := ty.(*relay.TupleType)
	if !ok {
		return 1
	}
	n := 0
	for _, f := range tup.Fields {
		n += countLeaves(f)
	}
	return n
}

// buildSubPlan lowers a primitive function body. Sub-plans execute serially
// inside one wavefront task, so two primitive nodes scheduled concurrently
// never share sub-plan state: each prim node binds its own arena.
func buildSubPlan(lib *Lib, fn *relay.Function) (*ExecPlan, error) {
	sb := newPlanBuilder(lib, true)
	for i, prm := range fn.Params {
		v, err := sb.paramSlots(prm.TypeAnnotation)
		if err != nil {
			return nil, fmt.Errorf("runtime: plan: primitive parameter %d: %w", i, err)
		}
		sb.env[prm] = v
	}
	root, err := sb.eval(fn.Body)
	if err != nil {
		return nil, err
	}
	if root.fields != nil {
		return nil, fmt.Errorf("runtime: plan: tuple-valued primitive body is not plannable")
	}
	sb.plan.outputs = []int{root.slot}
	sb.plan.slots[root.slot].IsOutput = true
	sb.finish()
	return sb.plan, nil
}

// paramSlots allocates the input slot(s) for one sub-plan parameter: a
// single slot for a tensor, a slot tree for a tuple. Every leaf is appended
// to plan.params in depth-first order — the order the caller passes argument
// leaves in.
func (b *planBuilder) paramSlots(ty relay.Type) (pval, error) {
	switch tt := ty.(type) {
	case *relay.TensorType:
		s := b.addSlot(tt)
		b.plan.params = append(b.plan.params, s)
		return pval{slot: s}, nil
	case *relay.TupleType:
		fields := make([]pval, len(tt.Fields))
		for i, f := range tt.Fields {
			v, err := b.paramSlots(f)
			if err != nil {
				return pval{}, err
			}
			fields[i] = v
		}
		return pval{fields: fields}, nil
	}
	return pval{}, fmt.Errorf("unsupported parameter type %v", ty)
}

func (b *planBuilder) evalExternal(c *relay.Call, fn *relay.Function) (pval, error) {
	if b.inner {
		return pval{}, fmt.Errorf("runtime: plan: external region inside a primitive body")
	}
	sym := fn.Attr(relay.FnAttrGlobalSymbol)
	cm, ok := b.lib.External[sym]
	if !ok {
		return pval{}, fmt.Errorf("runtime: plan: external module %q not compiled (was Build run with UseNIR?)", sym)
	}
	args, err := b.flattenArgs(c.Args, "external region "+sym)
	if err != nil {
		return pval{}, err
	}
	node := &planNode{kind: nodeExternal, sym: sym, label: sym, cm: cm, args: args,
		devSummary: planSummary(cm)}
	switch ty := c.CheckedType().(type) {
	case *relay.TensorType:
		node.out = []int{b.addSlot(ty)}
		b.addNode(node)
		return pval{slot: node.out[0]}, nil
	case *relay.TupleType:
		fields := make([]pval, len(ty.Fields))
		for i, f := range ty.Fields {
			tt, ok := f.(*relay.TensorType)
			if !ok {
				return pval{}, fmt.Errorf("runtime: plan: external %q output %d is not tensor-typed", sym, i)
			}
			s := b.addSlot(tt)
			node.out = append(node.out, s)
			fields[i] = pval{slot: s}
		}
		b.addNode(node)
		return pval{fields: fields}, nil
	}
	return pval{}, fmt.Errorf("runtime: plan: external %q has unsupported result type %v", sym, c.CheckedType())
}

// finish computes wavefront levels, slot liveness, and the static storage
// assignment.
func (b *planBuilder) finish() {
	p := b.plan

	// Dependency levels: a node runs one level after its deepest producer.
	// Nodes within a level are mutually independent, so the executor may run
	// them concurrently.
	maxLevel := -1
	for _, n := range p.nodes {
		lvl := 0
		for _, s := range n.args {
			if prod := p.slots[s].Producer; prod >= 0 {
				if d := p.nodes[prod].level + 1; d > lvl {
					lvl = d
				}
			}
		}
		n.level = lvl
		for _, o := range n.out {
			p.slots[o].DefLevel = lvl
		}
		if lvl > maxLevel {
			maxLevel = lvl
		}
	}
	p.levels = make([][]int, maxLevel+1)
	for _, n := range p.nodes {
		n.lane = len(p.levels[n.level])
		p.levels[n.level] = append(p.levels[n.level], n.id)
	}

	// Liveness in level granularity: a slot is live from its defining level
	// through the deepest level that reads it.
	for _, sl := range p.slots {
		sl.LastUse = sl.DefLevel
	}
	for _, n := range p.nodes {
		for _, s := range n.args {
			if n.level > p.slots[s].LastUse {
				p.slots[s].LastUse = n.level
			}
		}
	}

	// Static storage assignment. A storage freed at level L only re-enters
	// the pool at level L+1: nodes within one level run concurrently, so a
	// same-level reuse could overwrite a buffer another node is still
	// reading. Graph outputs keep dedicated storage forever (the caller
	// reads them after the run). Storages are reused only on an exact
	// (dtype, element-count) match so views always cover the whole buffer.
	freeAt := map[int][]int{}
	var avail []int
	for lvl := 0; lvl <= maxLevel; lvl++ {
		if lvl > 0 {
			avail = append(avail, freeAt[lvl-1]...)
		}
		for _, ni := range p.levels[lvl] {
			n := p.nodes[ni]
			if n.kind == nodeExternal {
				// The Neuron runtime owns its result buffers; nothing to plan.
				continue
			}
			for _, o := range n.out {
				sl := p.slots[o]
				p.NaiveBytes += sl.Shape.Elems() * sl.DType.Size()
				sid := -1
				if !sl.IsOutput {
					for i, id := range avail {
						if p.storages[id].DType == sl.DType && p.storages[id].Elems == sl.Shape.Elems() {
							sid = id
							avail = append(avail[:i], avail[i+1:]...)
							break
						}
					}
				}
				if sid < 0 {
					p.storages = append(p.storages, storageRec{DType: sl.DType, Elems: sl.Shape.Elems()})
					sid = len(p.storages) - 1
				}
				sl.Storage = sid
				if !sl.IsOutput {
					freeAt[sl.LastUse] = append(freeAt[sl.LastUse], sid)
				}
			}
		}
	}
	for _, st := range p.storages {
		p.ArenaBytes += st.Elems * st.DType.Size()
	}
}
