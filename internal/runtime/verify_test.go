package runtime_test

import (
	"testing"

	"repro/internal/models"
	"repro/internal/runtime"
)

// TestZooVerifiedBuild drives every zoo model through the full
// relay.Build + partition_for_nir pipeline with verify-after-each-pass
// instrumentation enabled: no optimization pass, the partitioner, nor the
// external codegen may emit IR that violates a verifier invariant.
func TestZooVerifiedBuild(t *testing.T) {
	for _, name := range models.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := models.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			m, err := spec.Build(models.SizeLite)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			lib, err := runtime.Build(m, runtime.BuildOptions{
				OptLevel: 3,
				UseNIR:   true,
				Verify:   true,
			})
			if err != nil {
				t.Fatalf("instrumented relay.Build: %v", err)
			}
			for name, cm := range lib.External {
				if err := cm.CheckPlan(); err != nil {
					t.Errorf("region %s: %v", name, err)
				}
			}
		})
	}
}
