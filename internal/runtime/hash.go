package runtime

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/relay"
)

// Content addressing for compiled artifacts: a built Lib is a pure function
// of (source module, build options, tuning records), so a fleet-wide cache
// can key compiled artifacts by a hash of those three inputs and compile each
// distinct configuration exactly once (internal/registry layers the store and
// single-flight on top of this file).
//
// EncodeModule reuses the ExportLibrary node-table encoding, which is
// deterministic end to end: Module.Functions iterates in sorted name order,
// encodeFunc assigns node ids in post-order, the constant pool indexes
// tensors in first-reference order, and json.Marshal sorts map keys.

// EncodeModule serializes a relay module (graph + constants) into canonical
// bytes: two encodings of the same module are identical, byte for byte, even
// across processes. The encoding is the artifact graph section of
// ExportLibrary plus the raw constant pool.
func EncodeModule(m *relay.Module) ([]byte, error) {
	pool := &constPool{}
	var jl jsonLib
	var encErr error
	m.Functions(func(name string, fn *relay.Function) {
		if encErr != nil {
			return
		}
		jf, err := encodeFunc(name, fn, pool)
		if err != nil {
			encErr = err
			return
		}
		jl.Functions = append(jl.Functions, jf)
	})
	if encErr != nil {
		return nil, encErr
	}
	blob, err := json.Marshal(jl)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Write(blob)
	if err := binary.Write(&buf, binary.LittleEndian, uint32(len(pool.tensors))); err != nil {
		return nil, err
	}
	for _, t := range pool.tensors {
		if err := t.Serialize(&buf); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// Fingerprint renders the semantically relevant build options as a canonical
// string. Two option sets with equal fingerprints produce bitwise-identical
// libraries from the same module (and tuning records). Non-semantic fields —
// Tracer, Verify — are deliberately excluded: they change diagnostics, not
// the artifact.
func (o BuildOptions) Fingerprint() string {
	o = o.withDefaults()
	devs := make([]string, len(o.NIRDevices))
	for i, d := range o.NIRDevices {
		devs[i] = d.String()
	}
	sort.Strings(devs)
	disabled := append([]string(nil), o.DisablePasses...)
	sort.Strings(disabled)
	return fmt.Sprintf("opt=%d nir=%t devices=[%s] soc=%q partition={merge=%t min=%d} disabled=[%s]",
		o.OptLevel, o.UseNIR, strings.Join(devs, ","), o.SoC.Name,
		o.Partition.MergeRegions, o.Partition.MinRegionSize,
		strings.Join(disabled, ","))
}

// ArtifactKey derives the content address of the library Build(mod, opts)
// would produce under the given tuning records (nil for untuned builds): a
// hex SHA-256 over the canonical module encoding, the option fingerprint,
// and the raw tuning-record bytes.
func ArtifactKey(mod *relay.Module, opts BuildOptions, tuning []byte) (string, error) {
	enc, err := EncodeModule(mod)
	if err != nil {
		return "", fmt.Errorf("runtime: artifact key: %w", err)
	}
	h := sha256.New()
	// Length-prefix each section so section boundaries cannot alias.
	var sect = func(b []byte) {
		binary.Write(h, binary.LittleEndian, uint64(len(b)))
		h.Write(b)
	}
	sect(enc)
	sect([]byte(opts.Fingerprint()))
	sect(tuning)
	return hex.EncodeToString(h.Sum(nil)), nil
}
