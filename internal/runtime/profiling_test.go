package runtime_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/race"
	"repro/internal/runtime"
	"repro/internal/soc"
)

func buildEmotion(t testing.TB, opts runtime.BuildOptions) (*runtime.Lib, *runtime.GraphModule) {
	t.Helper()
	spec, err := models.Get("emotion")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := spec.Build(models.SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := runtime.Build(mod, opts)
	if err != nil {
		t.Fatal(err)
	}
	gm := runtime.NewGraphModule(lib)
	gm.SetInput(gm.InputNames()[0], models.RandomInput(mod, 1))
	return lib, gm
}

// The -profile acceptance property: on a BYOC-partitioned model, the
// recorded events partition the simulated total exactly — for both
// executors — and external regions are attributed to Execution-Planner
// devices (the APU for the emotion model's conv regions).
func TestProfiledEventsSumToTotal(t *testing.T) {
	for _, kind := range []runtime.ExecutorKind{runtime.ExecutorPlanned, runtime.ExecutorInterp} {
		t.Run(kind.String(), func(t *testing.T) {
			_, gm := buildEmotion(t, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
			gm.SetExecutor(kind)
			gm.SetProfiling(true)
			if err := gm.Run(); err != nil {
				t.Fatal(err)
			}
			prof := gm.LastProfile()
			events := prof.Events()
			if len(events) == 0 {
				t.Fatal("profiled run recorded no events")
			}
			var sum soc.Seconds
			var apuOps, dispatches int
			for _, ev := range events {
				sum += ev.Time
				if ev.Kind == soc.EventOp && ev.Device == soc.KindAPU {
					apuOps++
				}
				if ev.Kind == soc.EventDispatch {
					dispatches++
					if !strings.HasPrefix(ev.Name, "nir_") {
						t.Errorf("dispatch event named %q, want a nir_ region", ev.Name)
					}
				}
			}
			// The events and the aggregate accumulate in different orders, so
			// allow float rounding noise — far inside the ±1% criterion.
			if total := prof.Total(); math.Abs(float64(sum-total)) > 1e-9*float64(total) {
				t.Errorf("event sum %v != simulated total %v", sum, total)
			}
			if apuOps == 0 {
				t.Error("no op events attributed to the APU despite BYOC partitioning")
			}
			if dispatches == 0 {
				t.Error("no dispatch events for the partitioned regions")
			}
		})
	}
}

// Both executors must agree on the aggregated per-op table, not just the
// totals: same rows, same counts, same self-times.
func TestProfiledTableMatchesAcrossExecutors(t *testing.T) {
	tables := map[runtime.ExecutorKind]string{}
	for _, kind := range []runtime.ExecutorKind{runtime.ExecutorPlanned, runtime.ExecutorInterp} {
		_, gm := buildEmotion(t, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
		gm.SetExecutor(kind)
		gm.SetProfiling(true)
		if err := gm.Run(); err != nil {
			t.Fatal(err)
		}
		tables[kind] = soc.OpTable(gm.LastProfile().Events())
	}
	if tables[runtime.ExecutorPlanned] != tables[runtime.ExecutorInterp] {
		t.Errorf("per-op tables differ:\n--- planned ---\n%s--- interp ---\n%s",
			tables[runtime.ExecutorPlanned], tables[runtime.ExecutorInterp])
	}
}

// The planned executor records one wall-clock span per node, laid out on
// wavefront lanes; the interpreter has no node plan and reports none.
func TestTraceSpans(t *testing.T) {
	_, gm := buildEmotion(t, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
	gm.SetExecutor(runtime.ExecutorPlanned)
	if gm.TraceSpans() != nil {
		t.Error("TraceSpans non-nil before any run")
	}
	gm.SetProfiling(true)
	if err := gm.Run(); err != nil {
		t.Fatal(err)
	}
	spans := gm.TraceSpans()
	if len(spans) == 0 {
		t.Fatal("profiled planned run produced no executor spans")
	}
	var external int
	for _, s := range spans {
		if s.PID != obs.PIDExec {
			t.Errorf("span %q on pid %d, want executor domain %d", s.Name, s.PID, obs.PIDExec)
		}
		if s.TID < 1 {
			t.Errorf("span %q on lane tid %d, want >= 1", s.Name, s.TID)
		}
		if s.Cat == "external" {
			external++
			var hasDevices bool
			for _, a := range s.Args {
				if a.Key == "devices" {
					hasDevices = true
				}
			}
			if !hasDevices {
				t.Errorf("external span %q missing the devices arg", s.Name)
			}
		}
	}
	if external == 0 {
		t.Error("no external-dispatch spans despite BYOC partitioning")
	}

	// Interpreter path: no node spans.
	_, gi := buildEmotion(t, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
	gi.SetExecutor(runtime.ExecutorInterp)
	gi.SetProfiling(true)
	if err := gi.Run(); err != nil {
		t.Fatal(err)
	}
	if got := gi.TraceSpans(); len(got) != 0 {
		t.Errorf("interpreter reported %d executor spans, want 0", len(got))
	}
}

// Disabling profiling must leave the planned hot path allocation-free: a
// module that was profiled and then switched off allocates exactly as much
// per Run as one that never profiled.
func TestProfilingOffAddsZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun is nondeterministic under the race detector")
	}
	_, never := buildEmotion(t, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
	never.SetExecutor(runtime.ExecutorPlanned)
	if err := never.Run(); err != nil { // warm up plan state + arena
		t.Fatal(err)
	}
	baseline := testing.AllocsPerRun(10, func() {
		if err := never.Run(); err != nil {
			t.Fatal(err)
		}
	})

	_, toggled := buildEmotion(t, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
	toggled.SetExecutor(runtime.ExecutorPlanned)
	toggled.SetProfiling(true)
	if err := toggled.Run(); err != nil {
		t.Fatal(err)
	}
	toggled.SetProfiling(false)
	off := testing.AllocsPerRun(10, func() {
		if err := toggled.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if off > baseline {
		t.Errorf("SetProfiling(false) run allocates %v/op, never-profiled baseline %v/op", off, baseline)
	}
}

// Compile-time instrumentation: a Build with a Tracer records one span per
// optimization pass plus the partitioning and per-region codegen spans, all
// on the "compile" track.
func TestBuildCompileSpans(t *testing.T) {
	tracer := obs.NewTracer(0)
	spec, err := models.Get("emotion")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := spec.Build(models.SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runtime.Build(mod, runtime.BuildOptions{OptLevel: 3, UseNIR: true, Tracer: tracer}); err != nil {
		t.Fatal(err)
	}
	spans, names := tracer.Snapshot()
	if len(spans) == 0 {
		t.Fatal("traced build recorded no spans")
	}
	var compileTrack bool
	for _, n := range names {
		if n == "compile" {
			compileTrack = true
		}
	}
	if !compileTrack {
		t.Errorf("no compile track in %v", names)
	}
	byCat := map[string][]string{}
	for _, s := range spans {
		byCat[s.Cat] = append(byCat[s.Cat], s.Name)
	}
	if len(byCat["pass"]) < 3 {
		t.Errorf("want >= 3 pass spans (InferType, FuseOps, ...), got %v", byCat["pass"])
	}
	var hasFuse, hasPartition, hasConvert, hasCompile bool
	for _, n := range byCat["pass"] {
		if n == "FuseOps" {
			hasFuse = true
		}
		if n == "partition_for_nir" {
			hasPartition = true
		}
	}
	for _, n := range byCat["codegen"] {
		if strings.HasPrefix(n, "ConvertFunction:") {
			hasConvert = true
		}
		if strings.HasPrefix(n, "neuron.Compile:") {
			hasCompile = true
		}
	}
	if !hasFuse || !hasPartition || !hasConvert || !hasCompile {
		t.Errorf("missing expected compile spans (FuseOps %v, partition %v, convert %v, neuron %v): %v",
			hasFuse, hasPartition, hasConvert, hasCompile, byCat)
	}
	// Pass spans carry op-count args.
	for _, s := range spans {
		if s.Cat != "pass" || s.Name == "partition_for_nir" {
			continue
		}
		keys := map[string]bool{}
		for _, a := range s.Args {
			keys[a.Key] = true
		}
		if !keys["ops_before"] || !keys["ops_after"] {
			t.Errorf("pass span %q missing ops_before/ops_after args: %v", s.Name, s.Args)
		}
	}
}
