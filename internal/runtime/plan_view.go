package runtime

import "repro/internal/analysis"

// View exports the plan as the plain-data form internal/analysis consumes.
// It carries only what the executor does — nodes with their reads/writes,
// the slot table, the storage assignment — and none of the planner's
// conclusions (levels, liveness), so analysis.PlanSafety re-derives those
// independently. The slices are fresh copies; mutating the view (as the
// mutation tests do) never touches the live plan.
func (p *ExecPlan) View() *analysis.PlanView {
	v := &analysis.PlanView{
		Nodes:    make([]analysis.PlanNode, len(p.nodes)),
		Slots:    make([]analysis.PlanSlot, len(p.slots)),
		Storages: make([]analysis.PlanStorage, len(p.storages)),
		Params:   append([]int(nil), p.params...),
		Outputs:  append([]int(nil), p.outputs...),
	}
	for i, n := range p.nodes {
		vn := analysis.PlanNode{
			ID:    n.id,
			Kind:  n.kind.String(),
			Label: n.label,
			Args:  append([]int(nil), n.args...),
			Outs:  append([]int(nil), n.out...),
		}
		if n.sub != nil {
			vn.Sub = n.sub.View()
		}
		v.Nodes[i] = vn
	}
	// Input-ness comes from params membership, not InputName: sub-plan
	// parameter slots are anonymous (the caller binds them positionally)
	// but are inputs all the same.
	isParam := make(map[int]bool, len(p.params))
	for _, s := range p.params {
		isParam[s] = true
	}
	for i, sl := range p.slots {
		v.Slots[i] = analysis.PlanSlot{
			DType:    sl.DType,
			Elems:    sl.Shape.Elems(),
			Storage:  sl.Storage,
			Producer: sl.Producer,
			IsOutput: sl.IsOutput,
			IsConst:  sl.Const != nil,
			IsInput:  isParam[i] || sl.InputName != "",
		}
	}
	for i, st := range p.storages {
		v.Storages[i] = analysis.PlanStorage{DType: st.DType, Elems: st.Elems}
	}
	return v
}
