package runtime

import (
	"fmt"

	"repro/internal/relay"
	"repro/internal/soc"
)

// Estimate charges one inference of the built library to a fresh profile
// without executing any numerics: per-kernel roofline time for host (TVM)
// kernels, and the compiled Execution-Planner cost for each external
// NeuroPilot region. The Figure 4/6 sweeps use this path at full model
// scale; estimate-vs-execute equality is covered by tests on models small
// enough to run.
func (lib *Lib) Estimate() (*soc.Profile, error) {
	prof := soc.NewProfile()
	cpu := lib.SoC.CPU
	var eerr error
	var walk func(e relay.Expr)
	seen := map[relay.Expr]bool{}
	walk = func(e relay.Expr) {
		if e == nil || seen[e] || eerr != nil {
			return
		}
		seen[e] = true
		switch n := e.(type) {
		case *relay.Call:
			for _, a := range n.Args {
				walk(a)
			}
			switch {
			case n.Op != nil:
				w := soc.WorkOf(n)
				prof.AddOp(soc.KindCPU, cpu.OpTime(w, soc.TVMEff(w)))
			case n.Fn != nil:
				fn, ok := n.Fn.(*relay.Function)
				if !ok {
					eerr = fmt.Errorf("runtime: estimate: call of non-function value")
					return
				}
				switch {
				case fn.Attr(relay.FnAttrCompiler) == "nir":
					sym := fn.Attr(relay.FnAttrGlobalSymbol)
					cm, ok := lib.External[sym]
					if !ok {
						eerr = fmt.Errorf("runtime: estimate: external %q not compiled", sym)
						return
					}
					prof.AddSubgraph()
					cm.Estimate(prof)
				case fn.Attr(relay.FnAttrPrimitive) != "":
					fw := soc.FunctionWork(fn)
					prof.AddOp(soc.KindCPU, cpu.OpTime(fw, soc.TVMEff(fw)))
				default:
					walk(fn.Body)
				}
			}
		case *relay.Tuple:
			for _, f := range n.Fields {
				walk(f)
			}
		case *relay.TupleGetItem:
			walk(n.Tuple)
		}
	}
	walk(lib.Module.Main().Body)
	if eerr != nil {
		return nil, eerr
	}
	return prof, nil
}
