// Package runtime is the execution layer of the mini-TVM stack: relay.Build
// turns an imported module into an executable library (optimizing, optionally
// partitioning for NeuroPilot, and invoking the external codegen), and
// GraphModule exposes the set_input / run / get_output interface the paper's
// Listings 2–6 use. Execution computes real numerics through the TOPI
// kernels and the Neuron runtime while charging simulated device time to a
// profile.
//
// # Output aliasing contract
//
// On the planned-executor path (the default), tensors returned by
// GraphModule.GetOutput and MustOutput are views into the module's
// preallocated arena: they are valid only until that module's next Run,
// which overwrites them in place. Callers that keep results across Runs, or
// that hand results to another goroutine while the module keeps serving
// (e.g. a module pool), must detach them first — either Clone the view or
// use GraphModule.OutputCopy, which returns a tensor sharing no storage
// with the arena. The reference interpreter (ExecutorInterp) happens to
// return freshly allocated tensors each Run, but callers must not rely on
// that: the contract is defined by the planned path.
//
// One GraphModule is single-threaded state (SetInput/Run/GetOutput is a
// stateful sequence); concurrency is achieved by pooling independent
// GraphModules over one shared Lib, whose lowered ExecPlan is immutable and
// cached once per library.
package runtime

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/neuron"
	"repro/internal/nir"
	"repro/internal/obs"
	"repro/internal/passes"
	"repro/internal/relay"
	"repro/internal/soc"
	"repro/internal/verify"
)

// BuildOptions configures relay.Build.
type BuildOptions struct {
	// OptLevel mirrors tvm.transform.PassContext(opt_level=N); level >= 1
	// enables operator fusion, >= 2 constant folding.
	OptLevel int
	// UseNIR partitions the graph for the NeuroPilot external codegen
	// (the paper's use_nir flag).
	UseNIR bool
	// NIRDevices are the NeuroPilot backend devices enabled for external
	// regions (the nir_targets of Listing 6). Defaults to CPU+APU.
	NIRDevices []soc.DeviceKind
	// SoC is the simulated platform; defaults to the Dimensity 800.
	SoC *soc.SoC
	// Partition controls region merging (ablation hook).
	Partition passes.PartitionOptions
	// DisablePasses names optimization passes to skip (ablation hook).
	DisablePasses []string
	// Verify enables verify-after-each-pass instrumentation: the IR
	// verifier audits the module after every optimization pass, attributing
	// a broken invariant to the pass that introduced it (npc -verify). The
	// final module and every compiled NeuroPilot artifact are verified
	// regardless of this flag.
	Verify bool
	// Tracer, when non-nil, receives compile-time wall-clock spans on a
	// "compile" track: one per optimization pass, one for partition_for_nir,
	// and one per external-region conversion and Neuron compile (npc -trace).
	Tracer *obs.Tracer
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.SoC == nil {
		o.SoC = soc.NewDimensity800()
	}
	if o.UseNIR && len(o.NIRDevices) == 0 {
		o.NIRDevices = []soc.DeviceKind{soc.KindCPU, soc.KindAPU}
	}
	if o.Partition == (passes.PartitionOptions{}) {
		o.Partition = passes.DefaultPartitionOptions()
	}
	return o
}

// Lib is a built model library: the optimized (and possibly partitioned)
// relay module plus the compiled external NeuroPilot artifacts. It is what
// export_library serializes.
type Lib struct {
	Module   *relay.Module
	External map[string]*neuron.CompiledModel
	SoC      *soc.SoC
	Opts     BuildOptions

	// The execution plan is built on first use and cached: the lowering and
	// memory planning cost is paid once per library, not per GraphModule or
	// per Run.
	planOnce sync.Once
	plan     *ExecPlan
	planErr  error
}

// Plan returns the library's execution plan, lowering main on first call.
// The error is sticky: a module the planner cannot lower (see BuildPlan)
// reports the same error on every call, and callers fall back to the
// interpreting executor.
func (lib *Lib) Plan() (*ExecPlan, error) {
	lib.planOnce.Do(func() { lib.plan, lib.planErr = BuildPlan(lib) })
	return lib.plan, lib.planErr
}

// Build compiles a relay module into an executable library, mirroring the
// paper's flow: optimize → partition_for_nir → relay.build.
func Build(m *relay.Module, opts BuildOptions) (*Lib, error) {
	opts = opts.withDefaults()
	mod := m.Clone()
	ctx := passes.NewContext(opts.OptLevel)
	var track *obs.Track
	if opts.Tracer != nil {
		track = opts.Tracer.NewTrack("compile")
		ctx.Trace = track
	}
	for _, p := range opts.DisablePasses {
		ctx.Disabled[p] = true
	}
	if opts.Verify {
		ctx.VerifyAfterEachPass = func(m *relay.Module, pass string) error {
			return verify.ModuleErr(m, nir.VerifyOptions())
		}
	}

	mod, err := passes.Sequential(mod, ctx,
		passes.SimplifyInference(),
		passes.FoldConstant(),
		passes.EliminateCommonSubexpr(),
	)
	if err != nil {
		return nil, fmt.Errorf("runtime: optimization failed: %w", err)
	}

	if opts.UseNIR {
		partStart := time.Now()
		mod, err = nir.PartitionForNIR(mod, opts.Partition, opts.NIRDevices...)
		if err != nil {
			return nil, fmt.Errorf("runtime: partition_for_nir failed: %w", err)
		}
		track.Emit("partition_for_nir", "pass", partStart, time.Since(partStart),
			obs.A("regions", len(mod.ExternalFuncs(nir.CompilerName))))
	}

	mod, err = passes.Sequential(mod, ctx, passes.FuseOps())
	if err != nil {
		return nil, fmt.Errorf("runtime: fusion failed: %w", err)
	}

	// The built module is always verified, whatever the Verify flag says:
	// relay.Build must never hand an ill-formed module to the executor.
	if err := verify.ModuleErr(mod, nir.VerifyOptions()); err != nil {
		return nil, fmt.Errorf("runtime: built module failed IR verification: %w", err)
	}

	lib := &Lib{Module: mod, External: map[string]*neuron.CompiledModel{}, SoC: opts.SoC, Opts: opts}
	if opts.UseNIR {
		ext, err := nir.CodegenTraced(mod, opts.SoC, opts.NIRDevices, track)
		if err != nil {
			return nil, fmt.Errorf("runtime: external codegen failed: %w", err)
		}
		for name, cm := range ext {
			if err := verify.PlanErr(cm); err != nil {
				return nil, fmt.Errorf("runtime: compiled region %s failed verification: %w", name, err)
			}
		}
		lib.External = ext
	}
	return lib, nil
}

// BuildNeuroPilotOnly compiles the *whole* model through the NeuroPilot
// stack, bypassing TVM entirely — the "NeuroPilot-only" columns of the
// paper's experiments. It fails with *neuron.UnsupportedError (no statistics)
// when the model contains any op outside the Neuron op set or outside the
// enabled devices' coverage.
func BuildNeuroPilotOnly(m *relay.Module, sc *soc.SoC, devices []soc.DeviceKind) (*neuron.CompiledModel, error) {
	if sc == nil {
		sc = soc.NewDimensity800()
	}
	if len(devices) == 0 {
		devices = []soc.DeviceKind{soc.KindCPU, soc.KindAPU}
	}
	mod := m.Clone()
	ctx := passes.NewContext(3)
	mod, err := passes.Sequential(mod, ctx,
		passes.SimplifyInference(),
		passes.FoldConstant(),
	)
	if err != nil {
		return nil, err
	}
	main := mod.Main()
	// Every op must be NeuroPilot-convertible; otherwise the model cannot be
	// imported into the Neuron compiler at all.
	var unsupported string
	relay.PostOrderVisit(main.Body, func(e relay.Expr) {
		if unsupported != "" {
			return
		}
		if c, ok := e.(*relay.Call); ok && c.Op != nil && !nir.Supported(c) {
			unsupported = c.Op.Name
		}
	})
	if unsupported != "" {
		return nil, fmt.Errorf("neuropilot-only: relay op %q has no Neuron IR mapping: %w",
			unsupported, errNoStatistics)
	}
	model, err := nir.ConvertFunction("model", main)
	if err != nil {
		return nil, err
	}
	return neuron.Compile(model, sc, devices)
}

// errNoStatistics marks the "no statistics to show" condition of the paper's
// NeuroPilot-only columns.
var errNoStatistics = fmt.Errorf("model not runnable on NeuroPilot alone")

// IsNoStatistics reports whether an error means the configuration cannot run
// the model at all (the empty bars of Figures 4/6).
func IsNoStatistics(err error) bool {
	if err == nil {
		return false
	}
	var ue *neuron.UnsupportedError
	if errors.As(err, &ue) {
		return true
	}
	return errors.Is(err, errNoStatistics)
}
