package runtime_test

import (
	"testing"

	"repro/internal/models"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// These tests pin the package's output-aliasing contract (see the package
// doc): on the planned path GetOutput returns arena views that the next Run
// overwrites, and OutputCopy is the detached escape hatch.

func aliasingModule(t *testing.T) *runtime.GraphModule {
	t.Helper()
	m, err := models.BuildEmotion(models.SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	gm := runtime.NewGraphModule(lib)
	gm.SetExecutor(runtime.ExecutorPlanned)
	return gm
}

// TestGetOutputViewInvalidatedByNextRun pins the sharp edge: the view
// returned by GetOutput is overwritten in place by the next Run.
func TestGetOutputViewInvalidatedByNextRun(t *testing.T) {
	gm := aliasingModule(t)
	name := gm.InputNames()[0]
	mod := gm.Lib().Module

	gm.SetInput(name, models.RandomInput(mod, 1))
	if err := gm.Run(); err != nil {
		t.Fatal(err)
	}
	view, err := gm.GetOutput(0)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := view.Clone() // what run 1 actually produced

	gm.SetInput(name, models.RandomInput(mod, 2))
	if err := gm.Run(); err != nil {
		t.Fatal(err)
	}
	second := gm.MustOutput(0)

	// Different inputs must give different outputs, or the test proves
	// nothing.
	if tensor.MaxAbsDiff(snapshot, second) == 0 {
		t.Fatal("runs 1 and 2 produced identical outputs; pick different seeds")
	}
	// The old view now shows run 2's data: same backing storage.
	if d := tensor.MaxAbsDiff(view, second); d != 0 {
		t.Errorf("stale view differs from run 2 output by %g; expected the arena view to be overwritten in place", d)
	}
	if tensor.MaxAbsDiff(view, snapshot) == 0 {
		t.Error("view still holds run 1 data after run 2; the invalidation contract changed — update the package doc")
	}
}

// TestOutputCopyDetached pins OutputCopy: the copy survives subsequent Runs
// unchanged and shares nothing with the arena.
func TestOutputCopyDetached(t *testing.T) {
	gm := aliasingModule(t)
	name := gm.InputNames()[0]
	mod := gm.Lib().Module

	gm.SetInput(name, models.RandomInput(mod, 1))
	if err := gm.Run(); err != nil {
		t.Fatal(err)
	}
	copied, err := gm.OutputCopy(0)
	if err != nil {
		t.Fatal(err)
	}
	want := copied.Clone()

	gm.SetInput(name, models.RandomInput(mod, 2))
	if err := gm.Run(); err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(copied, want); d != 0 {
		t.Errorf("OutputCopy mutated by a later Run (diff %g); it must be detached from the arena", d)
	}

	// Out-of-range indices are errors, mirroring GetOutput.
	if _, err := gm.OutputCopy(99); err == nil {
		t.Error("OutputCopy(99) succeeded; want error")
	}
}

// TestInterpOutputsFresh documents (without promising) the interpreter
// behavior the contract calls out: interp results are freshly allocated, so
// a held result is not overwritten by the next Run.
func TestInterpOutputsFresh(t *testing.T) {
	gm := aliasingModule(t)
	gm.SetExecutor(runtime.ExecutorInterp)
	name := gm.InputNames()[0]
	mod := gm.Lib().Module

	gm.SetInput(name, models.RandomInput(mod, 1))
	if err := gm.Run(); err != nil {
		t.Fatal(err)
	}
	first := gm.MustOutput(0)
	snapshot := first.Clone()
	gm.SetInput(name, models.RandomInput(mod, 2))
	if err := gm.Run(); err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(first, snapshot); d != 0 {
		t.Errorf("interpreter output mutated by later Run (diff %g)", d)
	}
}
