package runtime

import (
	"strings"
	"testing"

	"repro/internal/relay"
	"repro/internal/tensor"
)

// reluChainLib builds a 4-op elementwise chain, unfused, as verifier prey.
func reluChainLib(t *testing.T) *Lib {
	t.Helper()
	data := relay.NewVar("data", relay.TType(tensor.Float32, 1, 8, 8, 4))
	x := relay.Expr(data)
	for i := 0; i < 4; i++ {
		x = relay.NewCall(relay.OpReLU, []relay.Expr{x}, nil)
	}
	lib, err := Build(relay.NewModule(relay.NewFunc([]*relay.Var{data}, x)), BuildOptions{OptLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestVerifyPlanAcceptsFreshPlan(t *testing.T) {
	plan, err := BuildPlan(reluChainLib(t))
	if err != nil {
		t.Fatal(err)
	}
	if res := VerifyPlan(plan); !res.OK() {
		t.Fatalf("fresh plan rejected:\n%v", res)
	}
}

func TestVerifyPlanCatchesStorageAliasing(t *testing.T) {
	plan, err := BuildPlan(reluChainLib(t))
	if err != nil {
		t.Fatal(err)
	}
	// Force the first two intermediates — live at overlapping levels — onto
	// one storage.
	var first = -1
	tampered := false
	for _, sl := range plan.slots {
		if sl.Storage < 0 || sl.IsOutput {
			continue
		}
		if first < 0 {
			first = sl.Storage
			continue
		}
		if sl.Storage != first {
			sl.Storage = first
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("test setup: found no second storage to alias")
	}
	err = VerifyPlan(plan).Err()
	if err == nil {
		t.Fatal("verifier accepted overlapping live ranges on one storage")
	}
	if !strings.Contains(err.Error(), "plan-storage-alias") {
		t.Errorf("expected plan-storage-alias diagnostic, got: %v", err)
	}
}

func TestVerifyPlanCatchesTopoViolation(t *testing.T) {
	plan, err := BuildPlan(reluChainLib(t))
	if err != nil {
		t.Fatal(err)
	}
	// Claim the last node produced the slot the first node reads.
	firstArg := plan.nodes[0].args[0]
	plan.slots[firstArg].Producer = plan.nodes[len(plan.nodes)-1].id
	err = VerifyPlan(plan).Err()
	if err == nil {
		t.Fatal("verifier accepted a node reading a later node's output")
	}
	if !strings.Contains(err.Error(), "plan-topo-order") {
		t.Errorf("expected plan-topo-order diagnostic, got: %v", err)
	}
}

func TestVerifyPlanCatchesStorageTypeMismatch(t *testing.T) {
	plan, err := BuildPlan(reluChainLib(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, sl := range plan.slots {
		if sl.Storage >= 0 {
			plan.storages[sl.Storage].Elems++
			break
		}
	}
	err = VerifyPlan(plan).Err()
	if err == nil {
		t.Fatal("verifier accepted a storage smaller than its slot")
	}
	if !strings.Contains(err.Error(), "plan-storage-type") {
		t.Errorf("expected plan-storage-type diagnostic, got: %v", err)
	}
}
