package runtime_test

import (
	"testing"

	"repro/internal/models"
	"repro/internal/neuron"
	"repro/internal/parallel"
	"repro/internal/relay"
	"repro/internal/runtime"
	"repro/internal/soc"
	"repro/internal/tensor"
)

// assertProfilesEqual demands bit-identical simulated profiles: the planned
// executor charges the same costs in the same order as the interpreter, so
// even float accumulation must agree exactly.
func assertProfilesEqual(t *testing.T, what string, interp, planned *soc.Profile) {
	t.Helper()
	if len(interp.DeviceTime) != len(planned.DeviceTime) {
		t.Errorf("%s: device-time keys differ: interp %v, planned %v", what, interp.DeviceTime, planned.DeviceTime)
	}
	for k, v := range interp.DeviceTime {
		if planned.DeviceTime[k] != v {
			t.Errorf("%s: DeviceTime[%s]: interp %v, planned %v", what, k, v, planned.DeviceTime[k])
		}
	}
	if interp.DMATime != planned.DMATime {
		t.Errorf("%s: DMATime: interp %v, planned %v", what, interp.DMATime, planned.DMATime)
	}
	if interp.DispatchTime != planned.DispatchTime {
		t.Errorf("%s: DispatchTime: interp %v, planned %v", what, interp.DispatchTime, planned.DispatchTime)
	}
	if len(interp.Launches) != len(planned.Launches) {
		t.Errorf("%s: launch keys differ: interp %v, planned %v", what, interp.Launches, planned.Launches)
	}
	for k, v := range interp.Launches {
		if planned.Launches[k] != v {
			t.Errorf("%s: Launches[%s]: interp %d, planned %d", what, k, v, planned.Launches[k])
		}
	}
	if interp.Subgraphs != planned.Subgraphs {
		t.Errorf("%s: Subgraphs: interp %d, planned %d", what, interp.Subgraphs, planned.Subgraphs)
	}
}

// Every zoo model must produce bitwise-identical outputs and profiles on the
// planned executor and the reference interpreter — both on the pure-TVM path
// and with NeuroPilot partitioning. This is the oracle test that licenses
// making the planned executor the default.
func TestPlannedMatchesInterpreterOnZoo(t *testing.T) {
	specs := append(models.Showcase(), models.Figure6()...)
	configs := []struct {
		name string
		opts runtime.BuildOptions
	}{
		{"tvm", runtime.BuildOptions{OptLevel: 3}},
		{"byoc", runtime.BuildOptions{OptLevel: 3, UseNIR: true}},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			mod, err := spec.Build(models.SizeLite)
			if err != nil {
				t.Fatalf("build model: %v", err)
			}
			in := models.RandomInput(mod, 77)
			for _, cfg := range configs {
				lib, err := runtime.Build(mod, cfg.opts)
				if err != nil {
					t.Fatalf("%s: relay build: %v", cfg.name, err)
				}
				if _, err := lib.Plan(); err != nil {
					t.Fatalf("%s: module did not lower to a plan: %v", cfg.name, err)
				}

				ref := runtime.NewGraphModule(lib)
				ref.SetExecutor(runtime.ExecutorInterp)
				ref.SetInput(ref.InputNames()[0], in)
				if err := ref.Run(); err != nil {
					t.Fatalf("%s: interpreter run: %v", cfg.name, err)
				}

				gm := runtime.NewGraphModule(lib)
				gm.SetExecutor(runtime.ExecutorPlanned)
				gm.SetInput(gm.InputNames()[0], in)
				if err := gm.Run(); err != nil {
					t.Fatalf("%s: planned run: %v", cfg.name, err)
				}

				if ref.NumOutputs() != gm.NumOutputs() {
					t.Fatalf("%s: interp has %d outputs, planned %d", cfg.name, ref.NumOutputs(), gm.NumOutputs())
				}
				for i := 0; i < ref.NumOutputs(); i++ {
					want, got := ref.MustOutput(i), gm.MustOutput(i)
					if !tensor.AllClose(got, want, 0, 0) {
						t.Errorf("%s: output %d differs (max %g) — planned executor must be bitwise-exact",
							cfg.name, i, tensor.MaxAbsDiff(got, want))
					}
				}
				assertProfilesEqual(t, cfg.name, ref.LastProfile(), gm.LastProfile())
			}
		})
	}
}

// A chain of same-shape elementwise ops needs exactly three buffers: two that
// ping-pong plus the dedicated graph output. This pins the memory planner's
// reuse behaviour on a hand-built graph.
func TestMemoryPlannerPingPongReuse(t *testing.T) {
	data := relay.NewVar("data", relay.TType(tensor.Float32, 1, 8, 8, 4))
	x := relay.Expr(data)
	for i := 0; i < 4; i++ {
		x = relay.NewCall(relay.OpReLU, []relay.Expr{x}, nil)
	}
	mod := relay.NewModule(relay.NewFunc([]*relay.Var{data}, x))
	// OptLevel 0 keeps the four relus as four separate plan nodes.
	lib, err := runtime.Build(mod, runtime.BuildOptions{OptLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := lib.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumNodes() != 4 || plan.NumLevels() != 4 {
		t.Fatalf("plan shape: %s, want 4 nodes in 4 levels", plan)
	}
	if plan.NumStorages() != 3 {
		t.Errorf("planner allocated %d storages for a 4-op chain, want 3 (ping-pong + output): %s",
			plan.NumStorages(), plan)
	}
	const buf = 1 * 8 * 8 * 4 * 4 // one float32 activation
	if plan.NaiveBytes != 4*buf {
		t.Errorf("NaiveBytes = %d, want %d", plan.NaiveBytes, 4*buf)
	}
	if plan.ArenaBytes != 3*buf {
		t.Errorf("ArenaBytes = %d, want %d", plan.ArenaBytes, 3*buf)
	}
}

// The acceptance criterion on the memory planner: on MobileNet-SSD the
// arena must be strictly smaller than one-buffer-per-node allocation.
func TestMobileNetSSDArenaSmallerThanNaive(t *testing.T) {
	mod, err := models.BuildMobileNetSSDQuant(models.SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := runtime.Build(mod, runtime.BuildOptions{OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := lib.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.ArenaBytes >= plan.NaiveBytes {
		t.Fatalf("no reuse on MobileNet-SSD: arena %d B >= naive %d B", plan.ArenaBytes, plan.NaiveBytes)
	}
	t.Logf("MobileNet-SSD lite intermediates: naive %d B, arena %d B (%.2fx reduction, %d storages for %d nodes)",
		plan.NaiveBytes, plan.ArenaBytes, float64(plan.NaiveBytes)/float64(plan.ArenaBytes),
		plan.NumStorages(), plan.NumNodes())
}

// diamondModule fans one input out to several independent same-level branches
// and reduces them pairwise — the shape that exercises wavefront parallelism.
func diamondModule() *relay.Module {
	data := relay.NewVar("data", relay.TType(tensor.Float32, 1, 16, 16, 4))
	branches := []relay.Expr{
		relay.NewCall(relay.OpReLU, []relay.Expr{data}, nil),
		relay.NewCall(relay.OpSigmoid, []relay.Expr{data}, nil),
		relay.NewCall(relay.OpTanh, []relay.Expr{data}, nil),
		relay.NewCall(relay.OpLeakyReLU, []relay.Expr{data}, relay.Attrs{"alpha": 0.1}),
	}
	l := relay.NewCall(relay.OpAdd, []relay.Expr{branches[0], branches[1]}, nil)
	r := relay.NewCall(relay.OpMaximum, []relay.Expr{branches[2], branches[3]}, nil)
	root := relay.NewCall(relay.OpMultiply, []relay.Expr{l, r}, nil)
	return relay.NewModule(relay.NewFunc([]*relay.Var{data}, root))
}

// The wavefront executor must produce the interpreter's exact result no
// matter how many workers race over a level (run with -race to make this a
// memory-safety test as well).
func TestWavefrontDiamondMatchesInterp(t *testing.T) {
	old := parallel.SetMaxWorkers(4)
	defer parallel.SetMaxWorkers(old)

	mod := diamondModule()
	lib, err := runtime.Build(mod, runtime.BuildOptions{OptLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := lib.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumLevels() >= plan.NumNodes() {
		t.Fatalf("diamond plan has no parallel level: %s", plan)
	}
	in := tensor.New(tensor.Float32, tensor.Shape{1, 16, 16, 4})
	in.FillUniform(tensor.NewRNG(5), -1, 1)

	ref := runtime.NewGraphModule(lib)
	ref.SetExecutor(runtime.ExecutorInterp)
	ref.SetInput("data", in)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	want := ref.MustOutput(0)

	gm := runtime.NewGraphModule(lib)
	gm.SetExecutor(runtime.ExecutorPlanned)
	gm.SetInput("data", in)
	for iter := 0; iter < 10; iter++ {
		if err := gm.Run(); err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(gm.MustOutput(0), want, 0, 0) {
			t.Fatalf("iteration %d: wavefront result diverged from interpreter", iter)
		}
		assertProfilesEqual(t, "diamond", ref.LastProfile(), gm.LastProfile())
	}
}

// A module the planner cannot lower (a plain, non-primitive function call)
// must fall back to the interpreter under ExecutorAuto, fail loudly under
// ExecutorPlanned, and still run under ExecutorInterp.
func TestExecutorFallbackOnUnplannableModule(t *testing.T) {
	data := relay.NewVar("data", relay.TType(tensor.Float32, 1, 4, 4, 2))
	p := relay.NewVar("p", relay.TType(tensor.Float32, 1, 4, 4, 2))
	inner := relay.NewFunc([]*relay.Var{p}, relay.NewCall(relay.OpReLU, []relay.Expr{p}, nil))
	mod := relay.NewModule(relay.NewFunc([]*relay.Var{data},
		relay.NewFnCall(inner, []relay.Expr{data})))
	if err := relay.InferModule(mod); err != nil {
		t.Fatal(err)
	}
	// relay.Build refuses plain anonymous calls outright, so assemble the
	// library by hand: only the interpreter can execute this module.
	lib := &runtime.Lib{Module: mod, External: map[string]*neuron.CompiledModel{}, SoC: soc.NewDimensity800()}
	if _, err := lib.Plan(); err == nil {
		t.Fatal("expected plan failure for plain function call")
	}
	in := tensor.New(tensor.Float32, tensor.Shape{1, 4, 4, 2})
	in.FillUniform(tensor.NewRNG(9), -1, 1)

	for _, k := range []runtime.ExecutorKind{runtime.ExecutorAuto, runtime.ExecutorInterp} {
		gm := runtime.NewGraphModule(lib)
		gm.SetExecutor(k)
		gm.SetInput("data", in)
		if err := gm.Run(); err != nil {
			t.Fatalf("executor %s: %v", k, err)
		}
		if gm.MustOutput(0).Shape.Elems() != in.Shape.Elems() {
			t.Fatalf("executor %s: bad output shape", k)
		}
	}
	gm := runtime.NewGraphModule(lib)
	gm.SetExecutor(runtime.ExecutorPlanned)
	gm.SetInput("data", in)
	if err := gm.Run(); err == nil {
		t.Fatal("ExecutorPlanned must refuse an unplannable module")
	}
}
