package runtime

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/soc"
	"repro/internal/tensor"
	"repro/internal/topi"
)

// This file is the runtime half of the planned executor: planState binds an
// ExecPlan to a preallocated arena once per GraphModule, and run executes the
// node list level by level — independent nodes of one wavefront level across
// the parallel workers — with kernels writing into arena views through
// topi.RunInto, so the steady-state hot path performs no heap allocation for
// intermediates.

// planState is the mutable execution state of one GraphModule over a plan:
// the arena, the current tensor bound to each slot, per-node argument
// scratch, and per-primitive-node sub-state. It is constructed once and
// reused by every Run.
type planState struct {
	plan  *ExecPlan
	arena *tensor.Arena
	// slots holds each slot's current tensor: constants bound at build time,
	// arena views bound at build time, graph inputs and external-region
	// results rebound per run.
	slots []*tensor.Tensor
	args  [][]*tensor.Tensor // per-node argument scratch
	errs  []error            // per-node error scratch for wavefront execution
	subs  []*planState       // per-node sub-state (primitive nodes only)

	// trace, when non-nil (profiling enabled), receives one wall-clock span
	// per executed node, indexed by node id — concurrent wavefront nodes write
	// disjoint entries, so no synchronization is needed. Nil keeps the hot
	// path free of timing calls and allocations.
	trace      []obs.Span
	traceEpoch time.Time
}

// setProfiling switches per-node span recording on or off, including the
// sub-states of fused primitive nodes.
func (st *planState) setProfiling(on bool) {
	if on && st.trace == nil {
		st.trace = make([]obs.Span, len(st.plan.nodes))
	} else if !on {
		st.trace = nil
	}
	for _, sub := range st.subs {
		if sub != nil {
			sub.setProfiling(on)
		}
	}
}

// setEpoch sets the wall-clock zero for span timestamps on this state and
// every primitive sub-state.
func (st *planState) setEpoch(t time.Time) {
	st.traceEpoch = t
	for _, sub := range st.subs {
		if sub != nil {
			sub.setEpoch(t)
		}
	}
}

// traceSpans collects the spans of the most recent profiled run: one span per
// executed node on the PIDExec clock, with each node's wavefront lane as the
// thread row, and the sub-spans of fused kernels folded onto their parent's
// row (Perfetto nests them by containment).
func (st *planState) traceSpans() []obs.Span {
	if st.trace == nil {
		return nil
	}
	var out []obs.Span
	for i, sp := range st.trace {
		if sp.Name == "" {
			continue
		}
		out = append(out, sp)
		if sub := st.subs[i]; sub != nil && sub.trace != nil {
			for _, ssp := range sub.trace {
				if ssp.Name == "" {
					continue
				}
				ssp.TID = sp.TID
				ssp.Cat = "fused-op"
				out = append(out, ssp)
			}
		}
	}
	return out
}

// newPlanState allocates the arena and binds every statically known slot.
func newPlanState(p *ExecPlan) (*planState, error) {
	st := &planState{
		plan:  p,
		arena: tensor.NewArena(),
		slots: make([]*tensor.Tensor, len(p.slots)),
		args:  make([][]*tensor.Tensor, len(p.nodes)),
		errs:  make([]error, len(p.nodes)),
		subs:  make([]*planState, len(p.nodes)),
	}
	for _, rec := range p.storages {
		st.arena.Add(rec.DType, rec.Elems)
	}
	for i, sl := range p.slots {
		switch {
		case sl.Const != nil:
			st.slots[i] = sl.Const
		case sl.Storage >= 0:
			v, err := st.arena.View(sl.Storage, sl.DType, sl.Shape, sl.Quant)
			if err != nil {
				return nil, fmt.Errorf("runtime: plan state: slot %d: %w", i, err)
			}
			st.slots[i] = v
		}
	}
	for id, n := range p.nodes {
		st.args[id] = make([]*tensor.Tensor, len(n.args))
		if n.kind != nodePrim {
			continue
		}
		sub, err := newPlanState(n.sub)
		if err != nil {
			return nil, err
		}
		// The sub-plan's result writes straight into the outer arena view:
		// rebind the sub output slot so the fused body's last kernel lands
		// in place (no copy). A body that is a bare parameter or constant
		// has no producing node; runPrim copies in that case.
		if outSlot := n.sub.outputs[0]; n.sub.slots[outSlot].Producer >= 0 {
			sub.slots[outSlot] = st.slots[n.out[0]]
		}
		st.subs[id] = sub
	}
	return st, nil
}

// run executes one inference over the bound plan. Numerics run uncharged
// (possibly concurrently); the simulated cost is then charged to prof in a
// single sequential pass over the linear node order, which keeps the profile
// bit-identical to the interpreter's post-order charging regardless of how
// the wavefront interleaved.
func (st *planState) run(inputs map[string]*tensor.Tensor, prof *soc.Profile) error {
	p := st.plan
	for name, slot := range p.inputs {
		in, ok := inputs[name]
		if !ok {
			return fmt.Errorf("runtime: input %q not set", name)
		}
		st.slots[slot] = in
	}
	for _, lvl := range p.levels {
		if len(lvl) == 1 || parallel.MaxWorkers() <= 1 {
			for _, ni := range lvl {
				if err := st.exec(ni); err != nil {
					return err
				}
			}
			continue
		}
		// Wavefront: the nodes of one level are mutually independent and
		// the memory planner never recycles a storage within its release
		// level, so they run concurrently without aliasing.
		parallel.For(len(lvl), func(i int) {
			ni := lvl[i]
			st.errs[ni] = st.exec(ni)
		})
		for _, ni := range lvl {
			if st.errs[ni] != nil {
				return st.errs[ni]
			}
		}
	}
	if prof != nil {
		st.charge(prof)
	}
	return nil
}

// exec runs one node's numerics, recording a wall-clock span when profiling
// is enabled.
func (st *planState) exec(ni int) error {
	if st.trace == nil {
		return st.execNode(ni)
	}
	start := time.Now()
	err := st.execNode(ni)
	dur := time.Since(start)
	n := st.plan.nodes[ni]
	args := []obs.Arg{obs.A("level", n.level)}
	if len(n.out) > 0 && st.plan.slots[n.out[0]].Storage >= 0 {
		args = append(args, obs.A("storage", st.plan.slots[n.out[0]].Storage))
	}
	if n.kind == nodeExternal {
		args = append(args, obs.A("devices", n.devSummary))
	}
	st.trace[ni] = obs.Span{
		Name:  n.label,
		Cat:   n.kind.String(),
		PID:   obs.PIDExec,
		TID:   n.lane + 1,
		Start: start.Sub(st.traceEpoch).Microseconds(),
		Dur:   dur.Microseconds(),
		Args:  args,
	}
	return err
}

// execNode runs one node's numerics.
//
//np:hotpath
func (st *planState) execNode(ni int) error {
	n := st.plan.nodes[ni]
	args := st.args[ni]
	for i, s := range n.args {
		args[i] = st.slots[s]
	}
	switch n.kind {
	case nodeOp:
		return topi.RunInto(n.opName, args, n.attrs, n.outTy, st.slots[n.out[0]])
	case nodePrim:
		return st.runPrim(ni, n, args)
	case nodeExternal:
		outs, err := n.cm.Execute(args, nil)
		if err != nil {
			return fmt.Errorf("runtime: external region %q: %w", n.sym, err)
		}
		if len(outs) != len(n.out) {
			return fmt.Errorf("runtime: external region %q returned %d outputs, plan has %d", n.sym, len(outs), len(n.out))
		}
		for i, o := range outs {
			st.slots[n.out[i]] = o
		}
		return nil
	}
	return fmt.Errorf("runtime: plan: unknown node kind %v", n.kind)
}

// runPrim executes a fused kernel's sub-plan serially within this node's
// wavefront task. Each primitive node owns a private sub-state, so two fused
// kernels scheduled on the same level never share sub-arena buffers.
//
//np:hotpath
func (st *planState) runPrim(ni int, n *planNode, args []*tensor.Tensor) error {
	sub := st.subs[ni]
	for i, s := range n.sub.params {
		sub.slots[s] = args[i]
	}
	for _, sn := range n.sub.nodes {
		if err := sub.exec(sn.id); err != nil {
			return err
		}
	}
	outSlot := n.sub.outputs[0]
	if n.sub.slots[outSlot].Producer < 0 {
		// Degenerate body (bare parameter/constant): materialize into the
		// outer view.
		return st.slots[n.out[0]].CopyFrom(sub.slots[outSlot])
	}
	return nil
}

// charge accrues the simulated cost of the whole plan in linear node order:
// the precomputed TVM-engine time per op/primitive node, and the Execution
// Planner estimate (dispatch + per-op + boundary DMA) per external region —
// the exact sequence the interpreting executor emits.
//
//np:hotpath
func (st *planState) charge(prof *soc.Profile) {
	for _, n := range st.plan.nodes {
		switch n.kind {
		case nodeOp, nodePrim:
			prof.AddOpNamed(soc.KindCPU, n.charge, n.label)
		case nodeExternal:
			prof.AddSubgraphNamed(n.sym)
			n.cm.Estimate(prof)
		}
	}
}
