package runtime

import (
	"fmt"

	"repro/internal/relay"
	"repro/internal/soc"
	"repro/internal/tensor"
)

// GraphModule is the executable handle over a built library, mirroring TVM's
// graph_executor.GraphModule used throughout the paper's listings:
//
//	m.SetInput("data", x)
//	m.Run()
//	y := m.GetOutput(0)
//
// LastProfile exposes the simulated cost of the most recent Run.
type GraphModule struct {
	lib     *Lib
	inputs  map[string]*tensor.Tensor
	outputs []*tensor.Tensor
	profile *soc.Profile
}

// NewGraphModule wraps a built library.
func NewGraphModule(lib *Lib) *GraphModule {
	return &GraphModule{lib: lib, inputs: map[string]*tensor.Tensor{}}
}

// Lib returns the underlying library.
func (g *GraphModule) Lib() *Lib { return g.lib }

// InputNames returns the model's input names in declaration order.
func (g *GraphModule) InputNames() []string {
	params := g.lib.Module.Main().Params
	names := make([]string, len(params))
	for i, p := range params {
		names[i] = p.Name
	}
	return names
}

// SetInput binds an input tensor by name.
func (g *GraphModule) SetInput(name string, t *tensor.Tensor) {
	g.inputs[name] = t
}

// Run executes one inference, validating that every declared input is bound
// and recording a fresh simulated-cost profile.
func (g *GraphModule) Run() error {
	main := g.lib.Module.Main()
	prof := soc.NewProfile()
	ex := newExecutor(g.lib, prof)
	for _, p := range main.Params {
		in, ok := g.inputs[p.Name]
		if !ok {
			return fmt.Errorf("runtime: input %q not set", p.Name)
		}
		if tt, ok := p.TypeAnnotation.(*relay.TensorType); ok {
			if !in.Shape.Equal(tt.Shape) {
				return fmt.Errorf("runtime: input %q shape %s, model wants %s", p.Name, in.Shape, tt.Shape)
			}
			if in.DType != tt.DType {
				return fmt.Errorf("runtime: input %q dtype %s, model wants %s", p.Name, in.DType, tt.DType)
			}
		}
		ex.env[p] = in
	}
	out, err := ex.eval(main.Body)
	if err != nil {
		return err
	}
	g.outputs = g.outputs[:0]
	switch v := out.(type) {
	case *tensor.Tensor:
		g.outputs = append(g.outputs, v)
	case []value:
		for i, f := range v {
			t, ok := f.(*tensor.Tensor)
			if !ok {
				return fmt.Errorf("runtime: output %d is not a tensor", i)
			}
			g.outputs = append(g.outputs, t)
		}
	default:
		return fmt.Errorf("runtime: unexpected result value %T", out)
	}
	g.profile = prof
	return nil
}

// NumOutputs returns the output count of the last Run.
func (g *GraphModule) NumOutputs() int { return len(g.outputs) }

// GetOutput returns output i of the last Run.
func (g *GraphModule) GetOutput(i int) *tensor.Tensor {
	if i < 0 || i >= len(g.outputs) {
		panic(fmt.Sprintf("runtime: GetOutput(%d) with %d outputs (did Run succeed?)", i, len(g.outputs)))
	}
	return g.outputs[i]
}

// LastProfile returns the simulated cost profile of the last Run (nil before
// the first Run).
func (g *GraphModule) LastProfile() *soc.Profile { return g.profile }
