package runtime

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/relay"
	"repro/internal/soc"
	"repro/internal/tensor"
)

// ExecutorKind selects how GraphModule.Run executes the model.
type ExecutorKind int

const (
	// ExecutorAuto (the default) runs the planned executor whenever the
	// module lowers to an execution plan, and falls back silently to the
	// reference interpreter when it does not (e.g. plain non-primitive
	// function calls). Both executors produce bit-identical outputs and
	// profiles.
	ExecutorAuto ExecutorKind = iota
	// ExecutorPlanned requires the planned executor: Run fails if the module
	// cannot be lowered to a plan.
	ExecutorPlanned
	// ExecutorInterp forces the reference AST-walking interpreter (the
	// oracle the planned executor is differential-tested against).
	ExecutorInterp
)

func (k ExecutorKind) String() string {
	switch k {
	case ExecutorAuto:
		return "auto"
	case ExecutorPlanned:
		return "plan"
	case ExecutorInterp:
		return "interp"
	}
	return fmt.Sprintf("ExecutorKind(%d)", int(k))
}

// ParseExecutorKind parses the npc -executor flag values.
func ParseExecutorKind(s string) (ExecutorKind, error) {
	switch s {
	case "auto":
		return ExecutorAuto, nil
	case "plan", "planned":
		return ExecutorPlanned, nil
	case "interp", "interpreter":
		return ExecutorInterp, nil
	}
	return ExecutorAuto, fmt.Errorf("runtime: unknown executor %q (want auto, plan, or interp)", s)
}

// GraphModule is the executable handle over a built library, mirroring TVM's
// graph_executor.GraphModule used throughout the paper's listings:
//
//	m.SetInput("data", x)
//	m.Run()
//	y, err := m.GetOutput(0)
//
// LastProfile exposes the simulated cost of the most recent Run.
//
// By default Run executes the library's cached ExecPlan: kernels write into
// views of an arena preallocated once per GraphModule, so the steady-state
// hot path allocates no intermediate buffers. Outputs returned by GetOutput
// are views into that arena and remain valid only until the next Run; Clone
// them to keep results across runs (the interpreter path returns fresh
// tensors every Run, so code that must hold results without cloning can
// SetExecutor(ExecutorInterp)).
type GraphModule struct {
	lib       *Lib
	inputs    map[string]*tensor.Tensor
	outputs   []*tensor.Tensor
	profile   *soc.Profile
	executor  ExecutorKind
	state     *planState // lazily bound arena + slot state (planned path)
	profiling bool
}

// NewGraphModule wraps a built library.
func NewGraphModule(lib *Lib) *GraphModule {
	return &GraphModule{lib: lib, inputs: map[string]*tensor.Tensor{}}
}

// Lib returns the underlying library.
func (g *GraphModule) Lib() *Lib { return g.lib }

// SetExecutor selects the execution strategy for subsequent Runs.
func (g *GraphModule) SetExecutor(k ExecutorKind) { g.executor = k }

// Executor returns the currently selected execution strategy.
func (g *GraphModule) Executor() ExecutorKind { return g.executor }

// SetProfiling toggles per-node profiling for subsequent Runs: labeled
// simulated-cost events on LastProfile (the per-op table) and, on the planned
// path, wall-clock spans retrievable via TraceSpans. With profiling off — the
// default — Run records neither, and the planned hot path stays free of the
// timing calls and span/event allocations profiling adds.
func (g *GraphModule) SetProfiling(on bool) {
	g.profiling = on
	if g.state != nil {
		g.state.setProfiling(on)
	}
}

// Profiling reports whether per-node profiling is enabled.
func (g *GraphModule) Profiling() bool { return g.profiling }

// TraceSpans returns the wall-clock per-node spans of the most recent
// profiled planned Run (nil when profiling is off or the module ran on the
// interpreter). Spans live on the PIDExec clock with the node's wavefront
// lane as the thread row.
func (g *GraphModule) TraceSpans() []obs.Span {
	if g.state == nil {
		return nil
	}
	return g.state.traceSpans()
}

// InputNames returns the model's input names in declaration order.
func (g *GraphModule) InputNames() []string {
	params := g.lib.Module.Main().Params
	names := make([]string, len(params))
	for i, p := range params {
		names[i] = p.Name
	}
	return names
}

// SetInput binds an input tensor by name.
func (g *GraphModule) SetInput(name string, t *tensor.Tensor) {
	g.inputs[name] = t
}

// Run executes one inference, validating that every declared input is bound
// and recording a fresh simulated-cost profile.
func (g *GraphModule) Run() error {
	if err := g.validateInputs(); err != nil {
		return err
	}
	switch g.executor {
	case ExecutorInterp:
		return g.runInterp()
	case ExecutorPlanned:
		st, err := g.planState()
		if err != nil {
			return err
		}
		return g.runPlanned(st)
	default: // ExecutorAuto
		if st, err := g.planState(); err == nil {
			return g.runPlanned(st)
		}
		return g.runInterp()
	}
}

func (g *GraphModule) validateInputs() error {
	for _, p := range g.lib.Module.Main().Params {
		in, ok := g.inputs[p.Name]
		if !ok {
			return fmt.Errorf("runtime: input %q not set", p.Name)
		}
		if tt, ok := p.TypeAnnotation.(*relay.TensorType); ok {
			if !in.Shape.Equal(tt.Shape) {
				return fmt.Errorf("runtime: input %q shape %s, model wants %s", p.Name, in.Shape, tt.Shape)
			}
			if in.DType != tt.DType {
				return fmt.Errorf("runtime: input %q dtype %s, model wants %s", p.Name, in.DType, tt.DType)
			}
		}
	}
	return nil
}

// planState lazily binds this module's arena to the library's cached plan.
// Each GraphModule owns its state, so two modules over one Lib never share
// buffers.
func (g *GraphModule) planState() (*planState, error) {
	if g.state != nil {
		return g.state, nil
	}
	plan, err := g.lib.Plan()
	if err != nil {
		return nil, err
	}
	st, err := newPlanState(plan)
	if err != nil {
		return nil, err
	}
	g.state = st
	return st, nil
}

func (g *GraphModule) runPlanned(st *planState) error {
	prof := soc.NewProfile()
	if g.profiling {
		if st.trace == nil {
			st.setProfiling(true) // state may postdate SetProfiling(true)
		}
		st.setEpoch(time.Now())
		prof.EnableEvents()
	}
	if err := st.run(g.inputs, prof); err != nil {
		return err
	}
	g.outputs = g.outputs[:0]
	for _, s := range st.plan.outputs {
		g.outputs = append(g.outputs, st.slots[s])
	}
	g.profile = prof
	return nil
}

func (g *GraphModule) runInterp() error {
	main := g.lib.Module.Main()
	prof := soc.NewProfile()
	if g.profiling {
		prof.EnableEvents()
	}
	ex := newExecutor(g.lib, prof)
	for _, p := range main.Params {
		ex.env[p] = g.inputs[p.Name]
	}
	out, err := ex.eval(main.Body)
	if err != nil {
		return err
	}
	g.outputs = g.outputs[:0]
	switch v := out.(type) {
	case *tensor.Tensor:
		g.outputs = append(g.outputs, v)
	case []value:
		for i, f := range v {
			t, ok := f.(*tensor.Tensor)
			if !ok {
				return fmt.Errorf("runtime: output %d is not a tensor", i)
			}
			g.outputs = append(g.outputs, t)
		}
	default:
		return fmt.Errorf("runtime: unexpected result value %T", out)
	}
	g.profile = prof
	return nil
}

// NumOutputs returns the output count of the last Run.
func (g *GraphModule) NumOutputs() int { return len(g.outputs) }

// GetOutput returns output i of the last Run. On the planned path the tensor
// is an arena view valid until the next Run; Clone it to keep.
func (g *GraphModule) GetOutput(i int) (*tensor.Tensor, error) {
	if i < 0 || i >= len(g.outputs) {
		return nil, fmt.Errorf("runtime: GetOutput(%d) with %d outputs (did Run succeed?)", i, len(g.outputs))
	}
	return g.outputs[i], nil
}

// OutputCopy returns a detached deep copy of output i of the last Run. The
// copy shares no storage with the module's arena, so it stays valid across
// subsequent Runs and may be handed to other goroutines — the safe choice
// for serving layers that release the module back to a pool before the
// response is consumed. (GetOutput is the zero-copy variant whose view the
// next Run invalidates; see the package documentation for the full aliasing
// contract.)
func (g *GraphModule) OutputCopy(i int) (*tensor.Tensor, error) {
	t, err := g.GetOutput(i)
	if err != nil {
		return nil, err
	}
	return t.Clone(), nil
}

// MustOutput is GetOutput for callers that have already checked Run's error;
// it panics on an out-of-range index.
func (g *GraphModule) MustOutput(i int) *tensor.Tensor {
	t, err := g.GetOutput(i)
	if err != nil {
		panic(err)
	}
	return t
}

// LastProfile returns the simulated cost profile of the last Run (nil before
// the first Run).
func (g *GraphModule) LastProfile() *soc.Profile { return g.profile }
