package runtime_test

import (
	"testing"

	"repro/internal/models"
	"repro/internal/relay"
	"repro/internal/runtime"
	"repro/internal/topi"
	"repro/internal/tune"
)

// TestPlanCountsTunedNodes: lowering consults the installed tuning table —
// a plan built with a non-default config for one of the model's tasks
// reports it in TunedNodes, and a plan built with no table reports zero
// (the graceful-fallback path).
func TestPlanCountsTunedNodes(t *testing.T) {
	mod, err := models.BuildEmotion(models.SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	var ierr error
	mod.Functions(func(name string, f *relay.Function) {
		if ierr == nil {
			_, ierr = relay.InferTypes(f)
		}
	})
	if ierr != nil {
		t.Fatal(ierr)
	}
	tasks := tune.Tasks(mod)
	if len(tasks) == 0 {
		t.Fatal("no tunable tasks extracted from the emotion model")
	}

	tbl := topi.NewTuningTable()
	tbl.Set(tasks[0], topi.KernelConfig{Workers: 1})
	prev := topi.SetTuning(tbl)
	defer topi.SetTuning(prev)

	lib, err := runtime.Build(mod, runtime.BuildOptions{OptLevel: 3, UseNIR: false})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := lib.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.TunedNodes < 1 {
		t.Errorf("plan lowered under a tuning table reports %d tuned nodes, want >= 1", plan.TunedNodes)
	}

	topi.SetTuning(nil)
	lib2, err := runtime.Build(mod, runtime.BuildOptions{OptLevel: 3, UseNIR: false})
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := lib2.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan2.TunedNodes != 0 {
		t.Errorf("plan lowered without a tuning table reports %d tuned nodes, want 0", plan2.TunedNodes)
	}
}
