package runtime

import (
	"fmt"

	"repro/internal/verify"
)

// VerifyPlan audits an execution plan the way verify.Module audits relay IR:
// every invariant the executor relies on is checked structurally, and a
// violation names the check that caught it. BuildPlan runs this on every plan
// before caching it, so a planner bug surfaces as a build-time diagnostic
// rather than a silently corrupted inference.
//
// Checks:
//
//	plan-slot-range     node arg/out slot ids are in range
//	plan-topo-order     a node only reads slots produced by earlier nodes
//	plan-level-order    a node's level is strictly deeper than its producers'
//	plan-single-def     every slot is defined exactly once, by its Producer
//	plan-storage-type   a storage's dtype/element count matches its slots
//	plan-storage-alias  slots sharing a storage have disjoint live ranges
//	plan-output-alias   graph-output slots never share a storage
//	plan-output-def     every graph output is a defined value
func VerifyPlan(p *ExecPlan) *verify.Result {
	res := &verify.Result{}
	verifyPlanInto(p, "", res)
	return res
}

func verifyPlanInto(p *ExecPlan, prefix string, res *verify.Result) {
	errorf := func(check, where, format string, a ...any) {
		res.Diags = append(res.Diags, verify.Diagnostic{
			Sev:   verify.SevError,
			Check: check,
			Where: prefix + where,
			Msg:   fmt.Sprintf(format, a...),
		})
	}

	defs := make([]int, len(p.slots)) // definitions seen per slot
	for _, n := range p.nodes {
		where := fmt.Sprintf("node %d (%s)", n.id, n.describe())
		for _, s := range n.args {
			if s < 0 || s >= len(p.slots) {
				errorf("plan-slot-range", where, "argument slot %d out of range [0,%d)", s, len(p.slots))
				continue
			}
			sl := p.slots[s]
			if sl.Producer < 0 {
				continue // graph input or constant
			}
			if sl.Producer >= n.id {
				errorf("plan-topo-order", where, "reads slot %d produced by later node %d", s, sl.Producer)
			} else if p.nodes[sl.Producer].level >= n.level {
				errorf("plan-level-order", where, "level %d does not dominate producer node %d at level %d",
					n.level, sl.Producer, p.nodes[sl.Producer].level)
			}
		}
		for _, o := range n.out {
			if o < 0 || o >= len(p.slots) {
				errorf("plan-slot-range", where, "output slot %d out of range [0,%d)", o, len(p.slots))
				continue
			}
			defs[o]++
			if p.slots[o].Producer != n.id {
				errorf("plan-single-def", where, "defines slot %d whose recorded producer is node %d", o, p.slots[o].Producer)
			}
		}
	}
	for i, sl := range p.slots {
		where := fmt.Sprintf("slot %d", i)
		switch {
		case sl.Producer < 0 && defs[i] != 0:
			errorf("plan-single-def", where, "producer-less slot defined by %d node(s)", defs[i])
		case sl.Producer >= 0 && defs[i] != 1:
			errorf("plan-single-def", where, "slot defined %d times, want exactly once", defs[i])
		}
		if sl.Storage >= 0 {
			if sl.Storage >= len(p.storages) {
				errorf("plan-slot-range", where, "storage id %d out of range [0,%d)", sl.Storage, len(p.storages))
				continue
			}
			st := p.storages[sl.Storage]
			if st.DType != sl.DType || st.Elems != sl.Shape.Elems() {
				errorf("plan-storage-type", where, "slot is %v×%d elems but storage %d is %v×%d",
					sl.DType, sl.Shape.Elems(), sl.Storage, st.DType, st.Elems)
			}
		}
	}

	// Aliasing: group arena-backed slots per storage and demand disjoint
	// [DefLevel, LastUse] intervals. The planner additionally delays reuse by
	// one level (release at L, reacquire at L+1), so even touching intervals
	// are a bug. Graph outputs must be alone on their storage: the caller
	// reads them after the run ends, i.e. their lifetime is unbounded.
	byStorage := make([][]int, len(p.storages))
	for i, sl := range p.slots {
		if sl.Storage >= 0 && sl.Storage < len(p.storages) {
			byStorage[sl.Storage] = append(byStorage[sl.Storage], i)
		}
	}
	for sid, group := range byStorage {
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				a, b := p.slots[group[i]], p.slots[group[j]]
				where := fmt.Sprintf("storage %d", sid)
				if a.IsOutput || b.IsOutput {
					errorf("plan-output-alias", where, "graph-output slot shares storage with slot (slots %d, %d)", group[i], group[j])
					continue
				}
				if a.DefLevel <= b.LastUse && b.DefLevel <= a.LastUse {
					errorf("plan-storage-alias", where, "slots %d [%d,%d] and %d [%d,%d] have overlapping live ranges",
						group[i], a.DefLevel, a.LastUse, group[j], b.DefLevel, b.LastUse)
				}
			}
		}
	}

	for i, s := range p.outputs {
		where := fmt.Sprintf("output %d", i)
		if s < 0 || s >= len(p.slots) {
			errorf("plan-slot-range", where, "slot %d out of range [0,%d)", s, len(p.slots))
			continue
		}
		sl := p.slots[s]
		if sl.Producer < 0 && sl.Const == nil && sl.InputName == "" {
			errorf("plan-output-def", where, "slot %d is neither produced, constant, nor a graph input", s)
		}
	}

	// Primitive sub-plans obey the same invariants.
	for _, n := range p.nodes {
		if n.sub != nil {
			verifyPlanInto(n.sub, fmt.Sprintf("%snode %d sub-plan: ", prefix, n.id), res)
		}
	}
}

// describe names a node for diagnostics.
func (n *planNode) describe() string {
	switch n.kind {
	case nodeOp:
		return n.opName
	case nodePrim:
		return "primitive"
	case nodeExternal:
		return "external " + n.sym
	}
	return n.kind.String()
}
