package runtime

import (
	"fmt"

	"repro/internal/relay"
	"repro/internal/soc"
	"repro/internal/tensor"
	"repro/internal/topi"
)

// value is either a *tensor.Tensor or a []value (tuple).
type value interface{}

// executor evaluates a built library's main function. Numerics run through
// the TOPI kernels (host) and the Neuron runtime (external regions);
// simulated cost accrues to prof when non-nil.
type executor struct {
	lib  *Lib
	prof *soc.Profile
	memo map[relay.Expr]value
	env  map[*relay.Var]value
}

func newExecutor(lib *Lib, prof *soc.Profile) *executor {
	return &executor{lib: lib, prof: prof, memo: map[relay.Expr]value{}, env: map[*relay.Var]value{}}
}

func (ex *executor) eval(e relay.Expr) (value, error) {
	if v, ok := ex.memo[e]; ok {
		return v, nil
	}
	v, err := ex.evalUncached(e)
	if err != nil {
		return nil, err
	}
	ex.memo[e] = v
	return v, nil
}

func (ex *executor) evalUncached(e relay.Expr) (value, error) {
	switch n := e.(type) {
	case *relay.Var:
		v, ok := ex.env[n]
		if !ok {
			return nil, fmt.Errorf("runtime: unbound variable %q (missing set_input?)", n.Name)
		}
		return v, nil
	case *relay.Constant:
		return n.Value, nil
	case *relay.Tuple:
		fields := make([]value, len(n.Fields))
		for i, f := range n.Fields {
			v, err := ex.eval(f)
			if err != nil {
				return nil, err
			}
			fields[i] = v
		}
		return fields, nil
	case *relay.TupleGetItem:
		tv, err := ex.eval(n.Tuple)
		if err != nil {
			return nil, err
		}
		fields, ok := tv.([]value)
		if !ok {
			return nil, fmt.Errorf("runtime: projection on non-tuple value")
		}
		if n.Index < 0 || n.Index >= len(fields) {
			return nil, fmt.Errorf("runtime: projection index %d out of range", n.Index)
		}
		return fields[n.Index], nil
	case *relay.Call:
		return ex.evalCall(n)
	case *relay.Function:
		return n, nil // function value: consumed by evalCall
	}
	return nil, fmt.Errorf("runtime: cannot evaluate %T", e)
}

func (ex *executor) evalCall(c *relay.Call) (value, error) {
	if c.Op != nil {
		return ex.evalOpCall(c, true)
	}
	fnVal, err := ex.eval(c.Fn)
	if err != nil {
		return nil, err
	}
	fn, ok := fnVal.(*relay.Function)
	if !ok {
		return nil, fmt.Errorf("runtime: call of non-function value")
	}
	args := make([]value, len(c.Args))
	for i, a := range c.Args {
		if args[i], err = ex.eval(a); err != nil {
			return nil, err
		}
	}
	switch {
	case fn.Attr(relay.FnAttrCompiler) == "nir":
		return ex.evalExternal(fn, args)
	case fn.Attr(relay.FnAttrPrimitive) != "":
		return ex.evalPrimitive(fn, args)
	default:
		return ex.evalInline(fn, args, true)
	}
}

// evalOpCall executes one operator through TOPI; charge selects whether the
// TVM engine cost is accrued (primitive bodies charge once for the group).
func (ex *executor) evalOpCall(c *relay.Call, charge bool) (value, error) {
	flat := make([]*tensor.Tensor, 0, len(c.Args))
	for _, a := range c.Args {
		v, err := ex.eval(a)
		if err != nil {
			return nil, err
		}
		switch vv := v.(type) {
		case *tensor.Tensor:
			flat = append(flat, vv)
		case []value:
			for _, f := range vv {
				ft, ok := f.(*tensor.Tensor)
				if !ok {
					return nil, fmt.Errorf("runtime: nested tuple argument to %s", c.Op.Name)
				}
				flat = append(flat, ft)
			}
		default:
			return nil, fmt.Errorf("runtime: bad argument value %T for %s", v, c.Op.Name)
		}
	}
	outTy, ok := c.CheckedType().(*relay.TensorType)
	if !ok {
		return nil, fmt.Errorf("runtime: op %s has non-tensor checked type %v", c.Op.Name, c.CheckedType())
	}
	res, err := topi.Run(c.Op.Name, flat, c.Attrs, outTy)
	if err != nil {
		return nil, err
	}
	if charge && ex.prof != nil {
		cpu := ex.lib.SoC.CPU
		w := soc.WorkOf(c)
		ex.prof.AddOpNamed(soc.KindCPU, cpu.OpTime(w, soc.TVMEff(w)), c.Op.Name)
	}
	return res, nil
}

// evalPrimitive executes a fused kernel: the numerics of every member op,
// but a single launch charge for the whole group — fusion's payoff.
func (ex *executor) evalPrimitive(fn *relay.Function, args []value) (value, error) {
	res, err := ex.evalInline(fn, args, false)
	if err != nil {
		return nil, err
	}
	if ex.prof != nil {
		w := soc.FunctionWork(fn)
		cpu := ex.lib.SoC.CPU
		name := "(op)"
		if ex.prof.EventsEnabled() {
			name = primLabel(fn) // the walk only pays off when events record it
		}
		ex.prof.AddOpNamed(soc.KindCPU, cpu.OpTime(w, soc.TVMEff(w)), name)
	}
	return res, nil
}

// evalInline evaluates a function body with parameters bound, in a child
// scope sharing the library but not the memo table (bindings differ).
func (ex *executor) evalInline(fn *relay.Function, args []value, charge bool) (value, error) {
	if len(args) != len(fn.Params) {
		return nil, fmt.Errorf("runtime: call arity %d, function wants %d", len(args), len(fn.Params))
	}
	child := newExecutor(ex.lib, nil)
	if charge {
		child.prof = ex.prof
	}
	for i, p := range fn.Params {
		child.env[p] = args[i]
	}
	return child.eval(fn.Body)
}

// evalExternal dispatches a partitioned region to its compiled NeuroPilot
// artifact.
func (ex *executor) evalExternal(fn *relay.Function, args []value) (value, error) {
	sym := fn.Attr(relay.FnAttrGlobalSymbol)
	cm, ok := ex.lib.External[sym]
	if !ok {
		return nil, fmt.Errorf("runtime: external module %q not compiled (was Build run with UseNIR?)", sym)
	}
	ins := make([]*tensor.Tensor, len(args))
	for i, a := range args {
		t, ok := a.(*tensor.Tensor)
		if !ok {
			return nil, fmt.Errorf("runtime: external region %q argument %d is not a tensor", sym, i)
		}
		ins[i] = t
	}
	if ex.prof != nil {
		ex.prof.AddSubgraphNamed(sym)
	}
	outs, err := cm.Execute(ins, ex.prof)
	if err != nil {
		return nil, fmt.Errorf("runtime: external region %q: %w", sym, err)
	}
	if len(outs) == 1 {
		return outs[0], nil
	}
	vals := make([]value, len(outs))
	for i, o := range outs {
		vals[i] = o
	}
	return vals, nil
}
