package runtime

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/relay"
	"repro/internal/soc"
	"repro/internal/tensor"
)

// Randomized differential testing: generate random relay DAGs mixing
// Neuron-supported and unsupported operators, then compile them through
// every path — unfused TVM, fused TVM, BYOC CPU+APU, BYOC APU-only — and
// demand identical numerics. This exercises FuseOps, the partitioner's
// region merging/convexity logic, the Listing 1 converter and the Neuron
// runtime against arbitrary graph shapes.

// graphGen grows a random expression DAG with tracked tensor types.
type graphGen struct {
	rng  *tensor.RNG
	pool []relay.Expr // all typed intermediate values
	t    *testing.T
}

func (g *graphGen) pick() relay.Expr {
	return g.pool[g.rng.Intn(len(g.pool))]
}

// pick4D returns a random pool entry with a 4-D tensor type.
func (g *graphGen) pick4D() (relay.Expr, *relay.TensorType, bool) {
	for tries := 0; tries < 16; tries++ {
		e := g.pick()
		tt, ok := e.CheckedType().(*relay.TensorType)
		if ok && len(tt.Shape) == 4 && tt.Shape[1] >= 3 && tt.Shape[2] >= 3 {
			return e, tt, true
		}
	}
	return nil, nil, false
}

func (g *graphGen) push(e relay.Expr) bool {
	if _, err := relay.InferTypes(e); err != nil {
		// Generator bug — shapes are tracked, so inference must succeed.
		g.t.Fatalf("generator produced ill-typed node: %v", err)
	}
	g.pool = append(g.pool, e)
	return true
}

func (g *graphGen) randConst(shape tensor.Shape) *relay.Constant {
	t := tensor.New(tensor.Float32, shape)
	t.FillUniform(g.rng, -0.5, 0.5)
	return relay.Const(t)
}

// step adds one random operator to the DAG.
func (g *graphGen) step() {
	switch g.rng.Intn(10) {
	case 0, 1: // conv2d
		x, tt, ok := g.pick4D()
		if !ok {
			return
		}
		filters := 1 + g.rng.Intn(6)
		w := g.randConst(tensor.Shape{filters, 3, 3, tt.Shape[3]})
		g.push(relay.NewCall(relay.OpConv2D, []relay.Expr{x, w},
			relay.Attrs{"padding": []int{1, 1}}))
	case 2: // relu (supported elementwise)
		g.push(relay.NewCall(relay.OpReLU, []relay.Expr{g.pick()}, nil))
	case 3: // leaky_relu (UNSUPPORTED: forces host gaps)
		g.push(relay.NewCall(relay.OpLeakyReLU, []relay.Expr{g.pick()},
			relay.Attrs{"alpha": 0.1}))
	case 4: // sigmoid (supported on Neuron CPU, not APU)
		g.push(relay.NewCall(relay.OpSigmoid, []relay.Expr{g.pick()}, nil))
	case 5: // max pool
		x, _, ok := g.pick4D()
		if !ok {
			return
		}
		g.push(relay.NewCall(relay.OpMaxPool2D, []relay.Expr{x},
			relay.Attrs{"pool_size": []int{2, 2}, "strides": []int{1, 1}}))
	case 6: // residual add of two same-shaped values
		a := g.pick()
		at := a.CheckedType().(*relay.TensorType)
		for tries := 0; tries < 16; tries++ {
			b := g.pick()
			bt := b.CheckedType().(*relay.TensorType)
			if at.Same(bt) {
				g.push(relay.NewCall(relay.OpAdd, []relay.Expr{a, b}, nil))
				return
			}
		}
	case 7: // channel concat of two values with equal spatial dims
		a, at, ok := g.pick4D()
		if !ok {
			return
		}
		for tries := 0; tries < 16; tries++ {
			b := g.pick()
			bt, ok := b.CheckedType().(*relay.TensorType)
			if !ok || len(bt.Shape) != 4 || b == a {
				continue
			}
			if bt.Shape[0] == at.Shape[0] && bt.Shape[1] == at.Shape[1] && bt.Shape[2] == at.Shape[2] {
				g.push(relay.NewCall(relay.OpConcatenate,
					[]relay.Expr{relay.NewTuple([]relay.Expr{a, b})}, relay.Attrs{"axis": 3}))
				return
			}
		}
	case 8: // clip
		g.push(relay.NewCall(relay.OpClip, []relay.Expr{g.pick()},
			relay.Attrs{"a_min": -1.0, "a_max": 1.0}))
	case 9: // scale by per-channel constant (broadcast multiply)
		x := g.pick()
		tt := x.CheckedType().(*relay.TensorType)
		c := g.randConst(tensor.Shape{tt.Shape[len(tt.Shape)-1]})
		g.push(relay.NewCall(relay.OpMultiply, []relay.Expr{x, c}, nil))
	}
}

// generate builds a random module with one input.
func generateModule(t *testing.T, seed uint64) (*relay.Module, tensor.Shape) {
	rng := tensor.NewRNG(seed)
	h := 6 + rng.Intn(6)
	w := 6 + rng.Intn(6)
	c := 1 + rng.Intn(4)
	inShape := tensor.Shape{1, h, w, c}
	in := relay.NewVar("data", relay.TType(tensor.Float32, 1, h, w, c))
	g := &graphGen{rng: rng, pool: []relay.Expr{in}, t: t}
	steps := 4 + rng.Intn(10)
	for i := 0; i < steps; i++ {
		g.step()
	}
	out := g.pool[len(g.pool)-1]
	m := relay.NewModule(relay.NewFunc([]*relay.Var{in}, out))
	if err := relay.InferModule(m); err != nil {
		t.Fatalf("seed %d: generated module ill-typed: %v", seed, err)
	}
	return m, inShape
}

func TestRandomGraphsAllPathsAgree(t *testing.T) {
	paths := []struct {
		name string
		opts BuildOptions
	}{
		{"tvm-unfused", BuildOptions{OptLevel: 0}},
		{"tvm-fused", BuildOptions{OptLevel: 3}},
		{"byoc-cpu-apu", BuildOptions{OptLevel: 3, UseNIR: true}},
		{"byoc-apu", BuildOptions{OptLevel: 3, UseNIR: true,
			NIRDevices: []soc.DeviceKind{soc.KindAPU}}},
		{"byoc-unmerged", BuildOptions{OptLevel: 3, UseNIR: true,
			Partition: mkPartition(false)}},
	}
	for seed := uint64(1); seed <= 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			m, inShape := generateModule(t, seed)
			in := tensor.New(tensor.Float32, inShape)
			in.FillUniform(tensor.NewRNG(seed^0xF00D), -1, 1)
			var ref *tensor.Tensor
			for _, p := range paths {
				lib, err := Build(m, p.opts)
				if err != nil {
					t.Fatalf("%s: build: %v", p.name, err)
				}
				gm := NewGraphModule(lib)
				gm.SetInput("data", in)
				if err := gm.Run(); err != nil {
					t.Fatalf("%s: run: %v", p.name, err)
				}
				out := gm.MustOutput(0)
				if ref == nil {
					ref = out
					continue
				}
				if !tensor.AllClose(out, ref, 1e-4, 1e-4) {
					t.Fatalf("%s diverges from reference path, max diff %g\nmodule:\n%s",
						p.name, tensor.MaxAbsDiff(out, ref), relay.PrintModule(m))
				}
			}
		})
	}
}

// The generated graphs must also survive the export/load round trip.
func TestRandomGraphsExportLoad(t *testing.T) {
	for seed := uint64(31); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			m, inShape := generateModule(t, seed)
			lib, err := Build(m, BuildOptions{OptLevel: 3, UseNIR: true})
			if err != nil {
				t.Fatal(err)
			}
			in := tensor.New(tensor.Float32, inShape)
			in.FillUniform(tensor.NewRNG(seed), -1, 1)
			gm := NewGraphModule(lib)
			gm.SetInput("data", in)
			if err := gm.Run(); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := lib.ExportLibrary(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadLibrary(&buf, nil)
			if err != nil {
				t.Fatal(err)
			}
			gm2 := NewGraphModule(loaded)
			gm2.SetInput("data", in)
			if err := gm2.Run(); err != nil {
				t.Fatal(err)
			}
			if !tensor.AllClose(gm2.MustOutput(0), gm.MustOutput(0), 1e-6, 1e-6) {
				t.Error("export/load changed random-graph output")
			}
		})
	}
}
