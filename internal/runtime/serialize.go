package runtime

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/neuron"
	"repro/internal/relay"
	"repro/internal/soc"
	"repro/internal/tensor"
)

// Artifact serialization — the reproduction of the paper's §4.5 flow:
// compile on the server, lib.export_library(path), copy to the Android
// device, load with the runtime-only API and run. ExportLibrary writes a
// self-contained binary artifact (graph JSON + weight pool + compiled Neuron
// plans); LoadLibrary reconstructs a runnable Lib in a process that never saw
// the frontend or the compiler passes.

var libMagic = []byte("NPLIB\x01")

type jsonQuant struct {
	Scale float64 `json:"scale"`
	Zero  int32   `json:"zero"`
}

type jsonType struct {
	Kind   string     `json:"kind"` // "tensor" | "tuple" | "func"
	Shape  []int      `json:"shape,omitempty"`
	DType  string     `json:"dtype,omitempty"`
	Quant  *jsonQuant `json:"quant,omitempty"`
	Fields []jsonType `json:"fields,omitempty"`
	Params []jsonType `json:"params,omitempty"`
	Ret    *jsonType  `json:"ret,omitempty"`
}

type jsonAttr struct {
	K  string    `json:"k"`
	I  int64     `json:"i,omitempty"`
	F  float64   `json:"f,omitempty"`
	B  bool      `json:"b,omitempty"`
	S  string    `json:"s,omitempty"`
	Is []int     `json:"is,omitempty"`
	Fs []float64 `json:"fs,omitempty"`
}

type jsonNode struct {
	Kind    string              `json:"kind"` // var|const|call|tuple|get|func
	Name    string              `json:"name,omitempty"`
	Type    *jsonType           `json:"type,omitempty"`
	Const   int                 `json:"const,omitempty"`
	Op      string              `json:"op,omitempty"`
	Fn      int                 `json:"fn,omitempty"`
	Args    []int               `json:"args,omitempty"`
	Attrs   map[string]jsonAttr `json:"attrs,omitempty"`
	Index   int                 `json:"index,omitempty"`
	Params  []int               `json:"params,omitempty"`
	Body    int                 `json:"body,omitempty"`
	FnAttrs map[string]string   `json:"fnattrs,omitempty"`
}

type jsonFunc struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
	Root  int        `json:"root"`
}

type jsonOperand struct {
	Name  string     `json:"name"`
	Shape []int      `json:"shape"`
	DType string     `json:"dtype"`
	Quant *jsonQuant `json:"quant,omitempty"`
	Const int        `json:"const"` // index into the pool, -1 for runtime operands
}

type jsonOperation struct {
	Code    int                 `json:"code"`
	Inputs  []int               `json:"inputs"`
	Outputs []int               `json:"outputs"`
	Attrs   map[string]jsonAttr `json:"attrs,omitempty"`
}

type jsonNeuronModel struct {
	Name       string          `json:"name"`
	Operands   []jsonOperand   `json:"operands"`
	Operations []jsonOperation `json:"operations"`
	Inputs     []int           `json:"inputs"`
	Outputs    []int           `json:"outputs"`
	Plan       []int           `json:"plan"`
	Devices    []int           `json:"devices"`
}

type jsonLib struct {
	OptLevel   int               `json:"opt_level"`
	UseNIR     bool              `json:"use_nir"`
	NIRDevices []int             `json:"nir_devices,omitempty"`
	Functions  []jsonFunc        `json:"functions"`
	Externals  []jsonNeuronModel `json:"externals,omitempty"`
}

// constPool assigns stable indices to constant tensors during encode.
type constPool struct {
	tensors []*tensor.Tensor
	index   map[*tensor.Tensor]int
}

func (p *constPool) add(t *tensor.Tensor) int {
	if p.index == nil {
		p.index = map[*tensor.Tensor]int{}
	}
	if i, ok := p.index[t]; ok {
		return i
	}
	i := len(p.tensors)
	p.tensors = append(p.tensors, t)
	p.index[t] = i
	return i
}

func encodeQuant(q *tensor.QuantParams) *jsonQuant {
	if q == nil {
		return nil
	}
	return &jsonQuant{Scale: q.Scale, Zero: q.ZeroPoint}
}

func decodeQuant(q *jsonQuant) *tensor.QuantParams {
	if q == nil {
		return nil
	}
	return &tensor.QuantParams{Scale: q.Scale, ZeroPoint: q.Zero}
}

func encodeType(t relay.Type) (*jsonType, error) {
	switch tt := t.(type) {
	case *relay.TensorType:
		return &jsonType{Kind: "tensor", Shape: tt.Shape, DType: tt.DType.String(), Quant: encodeQuant(tt.Quant)}, nil
	case *relay.TupleType:
		out := &jsonType{Kind: "tuple"}
		for _, f := range tt.Fields {
			jf, err := encodeType(f)
			if err != nil {
				return nil, err
			}
			out.Fields = append(out.Fields, *jf)
		}
		return out, nil
	case *relay.FuncType:
		out := &jsonType{Kind: "func"}
		for _, p := range tt.Params {
			jp, err := encodeType(p)
			if err != nil {
				return nil, err
			}
			out.Params = append(out.Params, *jp)
		}
		r, err := encodeType(tt.Ret)
		if err != nil {
			return nil, err
		}
		out.Ret = r
		return out, nil
	}
	return nil, fmt.Errorf("runtime: cannot serialize type %T", t)
}

func decodeType(j *jsonType) (relay.Type, error) {
	switch j.Kind {
	case "tensor":
		dt, err := tensor.ParseDType(j.DType)
		if err != nil {
			return nil, err
		}
		return &relay.TensorType{Shape: append(tensor.Shape(nil), j.Shape...), DType: dt, Quant: decodeQuant(j.Quant)}, nil
	case "tuple":
		out := &relay.TupleType{}
		for i := range j.Fields {
			f, err := decodeType(&j.Fields[i])
			if err != nil {
				return nil, err
			}
			out.Fields = append(out.Fields, f)
		}
		return out, nil
	case "func":
		out := &relay.FuncType{}
		for i := range j.Params {
			p, err := decodeType(&j.Params[i])
			if err != nil {
				return nil, err
			}
			out.Params = append(out.Params, p)
		}
		r, err := decodeType(j.Ret)
		if err != nil {
			return nil, err
		}
		out.Ret = r
		return out, nil
	}
	return nil, fmt.Errorf("runtime: unknown serialized type kind %q", j.Kind)
}

func encodeAttrs(a relay.Attrs) (map[string]jsonAttr, error) {
	if len(a) == 0 {
		return nil, nil
	}
	out := map[string]jsonAttr{}
	for k, v := range a {
		switch vv := v.(type) {
		case int:
			out[k] = jsonAttr{K: "i", I: int64(vv)}
		case float64:
			out[k] = jsonAttr{K: "f", F: vv}
		case bool:
			out[k] = jsonAttr{K: "b", B: vv}
		case string:
			out[k] = jsonAttr{K: "s", S: vv}
		case []int:
			out[k] = jsonAttr{K: "is", Is: vv}
		case []float64:
			out[k] = jsonAttr{K: "fs", Fs: vv}
		default:
			return nil, fmt.Errorf("runtime: cannot serialize attr %q of type %T", k, v)
		}
	}
	return out, nil
}

func decodeAttrs(j map[string]jsonAttr) (relay.Attrs, error) {
	out := relay.Attrs{}
	for k, v := range j {
		switch v.K {
		case "i":
			out[k] = int(v.I)
		case "f":
			out[k] = v.F
		case "b":
			out[k] = v.B
		case "s":
			out[k] = v.S
		case "is":
			out[k] = v.Is
		case "fs":
			out[k] = v.Fs
		default:
			return nil, fmt.Errorf("runtime: unknown attr kind %q", v.K)
		}
	}
	return out, nil
}

// encodeFunc flattens a function's expression DAG into a node table.
func encodeFunc(name string, fn *relay.Function, pool *constPool) (jsonFunc, error) {
	jf := jsonFunc{Name: name}
	ids := map[relay.Expr]int{}
	var encode func(e relay.Expr) (int, error)
	encode = func(e relay.Expr) (int, error) {
		if id, ok := ids[e]; ok {
			return id, nil
		}
		var node jsonNode
		switch n := e.(type) {
		case *relay.Var:
			ty, err := encodeType(n.TypeAnnotation)
			if err != nil {
				return 0, err
			}
			node = jsonNode{Kind: "var", Name: n.Name, Type: ty}
		case *relay.Constant:
			node = jsonNode{Kind: "const", Const: pool.add(n.Value)}
		case *relay.Call:
			attrs, err := encodeAttrs(n.Attrs)
			if err != nil {
				return 0, err
			}
			node = jsonNode{Kind: "call", Attrs: attrs, Fn: -1}
			if n.Op != nil {
				node.Op = n.Op.Name
			} else {
				fid, err := encode(n.Fn)
				if err != nil {
					return 0, err
				}
				node.Fn = fid
			}
			for _, a := range n.Args {
				aid, err := encode(a)
				if err != nil {
					return 0, err
				}
				node.Args = append(node.Args, aid)
			}
		case *relay.Tuple:
			node = jsonNode{Kind: "tuple"}
			for _, f := range n.Fields {
				fid, err := encode(f)
				if err != nil {
					return 0, err
				}
				node.Args = append(node.Args, fid)
			}
		case *relay.TupleGetItem:
			tid, err := encode(n.Tuple)
			if err != nil {
				return 0, err
			}
			node = jsonNode{Kind: "get", Args: []int{tid}, Index: n.Index}
		case *relay.Function:
			node = jsonNode{Kind: "func", FnAttrs: n.FnAttrs}
			for _, p := range n.Params {
				pid, err := encode(p)
				if err != nil {
					return 0, err
				}
				node.Params = append(node.Params, pid)
			}
			bid, err := encode(n.Body)
			if err != nil {
				return 0, err
			}
			node.Body = bid
		default:
			return 0, fmt.Errorf("runtime: cannot serialize expression %T", e)
		}
		id := len(jf.Nodes)
		jf.Nodes = append(jf.Nodes, node)
		ids[e] = id
		return id, nil
	}
	root, err := encode(fn)
	if err != nil {
		return jf, err
	}
	jf.Root = root
	return jf, nil
}

// decodeFunc rebuilds a function from its node table.
func decodeFunc(jf jsonFunc, pool []*tensor.Tensor) (*relay.Function, error) {
	exprs := make([]relay.Expr, len(jf.Nodes))
	get := func(id int) (relay.Expr, error) {
		if id < 0 || id >= len(exprs) || exprs[id] == nil {
			return nil, fmt.Errorf("runtime: bad node reference %d", id)
		}
		return exprs[id], nil
	}
	for i, n := range jf.Nodes {
		switch n.Kind {
		case "var":
			ty, err := decodeType(n.Type)
			if err != nil {
				return nil, err
			}
			exprs[i] = relay.NewVar(n.Name, ty)
		case "const":
			if n.Const < 0 || n.Const >= len(pool) {
				return nil, fmt.Errorf("runtime: constant index %d out of pool (%d)", n.Const, len(pool))
			}
			exprs[i] = relay.Const(pool[n.Const])
		case "call":
			attrs, err := decodeAttrs(n.Attrs)
			if err != nil {
				return nil, err
			}
			args := make([]relay.Expr, len(n.Args))
			for j, a := range n.Args {
				if args[j], err = get(a); err != nil {
					return nil, err
				}
			}
			if n.Op != "" {
				op, ok := relay.LookupOp(n.Op)
				if !ok {
					return nil, fmt.Errorf("runtime: artifact references unknown op %q", n.Op)
				}
				exprs[i] = relay.NewCall(op, args, attrs)
			} else {
				fn, err := get(n.Fn)
				if err != nil {
					return nil, err
				}
				c := relay.NewFnCall(fn, args)
				c.Attrs = attrs
				exprs[i] = c
			}
		case "tuple":
			fields := make([]relay.Expr, len(n.Args))
			for j, a := range n.Args {
				f, err := get(a)
				if err != nil {
					return nil, err
				}
				fields[j] = f
			}
			exprs[i] = relay.NewTuple(fields)
		case "get":
			tup, err := get(n.Args[0])
			if err != nil {
				return nil, err
			}
			exprs[i] = relay.NewTupleGetItem(tup, n.Index)
		case "func":
			params := make([]*relay.Var, len(n.Params))
			for j, p := range n.Params {
				pe, err := get(p)
				if err != nil {
					return nil, err
				}
				v, ok := pe.(*relay.Var)
				if !ok {
					return nil, fmt.Errorf("runtime: function param node %d is %T", p, pe)
				}
				params[j] = v
			}
			body, err := get(n.Body)
			if err != nil {
				return nil, err
			}
			fn := relay.NewFunc(params, body)
			for k, v := range n.FnAttrs {
				fn.FnAttrs[k] = v
			}
			exprs[i] = fn
		default:
			return nil, fmt.Errorf("runtime: unknown node kind %q", n.Kind)
		}
	}
	root, err := get(jf.Root)
	if err != nil {
		return nil, err
	}
	fn, ok := root.(*relay.Function)
	if !ok {
		return nil, fmt.Errorf("runtime: function root is %T", root)
	}
	return fn, nil
}

// ExportLibrary serializes the built library (graph + weights + compiled
// Neuron plans) into w — the lib.export_library of Listing 6.
func (lib *Lib) ExportLibrary(w io.Writer) error {
	pool := &constPool{}
	jl := jsonLib{OptLevel: lib.Opts.OptLevel, UseNIR: lib.Opts.UseNIR}
	for _, d := range lib.Opts.NIRDevices {
		jl.NIRDevices = append(jl.NIRDevices, int(d))
	}
	var encErr error
	lib.Module.Functions(func(name string, fn *relay.Function) {
		if encErr != nil {
			return
		}
		jf, err := encodeFunc(name, fn, pool)
		if err != nil {
			encErr = err
			return
		}
		jl.Functions = append(jl.Functions, jf)
	})
	if encErr != nil {
		return encErr
	}
	for _, name := range sortedKeys(lib.External) {
		cm := lib.External[name]
		jm := jsonNeuronModel{Name: name}
		for _, od := range cm.Model.Operands {
			jo := jsonOperand{
				Name:  od.Name,
				Shape: od.Type.Shape,
				DType: od.Type.DType.String(),
				Quant: encodeQuant(od.Type.Quant),
				Const: -1,
			}
			if od.Const != nil {
				jo.Const = pool.add(od.Const)
			}
			jm.Operands = append(jm.Operands, jo)
		}
		for _, op := range cm.Model.Operations {
			attrs, err := encodeAttrs(op.Attrs)
			if err != nil {
				return err
			}
			jm.Operations = append(jm.Operations, jsonOperation{
				Code: int(op.Code), Inputs: op.Inputs, Outputs: op.Outputs, Attrs: attrs,
			})
		}
		jm.Inputs = cm.Model.Inputs
		jm.Outputs = cm.Model.Outputs
		for _, d := range cm.Plan {
			jm.Plan = append(jm.Plan, int(d))
		}
		for _, d := range cm.Devices {
			jm.Devices = append(jm.Devices, int(d))
		}
		jl.Externals = append(jl.Externals, jm)
	}

	blob, err := json.Marshal(jl)
	if err != nil {
		return err
	}
	if _, err := w.Write(libMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(blob))); err != nil {
		return err
	}
	if _, err := w.Write(blob); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(pool.tensors))); err != nil {
		return err
	}
	for _, t := range pool.tensors {
		if err := t.Serialize(w); err != nil {
			return err
		}
	}
	return nil
}

// LoadLibrary reconstructs a runnable Lib from an exported artifact; sc is
// the deployment platform (the "device side" of §4.5).
func LoadLibrary(r io.Reader, sc *soc.SoC) (*Lib, error) {
	if sc == nil {
		sc = soc.NewDimensity800()
	}
	magic := make([]byte, len(libMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("runtime: reading artifact header: %w", err)
	}
	if !bytes.Equal(magic, libMagic) {
		return nil, fmt.Errorf("runtime: not a model library artifact (bad magic)")
	}
	var jsonLen uint32
	if err := binary.Read(r, binary.LittleEndian, &jsonLen); err != nil {
		return nil, err
	}
	// Graph descriptions are small (weights live in the constant pool); a
	// multi-megabyte length means a corrupt or hostile artifact.
	const maxGraphJSON = 64 << 20
	if jsonLen > maxGraphJSON {
		return nil, fmt.Errorf("runtime: artifact graph section %d bytes exceeds the %d limit", jsonLen, maxGraphJSON)
	}
	blob := make([]byte, jsonLen)
	if _, err := io.ReadFull(r, blob); err != nil {
		return nil, err
	}
	var jl jsonLib
	if err := json.Unmarshal(blob, &jl); err != nil {
		return nil, fmt.Errorf("runtime: corrupt artifact graph: %w", err)
	}
	var nConsts uint32
	if err := binary.Read(r, binary.LittleEndian, &nConsts); err != nil {
		return nil, err
	}
	pool := make([]*tensor.Tensor, nConsts)
	for i := range pool {
		t, err := tensor.ReadFrom(r)
		if err != nil {
			return nil, fmt.Errorf("runtime: reading constant %d: %w", i, err)
		}
		pool[i] = t
	}

	var mod *relay.Module
	fns := map[string]*relay.Function{}
	for _, jf := range jl.Functions {
		fn, err := decodeFunc(jf, pool)
		if err != nil {
			return nil, fmt.Errorf("runtime: decoding @%s: %w", jf.Name, err)
		}
		fns[jf.Name] = fn
	}
	main, ok := fns[relay.MainFunc]
	if !ok {
		return nil, fmt.Errorf("runtime: artifact has no main function")
	}
	mod = relay.NewModule(main)
	for name, fn := range fns {
		if name == relay.MainFunc {
			continue
		}
		if err := mod.Add(name, fn); err != nil {
			return nil, err
		}
	}
	// Re-link: calls in main reference their own decoded Function values;
	// replace function-call callees whose global_symbol matches a module
	// definition so External lookup and module listing agree.
	relink := func(e relay.Expr) relay.Expr {
		c, ok := e.(*relay.Call)
		if !ok || c.Fn == nil {
			return e
		}
		fn, ok := c.Fn.(*relay.Function)
		if !ok {
			return e
		}
		if sym := fn.Attr(relay.FnAttrGlobalSymbol); sym != "" {
			if def, ok := mod.Get(sym); ok {
				return relay.NewFnCall(def, c.Args)
			}
		}
		return e
	}
	mod.SetMain(relay.NewFunc(main.Params, relay.Rewrite(main.Body, relink)))
	if err := relay.InferModule(mod); err != nil {
		return nil, fmt.Errorf("runtime: loaded artifact is ill-typed: %w", err)
	}

	lib := &Lib{Module: mod, External: map[string]*neuron.CompiledModel{}, SoC: sc}
	lib.Opts.OptLevel = jl.OptLevel
	lib.Opts.UseNIR = jl.UseNIR
	for _, d := range jl.NIRDevices {
		lib.Opts.NIRDevices = append(lib.Opts.NIRDevices, soc.DeviceKind(d))
	}
	for _, jm := range jl.Externals {
		model := neuron.NewModel(jm.Name)
		for _, jo := range jm.Operands {
			dt, err := tensor.ParseDType(jo.DType)
			if err != nil {
				return nil, err
			}
			var cval *tensor.Tensor
			if jo.Const >= 0 {
				if jo.Const >= len(pool) {
					return nil, fmt.Errorf("runtime: operand constant index out of pool")
				}
				cval = pool[jo.Const]
			}
			model.AddOperand(jo.Name, neuron.OperandType{
				Shape: append(tensor.Shape(nil), jo.Shape...),
				DType: dt,
				Quant: decodeQuant(jo.Quant),
			}, cval)
		}
		for _, jop := range jm.Operations {
			attrs, err := decodeAttrs(jop.Attrs)
			if err != nil {
				return nil, err
			}
			model.AddOperation(neuron.OpCode(jop.Code), jop.Inputs, jop.Outputs, attrs)
		}
		model.Inputs = jm.Inputs
		model.Outputs = jm.Outputs
		plan := make([]soc.DeviceKind, len(jm.Plan))
		for i, d := range jm.Plan {
			plan[i] = soc.DeviceKind(d)
		}
		devices := make([]soc.DeviceKind, len(jm.Devices))
		for i, d := range jm.Devices {
			devices[i] = soc.DeviceKind(d)
		}
		cm, err := neuron.NewCompiledModel(model, sc, devices, plan)
		if err != nil {
			return nil, fmt.Errorf("runtime: rehydrating %s: %w", jm.Name, err)
		}
		lib.External[jm.Name] = cm
	}
	return lib, nil
}

func sortedKeys(m map[string]*neuron.CompiledModel) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j-1] > keys[j]; j-- {
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
	return keys
}
