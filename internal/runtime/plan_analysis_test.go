package runtime_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/models"
	"repro/internal/runtime"
)

// TestZooPlanSafety proves every zoo model's built ExecPlan clean under the
// independent plan-safety checker: liveness is recomputed from scratch over
// the exported PlanView, so agreement here means the planner's interval
// bookkeeping and the checker's dataflow solution coincide on real plans.
func TestZooPlanSafety(t *testing.T) {
	for _, name := range models.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := models.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			m, err := spec.Build(models.SizeLite)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
			if err != nil {
				t.Fatalf("runtime.Build: %v", err)
			}
			plan, err := lib.Plan()
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			res := analysis.PlanSafety(plan.View())
			if err := res.Err(); err != nil {
				t.Errorf("plan safety: %v", err)
			}
			for _, d := range res.Diags {
				t.Logf("diag: %v", d)
			}
		})
	}
}

// TestZooPlanSafetyRejectsCorruption corrupts a real model's exported view —
// not a synthetic fixture — and checks the analysis still rejects it. This is
// the end-to-end mutation test: the view of a genuine planner output, with a
// single storage rehomed to force overlapping lifetimes.
func TestZooPlanSafetyRejectsCorruption(t *testing.T) {
	spec, err := models.Get(models.Names()[0])
	if err != nil {
		t.Fatal(err)
	}
	m, err := spec.Build(models.SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := lib.Plan()
	if err != nil {
		t.Fatal(err)
	}

	// Find two distinct arena storages and collapse them: every slot on the
	// second storage moves to the first. On any plan with at least two
	// concurrently-live arena values this makes lifetimes collide.
	v := plan.View()
	if len(v.Storages) < 2 {
		t.Skip("plan has fewer than two storages; nothing to collide")
	}
	var first, second = -1, -1
	for _, sl := range v.Slots {
		if sl.Storage < 0 {
			continue
		}
		if first == -1 {
			first = sl.Storage
		} else if sl.Storage != first {
			second = sl.Storage
			break
		}
	}
	if second == -1 {
		t.Skip("all slots share one storage")
	}
	if v.Storages[first].Elems < v.Storages[second].Elems {
		first, second = second, first
	}
	for i := range v.Slots {
		if v.Slots[i].Storage == second {
			v.Slots[i].Storage = first
		}
	}
	res := analysis.PlanSafety(v)
	if res.OK() {
		t.Fatalf("collapsed storages accepted; diags: %v", res.Diags)
	}
	wantOne := false
	for _, d := range res.Diags {
		switch d.Check {
		case "plan-storage-alias", "plan-storage-shape", "plan-output-alias":
			wantOne = true
		}
	}
	if !wantOne {
		t.Errorf("rejection cites unexpected checks: %v", res.Diags)
	}
}

// TestZooPlanSafetyRejectsLateReader stretches a real slot's liveness past
// its storage's recorded release by appending it to the final node's reads.
func TestZooPlanSafetyRejectsLateReader(t *testing.T) {
	for _, name := range models.Names() {
		spec, err := models.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := spec.Build(models.SizeLite)
		if err != nil {
			t.Fatal(err)
		}
		lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := lib.Plan()
		if err != nil {
			t.Fatal(err)
		}
		v := plan.View()

		// A reusable storage means some slot's arena space is redefined by a
		// later slot. Find such a pair and make the last node read the early
		// slot: its true liveness now spans the later definition.
		type def struct{ slot, node int }
		byStorage := map[int][]def{}
		for i, sl := range v.Slots {
			if sl.Storage >= 0 && sl.Producer >= 0 {
				byStorage[sl.Storage] = append(byStorage[sl.Storage], def{i, sl.Producer})
			}
		}
		victim := -1
		for _, defs := range byStorage {
			if len(defs) >= 2 {
				victim = defs[0].slot
				break
			}
		}
		if victim < 0 {
			continue // this model's plan never reuses storage
		}
		last := &v.Nodes[len(v.Nodes)-1]
		last.Args = append(last.Args, victim)
		if res := analysis.PlanSafety(v); res.OK() {
			t.Errorf("%s: use-after-release accepted", name)
		}
		return
	}
	t.Skip("no zoo plan reuses storage at lite size")
}
